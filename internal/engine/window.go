package engine

import (
	"sort"

	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// This file implements the timeslice operator τ_T (plan node WindowP):
// clipping every row's validity interval to a window T and dropping the
// rows that do not overlap it. The materializing form (ClipWindow), the
// streaming form (NewWindowIter) and the zone-map scan prune
// (PruneWindowScan) all share the same clip-or-drop semantics; pruning
// is a pure access-path optimization layered underneath.

// clipRow returns row with its validity interval replaced by iv. When
// the interval is unchanged the input row is returned as-is; otherwise a
// fresh row is allocated — stored rows are immutable engine-wide, so the
// clip must never write through the input's backing array.
func clipRow(row tuple.Tuple, iv interval.Interval) tuple.Tuple {
	n := len(row)
	if row[n-2].AsInt() == iv.Begin && row[n-1].AsInt() == iv.End {
		return row
	}
	out := make(tuple.Tuple, n)
	copy(out, row[:n-2])
	out[n-2] = tuple.Int(iv.Begin)
	out[n-1] = tuple.Int(iv.End)
	return out
}

// ClipWindow materializes τ_T over t: rows overlapping T survive with
// their intervals intersected with T, everything else is dropped. An
// invalid T clips everything (empty result) — "no window" is expressed
// by not applying the operator at all. Clipping maps begin to
// max(begin, T.Begin), which is monotone, so a begin-sorted input stays
// begin-sorted and the metadata records it.
func ClipWindow(t *Table, T interval.Interval) *Table {
	out := &Table{Schema: t.Schema}
	for _, row := range t.Rows {
		iv, ok := rowInterval(row).Intersect(T)
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, clipRow(row, iv))
	}
	if t.BeginSorted() {
		out.meta.sorted = propTrue
		if n := len(out.Rows); n > 0 {
			out.meta.lastBegin = rowInterval(out.Rows[n-1]).Begin
		}
	}
	return out
}

// windowIter streams τ_T over its input — the pipelined form of
// ClipWindow, shaped like filterIter so batch drives amortize the child
// pulls.
type windowIter struct {
	in  RowIter
	cur batchCursor
	t   interval.Interval
}

// NewWindowIter returns the streaming form of τ_T over in. It takes
// ownership of in; the caller only closes the returned iterator.
func NewWindowIter(in RowIter, T interval.Interval) RowIter {
	return &windowIter{in: in, cur: batchCursor{in: in}, t: T}
}

func (it *windowIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *windowIter) Next() (tuple.Tuple, bool) {
	for {
		row, ok := it.cur.next()
		if !ok {
			return nil, false
		}
		if iv, over := rowInterval(row).Intersect(it.t); over {
			return clipRow(row, iv), true
		}
	}
}

// NextBatch clips whole child chunks with a plain range loop, emitting
// as soon as one chunk yields any surviving rows (a ragged batch is
// legal anywhere in the stream).
func (it *windowIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	it.cur.enableBatch(batchCapOf(out))
	for out.Len() == 0 {
		rows, ok := it.cur.nextChunk()
		if !ok {
			break
		}
		for _, row := range rows {
			if iv, over := rowInterval(row).Intersect(it.t); over {
				out.Append(clipRow(row, iv))
			}
		}
	}
	return out.Len() > 0
}

func (it *windowIter) Close() { it.in.Close() }

// Err delegates the terminal error to the input stream.
func (it *windowIter) Err() error { return IterErr(it.in) }

// PruneWindowScan is the zone-map check for a windowed scan of a stored
// table: it reports how much of t a τ_T directly above the scan can
// possibly keep. skip means the whole scan is provably empty under T
// (invalid window, empty table, or the table's endpoint envelope is
// disjoint from T). Otherwise hi is the number of leading rows worth
// scanning: for a begin-sorted table every row at index ≥ hi has
// begin ≥ T.End and cannot overlap T, so the scan stops there; for an
// unsorted table hi is len(t.Rows) (no prefix bound, envelope check
// only). The check is a pure optimization — scanning past hi only
// yields rows the window drops anyway.
func PruneWindowScan(t *Table, T interval.Interval) (hi int, skip bool) {
	if !T.Valid() || len(t.Rows) == 0 {
		return 0, true
	}
	if env, ok := t.EndpointBounds(); ok {
		if _, over := env.Intersect(T); !over {
			return 0, true
		}
	}
	if !t.BeginSorted() {
		return len(t.Rows), false
	}
	hi = sort.Search(len(t.Rows), func(i int) bool {
		return rowInterval(t.Rows[i]).Begin >= T.End
	})
	if hi == 0 {
		return 0, true
	}
	return hi, false
}

// Prefix returns a view of the first n rows sharing t's backing slice —
// the scan range PruneWindowScan selects. Rows are immutable engine-wide
// so the shared backing is safe; a prefix of a begin-sorted table stays
// begin-sorted and the metadata carries that over.
func (t *Table) Prefix(n int) *Table {
	if n >= len(t.Rows) {
		return t
	}
	out := &Table{Schema: t.Schema, Rows: t.Rows[:n:n]}
	if t.BeginSorted() {
		out.meta.sorted = propTrue
		if n > 0 {
			out.meta.lastBegin = rowInterval(out.Rows[n-1]).Begin
		}
	}
	return out
}
