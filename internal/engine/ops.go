package engine

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// Filter returns the rows of in satisfying pred, which is compiled
// against the full period schema (so predicates may inspect the period
// attributes too, although REWR never generates such predicates).
func Filter(in *Table, pred algebra.Expr) (*Table, error) {
	c, err := algebra.Compile(pred, in.Schema)
	if err != nil {
		return nil, err
	}
	out := &Table{Schema: in.Schema}
	for _, row := range in.Rows {
		if algebra.Truthy(c(row)) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Project evaluates the projection expressions over the data columns and
// carries the period attributes through unchanged — the REWR projection
// pattern Π_{A, Abegin, Aend} (Fig 4).
func Project(in *Table, exprs []algebra.NamedExpr) (*Table, error) {
	fns := make([]algebra.Compiled, len(exprs))
	cols := make([]string, len(exprs))
	for i, ne := range exprs {
		c, err := algebra.Compile(ne.E, in.Schema)
		if err != nil {
			return nil, err
		}
		fns[i] = c
		cols[i] = ne.Name
	}
	// A literal, not NewTable: rows are written directly below, so the
	// table must start with UNKNOWN metadata, not NewTable's
	// known-sorted empty state.
	out := &Table{Schema: PeriodSchema(tuple.NewSchema(cols...))}
	n := len(in.Schema.Cols)
	for _, row := range in.Rows {
		res := make(tuple.Tuple, len(fns)+2)
		for i, f := range fns {
			res[i] = f(row)
		}
		res[len(fns)] = row[n-2]
		res[len(fns)+1] = row[n-1]
		out.Rows = append(out.Rows, res)
	}
	return out, nil
}

// UnionAll concatenates two union-compatible period relations.
func UnionAll(l, r *Table) (*Table, error) {
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("engine: union-incompatible arities %d and %d", l.Schema.Arity(), r.Schema.Arity())
	}
	out := &Table{Schema: l.Schema, Rows: make([]tuple.Tuple, 0, len(l.Rows)+len(r.Rows))}
	out.Rows = append(out.Rows, l.Rows...)
	out.Rows = append(out.Rows, r.Rows...)
	return out, nil
}

// equiKey describes one extracted equality conjunct l = r usable as a
// hash-join key (l from the left input, r from the right input).
type equiKey struct {
	l, r int
}

// extractEquiKeys pulls conjuncts of the form leftCol = rightCol out of
// pred; residual returns the remaining predicate (TRUE if none).
func extractEquiKeys(pred algebra.Expr, lSchema, joined tuple.Schema, lArity int) (keys []equiKey, residual algebra.Expr) {
	var rest []algebra.Expr
	var walk func(e algebra.Expr)
	walk = func(e algebra.Expr) {
		if b, ok := e.(algebra.BinOp); ok {
			if b.Op == algebra.OpAnd {
				walk(b.L)
				walk(b.R)
				return
			}
			if b.Op == algebra.OpEq {
				lc, lok := b.L.(algebra.ColRef)
				rc, rok := b.R.(algebra.ColRef)
				if lok && rok {
					li, ri := joined.Index(lc.Name), joined.Index(rc.Name)
					if li >= 0 && ri >= 0 {
						if li < lArity && ri >= lArity {
							keys = append(keys, equiKey{l: li, r: ri - lArity})
							return
						}
						if ri < lArity && li >= lArity {
							keys = append(keys, equiKey{l: ri, r: li - lArity})
							return
						}
					}
				}
			}
		}
		rest = append(rest, e)
	}
	walk(pred)
	_ = lSchema
	return keys, algebra.And(rest...)
}

// TemporalJoin implements the REWR join pattern (Fig 4): an inner join on
// the non-temporal predicate conjoined with interval overlap, emitting the
// intersection of the input periods as the output period. Equality
// conjuncts between the two sides are executed as a hash join with the
// probe side streamed; remaining conjuncts are evaluated as residual
// predicates. Predicates without any equality conjunct run as an
// endpoint-sorted interval-overlap sweep (see overlapjoin.go) instead of
// a degenerate single-bucket hash join. Both physical strategies are
// shared with the streaming executor (stream.go); this entry point
// merely materializes the joint stream.
func TemporalJoin(l, r *Table, pred algebra.Expr) (*Table, error) {
	it, err := newJoinIter(NewTableIter(l), NewTableIter(r), pred)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return MaterializeErr(it)
}

// Split implements the split operator N_G (Def 8.3): every row of r1 is
// split at the interval end points of all rows in r1 ∪ r2 that agree with
// it on the grouping columns, so that any two result intervals within a
// group are either equal or disjoint. groupIdx indexes data columns of
// the (union-compatible) inputs.
func Split(r1, r2 *Table, groupIdx []int) *Table {
	// Group endpoints live behind a pointer so the hot per-row path can
	// look groups up with a reusable scratch key (map[string(scratch)]
	// compiles to an allocation-free access) and append through the
	// pointer; a key string is materialized once per distinct group.
	type grpEps struct{ ts []interval.Time }
	eps := make(map[string]*grpEps)
	if groupIdx == nil {
		// AppendKey reads nil as "all columns"; a nil group list here
		// means the single global group (empty key).
		groupIdx = []int{}
	}
	var scratch []byte
	collect := func(t *Table) {
		for _, row := range t.Rows {
			scratch = row.AppendKey(scratch[:0], groupIdx)
			g, ok := eps[string(scratch)]
			if !ok {
				g = &grpEps{}
				eps[string(scratch)] = g
			}
			iv := t.Interval(row)
			g.ts = append(g.ts, iv.Begin, iv.End)
		}
	}
	collect(r1)
	collect(r2)
	for _, g := range eps {
		g.ts = interval.DedupTimes(g.ts)
	}
	out := &Table{Schema: r1.Schema}
	n := r1.DataArity()
	for _, row := range r1.Rows {
		scratch = row.AppendKey(scratch[:0], groupIdx)
		for _, seg := range r1.Interval(row).Segments(eps[string(scratch)].ts) {
			nr := row[:n].Clone()
			nr = append(nr, tuple.Int(seg.Begin), tuple.Int(seg.End))
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// TemporalDiff implements snapshot-reducible EXCEPT ALL: the REWR pattern
// N_SCH(Q1)(R1,R2) − N_SCH(Q2)(R2,R1) (Fig 4), fused into one endpoint
// sweep per value-equivalent row group with pre-aggregated counts (the §9
// optimization applied to difference). For every elementary segment the
// output multiplicity is max(0, |left| − |right|) — the ℕ monus.
func TemporalDiff(l, r *Table) (*Table, error) {
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("engine: difference-incompatible arities %d and %d", l.Schema.Arity(), r.Schema.Arity())
	}
	n := l.DataArity()
	type grp struct {
		data   tuple.Tuple
		deltas map[interval.Time]int64 // +left −right multiplicity change
	}
	groups := make(map[string]*grp)
	// Groups are emitted in first-seen order, not map order: repeated
	// identical difference queries must stream rows in the same order
	// run to run (the cursor API exposes emission order directly; only
	// the materialized Result hides it behind a sort).
	var order []*grp
	var scratch []byte
	add := func(t *Table, sign int64) {
		for _, row := range t.Rows {
			data := row[:n]
			scratch = data.AppendKey(scratch[:0], nil)
			g, ok := groups[string(scratch)]
			if !ok {
				g = &grp{data: data, deltas: make(map[interval.Time]int64)}
				groups[string(scratch)] = g
				order = append(order, g)
			}
			iv := t.Interval(row)
			g.deltas[iv.Begin] += sign
			g.deltas[iv.End] -= sign
		}
	}
	add(l, 1)
	add(r, -1)
	out := &Table{Schema: l.Schema}
	for _, g := range order {
		times := make([]interval.Time, 0, len(g.deltas))
		for t := range g.deltas {
			times = append(times, t)
		}
		times = interval.DedupTimes(times)
		var cur int64
		segStart := interval.Time(0)
		emitting := int64(0)
		for _, t := range times {
			if emitting > 0 && t > segStart {
				seg := interval.New(segStart, t)
				nr := g.data.Clone()
				nr = append(nr, tuple.Int(seg.Begin), tuple.Int(seg.End))
				// Each duplicate gets its own backing slice: emitted
				// siblings must not alias, or an in-place mutation of one
				// output row silently corrupts the others.
				out.Rows = append(out.Rows, nr)
				for i := int64(1); i < emitting; i++ {
					out.Rows = append(out.Rows, nr.Clone())
				}
			}
			cur += g.deltas[t]
			emitting = cur
			if emitting < 0 {
				emitting = 0 // ℕ monus truncates
			}
			segStart = t
		}
	}
	return out, nil
}
