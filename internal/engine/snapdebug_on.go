//go:build snapdebug

// The snapdebug build tag compiles in a runtime assertion layer for
// the two engine invariants that static analysis cannot fully prove:
// begin-sort order of streams feeding the sweeps, and immutability of
// yielded rows across Next calls. With the tag, CheckOrdered and
// CheckNoAlias wrap iterators with asserting shims that panic naming
// the offending operator; without it (snapdebug_off.go) they are
// identity functions the compiler erases. The qgen equivalence grids
// and the fuzz targets run with these wrappers in place, so a fuzzing
// run under `-tags snapdebug` fails at the operator that broke the
// invariant rather than at a downstream differential mismatch.
package engine

import (
	"fmt"

	"snapk/internal/tuple"
)

// DebugChecks reports whether the snapdebug assertion layer is
// compiled in.
func DebugChecks() bool { return true }

// CheckOrdered wraps in with an assertion that its rows are emitted in
// ascending begin order — the begin component of the canonical
// CompareEndpoints (begin, end) order, and exactly the physical
// property the streaming sweeps rely on (morsel fragments and
// Append-maintained tables are begin-sorted but not endpoint-sorted,
// so asserting the full order would reject valid streams). The op name
// appears in the panic diagnostic.
func CheckOrdered(op string, in RowIter) RowIter {
	if bi, ok := in.(BatchIter); ok {
		return &checkOrderedBatchIter{checkOrderedIter: checkOrderedIter{op: op, in: in}, bin: bi}
	}
	return &checkOrderedIter{op: op, in: in}
}

type checkOrderedIter struct {
	op   string
	in   RowIter
	last int64
	seen bool
}

func (it *checkOrderedIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *checkOrderedIter) Next() (tuple.Tuple, bool) {
	row, ok := it.in.Next()
	if !ok {
		return nil, false
	}
	begin := rowInterval(row).Begin
	if it.seen && begin < it.last {
		panic(fmt.Sprintf("engine: snapdebug: %s emitted rows out of begin order (begin %d after %d)",
			it.op, begin, it.last))
	}
	it.last, it.seen = begin, true
	return row, true
}

func (it *checkOrderedIter) Close() { it.in.Close() }

// Err delegates the terminal error: the assertion shim never severs
// the error-carrying protocol.
func (it *checkOrderedIter) Err() error { return IterErr(it.in) }

// checkOrderedBatchIter is the batch-capable form of the order checker:
// wrapping a batch-capable input must not sever the NextBatch chain, so
// the assertion layer composes with batch execution instead of silently
// downgrading it to per-row. It additionally asserts the NextBatch
// return contract (true iff at least one row was delivered).
type checkOrderedBatchIter struct {
	checkOrderedIter
	bin BatchIter
}

func (it *checkOrderedBatchIter) NextBatch(b *RowBatch) bool {
	ok := it.bin.NextBatch(b)
	if ok != (b.Len() > 0) {
		panic(fmt.Sprintf("engine: snapdebug: %s broke the NextBatch contract (ok=%v with %d rows)",
			it.op, ok, b.Len()))
	}
	for _, row := range b.Rows {
		begin := rowInterval(row).Begin
		if it.seen && begin < it.last {
			panic(fmt.Sprintf("engine: snapdebug: %s emitted rows out of begin order (begin %d after %d)",
				it.op, begin, it.last))
		}
		it.last, it.seen = begin, true
	}
	return ok
}

// noAliasWindow bounds how many recently yielded rows CheckNoAlias
// keeps under observation. A small ring catches the realistic bug —
// an operator reusing a scratch row it just handed out — without
// retaining the whole stream.
const noAliasWindow = 64

// CheckNoAlias wraps in with an assertion that rows, once yielded, are
// never mutated by the producer: each of the last noAliasWindow rows
// is snapshotted at yield time and re-compared against its live
// backing array on every subsequent Next and on Close. It deliberately
// does not reject distinct yields sharing a backing array (scans of
// the same stored table legitimately do) — only observable mutation,
// the PR 1 corruption class. The op name appears in the panic
// diagnostic.
func CheckNoAlias(op string, in RowIter) RowIter {
	if bi, ok := in.(BatchIter); ok {
		return &checkNoAliasBatchIter{checkNoAliasIter: checkNoAliasIter{op: op, in: in}, bin: bi}
	}
	return &checkNoAliasIter{op: op, in: in}
}

type yieldedRow struct {
	live tuple.Tuple // the row as handed to the consumer
	snap tuple.Tuple // private copy taken at yield time
}

type checkNoAliasIter struct {
	op   string
	in   RowIter
	ring [noAliasWindow]yieldedRow
	n    int // rows yielded so far
}

func (it *checkNoAliasIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *checkNoAliasIter) Next() (tuple.Tuple, bool) {
	it.verify()
	row, ok := it.in.Next()
	if !ok {
		return nil, false
	}
	it.ring[it.n%noAliasWindow] = yieldedRow{live: row, snap: row.Clone()}
	it.n++
	return row, true
}

func (it *checkNoAliasIter) Close() {
	it.verify()
	it.in.Close()
}

// Err delegates the terminal error: the assertion shim never severs
// the error-carrying protocol.
func (it *checkNoAliasIter) Err() error { return IterErr(it.in) }

// checkNoAliasBatchIter is the batch-capable form of the mutation
// checker: every row of a delivered batch joins the snapshot ring, and
// the ring is re-verified before each subsequent NextBatch — which is
// exactly where the batch-boundary aliasing class bites (a producer
// reusing row backing arrays when it refills its batch). The batch's
// row SLICE being reused is legal and not flagged; mutation of the row
// tuples themselves is the violation.
type checkNoAliasBatchIter struct {
	checkNoAliasIter
	bin BatchIter
}

func (it *checkNoAliasBatchIter) NextBatch(b *RowBatch) bool {
	it.verify()
	ok := it.bin.NextBatch(b)
	if ok != (b.Len() > 0) {
		panic(fmt.Sprintf("engine: snapdebug: %s broke the NextBatch contract (ok=%v with %d rows)",
			it.op, ok, b.Len()))
	}
	for _, row := range b.Rows {
		it.ring[it.n%noAliasWindow] = yieldedRow{live: row, snap: row.Clone()}
		it.n++
	}
	return ok
}

// CheckErrChecked wraps the stream ROOT with an assertion of the
// error-carrying protocol's first rule: a consumer that drives the
// stream to end-of-stream must consult Err before Close. With the tag,
// an exhausted-then-Closed root whose Err was never called panics
// naming op — the drain site that would silently swallow a truncation.
// An early Close (the stream never reported end) is legal and not
// flagged: abandoning a stream is not the same as mistaking a failed
// one for complete.
func CheckErrChecked(op string, in RowIter) RowIter {
	if bi, ok := in.(BatchIter); ok {
		return &checkErrCheckedBatchIter{checkErrCheckedIter: checkErrCheckedIter{op: op, in: in}, bin: bi}
	}
	return &checkErrCheckedIter{op: op, in: in}
}

type checkErrCheckedIter struct {
	op      string
	in      RowIter
	eos     bool // the stream reported end-of-stream to the consumer
	checked bool // Err was consulted
}

func (it *checkErrCheckedIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *checkErrCheckedIter) Next() (tuple.Tuple, bool) {
	row, ok := it.in.Next()
	if !ok {
		it.eos = true
	}
	return row, ok
}

func (it *checkErrCheckedIter) Err() error {
	it.checked = true
	return IterErr(it.in)
}

func (it *checkErrCheckedIter) Close() {
	if it.eos && !it.checked {
		panic(fmt.Sprintf("engine: snapdebug: %s drained to end-of-stream and Closed without checking Err — a truncated stream would pass for complete", it.op))
	}
	it.in.Close()
}

type checkErrCheckedBatchIter struct {
	checkErrCheckedIter
	bin BatchIter
}

func (it *checkErrCheckedBatchIter) NextBatch(b *RowBatch) bool {
	ok := it.bin.NextBatch(b)
	if !ok {
		it.eos = true
	}
	return ok
}

func (it *checkNoAliasIter) verify() {
	held := it.n
	if held > noAliasWindow {
		held = noAliasWindow
	}
	for i := 0; i < held; i++ {
		y := it.ring[i]
		if len(y.live) != len(y.snap) {
			panic(fmt.Sprintf("engine: snapdebug: %s mutated a yielded row after Next (length %d -> %d)",
				it.op, len(y.snap), len(y.live)))
		}
		for c := range y.live {
			if y.live[c] != y.snap[c] {
				panic(fmt.Sprintf("engine: snapdebug: %s mutated a yielded row after Next (column %d: %v -> %v)",
					it.op, c, y.snap[c], y.live[c]))
			}
		}
	}
}
