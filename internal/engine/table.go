// Package engine is the implementation substrate of the framework: an
// in-memory multiset relational executor over SQL period relations
// (Section 8 of Dignös et al., PVLDB 2019). It plays the role the paper
// assigns to the backend DBMS (Postgres/DBX/DBY): executing the
// non-temporal multiset plans produced by the REWR rewriting (package
// rewrite), including the two auxiliary operators the rewriting needs —
// coalesce (Def 8.2) and split (Def 8.3) — plus the §9 optimizations
// (pre-aggregation intertwined with split).
//
// A SQL period relation is a plain multiset of rows whose last two
// columns, named by BeginCol and EndCol, hold the validity interval
// [begin, end) of each row (PERIODENC, Def 8.1). Row multiplicity is
// represented by duplicate rows, exactly as in SQL.
//
// # Table metadata invariants
//
// Every Table carries cached physical-property metadata — begin-
// sortedness (the order the streaming sweep operators need) and
// coalescedness (whether the rows are their own unique encoding) — so
// the planner can probe scan order in O(1) instead of rescanning stored
// rows on every plan build. The mutator methods maintain the cache; any
// code that writes the exported Rows slice directly must call SetRows
// or InvalidateMeta. The full who-sets / who-invalidates / concurrency
// contract, along with every other engine invariant and the snaplint
// analyzer that enforces it, lives in the README's "Invariants &
// linting" section.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"snapk/internal/interval"
	"snapk/internal/period"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

// BeginCol and EndCol are the reserved names of the period attributes
// Abegin and Aend appended to every period-encoded schema.
const (
	BeginCol = "_begin"
	EndCol   = "_end"
)

// PeriodSchema appends the period attributes to a data schema.
func PeriodSchema(data tuple.Schema) tuple.Schema {
	cols := make([]string, 0, data.Arity()+2)
	cols = append(cols, data.Cols...)
	cols = append(cols, BeginCol, EndCol)
	return tuple.NewSchema(cols...)
}

// propState is a cached three-valued physical property: unknown means
// the accessor falls back to computing the property from the rows.
type propState uint8

const (
	propUnknown propState = iota
	propTrue
	propFalse
)

// tableMeta is the cached physical-property metadata of a table; see
// the package comment for the maintenance invariants.
type tableMeta struct {
	sorted    propState
	lastBegin interval.Time // begin of the last appended row; valid when sorted == propTrue and Rows is non-empty
	coalesced propState
	// bounds tracks whether minBegin/maxEnd describe the stored rows —
	// the interval-endpoint zone map, maintained incrementally by Append
	// next to the sortedness metadata so windowed-scan pruning is O(1)
	// on the load paths. Only meaningful when Rows is non-empty.
	bounds   propState
	minBegin interval.Time
	maxEnd   interval.Time
}

// Table is a SQL period relation: a multiset of period-encoded rows.
// The last two schema columns must be BeginCol and EndCol.
type Table struct {
	Schema tuple.Schema
	Rows   []tuple.Tuple
	meta   tableMeta
	// stats caches the lazily computed interval statistics (stats.go).
	// Atomic so concurrent planners can share one table without locks;
	// mutators drop it via Store(nil).
	stats atomic.Pointer[TableStats]
}

// NewTable returns an empty period relation for the given data schema.
// An empty table is trivially begin-sorted and coalesced, so metadata
// tracking starts in the known state and Append maintains it.
func NewTable(data tuple.Schema) *Table {
	return &Table{Schema: PeriodSchema(data), meta: tableMeta{sorted: propTrue, coalesced: propTrue, bounds: propTrue}}
}

// DataArity returns the number of non-period columns.
func (t *Table) DataArity() int { return t.Schema.Arity() - 2 }

// DataSchema returns the schema without the period attributes.
func (t *Table) DataSchema() tuple.Schema {
	return tuple.Schema{Cols: t.Schema.Cols[:t.DataArity()]}
}

// Interval returns the validity interval of row.
func (t *Table) Interval(row tuple.Tuple) interval.Interval {
	n := len(row)
	return interval.Interval{Begin: row[n-2].AsInt(), End: row[n-1].AsInt()}
}

// Append adds a row for tuple data valid during iv, repeated mult times.
// Sortedness metadata is maintained incrementally: appending in
// ascending begin order keeps the table known-sorted (the load path of
// every dataset generator and CSV reader), one out-of-order begin makes
// it known-unsorted. Coalescedness can change under any append and
// drops to unknown.
func (t *Table) Append(data tuple.Tuple, iv interval.Interval, mult int64) {
	if !iv.Valid() || mult <= 0 {
		return
	}
	if t.meta.sorted == propTrue {
		if len(t.Rows) == 0 || iv.Begin >= t.meta.lastBegin {
			t.meta.lastBegin = iv.Begin
		} else {
			t.meta.sorted = propFalse
		}
	}
	if t.meta.bounds == propTrue {
		if len(t.Rows) == 0 || iv.Begin < t.meta.minBegin {
			t.meta.minBegin = iv.Begin
		}
		if len(t.Rows) == 0 || iv.End > t.meta.maxEnd {
			t.meta.maxEnd = iv.End
		}
	}
	t.meta.coalesced = propUnknown
	t.stats.Store(nil)
	row := make(tuple.Tuple, 0, len(data)+2)
	row = append(row, data...)
	row = append(row, tuple.Int(iv.Begin), tuple.Int(iv.End))
	// Each duplicate gets its own backing slice so stored siblings never
	// alias (mirroring the emission sites in coalesce and difference).
	t.Rows = append(t.Rows, row)
	for i := int64(1); i < mult; i++ {
		t.Rows = append(t.Rows, row.Clone())
	}
}

// SetRows replaces the stored rows wholesale and drops all cached
// metadata — the required entry point for bulk mutation (the public
// API's sequenced DELETE/UPDATE rewrite the row slice through it).
func (t *Table) SetRows(rows []tuple.Tuple) {
	t.Rows = rows
	t.meta = tableMeta{}
	t.stats.Store(nil)
}

// InvalidateMeta drops the cached physical-property metadata. Code that
// has written the exported Rows slice directly (rather than through
// Append, Sort, SortByEndpoints or SetRows) must call it before the
// table is used by the planner again.
func (t *Table) InvalidateMeta() {
	t.meta = tableMeta{}
	t.stats.Store(nil)
}

// Len returns the number of rows (counting duplicates).
func (t *Table) Len() int { return len(t.Rows) }

// Clone returns a shallow copy of the table (rows are shared; rows are
// treated as immutable by all operators). Cached metadata is copied:
// it describes the shared row slice. Cached statistics carry over too —
// they are immutable once computed and describe the same multiset.
func (t *Table) Clone() *Table {
	rows := make([]tuple.Tuple, len(t.Rows))
	copy(rows, t.Rows)
	out := &Table{Schema: t.Schema, Rows: rows, meta: t.meta}
	out.stats.Store(t.stats.Load())
	return out
}

// Sort orders rows by data key, then by interval endpoints — the
// canonical display and comparison order. The endpoint tie-break shares
// the sweep operators' comparator (CompareEndpoints). Data-major order
// is not begin order in general, so sortedness metadata drops to
// unknown; coalescedness is a multiset property and survives the
// permutation.
func (t *Table) Sort() {
	n := t.DataArity()
	sort.Slice(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		for c := 0; c < n; c++ {
			if cmp := tuple.Compare(a[c], b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return EndpointLess(a, b)
	})
	t.meta.sorted = propUnknown
}

// BeginSorted reports whether the stored rows are ordered by ascending
// interval begin — the property that lets the planner run the streaming
// sweep operators directly over a scan of this table. Maintained
// metadata answers in O(1) on the load/sort paths; only tables built by
// direct Rows writes fall back to the O(n) rescan (and never memoize,
// so concurrent readers stay race-free).
func (t *Table) BeginSorted() bool {
	switch t.meta.sorted {
	case propTrue:
		return true
	case propFalse:
		return false
	}
	return RowsBeginSorted(t.Rows)
}

// SortByEndpoints reorders the stored rows into (begin, end) endpoint
// order, establishing the streaming sweep operators' input order (and
// recording it in the metadata).
func (t *Table) SortByEndpoints() {
	SortRowsByEndpoints(t.Rows)
	t.meta.sorted = propTrue
	if n := len(t.Rows); n > 0 {
		t.meta.lastBegin = rowInterval(t.Rows[n-1]).Begin
	}
}

// markCoalesced records that the table is known to be its own coalesced
// encoding — set by Coalesce on its output.
func (t *Table) markCoalesced() { t.meta.coalesced = propTrue }

// KnownCoalesced reports whether cached metadata proves the table is
// already the unique coalesced encoding. False means "unknown or not
// coalesced": callers needing certainty fall back to IsCoalesced, which
// always performs the full check (it is the verifier the differential
// tests rely on, so it must not trust the cache it is meant to test).
func (t *Table) KnownCoalesced() bool { return t.meta.coalesced == propTrue }

// String renders the table with a header row.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Schema)
	c := t.Clone()
	c.Sort()
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return b.String()
}

// ToPeriodRelation applies PERIODENC⁻¹ (Def 8.1): it decodes the table
// into the period ℕ-relation it represents, coalescing per data tuple.
func (t *Table) ToPeriodRelation(alg telement.MAlgebra[int64]) *period.Relation[int64] {
	rel := period.NewRelation(alg, t.DataSchema())
	type acc struct {
		data  tuple.Tuple
		pairs []telement.Seg[int64]
	}
	byTuple := make(map[string]*acc)
	n := t.DataArity()
	var scratch []byte
	for _, row := range t.Rows {
		data := row[:n]
		scratch = data.AppendKey(scratch[:0], nil)
		a, ok := byTuple[string(scratch)]
		if !ok {
			a = &acc{data: data}
			byTuple[string(scratch)] = a
		}
		a.pairs = append(a.pairs, telement.Seg[int64]{Iv: t.Interval(row), Val: 1})
	}
	for _, a := range byTuple {
		rel.Add(a.data, alg.Coalesce(a.pairs))
	}
	return rel
}

// FromPeriodRelation applies PERIODENC (Def 8.1): it encodes a period
// ℕ-relation as a table, emitting one row per interval-annotation pair,
// duplicated per multiplicity.
func FromPeriodRelation(rel *period.Relation[int64]) *Table {
	t := NewTable(rel.Schema())
	for _, e := range rel.Entries() {
		for _, s := range e.Ann.Segs() {
			t.Append(e.Tuple, s.Iv, s.Val)
		}
	}
	return t
}

// EqualAsPeriodRelations reports whether two tables encode
// snapshot-equivalent temporal relations, by decoding both and comparing
// the unique normalized encodings.
func EqualAsPeriodRelations(a, b *Table, alg telement.MAlgebra[int64]) bool {
	return a.ToPeriodRelation(alg).Equal(b.ToPeriodRelation(alg))
}
