package engine_test

// ReportAllocs benchmarks for hash-join build pre-sizing: BuildSized
// with the planner's cardinality hint must allocate measurably less than
// the unhinted build, because the bucket map never rehashes/grows during
// the drain. Run both with -benchmem to see the allocs/op delta:
//
//	go test -run - -bench 'BenchmarkJoinBuild' -benchmem ./internal/engine
//
// The companion correctness property (the hint never changes results) is
// pinned by the planner tests in internal/rewrite.

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// prepBuildBench returns the prepared join and the build-side input for
// a many-distinct-keys build — the worst case for incremental map
// growth, hence where pre-sizing pays.
func prepBuildBench(b *testing.B) (*engine.JoinPrep, *engine.Table) {
	b.Helper()
	build := benchTable(benchRows, benchRows) // one row per distinct key
	probe := benchTable(16, 16)
	prep, err := engine.PrepareJoin(
		tuple.NewSchema("g", "v"), probe.DataSchema(),
		algebra.Eq(algebra.Col("g"), algebra.Col("r.g")),
	)
	if err != nil {
		b.Fatal(err)
	}
	if !prep.HasEquiKey() {
		b.Fatal("bench predicate must be an equi join")
	}
	return prep, build
}

func BenchmarkJoinBuildUnsized(b *testing.B) {
	prep, build := prepBuildBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb := prep.Build(engine.NewTableIter(build))
		if jb.Rows() != benchRows {
			b.Fatalf("build retained %d rows", jb.Rows())
		}
	}
}

func BenchmarkJoinBuildPresized(b *testing.B) {
	prep, build := prepBuildBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb := prep.BuildSized(engine.NewTableIter(build), benchRows)
		if jb.Rows() != benchRows {
			b.Fatalf("build retained %d rows", jb.Rows())
		}
	}
}
