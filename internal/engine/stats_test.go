package engine

// Tests for the planner's statistics layer: the cached per-table
// interval statistics (values, invalidation discipline, the O(1)
// endpoint-bounds metadata path) and the plan-wide cardinality
// estimator that consumes them.

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

func statsTable() *Table {
	t := NewTable(tuple.NewSchema("k", "v"))
	// 8 rows, 4 distinct data tuples, begins 0..7, all length 4.
	for i := int64(0); i < 8; i++ {
		t.Append(tuple.Tuple{tuple.Int(i % 4), tuple.Int(i % 4)}, interval.New(i, i+4), 1)
	}
	return t
}

func TestTableStatsValues(t *testing.T) {
	tb := statsTable()
	s := tb.Stats()
	if s.Rows != 8 || s.DistinctData != 4 {
		t.Fatalf("rows=%d distinct=%d, want 8/4", s.Rows, s.DistinctData)
	}
	if s.MinBegin != 0 || s.MaxEnd != 11 {
		t.Fatalf("envelope [%d, %d), want [0, 11)", s.MinBegin, s.MaxEnd)
	}
	if s.AvgLen != 4 {
		t.Fatalf("AvgLen = %v, want 4", s.AvgLen)
	}
	var histSum int64
	for _, c := range s.Hist {
		histSum += c
	}
	if histSum != s.Rows {
		t.Fatalf("histogram counts %d begins, want %d", histSum, s.Rows)
	}
	// Selectivity sanity: the whole envelope keeps everything, a disjoint
	// window nothing, a left slice something in between.
	if got := s.WindowSelectivity(interval.New(0, 11)); got != 1 {
		t.Fatalf("full-envelope selectivity = %v, want 1", got)
	}
	if got := s.WindowSelectivity(interval.New(50, 60)); got != 0 {
		t.Fatalf("disjoint-window selectivity = %v, want 0", got)
	}
	part := s.WindowSelectivity(interval.New(0, 3))
	if part <= 0 || part >= 1 {
		t.Fatalf("partial-window selectivity = %v, want in (0, 1)", part)
	}
}

func TestTableStatsEmptyTable(t *testing.T) {
	tb := NewTable(tuple.NewSchema("k"))
	s := tb.Stats()
	if s.Rows != 0 {
		t.Fatalf("empty table stats claim %d rows", s.Rows)
	}
	if _, ok := s.Bounds(); ok {
		t.Fatal("empty table must not report an envelope")
	}
	if _, ok := tb.EndpointBounds(); ok {
		t.Fatal("EndpointBounds on an empty table must report ok=false")
	}
}

// Stats are cached until a mutating method drops them; the computed
// value itself is immutable.
func TestTableStatsInvalidation(t *testing.T) {
	tb := statsTable()
	s1 := tb.Stats()
	if tb.Stats() != s1 {
		t.Fatal("repeated Stats calls must return the cached pointer")
	}
	// Row-permuting methods keep the cache: every statistic is a multiset
	// property.
	tb.SortByEndpoints()
	if tb.Stats() != s1 {
		t.Fatal("SortByEndpoints must keep the stats cache")
	}
	tb.Append(tuple.Tuple{tuple.Int(9), tuple.Int(9)}, interval.New(20, 30), 1)
	s2 := tb.Stats()
	if s2 == s1 {
		t.Fatal("Append must drop the stats cache")
	}
	if s2.Rows != 9 || s2.MaxEnd != 30 || s2.DistinctData != 5 {
		t.Fatalf("recomputed stats rows=%d maxEnd=%d distinct=%d, want 9/30/5", s2.Rows, s2.MaxEnd, s2.DistinctData)
	}
	tb.SetRows(tb.Rows[:2])
	if tb.Stats() == s2 {
		t.Fatal("SetRows must drop the stats cache")
	}
	s3 := tb.Stats()
	tb.InvalidateMeta()
	if tb.Stats() == s3 {
		t.Fatal("InvalidateMeta must drop the stats cache")
	}
}

// EndpointBounds answers from the incrementally maintained metadata on
// the Append load path — no O(n) statistics pass. Proven with the same
// corruption trick as the sortedness tests: a direct Rows write the
// metadata cannot see leaves the recorded envelope in force.
func TestEndpointBoundsUsesMetadata(t *testing.T) {
	tb := statsTable()
	if tb.meta.bounds != propTrue {
		t.Fatal("Append loads must maintain the bounds metadata")
	}
	env, ok := tb.EndpointBounds()
	if !ok || env != interval.New(0, 11) {
		t.Fatalf("EndpointBounds = %v, %v; want [0, 11)", env, ok)
	}
	widened := clipRow(tb.Rows[0], interval.New(-50, 90))
	tb.Rows[0] = widened // direct write, no invalidation
	if env, _ := tb.EndpointBounds(); env != interval.New(0, 11) {
		t.Fatalf("metadata miss: EndpointBounds rescanned, got %v", env)
	}
	tb.InvalidateMeta()
	if env, _ := tb.EndpointBounds(); env != interval.New(-50, 90) {
		t.Fatalf("after InvalidateMeta, EndpointBounds must see the new envelope, got %v", env)
	}
}

func TestCloneCarriesStats(t *testing.T) {
	tb := statsTable()
	s := tb.Stats()
	if tb.Clone().Stats() != s {
		t.Fatal("Clone must share the stats of the shared rows")
	}
}

func estimateDB() *DB {
	db := NewDB(interval.NewDomain(0, 1000))
	big := db.CreateTable("big", tuple.NewSchema("k", "v"))
	// 100 rows over 10 distinct data tuples (i%5 is determined by i%10).
	for i := int64(0); i < 100; i++ {
		big.Append(tuple.Tuple{tuple.Int(i % 10), tuple.Int(i % 5)}, interval.New(i, i+5), 1)
	}
	small := db.CreateTable("small", tuple.NewSchema("k", "w"))
	for i := int64(0); i < 10; i++ {
		small.Append(tuple.Tuple{tuple.Int(i), tuple.Int(i)}, interval.New(i*3, i*3+8), 1)
	}
	return db
}

func TestEstimateRowsPerNode(t *testing.T) {
	db := estimateDB()
	big, small := ScanP{Name: "big"}, ScanP{Name: "small"}

	if got := db.EstimateRows(big); got != 100 {
		t.Fatalf("scan estimate %d, want exact 100", got)
	}
	if got := db.EstimateRows(ScanP{Name: "missing"}); got != -1 {
		t.Fatalf("unknown table estimate %d, want -1", got)
	}

	filter := FilterP{Pred: algebra.Eq(algebra.Col("k"), algebra.IntC(3)), In: big}
	f := db.EstimateRows(filter)
	if f <= 0 || f >= 100 {
		t.Fatalf("filter estimate %d, want in (0, 100)", f)
	}
	// A zero-selectivity estimate over a non-empty input clamps to 1:
	// rounding to zero would make every plan above it look free.
	if got := db.EstimateRows(FilterP{Pred: algebra.BoolC(false), In: big}); got != 1 {
		t.Fatalf("FALSE filter estimate %d, want the clamp floor 1", got)
	}

	if got := db.EstimateRows(ProjectP{Exprs: []algebra.NamedExpr{{Name: "k", E: algebra.Col("k")}}, In: big}); got != 100 {
		t.Fatalf("project estimate %d, want pass-through 100", got)
	}
	if got := db.EstimateRows(UnionP{L: big, R: small}); got != 110 {
		t.Fatalf("union estimate %d, want 110", got)
	}
	if got := db.EstimateRows(DiffP{L: big, R: small}); got != 100 {
		t.Fatalf("diff estimate %d, want the left bound 100", got)
	}
	if got := db.EstimateRows(CoalesceP{In: big}); got != 100 {
		t.Fatalf("coalesce estimate %d, want the input bound 100", got)
	}

	// Equi join: |L|·|R| / max(d_L, d_R) = 100·10/10.
	equi := JoinP{L: big, R: small, Pred: algebra.Eq(algebra.Col("k"), algebra.Col("r.k"))}
	if got := db.EstimateRows(equi); got != 100 {
		t.Fatalf("equi-join estimate %d, want 100", got)
	}
	// Overlap sweep: a fixed fraction of the cross product.
	sweep := JoinP{L: big, R: small, Pred: algebra.BoolC(true)}
	if got := db.EstimateRows(sweep); got != 100 {
		t.Fatalf("sweep-join estimate %d, want 100 (10%% of 1000)", got)
	}
	// A join over an unknown table is unknown.
	if got := db.EstimateRows(JoinP{L: big, R: ScanP{Name: "missing"}, Pred: algebra.BoolC(true)}); got != -1 {
		t.Fatalf("join over unknown table estimate %d, want -1", got)
	}

	// Window: selectivity from the endpoint histogram, clamped to [1, in].
	w := db.EstimateRows(WindowP{T: interval.New(0, 20), In: big})
	if w <= 0 || w >= 100 {
		t.Fatalf("window estimate %d, want in (0, 100)", w)
	}
	if got := db.EstimateRows(WindowP{T: interval.New(500, 600), In: big}); got != 1 {
		t.Fatalf("disjoint-window estimate %d, want the clamp floor 1", got)
	}

	// Grouped aggregation: bounded by distinct-key stats (10 keys → at
	// most 2·10 segment runs… the estimator may clamp lower, but never
	// above 2·distinct).
	agg := AggP{GroupBy: []string{"k"}, Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: big}
	if got := db.EstimateRows(agg); got <= 0 || got > 20 {
		t.Fatalf("grouped-agg estimate %d, want in (0, 20]", got)
	}
	// Global aggregation: at most 2·rows+1 segments, capped by the domain.
	global := AggP{Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: big}
	if got := db.EstimateRows(global); got != 201 {
		t.Fatalf("global-agg estimate %d, want 201", got)
	}
}

// Estimates propagate through operator chains: a window below a filter
// below a coalesce still reaches the base table's statistics.
func TestEstimateRowsChain(t *testing.T) {
	db := estimateDB()
	chain := CoalesceP{In: FilterP{
		Pred: algebra.Eq(algebra.Col("k"), algebra.IntC(1)),
		In:   WindowP{T: interval.New(0, 50), In: ScanP{Name: "big"}},
	}}
	got := db.EstimateRows(chain)
	if got <= 0 || got >= 100 {
		t.Fatalf("chained estimate %d, want in (0, 100)", got)
	}
	// est_rows lands on every explain node of the same chain.
	n := db.ExplainPlan(chain)
	for node, depth := n, 0; ; depth++ {
		if node.EstRows < 0 {
			t.Fatalf("explain node %s at depth %d lacks est_rows", node.Op, depth)
		}
		if len(node.Children) == 0 {
			break
		}
		node = node.Children[0]
	}
}
