package engine

import (
	"fmt"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// Plan is a physical plan node over period relations. Plans are produced
// from snapshot-semantics queries by the REWR rewriting (package rewrite)
// and executed by DB.Exec.
type Plan interface {
	planNode()
	String() string
}

// ScanP scans a stored period relation.
type ScanP struct{ Name string }

// FilterP filters rows by a predicate over the data columns.
type FilterP struct {
	Pred algebra.Expr
	In   Plan
}

// ProjectP projects the data columns (periods carried through), the
// Π_{A, Abegin, Aend} pattern of Fig 4.
type ProjectP struct {
	Exprs []algebra.NamedExpr
	In    Plan
}

// JoinP is the temporal join pattern of Fig 4: predicate ∧ overlap with
// period intersection.
type JoinP struct {
	L, R Plan
	Pred algebra.Expr
}

// UnionP is UNION ALL.
type UnionP struct{ L, R Plan }

// DiffP is snapshot-reducible EXCEPT ALL via split (Fig 4).
type DiffP struct{ L, R Plan }

// AggP is snapshot-reducible aggregation via split (Fig 4); PreAgg
// selects the §9 pre-aggregation optimization.
type AggP struct {
	GroupBy []string
	Aggs    []algebra.AggSpec
	PreAgg  bool
	In      Plan
}

// CoalesceP applies the coalesce operator C (Def 8.2).
type CoalesceP struct {
	Impl CoalesceImpl
	In   Plan
}

func (ScanP) planNode()     {}
func (FilterP) planNode()   {}
func (ProjectP) planNode()  {}
func (JoinP) planNode()     {}
func (UnionP) planNode()    {}
func (DiffP) planNode()     {}
func (AggP) planNode()      {}
func (CoalesceP) planNode() {}

func (p ScanP) String() string   { return p.Name }
func (p FilterP) String() string { return fmt.Sprintf("Filter[%s](%s)", p.Pred, p.In) }
func (p ProjectP) String() string {
	parts := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		parts[i] = fmt.Sprintf("%s→%s", ne.E, ne.Name)
	}
	return fmt.Sprintf("Project[%s](%s)", strings.Join(parts, ","), p.In)
}
func (p JoinP) String() string  { return fmt.Sprintf("TJoin[%s](%s, %s)", p.Pred, p.L, p.R) }
func (p UnionP) String() string { return fmt.Sprintf("UnionAll(%s, %s)", p.L, p.R) }
func (p DiffP) String() string  { return fmt.Sprintf("TDiff(%s, %s)", p.L, p.R) }
func (p AggP) String() string {
	mode := "naive"
	if p.PreAgg {
		mode = "preagg"
	}
	return fmt.Sprintf("TAgg[%v;%s](%s)", p.GroupBy, mode, p.In)
}
func (p CoalesceP) String() string { return fmt.Sprintf("Coalesce(%s)", p.In) }

// CountCoalesce returns the number of coalesce operators in the plan,
// used by the §9 ablation to report plan shape.
func CountCoalesce(p Plan) int {
	switch n := p.(type) {
	case ScanP:
		return 0
	case FilterP:
		return CountCoalesce(n.In)
	case ProjectP:
		return CountCoalesce(n.In)
	case JoinP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case UnionP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case DiffP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case AggP:
		return CountCoalesce(n.In)
	case CoalesceP:
		return 1 + CountCoalesce(n.In)
	default:
		return 0
	}
}

// DB is an in-memory temporal database: named period relations plus a
// plan executor. It stands in for the backend DBMS of the paper's
// middleware architecture.
type DB struct {
	dom    interval.Domain
	tables map[string]*Table
}

// NewDB returns an empty engine database over the given time domain.
func NewDB(dom interval.Domain) *DB {
	return &DB{dom: dom, tables: make(map[string]*Table)}
}

// Domain returns the database's time domain.
func (db *DB) Domain() interval.Domain { return db.dom }

// CreateTable registers an empty period relation with the given data
// schema and returns it for loading.
func (db *DB) CreateTable(name string, data tuple.Schema) *Table {
	t := NewTable(data)
	db.tables[name] = t
	return t
}

// AddTable registers an existing table under name.
func (db *DB) AddTable(name string, t *Table) { db.tables[name] = t }

// Table returns the period relation registered under name.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// RelationSchema implements algebra.Catalog, exposing the data schema
// (without period attributes) of stored tables.
func (db *DB) RelationSchema(name string) (tuple.Schema, error) {
	t, err := db.Table(name)
	if err != nil {
		return tuple.Schema{}, err
	}
	return t.DataSchema(), nil
}

// Exec evaluates a physical plan to a period relation.
func (db *DB) Exec(p Plan) (*Table, error) {
	switch n := p.(type) {
	case ScanP:
		return db.Table(n.Name)
	case FilterP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Filter(in, n.Pred)
	case ProjectP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Project(in, n.Exprs)
	case JoinP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return TemporalJoin(l, r, n.Pred)
	case UnionP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return UnionAll(l, r)
	case DiffP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return TemporalDiff(l, r)
	case AggP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return TemporalAggregate(in, n.GroupBy, n.Aggs, n.PreAgg, db.dom)
	case CoalesceP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Coalesce(in, n.Impl), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}
