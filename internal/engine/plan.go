package engine

import (
	"fmt"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// Plan is a physical plan node over period relations. Plans are produced
// from snapshot-semantics queries by the REWR rewriting (package rewrite)
// and executed by DB.Exec.
type Plan interface {
	planNode()
	String() string
}

// ScanP scans a stored period relation.
type ScanP struct{ Name string }

// FilterP filters rows by a predicate over the data columns.
type FilterP struct {
	Pred algebra.Expr
	In   Plan
}

// ProjectP projects the data columns (periods carried through), the
// Π_{A, Abegin, Aend} pattern of Fig 4.
type ProjectP struct {
	Exprs []algebra.NamedExpr
	In    Plan
}

// BuildSide fixes the hash-join build side. BuildAuto (the zero value)
// keeps the executors' own estimate-based selection; the physical
// planner pass (package rewrite) pins a side so the decision is made
// once, with statistics, and EXPLAIN can report why.
type BuildSide uint8

const (
	BuildAuto BuildSide = iota
	BuildLeftSide
	BuildRightSide
)

// JoinP is the temporal join pattern of Fig 4: predicate ∧ overlap with
// period intersection. Build and BuildHint are physical annotations set
// by the planner's cost pass: Build pins the hash-join build side and
// BuildHint pre-sizes the build hash table to the estimated build-side
// row count (0 = no hint). Both are ignored by the overlap-sweep
// fallback and never affect results.
type JoinP struct {
	L, R      Plan
	Pred      algebra.Expr
	Build     BuildSide
	BuildHint int64
}

// UnionP is UNION ALL.
type UnionP struct{ L, R Plan }

// DiffP is snapshot-reducible EXCEPT ALL via split (Fig 4). With
// Streaming set the streaming executor runs the ℕ-monus difference as a
// two-input begin-sorted merge sweep with O(open intervals + active
// groups) state instead of materializing both inputs; the planner
// (package rewrite) only sets it when the interval-endpoint order of
// BOTH children is guaranteed.
type DiffP struct {
	L, R      Plan
	Streaming bool
}

// AggP is snapshot-reducible aggregation via split (Fig 4); PreAgg
// selects the §9 pre-aggregation optimization. With Streaming set the
// streaming executor runs the pre-aggregated sweep incrementally over
// begin-sorted input with O(active-groups) state instead of
// materializing the input first; the planner (package rewrite) only sets
// it when PreAgg holds and the input order is guaranteed.
type AggP struct {
	GroupBy   []string
	Aggs      []algebra.AggSpec
	PreAgg    bool
	Streaming bool
	In        Plan
}

// CoalesceP applies the coalesce operator C (Def 8.2). With Streaming
// set the streaming executor coalesces incrementally over begin-sorted
// input with O(active-groups) state; the planner only sets it when the
// input order is guaranteed.
type CoalesceP struct {
	Impl      CoalesceImpl
	Streaming bool
	In        Plan
}

// SortP is the interval-endpoint sort enforcer: it materializes its
// input and re-emits it ordered by (begin, end). Semantically it is the
// identity on multisets; physically it establishes the begin order the
// streaming sweep operators require.
type SortP struct{ In Plan }

// WindowP is the timeslice operator τ_T over period encodings: every
// row's validity interval is clipped to the window T, and rows not
// overlapping T are dropped. Snapshot-reducibility lets the planner's
// pushdown pass (package rewrite, which documents the per-operator
// legality rules) move it from the plan root toward the scans. Clipping
// takes max(begin, T.Begin), which is non-decreasing for begin-sorted
// input, so WindowP preserves the interval-endpoint sort property.
//
// A WindowP node always clips — an invalid T yields the empty result;
// "no window" is expressed by not inserting the node. Prune permits the
// executors to apply the endpoint zone-map check when the node sits
// directly over a stored-table scan: a scan whose min/max endpoint
// envelope is disjoint from T is skipped outright, and a begin-sorted
// scan stops at the first begin ≥ T.End. It is set by the physical
// planner pass and never required for correctness.
type WindowP struct {
	T     interval.Interval
	Prune bool
	In    Plan
}

func (ScanP) planNode()     {}
func (FilterP) planNode()   {}
func (ProjectP) planNode()  {}
func (JoinP) planNode()     {}
func (UnionP) planNode()    {}
func (DiffP) planNode()     {}
func (AggP) planNode()      {}
func (CoalesceP) planNode() {}
func (SortP) planNode()     {}
func (WindowP) planNode()   {}

func (p ScanP) String() string   { return p.Name }
func (p FilterP) String() string { return fmt.Sprintf("Filter[%s](%s)", p.Pred, p.In) }
func (p ProjectP) String() string {
	parts := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		parts[i] = fmt.Sprintf("%s→%s", ne.E, ne.Name)
	}
	return fmt.Sprintf("Project[%s](%s)", strings.Join(parts, ","), p.In)
}
func (p JoinP) String() string  { return fmt.Sprintf("TJoin[%s](%s, %s)", p.Pred, p.L, p.R) }
func (p UnionP) String() string { return fmt.Sprintf("UnionAll(%s, %s)", p.L, p.R) }
func (p DiffP) String() string {
	if p.Streaming {
		return fmt.Sprintf("StreamTDiff(%s, %s)", p.L, p.R)
	}
	return fmt.Sprintf("TDiff(%s, %s)", p.L, p.R)
}
func (p AggP) String() string {
	mode := "naive"
	if p.PreAgg {
		mode = "preagg"
	}
	if p.Streaming {
		mode += ";stream"
	}
	return fmt.Sprintf("TAgg[%v;%s](%s)", p.GroupBy, mode, p.In)
}
func (p CoalesceP) String() string {
	if p.Streaming {
		return fmt.Sprintf("StreamCoalesce(%s)", p.In)
	}
	return fmt.Sprintf("Coalesce(%s)", p.In)
}
func (p SortP) String() string { return fmt.Sprintf("SortByEndpoints(%s)", p.In) }
func (p WindowP) String() string {
	return fmt.Sprintf("Window[%s](%s)", p.T, p.In)
}

// CountCoalesce returns the number of coalesce operators in the plan,
// used by the §9 ablation to report plan shape.
func CountCoalesce(p Plan) int {
	switch n := p.(type) {
	case ScanP:
		return 0
	case FilterP:
		return CountCoalesce(n.In)
	case ProjectP:
		return CountCoalesce(n.In)
	case JoinP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case UnionP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case DiffP:
		return CountCoalesce(n.L) + CountCoalesce(n.R)
	case AggP:
		return CountCoalesce(n.In)
	case CoalesceP:
		return 1 + CountCoalesce(n.In)
	case SortP:
		return CountCoalesce(n.In)
	case WindowP:
		return CountCoalesce(n.In)
	default:
		return 0
	}
}

// BeginOrdered reports whether the output of p is guaranteed to be
// ordered by ascending interval begin: the physical property the
// streaming sweep operators require.
func (db *DB) BeginOrdered(p Plan) bool {
	return BeginOrderedWith(p, db.ScanBeginSorted)
}

// ScanBeginSorted reports whether the stored table name is begin-sorted
// (false for unknown tables). Tables loaded through Append or sorted
// through SortByEndpoints answer from cached metadata in O(1); only
// hand-built tables (direct Rows writes) fall back to an O(n) rescan,
// which the planner additionally memoizes per Rewrite call.
func (db *DB) ScanBeginSorted(name string) bool {
	t, err := db.Table(name)
	return err == nil && t.BeginSorted()
}

// BeginOrderedWith is BeginOrdered parameterized over the scan-order
// source, so planners can layer caching over the O(n) table scans.
// Filter and Project preserve their input order (they carry the period
// attributes through unchanged), the sort enforcer establishes it, and
// a table scan provides it when the stored rows happen to be
// begin-sorted. Everything else — unions (concatenation), joins
// (intersection periods), the sweep outputs themselves — makes no
// global order guarantee.
func BeginOrderedWith(p Plan, scanSorted func(string) bool) bool {
	switch n := p.(type) {
	case ScanP:
		return scanSorted(n.Name)
	case FilterP:
		return BeginOrderedWith(n.In, scanSorted)
	case ProjectP:
		return BeginOrderedWith(n.In, scanSorted)
	case WindowP:
		// Clipping maps begin to max(begin, T.Begin) — monotone, so a
		// begin-sorted input stays begin-sorted.
		return BeginOrderedWith(n.In, scanSorted)
	case SortP:
		return true
	default:
		return false
	}
}

// DB is an in-memory temporal database: named period relations plus a
// plan executor. It stands in for the backend DBMS of the paper's
// middleware architecture.
type DB struct {
	dom    interval.Domain
	tables map[string]*Table
}

// NewDB returns an empty engine database over the given time domain.
func NewDB(dom interval.Domain) *DB {
	return &DB{dom: dom, tables: make(map[string]*Table)}
}

// Domain returns the database's time domain.
func (db *DB) Domain() interval.Domain { return db.dom }

// CreateTable registers an empty period relation with the given data
// schema and returns it for loading.
func (db *DB) CreateTable(name string, data tuple.Schema) *Table {
	t := NewTable(data)
	db.tables[name] = t
	return t
}

// AddTable registers an existing table under name.
func (db *DB) AddTable(name string, t *Table) { db.tables[name] = t }

// Table returns the period relation registered under name.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// RelationSchema implements algebra.Catalog, exposing the data schema
// (without period attributes) of stored tables.
func (db *DB) RelationSchema(name string) (tuple.Schema, error) {
	t, err := db.Table(name)
	if err != nil {
		return tuple.Schema{}, err
	}
	return t.DataSchema(), nil
}

// Exec evaluates a physical plan to a period relation.
func (db *DB) Exec(p Plan) (*Table, error) {
	switch n := p.(type) {
	case ScanP:
		return db.Table(n.Name)
	case FilterP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Filter(in, n.Pred)
	case ProjectP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Project(in, n.Exprs)
	case JoinP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return TemporalJoin(l, r, n.Pred)
	case UnionP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return UnionAll(l, r)
	case DiffP:
		l, err := db.Exec(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.Exec(n.R)
		if err != nil {
			return nil, err
		}
		return TemporalDiff(l, r)
	case AggP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return TemporalAggregate(in, n.GroupBy, n.Aggs, n.PreAgg, db.dom)
	case CoalesceP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return Coalesce(in, n.Impl), nil
	case SortP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		out := in.Clone()
		// Through the method, not SortRowsByEndpoints(out.Rows): the
		// clone carried the input's metadata, which the sort must update.
		out.SortByEndpoints()
		return out, nil
	case WindowP:
		in, err := db.Exec(n.In)
		if err != nil {
			return nil, err
		}
		return ClipWindow(in, n.T), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}
