package engine

// This file is the per-query fault domain of the engine: the
// error-carrying iterator protocol (ErrIter), the error-aware drain
// (MaterializeErr), the periodic context-check wrapper that gives the
// sequential pipeline a cancellation story, and the per-query resource
// governor (deadline, row limit, memory budget over the state the
// observability layer already accounts for).
//
// The protocol mirrors how BatchIter extends RowIter: ErrIter is an
// extension interface, probed with a type assertion exactly once — at
// end of stream — so the per-row hot path pays nothing. The contract
// is:
//
//   - Next (or NextBatch) returning false means the stream ENDED; it
//     does not say why. A consumer that cares whether the end was
//     natural must follow the exhausted drain with an Err check
//     (IterErr on the iterator it drained, or Rows.Err on the cursor).
//   - Err returns nil after a natural end of stream, and the first
//     error that terminated the stream early otherwise: a failed
//     operator, an injected chaos fault, a contained panic, a tripped
//     resource limit, or context cancellation.
//   - Operators delegate Err to their children, so the root of a
//     sequential pipeline reports the deepest failure; pipelines with
//     goroutine boundaries (the parallel executor's exchanges) funnel
//     producer-side errors into the executor's central error slot
//     instead, and the root iterator checks both.
//
// The snapdebug build tag adds CheckErrChecked, which asserts the first
// rule at the stream root: an exhausted-then-Closed iterator whose Err
// was never consulted panics naming the offending drain site. The
// errpropagate snaplint analyzer enforces the same rule statically.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"snapk/internal/tuple"
)

// ErrIter is the error-reporting extension of RowIter, mirroring how
// BatchIter extends it: iterators that can end early report the reason
// through Err. Err must return nil while the stream is still live and
// after a natural end, and the terminating error after an early end.
// It must be safe to call after Close.
type ErrIter interface {
	Err() error
}

// IterErr returns the terminal error carried by it, or nil when it
// does not implement ErrIter or ended naturally. This is the standard
// post-drain check of the error-carrying iterator protocol.
func IterErr(it RowIter) error {
	if e, ok := it.(ErrIter); ok {
		return e.Err()
	}
	return nil
}

// FirstErr returns the first non-nil error of errs.
func FirstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MaterializeErr drains it into a table and reports the error that
// ended the stream early, nil on a natural end. It does not Close it.
// Use this instead of Materialize wherever a truncated drain must not
// silently pass for a complete one.
func MaterializeErr(it RowIter) (*Table, error) {
	t := &Table{Schema: it.Schema()}
	if bi, ok := it.(BatchIter); ok {
		b := NewRowBatch(DefaultBatchSize)
		for bi.NextBatch(b) {
			// Materialization is the ownership hand-off point: the batch's
			// row slice is copied out before the producer reuses it, and
			// engine producers never reuse yielded row backing arrays.
			t.Rows = append(t.Rows, b.Rows...)
		}
		return t, IterErr(it)
	}
	for {
		row, ok := it.Next()
		if !ok {
			return t, IterErr(it)
		}
		//lint:ignore rowretain materialization is the ownership hand-off point; engine producers never reuse yielded backing arrays
		t.Rows = append(t.Rows, row)
	}
}

// IterWrapper is an iterator-wrapping hook: given a stable site name
// ("scan:emp", "exchange:merge") and the iterator built there, it
// returns the iterator to use instead. The chaos fault-injection layer
// plugs in through this shape (rewrite.Options.Inject,
// parallel.Options.Inject); nil means no wrapping.
type IterWrapper func(site string, it RowIter) RowIter

// Typed resource-governor errors. They are surfaced through the
// error-carrying iterator protocol (Rows.Err on the cursor), so
// callers can errors.Is against them to distinguish graceful
// degradation from genuine failures.
var (
	// ErrRowLimit terminates a query whose result exceeded the
	// configured row limit.
	ErrRowLimit = errors.New("engine: query row limit exceeded")
	// ErrMemBudget terminates a query whose tracked operator state
	// (sweep open intervals and active groups, hash-join build side,
	// ordered-exchange queue depth) exceeded the configured budget.
	ErrMemBudget = errors.New("engine: query memory budget exceeded")
)

// Limits configures the per-query resource governor. The zero value
// disables governing entirely.
type Limits struct {
	// Timeout bounds query wall time; the query ends with
	// context.DeadlineExceeded through Err when it fires. Zero
	// disables.
	Timeout time.Duration
	// RowLimit bounds the rows a query may emit through its root
	// cursor; exceeding it ends the query with ErrRowLimit. Zero
	// disables.
	RowLimit int64
	// MemBudget bounds the bytes of tracked operator state — streaming
	// sweep state (the max_state accounting EXPLAIN ANALYZE reports),
	// hash-join build sides, and ordered-exchange queue depth —
	// charged through ApproxRowBytes estimates. Exceeding it ends the
	// query with ErrMemBudget. Zero disables.
	MemBudget int64
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.Timeout > 0 || l.RowLimit > 0 || l.MemBudget > 0
}

// Governor enforces one query's Limits. All methods are nil-safe and
// safe for concurrent use from fragment goroutines; a nil *Governor is
// the production fast path (no limits, no cost).
type Governor struct {
	lim  Limits
	rows atomic.Int64
	mem  atomic.Int64
}

// NewGovernor returns a governor for lim, or nil when no limit is set
// (so every charge site stays on its nil fast path).
func NewGovernor(lim Limits) *Governor {
	if !lim.Enabled() {
		return nil
	}
	return &Governor{lim: lim}
}

// Timeout returns the configured per-query deadline (0 when none, and
// on a nil governor).
func (g *Governor) Timeout() time.Duration {
	if g == nil {
		return 0
	}
	return g.lim.Timeout
}

// CountRows records n rows emitted through the query root and returns
// ErrRowLimit once the total exceeds the configured limit.
func (g *Governor) CountRows(n int64) error {
	if g == nil || g.lim.RowLimit <= 0 {
		return nil
	}
	if g.rows.Add(n) > g.lim.RowLimit {
		return ErrRowLimit
	}
	return nil
}

// ChargeMem charges n bytes of tracked operator state and returns
// ErrMemBudget once the outstanding total exceeds the budget. The
// charge sticks even on error, so concurrent charge sites observe the
// breach consistently; a query over budget is terminating anyway.
func (g *Governor) ChargeMem(n int64) error {
	if g == nil || g.lim.MemBudget <= 0 {
		return nil
	}
	if g.mem.Add(n) > g.lim.MemBudget {
		return ErrMemBudget
	}
	return nil
}

// ReleaseMem returns n bytes of tracked state (a drained exchange
// queue batch, a closed operator's state).
func (g *Governor) ReleaseMem(n int64) {
	if g == nil || g.lim.MemBudget <= 0 {
		return
	}
	g.mem.Add(-n)
}

// MemInUse returns the currently outstanding tracked bytes (0 on a nil
// governor); exposed for tests and diagnostics.
func (g *Governor) MemInUse() int64 {
	if g == nil {
		return 0
	}
	return g.mem.Load()
}

// ApproxRowBytes estimates the in-memory footprint of one period row
// of the given arity: the slice header and backing array plus the
// tagged values. It is deliberately a cheap static estimate — the
// governor bounds state growth, it does not meter the allocator.
func ApproxRowBytes(arity int) int64 {
	return 48 + 16*int64(arity)
}

// ctxCheckEvery is the default row interval between context probes of
// NewCtxIter's per-row path: frequent enough that a canceled sequential
// query stops within a morsel's worth of rows, rare enough that the
// probe stays invisible next to the virtual-call tax it amortizes over.
const ctxCheckEvery = 256

// NewCtxIter wraps in with a periodic context check: the sequential
// pipeline's cancellation story. Batch drives probe ctx once per
// NextBatch; per-row drives probe once every `every` rows (values < 1
// select the default), so the per-row ablation keeps its cost profile.
// On cancellation the stream ends and Err reports ctx.Err(); otherwise
// Err delegates to the input. Batch capability of in is preserved.
func NewCtxIter(ctx context.Context, in RowIter, every int) RowIter {
	if every < 1 {
		every = ctxCheckEvery
	}
	ci := ctxIter{ctx: ctx, in: in, every: every}
	if bi, ok := in.(BatchIter); ok {
		return &ctxBatchIter{ctxIter: ci, bin: bi}
	}
	return &ci
}

type ctxIter struct {
	ctx   context.Context
	in    RowIter
	every int
	n     int
	err   error
}

func (it *ctxIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *ctxIter) Next() (tuple.Tuple, bool) {
	if it.err != nil {
		return nil, false
	}
	it.n++
	if it.n >= it.every {
		it.n = 0
		if err := it.ctx.Err(); err != nil {
			it.err = err
			return nil, false
		}
	}
	return it.in.Next()
}

func (it *ctxIter) Close() { it.in.Close() }

// Err reports the observed cancellation, or the input's own error.
func (it *ctxIter) Err() error { return FirstErr(it.err, IterErr(it.in)) }

type ctxBatchIter struct {
	ctxIter
	bin BatchIter
}

func (it *ctxBatchIter) NextBatch(b *RowBatch) bool {
	if it.err != nil {
		b.Reset()
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		b.Reset()
		return false
	}
	return it.bin.NextBatch(b)
}

// GovernState wraps a sweep iterator with memory-budget accounting of
// its peak state: the same open-interval/active-group count the
// observability layer reports as max_state, priced at unitBytes per
// unit. The charge is polled amortized — once per NextBatch, once per
// ctxCheckEvery rows under per-row drive — and released on Close. When
// in does not expose StateSizer (or gov is nil) the input is returned
// unchanged.
func GovernState(in RowIter, gov *Governor, unitBytes int64) RowIter {
	sz, ok := in.(StateSizer)
	if !ok || gov == nil {
		return in
	}
	gi := govStateIter{in: in, sizer: sz, gov: gov, unit: unitBytes}
	if bi, ok := in.(BatchIter); ok {
		return &govStateBatchIter{govStateIter: gi, bin: bi}
	}
	return &gi
}

type govStateIter struct {
	in      RowIter
	sizer   StateSizer
	gov     *Governor
	unit    int64
	charged int64 // state units charged so far (monotone: MaxState is a peak)
	n       int
	err     error
	closed  bool
}

func (it *govStateIter) Schema() tuple.Schema { return it.in.Schema() }

// MaxState forwards the StateSizer hook so EXPLAIN ANALYZE still sees
// the sweep's peak state through the governor wrapper.
func (it *govStateIter) MaxState() int64 { return it.sizer.MaxState() }

// charge tops the charged amount up to the current peak state.
func (it *govStateIter) charge() error {
	cur := it.sizer.MaxState()
	if cur > it.charged {
		err := it.gov.ChargeMem((cur - it.charged) * it.unit)
		it.charged = cur
		return err
	}
	return nil
}

func (it *govStateIter) Next() (tuple.Tuple, bool) {
	if it.err != nil {
		return nil, false
	}
	it.n++
	if it.n >= ctxCheckEvery {
		it.n = 0
		if err := it.charge(); err != nil {
			it.err = err
			return nil, false
		}
	}
	return it.in.Next()
}

func (it *govStateIter) Close() {
	if !it.closed {
		it.closed = true
		it.gov.ReleaseMem(it.charged * it.unit)
	}
	it.in.Close()
}

func (it *govStateIter) Err() error { return FirstErr(it.err, IterErr(it.in)) }

type govStateBatchIter struct {
	govStateIter
	bin BatchIter
}

func (it *govStateBatchIter) NextBatch(b *RowBatch) bool {
	if it.err != nil {
		b.Reset()
		return false
	}
	if err := it.charge(); err != nil {
		it.err = err
		b.Reset()
		return false
	}
	return it.bin.NextBatch(b)
}
