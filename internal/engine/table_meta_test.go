package engine

// Tests for the cached table metadata invariants documented in the
// package comment: who sets sortedness/coalescedness, who invalidates,
// and — the acceptance property — that the planner's sortedness probe
// is answered from metadata (a cache HIT) rather than an O(n) rescan on
// the load and sort paths.

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

func metaTable(begins ...int64) *Table {
	t := NewTable(tuple.NewSchema("x"))
	for i, b := range begins {
		t.Append(tuple.Tuple{tuple.Int(int64(i % 3))}, interval.New(b, b+5), 1)
	}
	return t
}

func TestAppendMaintainsSortedMetadata(t *testing.T) {
	tb := metaTable(1, 3, 3, 7)
	if tb.meta.sorted != propTrue {
		t.Fatalf("ascending loads must stay known-sorted, got state %d", tb.meta.sorted)
	}
	if !tb.BeginSorted() {
		t.Fatal("BeginSorted() = false on a sorted load")
	}
	tb.Append(tuple.Tuple{tuple.Int(9)}, interval.New(2, 6), 1) // out of order
	if tb.meta.sorted != propFalse {
		t.Fatalf("out-of-order append must make the table known-unsorted, got state %d", tb.meta.sorted)
	}
	if tb.BeginSorted() {
		t.Fatal("BeginSorted() = true after an out-of-order append")
	}
}

// The metadata HIT path: after a sorted load, BeginSorted answers from
// the cache. We prove no rescan happens by corrupting Rows behind the
// metadata's back — the documented invariant is that direct writers
// must call InvalidateMeta/SetRows, so the stale answer demonstrates
// the cache was trusted.
func TestBeginSortedAnswersFromMetadata(t *testing.T) {
	tb := metaTable(1, 2, 3, 4)
	tb.Rows[0], tb.Rows[3] = tb.Rows[3], tb.Rows[0] // direct write, no invalidation
	if !tb.BeginSorted() {
		t.Fatal("metadata miss: BeginSorted rescanned the rows instead of using the cache")
	}
	tb.InvalidateMeta()
	if tb.BeginSorted() {
		t.Fatal("after InvalidateMeta, BeginSorted must rescan and see the corruption")
	}
}

// The planner-facing probe must take the same hit path for stored
// tables.
func TestScanBeginSortedUsesMetadata(t *testing.T) {
	db := NewDB(interval.NewDomain(0, 100))
	tb := db.CreateTable("t", tuple.NewSchema("x"))
	for i := int64(0); i < 10; i++ {
		tb.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i, i+2), 1)
	}
	tb.Rows[0], tb.Rows[9] = tb.Rows[9], tb.Rows[0] // direct write, no invalidation
	if !db.ScanBeginSorted("t") {
		t.Fatal("ScanBeginSorted rescanned instead of answering from table metadata")
	}
	tb.InvalidateMeta()
	if db.ScanBeginSorted("t") {
		t.Fatal("ScanBeginSorted must see the corruption once metadata is invalidated")
	}
}

func TestSortByEndpointsSetsMetadata(t *testing.T) {
	tb := metaTable(5, 1, 3)
	if tb.meta.sorted != propFalse {
		t.Fatalf("descending load should be known-unsorted, got %d", tb.meta.sorted)
	}
	tb.SortByEndpoints()
	if tb.meta.sorted != propTrue || !tb.BeginSorted() {
		t.Fatal("SortByEndpoints must establish known-sorted metadata")
	}
	// Further in-order appends extend the sorted run.
	tb.Append(tuple.Tuple{tuple.Int(8)}, interval.New(9, 12), 1)
	if tb.meta.sorted != propTrue {
		t.Fatal("in-order append after SortByEndpoints must stay known-sorted")
	}
}

func TestSortDropsSortednessToUnknown(t *testing.T) {
	tb := metaTable(1, 2, 3)
	tb.Sort()
	if tb.meta.sorted != propUnknown {
		t.Fatalf("Sort (data-major) must drop sortedness to unknown, got %d", tb.meta.sorted)
	}
	// Unknown falls back to the honest rescan.
	if got, want := tb.BeginSorted(), RowsBeginSorted(tb.Rows); got != want {
		t.Fatalf("unknown state must rescan: BeginSorted %v, rows %v", got, want)
	}
}

func TestSetRowsInvalidates(t *testing.T) {
	tb := metaTable(1, 2, 3)
	rows := []tuple.Tuple{tb.Rows[2], tb.Rows[0]}
	tb.SetRows(rows)
	if tb.meta.sorted != propUnknown {
		t.Fatal("SetRows must drop metadata")
	}
	if tb.BeginSorted() {
		t.Fatal("SetRows with unsorted rows must rescan to false")
	}
}

func TestCloneCopiesMetadata(t *testing.T) {
	tb := metaTable(1, 2, 3)
	c := tb.Clone()
	if c.meta.sorted != propTrue {
		t.Fatal("Clone must carry the metadata of the shared rows")
	}
}

// Operators that build result tables with direct Rows writes must not
// inherit NewTable's known-sorted/coalesced empty state (regression:
// Project once did, making unsorted projections claim begin order).
func TestOperatorOutputsStartWithUnknownMetadata(t *testing.T) {
	in := metaTable(9, 4, 1) // descending begins: known-unsorted input
	out, err := Project(in, []algebra.NamedExpr{{Name: "x", E: algebra.Col("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if out.meta.sorted != propUnknown || out.meta.coalesced != propUnknown {
		t.Fatalf("Project output metadata must be unknown, got sorted=%d coalesced=%d",
			out.meta.sorted, out.meta.coalesced)
	}
	if out.BeginSorted() {
		t.Fatal("Project of a descending table must not report begin-sorted")
	}
}

func TestCoalescedMetadata(t *testing.T) {
	tb := metaTable(1, 1, 2, 8)
	if tb.KnownCoalesced() {
		t.Fatal("a raw load must not claim coalescedness")
	}
	out := Coalesce(tb, CoalesceNative)
	if !out.KnownCoalesced() {
		t.Fatal("Coalesce output must be marked coalesced")
	}
	// A permutation preserves the multiset property...
	out.Sort()
	if !out.KnownCoalesced() {
		t.Fatal("Sort must keep coalescedness (multiset property)")
	}
	// ...but an append can break it.
	out.Append(tuple.Tuple{tuple.Int(0)}, interval.New(0, 50), 1)
	if out.KnownCoalesced() {
		t.Fatal("Append must drop coalescedness to unknown")
	}
}
