// Unit tests of the EXPLAIN ANALYZE collection layer: nil-safety of the
// collector-off path, ObsIter counting, sweep-state capture, the
// rendered operator tree and the Chrome-trace export.
package engine_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// obsDB builds a 50-row single-table database whose intervals overlap
// heavily, so streaming sweeps accumulate real open-interval state.
func obsDB() *engine.DB {
	db := engine.NewDB(interval.NewDomain(0, 100))
	tb := db.CreateTable("t", tuple.NewSchema("g", "v"))
	for i := 0; i < 50; i++ {
		b := int64(i % 10)
		tb.Append(tuple.Tuple{tuple.Int(int64(i % 3)), tuple.Int(int64(i))}, interval.New(b, b+5), 1)
	}
	return db
}

// Every instrumentation hook must be an identity no-op without a
// collector: nil OpStats receivers absorb all calls, and NewObsIter
// returns its input unchanged.
func TestObsNilSafety(t *testing.T) {
	var st *engine.OpStats
	if st.Child("x", "") != nil {
		t.Fatal("nil OpStats.Child must return nil")
	}
	if st.Fragment(2) != nil {
		t.Fatal("nil OpStats.Fragment must return nil")
	}
	st.AddBatch()
	st.AddWait(5)
	st.InitParts(3)
	st.AddPartRows(0, 1)
	st.Span()()

	db := obsDB()
	it, err := db.ExecStream(engine.ScanP{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if engine.NewObsIter(it, nil) != it {
		t.Fatal("NewObsIter without a stats node must be the identity")
	}
}

// An analyzed enforced-streaming coalesce must report exact per-operator
// row counts, the sweep's peak state, a tree mirroring the plan, and a
// well-formed Chrome trace.
func TestAnalyzeCountsStateAndTrace(t *testing.T) {
	db := obsDB()
	col := engine.NewCollector()
	plan := engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "t"}}, Streaming: true}
	it, err := db.ExecStreamObs(plan, col.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Materialize(it)
	it.Close()

	root := col.RootOp()
	if root == nil || root.Label != "Coalesce" || root.Detail != "streaming" {
		t.Fatalf("unexpected root stats node: %+v", root)
	}
	if root.Rows() != int64(res.Len()) {
		t.Fatalf("root rows=%d, materialized %d", root.Rows(), res.Len())
	}
	// Materialize drives the batch-capable chain via NextBatch, so the
	// pull counter amortizes: one Next/NextBatch call per delivered batch
	// plus the exhausting call, with the row count unchanged.
	if root.Batches() < 1 {
		t.Fatalf("batch-driven drain must count batches, got %d", root.Batches())
	}
	if root.Nexts() != root.Batches()+1 {
		t.Fatalf("drained batch iterator must count batches+1 pull calls, got batches=%d nexts=%d", root.Batches(), root.Nexts())
	}
	if root.MaxState() <= 0 {
		t.Fatal("streaming sweep must report peak open-interval/group state")
	}
	ch := root.Children()
	if len(ch) != 1 || ch[0].Label != "Sort" {
		t.Fatalf("expected one Sort child under Coalesce, got %+v", ch)
	}
	sc := ch[0].Children()
	if len(sc) != 1 || sc[0].Label != "Scan" || sc[0].Detail != "t" {
		t.Fatalf("expected a Scan[t] child under Sort, got %+v", sc)
	}
	if sc[0].Rows() != 50 {
		t.Fatalf("scan rows=%d, want 50", sc[0].Rows())
	}

	out := col.Render()
	for _, want := range []string{"Coalesce [streaming]", "Sort", "Scan [t]", "rows=50", "max_state="} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree lacks %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) < 4 || tr.TraceEvents[0].Ph != "M" {
		t.Fatalf("trace must open with the metadata event and carry one span per active operator: %s", buf.String())
	}
	spans := 0
	for _, ev := range tr.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Fatalf("unexpected trace phase %q", ev.Ph)
		}
		if ev.Args["rows"] == nil {
			t.Fatalf("span %s lacks a rows arg", ev.Name)
		}
		spans++
	}
	if spans != 3 {
		t.Fatalf("expected 3 operator spans (Coalesce, Sort, Scan), got %d", spans)
	}
}

// The per-row ablation (engine.PerRow) must restore the classic Volcano
// accounting: one Next call per row plus the exhausting call, and no
// batch counter.
func TestAnalyzePerRowAblationCounts(t *testing.T) {
	db := obsDB()
	col := engine.NewCollector()
	plan := engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "t"}}, Streaming: true}
	it, err := db.ExecStreamObs(plan, col.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Materialize(engine.PerRow(it))
	it.Close()
	root := col.RootOp()
	if root.Rows() != int64(res.Len()) {
		t.Fatalf("root rows=%d, materialized %d", root.Rows(), res.Len())
	}
	if root.Nexts() != root.Rows()+1 {
		t.Fatalf("per-row drain must count rows+1 Next calls, got rows=%d nexts=%d", root.Rows(), root.Nexts())
	}
	if root.Batches() != 0 {
		t.Fatalf("per-row drain must not count batches, got %d", root.Batches())
	}
}

// Closing an analyzed iterator before exhaustion must still snapshot the
// sweep state and keep the counters consistent.
func TestAnalyzeEarlyCloseSnapshotsState(t *testing.T) {
	db := obsDB()
	col := engine.NewCollector()
	plan := engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "t"}}, Streaming: true}
	it, err := db.ExecStreamObs(plan, col.Root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("stream ended before the early close")
		}
	}
	it.Close()
	root := col.RootOp()
	if root.Rows() != 5 || root.Nexts() != 5 {
		t.Fatalf("early close: rows=%d nexts=%d, want 5/5", root.Rows(), root.Nexts())
	}
	if root.MaxState() <= 0 {
		t.Fatal("Close must snapshot the sweep's peak state")
	}
}
