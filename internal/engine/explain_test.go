// Shape tests of the static EXPLAIN tree: plan isomorphism, sweep-mode
// classification, join strategy detail and the rendered text.
package engine_test

import (
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// explainDB holds one unsorted and one begin-sorted table, so the same
// plan explains as blocking over one and streaming over the other.
func explainDB() *engine.DB {
	db := engine.NewDB(interval.NewDomain(0, 100))
	un := db.CreateTable("un", tuple.NewSchema("k", "v"))
	so := db.CreateTable("so", tuple.NewSchema("k", "w"))
	for i := 0; i < 20; i++ {
		b := int64((i * 7) % 50)
		un.Append(tuple.Tuple{tuple.Int(int64(i % 4)), tuple.Int(int64(i))}, interval.New(b, b+10), 1)
		so.Append(tuple.Tuple{tuple.Int(int64(i % 4)), tuple.Int(int64(i))}, interval.New(int64(i), int64(i)+10), 1)
	}
	return db
}

func TestExplainSweepModes(t *testing.T) {
	db := explainDB()
	cases := []struct {
		name string
		plan engine.Plan
		mode string
	}{
		{"blocking over unsorted", engine.CoalesceP{In: engine.ScanP{Name: "un"}}, "blocking"},
		{"enforced behind sort", engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "un"}}, Streaming: true}, "enforced"},
		{"streaming over sorted", engine.CoalesceP{In: engine.ScanP{Name: "so"}, Streaming: true}, "streaming"},
	}
	for _, c := range cases {
		n := db.ExplainPlan(c.plan)
		if n.Op != "Coalesce" || n.Mode != c.mode {
			t.Fatalf("%s: got op=%q mode=%q, want Coalesce/%s", c.name, n.Op, n.Mode, c.mode)
		}
		if len(n.Children) != 1 {
			t.Fatalf("%s: explain tree not isomorphic to the plan: %+v", c.name, n)
		}
	}
	// The sort property must be reported on the nodes that carry it.
	if db.ExplainPlan(engine.ScanP{Name: "un"}).Ordered {
		t.Fatal("unsorted scan must not report the order property")
	}
	if !db.ExplainPlan(engine.ScanP{Name: "so"}).Ordered {
		t.Fatal("begin-sorted scan must report the order property")
	}
	if db.ExplainPlan(engine.ScanP{Name: "so"}).EstRows != 20 {
		t.Fatal("scan must estimate its stored cardinality")
	}
}

// Every EXPLAIN node carries est_rows: exact on scans, heuristic but
// present above them, and -1 only when a table is unknown.
func TestExplainEstRowsOnEveryNode(t *testing.T) {
	db := explainDB()
	plan := engine.CoalesceP{
		In: engine.JoinP{
			L:    engine.FilterP{Pred: algebra.Eq(algebra.Col("k"), algebra.IntC(1)), In: engine.ScanP{Name: "un"}},
			R:    engine.WindowP{T: interval.New(5, 15), In: engine.ScanP{Name: "so"}},
			Pred: algebra.Eq(algebra.Col("k"), algebra.Col("r.k")),
		},
	}
	var walk func(n *engine.ExplainNode, path string)
	walk = func(n *engine.ExplainNode, path string) {
		if n.EstRows < 0 {
			t.Fatalf("node %s%s lacks est_rows", path, n.Op)
		}
		for _, c := range n.Children {
			walk(c, path+n.Op+"/")
		}
	}
	walk(db.ExplainPlan(plan), "")
	// Non-leaf estimates reflect the operators, not just the scan counts:
	// the window keeps a fraction of the 20 stored rows.
	root := db.ExplainPlan(plan)
	win := root.Children[0].Children[1]
	if win.Op != "Window" {
		t.Fatalf("explain tree shape changed: %+v", win)
	}
	if win.EstRows <= 0 || win.EstRows >= 20 {
		t.Fatalf("window est_rows = %d, want in (0, 20)", win.EstRows)
	}
	// Unknown tables surface as the -1 sentinel, not a fake estimate.
	if got := db.ExplainPlan(engine.ScanP{Name: "missing"}).EstRows; got != -1 {
		t.Fatalf("unknown-table est_rows = %d, want -1", got)
	}
}

// The Window node explains with its interval and, when the physical pass
// marked it, the prune annotation.
func TestExplainWindowNode(t *testing.T) {
	db := explainDB()
	T := interval.New(5, 15)
	n := db.ExplainPlan(engine.WindowP{T: T, In: engine.ScanP{Name: "so"}})
	if n.Op != "Window" || n.Detail != T.String() {
		t.Fatalf("window node = %q [%q], want Window [%s]", n.Op, n.Detail, T)
	}
	if len(n.Children) != 1 || n.Children[0].Op != "Scan" {
		t.Fatalf("window must have the scan child: %+v", n)
	}
	if !n.Ordered {
		t.Fatal("clip over a begin-sorted scan preserves the order property")
	}
	pruned := db.ExplainPlan(engine.WindowP{T: T, In: engine.ScanP{Name: "so"}, Prune: true})
	if !strings.Contains(pruned.Detail, "prune") {
		t.Fatalf("pruned window must render the prune annotation, got %q", pruned.Detail)
	}
}

func TestExplainJoinStrategy(t *testing.T) {
	db := explainDB()
	equi := engine.JoinP{
		L: engine.ScanP{Name: "un"}, R: engine.ScanP{Name: "so"},
		Pred: algebra.Eq(algebra.Col("k"), algebra.Col("r.k")),
	}
	n := db.ExplainPlan(equi)
	if n.Op != "Join" || !strings.Contains(n.Detail, "hash build=") {
		t.Fatalf("equi join must explain as a hash join with its build side: %+v", n)
	}
	if len(n.Children) != 2 {
		t.Fatalf("join must have two children, got %d", len(n.Children))
	}
	sweep := engine.JoinP{
		L: engine.ScanP{Name: "un"}, R: engine.ScanP{Name: "so"},
		Pred: algebra.BoolC(true),
	}
	if d := db.ExplainPlan(sweep).Detail; !strings.Contains(d, "overlap-sweep") {
		t.Fatalf("non-equi join must explain as the overlap sweep, got %q", d)
	}
	// A planner-pinned build side overrides the size heuristic in the
	// explained detail.
	for _, c := range []struct {
		side engine.BuildSide
		want string
	}{{engine.BuildLeftSide, "hash build=left"}, {engine.BuildRightSide, "hash build=right"}} {
		pinned := equi
		pinned.Build = c.side
		if d := db.ExplainPlan(pinned).Detail; !strings.Contains(d, c.want) {
			t.Fatalf("pinned build side must explain as %q, got %q", c.want, d)
		}
	}
}

func TestExplainRender(t *testing.T) {
	db := explainDB()
	plan := engine.CoalesceP{
		In: engine.AggP{
			GroupBy:   []string{"k"},
			Aggs:      []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
			PreAgg:    true,
			Streaming: true,
			In:        engine.SortP{In: engine.FilterP{Pred: algebra.Gt(algebra.Col("v"), algebra.IntC(3)), In: engine.ScanP{Name: "un"}}},
		},
	}
	out := db.ExplainPlan(plan).Render()
	for _, want := range []string{
		"Coalesce sweep=blocking",
		"Agg [group_by=[k] pre-agg] sweep=enforced",
		"Sort [endpoint enforcer]",
		"Filter [",
		"Scan [un]",
		"est_rows=20", // the scan's exact cardinality, rendered
		"└─ ",         // tree drawing
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered EXPLAIN lacks %q:\n%s", want, out)
		}
	}
}

// PlanDataSchema must derive the executor's data schema without running
// the plan — the join-strategy detail depends on it.
func TestPlanDataSchema(t *testing.T) {
	db := explainDB()
	s, err := db.PlanDataSchema(engine.JoinP{
		L: engine.ScanP{Name: "un"}, R: engine.ScanP{Name: "so"},
		Pred: algebra.Eq(algebra.Col("k"), algebra.Col("r.k")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concat prefixes only the colliding right-side columns.
	if got := strings.Join(s.Cols, ","); got != "k,v,r.k,w" {
		t.Fatalf("join data schema = %q, want k,v,r.k,w", got)
	}
	if _, err := db.PlanDataSchema(engine.ScanP{Name: "missing"}); err == nil {
		t.Fatal("unknown table must surface a schema error")
	}
}
