package engine

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// Empty inputs must flow through every operator without panics and with
// correct (mostly empty) results.
func TestOperatorsOnEmptyTables(t *testing.T) {
	empty := NewTable(tuple.NewSchema("a", "b"))
	if got, err := Filter(empty, algebra.BoolC(true)); err != nil || got.Len() != 0 {
		t.Fatalf("Filter = %v, %v", got, err)
	}
	if got, err := Project(empty, []algebra.NamedExpr{{Name: "a", E: algebra.Col("a")}}); err != nil || got.Len() != 0 {
		t.Fatalf("Project = %v, %v", got, err)
	}
	if got, err := TemporalJoin(empty, empty, algebra.Eq(algebra.Col("a"), algebra.Col("r.a"))); err != nil || got.Len() != 0 {
		t.Fatalf("Join = %v, %v", got, err)
	}
	if got, err := UnionAll(empty, empty); err != nil || got.Len() != 0 {
		t.Fatalf("Union = %v, %v", got, err)
	}
	if got, err := TemporalDiff(empty, empty); err != nil || got.Len() != 0 {
		t.Fatalf("Diff = %v, %v", got, err)
	}
	if got := Coalesce(empty, CoalesceNative); got.Len() != 0 {
		t.Fatalf("Coalesce = %v", got)
	}
	if got := Split(empty, empty, []int{0}); got.Len() != 0 {
		t.Fatalf("Split = %v", got)
	}
	// Grouped aggregation over empty input: no rows.
	got, err := TemporalAggregate(empty, []string{"a"},
		[]algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, true, dom)
	if err != nil || got.Len() != 0 {
		t.Fatalf("grouped agg = %v, %v", got, err)
	}
}

// Diff where only the right side has tuples: nothing to subtract from.
func TestDiffRightOnly(t *testing.T) {
	l := NewTable(tuple.NewSchema("x"))
	r := NewTable(tuple.NewSchema("x"))
	r.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 3)
	d, err := TemporalDiff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("diff = %v", d)
	}
}

// Diff of identical sides cancels exactly.
func TestDiffSelfCancels(t *testing.T) {
	l := worksTable()
	d, err := TemporalDiff(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("self-diff should be empty:\n%s", d)
	}
}

// Interleaved multiplicity changes: the sweep must track partial
// cancellation per elementary segment.
func TestDiffPartialOverlaps(t *testing.T) {
	l := NewTable(tuple.NewSchema("x"))
	r := NewTable(tuple.NewSchema("x"))
	one := tuple.Tuple{tuple.Int(1)}
	l.Append(one, interval.New(0, 10), 2)
	l.Append(one, interval.New(5, 20), 1)
	r.Append(one, interval.New(3, 8), 1)
	r.Append(one, interval.New(15, 25), 2)
	d, err := TemporalDiff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	rel := Coalesce(d, CoalesceNative).ToPeriodRelation(alg)
	ann := rel.Annotation(one)
	// L counts: [0,3)=2 [3,5)=2 [5,8)=3 [8,10)=3 [10,15)=1 [15,20)=1.
	// R counts: [3,8)=1, [15,25)=2.
	// L−R:      [0,3)=2 [3,5)=1 [5,8)=2 [8,10)=3 [10,15)=1 [15,20)=0.
	for tp, want := range map[int64]int64{0: 2, 3: 1, 5: 2, 8: 3, 10: 1, 15: 0, 20: 0} {
		if got := alg.Timeslice(ann, tp); got != want {
			t.Fatalf("τ_%d = %d, want %d (ann %v)", tp, got, want, ann)
		}
	}
}

// Coalescing a single row is the identity.
func TestCoalesceSingleRow(t *testing.T) {
	in := NewTable(tuple.NewSchema("x"))
	in.Append(tuple.Tuple{tuple.Int(1)}, interval.New(2, 9), 1)
	got := Coalesce(in, CoalesceNative)
	if got.Len() != 1 || got.Interval(got.Rows[0]) != interval.New(2, 9) {
		t.Fatalf("coalesce = %v", got)
	}
}

// Zero-width gaps between rows of the same tuple (end == next begin) with
// different multiplicities must produce a changepoint, not a merge.
func TestCoalesceChangepointAtTouch(t *testing.T) {
	in := NewTable(tuple.NewSchema("x"))
	one := tuple.Tuple{tuple.Int(1)}
	in.Append(one, interval.New(0, 5), 2)
	in.Append(one, interval.New(5, 9), 1)
	got := Coalesce(in, CoalesceNative)
	if got.Len() != 3 { // 2 copies on [0,5) + 1 on [5,9)
		t.Fatalf("coalesce = %v", got)
	}
}

// Aggregation over a table whose rows all share one instant of change.
func TestAggregateSimultaneousEvents(t *testing.T) {
	in := NewTable(tuple.NewSchema("v"))
	in.Append(tuple.Tuple{tuple.Int(5)}, interval.New(0, 10), 1)
	in.Append(tuple.Tuple{tuple.Int(7)}, interval.New(10, 20), 1) // swap at 10
	for _, preAgg := range []bool{true, false} {
		got, err := TemporalAggregate(in, nil, []algebra.AggSpec{{Fn: krel.Sum, Arg: "v", As: "s"}}, preAgg, dom)
		if err != nil {
			t.Fatal(err)
		}
		rel := Coalesce(got, CoalesceNative).ToPeriodRelation(alg)
		if ann := rel.Annotation(tuple.Tuple{tuple.Int(5)}); !ann.Equal(alg.Singleton(interval.New(0, 10), 1)) {
			t.Fatalf("preAgg=%v: sum 5 = %v", preAgg, ann)
		}
		if ann := rel.Annotation(tuple.Tuple{tuple.Int(7)}); !ann.Equal(alg.Singleton(interval.New(10, 20), 1)) {
			t.Fatalf("preAgg=%v: sum 7 = %v", preAgg, ann)
		}
		if ann := rel.Annotation(tuple.Tuple{tuple.Null}); !ann.Equal(alg.Singleton(interval.New(20, 24), 1)) {
			t.Fatalf("preAgg=%v: trailing gap = %v", preAgg, ann)
		}
	}
}

// Min/max sweepers must handle duplicate values entering and leaving.
func TestAggregateMinMaxDuplicates(t *testing.T) {
	in := NewTable(tuple.NewSchema("v"))
	in.Append(tuple.Tuple{tuple.Int(5)}, interval.New(0, 10), 1)
	in.Append(tuple.Tuple{tuple.Int(5)}, interval.New(2, 6), 1)
	in.Append(tuple.Tuple{tuple.Int(3)}, interval.New(4, 8), 1)
	got, err := TemporalAggregate(in, nil, []algebra.AggSpec{
		{Fn: krel.Min, Arg: "v", As: "mn"},
		{Fn: krel.Max, Arg: "v", As: "mx"},
	}, true, dom)
	if err != nil {
		t.Fatal(err)
	}
	rel := Coalesce(got, CoalesceNative).ToPeriodRelation(alg)
	// During [4,8): min 3, max 5. During [8,10): min 5 max 5. After one 5
	// leaves at 6, min stays 3 until 8.
	if ann := rel.Annotation(tuple.Tuple{tuple.Int(3), tuple.Int(5)}); !ann.Equal(alg.Singleton(interval.New(4, 8), 1)) {
		t.Fatalf("(3,5) = %v\n%v", ann, rel)
	}
	if ann := rel.Annotation(tuple.Tuple{tuple.Int(5), tuple.Int(5)}); ann.IsZero() {
		t.Fatalf("(5,5) missing: %v", rel)
	}
}

// A join whose key column contains NULLs must not match NULL to NULL
// (SQL semantics: NULL = NULL is unknown).
func TestJoinNullKeys(t *testing.T) {
	l := NewTable(tuple.NewSchema("k"))
	r := NewTable(tuple.NewSchema("k2"))
	l.Append(tuple.Tuple{tuple.Null}, interval.New(0, 10), 1)
	r.Append(tuple.Tuple{tuple.Null}, interval.New(0, 10), 1)
	got, err := TemporalJoin(l, r, algebra.Eq(algebra.Col("k"), algebra.Col("k2")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("NULL keys must not join: %v", got)
	}
}

// Project may reference the period columns explicitly (REWR never does,
// but the operator allows it for diagnostics).
func TestProjectCanReadPeriodColumns(t *testing.T) {
	in := worksTable()
	got, err := Project(in, []algebra.NamedExpr{
		{Name: "name", E: algebra.Col("name")},
		{Name: "dur", E: algebra.Sub(algebra.Col(EndCol), algebra.Col(BeginCol))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][1].AsInt() != 7 { // Ann [3,10)
		t.Fatalf("dur = %v", got.Rows[0])
	}
}

// Equality conjuncts written right-to-left (r.col = l.col) must still be
// extracted as hash keys.
func TestJoinSwappedEqualityOperands(t *testing.T) {
	got, err := TemporalJoin(worksTable(), assignTable(),
		algebra.Eq(algebra.Col("r.skill"), algebra.Col("skill")))
	if err != nil {
		t.Fatal(err)
	}
	want, err := TemporalJoin(worksTable(), assignTable(),
		algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("swapped-operand join: %d rows vs %d", got.Len(), want.Len())
	}
}

// Multi-column equi-joins hash on all extracted key pairs.
func TestJoinMultiColumnKeys(t *testing.T) {
	l := NewTable(tuple.NewSchema("a", "b"))
	r := NewTable(tuple.NewSchema("c", "d"))
	l.Append(tuple.Tuple{tuple.Int(1), tuple.Int(2)}, interval.New(0, 10), 1)
	l.Append(tuple.Tuple{tuple.Int(1), tuple.Int(3)}, interval.New(0, 10), 1)
	r.Append(tuple.Tuple{tuple.Int(1), tuple.Int(2)}, interval.New(5, 15), 1)
	got, err := TemporalJoin(l, r, algebra.And(
		algebra.Eq(algebra.Col("a"), algebra.Col("c")),
		algebra.Eq(algebra.Col("b"), algebra.Col("d")),
	))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("multi-key join = %d rows:\n%s", got.Len(), got)
	}
	if got.Interval(got.Rows[0]) != interval.New(5, 10) {
		t.Fatalf("period = %v", got.Interval(got.Rows[0]))
	}
}

// Split with an empty grouping splits every row against every endpoint.
func TestSplitGlobalGroup(t *testing.T) {
	in := NewTable(tuple.NewSchema("x"))
	in.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 1)
	in.Append(tuple.Tuple{tuple.Int(2)}, interval.New(5, 15), 1)
	got := Split(in, in, nil)
	if got.Len() != 4 { // [0,5)[5,10) and [5,10)[10,15)
		t.Fatalf("global split = %d rows:\n%s", got.Len(), got)
	}
}
