package engine

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// This file implements the sort-aware streaming forms of the sweep
// operators (coalesce, Def 8.2, and the pre-aggregated split of §9).
// Both consume input ordered by ascending interval begin — established
// by a begin-sorted base table or the SortP enforcer — and keep only
// O(active groups + open intervals) state instead of materializing the
// whole input: once the sweep position passes a time point, no later
// row can contribute an event before it, so segments up to that point
// are final and can be emitted.
//
// The input-order precondition is the planner's responsibility (package
// rewrite inserts SortP when the order is not already available); the
// iterators verify it and panic on violation, which turns a planner bug
// into a loud failure instead of silently wrong results.

// sortIter is the interval-endpoint sort enforcer: it drains its input
// on first use, sorts the rows by (begin, end) with the shared endpoint
// comparator, and re-emits them.
type sortIter struct {
	in     RowIter
	rows   []tuple.Tuple
	i      int
	loaded bool
}

// NewSortIter wraps in with the endpoint sort enforcer, taking
// ownership of it.
func NewSortIter(in RowIter) RowIter { return &sortIter{in: in} }

func (it *sortIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *sortIter) Next() (tuple.Tuple, bool) {
	if !it.loaded {
		it.rows = drainRows(it.in)
		SortRowsByEndpoints(it.rows)
		it.loaded = true
	}
	if it.i >= len(it.rows) {
		return nil, false
	}
	row := it.rows[it.i]
	it.i++
	return row, true
}

func (it *sortIter) Close() { it.in.Close() }

// minHeap is the one binary min-heap behind both streaming sweeps —
// pending interval ends (newTimeHeap) and pending row exits
// (newEventHeap) — so the sift logic cannot drift between them. time
// reports the sort key of an element.
type minHeap[T any] struct {
	items []T
	time  func(T) interval.Time
}

func (h *minHeap[T]) len() int           { return len(h.items) }
func (h *minHeap[T]) min() interval.Time { return h.time(h.items[0]) }

// timeHeap is a min-heap of bare interval endpoints (the streaming
// coalesce's pending ends).
func newTimeHeap() minHeap[interval.Time] {
	return minHeap[interval.Time]{time: func(t interval.Time) interval.Time { return t }}
}

// eventHeap is a min-heap of pending row exits keyed by interval end
// (the streaming aggregation's open rows).
func newEventHeap() minHeap[aggEvent] {
	return minHeap[aggEvent]{time: func(e aggEvent) interval.Time { return e.t }}
}

func (h *minHeap[T]) push(v T) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.time(h.items[p]) <= h.time(h.items[i]) {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *minHeap[T]) pop() T {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release any row reference for the GC
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.time(h.items[l]) < h.time(h.items[s]) {
			s = l
		}
		if r < n && h.time(h.items[r]) < h.time(h.items[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.items[i], h.items[s] = h.items[s], h.items[i]
		i = s
	}
	return top
}

// coalesceGroup is the per-value-equivalent-group sweep state of the
// streaming coalesce: the pending interval ends not yet passed by the
// sweep, the multiplicity committed through curT, and the uncommitted
// multiplicity change accumulated at curT. Deltas at one time point are
// only committed when the sweep moves strictly past it, so cancelling
// events at the same instant (an interval ending exactly where another
// begins) never produce a spurious segment boundary.
type coalesceGroup struct {
	key      string
	data     tuple.Tuple
	ends     minHeap[interval.Time]
	count    int64
	segStart interval.Time
	curT     interval.Time
	curDelta int64
	// reg/regT: the group's single live registration in the iterator's
	// expiry heap (the global-sweep eviction machinery).
	reg  bool
	regT interval.Time
}

// nextTime reports when the group next needs the sweep's attention —
// the uncommitted delta at curT, else its earliest open end. ok=false
// means the group is fully closed and committed: evictable.
func (g *coalesceGroup) nextTime() (interval.Time, bool) {
	if g.curDelta != 0 {
		return g.curT, true
	}
	if g.ends.len() > 0 {
		return g.ends.min(), true
	}
	if g.count != 0 {
		return g.curT, true // defensive: open intervals imply pending ends
	}
	return 0, false
}

// commit applies the pending delta at curT, emitting the finished
// segment [segStart, curT) if the multiplicity actually changes.
func (g *coalesceGroup) commit(emit func(data tuple.Tuple, iv interval.Interval, mult int64)) {
	if g.curDelta == 0 {
		return
	}
	if g.count > 0 && g.curT > g.segStart {
		emit(g.data, interval.New(g.segStart, g.curT), g.count)
	}
	g.count += g.curDelta
	g.curDelta = 0
	g.segStart = g.curT
}

// advance moves the group's sweep position to t, committing every
// pending end event strictly before it and folding ends at t into the
// current delta.
func (g *coalesceGroup) advance(t interval.Time, emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 && g.ends.min() <= t {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.ends.pop()
			g.curDelta--
		}
	}
	if t > g.curT {
		g.commit(emit)
		g.curT = t
	}
}

// flush drains every remaining pending end at end of input — with no
// time bound, so arbitrarily late interval ends are still emitted —
// and commits the final segment.
func (g *coalesceGroup) flush(emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.ends.pop()
			g.curDelta--
		}
	}
	g.commit(emit)
}

// coalesceExpiry is one group's registration in the eviction heap.
type coalesceExpiry struct {
	t interval.Time
	g *coalesceGroup
}

// streamCoalesceIter is the streaming coalesce operator C (Def 8.2)
// over begin-sorted input. It produces the same multiset as the
// blocking Coalesce — maximal intervals of constant multiplicity, one
// row per multiplicity unit — but holds only O(active groups + open
// intervals) state: the expiry heap wakes each group when the global
// sweep position passes its next event, and groups whose intervals are
// all closed and committed are evicted from the state map.
type streamCoalesceIter struct {
	in      RowIter
	n       int // data arity
	groups  map[string]*coalesceGroup
	expiry  minHeap[coalesceExpiry]
	queue   []tuple.Tuple
	qi      int
	last    interval.Time
	seen    bool
	drained bool
}

// NewStreamCoalesceIter returns the streaming coalesce over in, taking
// ownership of it. The input must be ordered by ascending interval
// begin; violations panic.
func NewStreamCoalesceIter(in RowIter) RowIter {
	return &streamCoalesceIter{
		in:     in,
		n:      in.Schema().Arity() - 2,
		groups: make(map[string]*coalesceGroup),
		expiry: minHeap[coalesceExpiry]{time: func(e coalesceExpiry) interval.Time { return e.t }},
	}
}

// track (re-)registers g in the expiry heap at its next event time, or
// evicts it when fully closed. Each group holds at most one live
// registration, so the heap stays O(active groups).
func (it *streamCoalesceIter) track(g *coalesceGroup) {
	t, ok := g.nextTime()
	if !ok {
		delete(it.groups, g.key)
		return
	}
	g.reg, g.regT = true, t
	it.expiry.push(coalesceExpiry{t: t, g: g})
}

// retire advances every group whose registered wake-up time lies
// strictly before the sweep position b, emitting its finished segments
// and evicting it once fully closed. Strictly before: a group with an
// end at exactly b must stay live, because a same-instant begin for the
// same value may still arrive and cancel the boundary.
func (it *streamCoalesceIter) retire(b interval.Time) {
	for it.expiry.len() > 0 && it.expiry.min() < b {
		e := it.expiry.pop()
		if !e.g.reg || e.g.regT != e.t {
			continue // superseded registration
		}
		e.g.reg = false
		e.g.advance(b, it.enqueue)
		it.track(e.g)
	}
}

func (it *streamCoalesceIter) Schema() tuple.Schema { return it.in.Schema() }

// enqueue appends mult copies of (data, iv), each with its own backing
// slice so emitted siblings never alias.
func (it *streamCoalesceIter) enqueue(data tuple.Tuple, iv interval.Interval, mult int64) {
	row := make(tuple.Tuple, 0, len(data)+2)
	row = append(row, data...)
	row = append(row, tuple.Int(iv.Begin), tuple.Int(iv.End))
	it.queue = append(it.queue, row)
	for i := int64(1); i < mult; i++ {
		it.queue = append(it.queue, row.Clone())
	}
}

func (it *streamCoalesceIter) Next() (tuple.Tuple, bool) {
	for {
		if it.qi < len(it.queue) {
			row := it.queue[it.qi]
			it.qi++
			return row, true
		}
		it.queue = it.queue[:0]
		it.qi = 0
		if it.drained {
			return nil, false
		}
		row, ok := it.in.Next()
		if !ok {
			// End of input: sweep every remaining live group past its
			// last pending end (order is immaterial — the output is a
			// multiset).
			for _, g := range it.groups {
				g.flush(it.enqueue)
			}
			it.drained = true
			continue
		}
		iv := rowInterval(row)
		if it.seen && iv.Begin < it.last {
			panic(fmt.Sprintf("engine: streaming coalesce input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", iv.Begin, it.last))
		}
		it.last, it.seen = iv.Begin, true
		it.retire(iv.Begin)
		data := row[:it.n]
		key := data.Key()
		g, ok2 := it.groups[key]
		if !ok2 {
			g = &coalesceGroup{key: key, data: data, ends: newTimeHeap(), segStart: iv.Begin, curT: iv.Begin}
			it.groups[key] = g
		}
		g.advance(iv.Begin, it.enqueue)
		g.curDelta++
		g.ends.push(iv.End)
		if !g.reg {
			it.track(g)
		}
	}
}

func (it *streamCoalesceIter) Close() { it.in.Close() }

// aggEvent is one pending row exit keyed by interval end.
type aggEvent struct {
	t   interval.Time
	row tuple.Tuple
}

// aggGroup is the per-group state of the streaming pre-aggregated
// split: incremental accumulators plus the rows whose intervals are
// still open at the sweep position.
type aggGroup struct {
	key      string
	group    tuple.Tuple
	pending  minHeap[aggEvent]
	sweepers []*aggSweeper
	alive    int64
	segStart interval.Time
	started  bool
	// reg/regT: the group's single live registration in the iterator's
	// expiry heap (grouped aggregation only; the global group never
	// registers, since its gap rows need a continuous segStart).
	reg  bool
	regT interval.Time
}

// aggExpiry is one group's registration in the eviction heap.
type aggExpiry struct {
	t interval.Time
	g *aggGroup
}

// streamAggIter is the streaming form of the §9 pre-aggregated split:
// one incremental endpoint sweep per group over begin-sorted input,
// emitting a result row per elementary segment, without materializing
// the input. Segment boundaries fall on every endpoint of the group
// (the split semantics N_G, Def 8.3), exactly as in the blocking
// aggregateSweep.
type streamAggIter struct {
	in      RowIter
	prep    *aggPrep
	aggs    []algebra.AggSpec
	dom     interval.Domain
	global  bool
	groups  map[string]*aggGroup
	expiry  minHeap[aggExpiry]
	queue   []tuple.Tuple
	qi      int
	last    interval.Time
	seen    bool
	drained bool
}

// NewStreamAggIter returns the streaming pre-aggregated split over in,
// taking ownership of it. The input must be ordered by ascending
// interval begin; violations panic. On a prep error the child is
// closed, matching the other constructors' contract.
func NewStreamAggIter(in RowIter, groupBy []string, aggs []algebra.AggSpec, dom interval.Domain) (RowIter, error) {
	data := tuple.Schema{Cols: in.Schema().Cols[:in.Schema().Arity()-2]}
	prep, err := prepareAggregate(data, groupBy, aggs)
	if err != nil {
		in.Close()
		return nil, err
	}
	it := &streamAggIter{
		in:     in,
		prep:   prep,
		aggs:   aggs,
		dom:    dom,
		global: len(groupBy) == 0,
		groups: make(map[string]*aggGroup),
		expiry: minHeap[aggExpiry]{time: func(e aggExpiry) interval.Time { return e.t }},
	}
	if it.global {
		// Global aggregation sweeps the whole domain (the Fig 4 union
		// with {(null, Tmin, Tmax)}), so gaps produce neutral rows even
		// with zero input rows.
		g := it.newGroup(tuple.Tuple{})
		g.started = true
		g.segStart = dom.Min
	}
	return it, nil
}

func (it *streamAggIter) newGroup(group tuple.Tuple) *aggGroup {
	g := &aggGroup{key: group.Key(), group: group, pending: newEventHeap(), sweepers: make([]*aggSweeper, len(it.aggs))}
	for i, a := range it.aggs {
		g.sweepers[i] = newAggSweeper(a.Fn)
	}
	it.groups[g.key] = g
	return g
}

// track (re-)registers a grouped aggregation group at its earliest
// pending exit, or evicts it when no intervals remain open: segments of
// one group are bounded by its own endpoints only, so a group with an
// empty pending heap can never emit again until a new row arrives (and
// grouped aggregation emits nothing over gaps). Global aggregation
// never registers.
func (it *streamAggIter) track(g *aggGroup) {
	if it.global {
		return
	}
	if g.pending.len() == 0 {
		delete(it.groups, g.key)
		return
	}
	g.reg, g.regT = true, g.pending.min()
	it.expiry.push(aggExpiry{t: g.regT, g: g})
}

// retire drains every group whose registered exit lies strictly before
// the sweep position b — emitting segments bounded by the group's own
// endpoints, never at b itself — and evicts groups left with no open
// intervals.
func (it *streamAggIter) retire(b interval.Time) {
	for it.expiry.len() > 0 && it.expiry.min() < b {
		e := it.expiry.pop()
		if !e.g.reg || e.g.regT != e.t {
			continue // superseded registration
		}
		e.g.reg = false
		for e.g.pending.len() > 0 && e.g.pending.min() < b {
			et := e.g.pending.min()
			it.boundary(e.g, et)
			it.exitAt(e.g, et)
		}
		it.track(e.g)
	}
}

func (it *streamAggIter) Schema() tuple.Schema { return it.prep.schema }

// boundary closes the segment [segStart, t) of g, emitting a result row
// with the current accumulator values. Empty segments of grouped
// aggregation (alive == 0) produce nothing; global aggregation emits
// neutral rows over gaps.
func (it *streamAggIter) boundary(g *aggGroup, t interval.Time) {
	if !g.started {
		g.started = true
		g.segStart = t
		return
	}
	if t <= g.segStart {
		return
	}
	if g.alive > 0 || it.global {
		row := g.group.Clone()
		for _, sw := range g.sweepers {
			row = append(row, sw.result())
		}
		row = append(row, tuple.Int(g.segStart), tuple.Int(t))
		it.queue = append(it.queue, row)
	}
	g.segStart = t
}

// exitAt pops every pending exit of g at time et and removes those rows
// from the accumulators.
func (it *streamAggIter) exitAt(g *aggGroup, et interval.Time) {
	for g.pending.len() > 0 && g.pending.min() == et {
		ev := g.pending.pop()
		for j, sw := range g.sweepers {
			var arg tuple.Value
			if it.prep.argIdx[j] >= 0 {
				arg = ev.row[it.prep.argIdx[j]]
			}
			sw.update(arg, false)
		}
		g.alive--
	}
}

// advance moves g's sweep position to t, emitting a boundary at every
// pending exit before t and at t itself.
func (it *streamAggIter) advance(g *aggGroup, t interval.Time) {
	for g.pending.len() > 0 && g.pending.min() <= t {
		et := g.pending.min()
		it.boundary(g, et)
		it.exitAt(g, et)
	}
	it.boundary(g, t)
}

func (it *streamAggIter) Next() (tuple.Tuple, bool) {
	for {
		if it.qi < len(it.queue) {
			row := it.queue[it.qi]
			it.qi++
			return row, true
		}
		it.queue = it.queue[:0]
		it.qi = 0
		if it.drained {
			return nil, false
		}
		row, ok := it.in.Next()
		if !ok {
			for _, g := range it.groups {
				// Drain the remaining exits; then global aggregation closes
				// the final segment at the domain end. (Map order is
				// immaterial — the output is a multiset.)
				for g.pending.len() > 0 {
					et := g.pending.min()
					it.boundary(g, et)
					it.exitAt(g, et)
				}
				if it.global {
					it.boundary(g, it.dom.Max)
				}
			}
			it.drained = true
			continue
		}
		iv := rowInterval(row)
		if it.seen && iv.Begin < it.last {
			panic(fmt.Sprintf("engine: streaming aggregation input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", iv.Begin, it.last))
		}
		it.last, it.seen = iv.Begin, true
		it.retire(iv.Begin)
		group := row.Project(it.prep.groupIdx)
		g, ok2 := it.groups[group.Key()]
		if !ok2 {
			g = it.newGroup(group)
		}
		it.advance(g, iv.Begin)
		for j, sw := range g.sweepers {
			var arg tuple.Value
			if it.prep.argIdx[j] >= 0 {
				arg = row[it.prep.argIdx[j]]
			}
			sw.update(arg, true)
		}
		g.alive++
		g.pending.push(aggEvent{t: iv.End, row: row})
		if !g.reg {
			it.track(g)
		}
	}
}

func (it *streamAggIter) Close() { it.in.Close() }
