package engine

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// This file implements the sort-aware streaming forms of the sweep
// operators (coalesce, Def 8.2, and the pre-aggregated split of §9).
// Both consume input ordered by ascending interval begin — established
// by a begin-sorted base table or the SortP enforcer — and keep only
// O(active groups + open intervals) state instead of materializing the
// whole input: once the sweep position passes a time point, no later
// row can contribute an event before it, so segments up to that point
// are final and can be emitted.
//
// The input-order precondition is the planner's responsibility (package
// rewrite inserts SortP when the order is not already available); the
// iterators verify it and panic on violation, which turns a planner bug
// into a loud failure instead of silently wrong results.

// sortIter is the interval-endpoint sort enforcer: it drains its input
// on first use, sorts the rows by (begin, end) with the shared endpoint
// comparator, and re-emits them.
type sortIter struct {
	in     RowIter
	rows   []tuple.Tuple
	i      int
	loaded bool
	err    error
}

// NewSortIter wraps in with the endpoint sort enforcer, taking
// ownership of it.
func NewSortIter(in RowIter) RowIter {
	return CheckOrdered("sort enforcer", &sortIter{in: in})
}

func (it *sortIter) Schema() tuple.Schema { return it.in.Schema() }

// load drains and sorts the input on first use. A drain terminated by
// an error yields NO rows: emitting a sorted prefix of a failed stream
// would be silent truncation, so the sort surfaces the error and
// nothing else.
func (it *sortIter) load() {
	it.rows, it.err = drainRowsErr(it.in)
	if it.err != nil {
		it.rows = nil
	}
	SortRowsByEndpoints(it.rows)
	it.loaded = true
}

func (it *sortIter) Next() (tuple.Tuple, bool) {
	if !it.loaded {
		it.load()
	}
	if it.i >= len(it.rows) {
		return nil, false
	}
	row := it.rows[it.i]
	it.i++
	return row, true
}

// NextBatch re-emits the sorted rows chunk-at-a-time; the drain on
// first use already reads the child batch-at-a-time via drainRowsErr.
func (it *sortIter) NextBatch(b *RowBatch) bool {
	if !it.loaded {
		it.load()
	}
	b.Reset()
	n := len(it.rows) - it.i
	if n <= 0 {
		return false
	}
	if c := batchCapOf(b); n > c {
		n = c
	}
	b.Rows = append(b.Rows, it.rows[it.i:it.i+n]...)
	it.i += n
	return true
}

func (it *sortIter) Close() { it.in.Close() }

// Err reports the drain error captured at load time, else the input's.
func (it *sortIter) Err() error { return FirstErr(it.err, IterErr(it.in)) }

// minHeap is the one binary min-heap behind both streaming sweeps —
// pending interval ends, pending row exits and the group expiry
// registries — so the sift logic cannot drift between them. Elements
// carry their sort key inline (hItem), so every sift comparison is a
// direct int64 compare: no closure or method indirection on the
// per-row hot path.
type minHeap[T any] struct {
	items []hItem[T]
}

// hItem is one heap element: the sort key and its payload (struct{}
// for bare endpoint heaps).
type hItem[T any] struct {
	t interval.Time
	v T
}

func (h *minHeap[T]) len() int           { return len(h.items) }
func (h *minHeap[T]) min() interval.Time { return h.items[0].t }

func (h *minHeap[T]) push(t interval.Time, v T) {
	h.items = append(h.items, hItem[T]{t: t, v: v})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].t <= h.items[i].t {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *minHeap[T]) pop() hItem[T] {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = hItem[T]{} // release any row reference for the GC
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.items[l].t < h.items[s].t {
			s = l
		}
		if r < n && h.items[r].t < h.items[s].t {
			s = r
		}
		if s == i {
			break
		}
		h.items[i], h.items[s] = h.items[s], h.items[i]
		i = s
	}
	return top
}

// coalesceGroup is the per-value-equivalent-group sweep state of the
// streaming coalesce: the pending interval ends not yet passed by the
// sweep, the multiplicity committed through curT, and the uncommitted
// multiplicity change accumulated at curT. Deltas at one time point are
// only committed when the sweep moves strictly past it, so cancelling
// events at the same instant (an interval ending exactly where another
// begins) never produce a spurious segment boundary.
type coalesceGroup struct {
	key      string
	data     tuple.Tuple
	ends     minHeap[struct{}] // bare endpoint heap: keys only
	count    int64
	segStart interval.Time
	curT     interval.Time
	curDelta int64
	// reg/regT: the group's single live registration in the iterator's
	// expiry heap (the global-sweep eviction machinery).
	reg  bool
	regT interval.Time
}

// nextTime reports when the group next needs the sweep's attention.
// ok=false means the group is fully closed and committed: evictable.
// The earliest open end is preferred over the uncommitted delta at
// curT: advance() commits pending deltas on the way to any later wake
// time, so waking at the end event is equally correct — and it avoids
// registering a wake at the current sweep position on EVERY row
// arrival, which the very next row would pop again (two expiry-heap
// operations per input row instead of per end event).
func (g *coalesceGroup) nextTime() (interval.Time, bool) {
	if g.ends.len() > 0 {
		return g.ends.min(), true
	}
	if g.curDelta != 0 || g.count != 0 {
		return g.curT, true // pending delta with no open end left
	}
	return 0, false
}

// commit applies the pending delta at curT, emitting the finished
// segment [segStart, curT) if the multiplicity actually changes.
func (g *coalesceGroup) commit(emit func(data tuple.Tuple, iv interval.Interval, mult int64)) {
	if g.curDelta == 0 {
		return
	}
	if g.count > 0 && g.curT > g.segStart {
		emit(g.data, interval.New(g.segStart, g.curT), g.count)
	}
	g.count += g.curDelta
	g.curDelta = 0
	g.segStart = g.curT
}

// advance moves the group's sweep position to t, committing every
// pending end event strictly before it and folding ends at t into the
// current delta.
func (g *coalesceGroup) advance(t interval.Time, emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 && g.ends.min() <= t {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.ends.pop()
			g.curDelta--
		}
	}
	if t > g.curT {
		g.commit(emit)
		g.curT = t
	}
}

// flush drains every remaining pending end at end of input — with no
// time bound, so arbitrarily late interval ends are still emitted —
// and commits the final segment.
func (g *coalesceGroup) flush(emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.ends.pop()
			g.curDelta--
		}
	}
	g.commit(emit)
}

// streamCoalesceIter is the streaming coalesce operator C (Def 8.2)
// over begin-sorted input. It produces the same multiset as the
// blocking Coalesce — maximal intervals of constant multiplicity, one
// row per multiplicity unit — but holds only O(active groups + open
// intervals) state: the expiry heap wakes each group when the global
// sweep position passes its next event, and groups whose intervals are
// all closed and committed are evicted from the state map.
type streamCoalesceIter struct {
	in      RowIter
	cur     batchCursor
	n       int // data arity
	groups  map[string]*coalesceGroup
	expiry  minHeap[*coalesceGroup] // group wake-ups keyed by next event time
	queue   []tuple.Tuple
	qi      int
	last    interval.Time
	seen    bool
	drained bool
	scratch []byte // reusable group-key buffer (one key string per distinct group, not per row)
	// peak sweep state, reported through MaxState for EXPLAIN ANALYZE:
	// most live groups at once plus the largest single group's open-end
	// heap — the O(active groups + open intervals) bound, observed.
	maxGroups int
	maxOpen   int
}

// MaxState reports the observed peak sweep state (live groups plus the
// largest per-group open-interval heap) — the engine.StateSizer hook.
func (it *streamCoalesceIter) MaxState() int64 {
	return int64(it.maxGroups + it.maxOpen)
}

// NewStreamCoalesceIter returns the streaming coalesce over in, taking
// ownership of it. The input must be ordered by ascending interval
// begin; violations panic.
func NewStreamCoalesceIter(in RowIter) RowIter {
	in = CheckOrdered("streaming coalesce input", in)
	return &streamCoalesceIter{
		in:     in,
		cur:    batchCursor{in: in},
		n:      in.Schema().Arity() - 2,
		groups: make(map[string]*coalesceGroup),
	}
}

// track (re-)registers g in the expiry heap at its next event time, or
// evicts it when fully closed. Each group holds at most one live
// registration, so the heap stays O(active groups).
func (it *streamCoalesceIter) track(g *coalesceGroup) {
	t, ok := g.nextTime()
	if !ok {
		delete(it.groups, g.key)
		return
	}
	g.reg, g.regT = true, t
	it.expiry.push(t, g)
}

// retire advances every group whose registered wake-up time lies
// strictly before the sweep position b, emitting its finished segments
// and evicting it once fully closed. Strictly before: a group with an
// end at exactly b must stay live, because a same-instant begin for the
// same value may still arrive and cancel the boundary.
func (it *streamCoalesceIter) retire(b interval.Time) {
	for it.expiry.len() > 0 && it.expiry.min() < b {
		e := it.expiry.pop()
		if !e.v.reg || e.v.regT != e.t {
			continue // superseded registration
		}
		e.v.reg = false
		e.v.advance(b, it.enqueue)
		it.track(e.v)
	}
}

func (it *streamCoalesceIter) Schema() tuple.Schema { return it.in.Schema() }

// enqueue appends mult copies of (data, iv), each with its own backing
// slice so emitted siblings never alias.
func (it *streamCoalesceIter) enqueue(data tuple.Tuple, iv interval.Interval, mult int64) {
	row := make(tuple.Tuple, 0, len(data)+2)
	row = append(row, data...)
	row = append(row, tuple.Int(iv.Begin), tuple.Int(iv.End))
	it.queue = append(it.queue, row)
	for i := int64(1); i < mult; i++ {
		it.queue = append(it.queue, row.Clone())
	}
}

// fill runs the sweep until the output queue holds at least one emitted
// row or the stream is fully drained, reporting whether rows are
// available — the shared production step behind both Next (one row per
// call) and NextBatch (the queue copied out chunk-at-a-time).
func (it *streamCoalesceIter) fill() bool {
	for {
		if it.qi < len(it.queue) {
			return true
		}
		it.queue = it.queue[:0]
		it.qi = 0
		if it.drained {
			return false
		}
		row, ok := it.cur.next()
		if !ok {
			// End of input: sweep every remaining live group past its
			// last pending end (order is immaterial — the output is a
			// multiset).
			for _, g := range it.groups {
				g.flush(it.enqueue)
			}
			it.drained = true
			continue
		}
		iv := rowInterval(row)
		if it.seen && iv.Begin < it.last {
			panic(fmt.Sprintf("engine: streaming coalesce input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", iv.Begin, it.last))
		}
		it.last, it.seen = iv.Begin, true
		it.retire(iv.Begin)
		data := row[:it.n]
		it.scratch = data.AppendKey(it.scratch[:0], nil)
		g, ok2 := it.groups[string(it.scratch)]
		if !ok2 {
			key := string(it.scratch)
			//lint:ignore rowretain the group keeps a read-only view of the data columns; sweep producers never reuse yielded backing arrays
			g = &coalesceGroup{key: key, data: data, segStart: iv.Begin, curT: iv.Begin}
			it.groups[key] = g
		}
		g.advance(iv.Begin, it.enqueue)
		g.curDelta++
		g.ends.push(iv.End, struct{}{})
		if n := len(it.groups); n > it.maxGroups {
			it.maxGroups = n
		}
		if n := g.ends.len(); n > it.maxOpen {
			it.maxOpen = n
		}
		if !g.reg {
			it.track(g)
		}
	}
}

func (it *streamCoalesceIter) Next() (tuple.Tuple, bool) {
	if !it.fill() {
		return nil, false
	}
	row := it.queue[it.qi]
	it.qi++
	return row, true
}

// NextBatch copies finished segments out of the sweep queue
// chunk-at-a-time, reading the input batch-at-a-time from the first
// call on. Copying (rather than handing out the queue slice) keeps the
// queue's backing array private, so its reuse on the next fill cannot
// alias a delivered batch.
func (it *streamCoalesceIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	limit := batchCapOf(out)
	it.cur.enableBatch(limit)
	for out.Len() < limit && it.fill() {
		n := len(it.queue) - it.qi
		if r := limit - out.Len(); n > r {
			n = r
		}
		out.Rows = append(out.Rows, it.queue[it.qi:it.qi+n]...)
		it.qi += n
	}
	return out.Len() > 0
}

func (it *streamCoalesceIter) Close() { it.in.Close() }

// Err delegates the terminal error to the input stream. A failed input
// looks like end of input to the sweep (it flushes and emits what it
// has); the delegated error is what tells the root consumer to discard
// that output.
func (it *streamCoalesceIter) Err() error { return IterErr(it.in) }

// aggGroup is the per-group state of the streaming pre-aggregated
// split: incremental accumulators plus the rows whose intervals are
// still open at the sweep position (pending row exits keyed by
// interval end).
type aggGroup struct {
	key      string
	group    tuple.Tuple
	pending  minHeap[tuple.Tuple]
	sweepers []*aggSweeper
	alive    int64
	segStart interval.Time
	started  bool
	// reg/regT: the group's single live registration in the iterator's
	// expiry heap (grouped aggregation only; the global group never
	// registers, since its gap rows need a continuous segStart).
	reg  bool
	regT interval.Time
}

// streamAggIter is the streaming form of the §9 pre-aggregated split:
// one incremental endpoint sweep per group over begin-sorted input,
// emitting a result row per elementary segment, without materializing
// the input. Segment boundaries fall on every endpoint of the group
// (the split semantics N_G, Def 8.3), exactly as in the blocking
// aggregateSweep.
type streamAggIter struct {
	in      RowIter
	cur     batchCursor
	prep    *aggPrep
	aggs    []algebra.AggSpec
	dom     interval.Domain
	global  bool
	groups  map[string]*aggGroup
	expiry  minHeap[*aggGroup] // group wake-ups keyed by earliest pending exit
	queue   []tuple.Tuple
	qi      int
	last    interval.Time
	seen    bool
	drained bool
	scratch []byte // reusable group-key buffer (one key string per distinct group, not per row)
	// peak sweep state, reported through MaxState for EXPLAIN ANALYZE.
	maxGroups int
	maxOpen   int
}

// MaxState reports the observed peak sweep state (live groups plus the
// largest per-group pending-exit heap) — the engine.StateSizer hook.
func (it *streamAggIter) MaxState() int64 {
	return int64(it.maxGroups + it.maxOpen)
}

// NewStreamAggIter returns the streaming pre-aggregated split over in,
// taking ownership of it. The input must be ordered by ascending
// interval begin; violations panic. On a prep error the child is
// closed, matching the other constructors' contract.
func NewStreamAggIter(in RowIter, groupBy []string, aggs []algebra.AggSpec, dom interval.Domain) (RowIter, error) {
	in = CheckOrdered("streaming aggregation input", in)
	data := tuple.Schema{Cols: in.Schema().Cols[:in.Schema().Arity()-2]}
	prep, err := prepareAggregate(data, groupBy, aggs)
	if err != nil {
		in.Close()
		return nil, err
	}
	it := &streamAggIter{
		in:     in,
		cur:    batchCursor{in: in},
		prep:   prep,
		aggs:   aggs,
		dom:    dom,
		global: len(groupBy) == 0,
		groups: make(map[string]*aggGroup),
	}
	if it.global {
		// Global aggregation sweeps the whole domain (the Fig 4 union
		// with {(null, Tmin, Tmax)}), so gaps produce neutral rows even
		// with zero input rows.
		g := it.newGroup(tuple.Tuple{}, "")
		g.started = true
		g.segStart = dom.Min
	}
	return it, nil
}

// newGroup registers a new sweep group under key, the canonical
// AppendKey encoding of group (the empty string for the global group).
func (it *streamAggIter) newGroup(group tuple.Tuple, key string) *aggGroup {
	g := &aggGroup{key: key, group: group, sweepers: make([]*aggSweeper, len(it.aggs))}
	for i, a := range it.aggs {
		g.sweepers[i] = newAggSweeper(a.Fn)
	}
	it.groups[g.key] = g
	return g
}

// track (re-)registers a grouped aggregation group at its earliest
// pending exit, or evicts it when no intervals remain open: segments of
// one group are bounded by its own endpoints only, so a group with an
// empty pending heap can never emit again until a new row arrives (and
// grouped aggregation emits nothing over gaps). Global aggregation
// never registers.
func (it *streamAggIter) track(g *aggGroup) {
	if it.global {
		return
	}
	if g.pending.len() == 0 {
		delete(it.groups, g.key)
		return
	}
	g.reg, g.regT = true, g.pending.min()
	it.expiry.push(g.regT, g)
}

// retire drains every group whose registered exit lies strictly before
// the sweep position b — emitting segments bounded by the group's own
// endpoints, never at b itself — and evicts groups left with no open
// intervals.
func (it *streamAggIter) retire(b interval.Time) {
	for it.expiry.len() > 0 && it.expiry.min() < b {
		e := it.expiry.pop()
		if !e.v.reg || e.v.regT != e.t {
			continue // superseded registration
		}
		e.v.reg = false
		for e.v.pending.len() > 0 && e.v.pending.min() < b {
			et := e.v.pending.min()
			it.boundary(e.v, et)
			it.exitAt(e.v, et)
		}
		it.track(e.v)
	}
}

func (it *streamAggIter) Schema() tuple.Schema { return it.prep.schema }

// boundary closes the segment [segStart, t) of g, emitting a result row
// with the current accumulator values. Empty segments of grouped
// aggregation (alive == 0) produce nothing; global aggregation emits
// neutral rows over gaps.
func (it *streamAggIter) boundary(g *aggGroup, t interval.Time) {
	if !g.started {
		g.started = true
		g.segStart = t
		return
	}
	if t <= g.segStart {
		return
	}
	if g.alive > 0 || it.global {
		// One exact-capacity allocation per output row: Clone-then-append
		// reallocated the backing array twice per segment.
		row := make(tuple.Tuple, 0, len(g.group)+len(g.sweepers)+2)
		row = append(row, g.group...)
		for _, sw := range g.sweepers {
			row = append(row, sw.result())
		}
		row = append(row, tuple.Int(g.segStart), tuple.Int(t))
		it.queue = append(it.queue, row)
	}
	g.segStart = t
}

// exitAt pops every pending exit of g at time et and removes those rows
// from the accumulators.
func (it *streamAggIter) exitAt(g *aggGroup, et interval.Time) {
	for g.pending.len() > 0 && g.pending.min() == et {
		ev := g.pending.pop()
		for j, sw := range g.sweepers {
			var arg tuple.Value
			if it.prep.argIdx[j] >= 0 {
				arg = ev.v[it.prep.argIdx[j]]
			}
			sw.update(arg, false)
		}
		g.alive--
	}
}

// advance moves g's sweep position to t, emitting a boundary at every
// pending exit before t and at t itself.
func (it *streamAggIter) advance(g *aggGroup, t interval.Time) {
	for g.pending.len() > 0 && g.pending.min() <= t {
		et := g.pending.min()
		it.boundary(g, et)
		it.exitAt(g, et)
	}
	it.boundary(g, t)
}

// fill runs the sweep until the output queue holds at least one emitted
// row or the stream is fully drained, reporting whether rows are
// available — the shared production step behind both Next and
// NextBatch.
func (it *streamAggIter) fill() bool {
	for {
		if it.qi < len(it.queue) {
			return true
		}
		it.queue = it.queue[:0]
		it.qi = 0
		if it.drained {
			return false
		}
		row, ok := it.cur.next()
		if !ok {
			for _, g := range it.groups {
				// Drain the remaining exits; then global aggregation closes
				// the final segment at the domain end. (Map order is
				// immaterial — the output is a multiset.)
				for g.pending.len() > 0 {
					et := g.pending.min()
					it.boundary(g, et)
					it.exitAt(g, et)
				}
				if it.global {
					it.boundary(g, it.dom.Max)
				}
			}
			it.drained = true
			continue
		}
		iv := rowInterval(row)
		if it.seen && iv.Begin < it.last {
			panic(fmt.Sprintf("engine: streaming aggregation input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", iv.Begin, it.last))
		}
		it.last, it.seen = iv.Begin, true
		it.retire(iv.Begin)
		it.scratch = row.AppendKey(it.scratch[:0], it.prep.groupIdx)
		g, ok2 := it.groups[string(it.scratch)]
		if !ok2 {
			g = it.newGroup(row.Project(it.prep.groupIdx), string(it.scratch))
		}
		it.advance(g, iv.Begin)
		for j, sw := range g.sweepers {
			var arg tuple.Value
			if it.prep.argIdx[j] >= 0 {
				arg = row[it.prep.argIdx[j]]
			}
			sw.update(arg, true)
		}
		g.alive++
		g.pending.push(iv.End, row)
		if n := len(it.groups); n > it.maxGroups {
			it.maxGroups = n
		}
		if n := g.pending.len(); n > it.maxOpen {
			it.maxOpen = n
		}
		if !g.reg {
			it.track(g)
		}
	}
}

func (it *streamAggIter) Next() (tuple.Tuple, bool) {
	if !it.fill() {
		return nil, false
	}
	row := it.queue[it.qi]
	it.qi++
	return row, true
}

// NextBatch copies finished segments out of the sweep queue
// chunk-at-a-time; see streamCoalesceIter.NextBatch for the copy-out
// rationale.
func (it *streamAggIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	limit := batchCapOf(out)
	it.cur.enableBatch(limit)
	for out.Len() < limit && it.fill() {
		n := len(it.queue) - it.qi
		if r := limit - out.Len(); n > r {
			n = r
		}
		out.Rows = append(out.Rows, it.queue[it.qi:it.qi+n]...)
		it.qi += n
	}
	return out.Len() > 0
}

func (it *streamAggIter) Close() { it.in.Close() }

// Err delegates the terminal error to the input stream; see
// streamCoalesceIter.Err for why the sweep's flushed output is only
// valid when this reports nil.
func (it *streamAggIter) Err() error { return IterErr(it.in) }
