package engine

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// joinIterFor builds the streaming join over two tables and returns the
// physical iterator chosen for the predicate.
func joinIterFor(t *testing.T, l, r *Table, pred algebra.Expr) RowIter {
	t.Helper()
	it, err := newJoinIter(NewTableIter(l), NewTableIter(r), pred)
	if err != nil {
		t.Fatalf("newJoinIter: %v", err)
	}
	return it
}

// A join predicate without any equality conjunct must run as the
// endpoint-sorted overlap sweep, not as a degenerate hash join whose
// build rows all collapse into one bucket.
func TestNoEquiKeyJoinUsesOverlapSweep(t *testing.T) {
	l := NewTable(tuple.NewSchema("a"))
	r := NewTable(tuple.NewSchema("b"))
	l.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
	r.Append(tuple.Tuple{tuple.Int(2)}, interval.New(3, 8), 1)

	it := joinIterFor(t, l, r, algebra.BoolC(true))
	defer it.Close()
	if _, ok := it.(*overlapJoinIter); !ok {
		t.Fatalf("pure-overlap join chose %T, want *overlapJoinIter", it)
	}
	if _, ok := joinIterFor(t, l, r, algebra.Lt(algebra.Col("a"), algebra.Col("b"))).(*overlapJoinIter); !ok {
		t.Fatalf("non-equi predicate must choose the overlap sweep")
	}
	if _, ok := joinIterFor(t, l, r, algebra.Eq(algebra.Col("a"), algebra.Col("b"))).(*hashJoinIter); !ok {
		t.Fatalf("equi predicate must choose the streaming hash join")
	}
}

// The overlap sweep must produce exactly the pairs an overlap join
// defines, across begin-point ties, containment, adjacency (which is not
// overlap for half-open intervals) and duplicates.
func TestOverlapSweepEdgePatterns(t *testing.T) {
	l := NewTable(tuple.NewSchema("a"))
	r := NewTable(tuple.NewSchema("b"))
	l.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 4), 1)
	l.Append(tuple.Tuple{tuple.Int(2)}, interval.New(0, 4), 1) // begin tie with row 1
	l.Append(tuple.Tuple{tuple.Int(3)}, interval.New(4, 8), 1) // adjacent to [0,4)
	l.Append(tuple.Tuple{tuple.Int(4)}, interval.New(1, 2), 2) // contained, duplicated
	r.Append(tuple.Tuple{tuple.Int(10)}, interval.New(0, 4), 1)
	r.Append(tuple.Tuple{tuple.Int(11)}, interval.New(3, 5), 1)
	r.Append(tuple.Tuple{tuple.Int(12)}, interval.New(8, 9), 1) // overlaps nothing

	got, err := TemporalJoin(l, r, algebra.BoolC(true))
	if err != nil {
		t.Fatal(err)
	}
	want := NewTable(tuple.NewSchema("a", "b"))
	pair := func(a, b, begin, end int64, mult int64) {
		want.Append(tuple.Tuple{tuple.Int(a), tuple.Int(b)}, interval.New(begin, end), mult)
	}
	pair(1, 10, 0, 4, 1)
	pair(1, 11, 3, 4, 1)
	pair(2, 10, 0, 4, 1)
	pair(2, 11, 3, 4, 1)
	pair(3, 11, 4, 5, 1)
	pair(4, 10, 1, 2, 2)
	assertSameRows(t, got, want)
}

func assertSameRows(t *testing.T, got, want *Table) {
	t.Helper()
	g, w := got.Clone(), want.Clone()
	g.Sort()
	w.Sort()
	if len(g.Rows) != len(w.Rows) {
		t.Fatalf("row count %d, want %d\ngot:\n%swant:\n%s", len(g.Rows), len(w.Rows), got, want)
	}
	for i := range g.Rows {
		if g.Rows[i].Key() != w.Rows[i].Key() {
			t.Fatalf("row %d = %v, want %v", i, g.Rows[i], w.Rows[i])
		}
	}
}

// Rows emitted with multiplicity > 1 must not share a backing slice: an
// in-place mutation of one output row must leave its siblings intact.
func TestCoalesceEmittedRowsDoNotAlias(t *testing.T) {
	in := NewTable(tuple.NewSchema("name"))
	in.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 2)
	out := Coalesce(in, CoalesceNative)
	if out.Len() != 2 {
		t.Fatalf("coalesce emitted %d rows, want 2:\n%s", out.Len(), out)
	}
	out.Rows[0][0] = str("MUTATED")
	if got := out.Rows[1][0].AsString(); got != "Ann" {
		t.Fatalf("mutating row 0 corrupted its sibling: row 1 = %q, want \"Ann\"", got)
	}
}

func TestDiffEmittedRowsDoNotAlias(t *testing.T) {
	l := NewTable(tuple.NewSchema("name"))
	r := NewTable(tuple.NewSchema("name"))
	l.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 3)
	r.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 1)
	out, err := TemporalDiff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("diff emitted %d rows, want 2:\n%s", out.Len(), out)
	}
	out.Rows[0][0] = str("MUTATED")
	if got := out.Rows[1][0].AsString(); got != "Ann" {
		t.Fatalf("mutating row 0 corrupted its sibling: row 1 = %q, want \"Ann\"", got)
	}
}

func TestAppendedRowsDoNotAlias(t *testing.T) {
	tbl := NewTable(tuple.NewSchema("name"))
	tbl.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 2)
	tbl.Rows[0][0] = str("MUTATED")
	if got := tbl.Rows[1][0].AsString(); got != "Ann" {
		t.Fatalf("mutating row 0 corrupted its sibling: row 1 = %q, want \"Ann\"", got)
	}
}

// Def 8.2 edge cases of the coalescing sweep: the trailing segment of a
// group closes only at the final endpoint, and interior points whose net
// delta is zero keep the current segment open.
func TestCoalesceTrailingSegment(t *testing.T) {
	// Net count returns to zero only at the final endpoint 10: the sweep
	// must emit the changepoints [0,2) ×1, [2,8) ×2 and the trailing
	// segment [8,10) ×1.
	in := NewTable(tuple.NewSchema("name"))
	in.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 1)
	in.Append(tuple.Tuple{str("Ann")}, interval.New(2, 8), 1)
	want := NewTable(tuple.NewSchema("name"))
	want.Append(tuple.Tuple{str("Ann")}, interval.New(0, 2), 1)
	want.Append(tuple.Tuple{str("Ann")}, interval.New(2, 8), 2)
	want.Append(tuple.Tuple{str("Ann")}, interval.New(8, 10), 1)
	assertSameRows(t, Coalesce(in, CoalesceNative), want)
	assertSameRows(t, Coalesce(in, CoalesceAnalytic), want)
}

func TestCoalesceZeroDeltaInteriorPointKeepsSegmentOpen(t *testing.T) {
	// One row ends exactly where another begins: at t=5 the deltas cancel
	// (−1 + 1 = 0), so no changepoint — the group coalesces to [0,10).
	in := NewTable(tuple.NewSchema("name"))
	in.Append(tuple.Tuple{str("Ann")}, interval.New(0, 5), 1)
	in.Append(tuple.Tuple{str("Ann")}, interval.New(5, 10), 1)
	want := NewTable(tuple.NewSchema("name"))
	want.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 1)
	assertSameRows(t, Coalesce(in, CoalesceNative), want)
	assertSameRows(t, Coalesce(in, CoalesceAnalytic), want)

	// Same shape with an extra open row: at t=5 the count stays 2 with
	// delta 0, so the segment [0,10) ×2 survives intact.
	in.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 1)
	want2 := NewTable(tuple.NewSchema("name"))
	want2.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 2)
	assertSameRows(t, Coalesce(in, CoalesceNative), want2)
}

// The same Def 8.2 semantics must hold when coalesce runs as a blocking
// operator inside the streaming executor.
func TestCoalesceUnderStreamingExecutor(t *testing.T) {
	db := NewDB(dom)
	tbl := db.CreateTable("sal", tuple.NewSchema("name"))
	tbl.Append(tuple.Tuple{str("Ann")}, interval.New(0, 5), 1)
	tbl.Append(tuple.Tuple{str("Ann")}, interval.New(5, 10), 1)
	tbl.Append(tuple.Tuple{str("Joe")}, interval.New(1, 4), 2)
	it, err := db.ExecStream(CoalesceP{In: ScanP{Name: "sal"}})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := Materialize(it)
	want := NewTable(tuple.NewSchema("name"))
	want.Append(tuple.Tuple{str("Ann")}, interval.New(0, 10), 1)
	want.Append(tuple.Tuple{str("Joe")}, interval.New(1, 4), 2)
	assertSameRows(t, got, want)
}
