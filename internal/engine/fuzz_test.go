package engine_test

import (
	"fmt"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// fuzzDomain is the time domain of the coalesce fuzz harness: small
// enough that the per-time-point oracle stays cheap, large enough for
// nontrivial overlap structure.
var fuzzDomain = interval.NewDomain(0, 32)

// decodeFuzzTable decodes 3-byte chunks of fuzz data into an interval
// multiset over a single data column: (value, begin, span-and-
// multiplicity). Every decoded row is valid within fuzzDomain.
func decodeFuzzTable(data []byte) *engine.Table {
	// Cap the decoded row count: beyond a few hundred rows the fuzzer
	// stops finding new structure and the quadratic oracle dominates.
	if len(data) > 300 {
		data = data[:300]
	}
	tbl := engine.NewTable(tuple.NewSchema("v"))
	for i := 0; i+2 < len(data); i += 3 {
		v := int64(data[i] % 5)
		var val tuple.Value = tuple.Int(v)
		if v == 4 {
			val = tuple.Null // NULL is an ordinary data value for coalescing
		}
		begin := int64(data[i+1]) % (fuzzDomain.Max - 1)
		span := int64(data[i+2]%16) + 1
		end := begin + span
		if end > fuzzDomain.Max {
			end = fuzzDomain.Max
		}
		mult := int64(data[i+2]%3) + 1
		tbl.Append(tuple.Tuple{val}, interval.New(begin, end), mult)
	}
	return tbl
}

// timePointCounts is the naive oracle: for every (value, time point),
// the number of rows whose interval covers the point, counting
// duplicates.
func timePointCounts(t *engine.Table) map[string]int {
	counts := make(map[string]int)
	for _, row := range t.Rows {
		iv := t.Interval(row)
		key := row[:1].Key()
		for p := iv.Begin; p < iv.End; p++ {
			counts[fmt.Sprintf("%s@%d", key, p)]++
		}
	}
	return counts
}

func multisetKeys(t *engine.Table) map[string]int {
	m := make(map[string]int)
	for _, row := range t.Rows {
		m[row.Key()]++
	}
	return m
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// FuzzCoalesce checks the coalesce implementations against each other
// and against the naive per-time-point oracle on arbitrary interval
// multisets: the blocking sweep must preserve every snapshot
// multiplicity and produce a coalesced (unique) encoding, and the
// streaming sweep over begin-sorted input must produce the identical
// row multiset. The streaming pre-aggregated split is cross-checked the
// same way.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5})
	f.Add([]byte{1, 3, 9, 1, 3, 9, 2, 0, 31})
	f.Add([]byte{0, 0, 4, 0, 4, 4, 0, 8, 4})    // adjacent same-value chains
	f.Add([]byte{3, 0, 15, 3, 5, 15, 3, 10, 2}) // overlaps within one group
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := decodeFuzzTable(data)

		blocking := engine.Coalesce(tbl, engine.CoalesceNative)
		// Oracle: coalescing never changes any snapshot.
		if want, got := timePointCounts(tbl), timePointCounts(blocking); !sameCounts(want, got) {
			t.Fatalf("blocking coalesce changed snapshot multiplicities\ninput:\n%s\noutput:\n%s", tbl, blocking)
		}
		// Uniqueness: the output must be its own coalesced encoding.
		if !engine.IsCoalesced(blocking, engine.CoalesceNative) {
			t.Fatalf("blocking coalesce output is not coalesced\ninput:\n%s\noutput:\n%s", tbl, blocking)
		}

		sorted := tbl.Clone()
		sorted.SortByEndpoints()
		stream := engine.Materialize(engine.NewStreamCoalesceIter(engine.NewTableIter(sorted)))
		if !sameCounts(multisetKeys(blocking), multisetKeys(stream)) {
			t.Fatalf("streaming coalesce diverges from blocking sweep\ninput:\n%s\nblocking:\n%s\nstreaming:\n%s", tbl, blocking, stream)
		}

		// The streaming pre-aggregated split must match the blocking one
		// row for row on the same input.
		aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}
		wantAgg, err := engine.TemporalAggregate(tbl, []string{"v"}, aggs, true, fuzzDomain)
		if err != nil {
			t.Fatal(err)
		}
		it, err := engine.NewStreamAggIter(engine.NewTableIter(sorted), []string{"v"}, aggs, fuzzDomain)
		if err != nil {
			t.Fatal(err)
		}
		gotAgg := engine.Materialize(it)
		if !sameCounts(multisetKeys(wantAgg), multisetKeys(gotAgg)) {
			t.Fatalf("streaming aggregation diverges from blocking sweep\ninput:\n%s\nblocking:\n%s\nstreaming:\n%s", tbl, wantAgg, gotAgg)
		}
	})
}
