package engine_test

import (
	"fmt"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// fuzzDomain is the time domain of the coalesce fuzz harness: small
// enough that the per-time-point oracle stays cheap, large enough for
// nontrivial overlap structure.
var fuzzDomain = interval.NewDomain(0, 32)

// decodeFuzzTable decodes 3-byte chunks of fuzz data into an interval
// multiset over a single data column: (value, begin, span-and-
// multiplicity). Every decoded row is valid within fuzzDomain.
func decodeFuzzTable(data []byte) *engine.Table {
	// Cap the decoded row count: beyond a few hundred rows the fuzzer
	// stops finding new structure and the quadratic oracle dominates.
	if len(data) > 300 {
		data = data[:300]
	}
	tbl := engine.NewTable(tuple.NewSchema("v"))
	for i := 0; i+2 < len(data); i += 3 {
		v := int64(data[i] % 5)
		var val tuple.Value = tuple.Int(v)
		if v == 4 {
			val = tuple.Null // NULL is an ordinary data value for coalescing
		}
		begin := int64(data[i+1]) % (fuzzDomain.Max - 1)
		span := int64(data[i+2]%16) + 1
		end := begin + span
		if end > fuzzDomain.Max {
			end = fuzzDomain.Max
		}
		mult := int64(data[i+2]%3) + 1
		tbl.Append(tuple.Tuple{val}, interval.New(begin, end), mult)
	}
	return tbl
}

// timePointCounts is the naive oracle: for every (value, time point),
// the number of rows whose interval covers the point, counting
// duplicates.
func timePointCounts(t *engine.Table) map[string]int {
	counts := make(map[string]int)
	for _, row := range t.Rows {
		iv := t.Interval(row)
		key := row[:1].Key()
		for p := iv.Begin; p < iv.End; p++ {
			counts[fmt.Sprintf("%s@%d", key, p)]++
		}
	}
	return counts
}

func multisetKeys(t *engine.Table) map[string]int {
	m := make(map[string]int)
	for _, row := range t.Rows {
		m[row.Key()]++
	}
	return m
}

func sameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// decodeFuzzPair decodes 4-byte chunks of fuzz data into TWO interval
// multisets — (side, value, begin, span-and-multiplicity) — the
// left/right inputs of a difference. Both sides draw values from the
// same small domain, so groups routinely exist on both sides and the ℕ
// monus has real truncation work.
func decodeFuzzPair(data []byte) (l, r *engine.Table) {
	if len(data) > 400 {
		data = data[:400]
	}
	l = engine.NewTable(tuple.NewSchema("v"))
	r = engine.NewTable(tuple.NewSchema("v"))
	for i := 0; i+3 < len(data); i += 4 {
		tbl := l
		if data[i]%2 == 1 {
			tbl = r
		}
		v := int64(data[i+1] % 5)
		var val tuple.Value = tuple.Int(v)
		if v == 4 {
			val = tuple.Null // NULL is an ordinary data value for differencing
		}
		begin := int64(data[i+2]) % (fuzzDomain.Max - 1)
		span := int64(data[i+3]%16) + 1
		end := begin + span
		if end > fuzzDomain.Max {
			end = fuzzDomain.Max
		}
		mult := int64(data[i+3]%3) + 1
		tbl.Append(tuple.Tuple{val}, interval.New(begin, end), mult)
	}
	return l, r
}

// monusTimePointCounts is the naive difference oracle: for every
// (value, time point), max(0, |left rows covering it| − |right rows
// covering it|) — the ℕ-monus snapshot semantics, zero entries elided.
func monusTimePointCounts(l, r *engine.Table) map[string]int {
	counts := timePointCounts(l)
	for k, rc := range timePointCounts(r) {
		lc := counts[k]
		if lc <= rc {
			delete(counts, k)
		} else {
			counts[k] = lc - rc
		}
	}
	return counts
}

// FuzzStreamDiff differences the streaming merge-based temporal
// difference against the blocking TemporalDiff oracle on arbitrary
// interval-multiset pairs — the multisets must be identical row for
// row, including the segment boundaries at zero-net-delta endpoints —
// and checks both against the naive per-time-point monus oracle. The
// seeds cover merge-order stress (same-instant begins on both sides)
// and monus truncation (right side exceeding the left).
func FuzzStreamDiff(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 9})
	f.Add([]byte{0, 1, 0, 9, 1, 1, 2, 3})                         // simple overlap
	f.Add([]byte{0, 1, 0, 4, 1, 1, 1, 10, 1, 1, 1, 10})           // monus truncation: right exceeds left
	f.Add([]byte{0, 2, 5, 6, 1, 2, 5, 6, 0, 2, 5, 2, 1, 2, 8, 2}) // same-instant begins on both sides (merge order)
	f.Add([]byte{0, 3, 0, 4, 0, 3, 4, 4, 1, 3, 2, 4})             // adjacent left chain split by a right row
	f.Add([]byte{1, 0, 0, 15, 1, 0, 3, 15})                       // right-only groups emit nothing
	f.Fuzz(func(t *testing.T, data []byte) {
		l, r := decodeFuzzPair(data)

		want, err := engine.TemporalDiff(l, r)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: the blocking diff must realize the per-snapshot monus.
		if wantPts, gotPts := monusTimePointCounts(l, r), timePointCounts(want); !sameCounts(wantPts, gotPts) {
			t.Fatalf("blocking diff violates the per-time-point monus oracle\nleft:\n%s\nright:\n%s\noutput:\n%s", l, r, want)
		}

		ls, rs := l.Clone(), r.Clone()
		ls.SortByEndpoints()
		rs.SortByEndpoints()
		it, err := engine.NewStreamDiffIter(engine.NewTableIter(ls), engine.NewTableIter(rs))
		if err != nil {
			t.Fatal(err)
		}
		// Under -tags snapdebug this asserts the no-mutation contract at
		// the operator itself, before the differential comparison runs.
		it = engine.CheckNoAlias("streaming difference", it)
		got := engine.Materialize(it)
		it.Close()
		if !sameCounts(multisetKeys(want), multisetKeys(got)) {
			t.Fatalf("streaming diff diverges from blocking sweep\nleft:\n%s\nright:\n%s\nblocking:\n%s\nstreaming:\n%s", l, r, want, got)
		}

		// Batch drive at a deliberately awkward capacity: the NextBatch
		// path through the same sweep (asserted by the batch-aware
		// snapdebug wrappers under -tags snapdebug) must produce the
		// identical multiset.
		bit, err := engine.NewStreamDiffIter(engine.NewTableIter(ls), engine.NewTableIter(rs))
		if err != nil {
			t.Fatal(err)
		}
		bit = engine.CheckNoAlias("streaming difference (batch)", bit)
		batched := engine.Materialize(engine.NewRowAdapter(bit.(engine.BatchIter), 3))
		bit.Close()
		if !sameCounts(multisetKeys(want), multisetKeys(batched)) {
			t.Fatalf("batch-driven streaming diff diverges\nleft:\n%s\nright:\n%s\nwant:\n%s\ngot:\n%s", l, r, want, batched)
		}
	})
}

// FuzzCoalesce checks the coalesce implementations against each other
// and against the naive per-time-point oracle on arbitrary interval
// multisets: the blocking sweep must preserve every snapshot
// multiplicity and produce a coalesced (unique) encoding, and the
// streaming sweep over begin-sorted input must produce the identical
// row multiset. The streaming pre-aggregated split is cross-checked the
// same way.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5})
	f.Add([]byte{1, 3, 9, 1, 3, 9, 2, 0, 31})
	f.Add([]byte{0, 0, 4, 0, 4, 4, 0, 8, 4})    // adjacent same-value chains
	f.Add([]byte{3, 0, 15, 3, 5, 15, 3, 10, 2}) // overlaps within one group
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := decodeFuzzTable(data)

		blocking := engine.Coalesce(tbl, engine.CoalesceNative)
		// Oracle: coalescing never changes any snapshot.
		if want, got := timePointCounts(tbl), timePointCounts(blocking); !sameCounts(want, got) {
			t.Fatalf("blocking coalesce changed snapshot multiplicities\ninput:\n%s\noutput:\n%s", tbl, blocking)
		}
		// Uniqueness: the output must be its own coalesced encoding.
		if !engine.IsCoalesced(blocking, engine.CoalesceNative) {
			t.Fatalf("blocking coalesce output is not coalesced\ninput:\n%s\noutput:\n%s", tbl, blocking)
		}

		sorted := tbl.Clone()
		sorted.SortByEndpoints()
		// CheckNoAlias is active under -tags snapdebug and an identity
		// wrapper otherwise.
		stream := engine.Materialize(engine.CheckNoAlias("streaming coalesce",
			engine.NewStreamCoalesceIter(engine.NewTableIter(sorted))))
		if !sameCounts(multisetKeys(blocking), multisetKeys(stream)) {
			t.Fatalf("streaming coalesce diverges from blocking sweep\ninput:\n%s\nblocking:\n%s\nstreaming:\n%s", tbl, blocking, stream)
		}

		// Batch drive of the same sweep at an awkward capacity must match.
		bcoal := engine.CheckNoAlias("streaming coalesce (batch)",
			engine.NewStreamCoalesceIter(engine.NewTableIter(sorted)))
		batched := engine.Materialize(engine.NewRowAdapter(bcoal.(engine.BatchIter), 3))
		bcoal.Close()
		if !sameCounts(multisetKeys(blocking), multisetKeys(batched)) {
			t.Fatalf("batch-driven streaming coalesce diverges\ninput:\n%s\nwant:\n%s\ngot:\n%s", tbl, blocking, batched)
		}

		// The streaming pre-aggregated split must match the blocking one
		// row for row on the same input.
		aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}
		wantAgg, err := engine.TemporalAggregate(tbl, []string{"v"}, aggs, true, fuzzDomain)
		if err != nil {
			t.Fatal(err)
		}
		it, err := engine.NewStreamAggIter(engine.NewTableIter(sorted), []string{"v"}, aggs, fuzzDomain)
		if err != nil {
			t.Fatal(err)
		}
		gotAgg := engine.Materialize(engine.CheckNoAlias("streaming aggregation", it))
		if !sameCounts(multisetKeys(wantAgg), multisetKeys(gotAgg)) {
			t.Fatalf("streaming aggregation diverges from blocking sweep\ninput:\n%s\nblocking:\n%s\nstreaming:\n%s", tbl, wantAgg, gotAgg)
		}
	})
}
