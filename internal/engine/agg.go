package engine

import (
	"fmt"
	"sort"
	"strconv"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// TemporalAggregate implements the REWR aggregation pattern (Fig 4):
// split the input on the grouping columns so that aggregates are constant
// per resulting interval, then aggregate per (group, interval). Without
// grouping, a virtual neutral row spanning the whole domain is unioned in
// first (the Fig 4 pattern REWR(γf(A)) with {(null, Tmin, Tmax)}), so
// gaps produce rows (count 0 / NULL aggregate) — this is what fixes the
// AG bug.
//
// With preAgg (the §9 optimization) the split is fused with the
// aggregation into one endpoint sweep per group using incremental
// accumulators, so the sort runs over group endpoints instead of
// materialized split rows. With preAgg false, the operator materializes
// Split (Def 8.3) output and hash-aggregates it — the naive plan used as
// the ablation baseline.
func TemporalAggregate(in *Table, groupBy []string, aggs []algebra.AggSpec, preAgg bool, dom interval.Domain) (*Table, error) {
	prep, err := prepareAggregate(in.DataSchema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	out := &Table{Schema: prep.schema}
	if preAgg {
		aggregateSweep(in, out, prep.groupIdx, aggs, prep.argIdx, dom)
		return out, nil
	}
	aggregateNaive(in, out, prep.groupIdx, aggs, prep.argIdx, dom)
	return out, nil
}

// aggPrep is the compiled form of an aggregation spec: resolved group
// and argument column indices plus the output period schema. It is
// shared by the blocking sweep, the naive split implementation and the
// streaming aggregation iterator.
type aggPrep struct {
	groupIdx []int
	argIdx   []int
	schema   tuple.Schema
}

// prepareAggregate resolves groupBy and aggregation argument columns
// against the input data schema.
func prepareAggregate(data tuple.Schema, groupBy []string, aggs []algebra.AggSpec) (*aggPrep, error) {
	p := &aggPrep{groupIdx: make([]int, len(groupBy)), argIdx: make([]int, len(aggs))}
	for i, g := range groupBy {
		idx := data.Index(g)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown group-by column %q", g)
		}
		p.groupIdx[i] = idx
	}
	outCols := append([]string{}, groupBy...)
	for i, a := range aggs {
		p.argIdx[i] = -1
		if a.Fn != krel.CountStar {
			idx := data.Index(a.Arg)
			if idx < 0 {
				return nil, fmt.Errorf("engine: unknown aggregation column %q", a.Arg)
			}
			p.argIdx[i] = idx
		}
		outCols = append(outCols, a.As)
	}
	p.schema = PeriodSchema(tuple.NewSchema(outCols...))
	return p, nil
}

// aggregateSweep is the pre-aggregated implementation: one endpoint sweep
// per group with incremental accumulators.
func aggregateSweep(in *Table, out *Table, groupIdx []int, aggs []algebra.AggSpec, argIdx []int, dom interval.Domain) {
	type rowEvent struct {
		t     interval.Time
		row   tuple.Tuple
		enter bool
	}
	type grp struct {
		group  tuple.Tuple
		events []rowEvent
	}
	global := len(groupIdx) == 0
	groups := make(map[string]*grp)
	// Reusable scratch key: the group tuple is only projected out (and
	// the key string only materialized) once per distinct group, not per
	// row.
	var scratch []byte
	for _, row := range in.Rows {
		scratch = row.AppendKey(scratch[:0], groupIdx)
		acc, ok := groups[string(scratch)]
		if !ok {
			acc = &grp{group: row.Project(groupIdx)}
			groups[string(scratch)] = acc
		}
		iv := in.Interval(row)
		acc.events = append(acc.events,
			rowEvent{t: iv.Begin, row: row, enter: true},
			rowEvent{t: iv.End, row: row, enter: false})
	}
	if global && len(groups) == 0 {
		groups[""] = &grp{group: tuple.Tuple{}}
	}
	for _, g := range groups {
		sort.SliceStable(g.events, func(i, j int) bool { return g.events[i].t < g.events[j].t })
		sweepers := make([]*aggSweeper, len(aggs))
		for i, a := range aggs {
			sweepers[i] = newAggSweeper(a.Fn)
		}
		var alive int64
		emit := func(seg interval.Interval) {
			if !seg.Valid() {
				return
			}
			if alive == 0 && !global {
				return
			}
			// One exact-capacity allocation per output row.
			row := make(tuple.Tuple, 0, len(g.group)+len(sweepers)+2)
			row = append(row, g.group...)
			for _, sw := range sweepers {
				row = append(row, sw.result())
			}
			row = append(row, tuple.Int(seg.Begin), tuple.Int(seg.End))
			out.Rows = append(out.Rows, row)
		}
		segStart := dom.Min
		i := 0
		if !global && len(g.events) > 0 {
			segStart = g.events[0].t
		}
		for i < len(g.events) {
			t := g.events[i].t
			emit(interval.Interval{Begin: segStart, End: t})
			for i < len(g.events) && g.events[i].t == t {
				ev := g.events[i]
				if ev.enter {
					alive++
				} else {
					alive--
				}
				for j, sw := range sweepers {
					var arg tuple.Value
					if argIdx[j] >= 0 {
						arg = ev.row[argIdx[j]]
					}
					sw.update(arg, ev.enter)
				}
				i++
			}
			segStart = t
		}
		if global {
			emit(interval.Interval{Begin: segStart, End: dom.Max})
		}
	}
}

// aggregateNaive materializes the split (Def 8.3) and hash-aggregates.
// For global aggregation it additionally emits neutral rows (count 0,
// NULL aggregates) over the uncovered segments of the domain, which is
// the effect of Fig 4's union with {(null, Tmin, Tmax)}.
func aggregateNaive(in *Table, out *Table, groupIdx []int, aggs []algebra.AggSpec, argIdx []int, dom interval.Domain) {
	global := len(groupIdx) == 0
	split := Split(in, in, groupIdx)
	type acc struct {
		group  tuple.Tuple
		seg    interval.Interval
		states []*krel.AggState
	}
	newAcc := func(g tuple.Tuple, iv interval.Interval) *acc {
		a := &acc{group: g, seg: iv, states: make([]*krel.AggState, len(aggs))}
		for i, sp := range aggs {
			a.states[i] = krel.NewAggState(sp.Fn)
		}
		return a
	}
	groups := make(map[string]*acc)
	var scratch []byte
	for _, row := range split.Rows {
		iv := split.Interval(row)
		scratch = appendSegKey(scratch[:0], row, groupIdx, iv)
		a, ok := groups[string(scratch)]
		if !ok {
			a = newAcc(row.Project(groupIdx), iv)
			groups[string(scratch)] = a
		}
		for i := range aggs {
			var arg tuple.Value
			if argIdx[i] >= 0 {
				arg = row[argIdx[i]]
			}
			a.states[i].AddValue(arg, 1)
		}
	}
	if global {
		// Gap segments: elementary intervals of the domain not covered by
		// any input row still produce a (0 / NULL) result row.
		pts := []interval.Time{dom.Min, dom.Max}
		for _, row := range in.Rows {
			iv := in.Interval(row)
			pts = append(pts, iv.Begin, iv.End)
		}
		pts = interval.DedupTimes(pts)
		for i := 0; i+1 < len(pts); i++ {
			seg := interval.Interval{Begin: pts[i], End: pts[i+1]}
			// Global aggregation has no group columns, so the segment key
			// degenerates to the '@'-prefixed endpoint encoding.
			scratch = appendSegKey(scratch[:0], nil, groupIdx, seg)
			if _, covered := groups[string(scratch)]; !covered {
				groups[string(scratch)] = newAcc(tuple.Tuple{}, seg)
			}
		}
	}
	for _, a := range groups {
		row := a.group.Clone()
		for _, st := range a.states {
			row = append(row, st.Result())
		}
		row = append(row, tuple.Int(a.seg.Begin), tuple.Int(a.seg.End))
		out.Rows = append(out.Rows, row)
	}
}

// appendSegKey appends the (group, segment) composite key of the naive
// hash aggregation — the canonical group-columns key encoding, '@', and
// the two interval endpoints — to b, replacing the old
// `g.Key() + "@" + endpoints.Key()` concatenation that allocated two
// strings per input row. row may be nil when groupIdx is empty (the
// global-aggregation gap segments).
func appendSegKey(b []byte, row tuple.Tuple, groupIdx []int, iv interval.Interval) []byte {
	b = row.AppendKey(b, groupIdx)
	b = append(b, '@')
	b = strconv.AppendInt(b, iv.Begin, 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, iv.End, 10)
	return b
}

// aggSweeper incrementally maintains one aggregation function under row
// insertions and deletions — the per-segment evaluation of the
// pre-aggregated split (§9).
type aggSweeper struct {
	fn        krel.AggFunc
	count     int64   // non-null rows (all rows for CountStar)
	sumI      int64   // integer part of the running sum
	sumF      float64 // float part of the running sum
	seenFloat bool    // a float value ever contributed to the sum
	// vals maintains the multiset of current values for min/max, as a
	// sorted slice of distinct values with counts.
	vals   []tuple.Value
	counts []int64
}

func newAggSweeper(fn krel.AggFunc) *aggSweeper { return &aggSweeper{fn: fn} }

func (a *aggSweeper) update(v tuple.Value, enter bool) {
	sign := int64(1)
	if !enter {
		sign = -1
	}
	if a.fn == krel.CountStar {
		a.count += sign
		return
	}
	if v.IsNull() {
		return
	}
	a.count += sign
	switch a.fn {
	case krel.Sum, krel.Avg:
		if v.Kind() == tuple.KindFloat {
			a.seenFloat = true
			a.sumF += float64(sign) * v.AsFloat()
		} else {
			a.sumI += sign * v.AsInt()
		}
	case krel.Min, krel.Max:
		i := sort.Search(len(a.vals), func(i int) bool { return tuple.Compare(a.vals[i], v) >= 0 })
		if i < len(a.vals) && tuple.Compare(a.vals[i], v) == 0 {
			a.counts[i] += sign
			if a.counts[i] == 0 {
				a.vals = append(a.vals[:i], a.vals[i+1:]...)
				a.counts = append(a.counts[:i], a.counts[i+1:]...)
			}
			return
		}
		a.vals = append(a.vals, tuple.Null)
		copy(a.vals[i+1:], a.vals[i:])
		a.vals[i] = v
		a.counts = append(a.counts, 0)
		copy(a.counts[i+1:], a.counts[i:])
		a.counts[i] = 1
	}
}

func (a *aggSweeper) result() tuple.Value {
	switch a.fn {
	case krel.CountStar, krel.Count:
		return tuple.Int(a.count)
	case krel.Sum:
		if a.count == 0 {
			return tuple.Null
		}
		if a.seenFloat {
			return tuple.Float(krel.QuantizeFloat(a.sumF + float64(a.sumI)))
		}
		return tuple.Int(a.sumI)
	case krel.Avg:
		if a.count == 0 {
			return tuple.Null
		}
		return tuple.Float(krel.QuantizeFloat((a.sumF + float64(a.sumI)) / float64(a.count)))
	case krel.Min:
		if len(a.vals) == 0 {
			return tuple.Null
		}
		return a.vals[0]
	case krel.Max:
		if len(a.vals) == 0 {
			return tuple.Null
		}
		return a.vals[len(a.vals)-1]
	default:
		panic("engine: unknown aggregation function")
	}
}
