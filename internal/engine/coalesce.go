package engine

import (
	"bytes"
	"sort"

	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// CoalesceImpl selects one of the two multiset-coalescing implementations
// (Def 8.2), mirroring the two alternatives discussed in §9/§10.2.
type CoalesceImpl int

const (
	// CoalesceNative sorts the endpoint events of each value-equivalent
	// group once and sweeps — the single-sort native implementation the
	// paper suggests a database kernel would use.
	CoalesceNative CoalesceImpl = iota
	// CoalesceAnalytic mirrors the paper's SQL implementation built from
	// analytic window functions: the same counting sweep, but the window
	// declarations force the backend to sort the input multiple times
	// (the paper observed 2 and 7 sorts on its systems; we perform 3).
	CoalesceAnalytic
)

// coalesceSortSteps is the number of sorting passes performed by the
// analytic-window simulation.
const coalesceSortSteps = 3

// Coalesce implements the coalesce operator C (Def 8.2): it replaces the
// rows of every value-equivalent group with the unique N-coalesced
// encoding — maximal intervals of constant multiplicity, one row per
// multiplicity unit. The output is the canonical PERIODENC image of the
// ℕᵀ-relation the input encodes.
//
// The algorithm counts open intervals per time point: every row
// contributes +1 at its begin and −1 at its end; annotation changepoints
// are where the running count changes (cf. the paper's SQL implementation
// via analytic functions, §9).
func Coalesce(in *Table, impl CoalesceImpl) *Table {
	type event struct {
		t     interval.Time
		delta int64
	}
	type grp struct {
		data   tuple.Tuple
		events []event
	}
	n := in.DataArity()
	groups := make(map[string]*grp)
	order := make([]string, 0, 16)
	// Group-key lookups go through a reusable scratch buffer: the
	// map[string(scratch)] index avoids the per-row string allocation of
	// Tuple.Key; a key string is materialized once per distinct group.
	var scratch []byte
	for _, row := range in.Rows {
		data := row[:n]
		scratch = data.AppendKey(scratch[:0], nil)
		g, ok := groups[string(scratch)]
		if !ok {
			key := string(scratch)
			g = &grp{data: data}
			groups[key] = g
			order = append(order, key)
		}
		iv := in.Interval(row)
		g.events = append(g.events, event{t: iv.Begin, delta: 1}, event{t: iv.End, delta: -1})
	}
	out := &Table{Schema: in.Schema}
	for _, key := range order {
		g := groups[key]
		passes := 1
		if impl == CoalesceAnalytic {
			passes = coalesceSortSteps
		}
		for p := 0; p < passes; p++ {
			sort.Slice(g.events, func(i, j int) bool { return g.events[i].t < g.events[j].t })
		}
		var cur int64
		var segStart interval.Time
		for i := 0; i < len(g.events); {
			t := g.events[i].t
			var delta int64
			for i < len(g.events) && g.events[i].t == t {
				delta += g.events[i].delta
				i++
			}
			if delta == 0 {
				continue // no annotation change at t: keep the segment open
			}
			if cur > 0 {
				emitRows(out, g.data, interval.New(segStart, t), cur)
			}
			cur += delta
			segStart = t
		}
	}
	// The output is the unique encoding by construction; record it so
	// KnownCoalesced answers without a rescan.
	out.markCoalesced()
	return out
}

func emitRows(out *Table, data tuple.Tuple, iv interval.Interval, mult int64) {
	row := make(tuple.Tuple, 0, len(data)+2)
	row = append(row, data...)
	row = append(row, tuple.Int(iv.Begin), tuple.Int(iv.End))
	// Each duplicate gets its own backing slice: emitted siblings must
	// not alias, or an in-place mutation of one output row silently
	// corrupts the others.
	out.Rows = append(out.Rows, row)
	for i := int64(1); i < mult; i++ {
		out.Rows = append(out.Rows, row.Clone())
	}
}

// IsCoalesced reports whether the table already is its own coalesced
// encoding — used by tests to verify the uniqueness guarantee on final
// query results. It deliberately ignores the cached coalescedness
// metadata (see Table.KnownCoalesced): the differential harness uses it
// as the oracle that VALIDATES the sweeps, so it must recompute.
func IsCoalesced(in *Table, impl CoalesceImpl) bool {
	c := Coalesce(in, impl)
	if len(c.Rows) != len(in.Rows) {
		return false
	}
	a, b := in.Clone(), c
	a.Sort()
	b.Sort()
	var ka, kb []byte
	for i := range a.Rows {
		ka = a.Rows[i].AppendKey(ka[:0], nil)
		kb = b.Rows[i].AppendKey(kb[:0], nil)
		if !bytes.Equal(ka, kb) {
			return false
		}
	}
	return true
}
