package engine

import (
	"fmt"
	"sort"

	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// This file implements the sort-aware streaming form of the temporal
// difference (the REWR pattern N_SCH(Q1)(R1,R2) − N_SCH(Q2)(R2,R1) of
// Fig 4, fused with the §9 pre-aggregated counts — the same semantics
// as the blocking TemporalDiff). It is the two-input sibling of the
// streaming sweeps in streamsweep.go: both inputs must arrive ordered
// by ascending interval begin, the iterator merges them into one event
// sweep, and per value-equivalent group it keeps only the open interval
// ends plus two counters — O(open intervals + active groups) state —
// instead of materializing either input. Once the merged sweep position
// passes a time point, no later row of either side can contribute an
// event before it, so segments up to that point are final and groups
// whose intervals are all closed are evicted.
//
// As in streamsweep.go, the input-order precondition is the planner's
// responsibility (package rewrite inserts SortP enforcers on BOTH
// children when the order is not guaranteed); violations panic so a
// planner bug is loud instead of silently wrong.

// diffGroup is the per-value-equivalent-group sweep state of the
// streaming difference: the pending interval ends not yet passed by the
// sweep (each carrying the signed multiplicity delta to apply), the
// committed left-minus-right count through the last committed event,
// and the uncommitted delta accumulated at curT. Unlike coalescing,
// difference splits its output at EVERY endpoint of the group — even
// when the net delta at that instant is zero — because the blocking
// TemporalDiff emits one row per elementary segment and the streaming
// form must produce the identical multiset; curEvent records that an
// endpoint occurred at curT so the commit splits there regardless of
// the delta.
type diffGroup struct {
	key      string
	data     tuple.Tuple
	ends     minHeap[int64] // pending end events; payload = signed delta to apply
	count    int64          // committed left − right multiplicity through segStart
	segStart interval.Time
	curT     interval.Time
	curDelta int64
	curEvent bool
	seq      int // first-seen order, for a deterministic end-of-input flush
	// reg/regT: the group's single live registration in the iterator's
	// expiry heap (the global-sweep eviction machinery).
	reg  bool
	regT interval.Time
}

// nextTime reports when the group next needs the sweep's attention;
// ok=false means fully closed and committed: evictable. Every begin
// delta has a matching end delta in the ends heap, so a group with no
// pending end, no uncommitted event and a zero count can never emit
// again.
func (g *diffGroup) nextTime() (interval.Time, bool) {
	if g.ends.len() > 0 {
		return g.ends.min(), true
	}
	if g.curEvent || g.curDelta != 0 || g.count != 0 {
		return g.curT, true // pending uncommitted event with no open end left
	}
	return 0, false
}

// commit applies the pending event at curT: it closes the segment
// [segStart, curT) — emitting it with the ℕ-monus multiplicity
// max(0, count) — and folds the accumulated delta into the count. A
// zero-delta event still moves segStart: difference output segments
// break at every endpoint of the group, exactly as in TemporalDiff.
func (g *diffGroup) commit(emit func(data tuple.Tuple, iv interval.Interval, mult int64)) {
	if !g.curEvent {
		return
	}
	if g.count > 0 && g.curT > g.segStart {
		emit(g.data, interval.New(g.segStart, g.curT), g.count)
	}
	g.count += g.curDelta
	g.curDelta = 0
	g.curEvent = false
	g.segStart = g.curT
}

// advance moves the group's sweep position to t, committing every
// pending end event strictly before it and folding ends at t into the
// uncommitted delta (a same-instant begin may still arrive and belongs
// to the same event).
func (g *diffGroup) advance(t interval.Time, emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 && g.ends.min() <= t {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.curDelta += g.ends.pop().v
			g.curEvent = true
		}
	}
	if t > g.curT {
		g.commit(emit)
		g.curT = t
	}
}

// flush drains every remaining pending end at end of input — with no
// time bound, so arbitrarily late interval ends still split and emit —
// and commits the final segment.
func (g *diffGroup) flush(emit func(tuple.Tuple, interval.Interval, int64)) {
	for g.ends.len() > 0 {
		et := g.ends.min()
		if et > g.curT {
			g.commit(emit)
			g.curT = et
		}
		for g.ends.len() > 0 && g.ends.min() == et {
			g.curDelta += g.ends.pop().v
			g.curEvent = true
		}
	}
	g.commit(emit)
}

// streamDiffIter is the streaming ℕ-monus difference over two
// begin-sorted inputs. It merges the two streams by ascending interval
// begin (+1 events from the left input, −1 from the right), sweeps each
// value-equivalent group's endpoints in time order, and emits every
// elementary segment with multiplicity max(0, |left| − |right|) — the
// same multiset the blocking TemporalDiff produces, without
// materializing either input. The expiry heap wakes each group when the
// merged sweep position passes its next event; fully closed groups are
// evicted from the state map.
type streamDiffIter struct {
	l, r       RowIter
	lcur, rcur batchCursor
	n          int // data arity
	groups     map[string]*diffGroup
	expiry     minHeap[*diffGroup] // group wake-ups keyed by next event time
	nextSeq    int
	queue      []tuple.Tuple
	qi         int
	// one-row lookahead per input, filled on first Next
	lRow, rRow tuple.Tuple
	lOk, rOk   bool
	primed     bool
	drained    bool
	scratch    []byte // reusable group-key buffer (one key string per distinct group, not per row)
	// peak sweep state, reported through MaxState for EXPLAIN ANALYZE.
	maxGroups int
	maxOpen   int
}

// MaxState reports the observed peak sweep state (live groups plus the
// largest per-group open-end heap) — the engine.StateSizer hook.
func (it *streamDiffIter) MaxState() int64 {
	return int64(it.maxGroups + it.maxOpen)
}

// NewStreamDiffIter returns the streaming temporal difference l − r,
// taking ownership of both inputs. Both must be ordered by ascending
// interval begin (violations panic) and union-compatible; on an arity
// mismatch both children are closed and an error is returned, matching
// the other constructors' contract.
func NewStreamDiffIter(l, r RowIter) (RowIter, error) {
	l = CheckOrdered("streaming difference left input", l)
	r = CheckOrdered("streaming difference right input", r)
	if l.Schema().Arity() != r.Schema().Arity() {
		arities := [2]int{l.Schema().Arity(), r.Schema().Arity()}
		l.Close()
		r.Close()
		return nil, fmt.Errorf("engine: difference-incompatible arities %d and %d", arities[0], arities[1])
	}
	return &streamDiffIter{
		l:      l,
		r:      r,
		lcur:   batchCursor{in: l},
		rcur:   batchCursor{in: r},
		n:      l.Schema().Arity() - 2,
		groups: make(map[string]*diffGroup),
	}, nil
}

func (it *streamDiffIter) Schema() tuple.Schema { return it.l.Schema() }

// track (re-)registers g in the expiry heap at its next event time, or
// evicts it when fully closed. Each group holds at most one live
// registration, so the heap stays O(active groups).
func (it *streamDiffIter) track(g *diffGroup) {
	t, ok := g.nextTime()
	if !ok {
		delete(it.groups, g.key)
		return
	}
	g.reg, g.regT = true, t
	it.expiry.push(t, g)
}

// retire advances every group whose registered wake-up lies strictly
// before the merged sweep position b. Strictly before: events at
// exactly b must stay uncommitted, because a same-instant begin from
// either input may still arrive and belongs to the same boundary.
func (it *streamDiffIter) retire(b interval.Time) {
	for it.expiry.len() > 0 && it.expiry.min() < b {
		e := it.expiry.pop()
		if !e.v.reg || e.v.regT != e.t {
			continue // superseded registration
		}
		e.v.reg = false
		e.v.advance(b, it.enqueue)
		it.track(e.v)
	}
}

// enqueue appends mult copies of (data, iv), each with its own backing
// slice so emitted siblings never alias.
func (it *streamDiffIter) enqueue(data tuple.Tuple, iv interval.Interval, mult int64) {
	row := make(tuple.Tuple, 0, len(data)+2)
	row = append(row, data...)
	row = append(row, tuple.Int(iv.Begin), tuple.Int(iv.End))
	it.queue = append(it.queue, row)
	for i := int64(1); i < mult; i++ {
		it.queue = append(it.queue, row.Clone())
	}
}

// fill runs the merged sweep until the output queue holds at least one
// emitted row or both inputs are fully drained, reporting whether rows
// are available — the shared production step behind both Next and
// NextBatch. The one-row lookahead per side is pulled through the
// per-side batch cursors, so a batch-driven chain amortizes both input
// hops.
func (it *streamDiffIter) fill() bool {
	for {
		if it.qi < len(it.queue) {
			return true
		}
		it.queue = it.queue[:0]
		it.qi = 0
		if it.drained {
			return false
		}
		if !it.primed {
			it.lRow, it.lOk = it.lcur.next()
			it.rRow, it.rOk = it.rcur.next()
			it.primed = true
		}
		// Merge step: take the earlier begin (ties go left — immaterial
		// for the result, since same-instant deltas fold into one event).
		var row tuple.Tuple
		var sign int64
		switch {
		case it.lOk && (!it.rOk || rowInterval(it.lRow).Begin <= rowInterval(it.rRow).Begin):
			row, sign = it.lRow, 1
			it.lRow, it.lOk = it.lcur.next()
			if it.lOk && rowInterval(it.lRow).Begin < rowInterval(row).Begin {
				panic(fmt.Sprintf("engine: streaming difference left input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", rowInterval(it.lRow).Begin, rowInterval(row).Begin))
			}
		case it.rOk:
			row, sign = it.rRow, -1
			it.rRow, it.rOk = it.rcur.next()
			if it.rOk && rowInterval(it.rRow).Begin < rowInterval(row).Begin {
				panic(fmt.Sprintf("engine: streaming difference right input not begin-sorted (begin %d after %d); planner must insert a sort enforcer", rowInterval(it.rRow).Begin, rowInterval(row).Begin))
			}
		default:
			// End of both inputs: flush the remaining live groups in
			// first-seen order, so repeated runs stream identical row
			// order (the map holds only the live groups, so the flush
			// sorts O(active groups), not O(all groups ever seen)).
			live := make([]*diffGroup, 0, len(it.groups))
			for _, g := range it.groups {
				live = append(live, g)
			}
			sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
			for _, g := range live {
				g.flush(it.enqueue)
			}
			it.drained = true
			continue
		}
		iv := rowInterval(row)
		it.retire(iv.Begin)
		data := row[:it.n]
		it.scratch = data.AppendKey(it.scratch[:0], nil)
		g, ok := it.groups[string(it.scratch)]
		if !ok {
			key := string(it.scratch)
			// The group representative is the first row seen in merge
			// order; a value-equivalent row from the other side may have
			// a different numeric kind (Int vs integral Float), which
			// Equal and Key treat as the same value — exactly as the
			// blocking sweep's first-seen representative does.
			g = &diffGroup{key: key, data: data, segStart: iv.Begin, curT: iv.Begin, seq: it.nextSeq}
			it.nextSeq++
			it.groups[key] = g
		}
		g.advance(iv.Begin, it.enqueue)
		g.curDelta += sign
		g.curEvent = true
		g.ends.push(iv.End, -sign)
		if n := len(it.groups); n > it.maxGroups {
			it.maxGroups = n
		}
		if n := g.ends.len(); n > it.maxOpen {
			it.maxOpen = n
		}
		if !g.reg {
			it.track(g)
		}
	}
}

func (it *streamDiffIter) Next() (tuple.Tuple, bool) {
	if !it.fill() {
		return nil, false
	}
	row := it.queue[it.qi]
	it.qi++
	return row, true
}

// NextBatch copies emitted segments out of the sweep queue
// chunk-at-a-time, enabling batch reads on both inputs from the first
// call on; see streamCoalesceIter.NextBatch for the copy-out rationale.
func (it *streamDiffIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	limit := batchCapOf(out)
	it.lcur.enableBatch(limit)
	it.rcur.enableBatch(limit)
	for out.Len() < limit && it.fill() {
		n := len(it.queue) - it.qi
		if r := limit - out.Len(); n > r {
			n = r
		}
		out.Rows = append(out.Rows, it.queue[it.qi:it.qi+n]...)
		it.qi += n
	}
	return out.Len() > 0
}

func (it *streamDiffIter) Close() {
	it.l.Close()
	it.r.Close()
}

// Err reports the first terminal error of either input; see
// streamCoalesceIter.Err for why the sweep's flushed output is only
// valid when this reports nil.
func (it *streamDiffIter) Err() error { return FirstErr(IterErr(it.l), IterErr(it.r)) }
