package engine

import (
	"snapk/internal/algebra"
	"snapk/internal/tuple"
)

// overlapJoinIter is the temporal join fallback for predicates without
// any equality conjunct. The previous implementation collapsed all build
// rows into one hash bucket, degenerating into a bare cartesian loop;
// this iterator instead sorts both inputs by interval begin once and
// runs a forward-scan plane sweep, so pure-overlap joins cost
// O(n log n + output) instead of O(n·m).
//
// Sweep invariant: each overlapping pair (l, r) is reported exactly once
// by whichever row begins first (ties go to the left input). When row x
// is the reference, the opposite input is scanned forward from its
// cursor while the scanned rows begin before x ends; every such row is
// guaranteed to overlap x, because it begins at or after x does.
type overlapJoinIter struct {
	schema tuple.Schema
	l, r   []tuple.Tuple // sorted ascending by interval begin
	lA, rA int
	res    algebra.Compiled
	i, j   int  // sweep cursors into l and r
	k      int  // forward-scan cursor into the non-reference input
	refL   bool // current reference row is l[i] (else r[j])
	active bool // a forward scan is in progress
}

// newOverlapJoinIter drains both inputs, sorts them by interval begin
// and returns the lazy sweep iterator. joined is the concatenated data
// schema; res the compiled residual predicate over it. Both inputs are
// fully consumed and closed here; the sweep holds no child resources.
func newOverlapJoinIter(l, r RowIter, joined tuple.Schema, res algebra.Compiled) (RowIter, error) {
	lA := l.Schema().Arity() - 2
	rA := r.Schema().Arity() - 2
	lRows, lErr := drainRowsErr(l)
	rRows, rErr := drainRowsErr(r)
	l.Close()
	r.Close()
	// A sweep over a truncated input would silently drop join pairs:
	// surface the drain error as a construction error instead.
	if err := FirstErr(lErr, rErr); err != nil {
		return nil, err
	}
	SortRowsByEndpoints(lRows)
	SortRowsByEndpoints(rRows)
	return &overlapJoinIter{
		schema: PeriodSchema(joined),
		l:      lRows,
		r:      rRows,
		lA:     lA,
		rA:     rA,
		res:    res,
	}, nil
}

// drainRowsErr drains it into a private slice and reports the error
// that ended the stream early, nil on a natural end. It does not Close
// it.
func drainRowsErr(it RowIter) ([]tuple.Tuple, error) {
	var rows []tuple.Tuple
	if bi, ok := it.(BatchIter); ok {
		// Batch drain into a private slice: the batch's row slice is
		// copied out before the producer reuses it.
		b := NewRowBatch(DefaultBatchSize)
		for bi.NextBatch(b) {
			rows = append(rows, b.Rows...)
		}
		return rows, IterErr(it)
	}
	for {
		row, ok := it.Next()
		if !ok {
			return rows, IterErr(it)
		}
		//lint:ignore rowretain blocking drain into a private slice; the rows are only ever read (engine producers never reuse yielded backing arrays)
		rows = append(rows, row)
	}
}

func (it *overlapJoinIter) Schema() tuple.Schema { return it.schema }

// emit composes the output row for one overlapping pair, or reports
// false if the residual predicate rejects it.
func (it *overlapJoinIter) emit(lrow, rrow tuple.Tuple) (tuple.Tuple, bool) {
	iv, ok := rowInterval(lrow).Intersect(rowInterval(rrow))
	if !ok {
		return nil, false
	}
	data := make(tuple.Tuple, 0, it.lA+it.rA+2)
	data = append(data, lrow[:it.lA]...)
	data = append(data, rrow[:it.rA]...)
	if !algebra.Truthy(it.res(data)) {
		return nil, false
	}
	data = append(data, tuple.Int(iv.Begin), tuple.Int(iv.End))
	return data, true
}

func (it *overlapJoinIter) Next() (tuple.Tuple, bool) {
	for {
		if it.active {
			if it.refL {
				lrow := it.l[it.i]
				end := rowInterval(lrow).End
				for it.k < len(it.r) {
					rrow := it.r[it.k]
					if rowInterval(rrow).Begin >= end {
						break
					}
					it.k++
					if out, ok := it.emit(lrow, rrow); ok {
						return out, true
					}
				}
				it.active = false
				it.i++
			} else {
				rrow := it.r[it.j]
				end := rowInterval(rrow).End
				for it.k < len(it.l) {
					lrow := it.l[it.k]
					if rowInterval(lrow).Begin >= end {
						break
					}
					it.k++
					if out, ok := it.emit(lrow, rrow); ok {
						return out, true
					}
				}
				it.active = false
				it.j++
			}
			continue
		}
		if it.i >= len(it.l) || it.j >= len(it.r) {
			return nil, false
		}
		if rowInterval(it.l[it.i]).Begin <= rowInterval(it.r[it.j]).Begin {
			it.refL = true
			it.k = it.j
		} else {
			it.refL = false
			it.k = it.i
		}
		it.active = true
	}
}

func (it *overlapJoinIter) Close() {}
