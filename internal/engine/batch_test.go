// Edge tests of the batch protocol itself: ragged final batches, empty
// inputs, size-1 batches, zero-capacity consumer batches, the two
// adapter directions, and the per-row ablation wrapper. The operator
// equivalence grids (rewrite package) cover semantics; these pin the
// mechanics of the NextBatch contract at every boundary case.
package engine_test

import (
	"sort"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// batchDB builds a table with n rows whose begin points ascend.
func batchDB(n int) *engine.DB {
	db := engine.NewDB(interval.NewDomain(0, 1000))
	tb := db.CreateTable("t", tuple.NewSchema("v"))
	for i := 0; i < n; i++ {
		b := int64(i % 100)
		tb.Append(tuple.Tuple{tuple.Int(int64(i))}, interval.New(b, b+3), 1)
	}
	return db
}

// drainBatches drains bi with a capacity-cap batch, asserting the
// NextBatch contract (true iff at least one row) and the cap bound at
// every step, and returns the delivered batch lengths plus all rows.
func drainBatches(t *testing.T, bi engine.BatchIter, cap_ int) ([]int, []tuple.Tuple) {
	t.Helper()
	b := engine.NewRowBatch(cap_)
	var lens []int
	var rows []tuple.Tuple
	for {
		ok := bi.NextBatch(b)
		if ok != (b.Len() > 0) {
			t.Fatalf("NextBatch contract broken: ok=%v with %d rows", ok, b.Len())
		}
		if !ok {
			// Exhaustion must be stable.
			if bi.NextBatch(b) || b.Len() != 0 {
				t.Fatal("NextBatch after exhaustion must keep returning false with an empty batch")
			}
			return lens, rows
		}
		if b.Len() > cap_ {
			t.Fatalf("batch overfilled: %d rows with capacity %d", b.Len(), cap_)
		}
		lens = append(lens, b.Len())
		rows = append(rows, b.Rows...)
	}
}

// sortedKeys renders rows to strings and sorts them, for multiset
// comparison.
func sortedRowKeys(rows []tuple.Tuple) []string {
	keys := make([]string, len(rows))
	for i, row := range rows {
		keys[i] = row.String()
	}
	sort.Strings(keys)
	return keys
}

func scanIter(t *testing.T, db *engine.DB) engine.RowIter {
	t.Helper()
	it, err := db.ExecStream(engine.ScanP{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	return it
}

// A 10-row scan drained with capacity 4 must deliver 4+4+2 — the ragged
// final batch — and with capacity 1 one row per call.
func TestNextBatchRaggedAndSizeOne(t *testing.T) {
	db := batchDB(10)
	it := scanIter(t, db)
	defer it.Close()
	lens, rows := drainBatches(t, it.(engine.BatchIter), 4)
	if len(rows) != 10 || len(lens) != 3 || lens[0] != 4 || lens[1] != 4 || lens[2] != 2 {
		t.Fatalf("capacity-4 drain of 10 rows: lens=%v rows=%d, want [4 4 2]/10", lens, len(rows))
	}

	it2 := scanIter(t, db)
	defer it2.Close()
	lens2, rows2 := drainBatches(t, it2.(engine.BatchIter), 1)
	if len(rows2) != 10 || len(lens2) != 10 {
		t.Fatalf("size-1 drain of 10 rows: %d batches, %d rows", len(lens2), len(rows2))
	}
}

// An empty input must return false on the FIRST NextBatch call, with
// the batch left empty.
func TestNextBatchEmptyInput(t *testing.T) {
	db := batchDB(0)
	plans := []engine.Plan{
		engine.ScanP{Name: "t"},
		engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "t"}}, Streaming: true},
	}
	for _, p := range plans {
		it, err := db.ExecStream(p)
		if err != nil {
			t.Fatal(err)
		}
		lens, rows := drainBatches(t, it.(engine.BatchIter), 8)
		if len(lens) != 0 || len(rows) != 0 {
			t.Fatalf("plan %T: empty input delivered %v batches", p, lens)
		}
		it.Close()
	}
}

// A zero-capacity consumer batch selects DefaultBatchSize, so a fresh
// RowBatch zero value works as a drain target.
func TestNextBatchZeroCapacityBatch(t *testing.T) {
	db := batchDB(engine.DefaultBatchSize + 7)
	it := scanIter(t, db)
	defer it.Close()
	var b engine.RowBatch
	bi := it.(engine.BatchIter)
	total := 0
	for bi.NextBatch(&b) {
		if b.Len() > engine.DefaultBatchSize {
			t.Fatalf("zero-capacity batch overfilled: %d rows", b.Len())
		}
		total += b.Len()
	}
	if total != engine.DefaultBatchSize+7 {
		t.Fatalf("drained %d rows, want %d", total, engine.DefaultBatchSize+7)
	}
}

// Mixed drive: per-row pulls interleaved with NextBatch calls on the
// same iterator must deliver every row exactly once.
func TestNextBatchMixedWithPerRowPulls(t *testing.T) {
	db := batchDB(20)
	it := scanIter(t, db)
	defer it.Close()
	bi := it.(engine.BatchIter)
	seen := make(map[int64]bool)
	record := func(rows ...tuple.Tuple) {
		for _, row := range rows {
			v := row[0].AsInt()
			if seen[v] {
				t.Fatalf("row %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	b := engine.NewRowBatch(3)
	for i := 0; ; i++ {
		if i%2 == 0 {
			row, ok := it.Next()
			if !ok {
				break
			}
			record(row)
		} else {
			if !bi.NextBatch(b) {
				break
			}
			record(b.Rows...)
		}
	}
	if len(seen) != 20 {
		t.Fatalf("mixed drive delivered %d distinct rows, want 20", len(seen))
	}
}

// The two adapters must round-trip: per-row → batch → per-row preserves
// the stream, including through a deliberately batch-only source.
func TestAdapterRoundTrip(t *testing.T) {
	db := batchDB(17)
	it := scanIter(t, db)
	defer it.Close()
	// PerRow hides batch capability entirely.
	pr := engine.PerRow(it)
	if _, ok := pr.(engine.BatchIter); ok {
		t.Fatal("PerRow must hide NextBatch")
	}
	// AsBatchIter over the per-row form, then a row adapter back.
	back := engine.NewRowAdapter(engine.AsBatchIter(pr, 5), 5)
	n := 0
	for {
		if _, ok := back.Next(); !ok {
			break
		}
		n++
	}
	if n != 17 {
		t.Fatalf("adapter round-trip delivered %d rows, want 17", n)
	}
}

// Batch drive of the streaming sweeps must match their per-row drive
// as a multiset (the sweeps' end-of-input flush walks a map, so tail
// order is unspecified) at awkward batch sizes — 1 and a non-divisor
// of the internal queue lengths.
func TestSweepBatchDriveMatchesPerRow(t *testing.T) {
	db := batchDB(137)
	plans := []engine.Plan{
		engine.CoalesceP{In: engine.SortP{In: engine.ScanP{Name: "t"}}, Streaming: true},
		engine.DiffP{
			L:         engine.SortP{In: engine.ScanP{Name: "t"}},
			R:         engine.SortP{In: engine.FilterP{Pred: algebra.Lt(algebra.Col("v"), algebra.IntC(40)), In: engine.ScanP{Name: "t"}}},
			Streaming: true,
		},
	}
	for _, p := range plans {
		ref, err := db.ExecStream(p)
		if err != nil {
			t.Fatal(err)
		}
		want := engine.Materialize(engine.PerRow(ref))
		ref.Close()
		wantKeys := sortedRowKeys(want.Rows)
		for _, size := range []int{1, 7} {
			it, err := db.ExecStream(p)
			if err != nil {
				t.Fatal(err)
			}
			_, rows := drainBatches(t, it.(engine.BatchIter), size)
			it.Close()
			gotKeys := sortedRowKeys(rows)
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("plan %T size %d: batch drive delivered %d rows, per-row %d", p, size, len(gotKeys), len(wantKeys))
			}
			for i := range gotKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("plan %T size %d: multiset differs at %d: %s vs %s", p, size, i, gotKeys[i], wantKeys[i])
				}
			}
		}
	}
}
