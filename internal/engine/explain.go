package engine

import (
	"fmt"
	"strings"

	"snapk/internal/tuple"
)

// This file is the static EXPLAIN side of the observability layer: a
// plan walker producing a tree isomorphic to the physical plan (one
// ExplainNode per plan node, children in input order), annotated with
// everything the planner decided — sweep mode, sort property, estimated
// rows, operator strategy. Parallel fragment/exchange placement is
// filled in by parallel.AnnotatePlacement, which mirrors the executor's
// build() branching over the same tree; the runtime counters of EXPLAIN
// ANALYZE live in obs.go.

// ExplainNode is one operator of an EXPLAIN tree.
type ExplainNode struct {
	// Op names the operator; Detail carries its static annotation
	// (predicate summary, table name, join strategy).
	Op     string
	Detail string
	// Mode is the sweep mode of coalesce/aggregate/difference nodes:
	// "streaming" (input order guaranteed by the data), "enforced"
	// (streaming behind an inserted sort enforcer), or "blocking" (the
	// materializing sweep). Empty for non-sweep operators.
	Mode string
	// Ordered reports the interval-endpoint sort property of the node's
	// output — the physical property driving sweep-mode selection.
	Ordered bool
	// EstRows is the statically known output cardinality, -1 when the
	// planner cannot bound it.
	EstRows int64
	// Placement describes parallel execution placement ("morsel scan ×4",
	// "sequential", "fragments ×4 via ordered-partition"); filled by
	// parallel.AnnotatePlacement, empty for purely sequential EXPLAIN.
	Placement string
	Children  []*ExplainNode
}

// ExplainPlan renders p as an annotated EXPLAIN tree. The tree is
// isomorphic to the plan (one node per plan node, children in L,R /
// input order), which parallel.AnnotatePlacement relies on.
func (db *DB) ExplainPlan(p Plan) *ExplainNode {
	n := &ExplainNode{
		Ordered: db.BeginOrdered(p),
		EstRows: db.EstimateRows(p),
	}
	switch t := p.(type) {
	case ScanP:
		n.Op, n.Detail = "Scan", t.Name
	case FilterP:
		n.Op, n.Detail = "Filter", t.Pred.String()
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	case ProjectP:
		parts := make([]string, len(t.Exprs))
		for i, ne := range t.Exprs {
			parts[i] = ne.Name
		}
		n.Op, n.Detail = "Project", strings.Join(parts, ",")
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	case JoinP:
		n.Op = "Join"
		n.Detail = db.explainJoinDetail(t)
		n.Children = []*ExplainNode{db.ExplainPlan(t.L), db.ExplainPlan(t.R)}
	case UnionP:
		n.Op = "UnionAll"
		n.Children = []*ExplainNode{db.ExplainPlan(t.L), db.ExplainPlan(t.R)}
	case DiffP:
		n.Op = "Diff"
		n.Mode = sweepMode(t.Streaming, t.L, t.R)
		n.Children = []*ExplainNode{db.ExplainPlan(t.L), db.ExplainPlan(t.R)}
	case AggP:
		n.Op = "Agg"
		n.Detail = fmt.Sprintf("group_by=%v", t.GroupBy)
		if t.PreAgg {
			n.Detail += " pre-agg"
		}
		n.Mode = sweepMode(t.Streaming && t.PreAgg, t.In)
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	case CoalesceP:
		n.Op = "Coalesce"
		n.Mode = sweepMode(t.Streaming, t.In)
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	case SortP:
		n.Op, n.Detail = "Sort", "endpoint enforcer"
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	case WindowP:
		n.Op, n.Detail = "Window", t.T.String()
		if t.Prune {
			n.Detail += " prune"
		}
		n.Children = []*ExplainNode{db.ExplainPlan(t.In)}
	default:
		n.Op = fmt.Sprintf("%T", p)
	}
	return n
}

// sweepMode classifies a sweep operator: blocking, streaming, or
// enforced — streaming whose order guarantee comes from an inserted
// sort enforcer on (any of) its input(s) rather than from the data.
func sweepMode(streaming bool, inputs ...Plan) string {
	if !streaming {
		return "blocking"
	}
	for _, in := range inputs {
		if _, ok := in.(SortP); ok {
			return "enforced"
		}
	}
	return "streaming"
}

// explainJoinDetail reports the join strategy the executors will pick:
// hash join with its build side, or the interval-overlap sweep fallback
// when the predicate has no equality conjunct. Schema errors (unknown
// table, unknown column) degrade to the bare predicate — EXPLAIN never
// fails on a plan the executor would reject with a better error.
func (db *DB) explainJoinDetail(t JoinP) string {
	lData, lErr := db.PlanDataSchema(t.L)
	rData, rErr := db.PlanDataSchema(t.R)
	if lErr != nil || rErr != nil {
		return t.Pred.String()
	}
	prep, err := PrepareJoin(lData, rData, t.Pred)
	if err != nil {
		return t.Pred.String()
	}
	strategy := "overlap-sweep"
	if prep.HasEquiKey() {
		// A planner-pinned build side wins over the executors' own
		// estimate-based pick — EXPLAIN reports what will actually run.
		var buildLeft bool
		switch t.Build {
		case BuildLeftSide:
			buildLeft = true
		case BuildRightSide:
			buildLeft = false
		default:
			buildLeft = BuildLeftSmaller(db.EstimateRows(t.L), db.EstimateRows(t.R))
		}
		if buildLeft {
			strategy = "hash build=left"
		} else {
			strategy = "hash build=right"
		}
	}
	return fmt.Sprintf("%s, on %s", strategy, t.Pred)
}

// PlanDataSchema derives the data schema (period attributes excluded)
// of a plan's output without executing it — the static input PrepareJoin
// needs for strategy reporting.
func (db *DB) PlanDataSchema(p Plan) (tuple.Schema, error) {
	switch t := p.(type) {
	case ScanP:
		return db.RelationSchema(t.Name)
	case FilterP:
		return db.PlanDataSchema(t.In)
	case ProjectP:
		cols := make([]string, len(t.Exprs))
		for i, ne := range t.Exprs {
			cols[i] = ne.Name
		}
		return tuple.NewSchema(cols...), nil
	case JoinP:
		l, err := db.PlanDataSchema(t.L)
		if err != nil {
			return tuple.Schema{}, err
		}
		r, err := db.PlanDataSchema(t.R)
		if err != nil {
			return tuple.Schema{}, err
		}
		return l.Concat(r, "r."), nil
	case UnionP:
		return db.PlanDataSchema(t.L)
	case DiffP:
		return db.PlanDataSchema(t.L)
	case AggP:
		in, err := db.PlanDataSchema(t.In)
		if err != nil {
			return tuple.Schema{}, err
		}
		// Aggregating an empty relation resolves the output schema with
		// the same column rules the executor applies.
		out, err := TemporalAggregate(&Table{Schema: PeriodSchema(in)}, t.GroupBy, t.Aggs, t.PreAgg, db.dom)
		if err != nil {
			return tuple.Schema{}, err
		}
		return out.DataSchema(), nil
	case CoalesceP:
		return db.PlanDataSchema(t.In)
	case SortP:
		return db.PlanDataSchema(t.In)
	case WindowP:
		return db.PlanDataSchema(t.In)
	default:
		return tuple.Schema{}, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// Render returns the EXPLAIN tree as indented text, one operator per
// line with its annotations.
func (n *ExplainNode) Render() string {
	var b strings.Builder
	renderExplain(&b, n, "", true, true)
	return b.String()
}

func renderExplain(b *strings.Builder, n *ExplainNode, prefix string, last, root bool) {
	if !root {
		if last {
			b.WriteString(prefix + "└─ ")
			prefix += "   "
		} else {
			b.WriteString(prefix + "├─ ")
			prefix += "│  "
		}
	}
	b.WriteString(n.line())
	b.WriteByte('\n')
	for i, c := range n.Children {
		renderExplain(b, c, prefix, i == len(n.Children)-1, false)
	}
}

func (n *ExplainNode) line() string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Detail != "" {
		fmt.Fprintf(&b, " [%s]", n.Detail)
	}
	if n.Mode != "" {
		fmt.Fprintf(&b, " sweep=%s", n.Mode)
	}
	if n.Ordered {
		b.WriteString(" ordered")
	}
	if n.EstRows >= 0 {
		fmt.Fprintf(&b, " est_rows=%d", n.EstRows)
	}
	if n.Placement != "" {
		fmt.Fprintf(&b, "  {%s}", n.Placement)
	}
	return b.String()
}
