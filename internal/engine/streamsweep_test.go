package engine

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// The streaming sweep tests live in the engine package (not
// engine_test) so they can pin down internal invariants — emission
// timing and panic behavior — that the black-box equivalence suite
// cannot name.

func sweepTable(rows ...[3]int64) *Table {
	t := NewTable(tuple.NewSchema("v"))
	for _, r := range rows {
		t.Append(tuple.Tuple{tuple.Int(r[0])}, interval.New(r[1], r[2]), 1)
	}
	return t
}

func materializeSorted(t *Table) []string {
	c := t.Clone()
	c.Sort()
	keys := make([]string, len(c.Rows))
	for i, row := range c.Rows {
		keys[i] = row.Key()
	}
	return keys
}

func assertSameTable(t *testing.T, got, want *Table) {
	t.Helper()
	g, w := materializeSorted(got), materializeSorted(want)
	if len(g) != len(w) {
		t.Fatalf("row counts differ: got %d, want %d\ngot:\n%s\nwant:\n%s", len(g), len(w), got, want)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d differs: got %s, want %s\ngot:\n%s\nwant:\n%s", i, g[i], w[i], got, want)
		}
	}
}

// An interval ending exactly where another of the same group begins
// must coalesce into one maximal interval — the same-instant events
// cancel and no boundary may be emitted.
func TestStreamCoalesceAdjacentIntervalsMerge(t *testing.T) {
	in := sweepTable([3]int64{1, 0, 4}, [3]int64{1, 4, 8})
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	if len(got.Rows) != 1 {
		t.Fatalf("adjacent intervals did not merge: %s", got)
	}
	if iv := got.Interval(got.Rows[0]); iv != interval.New(0, 8) {
		t.Fatalf("merged interval = %v, want [0, 8)", iv)
	}
}

// Two ends and one begin at the same instant with a second begin
// arriving later at that instant: the net delta is zero, so the segment
// must run through unbroken. This is the case an eager (non-deferred)
// commit gets wrong by emitting a spurious boundary.
func TestStreamCoalesceSameInstantCancellation(t *testing.T) {
	in := sweepTable(
		[3]int64{1, 0, 4}, [3]int64{1, 0, 4}, // two rows ending at 4
		[3]int64{1, 4, 8}, [3]int64{1, 4, 8}, // two rows beginning at 4
	)
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	want := Coalesce(in, CoalesceNative)
	assertSameTable(t, got, want)
	if len(got.Rows) != 2 {
		t.Fatalf("expected the two-copy segment [0,8)x2, got %s", got)
	}
	for _, row := range got.Rows {
		if iv := got.Interval(row); iv != interval.New(0, 8) {
			t.Fatalf("spurious boundary: row interval %v, want [0, 8)", iv)
		}
	}
}

// Multiplicity steps up and down across overlaps must match the
// blocking sweep exactly.
func TestStreamCoalesceOverlapSteps(t *testing.T) {
	in := sweepTable([3]int64{7, 0, 10}, [3]int64{7, 5, 15}, [3]int64{7, 5, 7})
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	assertSameTable(t, got, Coalesce(in, CoalesceNative))
}

// Interval ends beyond any practical sweep position must still be
// flushed at end of input (regression: the drain used a 1<<62 sentinel
// and silently dropped segments ending at or above it).
func TestStreamCoalesceFlushesHugeEnds(t *testing.T) {
	huge := int64(1) << 62
	in := sweepTable([3]int64{1, 0, huge}, [3]int64{1, 0, huge + 5})
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	assertSameTable(t, got, Coalesce(in, CoalesceNative))
	if len(got.Rows) != 3 {
		t.Fatalf("want segments [0,huge)x2 and [huge,huge+5), got %s", got)
	}
}

// The streaming coalesce must reject out-of-order input loudly: silent
// acceptance would mean silently wrong results on a planner bug.
func TestStreamCoalescePanicsOnUnsortedInput(t *testing.T) {
	in := sweepTable([3]int64{1, 5, 9}, [3]int64{1, 0, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted input")
		}
	}()
	Materialize(NewStreamCoalesceIter(NewTableIter(in)))
}

// The streaming sweeps must evict fully-closed groups as the sweep
// passes them: state is O(active groups + open intervals), not
// O(distinct values). Feed n disjoint single-interval groups in begin
// order and watch the live-group map stay small.
func TestStreamCoalesceEvictsClosedGroups(t *testing.T) {
	const n = 1000
	in := NewTable(tuple.NewSchema("v"))
	for i := int64(0); i < n; i++ {
		in.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i, i+1), 1)
	}
	it := NewStreamCoalesceIter(NewTableIter(in)).(*streamCoalesceIter)
	defer it.Close()
	rows, maxLive := 0, 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		rows++
		if len(it.groups) > maxLive {
			maxLive = len(it.groups)
		}
	}
	if rows != n {
		t.Fatalf("coalesce of disjoint singletons must be the identity: %d rows, want %d", rows, n)
	}
	if maxLive > 8 {
		t.Fatalf("live groups grew to %d; closed groups are not being evicted", maxLive)
	}
}

func TestStreamAggEvictsClosedGroups(t *testing.T) {
	const n = 1000
	in := NewTable(tuple.NewSchema("v"))
	for i := int64(0); i < n; i++ {
		in.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i, i+1), 1)
	}
	aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}
	raw, err := NewStreamAggIter(NewTableIter(in), []string{"v"}, aggs, interval.NewDomain(0, n+1))
	if err != nil {
		t.Fatal(err)
	}
	it := raw.(*streamAggIter)
	defer it.Close()
	rows, maxLive := 0, 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		rows++
		if len(it.groups) > maxLive {
			maxLive = len(it.groups)
		}
	}
	if rows != n {
		t.Fatalf("grouped count over disjoint singletons: %d rows, want %d", rows, n)
	}
	if maxLive > 8 {
		t.Fatalf("live groups grew to %d; closed groups are not being evicted", maxLive)
	}
}

// Eviction must not break group re-opening: a value whose group was
// evicted and later reappears must still produce the exact blocking
// result (separate maximal segments).
func TestStreamCoalesceGroupReopensAfterEviction(t *testing.T) {
	in := sweepTable(
		[3]int64{1, 0, 2},
		[3]int64{2, 3, 20}, // keeps the sweep moving past group 1
		[3]int64{1, 10, 12},
		[3]int64{2, 21, 22},
		[3]int64{1, 21, 30},
	)
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	assertSameTable(t, got, Coalesce(in, CoalesceNative))
}

// Endpoint comparison must not overflow on extreme timestamps
// (regression: begin was compared via int64 subtraction).
func TestCompareEndpointsExtremeTimes(t *testing.T) {
	lo := tuple.Tuple{tuple.Int(0), tuple.Int(-1 << 63), tuple.Int(0)}
	hi := tuple.Tuple{tuple.Int(0), tuple.Int(1<<63 - 2), tuple.Int(1<<63 - 1)}
	if CompareEndpoints(lo, hi) != -1 || CompareEndpoints(hi, lo) != 1 {
		t.Fatal("extreme begins compare wrongly (subtraction overflow)")
	}
	if CompareEndpoints(lo, lo) != 0 {
		t.Fatal("equal rows must compare equal")
	}
}

// The sort enforcer establishes the order the streaming sweeps need.
func TestSortIterEstablishesOrder(t *testing.T) {
	in := sweepTable([3]int64{1, 5, 9}, [3]int64{2, 0, 4}, [3]int64{1, 2, 3})
	it := NewSortIter(NewTableIter(in))
	defer it.Close()
	out := Materialize(it)
	if !RowsBeginSorted(out.Rows) {
		t.Fatalf("sort enforcer output not begin-sorted: %s", out)
	}
	if out.Len() != in.Len() {
		t.Fatalf("sort enforcer changed cardinality: %d != %d", out.Len(), in.Len())
	}
}

// Streaming grouped aggregation must split at every endpoint and skip
// gaps, exactly like the blocking pre-aggregated sweep.
func TestStreamAggMatchesBlockingGrouped(t *testing.T) {
	dom := interval.NewDomain(0, 24)
	in := NewTable(tuple.NewSchema("g", "x"))
	add := func(g, x, b, e int64) {
		in.Append(tuple.Tuple{tuple.Int(g), tuple.Int(x)}, interval.New(b, e), 1)
	}
	add(1, 10, 0, 10)
	add(1, 20, 5, 15)
	add(2, 7, 2, 4)
	add(2, 9, 8, 12) // gap inside group 2: no output rows over [4, 8)
	in.SortByEndpoints()
	aggs := []algebra.AggSpec{
		{Fn: krel.Sum, Arg: "x", As: "s"},
		{Fn: krel.Min, Arg: "x", As: "lo"},
		{Fn: krel.CountStar, As: "cnt"},
	}
	want, err := TemporalAggregate(in, []string{"g"}, aggs, true, dom)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewStreamAggIter(NewTableIter(in), []string{"g"}, aggs, dom)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	assertSameTable(t, Materialize(it), want)
}

// Global streaming aggregation emits neutral rows over gaps and over
// the whole domain when the input is empty — the AG-bug fix.
func TestStreamAggGlobalGapsAndEmptyInput(t *testing.T) {
	dom := interval.NewDomain(0, 20)
	aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}

	empty := NewTable(tuple.NewSchema("x"))
	it, err := NewStreamAggIter(NewTableIter(empty), nil, aggs, dom)
	if err != nil {
		t.Fatal(err)
	}
	got := Materialize(it)
	it.Close()
	want, err := TemporalAggregate(empty, nil, aggs, true, dom)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, got, want)
	if got.Len() != 1 {
		t.Fatalf("empty input must produce one neutral row over the domain, got %s", got)
	}

	in := NewTable(tuple.NewSchema("x"))
	in.Append(tuple.Tuple{tuple.Int(1)}, interval.New(3, 7), 1)
	in.Append(tuple.Tuple{tuple.Int(2)}, interval.New(12, 18), 1)
	it2, err := NewStreamAggIter(NewTableIter(in), nil, aggs, dom)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	want2, err := TemporalAggregate(in, nil, aggs, true, dom)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, Materialize(it2), want2)
}

// Streaming sweeps must not alias emitted duplicate rows (the
// regression class fixed for the blocking emitters in PR 1).
func TestStreamCoalesceDuplicatesDoNotAlias(t *testing.T) {
	in := sweepTable([3]int64{1, 0, 8}, [3]int64{1, 0, 8})
	got := Materialize(NewStreamCoalesceIter(NewTableIter(in)))
	if len(got.Rows) != 2 {
		t.Fatalf("want two duplicate rows, got %s", got)
	}
	got.Rows[0][0] = tuple.Int(99)
	if got.Rows[1][0].AsInt() == 99 {
		t.Fatal("duplicate output rows share a backing slice")
	}
}

// Size-based build-side selection must not change join results or
// column order when it flips the build side.
func TestBuildLeftProbeRightJoin(t *testing.T) {
	l := NewTable(tuple.NewSchema("a", "x"))
	l.Append(tuple.Tuple{tuple.Int(1), tuple.Int(10)}, interval.New(0, 5), 1)
	r := NewTable(tuple.NewSchema("b", "y"))
	r.Append(tuple.Tuple{tuple.Int(1), tuple.Int(20)}, interval.New(2, 8), 1)
	r.Append(tuple.Tuple{tuple.Int(1), tuple.Int(30)}, interval.New(6, 9), 1)
	pred := algebra.Eq(algebra.Col("a"), algebra.Col("b"))

	std, err := newJoinIter(NewTableIter(l), NewTableIter(r), pred)
	if err != nil {
		t.Fatal(err)
	}
	want := Materialize(std)
	std.Close()

	swp, err := newJoinIterBuildLeft(NewTableIter(l), NewTableIter(r), pred)
	if err != nil {
		t.Fatal(err)
	}
	defer swp.Close()
	got := Materialize(swp)
	assertSameTable(t, got, want)
	if got.Len() != 1 {
		t.Fatalf("want exactly the overlapping pair, got %s", got)
	}
	if got.Rows[0][1].AsInt() != 10 || got.Rows[0][3].AsInt() != 20 {
		t.Fatalf("swapped build side changed column order: %v", got.Rows[0])
	}
}
