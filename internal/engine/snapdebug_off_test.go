//go:build !snapdebug

package engine

import (
	"testing"

	"snapk/internal/tuple"
)

// TestSnapdebugOffIsIdentity pins the zero-cost claim: without the
// snapdebug build tag the check wrappers return their input unchanged
// and DebugChecks reports false.
func TestSnapdebugOffIsIdentity(t *testing.T) {
	if DebugChecks() {
		t.Fatal("DebugChecks() must report false without -tags snapdebug")
	}
	tbl := &Table{Schema: PeriodSchema(tuple.NewSchema("a"))}
	in := NewTableIter(tbl)
	if CheckOrdered("op", in) != in {
		t.Error("CheckOrdered must be an identity function without the tag")
	}
	if CheckNoAlias("op", in) != in {
		t.Error("CheckNoAlias must be an identity function without the tag")
	}
}
