package engine

import "snapk/internal/tuple"

// This file is the batch-at-a-time execution protocol: the vectorized
// hop over the Volcano per-row Next() tax. A RowBatch is a reusable
// slice of row references with capacity/length discipline; BatchIter is
// the amortized sibling of RowIter. Operators that can amortize work
// per batch — table and morsel scans, Filter, Project, the hash-join
// probe, the three streaming sweeps and every exchange — implement BOTH
// interfaces, so a consumer that calls NextBatch drives the whole chain
// batch-at-a-time (one virtual call per batch per operator boundary)
// while per-row consumers keep working unchanged. The two adapters
// bridge the remaining gaps in either direction.
//
// Ownership rules of the protocol:
//
//   - Row tuples inside a batch follow the engine-wide row invariant:
//     producers never mutate or reuse a yielded row's backing array, so
//     holding an individual row across NextBatch calls is safe.
//   - The batch's ROW SLICE is only valid until the next NextBatch call
//     on the same iterator: producers may adopt, replace or reuse it.
//     Retaining b.Rows (or a sub-slice of it) in a field, map or channel
//     is the batch-boundary aliasing class — copy the rows out instead.
//     The rowretain analyzer and the snapdebug CheckNoAlias layer both
//     watch for violations.

// RowBatch is the unit of batch execution: a reusable slice of
// period-encoded rows. The capacity set at construction is the TARGET
// fill: producers filling row by row stop there (a ragged final batch
// is normal), but a producer sitting on a transport hand-off (the
// exchange consumers) may adopt the whole transport slice wholesale,
// delivering MORE rows than the requested capacity. Consumers must
// size their reads off Len(), never off the capacity they asked for.
type RowBatch struct {
	// Rows holds the batch's row references. Producers fill it via
	// Append (or adopt a transport slice wholesale); consumers must
	// treat it as invalid after the next NextBatch call.
	Rows []tuple.Tuple
}

// DefaultBatchSize is the row capacity used by root drains (cursor,
// Materialize) and the row→batch adapter when no explicit size is
// threaded through: the same default as the parallel executor's
// exchange batches, so one knob governs both transports.
const DefaultBatchSize = 256

// NewRowBatch returns an empty batch with the given row capacity
// (values < 1 select DefaultBatchSize).
func NewRowBatch(capacity int) *RowBatch {
	if capacity < 1 {
		capacity = DefaultBatchSize
	}
	return &RowBatch{Rows: make([]tuple.Tuple, 0, capacity)}
}

// Reset empties the batch for refilling, keeping its backing capacity.
func (b *RowBatch) Reset() { b.Rows = b.Rows[:0] }

// Len returns the number of rows currently in the batch.
func (b *RowBatch) Len() int { return len(b.Rows) }

// Cap returns the batch's row capacity. A batch whose slice was adopted
// from a transport hand-off reports that slice's capacity.
func (b *RowBatch) Cap() int { return cap(b.Rows) }

// Append adds one row to the batch.
func (b *RowBatch) Append(row tuple.Tuple) { b.Rows = append(b.Rows, row) }

// Full reports whether the batch has reached its capacity.
func (b *RowBatch) Full() bool { return len(b.Rows) >= cap(b.Rows) }

// BatchIter is the batch-at-a-time iterator protocol. NextBatch resets
// b, fills it with up to Cap rows and reports whether it delivered at
// least one; false means end of stream (b is left empty). A true return
// with fewer than Cap rows is legal anywhere in the stream — operators
// may emit what they have rather than block for a full batch — so
// consumers must not treat a ragged batch as end of input.
//
// Every BatchIter in this engine also implements RowIter; Schema and
// Close are shared. Mixing Next and NextBatch on the same iterator is
// allowed (rows are never lost or duplicated), though drivers normally
// pick one form and stay with it.
type BatchIter interface {
	Schema() tuple.Schema
	NextBatch(b *RowBatch) bool
	Close()
}

// AsBatchIter returns the batch form of it: the iterator itself when it
// implements BatchIter natively, otherwise a per-row pulling adapter
// with the given batch capacity (values < 1 select DefaultBatchSize).
func AsBatchIter(it RowIter, capacity int) BatchIter {
	if b, ok := it.(BatchIter); ok {
		return b
	}
	return &batchAdapter{in: it, capacity: capacity}
}

// batchAdapter lifts a per-row iterator to the batch protocol by
// pulling rows one at a time — the compatibility shim that lets
// unconverted operators keep working inside a batch-driven chain. The
// amortization is lost across this hop but correctness is identical.
type batchAdapter struct {
	in       RowIter
	capacity int
}

func (a *batchAdapter) Schema() tuple.Schema { return a.in.Schema() }

func (a *batchAdapter) NextBatch(b *RowBatch) bool {
	b.Reset()
	limit := cap(b.Rows)
	if limit < 1 {
		limit = a.capacity
		if limit < 1 {
			limit = DefaultBatchSize
		}
	}
	for len(b.Rows) < limit {
		row, ok := a.in.Next()
		if !ok {
			break
		}
		b.Append(row)
	}
	return b.Len() > 0
}

func (a *batchAdapter) Next() (tuple.Tuple, bool) { return a.in.Next() }

func (a *batchAdapter) Close() { a.in.Close() }

// Err delegates the terminal error to the wrapped per-row iterator.
func (a *batchAdapter) Err() error { return IterErr(a.in) }

// NewRowAdapter lowers a batch iterator to the per-row protocol: the
// adapter pulls one batch at a time and hands its rows out per Next
// call. size < 1 selects DefaultBatchSize.
func NewRowAdapter(in BatchIter, size int) RowIter {
	return &rowAdapter{in: in, b: NewRowBatch(size)}
}

type rowAdapter struct {
	in BatchIter
	b  *RowBatch
	i  int
}

func (a *rowAdapter) Schema() tuple.Schema { return a.in.Schema() }

func (a *rowAdapter) Next() (tuple.Tuple, bool) {
	for {
		if a.i < a.b.Len() {
			row := a.b.Rows[a.i]
			a.i++
			return row, true
		}
		if !a.in.NextBatch(a.b) {
			return nil, false
		}
		a.i = 0
	}
}

func (a *rowAdapter) Close() { a.in.Close() }

// Err delegates the terminal error to the wrapped batch iterator.
func (a *rowAdapter) Err() error {
	if e, ok := a.in.(ErrIter); ok {
		return e.Err()
	}
	return nil
}

// PerRow hides the batch capability of it: the returned iterator
// implements RowIter only, so batch-capable consumers (Materialize, the
// cursor, exchange drains) fall back to per-row pulls. This is the
// compatibility ablation of the batch-vs-per-row study — wrap the root
// with it to measure exactly the per-row Volcano tax the batch hop
// removes.
func PerRow(it RowIter) RowIter { return &perRowIter{in: it} }

type perRowIter struct{ in RowIter }

func (it *perRowIter) Schema() tuple.Schema      { return it.in.Schema() }
func (it *perRowIter) Next() (tuple.Tuple, bool) { return it.in.Next() }
func (it *perRowIter) Close()                    { it.in.Close() }

// Err delegates the terminal error: PerRow hides batch capability, not
// the error contract.
func (it *perRowIter) Err() error { return IterErr(it.in) }

// batchCursor is the in-operator read side of the batch protocol: a
// converted operator reads its child through one of these, and the
// cursor pulls per batch once enableBatch has run (per row before).
// Keeping the cursor inside the operator struct — instead of wrapping
// the child — means the operator's own Next keeps working unchanged
// when the consumer never asks for batches.
type batchCursor struct {
	in  RowIter
	src BatchIter // non-nil once batch reads are enabled
	b   *RowBatch
	i   int
}

// enableBatch switches the cursor to batch reads with the given
// capacity. Idempotent; rows already buffered are never lost.
func (c *batchCursor) enableBatch(capacity int) {
	if c.src != nil {
		return
	}
	c.src = AsBatchIter(c.in, capacity)
	c.b = NewRowBatch(capacity)
	c.i = 0
}

// nextChunk returns every buffered row not yet handed out per-row,
// refilling from the child when the buffer is empty — the bulk read for
// operators whose NextBatch processes rows with a plain range loop
// instead of one cursor call per row. The returned slice aliases the
// cursor's batch and is only valid until the next refill; operators
// consume it before returning. Draining the buffer first keeps mixed
// Next/nextChunk drives lossless. Requires enableBatch to have run.
func (c *batchCursor) nextChunk() ([]tuple.Tuple, bool) {
	if c.i >= c.b.Len() {
		if !c.src.NextBatch(c.b) {
			return nil, false
		}
		c.i = 0
	}
	rows := c.b.Rows[c.i:]
	c.i = c.b.Len()
	return rows, true
}

// next returns the child's next row, amortizing the pull per batch when
// batch reads are enabled.
func (c *batchCursor) next() (tuple.Tuple, bool) {
	if c.src == nil {
		return c.in.Next()
	}
	for {
		if c.i < c.b.Len() {
			row := c.b.Rows[c.i]
			c.i++
			return row, true
		}
		if !c.src.NextBatch(c.b) {
			return nil, false
		}
		c.i = 0
	}
}
