package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snapk/internal/tuple"
)

// This file is the EXPLAIN ANALYZE side of the execution-observability
// layer: per-operator runtime counters (OpStats), the per-query
// Collector that owns them, the instrumented iterator wrapper (ObsIter)
// both executors insert around every operator when a collector is
// attached, and the Chrome-trace exporter. Everything here is strictly
// pay-for-use: with no collector attached, NewObsIter returns its input
// unchanged and the executors' only cost is a nil check per plan node at
// build time — the per-row hot path is untouched (the snapbench obs
// experiment measures exactly this).

// OpStats holds the runtime counters of one operator, exchange or
// fragment. Counter fields are updated through atomics: fragment
// iterators and exchange producers run on their own goroutines, so one
// node's counters may be written concurrently (per-partition row counts
// of a repartition exchange) while the race detector watches.
type OpStats struct {
	rows    atomic.Int64 // rows yielded by Next
	nexts   atomic.Int64 // Next calls (rows + the exhausting call)
	timeNs  atomic.Int64 // cumulative wall time inside Next
	startNs atomic.Int64 // first activity, ns offset from the collector epoch
	endNs   atomic.Int64 // last activity (exhaustion or Close)
	state   atomic.Int64 // peak sweep state (StateSizer operators only)
	batches atomic.Int64 // exchange: batches sent by producers
	waitNs  atomic.Int64 // exchange: producer time blocked on a full channel

	// Label names the operator ("StreamCoalesce", "exchange:merge");
	// Detail carries a static annotation ("streaming", "fanin=4"); Frag
	// is the fragment index of per-worker nodes, -1 otherwise.
	Label  string
	Detail string
	Frag   int

	c        *Collector
	mu       sync.Mutex
	children []*OpStats
	// partRows counts rows routed to each partition of a repartition
	// exchange — the skew signal. Sized once by InitParts, then updated
	// atomically by the producer goroutines.
	partRows []atomic.Int64
}

// Child creates and attaches a child node. It is nil-safe: a nil
// receiver (no collection) returns nil, so the executors can thread
// stats unconditionally.
func (st *OpStats) Child(label, detail string) *OpStats {
	if st == nil {
		return nil
	}
	n := &OpStats{Label: label, Detail: detail, Frag: -1, c: st.c}
	st.mu.Lock()
	st.children = append(st.children, n)
	st.mu.Unlock()
	return n
}

// Fragment creates a per-worker child node for fragment i. Nil-safe.
func (st *OpStats) Fragment(i int) *OpStats {
	n := st.Child("fragment", "")
	if n != nil {
		n.Frag = i
	}
	return n
}

// InitParts sizes the per-partition row counters of an exchange node.
// Nil-safe.
func (st *OpStats) InitParts(n int) {
	if st == nil {
		return
	}
	st.partRows = make([]atomic.Int64, n)
}

// AddPartRows records n rows routed to partition i; AddBatch and
// AddWait record one batch sent and producer blocking time. All are
// called from exchange producer goroutines and are nil-safe.
func (st *OpStats) AddPartRows(i, n int) {
	if st == nil || i >= len(st.partRows) {
		return
	}
	st.partRows[i].Add(int64(n))
}

// AddBatch counts one exchange batch sent downstream. Nil-safe.
func (st *OpStats) AddBatch() {
	if st != nil {
		st.batches.Add(1)
	}
}

// AddWait records ns spent blocked on a full exchange channel. Nil-safe.
func (st *OpStats) AddWait(ns int64) {
	if st != nil {
		st.waitNs.Add(ns)
	}
}

// Span marks the start of a blocking computation attributed to st (a
// materializing sweep or an eager hash-join build, which run at plan
// build time, outside any Next) and returns a func recording its
// duration. Nil-safe.
func (st *OpStats) Span() func() {
	if st == nil {
		return func() {}
	}
	t0 := st.c.now()
	st.startNs.CompareAndSwap(0, t0)
	return func() {
		t1 := st.c.now()
		st.timeNs.Add(t1 - t0)
		st.endNs.Store(t1)
	}
}

// Rows, Nexts, Time, MaxState, Batches and Wait read the counters; they
// are meaningful once the query has been drained or closed.
func (st *OpStats) Rows() int64         { return st.rows.Load() }
func (st *OpStats) Nexts() int64        { return st.nexts.Load() }
func (st *OpStats) Time() time.Duration { return time.Duration(st.timeNs.Load()) }
func (st *OpStats) MaxState() int64     { return st.state.Load() }
func (st *OpStats) Batches() int64      { return st.batches.Load() }
func (st *OpStats) Wait() time.Duration { return time.Duration(st.waitNs.Load()) }
func (st *OpStats) Children() []*OpStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*OpStats(nil), st.children...)
}

// PartRows returns the per-partition row counts of an exchange node
// (nil for non-exchange nodes): the skew signal.
func (st *OpStats) PartRows() []int64 {
	if st.partRows == nil {
		return nil
	}
	out := make([]int64, len(st.partRows))
	for i := range st.partRows {
		out[i] = st.partRows[i].Load()
	}
	return out
}

// Collector owns the per-query OpStats tree of one EXPLAIN ANALYZE run.
// Attach one via rewrite.Options.Collect (or pass OpStats parents to
// ExecStreamObs / parallel.Options directly); after draining the query,
// Render gives the annotated operator tree and WriteTrace the
// Chrome-trace spans.
type Collector struct {
	epoch time.Time
	// Root is the virtual query node; the executors attach the operator
	// tree beneath it.
	Root *OpStats
}

// NewCollector returns an empty collector whose trace epoch is now.
func NewCollector() *Collector {
	c := &Collector{epoch: time.Now()}
	c.Root = &OpStats{Label: "query", Frag: -1, c: c}
	return c
}

// now returns the ns offset from the collector epoch — the span
// timestamp base of the trace export.
func (c *Collector) now() int64 { return time.Since(c.epoch).Nanoseconds() }

// RootOp returns the first operator node attached under the virtual
// root: the node whose row count is exactly what the cursor observed
// (the analyze-vs-cursor cross-check tests pin this equality).
func (c *Collector) RootOp() *OpStats {
	ch := c.Root.Children()
	if len(ch) == 0 {
		return nil
	}
	return ch[0]
}

// StateSizer is implemented by iterators that track the peak size of
// internal sweep state (active groups plus open intervals); ObsIter
// records it into OpStats when the stream ends.
type StateSizer interface {
	MaxState() int64
}

// ObsIter is the instrumented iterator wrapper of EXPLAIN ANALYZE: it
// forwards rows unchanged while counting rows out, Next calls and
// cumulative time, and snapshots the wrapped iterator's peak sweep
// state at end of stream. Construct through NewObsIter, which is an
// identity no-op without a stats node.
type ObsIter struct {
	in RowIter
	st *OpStats
}

// NewObsIter wraps in with per-operator instrumentation recording into
// st. With st == nil it returns in unchanged — the collector-off hot
// path pays nothing. A batch-capable input gets a batch-capable
// wrapper, so instrumentation never severs the NextBatch chain: batch
// operators report rows AND batches, with the root row count still
// exactly the rows the cursor observes.
func NewObsIter(in RowIter, st *OpStats) RowIter {
	if st == nil {
		return in
	}
	if bi, ok := in.(BatchIter); ok {
		return &obsBatchIter{ObsIter: ObsIter{in: in, st: st}, bin: bi}
	}
	return &ObsIter{in: in, st: st}
}

func (it *ObsIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *ObsIter) Next() (tuple.Tuple, bool) {
	t0 := it.st.c.now()
	row, ok := it.in.Next()
	t1 := it.st.c.now()
	it.st.timeNs.Add(t1 - t0)
	it.st.nexts.Add(1)
	it.st.startNs.CompareAndSwap(0, t0)
	if ok {
		it.st.rows.Add(1)
	} else {
		it.st.endNs.Store(t1)
		it.recordState()
	}
	return row, ok
}

func (it *ObsIter) Close() {
	it.st.endNs.CompareAndSwap(0, it.st.c.now())
	it.recordState()
	it.in.Close()
}

// Err delegates the terminal error: instrumentation never severs the
// error-carrying protocol.
func (it *ObsIter) Err() error { return IterErr(it.in) }

func (it *ObsIter) recordState() {
	if s, ok := it.in.(StateSizer); ok {
		if v := s.MaxState(); v > it.st.state.Load() {
			it.st.state.Store(v)
		}
	}
}

// obsBatchIter is the batch-capable form of ObsIter: one timing/count
// update per NextBatch call (rows += batch length, batches += 1), so
// the instrumentation overhead amortizes exactly like the execution it
// measures. Per-row Next calls keep flowing through the embedded
// ObsIter, so mixed drivers stay consistent.
type obsBatchIter struct {
	ObsIter
	bin BatchIter
}

func (it *obsBatchIter) NextBatch(b *RowBatch) bool {
	t0 := it.st.c.now()
	ok := it.bin.NextBatch(b)
	t1 := it.st.c.now()
	it.st.timeNs.Add(t1 - t0)
	it.st.nexts.Add(1)
	it.st.startNs.CompareAndSwap(0, t0)
	if ok {
		it.st.rows.Add(int64(b.Len()))
		it.st.batches.Add(1)
	} else {
		it.st.endNs.Store(t1)
		it.recordState()
	}
	return ok
}

// Render returns the EXPLAIN ANALYZE operator tree: one line per
// operator/exchange/fragment with its measured counters.
func (c *Collector) Render() string {
	var b strings.Builder
	for _, op := range c.Root.Children() {
		renderStats(&b, op, "", true, true)
	}
	return b.String()
}

func renderStats(b *strings.Builder, st *OpStats, prefix string, last, root bool) {
	if !root {
		if last {
			b.WriteString(prefix + "└─ ")
			prefix += "   "
		} else {
			b.WriteString(prefix + "├─ ")
			prefix += "│  "
		}
	}
	b.WriteString(st.line())
	b.WriteByte('\n')
	ch := st.Children()
	for i, c := range ch {
		renderStats(b, c, prefix, i == len(ch)-1, false)
	}
}

// line formats one node's counters; zero-valued optional counters are
// omitted so sequential plans stay one short line per operator.
func (st *OpStats) line() string {
	var b strings.Builder
	b.WriteString(st.Label)
	if st.Frag >= 0 {
		fmt.Fprintf(&b, " %d", st.Frag)
	}
	if st.Detail != "" {
		fmt.Fprintf(&b, " [%s]", st.Detail)
	}
	fmt.Fprintf(&b, "  rows=%d nexts=%d time=%s", st.Rows(), st.Nexts(), fmtNs(st.timeNs.Load()))
	if v := st.MaxState(); v > 0 {
		fmt.Fprintf(&b, " max_state=%d", v)
	}
	if v := st.Batches(); v > 0 {
		fmt.Fprintf(&b, " batches=%d", v)
	}
	if v := st.waitNs.Load(); v > 0 {
		fmt.Fprintf(&b, " wait=%s", fmtNs(v))
	}
	if pr := st.PartRows(); pr != nil {
		fmt.Fprintf(&b, " part_rows=%v", pr)
	}
	return b.String()
}

func fmtNs(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}

// traceEvent is one Chrome trace-event ("X" complete span or "M"
// metadata) of the query trace export; the JSON shape is the catapult
// trace-event format that chrome://tracing and ui.perfetto.dev load.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds from the collector epoch
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace exports the collected spans as Chrome-trace JSON: one "X"
// span per operator, exchange and fragment that saw any activity, with
// fragments on their own trace threads so parallel overlap is visible.
// View with chrome://tracing or https://ui.perfetto.dev.
func (c *Collector) WriteTrace(w io.Writer) error {
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "snapk query"},
	}}
	var walk func(st *OpStats, tid int)
	var maxTid int
	var spans []traceEvent
	walk = func(st *OpStats, tid int) {
		if st.Frag >= 0 {
			tid = st.Frag + 1
		}
		if tid > maxTid {
			maxTid = tid
		}
		start, end := st.startNs.Load(), st.endNs.Load()
		if start > 0 {
			if end < start {
				end = start
			}
			name := st.Label
			if st.Detail != "" {
				name += " [" + st.Detail + "]"
			}
			args := map[string]any{
				"rows":    st.Rows(),
				"nexts":   st.Nexts(),
				"busy_ms": float64(st.timeNs.Load()) / 1e6,
			}
			if v := st.MaxState(); v > 0 {
				args["max_state"] = v
			}
			if v := st.Batches(); v > 0 {
				args["batches"] = v
				args["wait_ms"] = float64(st.waitNs.Load()) / 1e6
			}
			if pr := st.PartRows(); pr != nil {
				args["part_rows"] = pr
			}
			spans = append(spans, traceEvent{
				Name: name, Cat: "operator", Ph: "X",
				Ts: float64(start) / 1e3, Dur: float64(end-start) / 1e3,
				Pid: 1, Tid: tid, Args: args,
			})
		}
		for _, ch := range st.Children() {
			walk(ch, tid)
		}
	}
	for _, op := range c.Root.Children() {
		walk(op, 0)
	}
	// Deterministic order for diffable traces: by start, then name.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].Name < spans[j].Name
	})
	events = append(events, spans...)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
