//go:build !snapdebug

package engine

// DebugChecks reports whether the snapdebug assertion layer is
// compiled in. See snapdebug_on.go for what the layer asserts.
func DebugChecks() bool { return false }

// CheckOrdered is an identity function without the snapdebug build
// tag; with it, the returned iterator asserts ascending begin order
// and panics naming op on violation.
func CheckOrdered(op string, in RowIter) RowIter { return in }

// CheckNoAlias is an identity function without the snapdebug build
// tag; with it, the returned iterator asserts that yielded rows are
// never mutated across Next calls and panics naming op on violation.
func CheckNoAlias(op string, in RowIter) RowIter { return in }

// CheckErrChecked is an identity function without the snapdebug build
// tag; with it, the returned iterator asserts that a drain reaching
// end-of-stream consults Err before Close and panics naming op on
// violation.
func CheckErrChecked(op string, in RowIter) RowIter { return in }
