// Property-style equivalence suite for the streaming executor: every
// qgen-generated plan must produce multiset-identical results through
// DB.Exec (operator-at-a-time materialization) and DB.ExecStream (the
// pipelined iterator engine), in both REWR plan modes. The file lives in
// package engine_test so it can drive the engine through the rewrite
// front door without an import cycle.
package engine_test

import (
	"context"
	"sort"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/tuple"
)

// sortedKeys renders a table as a sorted multiset of row keys.
func sortedKeys(t *engine.Table) []string {
	keys := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		keys[i] = row.Key()
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runStream evaluates p through the streaming executor and materializes
// the result.
func runStream(t *testing.T, db *engine.DB, p engine.Plan) *engine.Table {
	t.Helper()
	it, err := db.ExecStream(p)
	if err != nil {
		t.Fatalf("ExecStream(%s): %v", p, err)
	}
	defer it.Close()
	return engine.Materialize(it)
}

// runParallel evaluates p through the parallel exchange executor and
// materializes the result. The tiny morsel size forces real partitioning
// even on qgen's small tables.
func runParallel(t *testing.T, db *engine.DB, p engine.Plan) *engine.Table {
	t.Helper()
	it, err := parallel.Exec(context.Background(), db, p, parallel.Options{Workers: 4, MorselSize: 4})
	if err != nil {
		t.Fatalf("parallel.Exec(%s): %v", p, err)
	}
	defer it.Close()
	return engine.Materialize(it)
}

// All executors and sweep variants must produce multiset-identical
// results on every generated plan: Exec (the SeqMaterialized ablation)
// on the blocking-sweep plan is the reference; ExecStream and the
// parallel exchange executor are checked against it for every sweep
// mode (auto, forced streaming with sort enforcers, forced blocking),
// over both the generated database and a deliberately pre-sorted copy
// (begin-sorted stored tables trigger the planner's automatic streaming
// sweeps).
func TestStreamMaterializeEquivalence(t *testing.T) {
	sweeps := []struct {
		name string
		mode rewrite.SweepMode
	}{
		{"auto", rewrite.SweepAuto},
		{"streaming", rewrite.SweepStreaming},
		{"blocking", rewrite.SweepBlocking},
	}
	for seed := int64(0); seed < 200; seed++ {
		g := qgen.New(seed)
		spec := g.GenDB()
		q := g.GenQuery()
		for _, variant := range []struct {
			name string
			db   *engine.DB
		}{
			{"unsorted", spec.ToEngineDB()},
			{"sorted", spec.SortedByBegin().ToEngineDB()},
		} {
			db := variant.db
			for _, mode := range []rewrite.Mode{rewrite.ModeOptimized, rewrite.ModeNaive} {
				ref, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: mode, Sweep: rewrite.SweepBlocking})
				if err != nil {
					t.Fatalf("seed %d: rewrite: %v", seed, err)
				}
				mat, err := db.Exec(ref)
				if err != nil {
					t.Fatalf("seed %d: Exec(%s): %v", seed, ref, err)
				}
				want := sortedKeys(mat)
				for _, sw := range sweeps {
					p, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: mode, Sweep: sw.mode})
					if err != nil {
						t.Fatalf("seed %d: rewrite(%s): %v", seed, sw.name, err)
					}
					str := runStream(t, db, p)
					if !sameMultiset(want, sortedKeys(str)) {
						t.Fatalf("seed %d %s mode %d sweep %s: streaming result diverges from materializing reference\nplan: %s\nreference:\n%s\nstreamed:\n%s",
							seed, variant.name, mode, sw.name, p, mat, str)
					}
					par := runParallel(t, db, p)
					if !sameMultiset(want, sortedKeys(par)) {
						t.Fatalf("seed %d %s mode %d sweep %s: parallel result diverges from materializing reference\nplan: %s\nreference:\n%s\nparallel:\n%s",
							seed, variant.name, mode, sw.name, p, mat, par)
					}
				}
			}
		}
	}
}

// nestedLoopJoin is the brute-force semantics oracle for the temporal
// join: every pair with overlapping periods and a true predicate over
// the concatenated data columns, stamped with the period intersection.
func nestedLoopJoin(l, r *engine.Table, pred algebra.Expr) []string {
	lA, rA := l.DataArity(), r.DataArity()
	joined := l.DataSchema().Concat(r.DataSchema(), "r.")
	c, err := algebra.Compile(pred, joined)
	if err != nil {
		panic(err)
	}
	var keys []string
	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			iv, ok := l.Interval(lrow).Intersect(r.Interval(rrow))
			if !ok {
				continue
			}
			data := make(tuple.Tuple, 0, lA+rA+2)
			data = append(data, lrow[:lA]...)
			data = append(data, rrow[:rA]...)
			if !algebra.Truthy(c(data)) {
				continue
			}
			data = append(data, tuple.Int(iv.Begin), tuple.Int(iv.End))
			keys = append(keys, data.Key())
		}
	}
	sort.Strings(keys)
	return keys
}

// The no-equi-key join — pure overlap, or inequality-only predicates —
// must agree with the nested-loop oracle through both executors. This is
// the case the old single-bucket hash fallback served; it now runs as
// the endpoint-sorted sweep.
func TestNoEquiKeyJoinEquivalence(t *testing.T) {
	preds := []struct {
		name string
		e    algebra.Expr
	}{
		{"overlap-only", algebra.BoolC(true)},
		{"less-than", algebra.Lt(algebra.Col("a"), algebra.Col("r.a"))},
		{"not-equal", algebra.Ne(algebra.Col("b"), algebra.Col("r.b"))},
	}
	for seed := int64(0); seed < 60; seed++ {
		g := qgen.New(seed)
		db := g.GenDB().ToEngineDB()
		lt, err := db.Table("r")
		if err != nil {
			t.Fatal(err)
		}
		rt, err := db.Table("s")
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range preds {
			p := engine.JoinP{L: engine.ScanP{Name: "r"}, R: engine.ScanP{Name: "s"}, Pred: pc.e}
			want := nestedLoopJoin(lt, rt, pc.e)
			mat, err := db.Exec(p)
			if err != nil {
				t.Fatalf("seed %d %s: Exec: %v", seed, pc.name, err)
			}
			if got := sortedKeys(mat); !sameMultiset(got, want) {
				t.Fatalf("seed %d %s: overlap sweep diverges from nested-loop oracle\ngot %d rows, want %d", seed, pc.name, len(got), len(want))
			}
			if got := sortedKeys(runStream(t, db, p)); !sameMultiset(got, want) {
				t.Fatalf("seed %d %s: streamed overlap sweep diverges from oracle", seed, pc.name)
			}
		}
	}
}
