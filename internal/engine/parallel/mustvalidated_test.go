package parallel

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestMustValidatedPanicMessage pins the uniform panic message format
// shared by every validated-partition failure site.
func TestMustValidatedPanicMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mustValidated must panic on a non-nil error")
		}
		msg := fmt.Sprint(r)
		const want = "parallel: streaming difference over validated partition(s) failed: boom"
		if !strings.HasPrefix(msg, want) {
			t.Fatalf("panic message %q does not start with %q", msg, want)
		}
	}()
	mustValidated("streaming difference", errors.New("boom"))
}

// TestMustValidatedNilIsQuiet pins that a nil error passes through.
func TestMustValidatedNilIsQuiet(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("mustValidated(nil) must not panic, got %v", r)
		}
	}()
	mustValidated("aggregation", nil)
}
