package parallel_test

import (
	"context"
	"sort"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/interval"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/tuple"
)

func sortedKeys(t *engine.Table) []string {
	keys := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		keys[i] = row.Key()
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func runParallel(t *testing.T, db *engine.DB, p engine.Plan, workers int) *engine.Table {
	t.Helper()
	it, err := parallel.Exec(context.Background(), db, p, parallel.Options{Workers: workers, MorselSize: 4})
	if err != nil {
		t.Fatalf("parallel.Exec(%s): %v", p, err)
	}
	defer it.Close()
	return engine.Materialize(it)
}

// The parallel executor must produce multiset-identical results to the
// sequential executors on every qgen-generated REWR plan, at several
// worker counts. The tiny morsel size forces real partitioning even on
// the small generated tables. Run under -race this also exercises the
// exchange operators for data races.
func TestParallelSequentialEquivalence(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		g := qgen.New(seed)
		spec := g.GenDB()
		db := spec.ToEngineDB()
		q := g.GenQuery()
		p, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		mat, err := db.Exec(p)
		if err != nil {
			t.Fatalf("seed %d: Exec(%s): %v", seed, p, err)
		}
		want := sortedKeys(mat)
		for _, workers := range []int{1, 2, 4} {
			got := sortedKeys(runParallel(t, db, p, workers))
			if !sameMultiset(got, want) {
				t.Fatalf("seed %d workers %d: parallel result diverges from sequential\nplan: %s\ngot %d rows, want %d",
					seed, workers, p, len(got), len(want))
			}
		}
	}
}

// bigPipelineDB builds a database large enough that a parallel pipeline
// over it stays in flight for many batches.
func bigPipelineDB(rows int) *engine.DB {
	dom := interval.NewDomain(0, 1<<20)
	db := engine.NewDB(dom)
	l := db.CreateTable("l", tuple.NewSchema("k", "v"))
	r := db.CreateTable("r", tuple.NewSchema("k", "w"))
	for i := 0; i < rows; i++ {
		begin := int64(i % 1000)
		l.Append(tuple.Tuple{tuple.Int(int64(i % 128)), tuple.Int(int64(i))}, interval.New(begin, begin+100), 1)
		if i%4 == 0 {
			r.Append(tuple.Tuple{tuple.Int(int64(i % 128)), tuple.Int(int64(i))}, interval.New(begin, begin+200), 1)
		}
	}
	return db
}

// bigPipelinePlan is a Filter→HashJoin(probe)→Project chain — every
// streaming operator the parallel executor replicates into fragments.
func bigPipelinePlan() engine.Plan {
	return engine.ProjectP{
		Exprs: []algebra.NamedExpr{
			{Name: "k", E: algebra.Col("k")},
			{Name: "v", E: algebra.Col("v")},
		},
		In: engine.JoinP{
			L: engine.FilterP{
				Pred: algebra.Gt(algebra.Col("v"), algebra.IntC(10)),
				In:   engine.ScanP{Name: "l"},
			},
			R:    engine.ScanP{Name: "r"},
			Pred: algebra.Eq(algebra.Col("k"), algebra.Col("r.k")),
		},
	}
}

// The join-heavy pipeline must agree across Exec, ExecStream and the
// parallel executor on a dataset much larger than a morsel.
func TestParallelBigPipelineEquivalence(t *testing.T) {
	db := bigPipelineDB(4000)
	p := bigPipelinePlan()
	mat, err := db.Exec(p)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedKeys(mat)
	if len(want) == 0 {
		t.Fatal("empty pipeline result; test is vacuous")
	}
	it, err := parallel.Exec(context.Background(), db, p, parallel.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := sortedKeys(engine.Materialize(it))
	if !sameMultiset(got, want) {
		t.Fatalf("parallel big pipeline diverges: got %d rows, want %d", len(got), len(want))
	}
}

// A canceled context must abort an Exec whose blocking operators would
// otherwise consume truncated input: the error must surface instead of
// a silently wrong result.
func TestParallelCanceledContextErrors(t *testing.T) {
	db := bigPipelineDB(2000)
	p := engine.CoalesceP{In: bigPipelinePlan()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it, err := parallel.Exec(ctx, db, p, parallel.Options{Workers: 4})
	if err == nil {
		it.Close()
		t.Fatal("Exec with pre-canceled context over a blocking plan must error")
	}
}

// Workers must be able to exceed the table size (more fragments than
// morsels) without producing duplicates or losses.
func TestParallelMoreWorkersThanRows(t *testing.T) {
	dom := interval.NewDomain(0, 100)
	db := engine.NewDB(dom)
	tbl := db.CreateTable("t", tuple.NewSchema("x"))
	for i := 0; i < 3; i++ {
		tbl.Append(tuple.Tuple{tuple.Int(int64(i))}, interval.New(0, 10), 1)
	}
	it, err := parallel.Exec(context.Background(), db, engine.ScanP{Name: "t"}, parallel.Options{Workers: 8, MorselSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := engine.Materialize(it)
	if got.Len() != 3 {
		t.Fatalf("scan with 8 workers over 3 rows returned %d rows", got.Len())
	}
}
