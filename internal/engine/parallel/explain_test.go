// Drift test between the static placement annotations and the executor:
// AnnotatePlacement mirrors build()'s branching by hand, so this file
// executes the same plans with a collector attached and cross-checks
// every "fragments ×N"-style prediction against whether the measured
// stats tree actually grew per-worker fragment nodes. When build()
// changes a placement decision without the mirror following, this test
// is the tripwire.
package parallel_test

import (
	"context"
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/krel"
)

// placementPlans is the plan set the drift test sweeps: one per
// placement-relevant build() case.
func placementPlans() []engine.Plan {
	scanL := engine.ScanP{Name: "l"}
	scanR := engine.ScanP{Name: "r"}
	return []engine.Plan{
		engine.FilterP{Pred: algebra.Gt(algebra.Col("v"), algebra.IntC(10)), In: scanL},
		bigPipelinePlan(), // Project → equi Join → Filter → Scan
		engine.JoinP{L: scanL, R: scanR, Pred: algebra.BoolC(true)}, // overlap sweep: sequential
		engine.UnionP{L: scanL, R: scanL},
		engine.CoalesceP{In: scanL},
		engine.CoalesceP{In: engine.SortP{In: scanL}, Streaming: true},
		engine.AggP{GroupBy: []string{"k"}, Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}, In: scanL},
		engine.AggP{Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}, In: scanL}, // global agg: sequential sweep
		engine.DiffP{L: scanL, R: scanL},
		engine.DiffP{L: engine.SortP{In: scanL}, R: engine.SortP{In: scanL}, Streaming: true},
	}
}

// explainOpLabel maps an ExplainNode.Op to the label the executors give
// the matching stats node.
func explainOpLabel(op string) string {
	if op == "UnionAll" {
		return "Union"
	}
	return op
}

// opStatsChildren filters a stats node's children down to operator
// nodes, dropping the fragment and exchange nodes the executor
// interleaves — the remainder is isomorphic to the explain tree.
func opStatsChildren(st *engine.OpStats) []*engine.OpStats {
	var out []*engine.OpStats
	for _, c := range st.Children() {
		if c.Label == "fragment" || strings.HasPrefix(c.Label, "Exchange:") {
			continue
		}
		out = append(out, c)
	}
	return out
}

func hasFragmentChildren(st *engine.OpStats) bool {
	for _, c := range st.Children() {
		if c.Label == "fragment" {
			return true
		}
	}
	return false
}

// checkPlacementDrift walks the explain and stats trees in lockstep and
// asserts that each node's predicted placement matches the executed
// fragmentation.
func checkPlacementDrift(t *testing.T, n *engine.ExplainNode, st *engine.OpStats, workers int) {
	t.Helper()
	if got := explainOpLabel(n.Op); got != st.Label {
		t.Fatalf("explain/stats trees diverged: explain op %q vs stats label %q", n.Op, st.Label)
	}
	predictedParted := strings.Contains(n.Placement, "fragments ×") ||
		strings.Contains(n.Placement, "morsel scan ×")
	if got := hasFragmentChildren(st); got != predictedParted {
		t.Fatalf("%s: placement %q predicts parted=%v, but executed fragments=%v (workers=%d)",
			n.Op, n.Placement, predictedParted, got, workers)
	}
	ops := opStatsChildren(st)
	if len(ops) != len(n.Children) {
		t.Fatalf("%s: explain has %d children, stats tree has %d operator children", n.Op, len(n.Children), len(ops))
	}
	for i := range n.Children {
		checkPlacementDrift(t, n.Children[i], ops[i], workers)
	}
}

func TestAnnotatePlacementMatchesExecution(t *testing.T) {
	db := bigPipelineDB(800)
	for _, workers := range []int{1, 4} {
		for _, p := range placementPlans() {
			n := db.ExplainPlan(p)
			parallel.AnnotatePlacement(db, p, n, workers)
			col := engine.NewCollector()
			it, err := parallel.Exec(context.Background(), db, p,
				parallel.Options{Workers: workers, MorselSize: 16, Stats: col.Root.Child("result", "")})
			if err != nil {
				t.Fatalf("workers=%d plan %v: %v", workers, p, err)
			}
			engine.Materialize(it)
			it.Close()
			ops := opStatsChildren(col.RootOp())
			if len(ops) != 1 {
				t.Fatalf("workers=%d plan %v: expected one root operator node, got %d", workers, p, len(ops))
			}
			checkPlacementDrift(t, n, ops[0], workers)
			if n.Placement == "" {
				t.Fatalf("workers=%d plan %v: root placement not annotated", workers, p)
			}
		}
	}
}
