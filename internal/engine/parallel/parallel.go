// Package parallel is the multi-core execution subsystem of the engine:
// it evaluates a physical plan as a set of concurrently running pipeline
// fragments connected by exchange operators (partition / merge over
// bounded row-batch channels), in the morsel-driven style.
//
// The plan is split at exchange boundaries: table scans are partitioned
// into morsels claimed by W workers through a shared atomic cursor, and
// the streaming operators above a scan — Filter, Project, the probe side
// of the temporal hash join — are replicated into each worker's
// fragment, so an entire Filter→Probe→Project chain runs W-wide without
// synchronization until the final merge. The hash-join build side is
// drained once into an immutable shared table (engine.JoinBuild) that
// all probe fragments read concurrently, built on whichever input the
// stored-table cardinality estimates prove smaller. The sweep operators
// (split-based aggregation, difference, coalesce) are parallelized by a
// hash-partition exchange on their group key: value-equivalent groups
// never straddle partitions, so each worker runs an independent sweep
// over its partition and the merged output is multiset-identical to
// sequential execution.
//
// Interval-endpoint order is a first-class physical property of the
// executor (pstream.ordered): begin-sorted scans yield begin-sorted
// morsel fragments, Filter/Project preserve the order per fragment, and
// two ORDER-PRESERVING exchanges carry it across pipeline breaks — an
// ordered k-way merge (orderedMergeIter, driven by the shared
// engine.CompareEndpoints comparator) for the merge hop, and an ordered
// repartition (hashPartitionOrdered) that partitions straight from the
// sorted fragments, before any order-destroying merge. When the planner
// guaranteed the order (CoalesceP/AggP.Streaming), each worker runs the
// STREAMING sweep over its begin-sorted partition with O(open
// intervals + active groups) state instead of materializing it, and
// global aggregation streams over the ordered merge of all fragments.
// The materializing per-partition sweeps remain as the blocking
// ablation. Only the endpoint sort enforcer is a sequential
// materialization boundary.
//
// Because period relations are multisets, the nondeterministic arrival
// order at an unordered merge exchange is semantically invisible: the
// result is multiset-identical to sequential execution (enforced by the
// qgen equivalence suite and the parallel fuzz differential).
//
// Cancellation: Exec threads a context.Context through iterator
// creation. Canceling it — or closing the returned iterator — tears
// down every fragment goroutine; Close blocks until all of them have
// exited and is idempotent.
//
// Fault domain: the executor is the query's failure boundary. Every
// fragment goroutine and the root iterator run behind a recover() that
// converts a panic into a query error instead of crashing the process;
// the first error (panic, failed drain, tripped resource limit,
// cancellation) lands in the executor's central error slot, cancels the
// execution context — tearing down sibling fragments through the
// refcounted exchange lifecycle — and surfaces through the root
// iterator's Err, per the engine's error-carrying iterator protocol.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// Options configures parallel plan execution.
type Options struct {
	// Workers is the number of fragment goroutines per exchange. Values
	// below 1 default to GOMAXPROCS. Workers == 1 degenerates to the
	// sequential streaming engine (plus context cancellation).
	Workers int
	// MorselSize is the number of rows per scan morsel and per exchange
	// batch; 0 selects the default (256).
	MorselSize int
	// BatchSize is the row capacity of the batch-at-a-time hop: with it
	// enabled, exchange producers fill transport batches through
	// NextBatch (one virtual call per batch per operator boundary),
	// consumer-side iterators adopt them wholesale as engine.RowBatch
	// row slices, and the root iterator returned by Exec implements
	// engine.BatchIter. 0 ties the batch size to MorselSize — one knob
	// governs scan morsels, exchange batches and operator batches.
	// Negative values disable the batch protocol entirely: the per-row
	// Volcano compatibility path, kept as the ablation baseline.
	BatchSize int
	// Stats, when non-nil, is the EXPLAIN ANALYZE parent node: the
	// executor attaches one OpStats child per operator and exchange
	// (with per-fragment children for partitioned operators) beneath it
	// and wraps every physical iterator in an instrumented ObsIter. Nil
	// disables collection entirely — every wrapper is an identity no-op,
	// so the uninstrumented hot path is unchanged.
	Stats *engine.OpStats
	// Gov, when non-nil, is the per-query resource governor: the root
	// iterator charges emitted rows against its row limit, sweeps and
	// the hash-join build charge their tracked state against its memory
	// budget, and the ordered-repartition queues charge their depth.
	// Tripping a limit fails the query with the governor's typed error.
	// Nil (the default) disables all charging.
	Gov *engine.Governor
	// Inject, when non-nil, wraps the iterator built at each operator
	// and exchange boundary — the chaos fault-injection hook. Production
	// queries leave it nil.
	Inject engine.IterWrapper
}

// DefaultMorselSize is the scan-morsel / exchange-batch row count used
// when Options.MorselSize is zero: large enough to amortize channel
// synchronization, small enough to load-balance skewed fragments.
const DefaultMorselSize = 256

// executor carries the per-Exec state: the cancellable execution
// context, the WaitGroup tracking every spawned fragment goroutine, and
// the query's fault-domain state (first-error slot, governor, inject
// hook).
type executor struct {
	ctx     context.Context
	cancel  context.CancelFunc
	db      *engine.DB
	workers int
	morsel  int
	// batchSize is the resolved batch-hop row capacity; 0 means the
	// batch protocol is disabled (the per-row ablation).
	batchSize int
	wg        sync.WaitGroup
	// qerr holds the first error that failed the query; set through
	// fail, read per root Next through errOf (one atomic load).
	qerr     atomic.Pointer[error]
	gov      *engine.Governor
	injectFn engine.IterWrapper
}

// fail records err as the query's terminal error (first one wins) and
// cancels the execution context, tearing down every sibling fragment
// through the refcounted exchange lifecycle. Safe from any goroutine;
// nil is a no-op.
func (e *executor) fail(err error) {
	if err == nil {
		return
	}
	e.qerr.CompareAndSwap(nil, &err)
	e.cancel()
}

// errOf returns the query's terminal error, nil while healthy.
func (e *executor) errOf() error {
	if p := e.qerr.Load(); p != nil {
		return *p
	}
	return nil
}

// recoverPanic is the fragment-goroutine panic boundary: deferred at
// the top of every producer goroutine (and, via the root iterator's
// guarded Next, at the consumer boundary), it converts a panic into a
// query error instead of crashing the process. The stack is folded into
// the error so a contained panic stays diagnosable through Rows.Err.
func (e *executor) recoverPanic(site string) {
	if r := recover(); r != nil {
		e.fail(fmt.Errorf("parallel: panic in %s: %v\n%s", site, r, debug.Stack()))
	}
}

// inject applies the chaos fault-injection hook at one operator or
// exchange boundary; identity when no hook is configured.
func (e *executor) inject(site string, it engine.RowIter) engine.RowIter {
	if e.injectFn == nil {
		return it
	}
	return e.injectFn(site, it)
}

// injectStream applies the inject hook to every physical iterator of s.
func (e *executor) injectStream(site string, s *pstream) *pstream {
	if e.injectFn == nil {
		return s
	}
	if s.seq != nil {
		s.seq = e.injectFn(site, s.seq)
		return s
	}
	for i := range s.parts {
		s.parts[i] = e.injectFn(fmt.Sprintf("%s:%d", site, i), s.parts[i])
	}
	return s
}

// govern wraps a sweep iterator with memory-budget accounting of its
// peak state (identity when no governor or the iterator exposes no
// state). unit pricing uses the stream's row arity.
func (e *executor) govern(it engine.RowIter) engine.RowIter {
	if e.gov == nil {
		return it
	}
	return engine.GovernState(it, e.gov, engine.ApproxRowBytes(it.Schema().Arity()))
}

// pstream is a stream in one of two physical forms: a single sequential
// iterator, or W per-worker fragment iterators awaiting a merge.
// ordered carries the interval-endpoint sort property through the
// physical plan: when set, the sequential iterator — or EVERY fragment
// individually — yields rows in ascending begin order, so exchanges can
// preserve the order (ordered merge, ordered repartition) instead of
// destroying it, and the streaming sweeps stay streaming end to end.
type pstream struct {
	seq     engine.RowIter   // exactly one of seq / parts is set
	parts   []engine.RowIter // one fragment per worker
	schema  tuple.Schema
	ordered bool
}

func (s *pstream) close() {
	if s.seq != nil {
		s.seq.Close()
	}
	for _, p := range s.parts {
		p.Close()
	}
}

// dataSchema strips the period attributes from the stream schema.
func (s *pstream) dataSchema() tuple.Schema {
	return tuple.Schema{Cols: s.schema.Cols[:s.schema.Arity()-2]}
}

// sources returns the physical iterators of the stream — its fragments
// when partitioned, the single sequential iterator otherwise — for
// exchanges that can consume either form directly.
func (s *pstream) sources() []engine.RowIter {
	if s.parts != nil {
		return s.parts
	}
	return []engine.RowIter{s.seq}
}

// Exec evaluates p on db with opt.Workers parallel fragments and returns
// a single merged row stream. The caller must Close the returned
// iterator; Close (or cancellation of ctx) stops and reaps every
// fragment goroutine. With Workers <= 1 execution is sequential and only
// the cancellation wrapper is added.
func Exec(ctx context.Context, db *engine.DB, p engine.Plan, opt Options) (engine.RowIter, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	morsel := opt.MorselSize
	if morsel <= 0 {
		morsel = DefaultMorselSize
	}
	batchSize := opt.BatchSize
	if batchSize == 0 {
		batchSize = morsel
	}
	if batchSize < 0 {
		batchSize = 0 // per-row ablation: batch protocol disabled
	}
	var ectx context.Context
	var cancel context.CancelFunc
	if d := opt.Gov.Timeout(); d > 0 {
		// The per-query deadline rides the execution context, so it
		// tears fragments down exactly like a user cancellation and
		// surfaces as context.DeadlineExceeded through Err.
		ectx, cancel = context.WithTimeout(ctx, d)
	} else {
		ectx, cancel = context.WithCancel(ctx)
	}
	e := &executor{ctx: ectx, cancel: cancel, db: db, workers: workers, morsel: morsel,
		batchSize: batchSize, gov: opt.Gov, injectFn: opt.Inject}
	s, err := e.buildSafe(p, opt.Stats)
	if err != nil {
		cancel()
		e.wg.Wait()
		return nil, err
	}
	// The outermost ObsIter counts rows on the parent node itself, so its
	// row count is exactly what the root cursor observes.
	root := engine.NewObsIter(engine.CheckNoAlias("parallel exec root", e.merge(s, opt.Stats)), opt.Stats)
	if bi, ok := root.(engine.BatchIter); ok && e.batchSize > 0 {
		return &execBatchIter{execIter: execIter{ctx: ectx, cancel: cancel, e: e, it: root}, bit: bi}, nil
	}
	return &execIter{ctx: ectx, cancel: cancel, e: e, it: root}, nil
}

// buildSafe is the plan-build phase behind the panic boundary: a panic
// while compiling the plan (eager hash-join builds and sort enforcers
// drain whole subplans here) becomes a returned error, and the caller's
// cancel-and-reap path tears down whatever fragments already started.
func (e *executor) buildSafe(p engine.Plan, parent *engine.OpStats) (s *pstream, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("parallel: panic in plan build: %v\n%s", r, debug.Stack())
		}
	}()
	s, err = e.build(p, parent)
	if err == nil {
		// A build-phase drain may have failed through the central error
		// slot (producer panic, tripped limit) without the constructor
		// noticing: surface it now rather than running a doomed query.
		err = e.errOf()
		if err != nil {
			s.close()
			s = nil
		}
	}
	return s, err
}

// execIter is the root iterator returned by Exec: it owns the execution
// context and reaps all fragment goroutines on Close.
type execIter struct {
	ctx    context.Context
	cancel context.CancelFunc
	e      *executor
	it     engine.RowIter
	closed atomic.Bool
}

func (it *execIter) Schema() tuple.Schema { return it.it.Schema() }

// gate runs the pre-pull checks shared by Next and NextBatch: closed,
// already-failed, and context state. A context error observed while the
// iterator is still open is recorded as the query error — cancellation
// and deadline expiry surface through Err, not as a silent end of
// stream; an error observed because Close canceled the context is not
// an error at all.
func (it *execIter) gate() bool {
	if it.closed.Load() || it.e.errOf() != nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		if !it.closed.Load() {
			it.e.fail(err)
		}
		return false
	}
	return true
}

func (it *execIter) Next() (tuple.Tuple, bool) {
	if !it.gate() {
		return nil, false
	}
	row, ok := it.guardedNext()
	if !ok {
		it.latchEOS()
		return nil, false
	}
	if err := it.e.gov.CountRows(1); err != nil {
		it.e.fail(err)
		return nil, false
	}
	return row, true
}

// latchEOS records why a pull came back empty. gate checks the context
// before each pull, but a cancellation (or chain error) that lands while
// the pull is blocked inside an exchange surfaces as a clean end of
// stream from a drained channel — and the consumer, seeing EOS, never
// pulls again, so gate never re-runs. Without this post-check that is a
// silent truncation. The closed re-check keeps Close's own cancel from
// reading as a query error (Close sets closed before canceling).
func (it *execIter) latchEOS() {
	if err := engine.IterErr(it.it); err != nil {
		it.e.fail(err)
		return
	}
	if err := it.ctx.Err(); err != nil && !it.closed.Load() {
		it.e.fail(err)
	}
}

// guardedNext is the consumer-side panic boundary: a panic unwinding
// out of the root pull (any operator on the sequential path runs on
// this goroutine) becomes the query error.
func (it *execIter) guardedNext() (row tuple.Tuple, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			it.e.fail(fmt.Errorf("parallel: panic in query root: %v\n%s", r, debug.Stack()))
			row, ok = nil, false
		}
	}()
	return it.it.Next()
}

// Err reports the query's terminal error: the executor's central slot
// first (producer-side failures, contained panics, limits, cancel),
// then the root chain's own error-carrying protocol.
func (it *execIter) Err() error {
	if err := it.e.errOf(); err != nil {
		return err
	}
	return engine.IterErr(it.it)
}

// Close cancels the execution context, closes the merged stream and
// blocks until every fragment goroutine has exited. It is idempotent
// and safe to call concurrently with Next.
func (it *execIter) Close() {
	if it.closed.Swap(true) {
		return
	}
	it.cancel()
	it.it.Close()
	it.e.wg.Wait()
}

// execBatchIter is the batch-capable root returned when the batch hop
// is enabled and the merged stream is batch-capable: the cursor (or any
// other consumer) drives the whole pipeline through NextBatch, one
// virtual call per batch end to end.
type execBatchIter struct {
	execIter
	bit engine.BatchIter
}

func (it *execBatchIter) NextBatch(b *engine.RowBatch) bool {
	if !it.gate() {
		b.Reset()
		return false
	}
	ok := it.guardedNextBatch(b)
	if !ok {
		it.latchEOS()
		return false
	}
	if err := it.e.gov.CountRows(int64(b.Len())); err != nil {
		it.e.fail(err)
		b.Reset()
		return false
	}
	return true
}

// guardedNextBatch is the batch form of the consumer-side panic
// boundary.
func (it *execBatchIter) guardedNextBatch(b *engine.RowBatch) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			it.e.fail(fmt.Errorf("parallel: panic in query root: %v\n%s", r, debug.Stack()))
			b.Reset()
			ok = false
		}
	}()
	return it.bit.NextBatch(b)
}

// merge collapses a stream to a single iterator, inserting a merge
// exchange over partitioned fragments. When the stream carries the sort
// property, the order-preserving merge keeps it: sortedness survives
// the merge hop. This is deliberate even at the root, where no operator
// consumes the order: the cursor API then emits begin-ordered rows for
// ordered plans (clients see deterministic stream order), and the SortP
// materialization boundary receives pre-sorted input. The price is a
// per-row heap compare on sorted scan-only plans; if that ever shows up
// in profiles, thread a need-order flag from the consumer instead.
func (e *executor) merge(s *pstream, parent *engine.OpStats) engine.RowIter {
	it := s.seq
	switch {
	case it != nil:
	case s.ordered:
		it = e.startOrderedMerge(s.parts, parent)
	default:
		it = e.startMerge(s.parts, parent)
	}
	if e.batchSize == 0 {
		// Per-row ablation: hide batch capability so engine-internal
		// drains (Materialize, hash-join build) stay on the classic
		// Volcano path too, keeping the comparison honest.
		return engine.PerRow(it)
	}
	return it
}

// partition converts a stream to W fragment iterators, inserting a
// repartition exchange under sequential sources.
func (e *executor) partition(s *pstream, parent *engine.OpStats) []engine.RowIter {
	if s.parts != nil {
		return s.parts
	}
	return e.repartition(s.seq, parent)
}

// obsStream wraps the physical iterators of s with EXPLAIN ANALYZE
// instrumentation recording into st: the sequential form onto st
// itself, fragments onto per-fragment children (the per-worker skew
// view). Identity when st is nil.
func obsStream(s *pstream, st *engine.OpStats) *pstream {
	if st == nil {
		return s
	}
	if s.seq != nil {
		s.seq = engine.NewObsIter(s.seq, st)
		return s
	}
	for i := range s.parts {
		s.parts[i] = engine.NewObsIter(s.parts[i], st.Fragment(i))
	}
	return s
}

// build compiles a plan node to a pstream, pushing streaming operators
// into partitioned fragments and placing exchanges only where the plan
// shape requires them. parent is the EXPLAIN ANALYZE attachment point
// (nil when not collecting): each node adds its own OpStats child and
// builds its inputs beneath it, so the stats tree mirrors the plan.
func (e *executor) build(p engine.Plan, parent *engine.OpStats) (*pstream, error) {
	switch n := p.(type) {
	case engine.ScanP:
		t, err := e.db.Table(n.Name)
		if err != nil {
			return nil, err
		}
		return e.scanStream(t, n.Name, parent.Child("Scan", n.Name)), nil
	case engine.WindowP:
		st := parent.Child("Window", n.T.String())
		var in *pstream
		if scan, ok := n.In.(engine.ScanP); ok && n.Prune {
			// Zone-map prune before the morsel split: a scan whose endpoint
			// envelope is disjoint from the window is skipped outright, and
			// a begin-sorted scan is cut to the prefix that can overlap it —
			// the morsel counters then divide only the surviving rows.
			t, err := e.db.Table(scan.Name)
			if err != nil {
				return nil, err
			}
			hi, skip := engine.PruneWindowScan(t, n.T)
			if skip {
				t = &engine.Table{Schema: t.Schema}
			} else {
				t = t.Prefix(hi)
			}
			in = e.scanStream(t, scan.Name, st.Child("Scan", scan.Name))
		} else {
			var err error
			in, err = e.build(n.In, st)
			if err != nil {
				return nil, err
			}
		}
		out, err := e.mapStream(in, func(it engine.RowIter) (engine.RowIter, error) {
			return engine.NewWindowIter(it, n.T), nil
		})
		if err != nil {
			return nil, err
		}
		return obsStream(e.injectStream("window", out), st), nil
	case engine.FilterP:
		st := parent.Child("Filter", "")
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		out, err := e.mapStream(in, func(it engine.RowIter) (engine.RowIter, error) {
			return engine.NewFilterIter(it, n.Pred)
		})
		if err != nil {
			return nil, err
		}
		return obsStream(e.injectStream("filter", out), st), nil
	case engine.ProjectP:
		st := parent.Child("Project", "")
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		out, err := e.mapStream(in, func(it engine.RowIter) (engine.RowIter, error) {
			return engine.NewProjectIter(it, n.Exprs)
		})
		if err != nil {
			return nil, err
		}
		return obsStream(e.injectStream("project", out), st), nil
	case engine.JoinP:
		return e.buildJoin(n, parent)
	case engine.UnionP:
		st := parent.Child("Union", "")
		l, err := e.build(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := e.build(n.R, st)
		if err != nil {
			l.close()
			return nil, err
		}
		if l.seq != nil && r.seq != nil {
			u, err := engine.NewUnionIter(l.seq, r.seq)
			if err != nil {
				return nil, err
			}
			return obsStream(&pstream{seq: u, schema: u.Schema()}, st), nil
		}
		// Pair the fragments of both sides: fragment i concatenates
		// l_i and r_i, so the union itself needs no extra exchange.
		lp, rp := e.partition(l, st), e.partition(r, st)
		parts := make([]engine.RowIter, len(lp))
		for i := range parts {
			u, err := engine.NewUnionIter(lp[i], rp[i])
			if err != nil {
				for j := i + 1; j < len(lp); j++ {
					lp[j].Close()
					rp[j].Close()
				}
				for j := 0; j < i; j++ {
					parts[j].Close()
				}
				return nil, err
			}
			parts[i] = u
		}
		return obsStream(&pstream{parts: parts, schema: parts[0].Schema()}, st), nil
	case engine.DiffP:
		return e.buildDiff(n, parent)
	case engine.AggP:
		return e.buildAgg(n, parent)
	case engine.CoalesceP:
		return e.buildCoalesce(n, parent)
	case engine.SortP:
		// e.table materializes into a private table, so sorting in place
		// is safe — no stored table is mutated and no copy is needed.
		st := parent.Child("Sort", "enforcer")
		done := st.Span()
		in, err := e.table(n.In, st)
		if err != nil {
			done()
			return nil, err
		}
		in.SortByEndpoints()
		done()
		return obsStream(&pstream{seq: engine.NewTableIter(in), schema: in.Schema, ordered: true}, st), nil
	default:
		return nil, fmt.Errorf("parallel: unknown plan node %T", p)
	}
}

// dataIdx returns the indices of all data columns of a period schema —
// the partitioning key of coalesce and difference, whose groups are the
// value-equivalent rows.
func dataIdx(schema tuple.Schema) []int {
	idx := make([]int, schema.Arity()-2)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// buildCoalesce compiles the coalesce operator. With multiple workers
// the input is hash-partitioned on the full data tuple and every worker
// coalesces its partition independently — value-equivalent groups never
// straddle partitions, so the merged output is multiset-identical to
// the sequential sweep. When the planner guaranteed begin-sorted input
// (n.Streaming), the ORDER-PRESERVING repartition exchange keeps every
// partition begin-sorted and each worker runs the streaming sweep with
// O(open intervals) state; otherwise each worker materializes its
// partition and runs the blocking sweep (the ablation baseline).
func (e *executor) buildCoalesce(n engine.CoalesceP, parent *engine.OpStats) (*pstream, error) {
	if e.workers > 1 {
		var st *engine.OpStats
		if n.Streaming {
			st = parent.Child("Coalesce", "streaming")
		} else {
			st = parent.Child("Coalesce", "blocking")
		}
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		schema := in.schema
		if n.Streaming {
			parts := e.hashPartitionOrdered(in.sources(), dataIdx(schema), st)
			out := make([]engine.RowIter, len(parts))
			for i, part := range parts {
				out[i] = e.govern(engine.NewStreamCoalesceIter(part))
			}
			return obsStream(e.injectStream("coalesce", &pstream{parts: out, schema: schema}), st), nil
		}
		parts := e.hashPartition(in.sources(), dataIdx(schema), st)
		out := make([]engine.RowIter, len(parts))
		for i, part := range parts {
			out[i] = newLazySweepIter(part, schema, func(t *engine.Table) (*engine.Table, error) {
				return engine.Coalesce(t, n.Impl), nil
			})
		}
		return obsStream(e.injectStream("coalesce", &pstream{parts: out, schema: schema}), st), nil
	}
	if n.Streaming {
		st := parent.Child("Coalesce", "streaming")
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		it := e.govern(engine.NewStreamCoalesceIter(e.merge(in, st)))
		return obsStream(e.injectStream("coalesce", &pstream{seq: it, schema: it.Schema()}), st), nil
	}
	st := parent.Child("Coalesce", "blocking")
	in, err := e.table(n.In, st)
	if err != nil {
		return nil, err
	}
	done := st.Span()
	out := engine.Coalesce(in, n.Impl)
	done()
	return obsStream(&pstream{seq: engine.NewTableIter(out), schema: out.Schema}, st), nil
}

// buildAgg compiles split-based aggregation. Grouped aggregation with
// multiple workers hash-partitions the input on the grouping columns
// and every worker runs an independent split/aggregate sweep — the
// sweep never crosses group boundaries, so the merged output is
// multiset-identical. When the planner guaranteed begin-sorted input
// (n.Streaming, pre-aggregated only), the order-preserving repartition
// keeps every partition begin-sorted and each worker runs the STREAMING
// pre-aggregated sweep; otherwise the workers materialize and run the
// blocking sweep. Global aggregation (a single group) cannot be
// partitioned, but with the sort property it now streams over the
// ordered merge of all fragments instead of materializing.
func (e *executor) buildAgg(n engine.AggP, parent *engine.OpStats) (*pstream, error) {
	dom := e.db.Domain()
	if e.workers > 1 && len(n.GroupBy) > 0 {
		var st *engine.OpStats
		if n.Streaming && n.PreAgg {
			st = parent.Child("Agg", "streaming")
		} else {
			st = parent.Child("Agg", blockingAggDetail(n))
		}
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		inSchema := in.schema
		data := tuple.Schema{Cols: inSchema.Cols[:inSchema.Arity()-2]}
		keyIdx := make([]int, len(n.GroupBy))
		for i, g := range n.GroupBy {
			idx := data.Index(g)
			if idx < 0 {
				in.close()
				return nil, fmt.Errorf("parallel: unknown group-by column %q", g)
			}
			keyIdx[i] = idx
		}
		// Resolve the output schema (and surface column errors) before
		// spawning fragments, by aggregating an empty input once.
		empty, err := engine.TemporalAggregate(&engine.Table{Schema: inSchema}, n.GroupBy, n.Aggs, n.PreAgg, dom)
		if err != nil {
			in.close()
			return nil, err
		}
		if n.Streaming && n.PreAgg {
			parts := e.hashPartitionOrdered(in.sources(), keyIdx, st)
			out := make([]engine.RowIter, len(parts))
			for i, part := range parts {
				it, err := engine.NewStreamAggIter(part, n.GroupBy, n.Aggs, dom)
				if err != nil {
					// The constructor closed part; release the rest. The
					// partition goroutines are reaped by Exec's cancel path.
					for j := 0; j < i; j++ {
						out[j].Close()
					}
					for j := i + 1; j < len(parts); j++ {
						parts[j].Close()
					}
					return nil, err
				}
				out[i] = e.govern(it)
			}
			return obsStream(e.injectStream("agg", &pstream{parts: out, schema: empty.Schema}), st), nil
		}
		parts := e.hashPartition(in.sources(), keyIdx, st)
		out := make([]engine.RowIter, len(parts))
		for i, part := range parts {
			// Errors were validated against an empty input above, so a
			// failure here is either a failed partition drain or a genuine
			// executor bug — both propagate through Err instead of yielding
			// a silently empty partition.
			out[i] = newLazySweepIter(part, empty.Schema, func(t *engine.Table) (*engine.Table, error) {
				return engine.TemporalAggregate(t, n.GroupBy, n.Aggs, n.PreAgg, dom)
			})
		}
		return obsStream(e.injectStream("agg", &pstream{parts: out, schema: empty.Schema}), st), nil
	}
	// The single-group streaming sweep needs one begin-ordered stream;
	// the order-preserving merge exchange provides it even over
	// multiple fragments, so the sequential-engine restriction of the
	// blocking-only executor is gone.
	if n.Streaming && n.PreAgg {
		st := parent.Child("Agg", "streaming")
		in, err := e.build(n.In, st)
		if err != nil {
			return nil, err
		}
		it, err := engine.NewStreamAggIter(e.merge(in, st), n.GroupBy, n.Aggs, dom)
		if err != nil {
			return nil, err
		}
		g := e.govern(it)
		return obsStream(e.injectStream("agg", &pstream{seq: g, schema: g.Schema()}), st), nil
	}
	st := parent.Child("Agg", blockingAggDetail(n))
	in, err := e.table(n.In, st)
	if err != nil {
		return nil, err
	}
	done := st.Span()
	out, err := engine.TemporalAggregate(in, n.GroupBy, n.Aggs, n.PreAgg, dom)
	done()
	if err != nil {
		return nil, err
	}
	return obsStream(&pstream{seq: engine.NewTableIter(out), schema: out.Schema}, st), nil
}

// blockingAggDetail names the blocking aggregation flavor.
func blockingAggDetail(n engine.AggP) string {
	if n.PreAgg {
		return "blocking pre-agg"
	}
	return "blocking"
}

// buildDiff compiles snapshot-reducible difference. With multiple
// workers both inputs are hash-partitioned on the full data tuple with
// the same hash, so value-equivalent groups of both sides meet in the
// same worker and each worker computes an independent fused diff sweep.
// When the planner guaranteed begin-sorted children (n.Streaming), BOTH
// sides go through the ORDER-PRESERVING repartition exchange — every
// partition pair stays begin-sorted — and each worker runs the
// streaming merge-based diff with O(open intervals + active groups)
// state instead of materializing its partitions; the materializing
// per-partition diff remains as the blocking ablation.
func (e *executor) buildDiff(n engine.DiffP, parent *engine.OpStats) (*pstream, error) {
	if e.workers > 1 {
		var st *engine.OpStats
		if n.Streaming {
			st = parent.Child("Diff", "streaming")
		} else {
			st = parent.Child("Diff", "blocking")
		}
		l, err := e.build(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := e.build(n.R, st)
		if err != nil {
			l.close()
			return nil, err
		}
		if l.schema.Arity() != r.schema.Arity() {
			l.close()
			r.close()
			return nil, fmt.Errorf("parallel: difference-incompatible arities %d and %d", l.schema.Arity(), r.schema.Arity())
		}
		schema := l.schema
		keyIdx := dataIdx(schema)
		if n.Streaming {
			lp := e.hashPartitionOrdered(l.sources(), keyIdx, st)
			rp := e.hashPartitionOrdered(r.sources(), keyIdx, st)
			out := make([]engine.RowIter, len(lp))
			for i := range lp {
				it, err := engine.NewStreamDiffIter(lp[i], rp[i])
				if err != nil {
					// Arity compatibility was validated above, so this is
					// an executor bug — but it still must tear down cleanly:
					// the constructor closed lp[i]/rp[i]; release the rest
					// (the partition goroutines are reaped by Exec's cancel
					// path) and surface the error instead of panicking.
					for j := 0; j < i; j++ {
						out[j].Close()
					}
					for j := i + 1; j < len(lp); j++ {
						lp[j].Close()
						rp[j].Close()
					}
					return nil, err
				}
				out[i] = e.govern(it)
			}
			return obsStream(e.injectStream("diff", &pstream{parts: out, schema: schema}), st), nil
		}
		// Arity compatibility (checked above) is the only failure mode of
		// TemporalDiff; a failure here still propagates through Err rather
		// than yielding a silently empty partition.
		diff := func(lt, rt *engine.Table) (*engine.Table, error) {
			return engine.TemporalDiff(lt, rt)
		}
		lp := e.hashPartition(l.sources(), keyIdx, st)
		rp := e.hashPartition(r.sources(), keyIdx, st)
		out := make([]engine.RowIter, len(lp))
		for i := range lp {
			out[i] = newLazyDiffIter(lp[i], rp[i], schema, diff)
		}
		return obsStream(e.injectStream("diff", &pstream{parts: out, schema: schema}), st), nil
	}
	// The streaming merge sweep needs one begin-ordered stream per side;
	// the order-preserving merge exchange provides it even over multiple
	// fragments, so the sequential streaming diff composes with parallel
	// children exactly like global streaming aggregation.
	if n.Streaming {
		st := parent.Child("Diff", "streaming")
		l, err := e.build(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := e.build(n.R, st)
		if err != nil {
			l.close()
			return nil, err
		}
		it, err := engine.NewStreamDiffIter(e.merge(l, st), e.merge(r, st))
		if err != nil {
			return nil, err
		}
		g := e.govern(it)
		return obsStream(e.injectStream("diff", &pstream{seq: g, schema: g.Schema()}), st), nil
	}
	st := parent.Child("Diff", "blocking")
	l, err := e.table(n.L, st)
	if err != nil {
		return nil, err
	}
	r, err := e.table(n.R, st)
	if err != nil {
		return nil, err
	}
	done := st.Span()
	out, err := engine.TemporalDiff(l, r)
	done()
	if err != nil {
		return nil, err
	}
	return obsStream(&pstream{seq: engine.NewTableIter(out), schema: out.Schema}, st), nil
}

// buildJoin compiles the temporal join: the build side is drained once
// into a shared immutable hash table, then every probe fragment streams
// its partition of the other input against it. Size-based build-side
// selection builds on the left input when stored-table cardinality
// estimates prove it smaller; the default build side stays the right
// input. Joins without an equality conjunct fall back to the sequential
// endpoint-sorted overlap sweep (which drains both inputs anyway),
// still fed by parallel children.
func (e *executor) buildJoin(n engine.JoinP, parent *engine.OpStats) (*pstream, error) {
	st := parent.Child("Join", "")
	l, err := e.build(n.L, st)
	if err != nil {
		return nil, err
	}
	r, err := e.build(n.R, st)
	if err != nil {
		l.close()
		return nil, err
	}
	prep, err := engine.PrepareJoin(l.dataSchema(), r.dataSchema(), n.Pred)
	if err != nil {
		l.close()
		r.close()
		return nil, err
	}
	if !prep.HasEquiKey() {
		if st != nil {
			st.Detail = "overlap-sweep"
		}
		j, err := engine.NewJoinIter(e.merge(l, st), e.merge(r, st), n.Pred)
		if err != nil {
			return nil, err
		}
		if err := e.ctx.Err(); err != nil {
			j.Close()
			return nil, err
		}
		return obsStream(e.injectStream("join", &pstream{seq: j, schema: j.Schema()}), st), nil
	}
	// Drain the build side eagerly (as the sequential engine does); a
	// canceled context surfaces as an error rather than a silently
	// truncated hash table. The drain happens outside any Next, so an
	// explicit span attributes its cost to the join node.
	// The planner may have pinned the build side (and a pre-sizing hint)
	// on the plan node; with BuildAuto the executor keeps its own
	// estimate-based pick.
	var buildLeft bool
	switch n.Build {
	case engine.BuildLeftSide:
		buildLeft = true
	case engine.BuildRightSide:
		buildLeft = false
	default:
		buildLeft = engine.BuildLeftSmaller(e.db.EstimateRows(n.L), e.db.EstimateRows(n.R))
	}
	var jb *engine.JoinBuild
	var probe *pstream
	var buildArity int
	done := st.Span()
	if buildLeft {
		if st != nil {
			st.Detail = "hash build=left"
		}
		jb = prep.BuildLeftSized(e.merge(l, st), n.BuildHint)
		probe = r
		buildArity = l.schema.Arity()
	} else {
		if st != nil {
			st.Detail = "hash build=right"
		}
		jb = prep.BuildSized(e.merge(r, st), n.BuildHint)
		probe = l
		buildArity = r.schema.Arity()
	}
	done()
	// A failed build drain means a truncated hash table: the join must
	// not run over it. The drain error wins over the bare ctx error (it
	// is more specific); both fail the build here.
	if err := engine.FirstErr(jb.Err(), e.ctx.Err()); err != nil {
		probe.close()
		return nil, err
	}
	// The materialized build side is tracked query state: charge it
	// against the memory budget before fanning probes out.
	if err := e.gov.ChargeMem(jb.Rows() * engine.ApproxRowBytes(buildArity)); err != nil {
		probe.close()
		return nil, err
	}
	if e.workers <= 1 {
		it := jb.Probe(e.merge(probe, st))
		return obsStream(e.injectStream("join", &pstream{seq: it, schema: it.Schema()}), st), nil
	}
	pp := e.partition(probe, st)
	parts := make([]engine.RowIter, len(pp))
	for i, part := range pp {
		parts[i] = jb.Probe(part)
	}
	return obsStream(e.injectStream("join", &pstream{parts: parts, schema: prep.Schema()}), st), nil
}

// scanStream builds the scan side of a pstream over a stored (or
// pruned-prefix) table: the shared construction of the ScanP case and
// the zone-map-pruned windowed scan. Cached table metadata makes the
// order probe O(1) on the load paths. A begin-sorted table yields
// begin-sorted fragments: every morsel scan claims strictly increasing
// row ranges from the shared cursor, so each fragment is an
// order-preserving subsequence of the stored order.
func (e *executor) scanStream(t *engine.Table, name string, st *engine.OpStats) *pstream {
	ordered := t.BeginSorted()
	if e.workers <= 1 {
		// The sequential path runs entirely on the consumer's
		// goroutine, so this ctx probe (amortized per batch / per
		// morsel of rows) is its only mid-stream cancellation point:
		// blocking drains above it (sort enforcers, hash-join builds)
		// end early when it fires instead of running to completion.
		seq := engine.NewCtxIter(e.ctx, engine.NewTableIter(t), e.morsel)
		return obsStream(e.injectStream("scan:"+name, &pstream{seq: seq, schema: t.Schema, ordered: ordered}), st)
	}
	ctr := new(atomic.Int64)
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = &morselTableIter{t: t, ctr: ctr, size: e.morsel}
	}
	return obsStream(e.injectStream("scan:"+name, &pstream{parts: parts, schema: t.Schema, ordered: ordered}), st)
}

// mapStream wraps every fragment (or the sequential iterator) of in with
// a streaming operator constructor. wrap takes ownership of its input on
// error, matching the engine constructors' contract. The wrapped
// operators (Filter, Project) are per-row and carry the period
// attributes through unchanged, so the sort property of the input is
// preserved.
func (e *executor) mapStream(in *pstream, wrap func(engine.RowIter) (engine.RowIter, error)) (*pstream, error) {
	if in.seq != nil {
		it, err := wrap(in.seq)
		if err != nil {
			return nil, err
		}
		return &pstream{seq: it, schema: it.Schema(), ordered: in.ordered}, nil
	}
	out := make([]engine.RowIter, len(in.parts))
	for i, part := range in.parts {
		it, err := wrap(part)
		if err != nil {
			for j := 0; j < i; j++ {
				out[j].Close()
			}
			for j := i + 1; j < len(in.parts); j++ {
				in.parts[j].Close()
			}
			return nil, err
		}
		out[i] = it
	}
	return &pstream{parts: out, schema: out[0].Schema(), ordered: in.ordered}, nil
}

// table materializes a subplan — the input boundary of the blocking
// operators. The subplan itself still runs with parallel fragments; a
// canceled context surfaces as an error rather than a truncated table.
func (e *executor) table(p engine.Plan, parent *engine.OpStats) (*engine.Table, error) {
	s, err := e.build(p, parent)
	if err != nil {
		return nil, err
	}
	it := e.merge(s, parent)
	defer it.Close()
	t, err := engine.MaterializeErr(it)
	if err := engine.FirstErr(err, e.errOf(), e.ctx.Err()); err != nil {
		return nil, err
	}
	return t, nil
}
