// Fault-domain tests for the parallel executor: injected panics must be
// contained at the fragment and root boundaries (a query error, never a
// process crash or a goroutine leak), and early Close must reap every
// fragment even while injected errors are tearing the pipeline down
// from the other side.
package parallel_test

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/chaos"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/tuple"
)

// panicAt wraps an iterator to panic on the nth Next call. Wrapping
// hides batch capability on purpose, so the panic unwinds through the
// per-row pull path of whichever goroutine drives this site.
type panicAt struct {
	in engine.RowIter
	n  int
	at int
}

func (it *panicAt) Schema() tuple.Schema { return it.in.Schema() }
func (it *panicAt) Close()               { it.in.Close() }

func (it *panicAt) Next() (tuple.Tuple, bool) {
	it.n++
	if it.n >= it.at {
		panic("test: injected operator panic")
	}
	return it.in.Next()
}

// panicInjector arms a panic at every site matching prefix.
func panicInjector(prefix string, at int) engine.IterWrapper {
	return func(site string, it engine.RowIter) engine.RowIter {
		if strings.HasPrefix(site, prefix) {
			return &panicAt{in: it, at: at}
		}
		return it
	}
}

// drainAll pulls the iterator to end-of-stream and returns its terminal
// error.
func drainAll(it engine.RowIter) error {
	for {
		if _, ok := it.Next(); !ok {
			return engine.IterErr(it)
		}
	}
}

// A panic inside a fragment goroutine (here: the scan parts drained by
// the merge-exchange producers) must surface as the query error through
// the root Err — not crash the process, not leak a goroutine, and not
// pass for a clean end of stream.
func TestInjectedPanicInFragmentContained(t *testing.T) {
	db := bigPipelineDB(8000)
	base := runtime.NumGoroutine()
	it, err := parallel.Exec(context.Background(), db,
		engine.FilterP{Pred: algebra.Gt(algebra.Col("v"), algebra.IntC(10)), In: engine.ScanP{Name: "l"}},
		parallel.Options{Workers: 4, MorselSize: 16, Inject: panicInjector("scan:l", 3)})
	if err != nil {
		t.Fatalf("build must survive a runtime-only fault: %v", err)
	}
	streamErr := drainAll(it)
	it.Close()
	if streamErr == nil || !strings.Contains(streamErr.Error(), "panic") {
		t.Fatalf("fragment panic must surface through Err, got %v", streamErr)
	}
	waitForGoroutines(t, base)
}

// A panic unwinding out of the root pull (the consumer goroutine — here
// injected on the merge-exchange output) is the consumer-side boundary:
// guardedNext must convert it into the query error.
func TestInjectedPanicAtRootContained(t *testing.T) {
	db := bigPipelineDB(8000)
	base := runtime.NumGoroutine()
	it, err := parallel.Exec(context.Background(), db,
		engine.ScanP{Name: "l"},
		parallel.Options{Workers: 4, MorselSize: 16, Inject: panicInjector("exchange:merge", 3)})
	if err != nil {
		t.Fatalf("build must survive a runtime-only fault: %v", err)
	}
	streamErr := drainAll(it)
	it.Close()
	if streamErr == nil || !strings.Contains(streamErr.Error(), "panic") {
		t.Fatalf("root panic must surface through Err, got %v", streamErr)
	}
	waitForGoroutines(t, base)
}

// Early Close racing injected errors and delays: while chaos faults
// tear the pipeline down from inside, the consumer abandons it from
// outside after one row. Every fragment must still exit, across seeds
// and both the ordered and unordered exchange paths (the join plan uses
// repartition; the scan plan the plain merge).
func TestEarlyCloseUnderInjectedErrors(t *testing.T) {
	db := bigPipelineDB(8000)
	base := runtime.NumGoroutine()
	for seed := int64(0); seed < 16; seed++ {
		inj := chaos.New(chaos.Config{Seed: seed, ErrRate: 0.4, DelayRate: 0.3})
		it, err := parallel.Exec(context.Background(), db, bigPipelinePlan(),
			parallel.Options{Workers: 4, MorselSize: 16, Inject: inj.Wrapper()})
		if err != nil {
			// A fault firing in the build-phase join drain is a legal
			// construction error; the executor must still have reaped its
			// fragments.
			waitForGoroutines(t, base)
			continue
		}
		it.Next() // zero or one row — either way, abandon mid-flight
		it.Close()
		it.Close() // idempotent under injection too
		waitForGoroutines(t, base)
	}
}
