package parallel_test

import (
	"context"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// fuzzDomain is the time domain of the parallel sweep fuzz harness.
var fuzzDomain = interval.NewDomain(0, 32)

// decodeFuzzDB decodes 3-byte chunks of fuzz data into a begin-sorted
// single-column stored table (value, begin, span-and-multiplicity) and
// returns the database holding it. Sorting the decoded rows is what
// arms the streaming sweeps: the planner contract says Streaming only
// runs over begin-ordered input.
func decodeFuzzDB(data []byte) (*engine.DB, *engine.Table) {
	if len(data) > 300 {
		data = data[:300]
	}
	tbl := engine.NewTable(tuple.NewSchema("v"))
	for i := 0; i+2 < len(data); i += 3 {
		v := int64(data[i] % 5)
		var val tuple.Value = tuple.Int(v)
		if v == 4 {
			val = tuple.Null // NULL is an ordinary data value for sweeping
		}
		begin := int64(data[i+1]) % (fuzzDomain.Max - 1)
		span := int64(data[i+2]%16) + 1
		end := begin + span
		if end > fuzzDomain.Max {
			end = fuzzDomain.Max
		}
		mult := int64(data[i+2]%3) + 1
		tbl.Append(tuple.Tuple{val}, interval.New(begin, end), mult)
	}
	tbl.SortByEndpoints()
	db := engine.NewDB(fuzzDomain)
	db.AddTable("t", tbl)
	return db, tbl
}

func fuzzMultiset(t *engine.Table) map[string]int {
	m := make(map[string]int)
	for _, row := range t.Rows {
		m[row.Key()]++
	}
	return m
}

func fuzzSameCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// FuzzParStreamSweep differences the parallel STREAMING sweeps — the
// order-preserving repartition exchange feeding per-worker streaming
// coalesce and pre-aggregated split — against the sequential blocking
// oracles on arbitrary interval multisets, and checks merge-order
// correctness: the ordered merge of a begin-sorted parallel scan must
// itself be begin-sorted. A sort-order violation inside a partition
// would also trip the streaming iterators' input-order panic, so this
// target simultaneously fuzzes the exchange's order guarantee.
func FuzzParStreamSweep(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 5})
	f.Add([]byte{1, 3, 9, 1, 3, 9, 2, 0, 31})
	f.Add([]byte{0, 0, 4, 0, 4, 4, 0, 8, 4})    // adjacent same-value chains
	f.Add([]byte{3, 0, 15, 3, 5, 15, 3, 10, 2}) // overlaps within one group
	f.Fuzz(func(t *testing.T, data []byte) {
		db, tbl := decodeFuzzDB(data)
		ctx := context.Background()
		opt := parallel.Options{Workers: 3, MorselSize: 4}

		// Merge-order correctness: ordered merge of the sorted scan.
		scan, err := parallel.Exec(ctx, db, engine.ScanP{Name: "t"}, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Under -tags snapdebug this panics at the exchange the moment a
		// row leaves begin order, naming it, instead of failing the
		// materialized check below.
		scan = engine.CheckOrdered("parallel ordered scan", scan)
		merged := engine.Materialize(scan)
		scan.Close()
		if !engine.RowsBeginSorted(merged.Rows) {
			t.Fatalf("ordered merge emitted out-of-order rows\ninput:\n%s", tbl)
		}
		if merged.Len() != tbl.Len() {
			t.Fatalf("ordered merge lost rows: %d of %d", merged.Len(), tbl.Len())
		}

		// Parallel streaming coalesce vs the sequential blocking sweep,
		// across the batch-hop settings: morsel-tied (0), per-row
		// ablation (-1) and a batch size mismatching the morsel (3).
		want := engine.Coalesce(tbl, engine.CoalesceNative)
		for _, bs := range []int{0, -1, 3} {
			bopt := opt
			bopt.BatchSize = bs
			it, err := parallel.Exec(ctx, db, engine.CoalesceP{In: engine.ScanP{Name: "t"}, Streaming: true}, bopt)
			if err != nil {
				t.Fatal(err)
			}
			got := engine.Materialize(it)
			it.Close()
			if !fuzzSameCounts(fuzzMultiset(want), fuzzMultiset(got)) {
				t.Fatalf("parallel streaming coalesce (BatchSize %d) diverges from blocking oracle\ninput:\n%s\nwant:\n%s\ngot:\n%s", bs, tbl, want, got)
			}
		}

		// Parallel streaming difference (pairwise ordered repartition,
		// per-worker merge sweeps) vs the sequential blocking oracle.
		// The table is differenced against a shifted copy of itself so
		// value-equivalent groups exist on both sides and the monus has
		// truncation work; both sides are begin-sorted stored tables.
		shifted := engine.NewTable(tuple.Schema{Cols: tbl.Schema.Cols[:1]})
		for _, row := range tbl.Rows {
			iv := tbl.Interval(row)
			end := iv.End + 2
			if end > fuzzDomain.Max {
				end = fuzzDomain.Max
			}
			if iv.Begin+1 < end {
				shifted.Append(row[:1], interval.New(iv.Begin+1, end), 1)
			}
		}
		shifted.SortByEndpoints()
		db.AddTable("u", shifted)
		wantDiff, err := engine.TemporalDiff(tbl, shifted)
		if err != nil {
			t.Fatal(err)
		}
		dit, err := parallel.Exec(ctx, db,
			engine.DiffP{L: engine.ScanP{Name: "t"}, R: engine.ScanP{Name: "u"}, Streaming: true}, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotDiff := engine.Materialize(dit)
		dit.Close()
		if !fuzzSameCounts(fuzzMultiset(wantDiff), fuzzMultiset(gotDiff)) {
			t.Fatalf("parallel streaming difference diverges from blocking oracle\nleft:\n%s\nright:\n%s\nwant:\n%s\ngot:\n%s",
				tbl, shifted, wantDiff, gotDiff)
		}

		// Parallel streaming pre-aggregated split vs the blocking sweep,
		// grouped (partitioned path) and global (ordered-merge path).
		aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}
		for _, groupBy := range [][]string{{"v"}, nil} {
			wantAgg, err := engine.TemporalAggregate(tbl, groupBy, aggs, true, fuzzDomain)
			if err != nil {
				t.Fatal(err)
			}
			ait, err := parallel.Exec(ctx, db,
				engine.AggP{GroupBy: groupBy, Aggs: aggs, PreAgg: true, Streaming: true, In: engine.ScanP{Name: "t"}}, opt)
			if err != nil {
				t.Fatal(err)
			}
			gotAgg := engine.Materialize(ait)
			ait.Close()
			if !fuzzSameCounts(fuzzMultiset(wantAgg), fuzzMultiset(gotAgg)) {
				t.Fatalf("parallel streaming aggregation (groupBy %v) diverges from blocking oracle\ninput:\n%s\nwant:\n%s\ngot:\n%s",
					groupBy, tbl, wantAgg, gotAgg)
			}
		}
	})
}
