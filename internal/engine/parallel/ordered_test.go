package parallel_test

import (
	"context"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/tuple"
)

// sortedScanDB builds a begin-sorted stored table with interleaved
// groups, large enough that every worker claims many morsels.
func sortedScanDB(rows int) *engine.DB {
	dom := interval.NewDomain(0, 1<<20)
	db := engine.NewDB(dom)
	tbl := db.CreateTable("t", tuple.NewSchema("g", "v"))
	for i := 0; i < rows; i++ {
		begin := int64(i) // strictly ascending: begin-sorted by construction
		tbl.Append(tuple.Tuple{tuple.Int(int64(i % 7)), tuple.Int(int64(i))}, interval.New(begin, begin+50), 1)
	}
	if !tbl.BeginSorted() {
		panic("sortedScanDB built an unsorted table")
	}
	return db
}

// The ordered merge exchange must emit a begin-sorted stream when the
// fragments are begin-sorted: a parallel scan of a sorted table, merged
// at the root, keeps global begin order at every worker count.
func TestOrderedMergePreservesBeginOrder(t *testing.T) {
	db := sortedScanDB(5000)
	for _, workers := range []int{2, 3, 8} {
		it, err := parallel.Exec(context.Background(), db, engine.ScanP{Name: "t"},
			parallel.Options{Workers: workers, MorselSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		got := engine.Materialize(it)
		it.Close()
		if got.Len() != 5000 {
			t.Fatalf("workers %d: merged scan lost rows: %d", workers, got.Len())
		}
		if !engine.RowsBeginSorted(got.Rows) {
			t.Fatalf("workers %d: ordered merge emitted out-of-order rows", workers)
		}
	}
}

// Order must survive the operators that preserve it per fragment:
// Filter and Project above a sorted scan still merge ordered.
func TestOrderedMergeSurvivesFilterProject(t *testing.T) {
	db := sortedScanDB(4000)
	p := engine.ProjectP{
		Exprs: []algebra.NamedExpr{{Name: "g", E: algebra.Col("g")}},
		In: engine.FilterP{
			Pred: algebra.Gt(algebra.Col("v"), algebra.IntC(100)),
			In:   engine.ScanP{Name: "t"},
		},
	}
	it, err := parallel.Exec(context.Background(), db, p, parallel.Options{Workers: 4, MorselSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := engine.Materialize(it)
	if got.Len() == 0 {
		t.Fatal("empty filtered scan; test is vacuous")
	}
	if !engine.RowsBeginSorted(got.Rows) {
		t.Fatal("ordered merge above Filter→Project emitted out-of-order rows")
	}
}

// The parallel STREAMING sweeps behind the order-preserving exchange
// must produce the exact multiset of the sequential blocking sweeps, on
// begin-sorted input, for coalesce and grouped/global pre-aggregated
// aggregation, at several worker counts. The tiny morsel size forces
// real partitioning.
func TestParallelStreamingSweepEquivalence(t *testing.T) {
	db := sortedScanDB(3000)
	aggs := []algebra.AggSpec{{Fn: krel.Sum, Arg: "v", As: "total"}, {Fn: krel.CountStar, As: "cnt"}}
	plans := []struct {
		name      string
		streaming engine.Plan
		oracle    engine.Plan
	}{
		{
			name:      "coalesce",
			streaming: engine.CoalesceP{In: engine.ScanP{Name: "t"}, Streaming: true},
			oracle:    engine.CoalesceP{In: engine.ScanP{Name: "t"}},
		},
		{
			name:      "agg-grouped",
			streaming: engine.AggP{GroupBy: []string{"g"}, Aggs: aggs, PreAgg: true, Streaming: true, In: engine.ScanP{Name: "t"}},
			oracle:    engine.AggP{GroupBy: []string{"g"}, Aggs: aggs, PreAgg: true, In: engine.ScanP{Name: "t"}},
		},
		{
			name:      "agg-global",
			streaming: engine.AggP{Aggs: aggs, PreAgg: true, Streaming: true, In: engine.ScanP{Name: "t"}},
			oracle:    engine.AggP{Aggs: aggs, PreAgg: true, In: engine.ScanP{Name: "t"}},
		},
	}
	for _, p := range plans {
		mat, err := db.Exec(p.oracle)
		if err != nil {
			t.Fatalf("%s: oracle: %v", p.name, err)
		}
		want := sortedKeys(mat)
		if len(want) == 0 {
			t.Fatalf("%s: empty oracle result; test is vacuous", p.name)
		}
		for _, workers := range []int{2, 3, 8} {
			it, err := parallel.Exec(context.Background(), db, p.streaming,
				parallel.Options{Workers: workers, MorselSize: 8})
			if err != nil {
				t.Fatalf("%s workers %d: %v", p.name, workers, err)
			}
			got := sortedKeys(engine.Materialize(it))
			it.Close()
			if !sameMultiset(got, want) {
				t.Fatalf("%s workers %d: parallel streaming sweep diverges: got %d rows, want %d",
					p.name, workers, len(got), len(want))
			}
		}
	}
}

// The full par-stream grid over random databases and queries: the
// REWR plans of every sweep mode × parallelism × sortedness
// combination must agree with the materializing executor. This is the
// qgen equivalence suite's coverage of the new executor path (the
// rewrite-level commuting diagram covers the logical model; this one
// stresses the exchanges with a tiny morsel size).
func TestParStreamQgenGrid(t *testing.T) {
	for seed := int64(200); seed < 260; seed++ {
		g := qgen.New(seed)
		spec := g.GenDB()
		q := g.GenQuery()
		for _, sorted := range []bool{false, true} {
			s := spec
			if sorted {
				s = spec.SortedByBegin()
			}
			db := s.ToEngineDB()
			for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
				p, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: 3})
				if err != nil {
					t.Fatalf("seed %d: rewrite: %v", seed, err)
				}
				mat, err := db.Exec(p)
				if err != nil {
					t.Fatalf("seed %d: Exec(%s): %v", seed, p, err)
				}
				want := sortedKeys(mat)
				for _, workers := range []int{2, 4} {
					it, err := parallel.Exec(context.Background(), db, p, parallel.Options{Workers: workers, MorselSize: 4})
					if err != nil {
						t.Fatalf("seed %d sweep %d workers %d: %v", seed, sw, workers, err)
					}
					got := sortedKeys(engine.Materialize(it))
					it.Close()
					if !sameMultiset(got, want) {
						t.Fatalf("seed %d sorted %v sweep %d workers %d: diverges from sequential\nplan: %s\ngot %d rows, want %d",
							seed, sorted, sw, workers, p, len(got), len(want))
					}
				}
			}
		}
	}
}
