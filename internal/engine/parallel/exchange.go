package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// batch is the unit of exchange between pipeline fragments: a bounded
// slice of period-encoded rows. Batching amortizes channel synchronization
// over many rows, which is what makes exchange operators cheaper than a
// channel send per row. Each transport batch is freshly allocated by its
// producer and handed over wholesale, so consumer-side iterators may
// adopt it directly as an engine.RowBatch row slice — the zero-copy
// batch pass-through of the vectorized hop.
type batch []tuple.Tuple

// capOf returns the effective row capacity of a consumer-supplied
// batch (DefaultBatchSize for a zero-capacity one).
func capOf(b *engine.RowBatch) int {
	if c := b.Cap(); c > 0 {
		return c
	}
	return engine.DefaultBatchSize
}

// exchange owns the producer-side lifecycle of one exchange: a context
// derived from the execution context, canceled once EVERY consumer-side
// iterator of the exchange has been closed. This is what lets an
// iterator-level Close unblock producers parked on a bounded transport
// channel instead of stranding them until executor-level cancellation.
// The refcount counts consumers, not partitions: producers fan rows out
// to ALL partitions, so canceling on the first partition Close would
// truncate the still-live ones — only the last Close tears the
// producers down.
type exchange struct {
	ctx    context.Context
	cancel context.CancelFunc
	refs   atomic.Int32
}

// newExchange derives an exchange lifecycle with the given number of
// consumer-side iterators from the execution context.
func (e *executor) newExchange(consumers int) *exchange {
	ctx, cancel := context.WithCancel(e.ctx)
	x := &exchange{ctx: ctx, cancel: cancel}
	x.refs.Store(int32(consumers))
	return x
}

// release records one consumer Close; the last one cancels the
// exchange context and with it every producer blocked on a send.
func (x *exchange) release() {
	if x.refs.Add(-1) == 0 {
		x.cancel()
	}
}

// pullFunc returns the per-row read function of src for an exchange
// producer: when the batch hop is enabled and src is batch-capable, the
// child chain is pulled one batch at a time behind a row adapter (the
// producer's own loop stays per-row — hash routing is inherently
// per-row — but every deeper operator boundary amortizes). The adapter
// owns no resources beyond src, which the producer closes itself.
func (e *executor) pullFunc(src engine.RowIter) func() (tuple.Tuple, bool) {
	if bi, ok := src.(engine.BatchIter); ok && e.batchSize > 0 {
		return engine.NewRowAdapter(bi, e.batchSize).Next
	}
	return src.Next
}

// morselTableIter is the partitioned scan source: workers claim morsels
// (contiguous row ranges) of a shared table through an atomic cursor, so
// fragment load balances even when per-row costs are skewed. One iterator
// per worker; the counter is shared across all of them.
type morselTableIter struct {
	t      *engine.Table
	ctr    *atomic.Int64
	size   int
	i, end int // current claimed morsel [i, end)
}

func (it *morselTableIter) Schema() tuple.Schema { return it.t.Schema }

func (it *morselTableIter) Next() (tuple.Tuple, bool) {
	for {
		if it.i < it.end {
			row := it.t.Rows[it.i]
			it.i++
			return row, true
		}
		start := int(it.ctr.Add(int64(it.size))) - it.size
		if start >= len(it.t.Rows) {
			return nil, false
		}
		end := start + it.size
		if end > len(it.t.Rows) {
			end = len(it.t.Rows)
		}
		it.i, it.end = start, end
	}
}

// NextBatch hands out the remainder of the claimed morsel (up to the
// consumer's capacity) as one slice append — the partitioned sibling of
// tableIter.NextBatch.
func (it *morselTableIter) NextBatch(b *engine.RowBatch) bool {
	b.Reset()
	limit := capOf(b)
	for {
		if it.i < it.end {
			n := it.end - it.i
			if n > limit {
				n = limit
			}
			b.Rows = append(b.Rows, it.t.Rows[it.i:it.i+n]...)
			it.i += n
			return true
		}
		start := int(it.ctr.Add(int64(it.size))) - it.size
		if start >= len(it.t.Rows) {
			return false
		}
		end := start + it.size
		if end > len(it.t.Rows) {
			end = len(it.t.Rows)
		}
		it.i, it.end = start, end
	}
}

func (it *morselTableIter) Close() {}

// chanIter is the receiving end of a repartition exchange: one of W
// worker-side iterators pulling batches from a shared channel fed by a
// distributor goroutine. The batch-draining loop is chanCursor's, so
// the ctx-aware receive cannot drift between the RowIter form and the
// ordered-merge rowSource form.
type chanIter struct {
	x      *exchange
	schema tuple.Schema
	cur    chanCursor
	closed bool
}

func (it *chanIter) Schema() tuple.Schema { return it.schema }

func (it *chanIter) Next() (tuple.Tuple, bool) { return it.cur.next(it.x.ctx) }

// NextBatch adopts a whole transport batch when the cursor is at a
// batch boundary — the zero-copy pass-through.
func (it *chanIter) NextBatch(b *engine.RowBatch) bool {
	return it.cur.nextBatch(it.x.ctx, b)
}

// Close releases this consumer's reference on the exchange; the last
// partition closed cancels the producers (see exchange).
func (it *chanIter) Close() {
	if !it.closed {
		it.closed = true
		it.x.release()
	}
}

// mergeIter is the merge exchange: W fragment goroutines each drain one
// per-worker iterator into batches and push them onto a shared bounded
// channel; the iterator pulls batches off in arrival order. Merge order
// is nondeterministic, which is sound because period relations are
// multisets. Goroutine lifetime is owned by the executor: cancellation
// of the execution context stops every producer, and the channel is
// closed once all of them have exited.
type mergeIter struct {
	x      *exchange
	schema tuple.Schema
	ch     <-chan batch
	cur    batch
	i      int
	closed bool
}

func (it *mergeIter) Schema() tuple.Schema { return it.schema }

func (it *mergeIter) Next() (tuple.Tuple, bool) {
	if it.x.ctx.Err() != nil {
		return nil, false
	}
	for {
		if it.i < len(it.cur) {
			row := it.cur[it.i]
			it.i++
			return row, true
		}
		b, ok := <-it.ch
		if !ok {
			return nil, false
		}
		it.cur, it.i = b, 0
	}
}

// NextBatch adopts one transport batch wholesale (transport batches are
// freshly allocated per send, so the hand-off is zero-copy); a partial
// batch left behind by per-row pulls is copied out first.
func (it *mergeIter) NextBatch(b *engine.RowBatch) bool {
	b.Reset()
	if it.i < len(it.cur) {
		b.Rows = append(b.Rows, it.cur[it.i:]...)
		it.cur, it.i = nil, 0
		return true
	}
	if it.x.ctx.Err() != nil {
		return false
	}
	nb, ok := <-it.ch
	if !ok {
		return false
	}
	b.Rows = nb
	return true
}

// Close releases the merge's single consumer reference, canceling the
// producers — closing a merged iterator before exhaustion no longer
// strands them on the bounded channel until executor teardown.
func (it *mergeIter) Close() {
	if !it.closed {
		it.closed = true
		it.x.release()
	}
}

// startMerge spawns one producer goroutine per part and returns the
// merged stream. Producers exit when their input is exhausted or the
// execution context is canceled; a closer goroutine closes the channel
// once all producers are done, which is how the consumer observes
// end-of-stream.
func (e *executor) startMerge(parts []engine.RowIter, parent *engine.OpStats) engine.RowIter {
	st := parent.Child("Exchange:merge", fmt.Sprintf("fanin=%d", len(parts)))
	schema := parts[0].Schema()
	x := e.newExchange(1)
	ch := make(chan batch, len(parts))
	var producers sync.WaitGroup
	for _, part := range parts {
		part := part
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			// LIFO: part.Close and producers.Done run first, so a panic in
			// either is still caught by recoverPanic before wg.Done releases
			// the executor's reaper.
			defer e.wg.Done()
			defer e.recoverPanic("exchange:merge producer")
			defer producers.Done()
			defer part.Close()
			e.drainInto(x.ctx, part, ch, st, false)
		}()
	}
	e.wg.Add(1)
	//lint:leakcheck bounded by construction: waits only on producers that are themselves cancellation-aware via drainInto
	go func() {
		defer e.wg.Done()
		defer e.recoverPanic("exchange:merge closer")
		producers.Wait()
		close(ch)
	}()
	return engine.NewObsIter(e.inject("exchange:merge", &mergeIter{x: x, schema: schema, ch: ch}), st)
}

// send pushes one transport batch onto ch, recording the backpressure
// wait on BOTH select arms: a producer aborted by cancellation while
// blocked on a full channel previously returned without recording its
// wait, under-reporting backpressure exactly when it mattered most.
// countBatch records the send on the exchange node's batch counter —
// off for the merge exchanges, whose consumer-side ObsIter counts
// delivered batches on the same node (counting both would double).
// Reports false when the exchange was canceled.
func (e *executor) send(ctx context.Context, ch chan<- batch, b batch, st *engine.OpStats, countBatch bool) bool {
	if st == nil {
		select {
		case <-ctx.Done():
			return false
		case ch <- b:
			return true
		}
	}
	t0 := time.Now()
	sent := false
	select {
	case <-ctx.Done():
	case ch <- b:
		sent = true
	}
	st.AddWait(time.Since(t0).Nanoseconds())
	if sent && countBatch {
		st.AddBatch()
	}
	return sent
}

// drainInto pumps it into ch in morsel-sized batches until exhaustion or
// cancellation of the exchange context. With the batch hop enabled and a
// batch-capable input, the operator chain fills each transport batch
// directly through NextBatch — one virtual call per batch instead of one
// per row — and the slice is handed over wholesale (a fresh slice per
// send, because the consumer adopts it). With st non-nil the producer's
// blocked time is recorded (and each batch sent, when countBatch says
// the consumer side is not already counting them).
// A drain that ends because its input FAILED (rather than ended
// naturally) reports the input's terminal error to the executor's
// central error slot, per the error-carrying iterator protocol:
// exchange consumers only ever observe a clean end-of-stream, so the
// producer side is where a truncation must be converted into a query
// error. No trailing partial batch is sent on a failed drain — the rows
// of a failed stream are not results.
func (e *executor) drainInto(ctx context.Context, it engine.RowIter, ch chan<- batch, st *engine.OpStats, countBatch bool) {
	if bi, ok := it.(engine.BatchIter); ok && e.batchSize > 0 {
		for {
			// One cancellation probe per batch: NextBatch can spin for a
			// while on selective operators, and the send below only
			// observes cancellation when it actually blocks.
			if ctx.Err() != nil {
				return
			}
			rb := engine.RowBatch{Rows: make([]tuple.Tuple, 0, e.batchSize)}
			if !bi.NextBatch(&rb) {
				e.fail(engine.IterErr(it))
				return
			}
			if !e.send(ctx, ch, batch(rb.Rows), st, countBatch) {
				return
			}
		}
	}
	b := make(batch, 0, e.morsel)
	for {
		row, ok := it.Next()
		if !ok {
			if err := engine.IterErr(it); err != nil {
				e.fail(err)
				return
			}
		}
		if ok {
			//lint:ignore rowretain batching for transport only; rows are forwarded downstream unmodified
			b = append(b, row)
		}
		if (!ok || len(b) == e.morsel) && len(b) > 0 {
			if !e.send(ctx, ch, b, st, countBatch) {
				return
			}
			b = make(batch, 0, e.morsel)
		}
		if !ok {
			return
		}
	}
}

// hashPartition converts a stream — given as its physical sources, one
// per already-running fragment — into W worker-side iterators by
// hashing the key columns: every row of one key group lands in the
// same partition, which is what lets each worker run an independent
// sweep (coalesce / split-aggregate / difference) over its partition
// with no cross-worker coordination. One distributor goroutine per
// source hashes into the shared bounded per-partition channels, so
// partitioned inputs are redistributed without first being serialized
// through a merge exchange; cancellation of the execution context
// unblocks both sides.
func (e *executor) hashPartition(srcs []engine.RowIter, keyIdx []int, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:partition", fmt.Sprintf("fanout=%d", e.workers))
	st.InitParts(e.workers)
	schema := srcs[0].Schema()
	x := e.newExchange(e.workers)
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, len(srcs)+1)
	}
	var producers sync.WaitGroup
	for _, src := range srcs {
		src := src
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.recoverPanic("exchange:partition producer")
			defer producers.Done()
			defer src.Close()
			bufs := make([]batch, e.workers)
			for i := range bufs {
				bufs[i] = make(batch, 0, e.morsel)
			}
			flush := func(i int) bool {
				if len(bufs[i]) == 0 {
					return true
				}
				if !e.send(x.ctx, chans[i], bufs[i], st, true) {
					return false
				}
				st.AddPartRows(i, len(bufs[i]))
				bufs[i] = make(batch, 0, e.morsel)
				return true
			}
			var scratch []byte
			next := e.pullFunc(src)
			for {
				row, ok := next()
				if !ok {
					// A failed source means the partitions are missing rows:
					// report it centrally and skip the trailing flush (the
					// buffered rows of a failed stream are not results).
					if err := engine.IterErr(src); err != nil {
						e.fail(err)
						return
					}
					break
				}
				scratch = row.AppendKey(scratch[:0], keyIdx)
				i := int(keyHash(scratch) % uint32(e.workers))
				//lint:ignore rowretain partition buffering for transport; rows are forwarded downstream unmodified
				bufs[i] = append(bufs[i], row)
				if len(bufs[i]) == e.morsel && !flush(i) {
					return
				}
			}
			for i := range bufs {
				if !flush(i) {
					return
				}
			}
		}()
	}
	e.wg.Add(1)
	//lint:leakcheck bounded by construction: waits only on partition producers whose flush selects on ctx.Done()
	go func() {
		defer e.wg.Done()
		defer e.recoverPanic("exchange:partition closer")
		producers.Wait()
		for _, ch := range chans {
			close(ch)
		}
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = e.inject(fmt.Sprintf("exchange:partition:%d", i),
			&chanIter{x: x, schema: schema, cur: chanCursor{ch: chans[i]}})
	}
	return parts
}

// keyHash is FNV-1a over a canonical tuple key encoding (produced
// allocation-free by tuple.AppendKey into a reusable scratch buffer).
func keyHash(key []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// rowSource is one input of an ordered k-way merge: a pull interface
// over the receiving end of a producer's batch transport (bounded
// channel or unbounded queue).
type rowSource interface {
	next(ctx context.Context) (tuple.Tuple, bool)
}

// chanCursor adapts one bounded batch channel to a rowSource.
type chanCursor struct {
	ch  <-chan batch
	cur batch
	i   int
}

func (c *chanCursor) next(ctx context.Context) (tuple.Tuple, bool) {
	for {
		if c.i < len(c.cur) {
			row := c.cur[c.i]
			c.i++
			return row, true
		}
		select {
		case <-ctx.Done():
			return nil, false
		case b, ok := <-c.ch:
			if !ok {
				return nil, false
			}
			c.cur, c.i = b, 0
		}
	}
}

// nextBatch adopts one transport batch wholesale into out (zero-copy —
// transport batches are freshly allocated per send); a partial batch
// left behind by per-row pulls is copied out first.
func (c *chanCursor) nextBatch(ctx context.Context, out *engine.RowBatch) bool {
	out.Reset()
	if c.i < len(c.cur) {
		out.Rows = append(out.Rows, c.cur[c.i:]...)
		c.cur, c.i = nil, 0
		return true
	}
	select {
	case <-ctx.Done():
		return false
	case b, ok := <-c.ch:
		if !ok {
			return false
		}
		out.Rows = b
		return true
	}
}

// batchQueue is an unbounded batch mailbox used by the order-preserving
// repartition exchange. Unbounded is load-bearing, not a convenience:
// an ordered k-way merge cannot emit a row until EVERY live cursor has
// a head row, so if producers could block on a full partition buffer, a
// skewed key distribution deadlocks (producer s1 full toward partition
// w1 while w1's merge awaits s2, whose producer is full toward w2,
// whose merge awaits s1). The worst-case footprint is one partition's
// rows — exactly what the blocking sweep path materialized anyway.
type batchQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	batches []batch
	closed  bool
}

func newBatchQueue() *batchQueue {
	q := &batchQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *batchQueue) put(b batch) {
	q.mu.Lock()
	q.batches = append(q.batches, b)
	q.mu.Unlock()
	q.cond.Signal()
}

// closeQ marks end-of-stream and wakes the consumer. Producers always
// close their queues on exit — including the cancellation path — which
// is what unblocks a consumer waiting in get.
func (q *batchQueue) closeQ() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *batchQueue) get() (batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.batches) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.batches) == 0 {
		return nil, false
	}
	b := q.batches[0]
	q.batches[0] = nil
	q.batches = q.batches[1:]
	return b, true
}

// queueCursor adapts one batchQueue to a rowSource. Cancellation is
// observed through the producer closing the queue, so get never blocks
// past teardown. When a governor is attached, the bytes a producer
// charged for each queued batch are released as the consumer takes it —
// the outstanding charge is exactly the queue depth, which is what the
// memory budget bounds on the otherwise-unbounded ordered transport.
// (Batches stranded in a torn-down queue stay charged; the governor's
// lifetime is the query's, so nothing leaks past it.)
type queueCursor struct {
	q        *batchQueue
	gov      *engine.Governor
	rowBytes int64
	cur      batch
	i        int
}

func (c *queueCursor) next(ctx context.Context) (tuple.Tuple, bool) {
	for {
		if c.i < len(c.cur) {
			row := c.cur[c.i]
			c.i++
			return row, true
		}
		b, ok := c.q.get()
		if !ok {
			return nil, false
		}
		c.gov.ReleaseMem(int64(len(b)) * c.rowBytes)
		c.cur, c.i = b, 0
	}
}

// orderedMergeIter is the order-preserving merge exchange: a k-way
// merge over per-producer sources in the sweep operators' canonical
// (begin, end) endpoint order — the same order engine.CompareEndpoints
// defines — so begin-sorted fragment streams merge into one
// begin-sorted stream and downstream streaming sweeps stay streaming.
// Each source holds at most one head row in the heap; the merge pulls a
// replacement only from the source it popped, which is what keeps
// per-fragment order intact.
type orderedMergeIter struct {
	ctx    context.Context
	schema tuple.Schema
	srcs   []rowSource
	heap   []mergeEntry
	inited bool
	// onClose releases this consumer's reference on the owning exchange
	// (nil when the sources need no producer teardown).
	onClose func()
	closed  bool
}

// mergeEntry is one heap element: a source's current head row with its
// interval endpoints cached, so every sift comparison is two raw int64
// compares instead of re-extracting tagged values from the row.
type mergeEntry struct {
	begin, end int64
	row        tuple.Tuple
	src        rowSource
}

func newMergeEntry(row tuple.Tuple, src rowSource) mergeEntry {
	n := len(row)
	return mergeEntry{begin: row[n-2].AsInt(), end: row[n-1].AsInt(), row: row, src: src}
}

func (it *orderedMergeIter) Schema() tuple.Schema { return it.schema }

func (it *orderedMergeIter) less(i, j int) bool {
	a, b := &it.heap[i], &it.heap[j]
	if a.begin != b.begin {
		return a.begin < b.begin
	}
	return a.end < b.end
}

func (it *orderedMergeIter) siftDown(i int) {
	n := len(it.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && it.less(l, s) {
			s = l
		}
		if r < n && it.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		it.heap[i], it.heap[s] = it.heap[s], it.heap[i]
		i = s
	}
}

func (it *orderedMergeIter) Next() (tuple.Tuple, bool) {
	if !it.inited {
		it.inited = true
		for _, src := range it.srcs {
			if row, ok := src.next(it.ctx); ok {
				it.heap = append(it.heap, newMergeEntry(row, src))
			}
		}
		for i := len(it.heap)/2 - 1; i >= 0; i-- {
			it.siftDown(i)
		}
	}
	if len(it.heap) == 0 {
		return nil, false
	}
	row := it.heap[0].row
	if nrow, ok := it.heap[0].src.next(it.ctx); ok {
		it.heap[0] = newMergeEntry(nrow, it.heap[0].src)
	} else {
		n := len(it.heap) - 1
		it.heap[0] = it.heap[n]
		it.heap[n] = mergeEntry{}
		it.heap = it.heap[:n]
	}
	it.siftDown(0)
	return row, true
}

// NextBatch fills out through the per-row heap merge — the k-way
// compare is inherently per-row, but one NextBatch call amortizes the
// downstream virtual-call hop over the whole batch.
func (it *orderedMergeIter) NextBatch(b *engine.RowBatch) bool {
	b.Reset()
	limit := capOf(b)
	for b.Len() < limit {
		row, ok := it.Next()
		if !ok {
			break
		}
		b.Append(row)
	}
	return b.Len() > 0
}

// Close releases the consumer reference on the owning exchange, so
// closing an ordered-merge iterator before exhaustion unblocks its
// producers.
func (it *orderedMergeIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	if it.onClose != nil {
		it.onClose()
	}
}

// startOrderedMerge is the order-preserving sibling of startMerge: one
// producer goroutine and one bounded channel per part (backpressure is
// safe here — the single consumer always drains the source it waits
// on), with the consumer k-way merging the heads by endpoint order.
// The merged stream is begin-sorted iff every part is.
func (e *executor) startOrderedMerge(parts []engine.RowIter, parent *engine.OpStats) engine.RowIter {
	st := parent.Child("Exchange:ordered-merge", fmt.Sprintf("fanin=%d", len(parts)))
	schema := parts[0].Schema()
	x := e.newExchange(1)
	srcs := make([]rowSource, len(parts))
	for i, part := range parts {
		//lint:ignore orderedchan safe bounded buffer: the merge consumer always drains the exact source it waits on, so a full buffer here cannot stall the heap
		ch := make(chan batch, 2)
		srcs[i] = &chanCursor{ch: ch}
		part := part
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.recoverPanic("exchange:ordered-merge producer")
			defer close(ch)
			defer part.Close()
			e.drainInto(x.ctx, part, ch, st, false)
		}()
	}
	return engine.NewObsIter(engine.CheckOrdered("ordered merge exchange",
		e.inject("exchange:ordered-merge",
			&orderedMergeIter{ctx: x.ctx, schema: schema, srcs: srcs, onClose: x.release})), st)
}

// hashPartitionOrdered is the order-preserving repartition exchange:
// like hashPartition it hashes the key columns so value-equivalent
// groups never straddle partitions, but it partitions BEFORE any
// order-destroying merge — each producer feeds a private queue per
// partition (preserving its fragment's begin order as a subsequence)
// and every partition-side iterator k-way merges its per-producer
// queues by endpoint order. With begin-sorted sources, every partition
// stream is begin-sorted, which is what lets each worker run a
// STREAMING sweep over its partition. See batchQueue for why the
// per-(source, partition) transport must be unbounded.
func (e *executor) hashPartitionOrdered(srcs []engine.RowIter, keyIdx []int, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:ordered-partition", fmt.Sprintf("fanout=%d", e.workers))
	st.InitParts(e.workers)
	schema := srcs[0].Schema()
	x := e.newExchange(e.workers)
	queues := make([][]*batchQueue, len(srcs))
	for s := range queues {
		queues[s] = make([]*batchQueue, e.workers)
		for w := range queues[s] {
			queues[s][w] = newBatchQueue()
		}
	}
	rowBytes := engine.ApproxRowBytes(schema.Arity())
	for si, src := range srcs {
		si, src := si, src
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer e.recoverPanic("exchange:ordered-partition producer")
			defer src.Close()
			defer func() {
				for _, q := range queues[si] {
					q.closeQ()
				}
			}()
			bufs := make([]batch, e.workers)
			for i := range bufs {
				bufs[i] = make(batch, 0, e.morsel)
			}
			// put charges the batch against the memory budget before
			// queueing it (the consumer's queueCursor releases the charge
			// on take): the unbounded ordered transport is exactly where a
			// skewed query's state grows without backpressure, so this is
			// the governor's most load-bearing charge site.
			put := func(i int) bool {
				if err := e.gov.ChargeMem(int64(len(bufs[i])) * rowBytes); err != nil {
					e.fail(err)
					return false
				}
				queues[si][i].put(bufs[i])
				st.AddBatch()
				st.AddPartRows(i, len(bufs[i]))
				return true
			}
			var scratch []byte
			next := e.pullFunc(src)
			for {
				row, ok := next()
				if !ok {
					// A failed source means the partitions are missing rows:
					// report it centrally and drop the trailing buffers.
					if err := engine.IterErr(src); err != nil {
						e.fail(err)
						return
					}
					break
				}
				scratch = row.AppendKey(scratch[:0], keyIdx)
				i := int(keyHash(scratch) % uint32(e.workers))
				//lint:ignore rowretain partition buffering for transport; rows are forwarded downstream unmodified
				bufs[i] = append(bufs[i], row)
				if len(bufs[i]) == e.morsel {
					// The cancellation probe runs once per batch, not per
					// row: queue puts never block, so this is the only
					// teardown point and ctx.Err is not free. (No wait time
					// to record for the same reason — only batch counts.)
					// The exchange context also covers all-consumers-closed,
					// so an early Close of every partition stops this
					// producer instead of letting it pump the whole source
					// into the unbounded queues.
					if x.ctx.Err() != nil {
						return
					}
					if !put(i) {
						return
					}
					bufs[i] = make(batch, 0, e.morsel)
				}
			}
			for i := range bufs {
				if len(bufs[i]) > 0 && !put(i) {
					return
				}
			}
		}()
	}
	parts := make([]engine.RowIter, e.workers)
	for w := range parts {
		cursors := make([]rowSource, len(srcs))
		for s := range srcs {
			cursors[s] = &queueCursor{q: queues[s][w], gov: e.gov, rowBytes: rowBytes}
		}
		parts[w] = engine.CheckOrdered("ordered repartition exchange",
			e.inject(fmt.Sprintf("exchange:ordered-partition:%d", w),
				&orderedMergeIter{ctx: x.ctx, schema: schema, srcs: cursors, onClose: x.release}))
	}
	return parts
}

// repartition converts a sequential stream into W worker-side iterators
// by round-robin batch distribution: a single distributor goroutine reads
// the source and every worker pulls from the shared bounded channel —
// morsel-driven scheduling for sources that are not indexable tables
// (e.g. the output of a blocking operator feeding a join probe side).
func (e *executor) repartition(src engine.RowIter, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:repartition", fmt.Sprintf("fanout=%d", e.workers))
	schema := src.Schema()
	x := e.newExchange(e.workers)
	ch := make(chan batch, e.workers)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.recoverPanic("exchange:repartition producer")
		defer close(ch)
		defer src.Close()
		e.drainInto(x.ctx, src, ch, st, true)
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = e.inject(fmt.Sprintf("exchange:repartition:%d", i),
			&chanIter{x: x, schema: schema, cur: chanCursor{ch: ch}})
	}
	return parts
}
