package parallel

import (
	"context"
	"sync"
	"sync/atomic"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// batch is the unit of exchange between pipeline fragments: a bounded
// slice of period-encoded rows. Batching amortizes channel synchronization
// over many rows, which is what makes exchange operators cheaper than a
// channel send per row.
type batch []tuple.Tuple

// morselTableIter is the partitioned scan source: workers claim morsels
// (contiguous row ranges) of a shared table through an atomic cursor, so
// fragment load balances even when per-row costs are skewed. One iterator
// per worker; the counter is shared across all of them.
type morselTableIter struct {
	t      *engine.Table
	ctr    *atomic.Int64
	size   int
	i, end int // current claimed morsel [i, end)
}

func (it *morselTableIter) Schema() tuple.Schema { return it.t.Schema }

func (it *morselTableIter) Next() (tuple.Tuple, bool) {
	for {
		if it.i < it.end {
			row := it.t.Rows[it.i]
			it.i++
			return row, true
		}
		start := int(it.ctr.Add(int64(it.size))) - it.size
		if start >= len(it.t.Rows) {
			return nil, false
		}
		end := start + it.size
		if end > len(it.t.Rows) {
			end = len(it.t.Rows)
		}
		it.i, it.end = start, end
	}
}

func (it *morselTableIter) Close() {}

// chanIter is the receiving end of a repartition exchange: one of W
// worker-side iterators pulling batches from a shared channel fed by a
// distributor goroutine. Cancellation of the execution context unblocks
// the receive.
type chanIter struct {
	ctx    context.Context
	schema tuple.Schema
	ch     <-chan batch
	cur    batch
	i      int
}

func (it *chanIter) Schema() tuple.Schema { return it.schema }

func (it *chanIter) Next() (tuple.Tuple, bool) {
	for {
		if it.i < len(it.cur) {
			row := it.cur[it.i]
			it.i++
			return row, true
		}
		select {
		case <-it.ctx.Done():
			return nil, false
		case b, ok := <-it.ch:
			if !ok {
				return nil, false
			}
			it.cur, it.i = b, 0
		}
	}
}

func (it *chanIter) Close() {}

// mergeIter is the merge exchange: W fragment goroutines each drain one
// per-worker iterator into batches and push them onto a shared bounded
// channel; the iterator pulls batches off in arrival order. Merge order
// is nondeterministic, which is sound because period relations are
// multisets. Goroutine lifetime is owned by the executor: cancellation
// of the execution context stops every producer, and the channel is
// closed once all of them have exited.
type mergeIter struct {
	ctx    context.Context
	schema tuple.Schema
	ch     <-chan batch
	cur    batch
	i      int
}

func (it *mergeIter) Schema() tuple.Schema { return it.schema }

func (it *mergeIter) Next() (tuple.Tuple, bool) {
	if it.ctx.Err() != nil {
		return nil, false
	}
	for {
		if it.i < len(it.cur) {
			row := it.cur[it.i]
			it.i++
			return row, true
		}
		b, ok := <-it.ch
		if !ok {
			return nil, false
		}
		it.cur, it.i = b, 0
	}
}

func (it *mergeIter) Close() {}

// startMerge spawns one producer goroutine per part and returns the
// merged stream. Producers exit when their input is exhausted or the
// execution context is canceled; a closer goroutine closes the channel
// once all producers are done, which is how the consumer observes
// end-of-stream.
func (e *executor) startMerge(parts []engine.RowIter) engine.RowIter {
	schema := parts[0].Schema()
	ch := make(chan batch, len(parts))
	var producers sync.WaitGroup
	for _, part := range parts {
		part := part
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer producers.Done()
			defer part.Close()
			e.drainInto(part, ch)
		}()
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		producers.Wait()
		close(ch)
	}()
	return &mergeIter{ctx: e.ctx, schema: schema, ch: ch}
}

// drainInto pumps it into ch in morsel-sized batches until exhaustion or
// cancellation.
func (e *executor) drainInto(it engine.RowIter, ch chan<- batch) {
	b := make(batch, 0, e.morsel)
	for {
		row, ok := it.Next()
		if ok {
			b = append(b, row)
		}
		if (!ok || len(b) == e.morsel) && len(b) > 0 {
			select {
			case <-e.ctx.Done():
				return
			case ch <- b:
			}
			b = make(batch, 0, e.morsel)
		}
		if !ok {
			return
		}
	}
}

// hashPartition converts a stream — given as its physical sources, one
// per already-running fragment — into W worker-side iterators by
// hashing the key columns: every row of one key group lands in the
// same partition, which is what lets each worker run an independent
// sweep (coalesce / split-aggregate / difference) over its partition
// with no cross-worker coordination. One distributor goroutine per
// source hashes into the shared bounded per-partition channels, so
// partitioned inputs are redistributed without first being serialized
// through a merge exchange; cancellation of the execution context
// unblocks both sides.
func (e *executor) hashPartition(srcs []engine.RowIter, keyIdx []int) []engine.RowIter {
	schema := srcs[0].Schema()
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, len(srcs)+1)
	}
	var producers sync.WaitGroup
	for _, src := range srcs {
		src := src
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer producers.Done()
			defer src.Close()
			bufs := make([]batch, e.workers)
			for i := range bufs {
				bufs[i] = make(batch, 0, e.morsel)
			}
			flush := func(i int) bool {
				if len(bufs[i]) == 0 {
					return true
				}
				select {
				case <-e.ctx.Done():
					return false
				case chans[i] <- bufs[i]:
					bufs[i] = make(batch, 0, e.morsel)
					return true
				}
			}
			var scratch []byte
			for {
				row, ok := src.Next()
				if !ok {
					break
				}
				scratch = row.AppendKey(scratch[:0], keyIdx)
				i := int(keyHash(scratch) % uint32(e.workers))
				bufs[i] = append(bufs[i], row)
				if len(bufs[i]) == e.morsel && !flush(i) {
					return
				}
			}
			for i := range bufs {
				if !flush(i) {
					return
				}
			}
		}()
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		producers.Wait()
		for _, ch := range chans {
			close(ch)
		}
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = &chanIter{ctx: e.ctx, schema: schema, ch: chans[i]}
	}
	return parts
}

// keyHash is FNV-1a over a canonical tuple key encoding (produced
// allocation-free by tuple.AppendKey into a reusable scratch buffer).
func keyHash(key []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// repartition converts a sequential stream into W worker-side iterators
// by round-robin batch distribution: a single distributor goroutine reads
// the source and every worker pulls from the shared bounded channel —
// morsel-driven scheduling for sources that are not indexable tables
// (e.g. the output of a blocking operator feeding a join probe side).
func (e *executor) repartition(src engine.RowIter) []engine.RowIter {
	schema := src.Schema()
	ch := make(chan batch, e.workers)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer close(ch)
		defer src.Close()
		e.drainInto(src, ch)
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = &chanIter{ctx: e.ctx, schema: schema, ch: ch}
	}
	return parts
}
