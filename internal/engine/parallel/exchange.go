package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// batch is the unit of exchange between pipeline fragments: a bounded
// slice of period-encoded rows. Batching amortizes channel synchronization
// over many rows, which is what makes exchange operators cheaper than a
// channel send per row.
type batch []tuple.Tuple

// morselTableIter is the partitioned scan source: workers claim morsels
// (contiguous row ranges) of a shared table through an atomic cursor, so
// fragment load balances even when per-row costs are skewed. One iterator
// per worker; the counter is shared across all of them.
type morselTableIter struct {
	t      *engine.Table
	ctr    *atomic.Int64
	size   int
	i, end int // current claimed morsel [i, end)
}

func (it *morselTableIter) Schema() tuple.Schema { return it.t.Schema }

func (it *morselTableIter) Next() (tuple.Tuple, bool) {
	for {
		if it.i < it.end {
			row := it.t.Rows[it.i]
			it.i++
			return row, true
		}
		start := int(it.ctr.Add(int64(it.size))) - it.size
		if start >= len(it.t.Rows) {
			return nil, false
		}
		end := start + it.size
		if end > len(it.t.Rows) {
			end = len(it.t.Rows)
		}
		it.i, it.end = start, end
	}
}

func (it *morselTableIter) Close() {}

// chanIter is the receiving end of a repartition exchange: one of W
// worker-side iterators pulling batches from a shared channel fed by a
// distributor goroutine. The batch-draining loop is chanCursor's, so
// the ctx-aware receive cannot drift between the RowIter form and the
// ordered-merge rowSource form.
type chanIter struct {
	ctx    context.Context
	schema tuple.Schema
	cur    chanCursor
}

func (it *chanIter) Schema() tuple.Schema { return it.schema }

func (it *chanIter) Next() (tuple.Tuple, bool) { return it.cur.next(it.ctx) }

func (it *chanIter) Close() {}

// mergeIter is the merge exchange: W fragment goroutines each drain one
// per-worker iterator into batches and push them onto a shared bounded
// channel; the iterator pulls batches off in arrival order. Merge order
// is nondeterministic, which is sound because period relations are
// multisets. Goroutine lifetime is owned by the executor: cancellation
// of the execution context stops every producer, and the channel is
// closed once all of them have exited.
type mergeIter struct {
	ctx    context.Context
	schema tuple.Schema
	ch     <-chan batch
	cur    batch
	i      int
}

func (it *mergeIter) Schema() tuple.Schema { return it.schema }

func (it *mergeIter) Next() (tuple.Tuple, bool) {
	if it.ctx.Err() != nil {
		return nil, false
	}
	for {
		if it.i < len(it.cur) {
			row := it.cur[it.i]
			it.i++
			return row, true
		}
		b, ok := <-it.ch
		if !ok {
			return nil, false
		}
		it.cur, it.i = b, 0
	}
}

func (it *mergeIter) Close() {}

// startMerge spawns one producer goroutine per part and returns the
// merged stream. Producers exit when their input is exhausted or the
// execution context is canceled; a closer goroutine closes the channel
// once all producers are done, which is how the consumer observes
// end-of-stream.
func (e *executor) startMerge(parts []engine.RowIter, parent *engine.OpStats) engine.RowIter {
	st := parent.Child("Exchange:merge", fmt.Sprintf("fanin=%d", len(parts)))
	schema := parts[0].Schema()
	ch := make(chan batch, len(parts))
	var producers sync.WaitGroup
	for _, part := range parts {
		part := part
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer producers.Done()
			defer part.Close()
			e.drainInto(part, ch, st)
		}()
	}
	e.wg.Add(1)
	//lint:leakcheck bounded by construction: waits only on producers that are themselves cancellation-aware via drainInto
	go func() {
		defer e.wg.Done()
		producers.Wait()
		close(ch)
	}()
	return engine.NewObsIter(&mergeIter{ctx: e.ctx, schema: schema, ch: ch}, st)
}

// drainInto pumps it into ch in morsel-sized batches until exhaustion or
// cancellation. With st non-nil it records each batch sent and the time
// the producer spends blocked on a full channel (backpressure wait).
func (e *executor) drainInto(it engine.RowIter, ch chan<- batch, st *engine.OpStats) {
	b := make(batch, 0, e.morsel)
	for {
		row, ok := it.Next()
		if ok {
			//lint:ignore rowretain batching for transport only; rows are forwarded downstream unmodified
			b = append(b, row)
		}
		if (!ok || len(b) == e.morsel) && len(b) > 0 {
			if st != nil {
				t0 := time.Now()
				select {
				case <-e.ctx.Done():
					return
				case ch <- b:
				}
				st.AddWait(time.Since(t0).Nanoseconds())
				st.AddBatch()
			} else {
				select {
				case <-e.ctx.Done():
					return
				case ch <- b:
				}
			}
			b = make(batch, 0, e.morsel)
		}
		if !ok {
			return
		}
	}
}

// hashPartition converts a stream — given as its physical sources, one
// per already-running fragment — into W worker-side iterators by
// hashing the key columns: every row of one key group lands in the
// same partition, which is what lets each worker run an independent
// sweep (coalesce / split-aggregate / difference) over its partition
// with no cross-worker coordination. One distributor goroutine per
// source hashes into the shared bounded per-partition channels, so
// partitioned inputs are redistributed without first being serialized
// through a merge exchange; cancellation of the execution context
// unblocks both sides.
func (e *executor) hashPartition(srcs []engine.RowIter, keyIdx []int, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:partition", fmt.Sprintf("fanout=%d", e.workers))
	st.InitParts(e.workers)
	schema := srcs[0].Schema()
	chans := make([]chan batch, e.workers)
	for i := range chans {
		chans[i] = make(chan batch, len(srcs)+1)
	}
	var producers sync.WaitGroup
	for _, src := range srcs {
		src := src
		producers.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer producers.Done()
			defer src.Close()
			bufs := make([]batch, e.workers)
			for i := range bufs {
				bufs[i] = make(batch, 0, e.morsel)
			}
			flush := func(i int) bool {
				if len(bufs[i]) == 0 {
					return true
				}
				if st != nil {
					t0 := time.Now()
					select {
					case <-e.ctx.Done():
						return false
					case chans[i] <- bufs[i]:
					}
					st.AddWait(time.Since(t0).Nanoseconds())
					st.AddBatch()
					st.AddPartRows(i, len(bufs[i]))
					bufs[i] = make(batch, 0, e.morsel)
					return true
				}
				select {
				case <-e.ctx.Done():
					return false
				case chans[i] <- bufs[i]:
					bufs[i] = make(batch, 0, e.morsel)
					return true
				}
			}
			var scratch []byte
			for {
				row, ok := src.Next()
				if !ok {
					break
				}
				scratch = row.AppendKey(scratch[:0], keyIdx)
				i := int(keyHash(scratch) % uint32(e.workers))
				//lint:ignore rowretain partition buffering for transport; rows are forwarded downstream unmodified
				bufs[i] = append(bufs[i], row)
				if len(bufs[i]) == e.morsel && !flush(i) {
					return
				}
			}
			for i := range bufs {
				if !flush(i) {
					return
				}
			}
		}()
	}
	e.wg.Add(1)
	//lint:leakcheck bounded by construction: waits only on partition producers whose flush selects on ctx.Done()
	go func() {
		defer e.wg.Done()
		producers.Wait()
		for _, ch := range chans {
			close(ch)
		}
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = &chanIter{ctx: e.ctx, schema: schema, cur: chanCursor{ch: chans[i]}}
	}
	return parts
}

// keyHash is FNV-1a over a canonical tuple key encoding (produced
// allocation-free by tuple.AppendKey into a reusable scratch buffer).
func keyHash(key []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// rowSource is one input of an ordered k-way merge: a pull interface
// over the receiving end of a producer's batch transport (bounded
// channel or unbounded queue).
type rowSource interface {
	next(ctx context.Context) (tuple.Tuple, bool)
}

// chanCursor adapts one bounded batch channel to a rowSource.
type chanCursor struct {
	ch  <-chan batch
	cur batch
	i   int
}

func (c *chanCursor) next(ctx context.Context) (tuple.Tuple, bool) {
	for {
		if c.i < len(c.cur) {
			row := c.cur[c.i]
			c.i++
			return row, true
		}
		select {
		case <-ctx.Done():
			return nil, false
		case b, ok := <-c.ch:
			if !ok {
				return nil, false
			}
			c.cur, c.i = b, 0
		}
	}
}

// batchQueue is an unbounded batch mailbox used by the order-preserving
// repartition exchange. Unbounded is load-bearing, not a convenience:
// an ordered k-way merge cannot emit a row until EVERY live cursor has
// a head row, so if producers could block on a full partition buffer, a
// skewed key distribution deadlocks (producer s1 full toward partition
// w1 while w1's merge awaits s2, whose producer is full toward w2,
// whose merge awaits s1). The worst-case footprint is one partition's
// rows — exactly what the blocking sweep path materialized anyway.
type batchQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	batches []batch
	closed  bool
}

func newBatchQueue() *batchQueue {
	q := &batchQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *batchQueue) put(b batch) {
	q.mu.Lock()
	q.batches = append(q.batches, b)
	q.mu.Unlock()
	q.cond.Signal()
}

// closeQ marks end-of-stream and wakes the consumer. Producers always
// close their queues on exit — including the cancellation path — which
// is what unblocks a consumer waiting in get.
func (q *batchQueue) closeQ() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *batchQueue) get() (batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.batches) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.batches) == 0 {
		return nil, false
	}
	b := q.batches[0]
	q.batches[0] = nil
	q.batches = q.batches[1:]
	return b, true
}

// queueCursor adapts one batchQueue to a rowSource. Cancellation is
// observed through the producer closing the queue, so get never blocks
// past teardown.
type queueCursor struct {
	q   *batchQueue
	cur batch
	i   int
}

func (c *queueCursor) next(ctx context.Context) (tuple.Tuple, bool) {
	for {
		if c.i < len(c.cur) {
			row := c.cur[c.i]
			c.i++
			return row, true
		}
		b, ok := c.q.get()
		if !ok {
			return nil, false
		}
		c.cur, c.i = b, 0
	}
}

// orderedMergeIter is the order-preserving merge exchange: a k-way
// merge over per-producer sources in the sweep operators' canonical
// (begin, end) endpoint order — the same order engine.CompareEndpoints
// defines — so begin-sorted fragment streams merge into one
// begin-sorted stream and downstream streaming sweeps stay streaming.
// Each source holds at most one head row in the heap; the merge pulls a
// replacement only from the source it popped, which is what keeps
// per-fragment order intact.
type orderedMergeIter struct {
	ctx    context.Context
	schema tuple.Schema
	srcs   []rowSource
	heap   []mergeEntry
	inited bool
}

// mergeEntry is one heap element: a source's current head row with its
// interval endpoints cached, so every sift comparison is two raw int64
// compares instead of re-extracting tagged values from the row.
type mergeEntry struct {
	begin, end int64
	row        tuple.Tuple
	src        rowSource
}

func newMergeEntry(row tuple.Tuple, src rowSource) mergeEntry {
	n := len(row)
	return mergeEntry{begin: row[n-2].AsInt(), end: row[n-1].AsInt(), row: row, src: src}
}

func (it *orderedMergeIter) Schema() tuple.Schema { return it.schema }

func (it *orderedMergeIter) less(i, j int) bool {
	a, b := &it.heap[i], &it.heap[j]
	if a.begin != b.begin {
		return a.begin < b.begin
	}
	return a.end < b.end
}

func (it *orderedMergeIter) siftDown(i int) {
	n := len(it.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && it.less(l, s) {
			s = l
		}
		if r < n && it.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		it.heap[i], it.heap[s] = it.heap[s], it.heap[i]
		i = s
	}
}

func (it *orderedMergeIter) Next() (tuple.Tuple, bool) {
	if !it.inited {
		it.inited = true
		for _, src := range it.srcs {
			if row, ok := src.next(it.ctx); ok {
				it.heap = append(it.heap, newMergeEntry(row, src))
			}
		}
		for i := len(it.heap)/2 - 1; i >= 0; i-- {
			it.siftDown(i)
		}
	}
	if len(it.heap) == 0 {
		return nil, false
	}
	row := it.heap[0].row
	if nrow, ok := it.heap[0].src.next(it.ctx); ok {
		it.heap[0] = newMergeEntry(nrow, it.heap[0].src)
	} else {
		n := len(it.heap) - 1
		it.heap[0] = it.heap[n]
		it.heap[n] = mergeEntry{}
		it.heap = it.heap[:n]
	}
	it.siftDown(0)
	return row, true
}

func (it *orderedMergeIter) Close() {}

// startOrderedMerge is the order-preserving sibling of startMerge: one
// producer goroutine and one bounded channel per part (backpressure is
// safe here — the single consumer always drains the source it waits
// on), with the consumer k-way merging the heads by endpoint order.
// The merged stream is begin-sorted iff every part is.
func (e *executor) startOrderedMerge(parts []engine.RowIter, parent *engine.OpStats) engine.RowIter {
	st := parent.Child("Exchange:ordered-merge", fmt.Sprintf("fanin=%d", len(parts)))
	schema := parts[0].Schema()
	srcs := make([]rowSource, len(parts))
	for i, part := range parts {
		//lint:ignore orderedchan safe bounded buffer: the merge consumer always drains the exact source it waits on, so a full buffer here cannot stall the heap
		ch := make(chan batch, 2)
		srcs[i] = &chanCursor{ch: ch}
		part := part
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer close(ch)
			defer part.Close()
			e.drainInto(part, ch, st)
		}()
	}
	return engine.NewObsIter(engine.CheckOrdered("ordered merge exchange",
		&orderedMergeIter{ctx: e.ctx, schema: schema, srcs: srcs}), st)
}

// hashPartitionOrdered is the order-preserving repartition exchange:
// like hashPartition it hashes the key columns so value-equivalent
// groups never straddle partitions, but it partitions BEFORE any
// order-destroying merge — each producer feeds a private queue per
// partition (preserving its fragment's begin order as a subsequence)
// and every partition-side iterator k-way merges its per-producer
// queues by endpoint order. With begin-sorted sources, every partition
// stream is begin-sorted, which is what lets each worker run a
// STREAMING sweep over its partition. See batchQueue for why the
// per-(source, partition) transport must be unbounded.
func (e *executor) hashPartitionOrdered(srcs []engine.RowIter, keyIdx []int, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:ordered-partition", fmt.Sprintf("fanout=%d", e.workers))
	st.InitParts(e.workers)
	schema := srcs[0].Schema()
	queues := make([][]*batchQueue, len(srcs))
	for s := range queues {
		queues[s] = make([]*batchQueue, e.workers)
		for w := range queues[s] {
			queues[s][w] = newBatchQueue()
		}
	}
	for si, src := range srcs {
		si, src := si, src
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer src.Close()
			defer func() {
				for _, q := range queues[si] {
					q.closeQ()
				}
			}()
			bufs := make([]batch, e.workers)
			for i := range bufs {
				bufs[i] = make(batch, 0, e.morsel)
			}
			var scratch []byte
			for {
				row, ok := src.Next()
				if !ok {
					break
				}
				scratch = row.AppendKey(scratch[:0], keyIdx)
				i := int(keyHash(scratch) % uint32(e.workers))
				//lint:ignore rowretain partition buffering for transport; rows are forwarded downstream unmodified
				bufs[i] = append(bufs[i], row)
				if len(bufs[i]) == e.morsel {
					// The cancellation probe runs once per batch, not per
					// row: queue puts never block, so this is the only
					// teardown point and ctx.Err is not free. (No wait time
					// to record for the same reason — only batch counts.)
					if e.ctx.Err() != nil {
						return
					}
					queues[si][i].put(bufs[i])
					st.AddBatch()
					st.AddPartRows(i, len(bufs[i]))
					bufs[i] = make(batch, 0, e.morsel)
				}
			}
			for i := range bufs {
				if len(bufs[i]) > 0 {
					queues[si][i].put(bufs[i])
					st.AddBatch()
					st.AddPartRows(i, len(bufs[i]))
				}
			}
		}()
	}
	parts := make([]engine.RowIter, e.workers)
	for w := range parts {
		cursors := make([]rowSource, len(srcs))
		for s := range srcs {
			cursors[s] = &queueCursor{q: queues[s][w]}
		}
		parts[w] = engine.CheckOrdered("ordered repartition exchange",
			&orderedMergeIter{ctx: e.ctx, schema: schema, srcs: cursors})
	}
	return parts
}

// repartition converts a sequential stream into W worker-side iterators
// by round-robin batch distribution: a single distributor goroutine reads
// the source and every worker pulls from the shared bounded channel —
// morsel-driven scheduling for sources that are not indexable tables
// (e.g. the output of a blocking operator feeding a join probe side).
func (e *executor) repartition(src engine.RowIter, parent *engine.OpStats) []engine.RowIter {
	st := parent.Child("Exchange:repartition", fmt.Sprintf("fanout=%d", e.workers))
	schema := src.Schema()
	ch := make(chan batch, e.workers)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer close(ch)
		defer src.Close()
		e.drainInto(src, ch, st)
	}()
	parts := make([]engine.RowIter, e.workers)
	for i := range parts {
		parts[i] = &chanIter{ctx: e.ctx, schema: schema, cur: chanCursor{ch: ch}}
	}
	return parts
}
