// White-box regression tests for the exchange lifecycle: closing the
// CONSUMER-SIDE iterator of an exchange must cancel its producers,
// without any executor-level cancellation. Before the exchange refcount
// existed, mergeIter.Close and the partition-side Close were no-ops, so
// an early-closed inner exchange (e.g. a join side abandoned by a
// short-circuiting parent) stranded its producer goroutines on the
// bounded transport channel until the whole execution was torn down.
package parallel

import (
	"context"
	"testing"
	"time"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// sliceIter yields n synthetic period-encoded rows with ascending begin
// points. It is deliberately per-row only (no NextBatch), so producers
// exercise the transport batching loop regardless of the batch knob.
type sliceIter struct{ i, n int }

func (it *sliceIter) Schema() tuple.Schema { return tuple.NewSchema("v", "begin", "end") }

func (it *sliceIter) Next() (tuple.Tuple, bool) {
	if it.i >= it.n {
		return nil, false
	}
	i := int64(it.i)
	it.i++
	return tuple.Tuple{tuple.Int(i), tuple.Int(i), tuple.Int(i + 1)}, true
}

func (it *sliceIter) Close() {}

// waitProducers fails the test if the executor's fragment goroutines do
// not all exit shortly after the iterator-level Close under test.
func waitProducers(t *testing.T, e *executor) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer goroutines still blocked 5s after iterator-level Close (exchange not canceled)")
	}
}

// newTestExecutor builds an executor whose context is never canceled, so
// the only thing that can unblock a stranded producer is the exchange
// lifecycle itself.
func newTestExecutor(workers, batchSize int) *executor {
	return &executor{ctx: context.Background(), workers: workers, morsel: 8, batchSize: batchSize}
}

// Closing a merge-exchange iterator early must reap its producers even
// though the execution context stays live.
func TestMergeIterCloseUnblocksProducers(t *testing.T) {
	for _, batchSize := range []int{0, 8} {
		e := newTestExecutor(2, batchSize)
		it := e.startMerge([]engine.RowIter{&sliceIter{n: 100000}, &sliceIter{n: 100000}}, nil)
		if _, ok := it.Next(); !ok {
			t.Fatal("empty merge")
		}
		it.Close()
		it.Close() // idempotent: must not over-release the refcount
		waitProducers(t, e)
	}
}

// The ordered merge exchange has the same lifecycle obligation.
func TestOrderedMergeIterCloseUnblocksProducers(t *testing.T) {
	for _, batchSize := range []int{0, 8} {
		e := newTestExecutor(2, batchSize)
		it := e.startOrderedMerge([]engine.RowIter{&sliceIter{n: 100000}, &sliceIter{n: 100000}}, nil)
		if _, ok := it.Next(); !ok {
			t.Fatal("empty ordered merge")
		}
		it.Close()
		it.Close()
		waitProducers(t, e)
	}
}

// Closing every partition-side iterator of a repartition exchange must
// reap the distributor; closing only SOME of them must not, because the
// remaining consumers still share the transport channel. The refcount
// counts consumers, not "first Close wins".
func TestPartitionIterCloseRefcount(t *testing.T) {
	// All consumers closed early: the distributor must exit.
	e := newTestExecutor(4, 8)
	parts := e.repartition(&sliceIter{n: 100000}, nil)
	if _, ok := parts[0].Next(); !ok {
		t.Fatal("empty repartition")
	}
	for _, p := range parts {
		p.Close()
		p.Close()
	}
	waitProducers(t, e)

	// One consumer closed early: the survivor must still observe the
	// whole remaining stream, proving the early Close did not cancel.
	e = newTestExecutor(2, 8)
	const n = 1000
	parts = e.repartition(&sliceIter{n: n}, nil)
	parts[0].Close()
	got := 0
	for {
		if _, ok := parts[1].Next(); !ok {
			break
		}
		got++
	}
	if got == 0 {
		t.Fatal("surviving partition saw no rows: closing a sibling canceled the exchange")
	}
	parts[1].Close()
	waitProducers(t, e)
}

// A producer aborted by cancellation while blocked on a full transport
// channel must still record its backpressure wait: the cancel arm of
// the send select counts exactly like the send arm. Before the fix the
// wait was only recorded on a successful send, under-reporting
// backpressure precisely when the channel was most congested.
func TestSendRecordsWaitOnCancelArm(t *testing.T) {
	e := newTestExecutor(1, 0)
	col := engine.NewCollector()
	st := col.Root.Child("Exchange:test", "")
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan batch) // unbuffered, never received from
	done := make(chan bool)
	go func() {
		done <- e.send(ctx, ch, batch{tuple.Tuple{tuple.Int(0)}}, st, true)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if sent := <-done; sent {
		t.Fatal("send on a canceled exchange must report false")
	}
	if st.Wait() <= 0 {
		t.Fatalf("canceled send recorded no backpressure wait (wait=%v)", st.Wait())
	}
	if st.Batches() != 0 {
		t.Fatalf("canceled send must not count a batch, got %d", st.Batches())
	}
}
