package parallel

import (
	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// lazySweepIter runs one blocking sweep operator over one hash
// partition, inside the worker fragment that drains it: the partition
// is materialized on first Next (concurrently across workers, since
// every fragment runs in its own merge-producer goroutine), the sweep
// runs on it, and the result streams out. This is what turns the
// blocking sweeps into W-wide parallel operators: the partitioning key
// is the sweep's group key, so the per-partition sweeps are independent
// and their merged outputs form exactly the sequential result multiset.
type lazySweepIter struct {
	in     engine.RowIter
	schema tuple.Schema
	fn     func(*engine.Table) *engine.Table
	out    engine.RowIter
}

// newLazySweepIter wraps one partition with a sweep function; schema is
// the sweep's output schema.
func newLazySweepIter(in engine.RowIter, schema tuple.Schema, fn func(*engine.Table) *engine.Table) engine.RowIter {
	return &lazySweepIter{in: in, schema: schema, fn: fn}
}

func (it *lazySweepIter) Schema() tuple.Schema { return it.schema }

func (it *lazySweepIter) Next() (tuple.Tuple, bool) {
	if it.out == nil {
		it.out = engine.NewTableIter(it.fn(engine.Materialize(it.in)))
	}
	return it.out.Next()
}

func (it *lazySweepIter) Close() { it.in.Close() }

// lazyDiffIter is the two-input form of lazySweepIter for the fused
// difference sweep: both sides of one hash partition are materialized
// on first Next and diffed.
type lazyDiffIter struct {
	l, r   engine.RowIter
	schema tuple.Schema
	out    engine.RowIter
}

func newLazyDiffIter(l, r engine.RowIter, schema tuple.Schema) engine.RowIter {
	return &lazyDiffIter{l: l, r: r, schema: schema}
}

func (it *lazyDiffIter) Schema() tuple.Schema { return it.schema }

func (it *lazyDiffIter) Next() (tuple.Tuple, bool) {
	if it.out == nil {
		res, err := engine.TemporalDiff(engine.Materialize(it.l), engine.Materialize(it.r))
		if err != nil {
			// Unreachable: arity compatibility was checked at build time.
			res = &engine.Table{Schema: it.schema}
		}
		it.out = engine.NewTableIter(res)
	}
	return it.out.Next()
}

func (it *lazyDiffIter) Close() {
	it.l.Close()
	it.r.Close()
}
