package parallel

import (
	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// lazySweepIter runs one blocking sweep operator over one hash
// partition, inside the worker fragment that drains it: the partition
// is materialized on first Next (concurrently across workers, since
// every fragment runs in its own merge-producer goroutine), the sweep
// runs on it, and the result streams out. This is what turns the
// blocking sweeps into W-wide parallel operators: the partitioning key
// is the sweep's group key, so the per-partition sweeps are independent
// and their merged outputs form exactly the sequential result multiset.
// The ordered exchange + per-worker streaming sweeps supersede this on
// begin-sorted input; it remains the blocking ablation baseline.
//
// A failed partition drain or a failing fn ends the partition's stream
// with NO rows — a sweep over a truncated partition would be a silently
// wrong multiset — and the error propagates through Err per the
// error-carrying iterator protocol.
type lazySweepIter struct {
	in     engine.RowIter
	schema tuple.Schema
	fn     func(*engine.Table) (*engine.Table, error)
	out    engine.RowIter
	err    error
}

// newLazySweepIter wraps one partition with a sweep function; schema is
// the sweep's output schema.
func newLazySweepIter(in engine.RowIter, schema tuple.Schema, fn func(*engine.Table) (*engine.Table, error)) engine.RowIter {
	return &lazySweepIter{in: in, schema: schema, fn: fn}
}

func (it *lazySweepIter) Schema() tuple.Schema { return it.schema }

func (it *lazySweepIter) Next() (tuple.Tuple, bool) {
	if it.err != nil {
		return nil, false
	}
	if it.out == nil {
		t, err := engine.MaterializeErr(it.in)
		if err == nil {
			t, err = it.fn(t)
		}
		if err != nil {
			it.err = err
			return nil, false
		}
		it.out = engine.NewTableIter(t)
	}
	return it.out.Next()
}

// Err reports the partition drain or sweep failure, else delegates to
// the input (which may have recorded an error this iterator never
// observed because it was closed before the first Next).
func (it *lazySweepIter) Err() error { return engine.FirstErr(it.err, engine.IterErr(it.in)) }

// Close releases the input and, when Next already materialized the
// sweep, the result iterator too.
func (it *lazySweepIter) Close() {
	it.in.Close()
	if it.out != nil {
		it.out.Close()
	}
}

// lazyDiffIter is the two-input form of lazySweepIter for the fused
// difference sweep: both sides of one hash partition are materialized
// on first Next and diffed through fn. A failed drain on either side —
// or a failing fn — ends the stream with no rows and surfaces through
// Err.
type lazyDiffIter struct {
	l, r   engine.RowIter
	schema tuple.Schema
	fn     func(l, r *engine.Table) (*engine.Table, error)
	out    engine.RowIter
	err    error
}

func newLazyDiffIter(l, r engine.RowIter, schema tuple.Schema, fn func(l, r *engine.Table) (*engine.Table, error)) engine.RowIter {
	return &lazyDiffIter{l: l, r: r, schema: schema, fn: fn}
}

func (it *lazyDiffIter) Schema() tuple.Schema { return it.schema }

func (it *lazyDiffIter) Next() (tuple.Tuple, bool) {
	if it.err != nil {
		return nil, false
	}
	if it.out == nil {
		lt, lErr := engine.MaterializeErr(it.l)
		rt, rErr := engine.MaterializeErr(it.r)
		if err := engine.FirstErr(lErr, rErr); err != nil {
			it.err = err
			return nil, false
		}
		t, err := it.fn(lt, rt)
		if err != nil {
			it.err = err
			return nil, false
		}
		it.out = engine.NewTableIter(t)
	}
	return it.out.Next()
}

// Err reports the drain or diff failure, else delegates to the inputs.
func (it *lazyDiffIter) Err() error {
	return engine.FirstErr(it.err, engine.IterErr(it.l), engine.IterErr(it.r))
}

// Close releases both inputs and, when Next already materialized the
// diff, the result iterator too.
func (it *lazyDiffIter) Close() {
	it.l.Close()
	it.r.Close()
	if it.out != nil {
		it.out.Close()
	}
}
