package parallel

import (
	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// lazySweepIter runs one blocking sweep operator over one hash
// partition, inside the worker fragment that drains it: the partition
// is materialized on first Next (concurrently across workers, since
// every fragment runs in its own merge-producer goroutine), the sweep
// runs on it, and the result streams out. This is what turns the
// blocking sweeps into W-wide parallel operators: the partitioning key
// is the sweep's group key, so the per-partition sweeps are independent
// and their merged outputs form exactly the sequential result multiset.
// The ordered exchange + per-worker streaming sweeps supersede this on
// begin-sorted input; it remains the blocking ablation baseline.
//
// fn must be pre-validated at build time (the compile functions resolve
// schemas and arities against an empty input before spawning fragments)
// so it cannot fail at runtime — on an invariant violation it panics
// rather than returning a silently truncated result.
type lazySweepIter struct {
	in     engine.RowIter
	schema tuple.Schema
	fn     func(*engine.Table) *engine.Table
	out    engine.RowIter
}

// newLazySweepIter wraps one partition with a sweep function; schema is
// the sweep's output schema.
func newLazySweepIter(in engine.RowIter, schema tuple.Schema, fn func(*engine.Table) *engine.Table) engine.RowIter {
	return &lazySweepIter{in: in, schema: schema, fn: fn}
}

func (it *lazySweepIter) Schema() tuple.Schema { return it.schema }

func (it *lazySweepIter) Next() (tuple.Tuple, bool) {
	if it.out == nil {
		it.out = engine.NewTableIter(it.fn(engine.Materialize(it.in)))
	}
	return it.out.Next()
}

// Close releases the input and, when Next already materialized the
// sweep, the result iterator too.
func (it *lazySweepIter) Close() {
	it.in.Close()
	if it.out != nil {
		it.out.Close()
	}
}

// lazyDiffIter is the two-input form of lazySweepIter for the fused
// difference sweep: both sides of one hash partition are materialized
// on first Next and diffed through fn, which buildDiff pre-validates
// (arity compatibility is the only failure mode of the diff sweep and
// is checked before any fragment spawns).
type lazyDiffIter struct {
	l, r   engine.RowIter
	schema tuple.Schema
	fn     func(l, r *engine.Table) *engine.Table
	out    engine.RowIter
}

func newLazyDiffIter(l, r engine.RowIter, schema tuple.Schema, fn func(l, r *engine.Table) *engine.Table) engine.RowIter {
	return &lazyDiffIter{l: l, r: r, schema: schema, fn: fn}
}

func (it *lazyDiffIter) Schema() tuple.Schema { return it.schema }

func (it *lazyDiffIter) Next() (tuple.Tuple, bool) {
	if it.out == nil {
		it.out = engine.NewTableIter(it.fn(engine.Materialize(it.l), engine.Materialize(it.r)))
	}
	return it.out.Next()
}

// Close releases both inputs and, when Next already materialized the
// diff, the result iterator too.
func (it *lazyDiffIter) Close() {
	it.l.Close()
	it.r.Close()
	if it.out != nil {
		it.out.Close()
	}
}
