package parallel

import (
	"fmt"

	"snapk/internal/engine"
)

// AnnotatePlacement fills the Placement fields of an EXPLAIN tree with
// the fragment and exchange decisions Exec's build() would make for p at
// the given worker count: morsel-partitioned scans, replicated fragment
// pipelines, the exchange kind feeding each sweep (order-preserving or
// not), and the sequential materialization boundaries. It is a static
// mirror of build()'s branching over the isomorphic tree that
// engine.ExplainPlan produces — when build() changes a placement
// decision, change the matching case here (the explain shape tests
// compare the two). workers follows the same convention as
// Options.Workers (values below 1 mean GOMAXPROCS; callers should
// resolve that first for stable output).
func AnnotatePlacement(db *engine.DB, p engine.Plan, n *engine.ExplainNode, workers int) {
	annotatePlacement(db, p, n, workers)
}

// annotatePlacement mirrors build(): it returns whether the stream is
// partitioned into fragments and whether it carries the begin order —
// the two physical properties build() tracks in pstream.
func annotatePlacement(db *engine.DB, p engine.Plan, n *engine.ExplainNode, workers int) (parted, ordered bool) {
	child := func(i int) *engine.ExplainNode {
		if i < len(n.Children) {
			return n.Children[i]
		}
		return &engine.ExplainNode{} // defensive: tree not isomorphic
	}
	switch t := p.(type) {
	case engine.ScanP:
		ordered = db.ScanBeginSorted(t.Name)
		if workers <= 1 {
			n.Placement = "sequential scan"
			return false, ordered
		}
		n.Placement = fmt.Sprintf("morsel scan ×%d", workers)
		return true, ordered
	case engine.FilterP:
		parted, ordered = annotatePlacement(db, t.In, child(0), workers)
		n.Placement = fragmentsOrSequential(parted, workers)
		return parted, ordered
	case engine.ProjectP:
		parted, ordered = annotatePlacement(db, t.In, child(0), workers)
		n.Placement = fragmentsOrSequential(parted, workers)
		return parted, ordered
	case engine.JoinP:
		annotatePlacement(db, t.L, child(0), workers)
		annotatePlacement(db, t.R, child(1), workers)
		if !joinHasEquiKey(db, t) {
			n.Placement = "sequential overlap sweep over merged inputs"
			return false, false
		}
		if workers <= 1 {
			n.Placement = "sequential probe, build drained via merge"
			return false, false
		}
		n.Placement = fmt.Sprintf("shared build, probe fragments ×%d", workers)
		return true, false
	case engine.UnionP:
		lp, _ := annotatePlacement(db, t.L, child(0), workers)
		rp, _ := annotatePlacement(db, t.R, child(1), workers)
		if !lp && !rp {
			n.Placement = "sequential"
			return false, false
		}
		n.Placement = fmt.Sprintf("paired fragments ×%d", workers)
		return true, false
	case engine.DiffP:
		annotatePlacement(db, t.L, child(0), workers)
		annotatePlacement(db, t.R, child(1), workers)
		if workers > 1 {
			if t.Streaming {
				n.Placement = fmt.Sprintf("fragments ×%d via ordered-partition ×2", workers)
			} else {
				n.Placement = fmt.Sprintf("fragments ×%d via hash-partition ×2", workers)
			}
			return true, false
		}
		if t.Streaming {
			n.Placement = "sequential sweep over ordered inputs"
		} else {
			n.Placement = "sequential sweep, inputs materialized"
		}
		return false, false
	case engine.AggP:
		annotatePlacement(db, t.In, child(0), workers)
		streaming := t.Streaming && t.PreAgg
		if workers > 1 && len(t.GroupBy) > 0 {
			if streaming {
				n.Placement = fmt.Sprintf("fragments ×%d via ordered-partition", workers)
			} else {
				n.Placement = fmt.Sprintf("fragments ×%d via hash-partition", workers)
			}
			return true, false
		}
		if streaming {
			n.Placement = "sequential sweep over ordered input"
		} else {
			n.Placement = "sequential sweep, input materialized"
		}
		return false, false
	case engine.CoalesceP:
		annotatePlacement(db, t.In, child(0), workers)
		if workers > 1 {
			if t.Streaming {
				n.Placement = fmt.Sprintf("fragments ×%d via ordered-partition", workers)
			} else {
				n.Placement = fmt.Sprintf("fragments ×%d via hash-partition", workers)
			}
			return true, false
		}
		if t.Streaming {
			n.Placement = "sequential sweep over ordered input"
		} else {
			n.Placement = "sequential sweep, input materialized"
		}
		return false, false
	case engine.SortP:
		annotatePlacement(db, t.In, child(0), workers)
		n.Placement = "sequential materialization boundary"
		return false, true
	case engine.WindowP:
		// Window wraps its input fragments in place (mapStream), so it
		// inherits the child's partitioning; clipping preserves begin
		// order. On the pruned path the child is still a scan — its
		// morsel/sequential annotation stays accurate, the prune only
		// shrinks the row range the morsel counters divide.
		parted, ordered = annotatePlacement(db, t.In, child(0), workers)
		n.Placement = fragmentsOrSequential(parted, workers)
		return parted, ordered
	default:
		return false, false
	}
}

func fragmentsOrSequential(parted bool, workers int) string {
	if parted {
		return fmt.Sprintf("fragments ×%d", workers)
	}
	return "sequential"
}

// joinHasEquiKey reports whether buildJoin would pick the partitioned
// hash-join path (an equality conjunct exists) rather than the
// sequential overlap-sweep fallback. Schema errors report false, like
// explain's join detail: placement annotation never fails on a plan the
// executor would reject with a better error.
func joinHasEquiKey(db *engine.DB, t engine.JoinP) bool {
	lData, lErr := db.PlanDataSchema(t.L)
	rData, rErr := db.PlanDataSchema(t.R)
	if lErr != nil || rErr != nil {
		return false
	}
	prep, err := engine.PrepareJoin(lData, rData, t.Pred)
	return err == nil && prep.HasEquiKey()
}
