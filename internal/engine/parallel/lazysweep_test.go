package parallel

import (
	"errors"
	"testing"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// errAfterIter yields n rows and then ends with err — a minimal
// error-carrying input for exercising the lazy sweep iterators'
// failure path (which replaced the old mustValidated panic sites).
type errAfterIter struct {
	schema tuple.Schema
	rows   []tuple.Tuple
	i      int
	err    error
}

func (it *errAfterIter) Schema() tuple.Schema { return it.schema }

func (it *errAfterIter) Next() (tuple.Tuple, bool) {
	if it.i < len(it.rows) {
		row := it.rows[it.i]
		it.i++
		return row, true
	}
	return nil, false
}

func (it *errAfterIter) Err() error { return it.err }

func (it *errAfterIter) Close() {}

func periodSchema2() tuple.Schema {
	return tuple.Schema{Cols: []string{"v", "ts", "te"}}
}

// TestLazySweepPropagatesDrainError pins the behavior that replaced the
// mustValidated panic: a failed partition drain yields NO rows from the
// lazy sweep (a sweep over a truncated partition would be a silently
// wrong multiset) and the drain error surfaces through Err.
func TestLazySweepPropagatesDrainError(t *testing.T) {
	boom := errors.New("boom")
	in := &errAfterIter{schema: periodSchema2(), rows: []tuple.Tuple{
		{tuple.Int(1), tuple.Int(0), tuple.Int(10)},
	}, err: boom}
	it := newLazySweepIter(in, periodSchema2(), func(tb *engine.Table) (*engine.Table, error) {
		return tb, nil
	})
	defer it.Close()
	if _, ok := it.Next(); ok {
		t.Fatal("lazy sweep over a failed partition must yield no rows")
	}
	if err := engine.IterErr(it); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}

// TestLazySweepPropagatesFnError pins that a failing sweep function —
// an executor bug by construction, since build validates against an
// empty input — propagates as a query error instead of panicking or
// yielding an empty partition.
func TestLazySweepPropagatesFnError(t *testing.T) {
	boom := errors.New("sweep bug")
	in := &errAfterIter{schema: periodSchema2()}
	it := newLazySweepIter(in, periodSchema2(), func(tb *engine.Table) (*engine.Table, error) {
		return nil, boom
	})
	defer it.Close()
	if _, ok := it.Next(); ok {
		t.Fatal("lazy sweep with a failing fn must yield no rows")
	}
	if err := engine.IterErr(it); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}

// TestLazyDiffPropagatesDrainError pins the two-input form: a failure
// on either side fails the whole partition diff.
func TestLazyDiffPropagatesDrainError(t *testing.T) {
	boom := errors.New("right side boom")
	l := &errAfterIter{schema: periodSchema2()}
	r := &errAfterIter{schema: periodSchema2(), err: boom}
	it := newLazyDiffIter(l, r, periodSchema2(), func(lt, rt *engine.Table) (*engine.Table, error) {
		return engine.TemporalDiff(lt, rt)
	})
	defer it.Close()
	if _, ok := it.Next(); ok {
		t.Fatal("lazy diff over a failed partition must yield no rows")
	}
	if err := engine.IterErr(it); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
}
