package parallel_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// waitForGoroutines polls until the goroutine count drops back to at
// most base, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("fragment goroutines leaked: %d running, want <= %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// Canceling the context mid-stream over a large parallel pipeline must
// tear down every fragment goroutine (scan workers, distributor, merge
// producers), and Close must be idempotent afterwards.
func TestCancelMidStreamReapsFragments(t *testing.T) {
	db := bigPipelineDB(20000)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	it, err := parallel.Exec(ctx, db, bigPipelinePlan(), parallel.Options{Workers: 4, MorselSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Consume a few rows so the exchange is in flight, then cancel.
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("pipeline exhausted before cancellation; enlarge the dataset")
		}
	}
	cancel()
	// After cancellation the stream must terminate.
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	it.Close()
	it.Close() // idempotent
	waitForGoroutines(t, base)
}

// Closing the root iterator without cancellation or exhaustion must also
// reap all fragment goroutines.
func TestCloseMidStreamReapsFragments(t *testing.T) {
	db := bigPipelineDB(20000)
	base := runtime.NumGoroutine()
	it, err := parallel.Exec(context.Background(), db, bigPipelinePlan(), parallel.Options{Workers: 4, MorselSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("empty pipeline")
	}
	it.Close()
	it.Close()
	waitForGoroutines(t, base)
}

// A fully drained parallel execution must leave no goroutines behind
// even before Close is called, and Close must stay safe after natural
// exhaustion.
func TestDrainedStreamLeavesNoFragments(t *testing.T) {
	db := bigPipelineDB(4000)
	base := runtime.NumGoroutine()
	it, err := parallel.Exec(context.Background(), db, bigPipelinePlan(), parallel.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tbl := engine.Materialize(it)
	if tbl.Len() == 0 {
		t.Fatal("empty result")
	}
	it.Close()
	waitForGoroutines(t, base)
}
