package engine

import (
	"snapk/internal/algebra"
	"snapk/internal/interval"
)

// This file is the statistics side of the cost-aware planner: per-table
// interval statistics (row count, distinct data tuples, min/max
// interval endpoints, a small begin-endpoint histogram) cached on Table
// next to the sortedness metadata, and the plan-wide cardinality
// estimator built on them. Estimates drive the physical planner pass in
// package rewrite — build-side selection, hash-table pre-sizing,
// zone-map scan pruning and adaptive worker counts — and annotate every
// EXPLAIN node with est_rows. They are heuristics: useful for ordering
// decisions, never for correctness.

// HistBuckets is the resolution of the per-table begin-endpoint
// histogram: small enough to compute and cache cheaply, fine enough to
// rank time-window selectivities.
const HistBuckets = 16

// TableStats is one table's cached interval statistics. A computed
// stats value is immutable: mutating table methods drop the cache
// rather than patching it, and the next Stats call recomputes.
type TableStats struct {
	// Rows is the stored row count (counting duplicates).
	Rows int64
	// MinBegin and MaxEnd bound the stored validity intervals; only
	// meaningful when Rows > 0.
	MinBegin interval.Time
	MaxEnd   interval.Time
	// DistinctData counts distinct data tuples (period attributes
	// excluded) — the group-key/join-key cardinality proxy.
	DistinctData int64
	// AvgLen is the mean interval length, used to shift the begin
	// histogram when estimating overlap (a row overlaps a window ending
	// after its begin only if it also lives long enough).
	AvgLen float64
	// Hist counts row begins per bucket over [MinBegin, MaxEnd).
	Hist [HistBuckets]int64
}

// Bounds returns the min/max endpoint envelope of the stored intervals,
// or ok=false for an empty table.
func (s *TableStats) Bounds() (interval.Interval, bool) {
	if s == nil || s.Rows == 0 {
		return interval.Interval{}, false
	}
	return interval.Interval{Begin: s.MinBegin, End: s.MaxEnd}, true
}

// fracBeginBelow estimates the fraction of rows whose begin is < t from
// the histogram, interpolating linearly inside the covering bucket.
func (s *TableStats) fracBeginBelow(t interval.Time) float64 {
	if s.Rows == 0 {
		return 0
	}
	span := s.MaxEnd - s.MinBegin
	if span <= 0 {
		return 1
	}
	if t <= s.MinBegin {
		return 0
	}
	if t >= s.MaxEnd {
		return 1
	}
	pos := float64(t-s.MinBegin) / float64(span) * HistBuckets
	bucket := int(pos)
	if bucket >= HistBuckets {
		bucket = HistBuckets - 1
	}
	var below int64
	for i := 0; i < bucket; i++ {
		below += s.Hist[i]
	}
	frac := float64(below) + float64(s.Hist[bucket])*(pos-float64(bucket))
	return frac / float64(s.Rows)
}

// WindowSelectivity estimates the fraction of rows whose validity
// interval overlaps w. A row [b, e) overlaps [c, d) iff b < d and
// e > c; the begin histogram bounds the first condition directly and
// approximates the second by shifting c left by the mean interval
// length (rows beginning before c − AvgLen have, on average, ended).
func (s *TableStats) WindowSelectivity(w interval.Interval) float64 {
	if s == nil || s.Rows == 0 || !w.Valid() {
		return 0
	}
	if b, ok := s.Bounds(); !ok || !b.Overlaps(w) {
		return 0
	}
	frac := s.fracBeginBelow(w.End) - s.fracBeginBelow(w.Begin-interval.Time(s.AvgLen))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Stats returns the table's interval statistics, computing and caching
// them on first use. The cache is an atomic pointer: concurrent
// planners may race to compute, but both compute the same immutable
// value and every reader sees a complete one — no lock on the read
// path, no torn stats under -race. Mutating methods (Append, SetRows,
// InvalidateMeta) drop the cache; Sort and SortByEndpoints keep it,
// since every statistic is a multiset property invariant under row
// permutation.
func (t *Table) Stats() *TableStats {
	if s := t.stats.Load(); s != nil {
		return s
	}
	s := t.computeStats()
	t.stats.Store(s)
	return s
}

func (t *Table) computeStats() *TableStats {
	s := &TableStats{Rows: int64(len(t.Rows))}
	if s.Rows == 0 {
		return s
	}
	distinct := make(map[string]struct{})
	n := t.DataArity()
	var scratch []byte
	var lenSum int64
	for i, row := range t.Rows {
		iv := rowInterval(row)
		if i == 0 || iv.Begin < s.MinBegin {
			s.MinBegin = iv.Begin
		}
		if i == 0 || iv.End > s.MaxEnd {
			s.MaxEnd = iv.End
		}
		lenSum += iv.Len()
		scratch = row[:n].AppendKey(scratch[:0], nil)
		distinct[string(scratch)] = struct{}{}
	}
	s.DistinctData = int64(len(distinct))
	s.AvgLen = float64(lenSum) / float64(s.Rows)
	span := s.MaxEnd - s.MinBegin
	for _, row := range t.Rows {
		bucket := 0
		if span > 0 {
			bucket = int((rowInterval(row).Begin - s.MinBegin) * HistBuckets / span)
			if bucket >= HistBuckets {
				bucket = HistBuckets - 1
			}
		}
		s.Hist[bucket]++
	}
	return s
}

// EndpointBounds returns the min/max endpoint envelope of the stored
// intervals (the zone map a windowed scan is pruned against), or
// ok=false for an empty table. Tables loaded through Append answer from
// incrementally maintained metadata in O(1); others compute (and cache)
// the full statistics once.
func (t *Table) EndpointBounds() (interval.Interval, bool) {
	if len(t.Rows) == 0 {
		return interval.Interval{}, false
	}
	if t.meta.bounds == propTrue {
		return interval.Interval{Begin: t.meta.minBegin, End: t.meta.maxEnd}, true
	}
	return t.Stats().Bounds()
}

// Predicate selectivity heuristics — the textbook defaults. They only
// rank plans (build sides, worker counts), so crude constants beat no
// estimate.
const (
	selEq      = 0.1
	selCmp     = 1.0 / 3
	selNe      = 0.9
	selIsNull  = 0.1
	selDefault = 0.5
)

// predSelectivity estimates the fraction of rows a predicate passes.
func predSelectivity(e algebra.Expr) float64 {
	switch n := e.(type) {
	case algebra.Const:
		if algebra.Truthy(n.Val) {
			return 1
		}
		return 0
	case algebra.Not:
		return 1 - predSelectivity(n.E)
	case algebra.IsNullExpr:
		return selIsNull
	case algebra.BinOp:
		switch n.Op {
		case algebra.OpAnd:
			return predSelectivity(n.L) * predSelectivity(n.R)
		case algebra.OpOr:
			l, r := predSelectivity(n.L), predSelectivity(n.R)
			return l + r - l*r
		case algebra.OpEq:
			return selEq
		case algebra.OpNe:
			return selNe
		case algebra.OpLt, algebra.OpLe, algebra.OpGt, algebra.OpGe:
			return selCmp
		}
	}
	return selDefault
}

// estScale scales a non-negative input estimate by a selectivity
// fraction, clamped to [1, in] — a selection never grows its input, and
// rounding a non-empty estimate to zero would make every plan above it
// look free.
func estScale(in int64, frac float64) int64 {
	if in <= 0 {
		return 0
	}
	out := int64(float64(in)*frac + 0.5)
	if out < 1 {
		out = 1
	}
	if out > in {
		out = in
	}
	return out
}

// EstimateRows estimates the output cardinality of p from stored-table
// statistics, or -1 when p references an unknown table. Scans are
// exact; everything above is heuristic (Filter by predicate
// selectivity, joins by the distinct-key rule |L|·|R|/max(d_L, d_R),
// windows by the endpoint histogram, aggregation by split fan-out). The
// estimates drive build-side selection, hash pre-sizing and adaptive
// worker counts, and annotate every EXPLAIN node with est_rows.
func (db *DB) EstimateRows(p Plan) int64 {
	switch n := p.(type) {
	case ScanP:
		t, err := db.Table(n.Name)
		if err != nil {
			return -1
		}
		return int64(t.Len())
	case FilterP:
		in := db.EstimateRows(n.In)
		if in < 0 {
			return -1
		}
		return estScale(in, predSelectivity(n.Pred))
	case ProjectP:
		return db.EstimateRows(n.In)
	case SortP:
		return db.EstimateRows(n.In)
	case WindowP:
		in := db.EstimateRows(n.In)
		if in < 0 {
			return -1
		}
		return estScale(in, db.windowSelectivity(n.T, n.In))
	case UnionP:
		l, r := db.EstimateRows(n.L), db.EstimateRows(n.R)
		if l < 0 || r < 0 {
			return -1
		}
		return l + r
	case JoinP:
		return db.estimateJoin(n)
	case DiffP:
		// The monus only removes: the left input bounds the output.
		return db.EstimateRows(n.L)
	case AggP:
		in := db.EstimateRows(n.In)
		if in < 0 {
			return -1
		}
		if len(n.GroupBy) == 0 {
			// The global split emits one row per segment between
			// consecutive endpoints, gap rows included: at most 2·rows+1
			// segments, capped by the domain size.
			out := 2*in + 1
			if s := db.dom.Size(); out > s {
				out = s
			}
			return out
		}
		// Grouped: one run of segments per group key. Distinct-tuple
		// stats bound the key count when the input chain exposes them.
		if d := db.estimateDistinct(n.In); d >= 0 {
			out := 2 * d
			if out < 1 {
				out = 1
			}
			if in > 0 && out > 2*in {
				out = 2 * in
			}
			return out
		}
		return estScale(in, selCmp)
	case CoalesceP:
		// Coalescing only merges: the input bounds the output.
		return db.EstimateRows(n.In)
	default:
		return -1
	}
}

// estimateJoin applies the distinct-key join estimate when an equality
// conjunct exists (|L|·|R| / max(d_L, d_R), with distinct data tuples
// standing in for distinct keys), and a fixed overlap selectivity for
// the interval-overlap sweep fallback.
func (db *DB) estimateJoin(n JoinP) int64 {
	l, r := db.EstimateRows(n.L), db.EstimateRows(n.R)
	if l < 0 || r < 0 {
		return -1
	}
	if l == 0 || r == 0 {
		return 0
	}
	hasKey := false
	if lData, err := db.PlanDataSchema(n.L); err == nil {
		if rData, err := db.PlanDataSchema(n.R); err == nil {
			if prep, err := PrepareJoin(lData, rData, n.Pred); err == nil {
				hasKey = prep.HasEquiKey()
			}
		}
	}
	if !hasKey {
		// Overlap sweep: temporal selectivity only. Assume a tenth of
		// the cross product overlaps.
		return estScale(l*r, selEq)
	}
	d := db.estimateDistinct(n.L)
	if rd := db.estimateDistinct(n.R); rd > d {
		d = rd
	}
	if d <= 0 {
		// No key statistics: a foreign-key-shaped join keeps roughly the
		// larger side's cardinality.
		if l > r {
			return l
		}
		return r
	}
	out := l * r / d
	if out < 1 {
		out = 1
	}
	return out
}

// estimateDistinct bounds the number of distinct data tuples a plan
// produces, or -1 when no stored-table statistics apply. Filter and
// Window only remove rows, so the base table's distinct count (capped
// by the node's own row estimate) stays an upper bound; Project
// rewrites the data columns, ending the chain.
func (db *DB) estimateDistinct(p Plan) int64 {
	switch n := p.(type) {
	case ScanP:
		t, err := db.Table(n.Name)
		if err != nil {
			return -1
		}
		return t.Stats().DistinctData
	case FilterP:
		return db.capDistinct(db.estimateDistinct(n.In), p)
	case WindowP:
		return db.capDistinct(db.estimateDistinct(n.In), p)
	case SortP:
		return db.estimateDistinct(n.In)
	case CoalesceP:
		return db.estimateDistinct(n.In)
	default:
		return -1
	}
}

func (db *DB) capDistinct(d int64, p Plan) int64 {
	if d < 0 {
		return -1
	}
	if est := db.EstimateRows(p); est >= 0 && est < d {
		return est
	}
	return d
}

// windowSelectivity estimates the fraction of a plan's rows that
// overlap window T: from the base table's endpoint histogram when the
// input chain reaches a scan, otherwise from the window's share of the
// whole time domain.
func (db *DB) windowSelectivity(T interval.Interval, in Plan) float64 {
	if !T.Valid() {
		return 0
	}
	if s := db.baseStats(in); s != nil {
		return s.WindowSelectivity(T)
	}
	w, ok := T.Intersect(db.dom.All())
	if !ok || db.dom.Size() == 0 {
		return 0
	}
	return float64(w.Len()) / float64(db.dom.Size())
}

// baseStats walks through the row-preserving operators to the
// underlying stored table's statistics, or nil when the chain ends
// elsewhere.
func (db *DB) baseStats(p Plan) *TableStats {
	switch n := p.(type) {
	case ScanP:
		t, err := db.Table(n.Name)
		if err != nil {
			return nil
		}
		return t.Stats()
	case FilterP:
		return db.baseStats(n.In)
	case ProjectP:
		return db.baseStats(n.In)
	case SortP:
		return db.baseStats(n.In)
	case WindowP:
		return db.baseStats(n.In)
	default:
		return nil
	}
}
