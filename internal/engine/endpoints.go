package engine

import (
	"sort"

	"snapk/internal/tuple"
)

// This file is the single source of truth for interval-endpoint order
// over period-encoded rows. Every operator that sorts by or relies on
// endpoint order — the sort enforcer, the streaming sweeps, the overlap
// join, Table.Sort and IsCoalesced — goes through these helpers, so the
// sort semantics cannot drift between per-file copies.

// CompareEndpoints compares two period rows by (begin, end), the
// canonical interval-endpoint order of the sweep operators. Direct
// comparisons, not subtraction: extreme timestamps (e.g. int64
// sentinels for ±infinity in user-supplied domains) must not overflow.
func CompareEndpoints(a, b tuple.Tuple) int {
	na, nb := len(a), len(b)
	switch ab, bb := a[na-2].AsInt(), b[nb-2].AsInt(); {
	case ab < bb:
		return -1
	case ab > bb:
		return 1
	}
	switch ae, be := a[na-1].AsInt(), b[nb-1].AsInt(); {
	case ae < be:
		return -1
	case ae > be:
		return 1
	default:
		return 0
	}
}

// EndpointLess reports whether a precedes b in endpoint order.
func EndpointLess(a, b tuple.Tuple) bool { return CompareEndpoints(a, b) < 0 }

// SortRowsByEndpoints sorts rows in place into endpoint order.
func SortRowsByEndpoints(rows []tuple.Tuple) {
	sort.SliceStable(rows, func(i, j int) bool { return EndpointLess(rows[i], rows[j]) })
}

// RowsBeginSorted reports whether rows are already ordered by ascending
// interval begin — the physical property the streaming sweep operators
// require of their input.
func RowsBeginSorted(rows []tuple.Tuple) bool {
	for i := 1; i < len(rows); i++ {
		if rowInterval(rows[i]).Begin < rowInterval(rows[i-1]).Begin {
			return false
		}
	}
	return true
}
