//go:build snapdebug

package engine

import (
	"strings"
	"testing"

	"snapk/internal/tuple"
)

// prow builds a one-data-column period row.
func prow(a, begin, end int64) tuple.Tuple {
	return tuple.Tuple{tuple.Int(a), tuple.Int(begin), tuple.Int(end)}
}

func mustPanic(t *testing.T, substrs []string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a snapdebug panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected a string panic, got %T: %v", r, r)
		}
		for _, s := range substrs {
			if !strings.Contains(msg, s) {
				t.Errorf("panic %q does not name %q", msg, s)
			}
		}
	}()
	fn()
}

func TestSnapdebugActive(t *testing.T) {
	if !DebugChecks() {
		t.Fatal("DebugChecks() must report true under -tags snapdebug")
	}
}

// TestCheckOrderedPanics feeds a deliberately out-of-begin-order stream
// through CheckOrdered and requires a panic naming the operator.
func TestCheckOrderedPanics(t *testing.T) {
	tbl := &Table{
		Schema: PeriodSchema(tuple.NewSchema("a")),
		Rows:   []tuple.Tuple{prow(1, 5, 6), prow(2, 3, 4)},
	}
	it := CheckOrdered("test sweep operator", NewTableIter(tbl))
	mustPanic(t, []string{"test sweep operator", "out of begin order"}, func() {
		for {
			if _, ok := it.Next(); !ok {
				return
			}
		}
	})
}

func TestCheckOrderedAcceptsSorted(t *testing.T) {
	tbl := &Table{
		Schema: PeriodSchema(tuple.NewSchema("a")),
		Rows:   []tuple.Tuple{prow(1, 3, 9), prow(2, 3, 4), prow(3, 5, 6)},
	}
	it := CheckOrdered("test sweep operator", NewTableIter(tbl))
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	it.Close()
	if n != 3 {
		t.Fatalf("wrapper dropped rows: got %d of 3", n)
	}
}

// mutatingIter yields the same backing row twice and mutates it in
// between — the PR 1 aliasing corruption, reproduced on purpose.
type mutatingIter struct {
	row tuple.Tuple
	n   int
}

func (it *mutatingIter) Schema() tuple.Schema { return PeriodSchema(tuple.NewSchema("a")) }

func (it *mutatingIter) Next() (tuple.Tuple, bool) {
	if it.n >= 2 {
		return nil, false
	}
	it.n++
	if it.n == 2 {
		it.row[0] = tuple.Int(99)
	}
	return it.row, true
}

func (it *mutatingIter) Close() {}

// TestCheckNoAliasPanics feeds a stream whose producer mutates a
// previously yielded row through CheckNoAlias and requires a panic
// naming the operator.
func TestCheckNoAliasPanics(t *testing.T) {
	it := CheckNoAlias("mutating test operator", &mutatingIter{row: prow(1, 0, 4)})
	mustPanic(t, []string{"mutating test operator", "mutated a yielded row"}, func() {
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		it.Close()
	})
}

// TestCheckNoAliasAcceptsSharedBacking pins that re-yielding the same
// unmutated backing array (scans of one stored table, self-unions) is
// NOT a violation — only observable mutation is.
func TestCheckNoAliasAcceptsSharedBacking(t *testing.T) {
	shared := prow(1, 0, 4)
	tbl := &Table{
		Schema: PeriodSchema(tuple.NewSchema("a")),
		Rows:   []tuple.Tuple{shared, shared},
	}
	it := CheckNoAlias("shared backing scan", NewTableIter(tbl))
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	it.Close()
	if n != 2 {
		t.Fatalf("wrapper dropped rows: got %d of 2", n)
	}
}
