package engine

// Tests for the timeslice operator τ_T: the materializing clip
// (ClipWindow), the streaming iterator (NewWindowIter, both drive
// protocols), the zone-map scan prune (PruneWindowScan) and the shared
// prefix view it selects. The three forms must agree row-for-row — the
// prune is a pure access-path optimization.

import (
	"testing"

	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// windowTable loads one row per (begin, end) pair, tagging each with its
// index so clipped rows stay identifiable.
func windowTable(ivs ...interval.Interval) *Table {
	t := NewTable(tuple.NewSchema("id"))
	for i, iv := range ivs {
		t.Append(tuple.Tuple{tuple.Int(int64(i))}, iv, 1)
	}
	return t
}

func TestClipWindowSemantics(t *testing.T) {
	in := windowTable(
		interval.New(0, 5),   // left of the window: dropped
		interval.New(3, 12),  // straddles the left edge: clipped to [10, 12)
		interval.New(11, 14), // inside: unchanged
		interval.New(5, 30),  // covers the window: clipped to [10, 20)
		interval.New(18, 25), // straddles the right edge: clipped to [18, 20)
		interval.New(20, 26), // adjacent on the right: dropped (end-exclusive)
	)
	got := ClipWindow(in, interval.New(10, 20))
	want := []struct {
		id   int64
		b, e int64
	}{{1, 10, 12}, {2, 11, 14}, {3, 10, 20}, {4, 18, 20}}
	if got.Len() != len(want) {
		t.Fatalf("clip kept %d rows, want %d:\n%s", got.Len(), len(want), got)
	}
	for i, w := range want {
		row := got.Rows[i]
		iv := rowInterval(row)
		if row[0].AsInt() != w.id || iv.Begin != w.b || iv.End != w.e {
			t.Fatalf("row %d = id=%d %s, want id=%d [%d, %d)", i, row[0].AsInt(), iv, w.id, w.b, w.e)
		}
	}
	// Stored rows are immutable engine-wide: clipping must not have
	// written through the input's backing arrays.
	if iv := rowInterval(in.Rows[3]); iv != interval.New(5, 30) {
		t.Fatalf("ClipWindow mutated its input row: %s", iv)
	}
	// A row whose interval is unchanged is passed through, not copied.
	if &got.Rows[1][0] != &in.Rows[2][0] {
		t.Fatal("unclipped row must be shared, not reallocated")
	}
}

// An invalid (zero) window clips everything: "no window" is expressed by
// not applying the operator, never by a zero T.
func TestClipWindowZeroWindowClipsAll(t *testing.T) {
	in := windowTable(interval.New(0, 5), interval.New(3, 9))
	if got := ClipWindow(in, interval.Interval{}); got.Len() != 0 {
		t.Fatalf("zero window kept %d rows, want 0", got.Len())
	}
}

// Clipping maps begin to max(begin, T.Begin) — monotone — so a
// begin-sorted input stays begin-sorted and the metadata must say so
// without a rescan.
func TestClipWindowPreservesSortedMetadata(t *testing.T) {
	sorted := windowTable(interval.New(1, 6), interval.New(3, 9), interval.New(7, 15))
	if sorted.meta.sorted != propTrue {
		t.Fatal("fixture must load known-sorted")
	}
	out := ClipWindow(sorted, interval.New(4, 12))
	if out.meta.sorted != propTrue || !out.BeginSorted() {
		t.Fatalf("clip of a known-sorted table must stay known-sorted, got state %d", out.meta.sorted)
	}
	// Appending in begin order must extend the recorded run: lastBegin
	// has to reflect the clipped begins, not the input's.
	out.Append(tuple.Tuple{tuple.Int(99)}, interval.New(7, 9), 1)
	if out.meta.sorted != propTrue {
		t.Fatal("in-order append after clip must stay known-sorted")
	}
	unsorted := windowTable(interval.New(7, 15), interval.New(1, 6))
	if got := ClipWindow(unsorted, interval.New(0, 20)); got.meta.sorted != propUnknown {
		t.Fatalf("clip of an unsorted table must not claim order, got state %d", got.meta.sorted)
	}
}

// The streaming iterator must agree with ClipWindow on both drive
// protocols — per-row Next and NextBatch.
func TestWindowIterMatchesClipWindow(t *testing.T) {
	in := windowTable(
		interval.New(0, 5), interval.New(3, 12), interval.New(11, 14),
		interval.New(5, 30), interval.New(18, 25), interval.New(20, 26),
	)
	T := interval.New(10, 20)
	want := ClipWindow(in, T)

	it := NewWindowIter(NewTableIter(in), T)
	var rows []tuple.Tuple
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	it.Close()
	assertWindowRows(t, "Next drive", rows, want)

	it = NewWindowIter(NewTableIter(in), T)
	batch := NewRowBatch(2) // smaller than the survivor count: multiple batches
	rows = nil
	bi, ok := it.(BatchIter)
	if !ok {
		t.Fatal("window iterator must implement the batch protocol")
	}
	for bi.NextBatch(batch) {
		rows = append(rows, batch.Rows...)
	}
	it.Close()
	if err := IterErr(it); err != nil {
		t.Fatal(err)
	}
	assertWindowRows(t, "NextBatch drive", rows, want)
}

func assertWindowRows(t *testing.T, drive string, rows []tuple.Tuple, want *Table) {
	t.Helper()
	if len(rows) != want.Len() {
		t.Fatalf("%s: %d rows, want %d", drive, len(rows), want.Len())
	}
	for i, row := range rows {
		if row.Key() != want.Rows[i].Key() {
			t.Fatalf("%s: row %d = %v, want %v", drive, i, row, want.Rows[i])
		}
	}
}

func TestPruneWindowScan(t *testing.T) {
	sorted := windowTable(
		interval.New(0, 4), interval.New(2, 9), interval.New(5, 7),
		interval.New(12, 20), interval.New(30, 35),
	)
	if !sorted.BeginSorted() {
		t.Fatal("fixture must be begin-sorted")
	}

	// Sorted prefix: rows with begin ≥ T.End can never overlap. For
	// T=[3, 6) the first such row is index 3 (begin 12).
	hi, skip := PruneWindowScan(sorted, interval.New(3, 6))
	if skip || hi != 3 {
		t.Fatalf("prune(sorted, [3,6)) = (%d, %v), want (3, false)", hi, skip)
	}
	// The prefix bound loses no rows: clipping the prefix equals clipping
	// the whole table.
	T := interval.New(3, 6)
	if a, b := ClipWindow(sorted.Prefix(hi), T), ClipWindow(sorted, T); a.Len() != b.Len() {
		t.Fatalf("prefix clip kept %d rows, full clip %d", a.Len(), b.Len())
	}

	// Window before every begin: nothing can overlap, whole scan skipped.
	if _, skip := PruneWindowScan(sorted, interval.New(-10, 0)); !skip {
		t.Fatal("window left of every interval must skip the scan")
	}
	// Envelope-disjoint window on the right: skipped via the zone map.
	if _, skip := PruneWindowScan(sorted, interval.New(40, 50)); !skip {
		t.Fatal("window right of the endpoint envelope must skip the scan")
	}
	// Invalid window and empty table always skip.
	if _, skip := PruneWindowScan(sorted, interval.Interval{}); !skip {
		t.Fatal("invalid window must skip")
	}
	if _, skip := PruneWindowScan(NewTable(tuple.NewSchema("id")), interval.New(0, 1)); !skip {
		t.Fatal("empty table must skip")
	}

	// Unsorted table inside the envelope: no prefix bound, scan it all.
	unsorted := windowTable(interval.New(12, 20), interval.New(0, 4))
	hi, skip = PruneWindowScan(unsorted, interval.New(1, 3))
	if skip || hi != unsorted.Len() {
		t.Fatalf("prune(unsorted) = (%d, %v), want (%d, false)", hi, skip, unsorted.Len())
	}
	// ...but the envelope check still applies without order.
	if _, skip := PruneWindowScan(unsorted, interval.New(25, 30)); !skip {
		t.Fatal("envelope-disjoint window must skip even unsorted tables")
	}
}

func TestTablePrefix(t *testing.T) {
	tb := windowTable(interval.New(1, 5), interval.New(2, 8), interval.New(6, 9))
	p := tb.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("Prefix(2) has %d rows", p.Len())
	}
	// Shared backing, not a copy.
	if &p.Rows[0][0] != &tb.Rows[0][0] {
		t.Fatal("Prefix must share the backing rows")
	}
	// The capped slice must not allow appends to clobber row 2.
	p.Append(tuple.Tuple{tuple.Int(9)}, interval.New(7, 10), 1)
	if got := tb.Rows[2][0].AsInt(); got != 2 {
		t.Fatalf("append to prefix overwrote the parent's row: id=%d", got)
	}
	if p.meta.sorted != propTrue || !p.BeginSorted() {
		t.Fatal("prefix of a begin-sorted table must stay known-sorted")
	}
	if got := tb.Prefix(99); got != tb {
		t.Fatal("an over-long prefix must return the table itself")
	}
}
