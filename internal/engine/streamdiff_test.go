package engine_test

import (
	"testing"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// diffTable builds a single-column period table from (value, begin,
// end, mult) quadruples, in the given order.
func diffTable(rows ...[4]int64) *engine.Table {
	t := engine.NewTable(tuple.NewSchema("v"))
	for _, r := range rows {
		t.Append(tuple.Tuple{tuple.Int(r[0])}, interval.New(r[1], r[2]), r[3])
	}
	return t
}

// streamDiff runs the streaming difference over begin-sorted copies of
// l and r and materializes the result.
func streamDiff(t *testing.T, l, r *engine.Table) *engine.Table {
	t.Helper()
	ls, rs := l.Clone(), r.Clone()
	ls.SortByEndpoints()
	rs.SortByEndpoints()
	it, err := engine.NewStreamDiffIter(engine.NewTableIter(ls), engine.NewTableIter(rs))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	return engine.Materialize(it)
}

// TestStreamDiffMatchesBlocking pins the streaming merge sweep to the
// blocking TemporalDiff multiset on handcrafted shapes: monus
// truncation, zero-net-delta boundaries, duplicates, right-only groups,
// same-instant begin/end cancellation and empty sides.
func TestStreamDiffMatchesBlocking(t *testing.T) {
	cases := []struct {
		name string
		l, r *engine.Table
	}{
		{"empty-both", diffTable(), diffTable()},
		{"empty-right", diffTable([4]int64{1, 0, 10, 2}), diffTable()},
		{"empty-left", diffTable(), diffTable([4]int64{1, 0, 10, 2})},
		{"disjoint-groups", diffTable([4]int64{1, 0, 5, 1}, [4]int64{2, 3, 8, 1}), diffTable([4]int64{1, 2, 4, 1})},
		{"monus-truncation", diffTable([4]int64{1, 0, 4, 1}), diffTable([4]int64{1, 1, 3, 2})},
		{"overtaken-then-recovers", diffTable([4]int64{1, 0, 10, 2}), diffTable([4]int64{1, 2, 6, 3})},
		{"zero-delta-boundary", diffTable([4]int64{1, 0, 2, 1}, [4]int64{1, 2, 4, 1}), diffTable()},
		{"same-instant-cancel", diffTable([4]int64{1, 0, 4, 1}), diffTable([4]int64{1, 4, 8, 1})},
		{"right-only-group", diffTable([4]int64{1, 0, 4, 1}), diffTable([4]int64{2, 0, 4, 5})},
		{"duplicates", diffTable([4]int64{1, 0, 8, 3}), diffTable([4]int64{1, 2, 5, 1})},
		{"interleaved-sides", diffTable([4]int64{1, 0, 6, 1}, [4]int64{1, 3, 9, 1}), diffTable([4]int64{1, 1, 4, 1}, [4]int64{1, 5, 7, 1})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := engine.TemporalDiff(c.l, c.r)
			if err != nil {
				t.Fatal(err)
			}
			got := streamDiff(t, c.l, c.r)
			if !sameCounts(multisetKeys(want), multisetKeys(got)) {
				t.Fatalf("streaming diff diverges from blocking:\nleft:\n%s\nright:\n%s\nwant:\n%s\ngot:\n%s", c.l, c.r, want, got)
			}
		})
	}
}

// TestStreamDiffUnsortedInputPanics: the planner contract says both
// inputs arrive begin-sorted; violations must be loud.
func TestStreamDiffUnsortedInputPanics(t *testing.T) {
	for _, side := range []string{"left", "right"} {
		sorted := diffTable([4]int64{1, 0, 5, 1}, [4]int64{1, 3, 8, 1})
		unsorted := diffTable([4]int64{1, 6, 9, 1}, [4]int64{1, 2, 4, 1})
		l, r := sorted, unsorted
		if side == "left" {
			l, r = unsorted, sorted
		}
		it, err := engine.NewStreamDiffIter(engine.NewTableIter(l), engine.NewTableIter(r))
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer it.Close()
			defer func() {
				if recover() == nil {
					t.Fatalf("%s input out of order must panic", side)
				}
			}()
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		}()
	}
}

// TestStreamDiffArityMismatch: incompatible inputs error up front and
// both children are closed.
func TestStreamDiffArityMismatch(t *testing.T) {
	l := engine.NewTable(tuple.NewSchema("a"))
	r := engine.NewTable(tuple.NewSchema("a", "b"))
	if _, err := engine.NewStreamDiffIter(engine.NewTableIter(l), engine.NewTableIter(r)); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

// TestTemporalDiffDeterministicOrder is the regression test for the
// map-iteration nondeterminism of the blocking difference: repeated
// identical calls must emit rows in the identical order (groups in
// first-seen order), because the cursor API exposes emission order
// directly.
func TestTemporalDiffDeterministicOrder(t *testing.T) {
	var l, r *engine.Table
	{
		l = engine.NewTable(tuple.NewSchema("v"))
		r = engine.NewTable(tuple.NewSchema("v"))
		for i := int64(0); i < 40; i++ {
			l.Append(tuple.Tuple{tuple.Int(i % 13)}, interval.New(i, i+5), 1)
			r.Append(tuple.Tuple{tuple.Int(i % 7)}, interval.New(i+1, i+3), 1)
		}
	}
	ref, err := engine.TemporalDiff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("test input produced an empty difference; pick a denser input")
	}
	for run := 0; run < 10; run++ {
		got, err := engine.TemporalDiff(l, r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("run %d: %d rows, want %d", run, got.Len(), ref.Len())
		}
		for i := range got.Rows {
			if got.Rows[i].Key() != ref.Rows[i].Key() {
				t.Fatalf("run %d: row %d = %v, want %v — blocking diff output order is nondeterministic", run, i, got.Rows[i], ref.Rows[i])
			}
		}
	}
}

// TestStreamDiffDeterministicOrder: the streaming difference must also
// stream identical row order run to run, including the end-of-input
// flush (first-seen group order, not map order).
func TestStreamDiffDeterministicOrder(t *testing.T) {
	l := engine.NewTable(tuple.NewSchema("v"))
	r := engine.NewTable(tuple.NewSchema("v"))
	for i := int64(0); i < 40; i++ {
		// Many groups still open at end of input, so the flush path has
		// real work to order.
		l.Append(tuple.Tuple{tuple.Int(i % 11)}, interval.New(i, 100), 1)
		r.Append(tuple.Tuple{tuple.Int(i % 5)}, interval.New(i, 90), 1)
	}
	ref := streamDiff(t, l, r)
	if ref.Len() == 0 {
		t.Fatal("test input produced an empty difference; pick a denser input")
	}
	for run := 0; run < 10; run++ {
		got := streamDiff(t, l, r)
		if got.Len() != ref.Len() {
			t.Fatalf("run %d: %d rows, want %d", run, got.Len(), ref.Len())
		}
		for i := range got.Rows {
			if got.Rows[i].Key() != ref.Rows[i].Key() {
				t.Fatalf("run %d: row %d = %v, want %v — streaming diff output order is nondeterministic", run, i, got.Rows[i], ref.Rows[i])
			}
		}
	}
}

// countingIter counts the rows pulled through it.
type countingIter struct {
	engine.RowIter
	n *int
}

func (it countingIter) Next() (tuple.Tuple, bool) {
	row, ok := it.RowIter.Next()
	if ok {
		*it.n++
	}
	return row, ok
}

// TestStreamDiffEmitsIncrementally: the streaming difference must
// produce output long before either input is drained — the observable
// face of "no materialization".
func TestStreamDiffEmitsIncrementally(t *testing.T) {
	const groups = 1000
	l := engine.NewTable(tuple.NewSchema("v"))
	r := engine.NewTable(tuple.NewSchema("v"))
	for i := int64(0); i < groups; i++ {
		l.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i*10, i*10+6), 1)
		r.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i*10+2, i*10+4), 1)
	}
	var ln, rn int
	it, err := engine.NewStreamDiffIter(
		countingIter{engine.NewTableIter(l), &ln},
		countingIter{engine.NewTableIter(r), &rn},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, ok := it.Next(); !ok {
		t.Fatal("difference is empty")
	}
	if ln+rn > 20 {
		t.Fatalf("first output row only after %d+%d input rows — the sweep is buffering, not streaming", ln, rn)
	}
}
