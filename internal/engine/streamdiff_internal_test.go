package engine

import (
	"testing"

	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// TestStreamDiffPeakState is the peak-state assertion of the streaming
// difference: over an input whose groups close one after another, the
// live state (group map, expiry heap, per-group end heaps, output
// queue) must stay O(open intervals + active groups) — bounded by a
// small constant here — while thousands of rows stream through. A
// regression that silently materializes an input shows up as the group
// map or an end heap growing with the input.
func TestStreamDiffPeakState(t *testing.T) {
	const groups = 2000
	l := NewTable(tuple.NewSchema("v"))
	r := NewTable(tuple.NewSchema("v"))
	for i := int64(0); i < groups; i++ {
		// Group i lives in [i*10, i*10+6): fully closed before group i+1
		// begins, so at most two groups are ever live (the one being
		// evicted and the one arriving).
		l.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i*10, i*10+6), 2)
		r.Append(tuple.Tuple{tuple.Int(i)}, interval.New(i*10+2, i*10+4), 1)
	}
	iter, err := NewStreamDiffIter(NewTableIter(l), NewTableIter(r))
	if err != nil {
		t.Fatal(err)
	}
	defer iter.Close()
	sd := iter.(*streamDiffIter)
	var peakGroups, peakExpiry, peakEnds, peakQueue, rows int
	for {
		_, ok := iter.Next()
		if !ok {
			break
		}
		rows++
		if len(sd.groups) > peakGroups {
			peakGroups = len(sd.groups)
		}
		if sd.expiry.len() > peakExpiry {
			peakExpiry = sd.expiry.len()
		}
		for _, g := range sd.groups {
			if g.ends.len() > peakEnds {
				peakEnds = g.ends.len()
			}
		}
		if len(sd.queue) > peakQueue {
			peakQueue = len(sd.queue)
		}
	}
	if rows == 0 {
		t.Fatal("difference is empty")
	}
	// Each group holds 2 left + 1 right open interval at most; with one
	// group arriving while its predecessor retires, every structure must
	// stay constant-bounded. The bounds leave generous slack: the point
	// is O(1) vs O(n).
	if peakGroups > 4 || peakExpiry > 8 || peakEnds > 6 || peakQueue > 16 {
		t.Fatalf("streaming diff state grew beyond O(active): peak groups %d, expiry %d, ends %d, queue %d over %d input groups",
			peakGroups, peakExpiry, peakEnds, peakQueue, groups)
	}
}
