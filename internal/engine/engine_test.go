package engine

import (
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)
var alg = telement.NewMAlgebra[int64](semiring.N, dom)

func str(s string) tuple.Value { return tuple.String_(s) }

func worksTable() *Table {
	t := NewTable(tuple.NewSchema("name", "skill"))
	t.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	t.Append(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	t.Append(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	t.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	return t
}

func assignTable() *Table {
	t := NewTable(tuple.NewSchema("mach", "skill"))
	t.Append(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	t.Append(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	t.Append(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return t
}

func exampleDB() *DB {
	db := NewDB(dom)
	db.AddTable("works", worksTable())
	db.AddTable("assign", assignTable())
	return db
}

// mustMultiset collects (stringified row → count) for comparison.
func multiset(t *Table) map[string]int {
	m := map[string]int{}
	for _, r := range t.Rows {
		m[r.Key()]++
	}
	return m
}

func TestTableBasics(t *testing.T) {
	w := worksTable()
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.DataArity() != 2 {
		t.Fatalf("DataArity = %d", w.DataArity())
	}
	if !w.DataSchema().Equal(tuple.NewSchema("name", "skill")) {
		t.Fatalf("DataSchema = %v", w.DataSchema())
	}
	if got := w.Interval(w.Rows[0]); got != interval.New(3, 10) {
		t.Fatalf("Interval = %v", got)
	}
	// Append with mult and invalid interval.
	w.Append(tuple.Tuple{str("X"), str("SP")}, interval.Interval{}, 5)
	if w.Len() != 4 {
		t.Error("invalid interval should not append")
	}
	w.Append(tuple.Tuple{str("X"), str("SP")}, interval.New(0, 1), 3)
	if w.Len() != 7 {
		t.Errorf("Len after mult append = %d", w.Len())
	}
	if !strings.Contains(w.String(), "_begin") {
		t.Error("String missing period columns")
	}
}

func TestPeriodEncRoundtrip(t *testing.T) {
	w := worksTable()
	rel := w.ToPeriodRelation(alg)
	if rel.Len() != 3 {
		t.Fatalf("decoded relation has %d tuples", rel.Len())
	}
	ann := rel.Annotation(tuple.Tuple{str("Ann"), str("SP")})
	if ann.NumSegs() != 2 {
		t.Fatalf("Ann annotation = %v", ann)
	}
	back := FromPeriodRelation(rel)
	if !EqualAsPeriodRelations(w, back, alg) {
		t.Fatal("PERIODENC roundtrip lost information")
	}
}

func TestFilter(t *testing.T) {
	got, err := Filter(worksTable(), algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("filtered %d rows, want 3", got.Len())
	}
	if _, err := Filter(worksTable(), algebra.Col("zzz")); err == nil {
		t.Fatal("bad predicate must error")
	}
}

func TestProjectCarriesPeriods(t *testing.T) {
	got, err := Project(worksTable(), []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(tuple.NewSchema("skill", BeginCol, EndCol)) {
		t.Fatalf("schema = %v", got.Schema)
	}
	if got.Len() != 4 {
		t.Fatalf("Len = %d", got.Len())
	}
	if got.Interval(got.Rows[0]) != interval.New(3, 10) {
		t.Fatalf("period not carried: %v", got.Rows[0])
	}
	if _, err := Project(worksTable(), []algebra.NamedExpr{{Name: "x", E: algebra.Col("zzz")}}); err == nil {
		t.Fatal("bad projection must error")
	}
}

func TestUnionAll(t *testing.T) {
	l, _ := Project(worksTable(), []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}})
	r, _ := Project(assignTable(), []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}})
	u, err := UnionAll(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 7 {
		t.Fatalf("Len = %d", u.Len())
	}
	if _, err := UnionAll(worksTable(), r); err == nil {
		t.Fatal("incompatible union must error")
	}
}

func TestTemporalJoinHashPath(t *testing.T) {
	// works ⋈ assign on skill: equality extracted as hash key.
	got, err := TemporalJoin(worksTable(), assignTable(),
		algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")))
	if err != nil {
		t.Fatal(err)
	}
	if !got.DataSchema().Equal(tuple.NewSchema("name", "skill", "mach", "r.skill")) {
		t.Fatalf("schema = %v", got.Schema)
	}
	// Ann[3,10) × M1[3,12) → [3,10); Ann × M2[6,14) → [6,10); Sam[8,16) ×
	// M1 → [8,12); Sam × M2 → [8,14); Joe[8,16) × M3[3,16) → [8,16);
	// Ann[18,20) overlaps nothing.
	want := 5
	if got.Len() != want {
		t.Fatalf("join produced %d rows, want %d:\n%s", got.Len(), want, got)
	}
	rel := got.ToPeriodRelation(alg)
	ann := rel.Annotation(tuple.Tuple{str("Ann"), str("SP"), str("M1"), str("SP")})
	if ann.NumSegs() != 1 || ann.Segs()[0].Iv != interval.New(3, 10) {
		t.Fatalf("Ann×M1 = %v", ann)
	}
}

func TestTemporalJoinResidualPredicate(t *testing.T) {
	// Join with a non-equality residual: skill match AND mach <> 'M1'.
	got, err := TemporalJoin(worksTable(), assignTable(), algebra.And(
		algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
		algebra.Ne(algebra.Col("mach"), algebra.StrC("M1")),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range got.Rows {
		if row[2].AsString() == "M1" {
			t.Fatalf("residual predicate not applied: %v", row)
		}
	}
	if got.Len() != 3 {
		t.Fatalf("join produced %d rows, want 3", got.Len())
	}
}

func TestTemporalJoinCrossProduct(t *testing.T) {
	// No equality conjunct: degenerate hash join on empty key must still
	// produce the overlap cross product.
	got, err := TemporalJoin(worksTable(), assignTable(), algebra.BoolC(true))
	if err != nil {
		t.Fatal(err)
	}
	// 3 works rows overlap all 3 assign rows; Ann[18,20) overlaps none.
	if got.Len() != 9 {
		t.Fatalf("cross join produced %d rows, want 9", got.Len())
	}
}

func TestSplitDef83(t *testing.T) {
	// Figure 3-style input: one tuple with overlapping periods.
	in := NewTable(tuple.NewSchema("sal"))
	in.Append(tuple.Tuple{tuple.Int(30)}, interval.New(3, 13), 1)
	in.Append(tuple.Tuple{tuple.Int(30)}, interval.New(3, 10), 1)
	got := Split(in, in, []int{0})
	// Endpoints {3, 10, 13} split [3,13) into [3,10), [10,13).
	m := multiset(got)
	wantRows := [][3]int64{{30, 3, 10}, {30, 3, 10}, {30, 10, 13}}
	if len(got.Rows) != 3 {
		t.Fatalf("split produced %d rows:\n%s", len(got.Rows), got)
	}
	for _, w := range wantRows {
		key := tuple.Tuple{tuple.Int(w[0]), tuple.Int(w[1]), tuple.Int(w[2])}.Key()
		if m[key] == 0 {
			t.Fatalf("missing split row %v:\n%s", w, got)
		}
	}
	// Pairs of intervals in one group are now equal or disjoint.
	for _, a := range got.Rows {
		for _, b := range got.Rows {
			ia, ib := got.Interval(a), got.Interval(b)
			if ia != ib && ia.Overlaps(ib) {
				t.Fatalf("split left overlapping distinct intervals %v, %v", ia, ib)
			}
		}
	}
}

func TestCoalesceExample53(t *testing.T) {
	// Figure 3 / Example 5.3: {[3,10), [3,13)} for value 30k coalesces to
	// [3,10)×2 and [10,13)×1.
	in := NewTable(tuple.NewSchema("sal"))
	in.Append(tuple.Tuple{tuple.Int(30)}, interval.New(3, 13), 1)
	in.Append(tuple.Tuple{tuple.Int(30)}, interval.New(3, 10), 1)
	for _, impl := range []CoalesceImpl{CoalesceNative, CoalesceAnalytic} {
		got := Coalesce(in, impl)
		m := multiset(got)
		if m[tuple.Tuple{tuple.Int(30), tuple.Int(3), tuple.Int(10)}.Key()] != 2 {
			t.Fatalf("impl %d: missing [3,10)×2:\n%s", impl, got)
		}
		if m[tuple.Tuple{tuple.Int(30), tuple.Int(10), tuple.Int(13)}.Key()] != 1 {
			t.Fatalf("impl %d: missing [10,13)×1:\n%s", impl, got)
		}
		if got.Len() != 3 {
			t.Fatalf("impl %d: %d rows", impl, got.Len())
		}
	}
}

func TestCoalesceMergesAdjacentEqualMultiplicity(t *testing.T) {
	in := NewTable(tuple.NewSchema("x"))
	in.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
	in.Append(tuple.Tuple{tuple.Int(1)}, interval.New(5, 9), 1)
	got := Coalesce(in, CoalesceNative)
	if got.Len() != 1 || got.Interval(got.Rows[0]) != interval.New(0, 9) {
		t.Fatalf("adjacent equal rows must merge:\n%s", got)
	}
	if !IsCoalesced(got, CoalesceNative) {
		t.Fatal("coalesced output not detected as coalesced")
	}
	if IsCoalesced(in, CoalesceNative) {
		t.Fatal("uncoalesced input detected as coalesced")
	}
}

func TestTemporalDiffFigure1c(t *testing.T) {
	l, _ := Project(assignTable(), []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}})
	r, _ := Project(worksTable(), []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}})
	d, err := TemporalDiff(l, r)
	if err != nil {
		t.Fatal(err)
	}
	rel := Coalesce(d, CoalesceNative).ToPeriodRelation(alg)
	sp := rel.Annotation(tuple.Tuple{str("SP")})
	wantSP := alg.Coalesce([]telement.Seg[int64]{
		{Iv: interval.New(6, 8), Val: 1}, {Iv: interval.New(10, 12), Val: 1},
	})
	if !sp.Equal(wantSP) {
		t.Fatalf("SP = %v, want %v", sp, wantSP)
	}
	ns := rel.Annotation(tuple.Tuple{str("NS")})
	wantNS := alg.Singleton(interval.New(3, 8), 1)
	if !ns.Equal(wantNS) {
		t.Fatalf("NS = %v, want %v", ns, wantNS)
	}
	if _, err := TemporalDiff(worksTable(), l); err == nil {
		t.Fatal("incompatible diff must error")
	}
}

func TestTemporalAggregateFigure1b(t *testing.T) {
	sp, _ := Filter(worksTable(), algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")))
	for _, preAgg := range []bool{true, false} {
		got, err := TemporalAggregate(sp, nil, []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}, preAgg, dom)
		if err != nil {
			t.Fatal(err)
		}
		rel := Coalesce(got, CoalesceNative).ToPeriodRelation(alg)
		want := map[int64]telement.Element[int64]{
			0: alg.Coalesce([]telement.Seg[int64]{{Iv: interval.New(0, 3), Val: 1}, {Iv: interval.New(16, 18), Val: 1}, {Iv: interval.New(20, 24), Val: 1}}),
			1: alg.Coalesce([]telement.Seg[int64]{{Iv: interval.New(3, 8), Val: 1}, {Iv: interval.New(10, 16), Val: 1}, {Iv: interval.New(18, 20), Val: 1}}),
			2: alg.Singleton(interval.New(8, 10), 1),
		}
		if rel.Len() != len(want) {
			t.Fatalf("preAgg=%v: result has %d tuples: %v", preAgg, rel.Len(), rel)
		}
		for cnt, w := range want {
			gotAnn := rel.Annotation(tuple.Tuple{tuple.Int(cnt)})
			if !gotAnn.Equal(w) {
				t.Fatalf("preAgg=%v: cnt=%d annotation = %v, want %v", preAgg, cnt, gotAnn, w)
			}
		}
	}
}

func TestTemporalAggregateGrouped(t *testing.T) {
	for _, preAgg := range []bool{true, false} {
		got, err := TemporalAggregate(worksTable(), []string{"skill"},
			[]algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}, preAgg, dom)
		if err != nil {
			t.Fatal(err)
		}
		rel := Coalesce(got, CoalesceNative).ToPeriodRelation(alg)
		// SP: 1 on [3,8), 2 on [8,10), 1 on [10,16), 1 on [18,20).
		sp1 := rel.Annotation(tuple.Tuple{str("SP"), tuple.Int(1)})
		wantSP1 := alg.Coalesce([]telement.Seg[int64]{
			{Iv: interval.New(3, 8), Val: 1}, {Iv: interval.New(10, 16), Val: 1}, {Iv: interval.New(18, 20), Val: 1},
		})
		if !sp1.Equal(wantSP1) {
			t.Fatalf("preAgg=%v: (SP,1) = %v, want %v", preAgg, sp1, wantSP1)
		}
		// No gap rows for groups: nothing outside the group's lifetime.
		for _, e := range rel.Entries() {
			if e.Tuple[1].Kind() == tuple.KindInt && e.Tuple[1].AsInt() == 0 {
				t.Fatalf("preAgg=%v: grouped aggregation must not emit count-0 rows: %v", preAgg, e)
			}
		}
	}
}

func TestTemporalAggregateMinMaxSumAvg(t *testing.T) {
	in := NewTable(tuple.NewSchema("g", "v"))
	in.Append(tuple.Tuple{str("a"), tuple.Int(10)}, interval.New(0, 10), 1)
	in.Append(tuple.Tuple{str("a"), tuple.Int(4)}, interval.New(5, 15), 1)
	for _, preAgg := range []bool{true, false} {
		got, err := TemporalAggregate(in, []string{"g"}, []algebra.AggSpec{
			{Fn: krel.Min, Arg: "v", As: "mn"},
			{Fn: krel.Max, Arg: "v", As: "mx"},
			{Fn: krel.Sum, Arg: "v", As: "sm"},
			{Fn: krel.Avg, Arg: "v", As: "av"},
			{Fn: krel.Count, Arg: "v", As: "ct"},
		}, preAgg, dom)
		if err != nil {
			t.Fatal(err)
		}
		rel := Coalesce(got, CoalesceNative).ToPeriodRelation(alg)
		check := func(iv interval.Interval, mn, mx, sm int64, av float64, ct int64) {
			t.Helper()
			row := tuple.Tuple{str("a"), tuple.Int(mn), tuple.Int(mx), tuple.Int(sm), tuple.Float(av), tuple.Int(ct)}
			ann := rel.Annotation(row)
			if !ann.Equal(alg.Singleton(iv, 1)) {
				t.Fatalf("preAgg=%v: %v expected on %v, got %v\nfull: %v", preAgg, row, iv, ann, rel)
			}
		}
		check(interval.New(0, 5), 10, 10, 10, 10, 1)
		check(interval.New(5, 10), 4, 10, 14, 7, 2)
		check(interval.New(10, 15), 4, 4, 4, 4, 1)
	}
}

func TestTemporalAggregateEmptyGlobal(t *testing.T) {
	in := NewTable(tuple.NewSchema("v"))
	for _, preAgg := range []bool{true, false} {
		got, err := TemporalAggregate(in, nil, []algebra.AggSpec{
			{Fn: krel.CountStar, As: "cnt"}, {Fn: krel.Sum, Arg: "v", As: "s"},
		}, preAgg, dom)
		if err != nil {
			t.Fatal(err)
		}
		c := Coalesce(got, CoalesceNative)
		if c.Len() != 1 {
			t.Fatalf("preAgg=%v: empty global agg = %d rows:\n%s", preAgg, c.Len(), c)
		}
		row := c.Rows[0]
		if row[0].AsInt() != 0 || !row[1].IsNull() {
			t.Fatalf("preAgg=%v: row = %v, want (0, NULL)", preAgg, row)
		}
		if c.Interval(row) != dom.All() {
			t.Fatalf("preAgg=%v: interval = %v", preAgg, c.Interval(row))
		}
	}
}

func TestTemporalAggregateErrors(t *testing.T) {
	in := NewTable(tuple.NewSchema("v"))
	if _, err := TemporalAggregate(in, []string{"zzz"}, []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, true, dom); err == nil {
		t.Fatal("unknown group column must error")
	}
	if _, err := TemporalAggregate(in, nil, []algebra.AggSpec{{Fn: krel.Sum, Arg: "zzz", As: "s"}}, true, dom); err == nil {
		t.Fatal("unknown agg column must error")
	}
}

func TestDBExecPlan(t *testing.T) {
	db := exampleDB()
	plan := CoalesceP{Impl: CoalesceNative, In: AggP{
		Aggs:   []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		PreAgg: true,
		In:     FilterP{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: ScanP{Name: "works"}},
	}}
	got, err := db.Exec(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 7 {
		t.Fatalf("Qonduty result has %d rows, want 7 (Figure 1b):\n%s", got.Len(), got)
	}
	if !IsCoalesced(got, CoalesceNative) {
		t.Fatal("final result not coalesced")
	}
}

func TestDBExecAllNodes(t *testing.T) {
	db := exampleDB()
	plans := []Plan{
		ScanP{Name: "works"},
		ProjectP{Exprs: []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}}, In: ScanP{Name: "works"}},
		UnionP{
			L: ProjectP{Exprs: []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}}, In: ScanP{Name: "works"}},
			R: ProjectP{Exprs: []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}}, In: ScanP{Name: "assign"}},
		},
		DiffP{
			L: ProjectP{Exprs: []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}}, In: ScanP{Name: "assign"}},
			R: ProjectP{Exprs: []algebra.NamedExpr{{Name: "skill", E: algebra.Col("skill")}}, In: ScanP{Name: "works"}},
		},
		JoinP{L: ScanP{Name: "works"}, R: ScanP{Name: "assign"}, Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill"))},
	}
	for _, p := range plans {
		if _, err := db.Exec(p); err != nil {
			t.Fatalf("Exec(%s): %v", p, err)
		}
	}
	if _, err := db.Exec(ScanP{Name: "nope"}); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := db.RelationSchema("nope"); err == nil {
		t.Fatal("unknown schema must error")
	}
	if s, err := db.RelationSchema("works"); err != nil || !s.Equal(tuple.NewSchema("name", "skill")) {
		t.Fatalf("RelationSchema = %v, %v", s, err)
	}
}

func TestPlanStringAndCountCoalesce(t *testing.T) {
	p := CoalesceP{In: AggP{PreAgg: true, In: CoalesceP{In: FilterP{Pred: algebra.BoolC(true), In: ScanP{Name: "t"}}}}}
	if got := CountCoalesce(p); got != 2 {
		t.Fatalf("CountCoalesce = %d", got)
	}
	s := p.String()
	for _, frag := range []string{"Coalesce", "TAgg", "preagg", "Filter", "t"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan String %q missing %q", s, frag)
		}
	}
	j := JoinP{L: ScanP{Name: "a"}, R: ScanP{Name: "b"}, Pred: algebra.BoolC(true)}
	if CountCoalesce(UnionP{L: j, R: DiffP{L: ScanP{Name: "a"}, R: ScanP{Name: "b"}}}) != 0 {
		t.Error("CountCoalesce over join/union/diff broken")
	}
	if !strings.Contains(ProjectP{Exprs: []algebra.NamedExpr{{Name: "x", E: algebra.Col("x")}}, In: ScanP{Name: "t"}}.String(), "Project") {
		t.Error("ProjectP String broken")
	}
	if !strings.Contains(AggP{In: ScanP{Name: "t"}}.String(), "naive") {
		t.Error("AggP naive String broken")
	}
}
