package engine

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// RowIter is a pull-based iterator over period-encoded rows: the volcano
// interface of the streaming executor. Schema returns the full period
// schema (data columns plus BeginCol/EndCol) of the produced rows. Next
// returns the next row and true, or nil and false when the stream is
// exhausted. Close releases the iterator's resources and those of its
// children; it is safe to call more than once.
//
// Rows returned by Next are treated as immutable by all operators;
// consumers that mutate a row must Clone it first.
type RowIter interface {
	Schema() tuple.Schema
	Next() (tuple.Tuple, bool)
	Close()
}

// rowInterval returns the validity interval encoded in the last two
// columns of a period row.
func rowInterval(row tuple.Tuple) interval.Interval {
	n := len(row)
	return interval.Interval{Begin: row[n-2].AsInt(), End: row[n-1].AsInt()}
}

// tableIter streams the rows of a materialized table.
type tableIter struct {
	t *Table
	i int
}

// NewTableIter returns an iterator over the rows of t.
func NewTableIter(t *Table) RowIter { return &tableIter{t: t} }

func (it *tableIter) Schema() tuple.Schema { return it.t.Schema }

func (it *tableIter) Next() (tuple.Tuple, bool) {
	if it.i >= len(it.t.Rows) {
		return nil, false
	}
	row := it.t.Rows[it.i]
	it.i++
	return row, true
}

// NextBatch hands out the next chunk of stored rows — the batch form of
// the table scan: one bounds check and one copy of row references per
// batch instead of a virtual call per row.
func (it *tableIter) NextBatch(b *RowBatch) bool {
	b.Reset()
	n := len(it.t.Rows) - it.i
	if n <= 0 {
		return false
	}
	if c := cap(b.Rows); c > 0 && n > c {
		n = c
	} else if c == 0 && n > DefaultBatchSize {
		n = DefaultBatchSize
	}
	b.Rows = append(b.Rows, it.t.Rows[it.i:it.i+n]...)
	it.i += n
	return true
}

func (it *tableIter) Close() {}

// Err reports no error: a table scan over materialized rows cannot
// fail mid-stream.
func (it *tableIter) Err() error { return nil }

// Materialize drains the iterator into a table, batch-at-a-time when
// the iterator supports it. It does not Close it, and it DISCARDS the
// stream's terminal error — callers that must distinguish a truncated
// drain from a complete one use MaterializeErr instead.
func Materialize(it RowIter) *Table {
	t, _ := MaterializeErr(it)
	return t
}

// filterIter streams the rows of its input satisfying a predicate —
// the pipelined form of Filter. Under batch drive it evaluates the
// predicate over whole child batches, so the per-row cost is one
// compiled-predicate call with no iterator indirection.
type filterIter struct {
	in   RowIter
	cur  batchCursor
	pred algebra.Compiled
}

// newFilterIter takes ownership of in: on error the child is closed, so
// the caller only ever closes the returned iterator.
func newFilterIter(in RowIter, pred algebra.Expr) (RowIter, error) {
	c, err := algebra.Compile(pred, in.Schema())
	if err != nil {
		in.Close()
		return nil, err
	}
	return &filterIter{in: in, cur: batchCursor{in: in}, pred: c}, nil
}

func (it *filterIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *filterIter) Next() (tuple.Tuple, bool) {
	for {
		row, ok := it.cur.next()
		if !ok {
			return nil, false
		}
		if algebra.Truthy(it.pred(row)) {
			return row, true
		}
	}
}

// NextBatch filters whole child chunks with a plain range loop — per
// row only the compiled predicate and a conditional append — and emits
// as soon as one chunk yields any passing rows rather than blocking to
// fill the batch (a ragged batch is legal anywhere in the stream).
func (it *filterIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	it.cur.enableBatch(batchCapOf(out))
	for out.Len() == 0 {
		rows, ok := it.cur.nextChunk()
		if !ok {
			break
		}
		for _, row := range rows {
			if algebra.Truthy(it.pred(row)) {
				out.Append(row)
			}
		}
	}
	return out.Len() > 0
}

func (it *filterIter) Close() { it.in.Close() }

// Err delegates the terminal error to the input stream.
func (it *filterIter) Err() error { return IterErr(it.in) }

// batchCapOf returns the effective row capacity of an output batch —
// its own capacity, or the engine default when the caller handed over
// an empty batch with no backing yet.
func batchCapOf(b *RowBatch) int {
	if c := cap(b.Rows); c > 0 {
		return c
	}
	return DefaultBatchSize
}

// projectIter evaluates projection expressions row-at-a-time, carrying
// the period attributes through unchanged — the pipelined form of
// Project (the Π_{A, Abegin, Aend} pattern of Fig 4).
type projectIter struct {
	in     RowIter
	cur    batchCursor
	fns    []algebra.Compiled
	schema tuple.Schema
}

// newProjectIter takes ownership of in: on error the child is closed,
// so the caller only ever closes the returned iterator.
func newProjectIter(in RowIter, exprs []algebra.NamedExpr) (RowIter, error) {
	fns := make([]algebra.Compiled, len(exprs))
	cols := make([]string, len(exprs))
	for i, ne := range exprs {
		c, err := algebra.Compile(ne.E, in.Schema())
		if err != nil {
			in.Close()
			return nil, err
		}
		fns[i] = c
		cols[i] = ne.Name
	}
	return &projectIter{in: in, cur: batchCursor{in: in}, fns: fns, schema: PeriodSchema(tuple.NewSchema(cols...))}, nil
}

func (it *projectIter) Schema() tuple.Schema { return it.schema }

// project evaluates the projection expressions over one input row,
// carrying the period attributes through unchanged.
func (it *projectIter) project(row tuple.Tuple) tuple.Tuple {
	n := len(row)
	res := make(tuple.Tuple, len(it.fns)+2)
	for i, f := range it.fns {
		res[i] = f(row)
	}
	res[len(it.fns)] = row[n-2]
	res[len(it.fns)+1] = row[n-1]
	return res
}

func (it *projectIter) Next() (tuple.Tuple, bool) {
	row, ok := it.cur.next()
	if !ok {
		return nil, false
	}
	return it.project(row), true
}

// NextBatch projects one whole child chunk per call with a plain range
// loop: expression evaluation still runs per row (each output row needs
// its own backing array), but the iterator hop above and below is paid
// once per batch.
func (it *projectIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	it.cur.enableBatch(batchCapOf(out))
	rows, ok := it.cur.nextChunk()
	if !ok {
		return false
	}
	for _, row := range rows {
		out.Append(it.project(row))
	}
	return true
}

func (it *projectIter) Close() { it.in.Close() }

// Err delegates the terminal error to the input stream.
func (it *projectIter) Err() error { return IterErr(it.in) }

// unionIter concatenates two union-compatible streams — the pipelined
// form of UnionAll.
type unionIter struct {
	l, r   RowIter
	lb, rb BatchIter // batch forms of the children, bound on first NextBatch
	lDone  bool      // l exhausted, now draining r
}

// newUnionIter takes ownership of both inputs: on error the children
// are closed, so the caller only ever closes the returned iterator.
func newUnionIter(l, r RowIter) (RowIter, error) {
	if l.Schema().Arity() != r.Schema().Arity() {
		arities := [2]int{l.Schema().Arity(), r.Schema().Arity()}
		l.Close()
		r.Close()
		return nil, fmt.Errorf("engine: union-incompatible arities %d and %d", arities[0], arities[1])
	}
	return &unionIter{l: l, r: r}, nil
}

func (it *unionIter) Schema() tuple.Schema { return it.l.Schema() }

func (it *unionIter) Next() (tuple.Tuple, bool) {
	if !it.lDone {
		if row, ok := it.l.Next(); ok {
			return row, true
		}
		it.lDone = true
	}
	return it.r.Next()
}

// NextBatch drains the left input batch-at-a-time, then the right: the
// concatenation needs no per-row work at all, so whole child batches
// pass straight through.
func (it *unionIter) NextBatch(out *RowBatch) bool {
	if it.lb == nil {
		it.lb = AsBatchIter(it.l, batchCapOf(out))
		it.rb = AsBatchIter(it.r, batchCapOf(out))
	}
	if !it.lDone {
		if it.lb.NextBatch(out) {
			return true
		}
		it.lDone = true
	}
	return it.rb.NextBatch(out)
}

func (it *unionIter) Close() {
	it.l.Close()
	it.r.Close()
}

// Err reports the first terminal error of either input.
func (it *unionIter) Err() error { return FirstErr(IterErr(it.l), IterErr(it.r)) }

// hashJoinIter is the pipelined temporal hash join: the build side is
// drained into a hash table on the extracted equi-key columns at
// construction; the probe side then streams, so pipeline chains above
// and below the probe side never materialize. Either input can be the
// build side (size-based selection picks the smaller one); swapped
// reports that the build side is the LEFT input, in which case output
// rows are still composed in left-then-right column order.
type hashJoinIter struct {
	schema   tuple.Schema
	probe    RowIter
	cur      batchCursor
	build    map[string]*joinBucket
	probeIdx []int
	res      algebra.Compiled
	lA, rA   int
	swapped  bool
	buildErr error  // terminal error of the (eagerly drained) build side
	scratch  []byte // reusable probe-key buffer: no string allocation per probe row
	// probe state: current probe row and its pending bucket suffix.
	prow   tuple.Tuple
	piv    interval.Interval
	bucket []tuple.Tuple
	bi     int
}

// joinBucket holds the build rows of one equi-key value behind a
// pointer, so the build loop can append through an allocation-free
// map[string(scratch)] lookup and only materialize a key string once
// per distinct key.
type joinBucket struct{ rows []tuple.Tuple }

// JoinPrep is the compiled form of a temporal join predicate: extracted
// equi-key columns plus the compiled residual over the concatenated data
// schema. It separates predicate analysis from execution so the build
// phase can run once while several probe iterators (one per parallel
// fragment) share its output.
type JoinPrep struct {
	joined     tuple.Schema
	res        algebra.Compiled
	lIdx, rIdx []int
	lA, rA     int
}

// PrepareJoin analyses pred over the two data schemas (period attributes
// excluded). The returned prep reports via HasEquiKey whether a hash
// join applies; without any equality conjunct the join must fall back to
// the interval-overlap sweep.
func PrepareJoin(lData, rData tuple.Schema, pred algebra.Expr) (*JoinPrep, error) {
	joined := lData.Concat(rData, "r.")
	keys, residual := extractEquiKeys(pred, lData, joined, lData.Arity())
	res, err := algebra.Compile(residual, joined)
	if err != nil {
		return nil, err
	}
	p := &JoinPrep{joined: joined, res: res, lA: lData.Arity(), rA: rData.Arity()}
	for _, k := range keys {
		p.lIdx = append(p.lIdx, k.l)
		p.rIdx = append(p.rIdx, k.r)
	}
	return p, nil
}

// HasEquiKey reports whether the predicate contains at least one
// equality conjunct usable as a hash-join key.
func (p *JoinPrep) HasEquiKey() bool { return len(p.lIdx) > 0 }

// Schema returns the period schema of the join output.
func (p *JoinPrep) Schema() tuple.Schema { return PeriodSchema(p.joined) }

// JoinBuild is a drained, immutable hash-join build side. It is safe to
// probe from multiple goroutines concurrently: every Probe iterator
// carries its own cursor state and only reads the shared table. left
// records which input was built (the probe side is the other one).
type JoinBuild struct {
	prep  *JoinPrep
	build map[string]*joinBucket
	left  bool
	rows  int64 // build rows retained (the governor's memory-charge basis)
	err   error // terminal error of the build-side drain
}

// Err reports the terminal error of the build-side drain: a build over
// a failed input stream is incomplete, and probing it would silently
// drop matches.
func (b *JoinBuild) Err() error { return b.err }

// Rows returns the number of rows retained in the build table.
func (b *JoinBuild) Rows() int64 { return b.rows }

// Build drains the right (build-side) input into a hash table on the
// equi-key columns and closes it. It must only be called when HasEquiKey
// reports true.
func (p *JoinPrep) Build(r RowIter) *JoinBuild { return p.buildSide(r, false, 0) }

// BuildLeft drains the LEFT input as the build side instead — the
// size-based build-side selection path when the left input is known to
// be smaller. The probe iterator then consumes the right input; output
// column order is unaffected.
func (p *JoinPrep) BuildLeft(l RowIter) *JoinBuild { return p.buildSide(l, true, 0) }

// BuildSized is Build with the hash table pre-sized for roughly hint
// build-side rows (≤ 0 = no hint). The hint is the planner's cardinality
// estimate: a good one removes the map's incremental rehash/grow
// allocations during the build drain, a bad one costs at most the
// overshoot's memory. Never affects results.
func (p *JoinPrep) BuildSized(r RowIter, hint int64) *JoinBuild { return p.buildSide(r, false, hint) }

// BuildLeftSized is BuildLeft with the pre-sizing hint of BuildSized.
func (p *JoinPrep) BuildLeftSized(l RowIter, hint int64) *JoinBuild {
	return p.buildSide(l, true, hint)
}

func (p *JoinPrep) buildSide(in RowIter, left bool, hint int64) *JoinBuild {
	keyIdx := p.rIdx
	if left {
		keyIdx = p.lIdx
	}
	if hint < 0 {
		hint = 0
	}
	build := make(map[string]*joinBucket, hint)
	var n int64
	var scratch []byte
	src := AsBatchIter(in, DefaultBatchSize)
	batch := NewRowBatch(DefaultBatchSize)
	for src.NextBatch(batch) {
		for _, row := range batch.Rows {
			// SQL comparison semantics: a NULL in any join key compares
			// unknown, so such rows can never match.
			if hasNullAt(row, keyIdx) {
				continue
			}
			scratch = row.AppendKey(scratch[:0], keyIdx)
			b, okB := build[string(scratch)]
			if !okB {
				b = &joinBucket{}
				build[string(scratch)] = b
			}
			//lint:ignore rowretain hash-join build side holds rows read-only; engine producers never reuse yielded row backing (only the batch slice is reused, and the row is copied out of it here)
			b.rows = append(b.rows, row)
			n++
		}
	}
	err := IterErr(in)
	in.Close()
	return &JoinBuild{prep: p, build: build, left: left, rows: n, err: err}
}

// Probe returns a streaming probe iterator over the non-built input
// against the shared build table. The iterator takes ownership of probe.
func (b *JoinBuild) Probe(probe RowIter) RowIter {
	probeIdx := b.prep.lIdx
	if b.left {
		probeIdx = b.prep.rIdx
	}
	return &hashJoinIter{
		schema:   b.prep.Schema(),
		probe:    probe,
		cur:      batchCursor{in: probe},
		build:    b.build,
		probeIdx: probeIdx,
		res:      b.prep.res,
		lA:       b.prep.lA,
		rA:       b.prep.rA,
		swapped:  b.left,
		buildErr: b.err,
	}
}

// newJoinIter builds the streaming temporal join over two input streams.
// Equality conjuncts of pred become hash-join keys with the right input
// as build side; without any equi key the join degrades to the
// endpoint-sorted interval-overlap sweep (newOverlapJoinIter) instead of
// a single-bucket hash table. newJoinIter takes ownership of both
// inputs: consumed or failed children are closed here, so the caller
// only ever closes the returned iterator.
func newJoinIter(l, r RowIter, pred algebra.Expr) (RowIter, error) {
	return newJoinIterSided(l, r, pred, false, 0)
}

// newJoinIterBuildLeft is newJoinIter with the LEFT input as build side
// — chosen by plan-level size-based build-side selection when the left
// input is estimated smaller.
func newJoinIterBuildLeft(l, r RowIter, pred algebra.Expr) (RowIter, error) {
	return newJoinIterSided(l, r, pred, true, 0)
}

func newJoinIterSided(l, r RowIter, pred algebra.Expr, buildLeft bool, hint int64) (RowIter, error) {
	lData := tuple.Schema{Cols: l.Schema().Cols[:l.Schema().Arity()-2]}
	rData := tuple.Schema{Cols: r.Schema().Cols[:r.Schema().Arity()-2]}
	prep, err := PrepareJoin(lData, rData, pred)
	if err != nil {
		l.Close()
		r.Close()
		return nil, err
	}
	if !prep.HasEquiKey() {
		return newOverlapJoinIter(l, r, prep.joined, prep.res)
	}
	// The build side is fully drained and released by the build; the
	// probe side stays open until the joint iterator is closed. A build
	// over a failed stream is incomplete — surface that as a
	// construction error rather than probing a partial table.
	var jb *JoinBuild
	probe := l
	if buildLeft {
		jb, probe = prep.BuildLeftSized(l, hint), r
	} else {
		jb = prep.BuildSized(r, hint)
	}
	if err := jb.Err(); err != nil {
		probe.Close()
		return nil, err
	}
	return jb.Probe(probe), nil
}

// BuildLeftSmaller decides hash-join build-side orientation from two
// cardinality estimates (−1 = unknown): build on the left only when
// both sides are known and the left is strictly smaller; default to the
// right build side otherwise.
func BuildLeftSmaller(lEst, rEst int64) bool {
	return lEst >= 0 && rEst >= 0 && lEst < rEst
}

func hasNullAt(row tuple.Tuple, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

func (it *hashJoinIter) Schema() tuple.Schema { return it.schema }

// NextBatch runs the probe loop until the output batch is full or the
// probe side is exhausted, reading probe rows batch-at-a-time: the
// iterator hop on both sides of the probe is paid once per batch.
func (it *hashJoinIter) NextBatch(out *RowBatch) bool {
	out.Reset()
	limit := batchCapOf(out)
	it.cur.enableBatch(limit)
	for out.Len() < limit {
		row, ok := it.Next()
		if !ok {
			break
		}
		out.Append(row)
	}
	return out.Len() > 0
}

func (it *hashJoinIter) Next() (tuple.Tuple, bool) {
	for {
		for it.bi < len(it.bucket) {
			brow := it.bucket[it.bi]
			it.bi++
			iv, ok := it.piv.Intersect(rowInterval(brow)) // the overlaps() condition of Fig 4
			if !ok {
				continue
			}
			data := make(tuple.Tuple, 0, it.lA+it.rA+2)
			if it.swapped {
				data = append(data, brow[:it.lA]...)
				data = append(data, it.prow[:it.rA]...)
			} else {
				data = append(data, it.prow[:it.lA]...)
				data = append(data, brow[:it.rA]...)
			}
			if !algebra.Truthy(it.res(data)) {
				continue
			}
			data = append(data, tuple.Int(iv.Begin), tuple.Int(iv.End))
			return data, true
		}
		prow, ok := it.cur.next()
		if !ok {
			return nil, false
		}
		if hasNullAt(prow, it.probeIdx) {
			continue
		}
		//lint:ignore rowretain probe row is held read-only and replaced by the next probe Next
		it.prow = prow
		it.piv = rowInterval(prow)
		it.scratch = prow.AppendKey(it.scratch[:0], it.probeIdx)
		if b := it.build[string(it.scratch)]; b != nil {
			it.bucket = b.rows
		} else {
			it.bucket = nil
		}
		it.bi = 0
	}
}

func (it *hashJoinIter) Close() { it.probe.Close() }

// Err reports the build side's terminal error, then the probe side's.
func (it *hashJoinIter) Err() error { return FirstErr(it.buildErr, IterErr(it.probe)) }

// ExecStream evaluates a physical plan to a pull-based row stream.
// Filter, Project, UnionAll and the probe side of the temporal join are
// fully pipelined; the blocking operators (Split-based aggregation,
// difference and coalesce) consume their input streams and keep their
// endpoint-sweep internals. The caller must Close the returned iterator.
func (db *DB) ExecStream(p Plan) (RowIter, error) {
	return db.ExecStreamObs(p, nil)
}

// ExecStreamObs is ExecStream with EXPLAIN ANALYZE instrumentation: each
// operator gets an OpStats child of parent and its iterator is wrapped
// in an ObsIter recording into it. With parent == nil (the ExecStream
// path) every Child and NewObsIter call is an identity no-op, so the
// uninstrumented hot path is unchanged.
func (db *DB) ExecStreamObs(p Plan, parent *OpStats) (RowIter, error) {
	switch n := p.(type) {
	case ScanP:
		t, err := db.Table(n.Name)
		if err != nil {
			return nil, err
		}
		return NewObsIter(NewTableIter(t), parent.Child("Scan", n.Name)), nil
	case FilterP:
		st := parent.Child("Filter", "")
		in, err := db.ExecStreamObs(n.In, st)
		if err != nil {
			return nil, err
		}
		it, err := newFilterIter(in, n.Pred)
		if err != nil {
			return nil, err
		}
		return NewObsIter(it, st), nil
	case ProjectP:
		st := parent.Child("Project", "")
		in, err := db.ExecStreamObs(n.In, st)
		if err != nil {
			return nil, err
		}
		it, err := newProjectIter(in, n.Exprs)
		if err != nil {
			return nil, err
		}
		return NewObsIter(it, st), nil
	case JoinP:
		st := parent.Child("Join", "")
		l, err := db.ExecStreamObs(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := db.ExecStreamObs(n.R, st)
		if err != nil {
			l.Close()
			return nil, err
		}
		// The hash-join build side drains at construction, outside any
		// Next: attribute it to the join node via an explicit span. The
		// planner may have pinned the build side on the plan node; with
		// BuildAuto the executor keeps its own estimate-based pick.
		var buildLeft bool
		switch n.Build {
		case BuildLeftSide:
			buildLeft = true
		case BuildRightSide:
			buildLeft = false
		default:
			buildLeft = BuildLeftSmaller(db.EstimateRows(n.L), db.EstimateRows(n.R))
		}
		if st != nil {
			st.Detail = joinDetail(l.Schema(), r.Schema(), n.Pred, buildLeft)
		}
		done := st.Span()
		it, err := newJoinIterSided(l, r, n.Pred, buildLeft, n.BuildHint)
		done()
		if err != nil {
			return nil, err
		}
		return NewObsIter(it, st), nil
	case UnionP:
		st := parent.Child("Union", "")
		l, err := db.ExecStreamObs(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := db.ExecStreamObs(n.R, st)
		if err != nil {
			l.Close()
			return nil, err
		}
		it, err := newUnionIter(l, r)
		if err != nil {
			return nil, err
		}
		return NewObsIter(it, st), nil
	case DiffP:
		if n.Streaming {
			st := parent.Child("Diff", "streaming")
			l, err := db.ExecStreamObs(n.L, st)
			if err != nil {
				return nil, err
			}
			r, err := db.ExecStreamObs(n.R, st)
			if err != nil {
				l.Close()
				return nil, err
			}
			it, err := NewStreamDiffIter(l, r)
			if err != nil {
				return nil, err
			}
			// ObsIter sits inside the aliasing check so its StateSizer
			// assertion reaches the sweep iterator directly.
			return CheckNoAlias("streaming difference", NewObsIter(it, st)), nil
		}
		st := parent.Child("Diff", "blocking")
		l, err := db.streamToTableObs(n.L, st)
		if err != nil {
			return nil, err
		}
		r, err := db.streamToTableObs(n.R, st)
		if err != nil {
			return nil, err
		}
		done := st.Span()
		out, err := TemporalDiff(l, r)
		done()
		if err != nil {
			return nil, err
		}
		return NewObsIter(NewTableIter(out), st), nil
	case AggP:
		if n.Streaming && n.PreAgg {
			st := parent.Child("Agg", "streaming")
			in, err := db.ExecStreamObs(n.In, st)
			if err != nil {
				return nil, err
			}
			it, err := NewStreamAggIter(in, n.GroupBy, n.Aggs, db.dom)
			if err != nil {
				return nil, err
			}
			return CheckNoAlias("streaming aggregation", NewObsIter(it, st)), nil
		}
		st := parent.Child("Agg", aggDetail(n))
		in, err := db.streamToTableObs(n.In, st)
		if err != nil {
			return nil, err
		}
		done := st.Span()
		out, err := TemporalAggregate(in, n.GroupBy, n.Aggs, n.PreAgg, db.dom)
		done()
		if err != nil {
			return nil, err
		}
		return NewObsIter(NewTableIter(out), st), nil
	case CoalesceP:
		if n.Streaming {
			st := parent.Child("Coalesce", "streaming")
			in, err := db.ExecStreamObs(n.In, st)
			if err != nil {
				return nil, err
			}
			return CheckNoAlias("streaming coalesce", NewObsIter(NewStreamCoalesceIter(in), st)), nil
		}
		st := parent.Child("Coalesce", "blocking")
		in, err := db.streamToTableObs(n.In, st)
		if err != nil {
			return nil, err
		}
		done := st.Span()
		out := Coalesce(in, n.Impl)
		done()
		return NewObsIter(NewTableIter(out), st), nil
	case SortP:
		st := parent.Child("Sort", "enforcer")
		in, err := db.ExecStreamObs(n.In, st)
		if err != nil {
			return nil, err
		}
		// sortIter drains and sorts inside its first Next, so the ObsIter
		// timing captures the enforcement cost without an explicit span.
		return NewObsIter(NewSortIter(in), st), nil
	case WindowP:
		st := parent.Child("Window", n.T.String())
		// The zone-map prune applies when the window sits directly over a
		// stored-table scan: skip the scan entirely when the endpoint
		// envelope is disjoint from T, and stop a begin-sorted scan at the
		// first row with begin ≥ T.End.
		if scan, ok := n.In.(ScanP); ok && n.Prune {
			t, err := db.Table(scan.Name)
			if err != nil {
				return nil, err
			}
			hi, skip := PruneWindowScan(t, n.T)
			if skip {
				t = &Table{Schema: t.Schema}
			} else {
				t = t.Prefix(hi)
			}
			scanIt := NewObsIter(NewTableIter(t), st.Child("Scan", scan.Name))
			return NewObsIter(NewWindowIter(scanIt, n.T), st), nil
		}
		in, err := db.ExecStreamObs(n.In, st)
		if err != nil {
			return nil, err
		}
		return NewObsIter(NewWindowIter(in, n.T), st), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// joinDetail summarizes the join strategy for EXPLAIN ANALYZE: hash join
// with its build side, or the interval-overlap sweep fallback.
func joinDetail(lSchema, rSchema tuple.Schema, pred algebra.Expr, buildLeft bool) string {
	lData := tuple.Schema{Cols: lSchema.Cols[:lSchema.Arity()-2]}
	rData := tuple.Schema{Cols: rSchema.Cols[:rSchema.Arity()-2]}
	prep, err := PrepareJoin(lData, rData, pred)
	if err != nil || !prep.HasEquiKey() {
		return "overlap-sweep"
	}
	if buildLeft {
		return "hash build=left"
	}
	return "hash build=right"
}

// aggDetail names the blocking aggregation flavor.
func aggDetail(n AggP) string {
	if n.PreAgg {
		return "blocking pre-agg"
	}
	return "blocking"
}

// NewFilterIter wraps in with the pipelined Filter operator. It takes
// ownership of in: on error the child is closed.
func NewFilterIter(in RowIter, pred algebra.Expr) (RowIter, error) {
	return newFilterIter(in, pred)
}

// NewProjectIter wraps in with the pipelined Project operator. It takes
// ownership of in: on error the child is closed.
func NewProjectIter(in RowIter, exprs []algebra.NamedExpr) (RowIter, error) {
	return newProjectIter(in, exprs)
}

// NewUnionIter concatenates two union-compatible streams, taking
// ownership of both.
func NewUnionIter(l, r RowIter) (RowIter, error) {
	return newUnionIter(l, r)
}

// NewJoinIter builds the streaming temporal join over two input streams,
// taking ownership of both. It is the exported form of the JoinP case of
// ExecStream, used by the parallel executor for its sequential fallback.
func NewJoinIter(l, r RowIter, pred algebra.Expr) (RowIter, error) {
	return newJoinIter(l, r, pred)
}

// streamToTable materializes the streaming evaluation of a subplan —
// the input boundary of the blocking operators.
func (db *DB) streamToTable(p Plan) (*Table, error) {
	return db.streamToTableObs(p, nil)
}

// streamToTableObs is streamToTable with the subplan's operator stats
// attached under parent (nil disables collection).
func (db *DB) streamToTableObs(p Plan, parent *OpStats) (*Table, error) {
	it, err := db.ExecStreamObs(p, parent)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return MaterializeErr(it)
}
