package engine

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// RowIter is a pull-based iterator over period-encoded rows: the volcano
// interface of the streaming executor. Schema returns the full period
// schema (data columns plus BeginCol/EndCol) of the produced rows. Next
// returns the next row and true, or nil and false when the stream is
// exhausted. Close releases the iterator's resources and those of its
// children; it is safe to call more than once.
//
// Rows returned by Next are treated as immutable by all operators;
// consumers that mutate a row must Clone it first.
type RowIter interface {
	Schema() tuple.Schema
	Next() (tuple.Tuple, bool)
	Close()
}

// rowInterval returns the validity interval encoded in the last two
// columns of a period row.
func rowInterval(row tuple.Tuple) interval.Interval {
	n := len(row)
	return interval.Interval{Begin: row[n-2].AsInt(), End: row[n-1].AsInt()}
}

// tableIter streams the rows of a materialized table.
type tableIter struct {
	t *Table
	i int
}

// NewTableIter returns an iterator over the rows of t.
func NewTableIter(t *Table) RowIter { return &tableIter{t: t} }

func (it *tableIter) Schema() tuple.Schema { return it.t.Schema }

func (it *tableIter) Next() (tuple.Tuple, bool) {
	if it.i >= len(it.t.Rows) {
		return nil, false
	}
	row := it.t.Rows[it.i]
	it.i++
	return row, true
}

func (it *tableIter) Close() {}

// Materialize drains the iterator into a table. It does not Close it.
func Materialize(it RowIter) *Table {
	t := &Table{Schema: it.Schema()}
	for {
		row, ok := it.Next()
		if !ok {
			return t
		}
		t.Rows = append(t.Rows, row)
	}
}

// filterIter streams the rows of its input satisfying a predicate —
// the pipelined form of Filter.
type filterIter struct {
	in   RowIter
	pred algebra.Compiled
}

// newFilterIter takes ownership of in: on error the child is closed, so
// the caller only ever closes the returned iterator.
func newFilterIter(in RowIter, pred algebra.Expr) (RowIter, error) {
	c, err := algebra.Compile(pred, in.Schema())
	if err != nil {
		in.Close()
		return nil, err
	}
	return &filterIter{in: in, pred: c}, nil
}

func (it *filterIter) Schema() tuple.Schema { return it.in.Schema() }

func (it *filterIter) Next() (tuple.Tuple, bool) {
	for {
		row, ok := it.in.Next()
		if !ok {
			return nil, false
		}
		if algebra.Truthy(it.pred(row)) {
			return row, true
		}
	}
}

func (it *filterIter) Close() { it.in.Close() }

// projectIter evaluates projection expressions row-at-a-time, carrying
// the period attributes through unchanged — the pipelined form of
// Project (the Π_{A, Abegin, Aend} pattern of Fig 4).
type projectIter struct {
	in     RowIter
	fns    []algebra.Compiled
	schema tuple.Schema
}

// newProjectIter takes ownership of in: on error the child is closed,
// so the caller only ever closes the returned iterator.
func newProjectIter(in RowIter, exprs []algebra.NamedExpr) (RowIter, error) {
	fns := make([]algebra.Compiled, len(exprs))
	cols := make([]string, len(exprs))
	for i, ne := range exprs {
		c, err := algebra.Compile(ne.E, in.Schema())
		if err != nil {
			in.Close()
			return nil, err
		}
		fns[i] = c
		cols[i] = ne.Name
	}
	return &projectIter{in: in, fns: fns, schema: PeriodSchema(tuple.NewSchema(cols...))}, nil
}

func (it *projectIter) Schema() tuple.Schema { return it.schema }

func (it *projectIter) Next() (tuple.Tuple, bool) {
	row, ok := it.in.Next()
	if !ok {
		return nil, false
	}
	n := len(row)
	res := make(tuple.Tuple, len(it.fns)+2)
	for i, f := range it.fns {
		res[i] = f(row)
	}
	res[len(it.fns)] = row[n-2]
	res[len(it.fns)+1] = row[n-1]
	return res, true
}

func (it *projectIter) Close() { it.in.Close() }

// unionIter concatenates two union-compatible streams — the pipelined
// form of UnionAll.
type unionIter struct {
	l, r  RowIter
	lDone bool // l exhausted, now draining r
}

// newUnionIter takes ownership of both inputs: on error the children
// are closed, so the caller only ever closes the returned iterator.
func newUnionIter(l, r RowIter) (RowIter, error) {
	if l.Schema().Arity() != r.Schema().Arity() {
		arities := [2]int{l.Schema().Arity(), r.Schema().Arity()}
		l.Close()
		r.Close()
		return nil, fmt.Errorf("engine: union-incompatible arities %d and %d", arities[0], arities[1])
	}
	return &unionIter{l: l, r: r}, nil
}

func (it *unionIter) Schema() tuple.Schema { return it.l.Schema() }

func (it *unionIter) Next() (tuple.Tuple, bool) {
	if !it.lDone {
		if row, ok := it.l.Next(); ok {
			return row, true
		}
		it.lDone = true
	}
	return it.r.Next()
}

func (it *unionIter) Close() {
	it.l.Close()
	it.r.Close()
}

// hashJoinIter is the pipelined temporal hash join: the build side
// (right input) is drained into a hash table on the extracted equi-key
// columns at construction; the probe side (left input) then streams, so
// pipeline chains above and below the probe side never materialize.
type hashJoinIter struct {
	schema tuple.Schema
	l      RowIter
	build  map[string][]tuple.Tuple
	lIdx   []int
	res    algebra.Compiled
	lA, rA int
	// probe state: current probe row and its pending bucket suffix.
	lrow   tuple.Tuple
	liv    interval.Interval
	bucket []tuple.Tuple
	bi     int
}

// JoinPrep is the compiled form of a temporal join predicate: extracted
// equi-key columns plus the compiled residual over the concatenated data
// schema. It separates predicate analysis from execution so the build
// phase can run once while several probe iterators (one per parallel
// fragment) share its output.
type JoinPrep struct {
	joined     tuple.Schema
	res        algebra.Compiled
	lIdx, rIdx []int
	lA, rA     int
}

// PrepareJoin analyses pred over the two data schemas (period attributes
// excluded). The returned prep reports via HasEquiKey whether a hash
// join applies; without any equality conjunct the join must fall back to
// the interval-overlap sweep.
func PrepareJoin(lData, rData tuple.Schema, pred algebra.Expr) (*JoinPrep, error) {
	joined := lData.Concat(rData, "r.")
	keys, residual := extractEquiKeys(pred, lData, joined, lData.Arity())
	res, err := algebra.Compile(residual, joined)
	if err != nil {
		return nil, err
	}
	p := &JoinPrep{joined: joined, res: res, lA: lData.Arity(), rA: rData.Arity()}
	for _, k := range keys {
		p.lIdx = append(p.lIdx, k.l)
		p.rIdx = append(p.rIdx, k.r)
	}
	return p, nil
}

// HasEquiKey reports whether the predicate contains at least one
// equality conjunct usable as a hash-join key.
func (p *JoinPrep) HasEquiKey() bool { return len(p.lIdx) > 0 }

// Schema returns the period schema of the join output.
func (p *JoinPrep) Schema() tuple.Schema { return PeriodSchema(p.joined) }

// JoinBuild is a drained, immutable hash-join build side. It is safe to
// probe from multiple goroutines concurrently: every Probe iterator
// carries its own cursor state and only reads the shared table.
type JoinBuild struct {
	prep  *JoinPrep
	build map[string][]tuple.Tuple
}

// Build drains the right (build-side) input into a hash table on the
// equi-key columns and closes it. It must only be called when HasEquiKey
// reports true.
func (p *JoinPrep) Build(r RowIter) *JoinBuild {
	build := make(map[string][]tuple.Tuple)
	for {
		rrow, ok := r.Next()
		if !ok {
			break
		}
		// SQL comparison semantics: a NULL in any join key compares
		// unknown, so such rows can never match.
		if hasNullAt(rrow, p.rIdx) {
			continue
		}
		k := rrow.Project(p.rIdx).Key()
		build[k] = append(build[k], rrow)
	}
	r.Close()
	return &JoinBuild{prep: p, build: build}
}

// Probe returns a streaming probe iterator over l against the shared
// build table. The iterator takes ownership of l.
func (b *JoinBuild) Probe(l RowIter) RowIter {
	return &hashJoinIter{
		schema: b.prep.Schema(),
		l:      l,
		build:  b.build,
		lIdx:   b.prep.lIdx,
		res:    b.prep.res,
		lA:     b.prep.lA,
		rA:     b.prep.rA,
	}
}

// newJoinIter builds the streaming temporal join over two input streams.
// Equality conjuncts of pred become hash-join keys with the right input
// as build side; without any equi key the join degrades to the
// endpoint-sorted interval-overlap sweep (newOverlapJoinIter) instead of
// a single-bucket hash table. newJoinIter takes ownership of both
// inputs: consumed or failed children are closed here, so the caller
// only ever closes the returned iterator.
func newJoinIter(l, r RowIter, pred algebra.Expr) (RowIter, error) {
	lData := tuple.Schema{Cols: l.Schema().Cols[:l.Schema().Arity()-2]}
	rData := tuple.Schema{Cols: r.Schema().Cols[:r.Schema().Arity()-2]}
	prep, err := PrepareJoin(lData, rData, pred)
	if err != nil {
		l.Close()
		r.Close()
		return nil, err
	}
	if !prep.HasEquiKey() {
		return newOverlapJoinIter(l, r, prep.joined, prep.res)
	}
	// The build side is fully drained and released by Build; the probe
	// side stays open until the joint iterator is closed.
	return prep.Build(r).Probe(l), nil
}

func hasNullAt(row tuple.Tuple, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

func (it *hashJoinIter) Schema() tuple.Schema { return it.schema }

func (it *hashJoinIter) Next() (tuple.Tuple, bool) {
	for {
		for it.bi < len(it.bucket) {
			rrow := it.bucket[it.bi]
			it.bi++
			iv, ok := it.liv.Intersect(rowInterval(rrow)) // the overlaps() condition of Fig 4
			if !ok {
				continue
			}
			data := make(tuple.Tuple, 0, it.lA+it.rA+2)
			data = append(data, it.lrow[:it.lA]...)
			data = append(data, rrow[:it.rA]...)
			if !algebra.Truthy(it.res(data)) {
				continue
			}
			data = append(data, tuple.Int(iv.Begin), tuple.Int(iv.End))
			return data, true
		}
		lrow, ok := it.l.Next()
		if !ok {
			return nil, false
		}
		if hasNullAt(lrow, it.lIdx) {
			continue
		}
		it.lrow = lrow
		it.liv = rowInterval(lrow)
		it.bucket = it.build[lrow.Project(it.lIdx).Key()]
		it.bi = 0
	}
}

func (it *hashJoinIter) Close() { it.l.Close() }

// ExecStream evaluates a physical plan to a pull-based row stream.
// Filter, Project, UnionAll and the probe side of the temporal join are
// fully pipelined; the blocking operators (Split-based aggregation,
// difference and coalesce) consume their input streams and keep their
// endpoint-sweep internals. The caller must Close the returned iterator.
func (db *DB) ExecStream(p Plan) (RowIter, error) {
	switch n := p.(type) {
	case ScanP:
		t, err := db.Table(n.Name)
		if err != nil {
			return nil, err
		}
		return NewTableIter(t), nil
	case FilterP:
		in, err := db.ExecStream(n.In)
		if err != nil {
			return nil, err
		}
		return newFilterIter(in, n.Pred)
	case ProjectP:
		in, err := db.ExecStream(n.In)
		if err != nil {
			return nil, err
		}
		return newProjectIter(in, n.Exprs)
	case JoinP:
		l, err := db.ExecStream(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.ExecStream(n.R)
		if err != nil {
			l.Close()
			return nil, err
		}
		return newJoinIter(l, r, n.Pred)
	case UnionP:
		l, err := db.ExecStream(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.ExecStream(n.R)
		if err != nil {
			l.Close()
			return nil, err
		}
		return newUnionIter(l, r)
	case DiffP:
		l, err := db.streamToTable(n.L)
		if err != nil {
			return nil, err
		}
		r, err := db.streamToTable(n.R)
		if err != nil {
			return nil, err
		}
		out, err := TemporalDiff(l, r)
		if err != nil {
			return nil, err
		}
		return NewTableIter(out), nil
	case AggP:
		in, err := db.streamToTable(n.In)
		if err != nil {
			return nil, err
		}
		out, err := TemporalAggregate(in, n.GroupBy, n.Aggs, n.PreAgg, db.dom)
		if err != nil {
			return nil, err
		}
		return NewTableIter(out), nil
	case CoalesceP:
		in, err := db.streamToTable(n.In)
		if err != nil {
			return nil, err
		}
		return NewTableIter(Coalesce(in, n.Impl)), nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// NewFilterIter wraps in with the pipelined Filter operator. It takes
// ownership of in: on error the child is closed.
func NewFilterIter(in RowIter, pred algebra.Expr) (RowIter, error) {
	return newFilterIter(in, pred)
}

// NewProjectIter wraps in with the pipelined Project operator. It takes
// ownership of in: on error the child is closed.
func NewProjectIter(in RowIter, exprs []algebra.NamedExpr) (RowIter, error) {
	return newProjectIter(in, exprs)
}

// NewUnionIter concatenates two union-compatible streams, taking
// ownership of both.
func NewUnionIter(l, r RowIter) (RowIter, error) {
	return newUnionIter(l, r)
}

// NewJoinIter builds the streaming temporal join over two input streams,
// taking ownership of both. It is the exported form of the JoinP case of
// ExecStream, used by the parallel executor for its sequential fallback.
func NewJoinIter(l, r RowIter, pred algebra.Expr) (RowIter, error) {
	return newJoinIter(l, r, pred)
}

// streamToTable materializes the streaming evaluation of a subplan —
// the input boundary of the blocking operators.
func (db *DB) streamToTable(p Plan) (*Table, error) {
	it, err := db.ExecStream(p)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return Materialize(it), nil
}
