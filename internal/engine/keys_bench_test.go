package engine_test

// ReportAllocs benchmarks pinning the allocation-lean group-key work:
// the hot grouping paths (coalesce, split/aggregate, difference,
// streaming sweeps, hash-join build/probe) look groups up through a
// reusable scratch buffer and map[string(scratch)] accesses, so key
// strings are materialized once per distinct group — allocations per
// ROW must stay flat as the row count grows, instead of the one-or-two
// strings per row the Tuple.Key() calls used to cost.

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// benchTable builds rows over `groups` distinct data tuples with
// overlapping intervals, begin-sorted so the streaming sweeps accept it
// directly.
func benchTable(rows, groups int) *engine.Table {
	t := engine.NewTable(tuple.NewSchema("g", "v"))
	for i := 0; i < rows; i++ {
		begin := int64(i / 2)
		t.Append(tuple.Tuple{tuple.Int(int64(i % groups)), tuple.Int(int64(i % groups))}, interval.New(begin, begin+10), 1)
	}
	return t
}

const benchRows = 20000

func BenchmarkCoalesceKeys(b *testing.B) {
	in := benchTable(benchRows, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Coalesce(in, engine.CoalesceNative)
	}
}

func BenchmarkAggSweepKeys(b *testing.B) {
	in := benchTable(benchRows, 16)
	aggs := []algebra.AggSpec{{Fn: krel.Sum, Arg: "v", As: "total"}, {Fn: krel.CountStar, As: "cnt"}}
	dom := interval.NewDomain(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TemporalAggregate(in, []string{"g"}, aggs, true, dom); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggNaiveSegKeys(b *testing.B) {
	// The naive split path is where the double-allocating
	// `g.Key() + "@" + endpoints.Key()` concat used to live.
	in := benchTable(benchRows/4, 16)
	aggs := []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}}
	dom := interval.NewDomain(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TemporalAggregate(in, []string{"g"}, aggs, false, dom); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemporalDiffKeys(b *testing.B) {
	l := benchTable(benchRows, 16)
	r := benchTable(benchRows/2, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TemporalDiff(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamCoalesceKeys(b *testing.B) {
	in := benchTable(benchRows, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Materialize(engine.NewStreamCoalesceIter(engine.NewTableIter(in)))
	}
}

func BenchmarkStreamAggKeys(b *testing.B) {
	in := benchTable(benchRows, 16)
	aggs := []algebra.AggSpec{{Fn: krel.Sum, Arg: "v", As: "total"}}
	dom := interval.NewDomain(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := engine.NewStreamAggIter(engine.NewTableIter(in), []string{"g"}, aggs, dom)
		if err != nil {
			b.Fatal(err)
		}
		engine.Materialize(it)
		it.Close()
	}
}

func BenchmarkHashJoinProbeKeys(b *testing.B) {
	l := benchTable(benchRows, 64)
	r := benchTable(benchRows/4, 64)
	pred := algebra.Eq(algebra.Col("g"), algebra.Col("r.g"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TemporalJoin(l, r, pred); err != nil {
			b.Fatal(err)
		}
	}
}
