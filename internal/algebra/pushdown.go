package algebra

// This file is the expression-analysis surface the temporal planner
// (package rewrite) uses for its pushdown legality checks. The planner
// operates below the algebra — on physical plans over period encodings —
// so it cannot reuse the Query-level select pushdown in optimize.go
// directly; it needs the same conjunct and column-reference analyses as
// exported primitives.

// Conjuncts flattens a predicate's top-level AND tree into its
// conjuncts. A predicate with no top-level AND is its own single
// conjunct.
func Conjuncts(e Expr) []Expr { return conjuncts(e) }

// ColsSatisfy reports whether every column reference in e satisfies ok.
// Unknown expression forms report false — the conservative answer for
// legality checks: a predicate the analysis cannot see through must not
// be moved.
func ColsSatisfy(e Expr, ok func(string) bool) bool { return allCols(e, ok) }
