package algebra

import "fmt"

// Optimize rewrites q into a snapshot-equivalent query with selections
// pushed toward the base relations: cascading selections are merged, and
// selection predicates distribute over union and difference, move through
// projections by expression substitution, into the applicable side of a
// join (conjunct by conjunct), and below aggregations when they only
// constrain grouping columns.
//
// All transformations are bag-algebra identities and therefore — by
// snapshot-reducibility — also snapshot-semantics identities; the
// differential tests in rewrite verify Optimize(q) ≡ q on random
// databases against the per-snapshot oracle. Because our engine
// materializes every operator's output, pushdown reduces intermediate
// sizes directly.
func Optimize(q Query, cat Catalog) (Query, error) {
	if _, err := OutSchema(q, cat); err != nil {
		return nil, err
	}
	return optimize(q, cat)
}

func optimize(q Query, cat Catalog) (Query, error) {
	switch n := q.(type) {
	case Rel:
		return n, nil
	case Select:
		in, err := optimize(n.In, cat)
		if err != nil {
			return nil, err
		}
		return pushSelect(n.Pred, in, cat)
	case Project:
		in, err := optimize(n.In, cat)
		if err != nil {
			return nil, err
		}
		return Project{Exprs: n.Exprs, In: in}, nil
	case Join:
		l, err := optimize(n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := optimize(n.R, cat)
		if err != nil {
			return nil, err
		}
		return Join{L: l, R: r, Pred: n.Pred}, nil
	case Union:
		l, err := optimize(n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := optimize(n.R, cat)
		if err != nil {
			return nil, err
		}
		return Union{L: l, R: r}, nil
	case Diff:
		l, err := optimize(n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := optimize(n.R, cat)
		if err != nil {
			return nil, err
		}
		return Diff{L: l, R: r}, nil
	case Agg:
		in, err := optimize(n.In, cat)
		if err != nil {
			return nil, err
		}
		return Agg{GroupBy: n.GroupBy, Aggs: n.Aggs, In: in}, nil
	default:
		return nil, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

// pushSelect pushes the predicate as deep as possible into in (already
// optimized) and returns the resulting query.
func pushSelect(pred Expr, in Query, cat Catalog) (Query, error) {
	switch n := in.(type) {
	case Select:
		// σp(σq(x)) = σ(p ∧ q)(x): merge and retry as one selection.
		return pushSelect(And(n.Pred, pred), n.In, cat)
	case Union:
		l, err := pushSelect(pred, n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := pushSelect(pred, n.R, cat)
		if err != nil {
			return nil, err
		}
		return Union{L: l, R: r}, nil
	case Diff:
		// σθ(L − R) = σθ(L) − σθ(R) holds for the monus because θ(t) is
		// 0K-or-1K per tuple and multiplication distributes over monus on
		// these values.
		l, err := pushSelect(pred, n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := pushSelect(pred, n.R, cat)
		if err != nil {
			return nil, err
		}
		return Diff{L: l, R: r}, nil
	case Project:
		// σp(Π_E(x)) = Π_E(σ(p[E])(x)): substitute output columns by
		// their defining expressions.
		subst := make(map[string]Expr, len(n.Exprs))
		for _, ne := range n.Exprs {
			subst[ne.Name] = ne.E
		}
		rewritten, ok := substitute(pred, subst)
		if !ok {
			return Select{Pred: pred, In: n}, nil
		}
		pushed, err := pushSelect(rewritten, n.In, cat)
		if err != nil {
			return nil, err
		}
		return Project{Exprs: n.Exprs, In: pushed}, nil
	case Join:
		return pushSelectJoin(pred, n, cat)
	case Agg:
		// Push conjuncts that only constrain grouping columns.
		groupSet := map[string]bool{}
		for _, g := range n.GroupBy {
			groupSet[g] = true
		}
		var pushable, rest []Expr
		for _, c := range conjuncts(pred) {
			// A conjunct may only move below the aggregation if it
			// references at least one column and all of them are grouping
			// columns. Column-free conjuncts (e.g. FALSE) must stay above:
			// pushing them below a global aggregation would turn "no
			// result rows" into a gap row (count 0).
			refs := 0
			ok := allCols(c, func(name string) bool { refs++; return groupSet[name] })
			if ok && refs > 0 {
				pushable = append(pushable, c)
			} else {
				rest = append(rest, c)
			}
		}
		out := in
		if len(pushable) > 0 {
			pushed, err := pushSelect(And(pushable...), n.In, cat)
			if err != nil {
				return nil, err
			}
			out = Agg{GroupBy: n.GroupBy, Aggs: n.Aggs, In: pushed}
		}
		if len(rest) > 0 {
			out = Select{Pred: And(rest...), In: out}
		}
		return out, nil
	default:
		return Select{Pred: pred, In: in}, nil
	}
}

// pushSelectJoin routes each conjunct of pred to the join side whose
// schema covers all of its columns, keeping the remainder above the join.
func pushSelectJoin(pred Expr, j Join, cat Catalog) (Query, error) {
	ls, err := OutSchema(j.L, cat)
	if err != nil {
		return nil, err
	}
	rs, err := OutSchema(j.R, cat)
	if err != nil {
		return nil, err
	}
	joined := ls.Concat(rs, "r.")
	// Map join-output column names back to right-side column names.
	rightName := make(map[string]string, rs.Arity())
	for i, c := range rs.Cols {
		rightName[joined.Cols[ls.Arity()+i]] = c
	}
	leftSet := map[string]bool{}
	for _, c := range ls.Cols {
		leftSet[c] = true
	}
	// A column name may exist on the left AND map to the right (it is
	// then the left column in the joined schema).
	var toL, toR, rest []Expr
	for _, c := range conjuncts(pred) {
		switch {
		case allCols(c, func(name string) bool { return leftSet[name] }):
			toL = append(toL, c)
		case allCols(c, func(name string) bool { _, ok := rightName[name]; return ok && !leftSet[name] }):
			subst := make(map[string]Expr, len(rightName))
			for out, orig := range rightName {
				subst[out] = Col(orig)
			}
			rc, ok := substitute(c, subst)
			if !ok {
				rest = append(rest, c)
				continue
			}
			toR = append(toR, rc)
		default:
			rest = append(rest, c)
		}
	}
	l := j.L
	if len(toL) > 0 {
		pushed, err := pushSelect(And(toL...), j.L, cat)
		if err != nil {
			return nil, err
		}
		l = pushed
	}
	r := j.R
	if len(toR) > 0 {
		pushed, err := pushSelect(And(toR...), j.R, cat)
		if err != nil {
			return nil, err
		}
		r = pushed
	}
	var out Query = Join{L: l, R: r, Pred: j.Pred}
	if len(rest) > 0 {
		out = Select{Pred: And(rest...), In: out}
	}
	return out, nil
}

// conjuncts flattens a predicate's top-level AND tree.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(BinOp); ok && b.Op == OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// allCols reports whether every column reference in e satisfies ok.
func allCols(e Expr, ok func(string) bool) bool {
	switch n := e.(type) {
	case ColRef:
		return ok(n.Name)
	case Const:
		return true
	case Not:
		return allCols(n.E, ok)
	case IsNullExpr:
		return allCols(n.E, ok)
	case BinOp:
		return allCols(n.L, ok) && allCols(n.R, ok)
	default:
		return false
	}
}

// substitute replaces column references by the mapped expressions; it
// fails (ok=false) if a referenced column has no mapping.
func substitute(e Expr, m map[string]Expr) (Expr, bool) {
	switch n := e.(type) {
	case ColRef:
		r, ok := m[n.Name]
		return r, ok
	case Const:
		return n, true
	case Not:
		s, ok := substitute(n.E, m)
		if !ok {
			return nil, false
		}
		return Not{E: s}, true
	case IsNullExpr:
		s, ok := substitute(n.E, m)
		if !ok {
			return nil, false
		}
		return IsNullExpr{E: s}, true
	case BinOp:
		l, ok := substitute(n.L, m)
		if !ok {
			return nil, false
		}
		r, ok := substitute(n.R, m)
		if !ok {
			return nil, false
		}
		return BinOp{Op: n.Op, L: l, R: r}, true
	default:
		return nil, false
	}
}

// CountSelectsBelowJoins reports how many Select nodes sit strictly below
// a Join in q — a structural measure of pushdown effectiveness used by
// tests and the ablation output.
func CountSelectsBelowJoins(q Query) int {
	count := 0
	var walk func(n Query, belowJoin bool)
	walk = func(n Query, belowJoin bool) {
		switch x := n.(type) {
		case Select:
			if belowJoin {
				count++
			}
			walk(x.In, belowJoin)
		case Project:
			walk(x.In, belowJoin)
		case Join:
			walk(x.L, true)
			walk(x.R, true)
		case Union:
			walk(x.L, belowJoin)
			walk(x.R, belowJoin)
		case Diff:
			walk(x.L, belowJoin)
			walk(x.R, belowJoin)
		case Agg:
			walk(x.In, belowJoin)
		}
	}
	walk(q, false)
	return count
}
