// Package algebra defines the relational-algebra AST (RA_agg: RA+ plus
// difference and aggregation) shared by the abstract-model oracle, the
// logical-model evaluator, the SQL frontend, the rewriter and the engine.
// Query trees are built once and interpreted by each layer; scalar
// expressions compile against a schema into closures.
package algebra

import (
	"fmt"

	"snapk/internal/tuple"
)

// Expr is a scalar expression over the columns of a single schema.
type Expr interface {
	exprNode()
	String() string
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Const is a literal value.
type Const struct{ Val tuple.Value }

// BinOpKind enumerates binary operators.
type BinOpKind int

// Binary operators: comparisons, boolean connectives, arithmetic.
const (
	OpEq BinOpKind = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOpKind]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// BinOp applies a binary operator to two sub-expressions.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

// Not negates a boolean sub-expression.
type Not struct{ E Expr }

// IsNullExpr tests a sub-expression for NULL.
type IsNullExpr struct{ E Expr }

func (ColRef) exprNode()     {}
func (Const) exprNode()      {}
func (BinOp) exprNode()      {}
func (Not) exprNode()        {}
func (IsNullExpr) exprNode() {}

func (e ColRef) String() string { return e.Name }
func (e Const) String() string {
	if e.Val.Kind() == tuple.KindString {
		return "'" + e.Val.String() + "'"
	}
	return e.Val.String()
}
func (e BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
}
func (e Not) String() string        { return fmt.Sprintf("NOT (%s)", e.E) }
func (e IsNullExpr) String() string { return fmt.Sprintf("(%s IS NULL)", e.E) }

// Convenience constructors, used heavily by workload definitions.

// Col references column name.
func Col(name string) Expr { return ColRef{Name: name} }

// IntC returns an integer literal.
func IntC(v int64) Expr { return Const{Val: tuple.Int(v)} }

// FloatC returns a float literal.
func FloatC(v float64) Expr { return Const{Val: tuple.Float(v)} }

// StrC returns a string literal.
func StrC(v string) Expr { return Const{Val: tuple.String_(v)} }

// BoolC returns a boolean literal.
func BoolC(v bool) Expr { return Const{Val: tuple.Bool(v)} }

// NullC returns a NULL literal.
func NullC() Expr { return Const{Val: tuple.Null} }

// Eq returns l = r.
func Eq(l, r Expr) Expr { return BinOp{Op: OpEq, L: l, R: r} }

// Ne returns l <> r.
func Ne(l, r Expr) Expr { return BinOp{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return BinOp{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return BinOp{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return BinOp{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return BinOp{Op: OpGe, L: l, R: r} }

// And returns the conjunction of the given expressions (true if empty).
func And(es ...Expr) Expr {
	if len(es) == 0 {
		return BoolC(true)
	}
	out := es[0]
	for _, e := range es[1:] {
		out = BinOp{Op: OpAnd, L: out, R: e}
	}
	return out
}

// Or returns the disjunction of the given expressions (false if empty).
func Or(es ...Expr) Expr {
	if len(es) == 0 {
		return BoolC(false)
	}
	out := es[0]
	for _, e := range es[1:] {
		out = BinOp{Op: OpOr, L: out, R: e}
	}
	return out
}

// Add returns l + r.
func Add(l, r Expr) Expr { return BinOp{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return BinOp{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return BinOp{Op: OpMul, L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return BinOp{Op: OpDiv, L: l, R: r} }

// Compiled is a scalar expression bound to a schema.
type Compiled func(tuple.Tuple) tuple.Value

// Compile binds e against schema s, resolving column references to
// positions. It returns an error for unknown columns.
func Compile(e Expr, s tuple.Schema) (Compiled, error) {
	switch ex := e.(type) {
	case ColRef:
		i := s.Index(ex.Name)
		if i < 0 {
			return nil, fmt.Errorf("algebra: unknown column %q in schema %v", ex.Name, s.Cols)
		}
		return func(t tuple.Tuple) tuple.Value { return t[i] }, nil
	case Const:
		v := ex.Val
		return func(tuple.Tuple) tuple.Value { return v }, nil
	case Not:
		sub, err := Compile(ex.E, s)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) tuple.Value {
			v := sub(t)
			if v.IsNull() {
				return tuple.Null
			}
			return tuple.Bool(!v.AsBool())
		}, nil
	case IsNullExpr:
		sub, err := Compile(ex.E, s)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) tuple.Value { return tuple.Bool(sub(t).IsNull()) }, nil
	case BinOp:
		l, err := Compile(ex.L, s)
		if err != nil {
			return nil, err
		}
		r, err := Compile(ex.R, s)
		if err != nil {
			return nil, err
		}
		return compileBinOp(ex.Op, l, r)
	default:
		return nil, fmt.Errorf("algebra: unknown expression %T", e)
	}
}

func compileBinOp(op BinOpKind, l, r Compiled) (Compiled, error) {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return func(t tuple.Tuple) tuple.Value {
			lv, rv := l(t), r(t)
			if lv.IsNull() || rv.IsNull() {
				return tuple.Null // SQL: comparisons with NULL are unknown
			}
			c := tuple.Compare(lv, rv)
			switch op {
			case OpEq:
				return tuple.Bool(c == 0)
			case OpNe:
				return tuple.Bool(c != 0)
			case OpLt:
				return tuple.Bool(c < 0)
			case OpLe:
				return tuple.Bool(c <= 0)
			case OpGt:
				return tuple.Bool(c > 0)
			default:
				return tuple.Bool(c >= 0)
			}
		}, nil
	case OpAnd:
		return func(t tuple.Tuple) tuple.Value {
			lv, rv := l(t), r(t)
			// SQL three-valued AND.
			lt := boolState(lv)
			rt := boolState(rv)
			switch {
			case lt == tvFalse || rt == tvFalse:
				return tuple.Bool(false)
			case lt == tvTrue && rt == tvTrue:
				return tuple.Bool(true)
			default:
				return tuple.Null
			}
		}, nil
	case OpOr:
		return func(t tuple.Tuple) tuple.Value {
			lt := boolState(l(t))
			rt := boolState(r(t))
			switch {
			case lt == tvTrue || rt == tvTrue:
				return tuple.Bool(true)
			case lt == tvFalse && rt == tvFalse:
				return tuple.Bool(false)
			default:
				return tuple.Null
			}
		}, nil
	case OpAdd, OpSub, OpMul, OpDiv:
		return func(t tuple.Tuple) tuple.Value {
			lv, rv := l(t), r(t)
			if lv.IsNull() || rv.IsNull() {
				return tuple.Null
			}
			return arith(op, lv, rv)
		}, nil
	default:
		return nil, fmt.Errorf("algebra: unknown binary operator %d", op)
	}
}

type triBool int

const (
	tvUnknown triBool = iota
	tvFalse
	tvTrue
)

func boolState(v tuple.Value) triBool {
	if v.IsNull() {
		return tvUnknown
	}
	if v.AsBool() {
		return tvTrue
	}
	return tvFalse
}

func arith(op BinOpKind, l, r tuple.Value) tuple.Value {
	if l.Kind() == tuple.KindInt && r.Kind() == tuple.KindInt && op != OpDiv {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case OpAdd:
			return tuple.Int(a + b)
		case OpSub:
			return tuple.Int(a - b)
		default:
			return tuple.Int(a * b)
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return tuple.Float(a + b)
	case OpSub:
		return tuple.Float(a - b)
	case OpMul:
		return tuple.Float(a * b)
	default:
		if b == 0 {
			return tuple.Null
		}
		return tuple.Float(a / b)
	}
}

// Truthy evaluates a compiled predicate under SQL WHERE semantics:
// NULL (unknown) filters the row out.
func Truthy(v tuple.Value) bool { return !v.IsNull() && v.AsBool() }

// MustCompile is Compile for statically known-good expressions; it panics
// on error and is intended for tests and built-in workload definitions.
func MustCompile(e Expr, s tuple.Schema) Compiled {
	c, err := Compile(e, s)
	if err != nil {
		panic(err)
	}
	return c
}
