package algebra

import (
	"strings"
	"testing"

	"snapk/internal/krel"
	"snapk/internal/tuple"
)

var optCat = MapCatalog{
	"works":  tuple.NewSchema("name", "skill"),
	"assign": tuple.NewSchema("mach", "skill"),
}

func TestOptimizeMergesCascadingSelects(t *testing.T) {
	q := Select{
		Pred: Eq(Col("skill"), StrC("SP")),
		In:   Select{Pred: Ne(Col("name"), StrC("Joe")), In: Rel{Name: "works"}},
	}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := opt.(Select)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if _, nested := sel.In.(Select); nested {
		t.Fatalf("selections not merged: %s", opt)
	}
	if !strings.Contains(sel.Pred.String(), "AND") {
		t.Fatalf("predicates not conjoined: %s", sel.Pred)
	}
}

func TestOptimizePushesThroughJoin(t *testing.T) {
	// σ(name<>'Joe' ∧ mach='M1')(works ⋈ assign): the first conjunct goes
	// left, the second right, nothing remains above.
	q := Select{
		Pred: And(Ne(Col("name"), StrC("Joe")), Eq(Col("mach"), StrC("M1"))),
		In: Join{
			L:    Rel{Name: "works"},
			R:    Rel{Name: "assign"},
			Pred: Eq(Col("skill"), Col("r.skill")),
		},
	}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	if _, stillAbove := opt.(Select); stillAbove {
		t.Fatalf("selection not fully pushed: %s", opt)
	}
	if got := CountSelectsBelowJoins(opt); got != 2 {
		t.Fatalf("selects below joins = %d, want 2: %s", got, opt)
	}
	// Schema must be unchanged.
	s1, err := OutSchema(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OutSchema(opt, optCat)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatalf("schema changed: %v vs %v", s1, s2)
	}
}

func TestOptimizePushesRenamedRightColumns(t *testing.T) {
	// The right side's skill column is renamed to r.skill in the join
	// output; a conjunct over r.skill must be rewritten back to skill.
	q := Select{
		Pred: Eq(Col("r.skill"), StrC("SP")),
		In:   Join{L: Rel{Name: "works"}, R: Rel{Name: "assign"}, Pred: BoolC(true)},
	}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := opt.(Join)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	rs, ok := j.R.(Select)
	if !ok {
		t.Fatalf("right side = %s", j.R)
	}
	if !strings.Contains(rs.Pred.String(), "skill = 'SP'") || strings.Contains(rs.Pred.String(), "r.skill") {
		t.Fatalf("right predicate = %s", rs.Pred)
	}
}

func TestOptimizePushesThroughUnionAndDiff(t *testing.T) {
	base := ProjectCols(Rel{Name: "works"}, "skill")
	q := Select{
		Pred: Eq(Col("skill"), StrC("SP")),
		In:   Diff{L: Union{L: base, R: base}, R: base},
	}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	if _, stillAbove := opt.(Select); stillAbove {
		t.Fatalf("selection not distributed: %s", opt)
	}
	// The selection must now sit below the projections (substituted).
	found := 0
	Walk(opt, func(n Query) {
		if _, ok := n.(Select); ok {
			found++
		}
	})
	if found != 3 {
		t.Fatalf("expected 3 pushed selections, got %d: %s", found, opt)
	}
}

func TestOptimizePushesThroughProjectionSubstitution(t *testing.T) {
	// σ(v > 5)(Π(v := a+1)) becomes Π(σ(a+1 > 5)).
	q := Select{
		Pred: Gt(Col("v"), IntC(5)),
		In: Project{
			Exprs: []NamedExpr{{Name: "v", E: Add(Col("mach"), IntC(1))}},
			In:    Rel{Name: "assign"},
		},
	}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := opt.(Project)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	s, ok := p.In.(Select)
	if !ok {
		t.Fatalf("projection input = %s", p.In)
	}
	if !strings.Contains(s.Pred.String(), "mach + 1") {
		t.Fatalf("substituted predicate = %s", s.Pred)
	}
}

func TestOptimizeAggGroupColumnPushdown(t *testing.T) {
	agg := Agg{
		GroupBy: []string{"skill"},
		Aggs:    []AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:      Rel{Name: "works"},
	}
	// skill is a grouping column: pushable. cnt is computed: not pushable.
	q := Select{Pred: And(Eq(Col("skill"), StrC("SP")), Gt(Col("cnt"), IntC(0))), In: agg}
	opt, err := Optimize(q, optCat)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := opt.(Select)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if !strings.Contains(top.Pred.String(), "cnt") || strings.Contains(top.Pred.String(), "skill") {
		t.Fatalf("top predicate = %s", top.Pred)
	}
	inner, ok := top.In.(Agg)
	if !ok {
		t.Fatalf("below top = %s", top.In)
	}
	if _, ok := inner.In.(Select); !ok {
		t.Fatalf("group predicate not pushed below agg: %s", inner.In)
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(Rel{Name: "nope"}, optCat); err == nil {
		t.Fatal("unknown relation must error")
	}
	bad := Select{Pred: Col("zzz"), In: Rel{Name: "works"}}
	if _, err := Optimize(bad, optCat); err == nil {
		t.Fatal("bad predicate must error")
	}
}

func TestCountSelectsBelowJoins(t *testing.T) {
	q := Join{
		L:    Select{Pred: BoolC(true), In: Rel{Name: "works"}},
		R:    Rel{Name: "assign"},
		Pred: BoolC(true),
	}
	if got := CountSelectsBelowJoins(q); got != 1 {
		t.Fatalf("count = %d", got)
	}
	if got := CountSelectsBelowJoins(Select{Pred: BoolC(true), In: Rel{Name: "works"}}); got != 0 {
		t.Fatalf("count above joins = %d", got)
	}
}
