package algebra

import (
	"fmt"
	"strings"

	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// Query is a node of the RA_agg query tree. Queries are independent of
// the model layer: the abstract oracle, the logical evaluator and the
// rewritten engine plans all interpret the same tree.
type Query interface {
	queryNode()
	String() string
}

// Rel scans a base relation by catalog name.
type Rel struct{ Name string }

// Select filters tuples by a boolean predicate (σ_θ).
type Select struct {
	Pred Expr
	In   Query
}

// NamedExpr is a projection item: an expression with an output column name.
type NamedExpr struct {
	Name string
	E    Expr
}

// Project evaluates projection expressions (Π_A, duplicate-preserving:
// annotations of colliding tuples are summed).
type Project struct {
	Exprs []NamedExpr
	In    Query
}

// Join is an inner θ-join. The output schema is the concatenation of both
// input schemas with right-side collisions prefixed "r."; the predicate
// is evaluated over the concatenated tuple.
type Join struct {
	L, R Query
	Pred Expr
}

// Union is bag union (UNION ALL); inputs must be union-compatible.
type Union struct{ L, R Query }

// Diff is monus difference (EXCEPT ALL under ℕ); inputs must be
// union-compatible.
type Diff struct{ L, R Query }

// AggSpec is one aggregation function application. Arg is the input
// column; it is ignored for count(*).
type AggSpec struct {
	Fn  krel.AggFunc
	Arg string
	As  string
}

// Agg groups the input on the GroupBy columns and evaluates every AggSpec
// (Def 7.1, extended to several aggregation functions per grouping). The
// output schema is GroupBy columns followed by one column per spec.
type Agg struct {
	GroupBy []string
	Aggs    []AggSpec
	In      Query
}

func (Rel) queryNode()     {}
func (Select) queryNode()  {}
func (Project) queryNode() {}
func (Join) queryNode()    {}
func (Union) queryNode()   {}
func (Diff) queryNode()    {}
func (Agg) queryNode()     {}

func (q Rel) String() string    { return q.Name }
func (q Select) String() string { return fmt.Sprintf("σ[%s](%s)", q.Pred, q.In) }
func (q Project) String() string {
	parts := make([]string, len(q.Exprs))
	for i, ne := range q.Exprs {
		parts[i] = fmt.Sprintf("%s→%s", ne.E, ne.Name)
	}
	return fmt.Sprintf("Π[%s](%s)", strings.Join(parts, ", "), q.In)
}
func (q Join) String() string  { return fmt.Sprintf("(%s ⋈[%s] %s)", q.L, q.Pred, q.R) }
func (q Union) String() string { return fmt.Sprintf("(%s ∪ %s)", q.L, q.R) }
func (q Diff) String() string  { return fmt.Sprintf("(%s − %s)", q.L, q.R) }
func (q Agg) String() string {
	parts := make([]string, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Fn == krel.CountStar {
			parts[i] = fmt.Sprintf("count(*)→%s", a.As)
		} else {
			parts[i] = fmt.Sprintf("%s(%s)→%s", a.Fn, a.Arg, a.As)
		}
	}
	return fmt.Sprintf("γ[%s; %s](%s)", strings.Join(q.GroupBy, ","), strings.Join(parts, ", "), q.In)
}

// ProjectCols is a convenience constructor projecting the named columns
// unchanged.
func ProjectCols(in Query, cols ...string) Project {
	exprs := make([]NamedExpr, len(cols))
	for i, c := range cols {
		exprs[i] = NamedExpr{Name: c, E: Col(c)}
	}
	return Project{Exprs: exprs, In: in}
}

// Catalog resolves base-relation names to their (non-temporal) schemas.
type Catalog interface {
	RelationSchema(name string) (tuple.Schema, error)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]tuple.Schema

// RelationSchema implements Catalog.
func (c MapCatalog) RelationSchema(name string) (tuple.Schema, error) {
	s, ok := c[name]
	if !ok {
		return tuple.Schema{}, fmt.Errorf("algebra: unknown relation %q", name)
	}
	return s, nil
}

// OutSchema computes the output schema of a query against a catalog,
// validating column references along the way. Every evaluator derives
// its result schema from this single implementation so all three model
// layers agree on output shape.
func OutSchema(q Query, cat Catalog) (tuple.Schema, error) {
	switch n := q.(type) {
	case Rel:
		return cat.RelationSchema(n.Name)
	case Select:
		s, err := OutSchema(n.In, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		if _, err := Compile(n.Pred, s); err != nil {
			return tuple.Schema{}, err
		}
		return s, nil
	case Project:
		s, err := OutSchema(n.In, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		cols := make([]string, len(n.Exprs))
		for i, ne := range n.Exprs {
			if _, err := Compile(ne.E, s); err != nil {
				return tuple.Schema{}, err
			}
			cols[i] = ne.Name
		}
		return tuple.NewSchema(cols...), nil
	case Join:
		ls, err := OutSchema(n.L, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		rs, err := OutSchema(n.R, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		out := ls.Concat(rs, "r.")
		if _, err := Compile(n.Pred, out); err != nil {
			return tuple.Schema{}, err
		}
		return out, nil
	case Union, Diff:
		var l, r Query
		if u, ok := n.(Union); ok {
			l, r = u.L, u.R
		} else {
			d := n.(Diff)
			l, r = d.L, d.R
		}
		ls, err := OutSchema(l, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		rs, err := OutSchema(r, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		if ls.Arity() != rs.Arity() {
			return tuple.Schema{}, fmt.Errorf("algebra: union-incompatible arities %d and %d", ls.Arity(), rs.Arity())
		}
		return ls, nil
	case Agg:
		s, err := OutSchema(n.In, cat)
		if err != nil {
			return tuple.Schema{}, err
		}
		cols := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			if s.Index(g) < 0 {
				return tuple.Schema{}, fmt.Errorf("algebra: unknown group-by column %q", g)
			}
			cols = append(cols, g)
		}
		for _, a := range n.Aggs {
			if a.Fn != krel.CountStar && s.Index(a.Arg) < 0 {
				return tuple.Schema{}, fmt.Errorf("algebra: unknown aggregation column %q", a.Arg)
			}
			cols = append(cols, a.As)
		}
		return tuple.NewSchema(cols...), nil
	default:
		return tuple.Schema{}, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

// Walk visits q and all of its descendants in pre-order.
func Walk(q Query, visit func(Query)) {
	visit(q)
	switch n := q.(type) {
	case Select:
		Walk(n.In, visit)
	case Project:
		Walk(n.In, visit)
	case Join:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case Union:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case Diff:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case Agg:
		Walk(n.In, visit)
	}
}

// BaseRelations returns the distinct base-relation names referenced by q,
// in first-use order.
func BaseRelations(q Query) []string {
	var names []string
	seen := map[string]struct{}{}
	Walk(q, func(n Query) {
		if r, ok := n.(Rel); ok {
			if _, dup := seen[r.Name]; !dup {
				seen[r.Name] = struct{}{}
				names = append(names, r.Name)
			}
		}
	})
	return names
}
