package algebra

import (
	"strings"
	"testing"

	"snapk/internal/krel"
	"snapk/internal/tuple"
)

var testSchema = tuple.NewSchema("a", "b", "s")

func evalOn(t *testing.T, e Expr, tup tuple.Tuple) tuple.Value {
	t.Helper()
	c, err := Compile(e, testSchema)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	return c(tup)
}

func TestCompileColAndConst(t *testing.T) {
	tup := tuple.Tuple{tuple.Int(3), tuple.Int(7), tuple.String_("x")}
	if got := evalOn(t, Col("b"), tup); got.AsInt() != 7 {
		t.Errorf("Col = %v", got)
	}
	if got := evalOn(t, IntC(42), tup); got.AsInt() != 42 {
		t.Errorf("IntC = %v", got)
	}
	if got := evalOn(t, StrC("hi"), tup); got.AsString() != "hi" {
		t.Errorf("StrC = %v", got)
	}
	if got := evalOn(t, FloatC(1.5), tup); got.AsFloat() != 1.5 {
		t.Errorf("FloatC = %v", got)
	}
	if got := evalOn(t, BoolC(true), tup); !got.AsBool() {
		t.Errorf("BoolC = %v", got)
	}
	if got := evalOn(t, NullC(), tup); !got.IsNull() {
		t.Errorf("NullC = %v", got)
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	if _, err := Compile(Col("zzz"), testSchema); err == nil {
		t.Fatal("expected error for unknown column")
	}
	if _, err := Compile(Eq(Col("zzz"), IntC(1)), testSchema); err == nil {
		t.Fatal("expected nested error for unknown column")
	}
}

func TestComparisons(t *testing.T) {
	tup := tuple.Tuple{tuple.Int(3), tuple.Int(7), tuple.String_("x")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(Col("a"), IntC(3)), true},
		{Ne(Col("a"), IntC(3)), false},
		{Lt(Col("a"), Col("b")), true},
		{Le(Col("a"), IntC(3)), true},
		{Gt(Col("b"), IntC(10)), false},
		{Ge(Col("b"), IntC(7)), true},
		{Eq(Col("s"), StrC("x")), true},
	}
	for _, c := range cases {
		if got := evalOn(t, c.e, tup); got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestNullComparisonIsUnknown(t *testing.T) {
	tup := tuple.Tuple{tuple.Null, tuple.Int(7), tuple.String_("x")}
	got := evalOn(t, Eq(Col("a"), IntC(3)), tup)
	if !got.IsNull() {
		t.Errorf("NULL = 3 should be NULL, got %v", got)
	}
	if Truthy(got) {
		t.Error("unknown must not be truthy")
	}
	if !Truthy(tuple.Bool(true)) || Truthy(tuple.Bool(false)) {
		t.Error("Truthy broken")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tup := tuple.Tuple{tuple.Null, tuple.Int(7), tuple.String_("x")}
	null := Eq(Col("a"), IntC(1)) // unknown
	// false AND unknown = false; true OR unknown = true.
	if got := evalOn(t, And(BoolC(false), null), tup); got.IsNull() || got.AsBool() {
		t.Errorf("false AND unknown = %v", got)
	}
	if got := evalOn(t, Or(BoolC(true), null), tup); got.IsNull() || !got.AsBool() {
		t.Errorf("true OR unknown = %v", got)
	}
	if got := evalOn(t, And(BoolC(true), null), tup); !got.IsNull() {
		t.Errorf("true AND unknown = %v", got)
	}
	if got := evalOn(t, Or(BoolC(false), null), tup); !got.IsNull() {
		t.Errorf("false OR unknown = %v", got)
	}
	if got := evalOn(t, Not{E: null}, tup); !got.IsNull() {
		t.Errorf("NOT unknown = %v", got)
	}
	if got := evalOn(t, Not{E: BoolC(true)}, tup); got.AsBool() {
		t.Errorf("NOT true = %v", got)
	}
	if got := evalOn(t, IsNullExpr{E: Col("a")}, tup); !got.AsBool() {
		t.Errorf("a IS NULL = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	tup := tuple.Tuple{tuple.Int(6), tuple.Int(4), tuple.String_("x")}
	if got := evalOn(t, Add(Col("a"), Col("b")), tup); got.AsInt() != 10 {
		t.Errorf("6+4 = %v", got)
	}
	if got := evalOn(t, Sub(Col("a"), Col("b")), tup); got.AsInt() != 2 {
		t.Errorf("6-4 = %v", got)
	}
	if got := evalOn(t, Mul(Col("a"), Col("b")), tup); got.AsInt() != 24 {
		t.Errorf("6*4 = %v", got)
	}
	if got := evalOn(t, Div(Col("a"), Col("b")), tup); got.AsFloat() != 1.5 {
		t.Errorf("6/4 = %v", got)
	}
	if got := evalOn(t, Div(Col("a"), IntC(0)), tup); !got.IsNull() {
		t.Errorf("6/0 = %v, want NULL", got)
	}
	if got := evalOn(t, Add(Col("a"), NullC()), tup); !got.IsNull() {
		t.Errorf("6+NULL = %v, want NULL", got)
	}
	if got := evalOn(t, Mul(FloatC(0.5), Col("a")), tup); got.AsFloat() != 3.0 {
		t.Errorf("0.5*6 = %v", got)
	}
}

func TestAndOrEmpty(t *testing.T) {
	tup := tuple.Tuple{tuple.Int(1), tuple.Int(2), tuple.String_("x")}
	if got := evalOn(t, And(), tup); !got.AsBool() {
		t.Error("empty And should be true")
	}
	if got := evalOn(t, Or(), tup); got.AsBool() {
		t.Error("empty Or should be false")
	}
}

func TestExprString(t *testing.T) {
	e := And(Eq(Col("skill"), StrC("SP")), Gt(Col("a"), IntC(3)))
	s := e.String()
	if !strings.Contains(s, "skill = 'SP'") || !strings.Contains(s, "AND") {
		t.Errorf("String = %q", s)
	}
	if got := (Not{E: Col("a")}).String(); got != "NOT (a)" {
		t.Errorf("Not String = %q", got)
	}
	if got := (IsNullExpr{E: Col("a")}).String(); got != "(a IS NULL)" {
		t.Errorf("IsNull String = %q", got)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on unknown column")
		}
	}()
	MustCompile(Col("nope"), testSchema)
}

var cat = MapCatalog{
	"works":  tuple.NewSchema("name", "skill"),
	"assign": tuple.NewSchema("mach", "skill"),
}

func TestOutSchemaRelSelectProject(t *testing.T) {
	s, err := OutSchema(Select{Pred: Eq(Col("skill"), StrC("SP")), In: Rel{Name: "works"}}, cat)
	if err != nil || !s.Equal(tuple.NewSchema("name", "skill")) {
		t.Fatalf("schema = %v, err %v", s, err)
	}
	p, err := OutSchema(ProjectCols(Rel{Name: "works"}, "skill"), cat)
	if err != nil || !p.Equal(tuple.NewSchema("skill")) {
		t.Fatalf("schema = %v, err %v", p, err)
	}
	if _, err := OutSchema(Rel{Name: "nope"}, cat); err == nil {
		t.Fatal("unknown relation must error")
	}
	if _, err := OutSchema(Select{Pred: Col("zzz"), In: Rel{Name: "works"}}, cat); err == nil {
		t.Fatal("bad predicate must error")
	}
}

func TestOutSchemaJoinRenamesCollisions(t *testing.T) {
	j := Join{L: Rel{Name: "works"}, R: Rel{Name: "assign"}, Pred: Eq(Col("skill"), Col("r.skill"))}
	s, err := OutSchema(j, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(tuple.NewSchema("name", "skill", "mach", "r.skill")) {
		t.Fatalf("schema = %v", s)
	}
}

func TestOutSchemaUnionDiff(t *testing.T) {
	u := Union{L: ProjectCols(Rel{Name: "works"}, "skill"), R: ProjectCols(Rel{Name: "assign"}, "skill")}
	if _, err := OutSchema(u, cat); err != nil {
		t.Fatal(err)
	}
	bad := Diff{L: Rel{Name: "works"}, R: ProjectCols(Rel{Name: "assign"}, "skill")}
	if _, err := OutSchema(bad, cat); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestOutSchemaAgg(t *testing.T) {
	a := Agg{
		GroupBy: []string{"skill"},
		Aggs:    []AggSpec{{Fn: krel.CountStar, As: "cnt"}, {Fn: krel.Min, Arg: "name", As: "first"}},
		In:      Rel{Name: "works"},
	}
	s, err := OutSchema(a, cat)
	if err != nil || !s.Equal(tuple.NewSchema("skill", "cnt", "first")) {
		t.Fatalf("schema = %v, err %v", s, err)
	}
	bad := Agg{GroupBy: []string{"zzz"}, Aggs: []AggSpec{{Fn: krel.CountStar, As: "c"}}, In: Rel{Name: "works"}}
	if _, err := OutSchema(bad, cat); err == nil {
		t.Fatal("unknown group-by column must error")
	}
	bad2 := Agg{Aggs: []AggSpec{{Fn: krel.Sum, Arg: "zzz", As: "s"}}, In: Rel{Name: "works"}}
	if _, err := OutSchema(bad2, cat); err == nil {
		t.Fatal("unknown agg column must error")
	}
}

func TestQueryString(t *testing.T) {
	q := Agg{
		Aggs: []AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:   Select{Pred: Eq(Col("skill"), StrC("SP")), In: Rel{Name: "works"}},
	}
	s := q.String()
	for _, frag := range []string{"γ", "count(*)→cnt", "σ", "works"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
	j := Join{L: Rel{Name: "a"}, R: Rel{Name: "b"}, Pred: BoolC(true)}
	if !strings.Contains(j.String(), "⋈") {
		t.Errorf("Join String = %q", j.String())
	}
	u := Union{L: Rel{Name: "a"}, R: Rel{Name: "b"}}
	if u.String() != "(a ∪ b)" {
		t.Errorf("Union String = %q", u.String())
	}
	d := Diff{L: Rel{Name: "a"}, R: Rel{Name: "b"}}
	if d.String() != "(a − b)" {
		t.Errorf("Diff String = %q", d.String())
	}
	p := ProjectCols(Rel{Name: "a"}, "x")
	if !strings.Contains(p.String(), "Π") {
		t.Errorf("Project String = %q", p.String())
	}
}

func TestWalkAndBaseRelations(t *testing.T) {
	q := Diff{
		L: ProjectCols(Rel{Name: "assign"}, "skill"),
		R: Union{L: ProjectCols(Rel{Name: "works"}, "skill"), R: ProjectCols(Rel{Name: "works"}, "skill")},
	}
	names := BaseRelations(q)
	if len(names) != 2 || names[0] != "assign" || names[1] != "works" {
		t.Fatalf("BaseRelations = %v", names)
	}
	count := 0
	Walk(q, func(Query) { count++ })
	if count != 8 {
		t.Fatalf("Walk visited %d nodes, want 8", count)
	}
	// Agg node walk.
	count = 0
	Walk(Agg{Aggs: []AggSpec{{Fn: krel.CountStar, As: "c"}}, In: Rel{Name: "works"}}, func(Query) { count++ })
	if count != 2 {
		t.Fatalf("Agg walk visited %d", count)
	}
}
