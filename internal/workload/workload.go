// Package workload defines the two benchmark query workloads of the
// paper's evaluation (§10.1): the ten Employee queries (join-1..4,
// agg-1..3, agg-join, diff-1..2) and the nine TPC-H queries evaluated
// under snapshot semantics over the valid-time TPC-BiH dataset. Queries
// are written in the middleware's SQL dialect and translated through the
// sqlfe frontend, exactly as a middleware user would submit them.
package workload

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/sqlfe"
)

// Query is one benchmark workload entry.
type Query struct {
	// ID is the paper's query name, e.g. "join-1" or "Q5".
	ID string
	// SQL is the snapshot query in the middleware dialect.
	SQL string
	// Bug names the bug ("AG" or "BD") that native approaches exhibit on
	// this query per Table 3, or "" if none.
	Bug string
	// Description is a one-line summary from §10.1.
	Description string
}

// Translate parses the workload query against the catalog.
func (q Query) Translate(cat algebra.Catalog) (algebra.Query, error) {
	aq, err := sqlfe.ParseAndTranslate(q.SQL, cat)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", q.ID, err)
	}
	return aq, nil
}

// Employees returns the ten Employee-dataset queries of §10.1.
func Employees() []Query {
	return []Query{
		{
			ID:          "join-1",
			Description: "salary and department for each employee",
			SQL: `SEQ VT (
				SELECT s.emp_no AS emp_no, s.salary AS salary, d.dept_no AS dept_no
				FROM salaries s JOIN dept_emp d ON s.emp_no = d.emp_no
			)`,
		},
		{
			ID:          "join-2",
			Description: "salary and title for each employee",
			SQL: `SEQ VT (
				SELECT s.emp_no AS emp_no, s.salary AS salary, t.title AS title
				FROM salaries s JOIN titles t ON s.emp_no = t.emp_no
			)`,
		},
		{
			ID:          "join-3",
			Description: "departments of managers earning more than $70,000",
			SQL: `SEQ VT (
				SELECT m.dept_no AS dept_no
				FROM dept_manager m JOIN salaries s ON m.emp_no = s.emp_no
				WHERE s.salary > 70000
			)`,
		},
		{
			ID:          "join-4",
			Description: "all information for each manager",
			SQL: `SEQ VT (
				SELECT m.emp_no AS emp_no, m.dept_no AS dept_no, s.salary AS salary, e.name AS name
				FROM dept_manager m
				JOIN salaries s ON m.emp_no = s.emp_no
				JOIN employees e ON m.emp_no = e.emp_no
			)`,
		},
		{
			ID:          "agg-1",
			Description: "average salary of employees per department",
			SQL: `SEQ VT (
				SELECT d.dept_no AS dept_no, avg(s.salary) AS avg_salary
				FROM salaries s JOIN dept_emp d ON s.emp_no = d.emp_no
				GROUP BY d.dept_no
			)`,
		},
		{
			ID:          "agg-2",
			Bug:         "AG",
			Description: "average salary of managers (aggregation without grouping)",
			SQL: `SEQ VT (
				SELECT avg(s.salary) AS avg_salary
				FROM dept_manager m JOIN salaries s ON m.emp_no = s.emp_no
			)`,
		},
		{
			ID:          "agg-3",
			Bug:         "AG",
			Description: "number of departments with more than 21 employees",
			SQL: `SEQ VT (
				SELECT count(*) AS cnt
				FROM (
					SELECT d.dept_no AS dept_no, count(*) AS emps
					FROM dept_emp d GROUP BY d.dept_no
				) AS x
				WHERE x.emps > 21
			)`,
		},
		{
			ID:          "agg-join",
			Description: "names of employees with the highest salary in their department",
			SQL: `SEQ VT (
				SELECT e.name AS name
				FROM employees e
				JOIN dept_emp de ON e.emp_no = de.emp_no
				JOIN salaries s ON e.emp_no = s.emp_no
				JOIN (
					SELECT d.dept_no AS dept_no, max(s2.salary) AS max_salary
					FROM salaries s2 JOIN dept_emp d ON s2.emp_no = d.emp_no
					GROUP BY d.dept_no
				) AS mx ON de.dept_no = mx.dept_no
				WHERE s.salary = mx.max_salary
			)`,
		},
		{
			ID:          "diff-1",
			Bug:         "BD",
			Description: "employees that are not managers",
			SQL: `SEQ VT (
				SELECT e.emp_no AS emp_no FROM employees e
				EXCEPT ALL
				SELECT m.emp_no AS emp_no FROM dept_manager m
			)`,
		},
		{
			ID:          "diff-2",
			Bug:         "BD",
			Description: "salaries of employees that are not managers",
			SQL: `SEQ VT (
				SELECT s.salary AS salary FROM salaries s
				EXCEPT ALL
				SELECT s2.salary AS salary
				FROM dept_manager m JOIN salaries s2 ON m.emp_no = s2.emp_no
			)`,
		},
	}
}

// TPCH returns the nine TPC-H queries the paper evaluates under snapshot
// semantics over TPC-BiH (Q1, Q5–Q9, Q12, Q14, Q19; date predicates are
// dropped because the valid-time dimension itself provides the temporal
// scoping, and unsupported CASE expressions are simplified to their
// filtering core, as the paper does for ORDER BY).
func TPCH() []Query {
	return []Query{
		{
			ID:          "Q1",
			Description: "pricing summary report per returnflag/linestatus",
			SQL: `SEQ VT (
				SELECT l_returnflag, l_linestatus,
				       sum(l_quantity) AS sum_qty,
				       sum(l_extendedprice) AS sum_base_price,
				       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
				       avg(l_quantity) AS avg_qty,
				       avg(l_extendedprice) AS avg_price,
				       avg(l_discount) AS avg_disc,
				       count(*) AS count_order
				FROM lineitem
				GROUP BY l_returnflag, l_linestatus
			)`,
		},
		{
			ID:          "Q5",
			Description: "local supplier volume per nation in ASIA",
			SQL: `SEQ VT (
				SELECT n.n_name AS n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
				FROM customer c
				JOIN orders o ON c.c_custkey = o.o_custkey
				JOIN lineitem l ON l.l_orderkey = o.o_orderkey
				JOIN supplier s ON l.l_suppkey = s.s_suppkey
				JOIN nation n ON s.s_nationkey = n.n_nationkey
				JOIN region r ON n.n_regionkey = r.r_regionkey
				WHERE c.c_nationkey = s.s_nationkey AND r.r_name = 'ASIA'
				GROUP BY n.n_name
			)`,
		},
		{
			ID:          "Q6",
			Bug:         "AG",
			Description: "forecast revenue change (global aggregation)",
			SQL: `SEQ VT (
				SELECT sum(l_extendedprice * l_discount) AS revenue
				FROM lineitem
				WHERE l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24
			)`,
		},
		{
			ID:          "Q7",
			Description: "volume shipping between FRANCE and GERMANY",
			SQL: `SEQ VT (
				SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
				       sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
				FROM supplier s
				JOIN lineitem l ON s.s_suppkey = l.l_suppkey
				JOIN orders o ON o.o_orderkey = l.l_orderkey
				JOIN customer c ON c.c_custkey = o.o_custkey
				JOIN nation n1 ON s.s_nationkey = n1.n_nationkey
				JOIN nation n2 ON c.c_nationkey = n2.n_nationkey
				WHERE (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
				   OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')
				GROUP BY n1.n_name, n2.n_name
			)`,
		},
		{
			ID:          "Q8",
			Description: "national market share volume in AMERICA",
			SQL: `SEQ VT (
				SELECT n2.n_name AS nation, sum(l.l_extendedprice * (1 - l.l_discount)) AS volume
				FROM part p
				JOIN lineitem l ON p.p_partkey = l.l_partkey
				JOIN supplier s ON l.l_suppkey = s.s_suppkey
				JOIN orders o ON l.l_orderkey = o.o_orderkey
				JOIN customer c ON o.o_custkey = c.c_custkey
				JOIN nation n1 ON c.c_nationkey = n1.n_nationkey
				JOIN region r ON n1.n_regionkey = r.r_regionkey
				JOIN nation n2 ON s.s_nationkey = n2.n_nationkey
				WHERE r.r_name = 'AMERICA' AND p.p_type = 'ECONOMY ANODIZED STEEL'
				GROUP BY n2.n_name
			)`,
		},
		{
			ID:          "Q9",
			Description: "product type profit per nation",
			SQL: `SEQ VT (
				SELECT n.n_name AS nation,
				       sum(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS profit
				FROM part p
				JOIN lineitem l ON p.p_partkey = l.l_partkey
				JOIN supplier s ON l.l_suppkey = s.s_suppkey
				JOIN partsupp ps ON ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey
				JOIN nation n ON s.s_nationkey = n.n_nationkey
				WHERE p.p_category = 'ECONOMY'
				GROUP BY n.n_name
			)`,
		},
		{
			ID:          "Q12",
			Description: "shipping mode line counts for MAIL and SHIP",
			SQL: `SEQ VT (
				SELECT l.l_shipmode AS l_shipmode, count(*) AS line_count
				FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
				WHERE l.l_shipmode = 'MAIL' OR l.l_shipmode = 'SHIP'
				GROUP BY l.l_shipmode
			)`,
		},
		{
			ID:          "Q14",
			Bug:         "AG",
			Description: "promotion effect revenue (global aggregation)",
			SQL: `SEQ VT (
				SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
				FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
				WHERE p.p_category = 'PROMO'
			)`,
		},
		{
			ID:          "Q19",
			Bug:         "AG",
			Description: "discounted revenue for qualified parts (global aggregation)",
			SQL: `SEQ VT (
				SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
				FROM lineitem l JOIN part p ON p.p_partkey = l.l_partkey
				WHERE (p.p_brand = 'Brand#12' AND l.l_quantity >= 1 AND l.l_quantity <= 11 AND p.p_size <= 5
				       AND l.l_shipinstruct = 'DELIVER IN PERSON')
				   OR (p.p_brand = 'Brand#23' AND l.l_quantity >= 10 AND l.l_quantity <= 20 AND p.p_size <= 10
				       AND l.l_shipinstruct = 'DELIVER IN PERSON')
				   OR (p.p_brand = 'Brand#34' AND l.l_quantity >= 20 AND l.l_quantity <= 30 AND p.p_size <= 15
				       AND l.l_shipinstruct = 'DELIVER IN PERSON')
			)`,
		},
	}
}

// ByID returns the query with the given ID from qs, or false.
func ByID(qs []Query, id string) (Query, bool) {
	for _, q := range qs {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}
