package workload_test

import (
	"testing"

	"snapk/internal/baseline"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/rewrite"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
	"snapk/internal/workload"
)

func smallEmployees() *engine.DB {
	return dataset.Employees(dataset.EmployeesConfig{NumEmployees: 150, NumDepartments: 5, Seed: 42})
}

func smallTPCBiH() *engine.DB {
	return dataset.TPCBiH(dataset.TPCBiHConfig{ScaleFactor: 0.05, Seed: 7})
}

// TestEmployeeQueriesRun translates and executes all ten Employee queries
// and checks that optimized and naive rewrite modes agree — the §9
// optimizations must not change results.
func TestEmployeeQueriesRun(t *testing.T) {
	db := smallEmployees()
	alg := telement.NewMAlgebra[int64](semiring.N, db.Domain())
	for _, wq := range workload.Employees() {
		q, err := wq.Translate(db)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		opt, err := rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			t.Fatalf("%s optimized: %v", wq.ID, err)
		}
		naive, err := rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeNaive})
		if err != nil {
			t.Fatalf("%s naive: %v", wq.ID, err)
		}
		if !engine.EqualAsPeriodRelations(opt, naive, alg) {
			t.Fatalf("%s: optimized and naive modes disagree", wq.ID)
		}
		if !engine.IsCoalesced(opt, engine.CoalesceNative) {
			t.Fatalf("%s: result not coalesced", wq.ID)
		}
		if opt.Len() == 0 && wq.ID != "join-3" {
			t.Errorf("%s: empty result on test data", wq.ID)
		}
	}
}

// TestTPCHQueriesRun does the same for the nine TPC-BiH queries.
func TestTPCHQueriesRun(t *testing.T) {
	db := smallTPCBiH()
	alg := telement.NewMAlgebra[int64](semiring.N, db.Domain())
	for _, wq := range workload.TPCH() {
		q, err := wq.Translate(db)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		opt, err := rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			t.Fatalf("%s optimized: %v", wq.ID, err)
		}
		naive, err := rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeNaive})
		if err != nil {
			t.Fatalf("%s naive: %v", wq.ID, err)
		}
		if !engine.EqualAsPeriodRelations(opt, naive, alg) {
			t.Fatalf("%s: optimized and naive modes disagree", wq.ID)
		}
	}
}

// TestAGFlaggedQueriesHaveGapRows: the queries flagged AG in Table 3 are
// exactly those whose correct result contains rows over gaps that the
// native approaches miss.
func TestAGFlaggedQueriesHaveGapRows(t *testing.T) {
	db := smallEmployees()
	for _, id := range []string{"agg-2", "agg-3"} {
		wq, ok := workload.ByID(workload.Employees(), id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		q, err := wq.Translate(db)
		if err != nil {
			t.Fatal(err)
		}
		correct, err := rewrite.Run(db, q, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		buggy, err := baseline.Eval(db, q, baseline.IntervalPreservation)
		if err != nil {
			t.Fatal(err)
		}
		buggyC := engine.Coalesce(buggy, engine.CoalesceNative)
		if buggyC.Len() >= correct.Len() {
			t.Errorf("%s: expected the AG bug to lose rows (buggy %d, correct %d)", id, buggyC.Len(), correct.Len())
		}
	}
}

// TestBDFlaggedQueriesDiffer: the diff queries flagged BD produce strictly
// fewer rows under NOT EXISTS semantics.
func TestBDFlaggedQueriesDiffer(t *testing.T) {
	db := smallEmployees()
	alg := telement.NewMAlgebra[int64](semiring.N, db.Domain())
	for _, id := range []string{"diff-2"} {
		wq, _ := workload.ByID(workload.Employees(), id)
		q, err := wq.Translate(db)
		if err != nil {
			t.Fatal(err)
		}
		correct, err := rewrite.Run(db, q, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		buggy, err := baseline.Eval(db, q, baseline.IntervalPreservation)
		if err != nil {
			t.Fatal(err)
		}
		if engine.EqualAsPeriodRelations(correct, buggy, alg) {
			t.Errorf("%s: NOT EXISTS difference unexpectedly matches bag difference", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := workload.ByID(workload.Employees(), "join-1"); !ok {
		t.Error("join-1 missing")
	}
	if _, ok := workload.ByID(workload.Employees(), "nope"); ok {
		t.Error("nope found")
	}
	if len(workload.Employees()) != 10 {
		t.Errorf("Employee workload has %d queries, want 10", len(workload.Employees()))
	}
	if len(workload.TPCH()) != 9 {
		t.Errorf("TPC-H workload has %d queries, want 9", len(workload.TPCH()))
	}
}

// TestAggJoinSanity: agg-join's result must contain at most one name per
// department-time, and every name must be an employee.
func TestAggJoinSanity(t *testing.T) {
	db := smallEmployees()
	wq, _ := workload.ByID(workload.Employees(), "agg-join")
	q, err := wq.Translate(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("agg-join produced no rows")
	}
	for _, row := range res.Rows {
		if row[0].Kind() != tuple.KindString {
			t.Fatalf("agg-join row %v has non-string name", row)
		}
	}
}
