package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// batchSizeCap bounds the batch experiment input: the acceptance
// measurement of the batch-vs-per-row study is the 50k-row begin-sorted
// input, and larger configured Fig5 sizes add minutes without changing
// the comparison.
const batchSizeCap = 50000

// batchVariant is one pipeline measured by the batch experiment, once
// per drive mode (batch NextBatch vs per-row Next ablation).
type batchVariant struct {
	name string
	plan engine.Plan
	par  int // exchange workers; 0 = sequential streaming engine
}

// batchVariants are the hot converted pipelines: the pure
// filter/project chain (where the per-row virtual-call tax is most
// visible), the three streaming sweeps, and the exchange transport.
func batchVariants() []batchVariant {
	scan := engine.ScanP{Name: "sal"}
	cheap := engine.FilterP{
		// salaries are 40000..49000, so about half the rows survive —
		// the filter does real work without starving the pipeline above.
		Pred: algebra.Lt(algebra.Col("salary"), algebra.IntC(45000)),
		In:   scan,
	}
	return []batchVariant{
		{name: "filter-project", plan: engine.ProjectP{
			Exprs: []algebra.NamedExpr{{Name: "emp_no", E: algebra.Col("emp_no")}},
			In:    cheap,
		}},
		{name: "coalesce-streaming", plan: engine.CoalesceP{In: scan, Streaming: true}},
		{name: "agg-streaming", plan: aggPlan(true)(scan)},
		{name: "diff-streaming", plan: engine.DiffP{L: scan, R: cheap, Streaming: true}},
		{name: fmt.Sprintf("coalesce-parallel-x%d", DefaultWorkers),
			plan: engine.CoalesceP{In: scan}, par: DefaultWorkers},
	}
}

// Batch measures the batch-at-a-time hop against the per-row Volcano
// ablation on the hot pipelines, over the begin-sorted coalescing
// workload. Both drives consume the SAME physical plan; only the drain
// protocol (and, for the parallel variant, the exchange transport)
// differs, so the delta is exactly the per-row pull tax the batch
// protocol amortizes. The acceptance bar is batch ≤ per-row at the
// 50k-row sorted input.
func Batch(w io.Writer, sc Scale, rep *Report) error {
	tw := NewTable("rows", "variant", "per-row (s)", "batch (s)", "speedup", "out rows")
	for _, n := range sc.Fig5Sizes {
		if n > batchSizeCap {
			// Not silently: the report must show which configured sizes
			// were not measured.
			fmt.Fprintf(w, "batch: skipping configured size %d (cap %d)\n", n, batchSizeCap)
			continue
		}
		_, sortedDB := sweepInputs(n)
		for _, v := range batchVariants() {
			perRow, _, rowsPerRow, err := runBatchVariant(sortedDB, v, sc.Runs, false)
			if err != nil {
				return fmt.Errorf("batch %s (per-row): %w", v.name, err)
			}
			batched, allocs, rowsBatch, err := runBatchVariant(sortedDB, v, sc.Runs, true)
			if err != nil {
				return fmt.Errorf("batch %s (batch): %w", v.name, err)
			}
			if rowsBatch != rowsPerRow {
				return fmt.Errorf("batch %s: drives disagree on cardinality (%d per-row vs %d batch)",
					v.name, rowsPerRow, rowsBatch)
			}
			speedup := perRow.Seconds() / batched.Seconds()
			tw.AddRow(fmt.Sprintf("%d", n), v.name, FormatDuration(perRow),
				FormatDuration(batched), fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", rowsBatch))
			rep.AddDetail("batch", fmt.Sprintf("%s/perrow/rows=%d", v.name, n), perRow, 0, int64(rowsPerRow), nil)
			rep.AddDetail("batch", fmt.Sprintf("%s/batch/rows=%d", v.name, n), batched, allocs, int64(rowsBatch),
				map[string]float64{"speedup": speedup})
		}
	}
	_, err := tw.WriteTo(w)
	return err
}

// runBatchVariant times one variant under one drive mode and returns
// its median runtime, median allocations and output cardinality. The
// per-row mode disables the batch protocol end to end: the parallel
// executor runs its per-row ablation (BatchSize -1) and the sequential
// root is wrapped in engine.PerRow, so engine-internal consumers cannot
// sneak back onto the batch path.
func runBatchVariant(db *engine.DB, v batchVariant, runs int, batch bool) (d time.Duration, allocs float64, rows int, err error) {
	d, allocs, err = MedianAllocs(runs, func() error {
		rows = 0
		var it engine.RowIter
		var err error
		if v.par > 1 {
			bs := 0
			if !batch {
				bs = -1
			}
			it, err = parallel.Exec(context.Background(), db, v.plan, parallel.Options{Workers: v.par, BatchSize: bs})
		} else {
			it, err = db.ExecStream(v.plan)
			if err == nil && !batch {
				it = engine.PerRow(it)
			}
		}
		if err != nil {
			return err
		}
		defer it.Close()
		if batch {
			bi, ok := it.(engine.BatchIter)
			if !ok {
				return fmt.Errorf("root %T is not batch-capable", it)
			}
			b := engine.NewRowBatch(engine.DefaultBatchSize)
			for bi.NextBatch(b) {
				rows += b.Len()
			}
		} else {
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				rows++
			}
		}
		if rows == 0 {
			return fmt.Errorf("empty result")
		}
		return nil
	})
	return d, allocs, rows, err
}
