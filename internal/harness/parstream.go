package harness

import (
	"fmt"
	"io"
)

// parStreamSizeCap bounds the parstream experiment input: the
// acceptance measurement of the ordered-exchange study is the 50k-row
// sorted input, and larger configured Fig5 sizes add minutes without
// changing the comparison.
const parStreamSizeCap = 50000

// ParStream measures the order-preserving exchange: parallel STREAMING
// sweeps (ordered repartition, per-worker streaming coalesce /
// pre-aggregated split) against the parallel BLOCKING baseline
// (unordered repartition, per-worker materializing sweeps), both at
// DefaultWorkers over begin-sorted input, plus the sequential streaming
// sweep as the no-exchange reference. On sorted input the parallel
// streaming variants should run at or under the parallel blocking
// ones: they skip the per-partition materialization and per-group
// sorting passes. (On a single-core machine the parallel variants only
// interleave — compare streaming vs blocking within the same worker
// count, not against the sequential reference.)
func ParStream(w io.Writer, sc Scale, rep *Report) error {
	variants := []sweepVariant{
		{name: fmt.Sprintf("coalesce-par-blocking-x%d/sorted", DefaultWorkers), sorted: true,
			plan: coalescePlan(false), par: DefaultWorkers},
		{name: fmt.Sprintf("coalesce-par-stream-x%d/sorted", DefaultWorkers), sorted: true,
			plan: coalescePlan(true), par: DefaultWorkers},
		{name: "coalesce-seq-stream/sorted", sorted: true, plan: coalescePlan(true)},
		{name: fmt.Sprintf("agg-par-blocking-x%d/sorted", DefaultWorkers), sorted: true,
			plan: aggPlan(false), par: DefaultWorkers},
		{name: fmt.Sprintf("agg-par-stream-x%d/sorted", DefaultWorkers), sorted: true,
			plan: aggPlan(true), par: DefaultWorkers},
		{name: "agg-seq-stream/sorted", sorted: true, plan: aggPlan(true)},
	}
	tw := NewTable("rows", "variant", "median (s)", "out rows")
	for _, n := range sc.Fig5Sizes {
		if n > parStreamSizeCap {
			// Not silently: the report must show which configured sizes
			// were not measured.
			fmt.Fprintf(w, "parstream: skipping configured size %d (cap %d)\n", n, parStreamSizeCap)
			continue
		}
		db, sortedDB := sweepInputs(n)
		for _, v := range variants {
			d, allocs, rows, err := runSweepVariant(db, sortedDB, v, sc.Runs)
			if err != nil {
				return fmt.Errorf("parstream %s: %w", v.name, err)
			}
			tw.AddRow(fmt.Sprintf("%d", n), v.name, FormatDuration(d), fmt.Sprintf("%d", rows))
			rep.AddDetail("parstream", fmt.Sprintf("%s/rows=%d", v.name, n), d, allocs, int64(rows), nil)
		}
	}
	_, err := tw.WriteTo(w)
	return err
}
