package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// diffSizeCap bounds the diff experiment input, like parstream: the
// acceptance measurement of the streaming-difference study is the
// 50k-row begin-sorted input, and larger configured Fig5 sizes add
// minutes without changing the comparison.
const diffSizeCap = 50000

// diffVariant is one physical difference configuration measured by the
// diff experiment.
type diffVariant struct {
	name      string
	sorted    bool // run over the begin-sorted copies of the inputs
	streaming bool // DiffP.Streaming: the merge sweep instead of the blocking diff
	enforce   bool // wrap both children in the SortP enforcer (forced streaming over unsorted input)
	par       int  // exchange workers; 0 = sequential streaming engine
}

// plan builds the difference plan l − r in the variant's physical form.
func (v diffVariant) plan() engine.Plan {
	var l, r engine.Plan = engine.ScanP{Name: "l"}, engine.ScanP{Name: "r"}
	if v.enforce {
		l, r = engine.SortP{In: l}, engine.SortP{In: r}
	}
	return engine.DiffP{L: l, R: r, Streaming: v.streaming}
}

// Diff measures the temporal difference in its physical forms: the
// blocking fused sweep (materialize both inputs, per-group delta maps)
// against the streaming merge-based sweep (begin-sorted two-input
// merge, O(open intervals + active groups) state), sequential and at
// DefaultWorkers on the parallel executor (pairwise order-preserving
// repartition, per-worker streaming diffs). On sorted input the
// streaming variants should run at or under the blocking ones: they
// skip both materializations and the per-group endpoint sorting. The
// sort-enforced variant prices forced streaming over unsorted input.
func Diff(w io.Writer, sc Scale, rep *Report) error {
	variants := []diffVariant{
		{name: "diff-blocking/sorted", sorted: true},
		{name: "diff-streaming/sorted", sorted: true, streaming: true},
		{name: "diff-blocking/unsorted"},
		{name: "diff-stream-enforced/unsorted", streaming: true, enforce: true},
		{name: fmt.Sprintf("diff-par-blocking-x%d/sorted", DefaultWorkers), sorted: true, par: DefaultWorkers},
		{name: fmt.Sprintf("diff-par-stream-x%d/sorted", DefaultWorkers), sorted: true, streaming: true, par: DefaultWorkers},
	}
	tw := NewTable("rows", "variant", "median (s)", "out rows")
	for _, n := range sc.Fig5Sizes {
		if n > diffSizeCap {
			// Not silently: the report must show which configured sizes
			// were not measured.
			fmt.Fprintf(w, "diff: skipping configured size %d (cap %d)\n", n, diffSizeCap)
			continue
		}
		db, sortedDB := diffInputs(n)
		for _, v := range variants {
			d, allocs, rows, err := runDiffVariant(db, sortedDB, v, sc.Runs)
			if err != nil {
				return fmt.Errorf("diff %s: %w", v.name, err)
			}
			tw.AddRow(fmt.Sprintf("%d", n), v.name, FormatDuration(d), fmt.Sprintf("%d", rows))
			rep.AddDetail("diff", fmt.Sprintf("%s/rows=%d", v.name, n), d, allocs, int64(rows), nil)
		}
	}
	_, err := tw.WriteTo(w)
	return err
}

// diffInputs builds the difference workload twice — as generated
// (unsorted) and with the stored rows re-sorted into endpoint order.
// The left side is the n-row coalescing workload; the right side is
// generated with the SAME seed at half the size, so it reproduces the
// first half of the left rows exactly: value-equivalent groups exist on
// both sides everywhere and the ℕ monus has real truncation work, while
// the surviving left half keeps the result non-empty.
func diffInputs(n int) (unsorted, sorted *engine.DB) {
	ldb := dataset.CoalesceInput(n, 3)
	rdb := dataset.CoalesceInput(max(n/2, 1), 3)
	lt, err := ldb.Table("sal")
	if err != nil {
		panic(err) // generated dataset always has the sal table
	}
	rt, err := rdb.Table("sal")
	if err != nil {
		panic(err)
	}
	unsorted = engine.NewDB(ldb.Domain())
	unsorted.AddTable("l", lt)
	unsorted.AddTable("r", rt)
	ls, rs := lt.Clone(), rt.Clone()
	ls.SortByEndpoints()
	rs.SortByEndpoints()
	sorted = engine.NewDB(ldb.Domain())
	sorted.AddTable("l", ls)
	sorted.AddTable("r", rs)
	return unsorted, sorted
}

// runDiffVariant times one variant and returns its median runtime,
// median allocations per run and output cardinality.
func runDiffVariant(db, sortedDB *engine.DB, v diffVariant, runs int) (d time.Duration, allocs float64, rows int, err error) {
	target := db
	if v.sorted {
		target = sortedDB
	}
	plan := v.plan()
	d, allocs, err = MedianAllocs(runs, func() error {
		var it engine.RowIter
		var err error
		if v.par > 1 {
			it, err = parallel.Exec(context.Background(), target, plan, parallel.Options{Workers: v.par})
		} else {
			it, err = target.ExecStream(plan)
		}
		if err != nil {
			return err
		}
		defer it.Close()
		t, merr := engine.MaterializeErr(it)
		if merr != nil {
			return merr
		}
		rows = t.Len()
		if rows == 0 {
			return fmt.Errorf("empty diff result")
		}
		return nil
	})
	return d, allocs, rows, err
}
