package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"snapk/internal/algebra"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/krel"
)

// sweepVariant is one physical sweep configuration measured by the
// sweep and parstream experiments.
type sweepVariant struct {
	name   string
	sorted bool // run over the begin-sorted copy of the input
	plan   func(scan engine.Plan) engine.Plan
	par    int // exchange workers; 0 = sequential streaming engine
}

// coalescePlan wraps a scan in the coalesce operator in its streaming
// or blocking physical form.
func coalescePlan(streaming bool) func(engine.Plan) engine.Plan {
	return func(s engine.Plan) engine.Plan {
		return engine.CoalesceP{In: s, Streaming: streaming}
	}
}

// aggPlan wraps a scan in the pre-aggregated split/aggregate of the
// coalescing workload, streaming or blocking.
func aggPlan(streaming bool) func(engine.Plan) engine.Plan {
	return func(s engine.Plan) engine.Plan {
		return engine.AggP{
			GroupBy:   []string{"emp_no"},
			Aggs:      []algebra.AggSpec{{Fn: krel.Sum, Arg: "salary", As: "total"}, {Fn: krel.CountStar, As: "cnt"}},
			PreAgg:    true,
			Streaming: streaming,
			In:        s,
		}
	}
}

// Sweep measures the streaming vs materializing vs hash-partitioned
// sweep operators (coalesce and pre-aggregated split/aggregate) on the
// coalescing workload, over both unsorted and begin-sorted inputs. On
// sorted inputs the streaming sweeps should at least match the
// materializing baseline: they skip the per-group sorting passes and
// hold only the open intervals.
func Sweep(w io.Writer, sc Scale, rep *Report) error {
	coalesceVariants := []sweepVariant{
		{name: "coalesce-blocking/sorted", sorted: true,
			plan: func(s engine.Plan) engine.Plan { return engine.CoalesceP{In: s} }},
		{name: "coalesce-streaming/sorted", sorted: true,
			plan: func(s engine.Plan) engine.Plan { return engine.CoalesceP{In: s, Streaming: true} }},
		{name: "coalesce-blocking/unsorted", sorted: false,
			plan: func(s engine.Plan) engine.Plan { return engine.CoalesceP{In: s} }},
		{name: "coalesce-stream-enforced/unsorted", sorted: false,
			plan: func(s engine.Plan) engine.Plan { return engine.CoalesceP{In: engine.SortP{In: s}, Streaming: true} }},
		{name: fmt.Sprintf("coalesce-parallel-x%d/unsorted", DefaultWorkers), sorted: false,
			plan: func(s engine.Plan) engine.Plan { return engine.CoalesceP{In: s} }, par: DefaultWorkers},
	}
	aggVariants := []sweepVariant{
		{name: "agg-blocking/sorted", sorted: true, plan: aggPlan(false)},
		{name: "agg-streaming/sorted", sorted: true, plan: aggPlan(true)},
		{name: fmt.Sprintf("agg-parallel-x%d/unsorted", DefaultWorkers), sorted: false, plan: aggPlan(false), par: DefaultWorkers},
	}

	tw := NewTable("rows", "variant", "median (s)", "out rows")
	for _, n := range sc.Fig5Sizes {
		if n > 500000 {
			// Not silently: the report must show which configured sizes
			// were not measured.
			fmt.Fprintf(w, "sweep: skipping configured size %d (cap 500000)\n", n)
			continue
		}
		db, sortedDB := sweepInputs(n)
		for _, v := range append(append([]sweepVariant{}, coalesceVariants...), aggVariants...) {
			d, allocs, rows, err := runSweepVariant(db, sortedDB, v, sc.Runs)
			if err != nil {
				return fmt.Errorf("sweep %s: %w", v.name, err)
			}
			tw.AddRow(fmt.Sprintf("%d", n), v.name, FormatDuration(d), fmt.Sprintf("%d", rows))
			rep.AddDetail("sweep", fmt.Sprintf("%s/rows=%d", v.name, n), d, allocs, int64(rows), nil)
		}
	}
	_, err := tw.WriteTo(w)
	return err
}

// sweepInputs builds the coalescing workload twice: as generated
// (unsorted) and with the stored rows re-sorted into endpoint order, so
// the planner's order detection fires on the sorted copy.
func sweepInputs(n int) (unsorted, sorted *engine.DB) {
	unsorted = dataset.CoalesceInput(n, 3)
	tbl, err := unsorted.Table("sal")
	if err != nil {
		panic(err) // generated dataset always has the sal table
	}
	st := tbl.Clone()
	st.SortByEndpoints()
	sorted = engine.NewDB(unsorted.Domain())
	sorted.AddTable("sal", st)
	return unsorted, sorted
}

// runSweepVariant times one variant and returns its median runtime,
// median allocations per run and output cardinality.
func runSweepVariant(db, sortedDB *engine.DB, v sweepVariant, runs int) (d time.Duration, allocs float64, rows int, err error) {
	target := db
	if v.sorted {
		target = sortedDB
	}
	plan := v.plan(engine.ScanP{Name: "sal"})
	d, allocs, err = MedianAllocs(runs, func() error {
		var it engine.RowIter
		var err error
		if v.par > 1 {
			it, err = parallel.Exec(context.Background(), target, plan, parallel.Options{Workers: v.par})
		} else {
			it, err = target.ExecStream(plan)
		}
		if err != nil {
			return err
		}
		defer it.Close()
		t, merr := engine.MaterializeErr(it)
		if merr != nil {
			return merr
		}
		rows = t.Len()
		if rows == 0 {
			return fmt.Errorf("empty sweep result")
		}
		return nil
	})
	return d, allocs, rows, err
}
