package harness

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"snapk/internal/dataset"
	"snapk/internal/workload"
)

// tiny is a test-only scale that keeps every experiment under a second.
var tiny = Scale{
	Name:      "tiny",
	Employees: dataset.EmployeesConfig{NumEmployees: 120, NumDepartments: 5, Seed: 42},
	TPCSmall:  dataset.TPCBiHConfig{ScaleFactor: 0.02, Seed: 7},
	TPCLarge:  dataset.TPCBiHConfig{ScaleFactor: 0.04, Seed: 7},
	Fig5Sizes: []int{500, 1000},
	Runs:      1,
}

func TestFig1Output(t *testing.T) {
	var b strings.Builder
	if err := Fig1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"(0, 0, 3)", "(2, 8, 10)", "(SP, 6, 8)", "(NS, 3, 8)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig1 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable1Probes(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + separator + 4 approaches
		t.Fatalf("Table1 has %d lines:\n%s", len(lines), out)
	}
	// Seq passes everything; natives fail AG/BD/uniqueness.
	for _, l := range lines[2:] {
		if strings.HasPrefix(l, "Seq") && strings.Contains(l, "NO") {
			t.Errorf("Seq row has failures: %s", l)
		}
		if strings.HasPrefix(l, "Nat") && !strings.Contains(l, "NO") {
			t.Errorf("native row has no failures: %s", l)
		}
	}
}

func TestFig5Runs(t *testing.T) {
	var b strings.Builder
	if err := Fig5(&b, tiny, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "500") {
		t.Errorf("Fig5 output:\n%s", b.String())
	}
}

func TestTable2GoldenCounts(t *testing.T) {
	// Golden result-row counts at the tiny scale pin down determinism of
	// generator + engine end to end (the Table 2 analogue).
	db := dataset.Employees(tiny.Employees)
	golden := map[string]int{}
	for _, wq := range workload.Employees() {
		res, err := RunWorkload(db, wq, Seq)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		golden[wq.ID] = res.Len()
	}
	// Counts must be reproducible across a rebuild of the same dataset.
	db2 := dataset.Employees(tiny.Employees)
	for _, wq := range workload.Employees() {
		res, err := RunWorkload(db2, wq, Seq)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != golden[wq.ID] {
			t.Errorf("%s: count %d != %d on identical dataset", wq.ID, res.Len(), golden[wq.ID])
		}
	}
	// Shape expectations mirroring Table 2: diff-2 is by far the largest
	// diff result; join-3 is tiny.
	if golden["join-3"] > golden["join-1"] {
		t.Errorf("join-3 (%d) should be far smaller than join-1 (%d)", golden["join-3"], golden["join-1"])
	}
}

func TestTable2Writes(t *testing.T) {
	var b strings.Builder
	if err := Table2(&b, tiny); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"join-1", "diff-2", "Q1", "Q19"} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("Table2 missing %q", frag)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	var b strings.Builder
	if err := Table3Employees(&b, tiny, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "agg-join") || !strings.Contains(b.String(), "BD") {
		t.Errorf("Table3Employees output:\n%s", b.String())
	}
	b.Reset()
	if err := Table3TPC(&b, tiny, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Q14") || !strings.Contains(b.String(), "AG") {
		t.Errorf("Table3TPC output:\n%s", b.String())
	}
}

func TestAblationsRun(t *testing.T) {
	var b strings.Builder
	if err := Ablations(&b, tiny, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"E7", "E8", "E9", "#coalesce"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Ablations missing %q", frag)
		}
	}
}

func TestMedian(t *testing.T) {
	calls := 0
	d, err := Median(5, func() error {
		calls++
		time.Sleep(time.Microsecond)
		return nil
	})
	if err != nil || calls != 5 || d <= 0 {
		t.Fatalf("Median = %v, %v, calls %d", d, err, calls)
	}
	wantErr := errors.New("boom")
	if _, err := Median(3, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := Median(0, func() error { return nil }); err != nil {
		t.Fatalf("runs<1 should clamp: %v", err)
	}
}

func TestTableWriter(t *testing.T) {
	tw := NewTable("a", "bee")
	tw.AddRow("x", "1")
	tw.AddRow("longer", "2")
	var b strings.Builder
	if _, err := tw.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a       bee") || !strings.Contains(out, "longer  2") {
		t.Errorf("TableWriter output:\n%s", out)
	}
}

func TestApproachStringAndRunErrors(t *testing.T) {
	if Seq.String() != "Seq" || NatAlign.String() != "Nat-align" ||
		SeqNaive.String() != "Seq-naive" || NatIP.String() != "Nat-ip" {
		t.Error("Approach names broken")
	}
	db := RunningExample()
	if _, err := Run(db, QOnduty(), Approach(42)); err == nil {
		t.Error("unknown approach must error")
	}
	bad := workload.Query{ID: "bad", SQL: "this is not sql"}
	if _, err := RunWorkload(db, bad, Seq); err == nil {
		t.Error("bad workload SQL must error")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1500 * time.Millisecond); got != "1.5000" {
		t.Errorf("FormatDuration = %q", got)
	}
}

func TestScalingRunsAndReports(t *testing.T) {
	var b strings.Builder
	rep := NewReport(tiny)
	if err := Scaling(&b, tiny, rep); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"workers", "speedup", "1", "8"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Scaling output missing %q:\n%s", frag, out)
		}
	}
	if len(rep.Metrics) != len(ScalingWorkers) {
		t.Fatalf("report has %d metrics, want %d", len(rep.Metrics), len(ScalingWorkers))
	}
	for _, m := range rep.Metrics {
		if m.Experiment != "scaling" || m.Seconds <= 0 || m.Extra["speedup"] <= 0 || m.Extra["rows"] <= 0 {
			t.Errorf("bad metric %+v", m)
		}
	}
	// Every worker count must see the identical result cardinality.
	rows := rep.Metrics[0].Extra["rows"]
	for _, m := range rep.Metrics[1:] {
		if m.Extra["rows"] != rows {
			t.Errorf("row count varies across worker counts: %v vs %v", m.Extra["rows"], rows)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := NewReport(tiny)
	rep.Add("scaling", "join-pipeline/workers=2", 1500*time.Millisecond, map[string]float64{"speedup": 1.8})
	var nilRep *Report
	nilRep.Add("x", "y", time.Second, nil) // must not panic
	path := t.TempDir() + "/bench.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Scale != "tiny" || len(got.Metrics) != 1 || got.Metrics[0].Seconds != 1.5 ||
		got.Metrics[0].Extra["speedup"] != 1.8 {
		t.Fatalf("round-tripped report = %+v", got)
	}
}

func TestSeqParApproach(t *testing.T) {
	if SeqPar.String() != "Seq-par" {
		t.Errorf("SeqPar label = %q", SeqPar)
	}
	db := RunningExample()
	seq, err := Run(db, QOnduty(), Seq)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(db, QOnduty(), SeqPar)
	if err != nil {
		t.Fatal(err)
	}
	seq, par = seq.Clone(), par.Clone()
	seq.Sort()
	par.Sort()
	if seq.Len() != par.Len() {
		t.Fatalf("SeqPar rows %d != Seq rows %d", par.Len(), seq.Len())
	}
	for i := range seq.Rows {
		if seq.Rows[i].Key() != par.Rows[i].Key() {
			t.Fatalf("SeqPar row %d differs: %v vs %v", i, par.Rows[i], seq.Rows[i])
		}
	}
}
