package harness

import (
	"fmt"
	"io"

	"snapk/internal/algebra"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/rewrite"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
	"snapk/internal/workload"
)

// RunningExample builds the Figure 1 works/assign database.
func RunningExample() *engine.DB {
	dom := interval.NewDomain(0, 24)
	db := engine.NewDB(dom)
	str := tuple.String_
	works := db.CreateTable("works", tuple.NewSchema("name", "skill"))
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	works.Append(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	assign := db.CreateTable("assign", tuple.NewSchema("mach", "skill"))
	assign.Append(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	assign.Append(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	assign.Append(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return db
}

// QOnduty is the Figure 1 aggregation query.
func QOnduty() algebra.Query {
	return algebra.Agg{
		Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In: algebra.Select{
			Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")),
			In:   algebra.Rel{Name: "works"},
		},
	}
}

// QSkillreq is the Figure 1 bag-difference query.
func QSkillreq() algebra.Query {
	return algebra.Diff{
		L: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill"),
	}
}

// Fig1 regenerates Figure 1(b) and 1(c): the running-example results.
func Fig1(w io.Writer) error {
	db := RunningExample()
	for _, exp := range []struct {
		title string
		q     algebra.Query
	}{
		{"Figure 1(b) — Qonduty (snapshot aggregation)", QOnduty()},
		{"Figure 1(c) — Qskillreq (snapshot bag difference)", QSkillreq()},
	} {
		res, err := Run(db, exp.q, Seq)
		if err != nil {
			return err
		}
		res.Sort()
		fmt.Fprintf(w, "%s\n%s\n", exp.title, res)
	}
	return nil
}

// Table1 regenerates Table 1 as *measured* properties: for each approach
// it probes multiset support, AG-freedom, BD-freedom and uniqueness of
// the result encoding, using the running example and targeted
// micro-inputs.
func Table1(w io.Writer) error {
	tw := NewTable("Approach", "Multisets", "AG bug free", "BD bug free", "Unique encoding")
	for _, ap := range []Approach{Seq, SeqNaive, NatIP, NatAlign} {
		multi, err := probeMultisets(ap)
		if err != nil {
			return err
		}
		agFree, err := probeAGFree(ap)
		if err != nil {
			return err
		}
		bdFree, err := probeBDFree(ap)
		if err != nil {
			return err
		}
		unique, err := probeUnique(ap)
		if err != nil {
			return err
		}
		tw.AddRow(ap.String(), mark(multi), mark(agFree), mark(bdFree), mark(unique))
	}
	_, err := tw.WriteTo(w)
	return err
}

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// probeMultisets: a projection must preserve duplicates.
func probeMultisets(ap Approach) (bool, error) {
	dom := interval.NewDomain(0, 10)
	db := engine.NewDB(dom)
	t := db.CreateTable("t", tuple.NewSchema("x", "y"))
	t.Append(tuple.Tuple{tuple.Int(1), tuple.Int(1)}, interval.New(0, 5), 1)
	t.Append(tuple.Tuple{tuple.Int(1), tuple.Int(2)}, interval.New(0, 5), 1)
	res, err := Run(db, algebra.ProjectCols(algebra.Rel{Name: "t"}, "x"), ap)
	if err != nil {
		return false, err
	}
	alg := telement.NewMAlgebra[int64](semiring.N, dom)
	ann := res.ToPeriodRelation(alg).Annotation(tuple.Tuple{tuple.Int(1)})
	return alg.Timeslice(ann, 2) == 2, nil
}

// probeAGFree: Qonduty must report rows over gaps.
func probeAGFree(ap Approach) (bool, error) {
	db := RunningExample()
	res, err := Run(db, QOnduty(), ap)
	if err != nil {
		return false, err
	}
	for _, row := range res.Rows {
		if row[0].Kind() == tuple.KindInt && row[0].AsInt() == 0 {
			return true, nil
		}
	}
	return false, nil
}

// probeBDFree: EXCEPT ALL with multiplicities 2 − 1 must leave 1.
func probeBDFree(ap Approach) (bool, error) {
	dom := interval.NewDomain(0, 10)
	db := engine.NewDB(dom)
	l := db.CreateTable("l", tuple.NewSchema("x"))
	l.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 2)
	r := db.CreateTable("r", tuple.NewSchema("x"))
	r.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
	res, err := Run(db, algebra.Diff{L: algebra.Rel{Name: "l"}, R: algebra.Rel{Name: "r"}}, ap)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// probeUnique: two snapshot-equivalent inputs must produce identical
// result row sets.
func probeUnique(ap Approach) (bool, error) {
	dom := interval.NewDomain(0, 10)
	mk := func(split bool) *engine.DB {
		db := engine.NewDB(dom)
		t := db.CreateTable("t", tuple.NewSchema("x"))
		if split {
			t.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 4), 1)
			t.Append(tuple.Tuple{tuple.Int(1)}, interval.New(4, 8), 1)
		} else {
			t.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 8), 1)
		}
		return db
	}
	q := algebra.Select{Pred: algebra.BoolC(true), In: algebra.Rel{Name: "t"}}
	a, err := Run(mk(false), q, ap)
	if err != nil {
		return false, err
	}
	b, err := Run(mk(true), q, ap)
	if err != nil {
		return false, err
	}
	if a.Len() != b.Len() {
		return false, nil
	}
	a, b = a.Clone(), b.Clone()
	a.Sort()
	b.Sort()
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			return false, nil
		}
	}
	return true, nil
}

// Fig5 regenerates Figure 5: multiset coalescing runtime for varying
// input size, for both coalescing implementations. Runtimes should grow
// linearly in the input size (§10.2).
func Fig5(w io.Writer, sc Scale, rep *Report) error {
	tw := NewTable("rows", "native (s)", "native ns/row", "analytic (s)", "analytic ns/row")
	implName := map[engine.CoalesceImpl]string{engine.CoalesceNative: "native", engine.CoalesceAnalytic: "analytic"}
	for _, n := range sc.Fig5Sizes {
		db := dataset.CoalesceInput(n, 3)
		tbl, err := db.Table("sal")
		if err != nil {
			return err
		}
		var cells []string
		cells = append(cells, fmt.Sprintf("%d", n))
		for _, impl := range []engine.CoalesceImpl{engine.CoalesceNative, engine.CoalesceAnalytic} {
			d, err := Median(sc.Runs, func() error {
				engine.Coalesce(tbl, impl)
				return nil
			})
			if err != nil {
				return err
			}
			cells = append(cells, FormatDuration(d), fmt.Sprintf("%d", d.Nanoseconds()/int64(n)))
			rep.Add("fig5", fmt.Sprintf("coalesce-%s/rows=%d", implName[impl], n), d, nil)
		}
		tw.AddRow(cells...)
	}
	_, err := tw.WriteTo(w)
	return err
}

// Table2 regenerates Table 2: the number of result rows of every
// workload query (for the scaled stand-in datasets; golden values for the
// quick scale are recorded in EXPERIMENTS.md).
func Table2(w io.Writer, sc Scale) error {
	edb := dataset.Employees(sc.Employees)
	tw := NewTable("query", "rows")
	for _, wq := range workload.Employees() {
		res, err := RunWorkload(edb, wq, Seq)
		if err != nil {
			return fmt.Errorf("%s: %w", wq.ID, err)
		}
		tw.AddRow(wq.ID, fmt.Sprintf("%d", res.Len()))
	}
	fmt.Fprintf(w, "Employee dataset %s\n", sc.Employees)
	if _, err := tw.WriteTo(w); err != nil {
		return err
	}
	for _, cfg := range []dataset.TPCBiHConfig{sc.TPCSmall, sc.TPCLarge} {
		tdb := dataset.TPCBiH(cfg)
		tw := NewTable("query", "rows")
		for _, wq := range workload.TPCH() {
			res, err := RunWorkload(tdb, wq, Seq)
			if err != nil {
				return fmt.Errorf("%s: %w", wq.ID, err)
			}
			tw.AddRow(wq.ID, fmt.Sprintf("%d", res.Len()))
		}
		fmt.Fprintf(w, "\n%s\n", cfg)
		if _, err := tw.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// Table3Employees regenerates the Employee half of Table 3: runtimes per
// query and approach plus the Bug column.
func Table3Employees(w io.Writer, sc Scale, rep *Report) error {
	db := dataset.Employees(sc.Employees)
	fmt.Fprintf(w, "Employee dataset %s — runtimes (s)\n", sc.Employees)
	tw := NewTable("query", "Seq", "Nat-ip", "Nat-align", "Bug")
	for _, wq := range workload.Employees() {
		q, err := wq.Translate(db)
		if err != nil {
			return err
		}
		cells := []string{wq.ID}
		for _, ap := range []Approach{Seq, NatIP, NatAlign} {
			d, err := Median(sc.Runs, func() error {
				_, err := Run(db, q, ap)
				return err
			})
			if err != nil {
				return err
			}
			cells = append(cells, FormatDuration(d))
			rep.Add("table3emp", fmt.Sprintf("%s/%s", wq.ID, ap), d, nil)
		}
		cells = append(cells, wq.Bug)
		tw.AddRow(cells...)
	}
	_, err := tw.WriteTo(w)
	return err
}

// Table3TPC regenerates the TPC-BiH half of Table 3 at two scales.
func Table3TPC(w io.Writer, sc Scale, rep *Report) error {
	for _, cfg := range []dataset.TPCBiHConfig{sc.TPCSmall, sc.TPCLarge} {
		db := dataset.TPCBiH(cfg)
		fmt.Fprintf(w, "%s — runtimes (s)\n", cfg)
		tw := NewTable("query", "Seq", "Nat-align", "Bug")
		for _, wq := range workload.TPCH() {
			q, err := wq.Translate(db)
			if err != nil {
				return err
			}
			cells := []string{wq.ID}
			for _, ap := range []Approach{Seq, NatAlign} {
				d, err := Median(sc.Runs, func() error {
					_, err := Run(db, q, ap)
					return err
				})
				if err != nil {
					return err
				}
				cells = append(cells, FormatDuration(d))
				rep.Add("table3tpc", fmt.Sprintf("%s/%s/%s", cfg, wq.ID, ap), d, nil)
			}
			cells = append(cells, wq.Bug)
			tw.AddRow(cells...)
		}
		if _, err := tw.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Ablations regenerates the §9 optimization studies: coalesce placement
// (single final vs per-operator), pre-aggregation vs materialized split,
// and the two coalescing implementations.
func Ablations(w io.Writer, sc Scale, rep *Report) error {
	db := dataset.Employees(sc.Employees)

	fmt.Fprintln(w, "Ablation E7 — coalesce placement (§9, Lemma 6.1)")
	tw := NewTable("query", "optimized (s)", "naive (s)", "#coalesce opt", "#coalesce naive")
	for _, id := range []string{"join-1", "agg-1", "diff-2"} {
		wq, _ := workload.ByID(workload.Employees(), id)
		q, err := wq.Translate(db)
		if err != nil {
			return err
		}
		pOpt, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			return err
		}
		pNaive, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeNaive})
		if err != nil {
			return err
		}
		dOpt, err := Median(sc.Runs, func() error { _, err := db.Exec(pOpt); return err })
		if err != nil {
			return err
		}
		dNaive, err := Median(sc.Runs, func() error { _, err := db.Exec(pNaive); return err })
		if err != nil {
			return err
		}
		tw.AddRow(id, FormatDuration(dOpt), FormatDuration(dNaive),
			fmt.Sprintf("%d", engine.CountCoalesce(pOpt)), fmt.Sprintf("%d", engine.CountCoalesce(pNaive)))
		rep.Add("ablation", "E7/"+id+"/final-coalesce", dOpt, nil)
		rep.Add("ablation", "E7/"+id+"/every-op-coalesce", dNaive, nil)
	}
	if _, err := tw.WriteTo(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nAblation E8 — pre-aggregation vs materialized split (§9)")
	tw = NewTable("query", "pre-agg (s)", "naive split (s)")
	for _, id := range []string{"agg-1", "agg-2"} {
		wq, _ := workload.ByID(workload.Employees(), id)
		q, err := wq.Translate(db)
		if err != nil {
			return err
		}
		var cells = []string{id}
		for _, preAgg := range []bool{true, false} {
			mode := rewrite.ModeOptimized
			if !preAgg {
				// Naive split but still a single final coalesce, isolating
				// the pre-aggregation effect from coalesce placement.
				mode = rewrite.ModeNaive
			}
			d, err := Median(sc.Runs, func() error {
				_, err := rewrite.Run(db, q, rewrite.Options{Mode: mode})
				return err
			})
			if err != nil {
				return err
			}
			cells = append(cells, FormatDuration(d))
			name := "E8/" + id + "/preagg"
			if !preAgg {
				name = "E8/" + id + "/naive-split"
			}
			rep.Add("ablation", name, d, nil)
		}
		tw.AddRow(cells...)
	}
	if _, err := tw.WriteTo(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nAblation E9 — coalescing implementations (§10.2)")
	tw = NewTable("rows", "native 1-sort (s)", "analytic 3-sort (s)")
	for _, n := range sc.Fig5Sizes {
		if n > 200000 {
			continue
		}
		cdb := dataset.CoalesceInput(n, 3)
		tbl, err := cdb.Table("sal")
		if err != nil {
			return err
		}
		dN, err := Median(sc.Runs, func() error { engine.Coalesce(tbl, engine.CoalesceNative); return nil })
		if err != nil {
			return err
		}
		dA, err := Median(sc.Runs, func() error { engine.Coalesce(tbl, engine.CoalesceAnalytic); return nil })
		if err != nil {
			return err
		}
		tw.AddRow(fmt.Sprintf("%d", n), FormatDuration(dN), FormatDuration(dA))
		rep.Add("ablation", fmt.Sprintf("E9/rows=%d/native", n), dN, nil)
		rep.Add("ablation", fmt.Sprintf("E9/rows=%d/analytic", n), dA, nil)
	}
	_, err := tw.WriteTo(w)
	return err
}
