package harness

import (
	"fmt"
	"io"

	"snapk/internal/algebra"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/rewrite"
	"snapk/internal/tuple"
)

// This file is the planner ablation study (`snapbench -exp opt`): each
// cost-aware planner knob — window pushdown, zone-map pruning, hash
// pre-sizing, adaptive worker count — measured independently against
// the all-off baseline, on begin-sorted input. Every configuration of
// every experiment computes the same windowed result (the differential
// planner tests pin that); the study measures only how much work the
// knobs avoid.

// optWindowFrac is the fraction of the time domain the study's query
// window covers: small enough that pushdown and pruning have real rows
// to skip, large enough that the windowed result is non-trivial.
const optWindowFrac = 10

// optConfig is one knob setting of the ablation grid.
type optConfig struct {
	name  string
	knobs rewrite.PlannerKnobs
}

// optConfigs is the ablation grid: all-off, all-on, and all-on with
// each knob individually removed, so every knob's contribution is
// isolated as (no-X vs all-on).
func optConfigs() []optConfig {
	all := rewrite.AllKnobs()
	noPushdown, noPrune, noPresize, noAdaptive := all, all, all, all
	noPushdown.Pushdown = false
	noPrune.Prune = false
	noPresize.PreSize = false
	noAdaptive.AdaptiveWorkers = false
	return []optConfig{
		{"all-off", rewrite.PlannerKnobs{}},
		{"all-on", all},
		{"no-pushdown", noPushdown},
		{"no-prune", noPrune},
		{"no-presize", noPresize},
		{"no-adaptive", noAdaptive},
	}
}

// optExperiment is one workload of the study.
type optExperiment struct {
	name   string
	query  algebra.Query
	window interval.Interval
	par    int // Options.Parallelism; 0 = sequential
}

// optInput builds the study's database: the coalescing workload's "sal"
// table with n rows, re-sorted into endpoint order (the acceptance
// configuration is begin-sorted input), plus a smaller "ref" table with
// one row per employee for the join workload.
func optInput(n int) *engine.DB {
	gen := dataset.CoalesceInput(n, 7)
	tbl, err := gen.Table("sal")
	if err != nil {
		panic(err) // generated dataset always has the sal table
	}
	sal := tbl.Clone()
	sal.SortByEndpoints()
	db := engine.NewDB(gen.Domain())
	db.AddTable("sal", sal)

	// One bonus row per employee, valid over a deterministic slice of the
	// domain; built unsorted, then endpoint-sorted like the fact table.
	empIdx := 0 // emp_no column position in sal's data schema
	seen := make(map[int64]bool)
	ref := engine.NewTable(tuple.NewSchema("emp_no", "bonus"))
	dom := db.Domain()
	span := dom.Max - dom.Min
	for _, row := range sal.Rows {
		emp := row[empIdx].AsInt()
		if seen[emp] {
			continue
		}
		seen[emp] = true
		begin := dom.Min + (emp*37)%(span/2)
		ref.Append(
			tuple.Tuple{tuple.Int(emp), tuple.Int(500 + emp%5*100)},
			interval.New(begin, begin+span/4),
			1,
		)
	}
	ref.SortByEndpoints()
	db.AddTable("ref", ref)
	// Warm the per-table statistics: in steady state they are computed
	// once and cached (invalidated only by mutation), so the study should
	// not charge the one-time computation to whichever knob configuration
	// happens to run first.
	sal.Stats()
	ref.Stats()
	return db
}

// optExperiments builds the study's three workloads over the domain of
// db: a windowed coalescing scan (pushdown + pruning territory), a
// windowed equi-join (build side + pre-sizing territory), and a small
// windowed query at full parallelism (adaptive-workers territory).
func optExperiments(db *engine.DB) []optExperiment {
	dom := db.Domain()
	span := dom.Max - dom.Min
	window := interval.New(dom.Min, dom.Min+span/optWindowFrac)
	join := algebra.Join{
		L: algebra.Rel{Name: "sal"},
		R: algebra.Rel{Name: "ref"},
		Pred: algebra.BinOp{
			Op: algebra.OpEq,
			L:  algebra.ColRef{Name: "emp_no"},
			R:  algebra.ColRef{Name: "r.emp_no"},
		},
	}
	return []optExperiment{
		{name: "coalesce", query: algebra.Rel{Name: "sal"}, window: window},
		{name: "join", query: join, window: window},
		{name: "small-par", query: algebra.Rel{Name: "sal"}, window: window, par: DefaultWorkers},
	}
}

// Opt measures the planner ablation grid: every knob configuration of
// every workload at the largest configured Fig 5 size (capped at 50000
// rows), reporting median runtime and allocations.
func Opt(w io.Writer, sc Scale, rep *Report) error {
	n := 0
	for _, s := range sc.Fig5Sizes {
		if s > n {
			n = s
		}
	}
	if n > 50000 {
		// Not silently: the report must show the measured size.
		fmt.Fprintf(w, "opt: capping input at 50000 rows (largest configured size %d)\n", n)
		n = 50000
	}
	db := optInput(n)
	tw := NewTable("experiment", "config", "median (s)", "allocs/op", "out rows")
	for _, exp := range optExperiments(db) {
		for _, cfg := range optConfigs() {
			opt := rewrite.Options{
				Mode:        rewrite.ModeOptimized,
				Window:      exp.window,
				Planner:     cfg.knobs,
				Parallelism: exp.par,
			}
			var rows int
			d, allocs, err := MedianAllocs(sc.Runs, func() error {
				out, err := rewrite.Run(db, exp.query, opt)
				if err != nil {
					return err
				}
				rows = out.Len()
				return nil
			})
			if err != nil {
				return fmt.Errorf("opt %s/%s: %w", exp.name, cfg.name, err)
			}
			tw.AddRow(exp.name, cfg.name, FormatDuration(d), fmt.Sprintf("%.0f", allocs), fmt.Sprintf("%d", rows))
			rep.AddDetail("opt", fmt.Sprintf("%s/%s/rows=%d", exp.name, cfg.name, n), d, allocs, int64(rows), nil)
		}
	}
	_, err := tw.WriteTo(w)
	return err
}
