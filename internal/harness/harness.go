// Package harness contains the shared machinery of the experiment
// drivers (cmd/snapbench and the root bench_test.go): dataset scales,
// approach dispatch, timing and table formatting. Each experiment in
// DESIGN.md's per-experiment index is regenerated through this package.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"snapk/internal/algebra"
	"snapk/internal/baseline"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/rewrite"
	"snapk/internal/workload"
)

// Approach identifies an evaluation strategy in experiment output, in
// the paper's naming: Seq is the middleware, Nat-* are the native
// comparators.
type Approach int

// The approaches compared by Table 3, plus the ablation approaches:
// SeqMat — Seq executed on the operator-at-a-time materializing
// executor instead of the streaming iterator engine (the pipelining
// ablation); SeqPar — Seq on the parallel exchange executor with
// DefaultWorkers fragments (hash-partitioned parallel sweeps);
// SeqStream — Seq with the sweep operators forced to their streaming
// form (sort-enforced where the input order is not already available),
// the streaming-sweep ablation; and SeqParStream — forced streaming
// sweeps ON the parallel executor: the order-preserving exchange keeps
// every partition begin-sorted so the per-worker sweeps stream.
const (
	Seq Approach = iota
	SeqNaive
	NatIP
	NatAlign
	SeqMat
	SeqPar
	SeqStream
	SeqParStream
)

// DefaultWorkers is the exchange worker count used by SeqPar: every
// available CPU, but at least 2 so the parallel subsystem is actually
// exercised on single-core machines.
var DefaultWorkers = max(2, runtime.NumCPU())

// String returns the label used in experiment tables.
func (a Approach) String() string {
	switch a {
	case Seq:
		return "Seq"
	case SeqNaive:
		return "Seq-naive"
	case NatIP:
		return "Nat-ip"
	case NatAlign:
		return "Nat-align"
	case SeqMat:
		return "Seq-mat"
	case SeqPar:
		return "Seq-par"
	case SeqStream:
		return "Seq-stream"
	case SeqParStream:
		return "Seq-par-stream"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Run evaluates q over db under the given approach and returns the
// result table. Seq and SeqNaive run on the streaming iterator engine;
// SeqMat is the materializing ablation baseline; SeqPar runs the plan on
// the parallel exchange executor.
func Run(db *engine.DB, q algebra.Query, ap Approach) (*engine.Table, error) {
	switch ap {
	case Seq:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized})
	case SeqNaive:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeNaive})
	case SeqMat:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized, Materialize: true})
	case SeqPar:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: DefaultWorkers})
	case SeqStream:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepStreaming})
	case SeqParStream:
		return rewrite.Run(db, q, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepStreaming, Parallelism: DefaultWorkers})
	case NatIP:
		return baseline.Eval(db, q, baseline.IntervalPreservation)
	case NatAlign:
		return baseline.Eval(db, q, baseline.Alignment)
	default:
		return nil, fmt.Errorf("harness: unknown approach %d", ap)
	}
}

// RunWorkload translates and evaluates a workload query.
func RunWorkload(db *engine.DB, wq workload.Query, ap Approach) (*engine.Table, error) {
	q, err := wq.Translate(db)
	if err != nil {
		return nil, err
	}
	return Run(db, q, ap)
}

// Scale bundles the dataset sizes of one harness configuration.
type Scale struct {
	Name      string
	Employees dataset.EmployeesConfig
	TPCSmall  dataset.TPCBiHConfig
	TPCLarge  dataset.TPCBiHConfig
	Fig5Sizes []int
	Runs      int
}

// Quick is the scale used by tests and `snapbench -quick`: seconds, not
// minutes.
var Quick = Scale{
	Name:      "quick",
	Employees: dataset.EmployeesConfig{NumEmployees: 1000, NumDepartments: 9, Seed: 42},
	TPCSmall:  dataset.TPCBiHConfig{ScaleFactor: 0.1, Seed: 7},
	TPCLarge:  dataset.TPCBiHConfig{ScaleFactor: 0.2, Seed: 7},
	Fig5Sizes: []int{1000, 5000, 20000, 50000},
	Runs:      2,
}

// Full is the default `snapbench` scale; it mirrors the paper's relative
// dataset proportions (Employees ≈ 15× TPC-small rows; TPC-large = 3×
// TPC-small, standing in for the paper's SF1 → SF10 step).
var Full = Scale{
	Name:      "full",
	Employees: dataset.EmployeesConfig{NumEmployees: 10000, NumDepartments: 9, Seed: 42},
	TPCSmall:  dataset.TPCBiHConfig{ScaleFactor: 0.5, Seed: 7},
	TPCLarge:  dataset.TPCBiHConfig{ScaleFactor: 1.5, Seed: 7},
	Fig5Sizes: []int{1000, 10000, 100000, 300000, 500000, 1000000},
	Runs:      3,
}

// Median times f over runs executions and returns the median duration.
// The error of any run aborts timing.
func Median(runs int, f func() error) (time.Duration, error) {
	if runs < 1 {
		runs = 1
	}
	ds := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], nil
}

// MedianAllocs times f like Median while also measuring allocation
// pressure: it returns the median duration and the median number of heap
// allocations per execution, from runtime.MemStats.Mallocs deltas — a
// process-wide counter, so allocations made by the pipeline's worker
// goroutines are included (and so are those of any unrelated concurrent
// goroutines; the harness runs experiments one at a time).
func MedianAllocs(runs int, f func() error) (time.Duration, float64, error) {
	if runs < 1 {
		runs = 1
	}
	ds := make([]time.Duration, 0, runs)
	as := make([]float64, 0, runs)
	var ms runtime.MemStats
	for i := 0; i < runs; i++ {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		d := time.Since(start)
		runtime.ReadMemStats(&ms)
		ds = append(ds, d)
		as = append(as, float64(ms.Mallocs-before))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	sort.Float64s(as)
	return ds[len(ds)/2], as[len(as)/2], nil
}

// TableWriter accumulates aligned experiment tables.
type TableWriter struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given header.
func NewTable(header ...string) *TableWriter { return &TableWriter{header: header} }

// AddRow appends one formatted row.
func (t *TableWriter) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// WriteTo renders the table.
func (t *TableWriter) WriteTo(w io.Writer) (int64, error) {
	all := append([][]string{t.header}, t.rows...)
	widths := make([]int, 0, len(t.header))
	for _, row := range all {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range all {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, wd := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", wd))
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// FormatDuration renders a duration the way the paper's tables do
// (seconds with two to three significant decimals).
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

// Metric is one machine-readable measurement of an experiment run: a
// median runtime plus optional derived values (e.g. speedup factors).
type Metric struct {
	// Experiment is the snapbench experiment id (e.g. "scaling").
	Experiment string `json:"experiment"`
	// Name identifies the measured configuration within the experiment,
	// e.g. "join-pipeline/workers=4".
	Name string `json:"name"`
	// Seconds is the median runtime.
	Seconds float64 `json:"seconds"`
	// AllocsPerOp is the median heap allocation count per measured
	// execution (0 when the experiment does not measure allocations).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Rows is the output cardinality of the measured configuration (0
	// when not applicable).
	Rows int64 `json:"rows,omitempty"`
	// Extra holds derived values such as {"speedup": 2.7}.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report accumulates experiment measurements for machine-readable output
// (snapbench -json), so the performance trajectory can be tracked as
// BENCH_*.json across PRs. A nil *Report is valid and records nothing,
// letting experiments thread it unconditionally.
type Report struct {
	Scale   string   `json:"scale"`
	Workers int      `json:"workers"`
	Metrics []Metric `json:"metrics"`
}

// NewReport returns an empty report for the given scale.
func NewReport(sc Scale) *Report {
	return &Report{Scale: sc.Name, Workers: DefaultWorkers}
}

// Add records one runtime-only measurement; it is a no-op on a nil
// report.
func (r *Report) Add(experiment, name string, d time.Duration, extra map[string]float64) {
	r.AddDetail(experiment, name, d, 0, 0, extra)
}

// AddDetail records one measurement together with its allocation count
// and output cardinality; it is a no-op on a nil report.
func (r *Report) AddDetail(experiment, name string, d time.Duration, allocsPerOp float64, rows int64, extra map[string]float64) {
	if r == nil {
		return
	}
	r.Metrics = append(r.Metrics, Metric{
		Experiment:  experiment,
		Name:        name,
		Seconds:     d.Seconds(),
		AllocsPerOp: allocsPerOp,
		Rows:        rows,
		Extra:       extra,
	})
}

// WriteJSON writes the report to path, indented for diff-friendliness.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
