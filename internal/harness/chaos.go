package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// chaosSizeCap bounds the chaos experiment input: the acceptance
// measurement for the fault-domain study is governor overhead within
// noise at the 50k-row input.
const chaosSizeCap = 50000

// Chaos measures the steady-state cost of the per-query fault domain:
// the resource governor (root row counting, operator-state and
// ordered-exchange memory accounting, the deadline context) on the same
// plans with governing off vs on, with limits generous enough that
// nothing ever trips. Both runs consume the SAME physical plan through
// the same executor, so the delta is exactly the governor's bookkeeping.
// The acceptance bar is overhead within noise at the 50k-row input. The
// chaos fault-injection layer itself costs nothing here: with no
// injector configured the wrap hook is nil and no site is touched.
func Chaos(w io.Writer, sc Scale, rep *Report) error {
	// Generous enough that a 50k-row pipeline never comes near a limit:
	// every checkpoint is exercised, none fires.
	generous := engine.Limits{Timeout: time.Hour, RowLimit: 1 << 62, MemBudget: 1 << 62}
	tw := NewTable("rows", "variant", "ungoverned (s)", "governed (s)", "overhead", "out rows")
	for _, n := range sc.Fig5Sizes {
		if n > chaosSizeCap {
			// Not silently: the report must show which configured sizes
			// were not measured.
			fmt.Fprintf(w, "chaos: skipping configured size %d (cap %d)\n", n, chaosSizeCap)
			continue
		}
		_, sortedDB := sweepInputs(n)
		for _, v := range batchVariants() {
			off, _, rowsOff, err := runGovernedVariant(sortedDB, v, sc.Runs, engine.Limits{})
			if err != nil {
				return fmt.Errorf("chaos %s (ungoverned): %w", v.name, err)
			}
			on, allocs, rowsOn, err := runGovernedVariant(sortedDB, v, sc.Runs, generous)
			if err != nil {
				return fmt.Errorf("chaos %s (governed): %w", v.name, err)
			}
			if rowsOn != rowsOff {
				return fmt.Errorf("chaos %s: governed run changed the result (%d vs %d rows)",
					v.name, rowsOn, rowsOff)
			}
			overhead := on.Seconds() / off.Seconds()
			tw.AddRow(fmt.Sprintf("%d", n), v.name, FormatDuration(off),
				FormatDuration(on), fmt.Sprintf("%.2fx", overhead), fmt.Sprintf("%d", rowsOn))
			rep.AddDetail("chaos", fmt.Sprintf("%s/ungoverned/rows=%d", v.name, n), off, 0, int64(rowsOff), nil)
			rep.AddDetail("chaos", fmt.Sprintf("%s/governed/rows=%d", v.name, n), on, allocs, int64(rowsOn),
				map[string]float64{"overhead": overhead})
		}
	}
	_, err := tw.WriteTo(w)
	return err
}

// runGovernedVariant times one variant under the given limits (the zero
// Limits value runs ungoverned on the nil-governor fast path) and
// returns its median runtime, median allocations and output
// cardinality. The governor is per query, so each run gets a fresh one.
func runGovernedVariant(db *engine.DB, v batchVariant, runs int, lim engine.Limits) (d time.Duration, allocs float64, rows int, err error) {
	d, allocs, err = MedianAllocs(runs, func() error {
		rows = 0
		it, err := parallel.Exec(context.Background(), db, v.plan, parallel.Options{
			Workers: max(v.par, 1),
			Gov:     engine.NewGovernor(lim),
		})
		if err != nil {
			return err
		}
		defer it.Close()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			rows++
		}
		if err := engine.IterErr(it); err != nil {
			return err
		}
		if rows == 0 {
			return fmt.Errorf("empty result")
		}
		return nil
	})
	return d, allocs, rows, err
}
