package harness

import (
	"context"
	"fmt"
	"io"

	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// obsSizeCap bounds the obs experiment input, like parstream: the
// overhead comparison does not change with larger inputs, it only takes
// longer to measure.
const obsSizeCap = 50000

// obsVariant is one workload measured by the obs experiment, run twice:
// collector-off (the production configuration, in which every
// instrumentation hook is an identity no-op) and collector-on (every
// operator, exchange and fragment wrapped in an ObsIter).
type obsVariant struct {
	name string
	db   *engine.DB
	plan engine.Plan
	par  int // exchange workers; 0 = sequential streaming engine
}

// Obs measures the cost of the EXPLAIN ANALYZE collector on the sweep
// and diff workloads. The collector-off runs ARE the production path —
// they exercise the nil-stats branches the instrumented executors ship
// with — so comparing them against collector-on prices the per-row
// counters, and the off-vs-on ratio is the number the acceptance
// criterion ("collection off costs nothing") watches. The parallel
// variant additionally prices the exchange batch/wait/skew counters.
func Obs(w io.Writer, sc Scale, rep *Report) error {
	n := 0
	for _, s := range sc.Fig5Sizes {
		if s <= obsSizeCap && s > n {
			n = s
		}
	}
	if n == 0 {
		n = 1000
	}
	sweepDB, sweepSorted := sweepInputs(n)
	_, diffSorted := diffInputs(n)

	variants := []obsVariant{
		{name: fmt.Sprintf("coalesce-streaming/sorted/rows=%d", n), db: sweepSorted,
			plan: engine.CoalesceP{In: engine.ScanP{Name: "sal"}, Streaming: true}},
		{name: fmt.Sprintf("diff-streaming/sorted/rows=%d", n), db: diffSorted,
			plan: engine.DiffP{L: engine.ScanP{Name: "l"}, R: engine.ScanP{Name: "r"}, Streaming: true}},
		{name: fmt.Sprintf("coalesce-parallel-x%d/unsorted/rows=%d", DefaultWorkers, n), db: sweepDB,
			plan: engine.CoalesceP{In: engine.ScanP{Name: "sal"}}, par: DefaultWorkers},
	}

	tw := NewTable("variant", "collector", "median (s)", "allocs/op", "on/off")
	for _, v := range variants {
		rows := 0
		measure := func(collect bool) error {
			var root *engine.OpStats
			if collect {
				root = engine.NewCollector().Root
			}
			var it engine.RowIter
			var err error
			if v.par > 1 {
				it, err = parallel.Exec(context.Background(), v.db, v.plan, parallel.Options{Workers: v.par, Stats: root})
			} else {
				it, err = v.db.ExecStreamObs(v.plan, root)
			}
			if err != nil {
				return err
			}
			defer it.Close()
			t, merr := engine.MaterializeErr(it)
			if merr != nil {
				return merr
			}
			rows = t.Len()
			if rows == 0 {
				return fmt.Errorf("empty result")
			}
			return nil
		}
		offD, offAllocs, err := MedianAllocs(sc.Runs, func() error { return measure(false) })
		if err != nil {
			return fmt.Errorf("obs %s: %w", v.name, err)
		}
		onD, onAllocs, err := MedianAllocs(sc.Runs, func() error { return measure(true) })
		if err != nil {
			return fmt.Errorf("obs %s (collector on): %w", v.name, err)
		}
		overhead := onD.Seconds() / offD.Seconds()
		tw.AddRow(v.name, "off", FormatDuration(offD), fmt.Sprintf("%.0f", offAllocs), "")
		tw.AddRow(v.name, "on", FormatDuration(onD), fmt.Sprintf("%.0f", onAllocs), fmt.Sprintf("%.2fx", overhead))
		rep.AddDetail("obs", v.name+"/collector=off", offD, offAllocs, int64(rows), nil)
		rep.AddDetail("obs", v.name+"/collector=on", onD, onAllocs, int64(rows),
			map[string]float64{"overhead": overhead})
	}
	_, err := tw.WriteTo(w)
	return err
}
