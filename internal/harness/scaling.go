package harness

import (
	"context"
	"fmt"
	"io"

	"snapk/internal/algebra"
	"snapk/internal/dataset"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
)

// ScalingWorkers are the exchange worker counts measured by the scaling
// experiment.
var ScalingWorkers = []int{1, 2, 4, 8}

// scalingPlan is the join-heavy pipeline used to measure multi-core
// speedup: a selective Filter feeding the partitioned probe side of the
// temporal hash join on titles, streamed through a Project — the Fig 4
// chain shape in which every operator runs inside parallel fragments.
func scalingPlan() engine.Plan {
	return engine.ProjectP{
		Exprs: []algebra.NamedExpr{
			{Name: "emp_no", E: algebra.Col("emp_no")},
			{Name: "salary", E: algebra.Col("salary")},
			{Name: "title", E: algebra.Col("title")},
		},
		In: engine.JoinP{
			L: engine.FilterP{
				Pred: algebra.Gt(algebra.Col("salary"), algebra.IntC(45000)),
				In:   engine.ScanP{Name: "salaries"},
			},
			R:    engine.ScanP{Name: "titles"},
			Pred: algebra.Eq(algebra.Col("emp_no"), algebra.Col("r.emp_no")),
		},
	}
}

// Scaling measures the parallel execution subsystem: the join-heavy
// pipeline is run at 1, 2, 4 and 8 exchange workers and the speedup over
// the single-worker run is reported. Speedup tracks the number of
// available cores (GOMAXPROCS); on a single-core machine all worker
// counts collapse to interleaved execution and the honest speedup is
// ~1x.
func Scaling(w io.Writer, sc Scale, rep *Report) error {
	db := dataset.Employees(sc.Employees)
	plan := scalingPlan()
	tw := NewTable("workers", "median (s)", "speedup", "rows")
	var base float64
	for _, workers := range ScalingWorkers {
		var rows int
		d, err := Median(sc.Runs, func() error {
			it, err := parallel.Exec(context.Background(), db, plan, parallel.Options{Workers: workers})
			if err != nil {
				return err
			}
			defer it.Close()
			t, merr := engine.MaterializeErr(it)
			if merr != nil {
				return merr
			}
			if t.Len() == 0 {
				return fmt.Errorf("scaling: empty pipeline result")
			}
			rows = t.Len()
			return nil
		})
		if err != nil {
			return err
		}
		if workers == ScalingWorkers[0] {
			base = d.Seconds()
		}
		speedup := base / d.Seconds()
		tw.AddRow(fmt.Sprintf("%d", workers), FormatDuration(d),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", rows))
		rep.Add("scaling", fmt.Sprintf("join-pipeline/workers=%d", workers), d,
			map[string]float64{"speedup": speedup, "rows": float64(rows)})
	}
	_, err := tw.WriteTo(w)
	return err
}
