// Package chaos is the deterministic fault-injection layer of the
// per-query fault domain: it wraps the iterators built at operator and
// exchange boundaries (through the engine.IterWrapper hook exposed as
// rewrite.Options.Inject / parallel.Options.Inject) and makes them
// fail on purpose — an injected stream error, a panic, an artificial
// delay, or an external cancellation — at a seed-determined row of a
// seed-determined site.
//
// Everything is derived from Config.Seed: which sites fire, which fault
// they inject and at which row, via a splitmix64 mix of the seed, the
// site-name hash and a per-wrap sequence number. The same seed over the
// same plan shape replays the same faults, so a chaos-grid failure is
// reproducible from its seed alone.
//
// The injected faults honor the engine's iterator contracts: a fault
// iterator preserves batch capability (wrapping a BatchIter yields a
// BatchIter), delivers an order-preserving prefix of its input (so
// CheckOrdered stays valid), delegates Close, and carries injected
// errors through Err per the error-carrying protocol. What the chaos
// grid then asserts is the fault domain's job: no panic escapes the
// query, no goroutine leaks, every injected fault surfaces exactly once
// through the root Err, and a stream that ends without error is the
// complete result.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"snapk/internal/engine"
	"snapk/internal/tuple"
)

// ErrInjected is the sentinel under every injected stream error;
// errors.Is(err, ErrInjected) identifies a chaos fault in Rows.Err.
var ErrInjected = errors.New("chaos: injected fault")

// Fault modes, chosen per wrapped site from the seeded stream.
const (
	faultNone = iota
	faultErr
	faultPanic
	faultDelay
	faultCancel
)

// Config parameterizes an Injector. Rates are per wrapped site (not per
// row) and are evaluated in order err, panic, delay, cancel — their sum
// should stay <= 1.
type Config struct {
	// Seed determines every injection decision; same seed, same faults.
	Seed int64
	// ErrRate is the probability a wrapped site ends its stream early
	// with an ErrInjected error at a seed-determined row.
	ErrRate float64
	// PanicRate is the probability a wrapped site panics at a
	// seed-determined row (the containment boundaries must convert it
	// into a query error).
	PanicRate float64
	// DelayRate is the probability a wrapped site sleeps once for up to
	// MaxDelay at a seed-determined row — the latency/backpressure
	// chaos that shakes out teardown races without changing results.
	DelayRate float64
	// MaxDelay bounds the injected sleep; 0 selects 1ms.
	MaxDelay time.Duration
	// CancelRate is the probability a wrapped site invokes OnCancel at
	// a seed-determined row, simulating an external cancellation
	// mid-stream.
	CancelRate float64
	// OnCancel is invoked by cancel faults (typically the query
	// context's cancel function); nil disables cancel faults.
	OnCancel func()
}

// Injector derives per-site fault decisions from one Config. Safe for
// concurrent use: wrapped sites are created during plan build but their
// faults fire from fragment goroutines.
type Injector struct {
	cfg Config
	seq atomic.Int64
	// counters for test assertions: how many faults of each kind armed
	// (not all armed faults fire — a site may be torn down first).
	armedErrs    atomic.Int64
	armedPanics  atomic.Int64
	armedCancels atomic.Int64
	firedErrs    atomic.Int64
	firedPanics  atomic.Int64
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// ArmedFaults reports how many wrapped sites were armed with a
// result-affecting fault (error, panic or cancel — delays never change
// results). Zero means the run must be byte-identical to an uninjected
// one.
func (inj *Injector) ArmedFaults() int64 {
	return inj.armedErrs.Load() + inj.armedPanics.Load() + inj.armedCancels.Load()
}

// FiredErrs reports how many injected stream errors actually fired.
func (inj *Injector) FiredErrs() int64 { return inj.firedErrs.Load() }

// FiredPanics reports how many injected panics actually fired.
func (inj *Injector) FiredPanics() int64 { return inj.firedPanics.Load() }

// splitmix64 is the standard 64-bit mixer: enough independence between
// (seed, site, seq) triples that fault placement looks random while
// staying a pure function of its inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// Wrapper returns the engine.IterWrapper form of the injector, the
// shape rewrite.Options.Inject and parallel.Options.Inject accept.
func (inj *Injector) Wrapper() engine.IterWrapper {
	return inj.Wrap
}

// Wrap decides this site's fault from the seeded stream and returns the
// fault-carrying iterator (or it unchanged when the site stays
// healthy). The fault row is decided upfront, in [0, 64): faults near
// the head of a stream exercise teardown with most of the pipeline
// still running, which is where the interesting races live.
func (inj *Injector) Wrap(site string, it engine.RowIter) engine.RowIter {
	seq := inj.seq.Add(1)
	h := splitmix64(uint64(inj.cfg.Seed) ^ splitmix64(siteHash(site)) ^ splitmix64(uint64(seq)))
	// Two independent uniforms from one mixed state: the fault choice
	// and the fault row.
	u := float64(h>>11) / float64(1<<53)
	mode := faultNone
	switch c := inj.cfg; {
	case u < c.ErrRate:
		mode = faultErr
	case u < c.ErrRate+c.PanicRate:
		mode = faultPanic
	case u < c.ErrRate+c.PanicRate+c.DelayRate:
		mode = faultDelay
	case u < c.ErrRate+c.PanicRate+c.DelayRate+c.CancelRate && c.OnCancel != nil:
		mode = faultCancel
	}
	if mode == faultNone {
		return it
	}
	faultRow := int64(splitmix64(h) % 64)
	switch mode {
	case faultErr:
		inj.armedErrs.Add(1)
	case faultPanic:
		inj.armedPanics.Add(1)
	case faultCancel:
		inj.armedCancels.Add(1)
	}
	fi := faultIter{inj: inj, site: site, in: it, mode: mode, faultRow: faultRow,
		delay: time.Duration(splitmix64(h+1)%uint64(inj.cfg.MaxDelay)) + 1}
	if bi, ok := it.(engine.BatchIter); ok {
		return &faultBatchIter{faultIter: fi, bin: bi}
	}
	return &fi
}

// faultIter injects one fault at faultRow rows into its input's stream.
// It preserves the input's row order (it only ever truncates) and
// carries injected errors through Err.
type faultIter struct {
	inj      *Injector
	site     string
	in       engine.RowIter
	mode     int
	faultRow int64
	delay    time.Duration
	n        int64
	err      error
	fired    bool
}

func (it *faultIter) Schema() tuple.Schema { return it.in.Schema() }

// fire triggers this site's fault; reports whether the stream ends.
func (it *faultIter) fire() bool {
	it.fired = true
	switch it.mode {
	case faultErr:
		it.inj.firedErrs.Add(1)
		it.err = fmt.Errorf("%w: site %s after %d rows", ErrInjected, it.site, it.n)
		return true
	case faultPanic:
		it.inj.firedPanics.Add(1)
		panic(fmt.Sprintf("chaos: injected panic at site %s after %d rows", it.site, it.n))
	case faultDelay:
		time.Sleep(it.delay)
	case faultCancel:
		it.inj.cfg.OnCancel()
	}
	return false
}

func (it *faultIter) Next() (tuple.Tuple, bool) {
	if it.err != nil {
		return nil, false
	}
	if !it.fired && it.n >= it.faultRow && it.fire() {
		return nil, false
	}
	row, ok := it.in.Next()
	if ok {
		it.n++
	}
	return row, ok
}

// Err reports the injected error, else the input's own.
func (it *faultIter) Err() error { return engine.FirstErr(it.err, engine.IterErr(it.in)) }

func (it *faultIter) Close() { it.in.Close() }

// faultBatchIter preserves batch capability across the injection
// boundary; a firing error fault truncates the batch at the fault row,
// so the error lands exactly where the per-row form would put it.
type faultBatchIter struct {
	faultIter
	bin engine.BatchIter
}

func (it *faultBatchIter) NextBatch(b *engine.RowBatch) bool {
	if it.err != nil {
		b.Reset()
		return false
	}
	if !it.fired && it.n >= it.faultRow && it.fire() {
		b.Reset()
		return false
	}
	ok := it.bin.NextBatch(b)
	if !ok {
		return false
	}
	it.n += int64(b.Len())
	if !it.fired && it.n >= it.faultRow && it.mode == faultErr {
		// Truncate the delivered batch at the fault row and arm the error
		// for the next pull, honoring the NextBatch contract (true iff at
		// least one row is delivered).
		keep := b.Len() - int(it.n-it.faultRow)
		it.n = it.faultRow
		if it.fire() {
			if keep <= 0 {
				b.Reset()
				return false
			}
			b.Rows = b.Rows[:keep]
		}
	}
	return b.Len() > 0
}
