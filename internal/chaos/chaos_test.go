// The chaos grid: qgen-generated queries run across the executor grid
// (sequential / parallel × sweep modes) under deterministic fault
// injection, asserting the fault-domain invariants — no panic escapes
// the query, no fragment goroutine leaks, a stream that ends without an
// error is the complete result (no silent truncation), and every
// surfaced error is a recognized, injected one.
package chaos_test

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"snapk/internal/chaos"
	"snapk/internal/engine"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
)

// waitForGoroutines asserts the process returns to the base goroutine
// count: fragment goroutines of torn-down queries must all exit.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// recognized reports whether err is one the fault domain is allowed to
// surface under injection: the injected sentinel, a contained injected
// panic, a cancellation, or a governor limit (not armed here, but the
// set is closed).
func recognized(err error) bool {
	return errors.Is(err, chaos.ErrInjected) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		strings.Contains(err.Error(), "chaos: injected panic")
}

func drainKeys(t *testing.T, it engine.RowIter) ([]string, error) {
	t.Helper()
	var keys []string
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		keys = append(keys, row.String())
	}
	err := engine.IterErr(it)
	// Err must be stable: the root reports the same terminal error on
	// every call ("surfaces exactly once" means one error, not one read).
	if again := engine.IterErr(it); (err == nil) != (again == nil) {
		t.Fatalf("unstable root Err: first %v, then %v", err, again)
	}
	sort.Strings(keys)
	return keys, err
}

func TestChaosGrid(t *testing.T) {
	g := qgen.New(90125)
	for i := 0; i < 6; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		edb := spec.ToEngineDB()
		want, err := rewrite.Run(edb, q, rewrite.Options{Mode: rewrite.ModeOptimized})
		if err != nil {
			t.Fatalf("baseline: %v (%s)", err, q)
		}
		baseline := make([]string, 0, len(want.Rows))
		for _, row := range want.Rows {
			baseline = append(baseline, row.String())
		}
		sort.Strings(baseline)
		for _, par := range []int{0, 2, 4} {
			for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming} {
				for seed := int64(0); seed < 3; seed++ {
					base := runtime.NumGoroutine()
					ctx, cancel := context.WithCancel(context.Background())
					inj := chaos.New(chaos.Config{
						Seed:       int64(i)<<8 | seed,
						ErrRate:    0.15,
						PanicRate:  0.10,
						DelayRate:  0.10,
						CancelRate: 0.05,
						OnCancel:   cancel,
					})
					it, err := rewrite.Stream(ctx, edb, q, rewrite.Options{
						Mode:        rewrite.ModeOptimized,
						Sweep:       sw,
						Parallelism: par,
						Inject:      inj.Wrapper(),
					})
					if err != nil {
						// A fault firing during plan build (eager join builds,
						// sort enforcers) surfaces as a construction error —
						// legal, but it must be a recognized one.
						if !recognized(err) {
							t.Fatalf("par=%d sweep=%v seed=%d: unrecognized build error %v (%s)", par, sw, seed, err, q)
						}
						cancel()
						waitForGoroutines(t, base)
						continue
					}
					got, streamErr := drainKeys(t, it)
					it.Close()
					it.Close() // idempotent under injection too
					cancel()
					if streamErr == nil {
						// No error means the complete result: silent truncation
						// is the one unforgivable outcome.
						if len(got) != len(baseline) {
							t.Fatalf("par=%d sweep=%v seed=%d: clean stream with %d rows, baseline %d (%s)",
								par, sw, seed, len(got), len(baseline), q)
						}
						for j := range got {
							if got[j] != baseline[j] {
								t.Fatalf("par=%d sweep=%v seed=%d: clean stream diverges from baseline at %d (%s)", par, sw, seed, j, q)
							}
						}
					} else if !recognized(streamErr) {
						t.Fatalf("par=%d sweep=%v seed=%d: unrecognized stream error %v (%s)", par, sw, seed, streamErr, q)
					}
					waitForGoroutines(t, base)
				}
			}
		}
	}
}

// TestChaosDeterminism pins that fault placement is a pure function of
// the seed: two injectors with the same config arm the same faults over
// the same wrap sequence.
func TestChaosDeterminism(t *testing.T) {
	cfg := chaos.Config{Seed: 7, ErrRate: 0.3, PanicRate: 0.2}
	a, b := chaos.New(cfg), chaos.New(cfg)
	sites := []string{"scan:r0", "filter", "exchange:merge", "agg", "exchange:partition:3"}
	for _, site := range sites {
		ia := a.Wrap(site, engine.NewTableIter(&engine.Table{}))
		ib := b.Wrap(site, engine.NewTableIter(&engine.Table{}))
		_, wrappedA := ia.(engine.ErrIter)
		_, wrappedB := ib.(engine.ErrIter)
		if wrappedA != wrappedB {
			t.Fatalf("site %s: divergent wrap decision", site)
		}
	}
	if a.ArmedFaults() != b.ArmedFaults() {
		t.Fatalf("armed faults diverge: %d vs %d", a.ArmedFaults(), b.ArmedFaults())
	}
	if a.ArmedFaults() == 0 {
		t.Fatal("no faults armed across 5 sites at 50% combined rate — mixer is broken")
	}
}

// TestChaosZeroRatesIdentity pins that a zero-rate injector never
// wraps: production code paths with Inject nil and chaos runs with all
// rates zero are the same execution.
func TestChaosZeroRatesIdentity(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 1})
	in := engine.NewTableIter(&engine.Table{})
	for _, site := range []string{"scan:x", "filter", "exchange:merge"} {
		if out := inj.Wrap(site, in); out != in {
			t.Fatalf("site %s: zero-rate injector wrapped the iterator", site)
		}
	}
	if inj.ArmedFaults() != 0 {
		t.Fatalf("zero-rate injector armed %d faults", inj.ArmedFaults())
	}
}
