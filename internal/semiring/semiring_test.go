package semiring

import (
	"testing"
	"testing/quick"
)

var nSample = []int64{0, 1, 2, 3, 5, 7, 11}
var bSample = []bool{false, true}
var tropSample = []int64{TropicalInf, 0, 1, 2, 5, 100}
var linSample = []LineageValue{
	L.Zero(), L.One(), LineageOf("t1"), LineageOf("t2"), LineageOf("t1", "t2"), LineageOf("t3", "t1"),
}

func TestNaturalLaws(t *testing.T) {
	if v := Laws[int64](N, nSample); v != "" {
		t.Fatalf("Natural violates %s", v)
	}
	if v := MonusLaws[int64](N, nSample); v != "" {
		t.Fatalf("Natural monus violates %s", v)
	}
}

func TestBooleanLaws(t *testing.T) {
	if v := Laws[bool](B, bSample); v != "" {
		t.Fatalf("Boolean violates %s", v)
	}
	if v := MonusLaws[bool](B, bSample); v != "" {
		t.Fatalf("Boolean monus violates %s", v)
	}
}

func TestTropicalLaws(t *testing.T) {
	if v := Laws[int64](T, tropSample); v != "" {
		t.Fatalf("Tropical violates %s", v)
	}
}

func TestLineageLaws(t *testing.T) {
	if v := Laws[LineageValue](L, linSample); v != "" {
		t.Fatalf("Lineage violates %s", v)
	}
}

func TestNaturalMonusTruncates(t *testing.T) {
	if got := N.Monus(3, 5); got != 0 {
		t.Errorf("3 − 5 = %d, want 0", got)
	}
	if got := N.Monus(5, 3); got != 2 {
		t.Errorf("5 − 3 = %d, want 2", got)
	}
}

func TestBooleanMonus(t *testing.T) {
	cases := []struct{ a, b, want bool }{
		{true, true, false}, {true, false, true}, {false, true, false}, {false, false, false},
	}
	for _, c := range cases {
		if got := B.Monus(c.a, c.b); got != c.want {
			t.Errorf("%v − %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSumAndProduct(t *testing.T) {
	if got := Sum[int64](N, 1, 2, 3); got != 6 {
		t.Errorf("Sum = %d", got)
	}
	if got := Sum[int64](N); got != 0 {
		t.Errorf("empty Sum = %d", got)
	}
	if got := Product[int64](N, 2, 3, 4); got != 24 {
		t.Errorf("Product = %d", got)
	}
	if got := Product[int64](N); got != 1 {
		t.Errorf("empty Product = %d", got)
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero[int64](N, 0) || IsZero[int64](N, 2) {
		t.Error("IsZero(N) wrong")
	}
	if !IsZero[bool](B, false) || IsZero[bool](B, true) {
		t.Error("IsZero(B) wrong")
	}
	if !IsZero[LineageValue](L, L.Zero()) || IsZero[LineageValue](L, L.One()) {
		t.Error("IsZero(Lineage) wrong")
	}
}

func TestNToBIsHomomorphism(t *testing.T) {
	if v := HomLaws[int64, bool](N, B, NToB, nSample); v != "" {
		t.Fatalf("NToB violates %s", v)
	}
}

func TestBToNIsNotAdditiveHomomorphism(t *testing.T) {
	// BToN preserves 0, 1 and · but not +: the law checker must catch it.
	if v := HomLaws[bool, int64](B, N, BToN, bSample); v != "h(a+b) = h(a)+h(b)" {
		t.Fatalf("expected additive violation, got %q", v)
	}
}

func TestExample41MultisetJoin(t *testing.T) {
	// Example 4.1: (M1,SP) joins with two workers of multiplicity 1 each
	// against assign multiplicity 4: 1·4 + 1·4 = 8; NToB(8) = true.
	got := N.Plus(N.Times(1, 4), N.Times(1, 4))
	if got != 8 {
		t.Fatalf("annotation = %d, want 8", got)
	}
	if !NToB(got) {
		t.Fatal("set-semantics image should be true")
	}
}

func TestLineageValues(t *testing.T) {
	v := LineageOf("b", "a", "b")
	if got := v.String(); got != "{a|b}" {
		t.Errorf("String = %q", got)
	}
	ids := v.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
	if L.Zero().String() != "⊥" {
		t.Errorf("bottom String = %q", L.Zero().String())
	}
	if L.Zero().IDs() != nil || L.One().IDs() != nil {
		t.Error("⊥ and ∅ must have no ids")
	}
}

func TestLineageJoinUnionsProvenance(t *testing.T) {
	got := L.Times(LineageOf("t1"), LineageOf("t2"))
	want := LineageOf("t1", "t2")
	if got != want {
		t.Errorf("Times = %v, want %v", got, want)
	}
	if got := L.Times(L.Zero(), LineageOf("t1")); got != L.Zero() {
		t.Errorf("⊥ must annihilate, got %v", got)
	}
	if got := L.Plus(L.Zero(), LineageOf("t1")); got != LineageOf("t1") {
		t.Errorf("⊥ must be neutral for +, got %v", got)
	}
}

func TestTropicalShortestDerivation(t *testing.T) {
	// Two alternative derivations of cost 3+4 and 2+6: min(7, 8) = 7.
	got := T.Plus(T.Times(3, 4), T.Times(2, 6))
	if got != 7 {
		t.Errorf("tropical annotation = %d, want 7", got)
	}
	if got := T.Times(TropicalInf, 5); got != TropicalInf {
		t.Errorf("∞ must annihilate, got %d", got)
	}
}

// Property: Natural semiring laws hold for arbitrary small naturals.
func TestNaturalLawsProperty(t *testing.T) {
	g := func(a, b, c uint8) bool {
		x, y, z := int64(a), int64(b), int64(c)
		if N.Plus(x, y) != N.Plus(y, x) {
			return false
		}
		if N.Times(x, N.Plus(y, z)) != N.Plus(N.Times(x, y), N.Times(x, z)) {
			return false
		}
		// Monus characterization on ℕ.
		d := N.Monus(x, y)
		if x > y && d != x-y {
			return false
		}
		if x <= y && d != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}
