package semiring

import "testing"

// The sample uses dyadic rationals so float multiplication is exact and
// the associativity/distributivity law checks are not confounded by
// rounding (0.1·0.25·0.5 would associate differently in float64).
var vitSample = []float64{0, 0.125, 0.25, 0.5, 0.75, 1}

func TestViterbiLaws(t *testing.T) {
	if v := Laws[float64](V, vitSample); v != "" {
		t.Fatalf("Viterbi violates %s", v)
	}
}

func TestViterbiSemantics(t *testing.T) {
	// Two derivations: 0.9·0.5 = 0.45 and 0.6·0.8 = 0.48; the most likely
	// derivation wins.
	got := V.Plus(V.Times(0.9, 0.5), V.Times(0.6, 0.8))
	if got != 0.48 {
		t.Fatalf("best derivation = %v, want 0.48", got)
	}
	if V.Times(0, 0.7) != 0 {
		t.Fatal("0 must annihilate")
	}
	if V.Plus(0, 0.7) != 0.7 {
		t.Fatal("0 must be neutral for max")
	}
}
