package semiring

// Laws checks the commutative-semiring axioms on a finite sample of
// carrier values. It returns the name of the first violated law, or ""
// if all sampled instances hold. It is used by the test suites of every
// semiring in this repository (including the period semirings built on
// top of them) to state the axioms of Section 4.1 machine-checkably.
func Laws[K comparable](s Semiring[K], sample []K) string {
	zero, one := s.Zero(), s.One()
	for _, a := range sample {
		if s.Plus(a, zero) != a {
			return "additive identity"
		}
		if s.Times(a, one) != a {
			return "multiplicative identity"
		}
		if s.Times(a, zero) != zero {
			return "annihilation by zero"
		}
		for _, b := range sample {
			if s.Plus(a, b) != s.Plus(b, a) {
				return "commutativity of +"
			}
			if s.Times(a, b) != s.Times(b, a) {
				return "commutativity of ·"
			}
			for _, c := range sample {
				if s.Plus(s.Plus(a, b), c) != s.Plus(a, s.Plus(b, c)) {
					return "associativity of +"
				}
				if s.Times(s.Times(a, b), c) != s.Times(a, s.Times(b, c)) {
					return "associativity of ·"
				}
				if s.Times(a, s.Plus(b, c)) != s.Plus(s.Times(a, b), s.Times(a, c)) {
					return "distributivity"
				}
			}
		}
	}
	return ""
}

// MonusLaws checks the defining properties of the monus on a finite
// sample: a −K b is the least k” (w.r.t. the natural order) such that
// a ≤K b +K k”. It returns the first violated law or "".
func MonusLaws[K comparable](s MSemiring[K], sample []K) string {
	for _, a := range sample {
		for _, b := range sample {
			d := s.Monus(a, b)
			if !s.Leq(a, s.Plus(b, d)) {
				return "monus upper bound: a ≤ b + (a−b)"
			}
			// Minimality over the sample.
			for _, c := range sample {
				if s.Leq(a, s.Plus(b, c)) && !s.Leq(d, c) {
					return "monus minimality"
				}
			}
		}
	}
	return ""
}

// HomLaws checks that h is a semiring homomorphism from s1 to s2 on a
// finite sample (Def 4.2). It returns the first violated law or "".
func HomLaws[K1, K2 comparable](s1 Semiring[K1], s2 Semiring[K2], h Hom[K1, K2], sample []K1) string {
	if h(s1.Zero()) != s2.Zero() {
		return "h(0) = 0"
	}
	if h(s1.One()) != s2.One() {
		return "h(1) = 1"
	}
	for _, a := range sample {
		for _, b := range sample {
			if h(s1.Plus(a, b)) != s2.Plus(h(a), h(b)) {
				return "h(a+b) = h(a)+h(b)"
			}
			if h(s1.Times(a, b)) != s2.Times(h(a), h(b)) {
				return "h(a·b) = h(a)·h(b)"
			}
		}
	}
	return ""
}
