package semiring

// Viterbi is the probability semiring ([0,1], max, ·, 0, 1): a tuple's
// annotation is the probability of its most likely derivation. The paper
// names "snapshot temporal extensions of probabilistic databases" as a
// direct application of the framework (§11); combining Viterbi with the
// period-semiring construction yields interval-annotated confidence
// histories.
type Viterbi struct{}

// V is the shared Viterbi instance.
var V Viterbi

func (Viterbi) Zero() float64 { return 0 }
func (Viterbi) One() float64  { return 1 }
func (Viterbi) Name() string  { return "Vit" }

// Plus is max: alternative derivations keep the most likely one.
func (Viterbi) Plus(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Times multiplies probabilities of jointly used tuples.
func (Viterbi) Times(a, b float64) float64 { return a * b }
