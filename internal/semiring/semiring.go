// Package semiring implements the commutative semiring framework that
// K-relations are annotated with (Green et al., PODS 2007), as used by
// Section 4.1 of "Snapshot Semantics for Temporal Multiset Relations"
// (Dignös et al., PVLDB 2019).
//
// A commutative semiring (K, +K, ·K, 0K, 1K) has commutative, associative
// addition and multiplication with neutral elements 0K and 1K,
// multiplication distributes over addition, and 0K annihilates
// multiplication. Addition models alternative use of tuples (union,
// projection); multiplication models conjunctive use (join).
//
// Two semirings are primary for the paper: Natural (ℕ, multiset semantics)
// and Boolean (𝔹, set semantics). Lineage and Tropical are included to
// exercise the claim that the framework works for any semiring K.
//
// An m-semiring additionally has a monus operation (Geerts & Poggi, 2010)
// derived from the natural order; it gives semantics to bag difference
// (EXCEPT ALL) and set difference (Section 7.1 of the paper).
package semiring

import (
	"math"
	"sort"
	"strings"
)

// Semiring is the operation dictionary of a commutative semiring over the
// carrier type K. Implementations must satisfy the commutative semiring
// laws; see Laws in laws.go for a machine-checkable statement.
type Semiring[K comparable] interface {
	// Zero returns the additive neutral element 0K.
	Zero() K
	// One returns the multiplicative neutral element 1K.
	One() K
	// Plus returns a +K b.
	Plus(a, b K) K
	// Times returns a ·K b.
	Times(a, b K) K
	// Name returns a short human-readable name such as "N" or "B".
	Name() string
}

// MSemiring is a semiring with a well-defined monus operation −K, i.e. a
// naturally ordered semiring in which {k” | a ≤K b +K k”} has a least
// element for all a, b (Section 7.1).
type MSemiring[K comparable] interface {
	Semiring[K]
	// Monus returns a −K b, the least k'' with a ≤K b +K k''.
	Monus(a, b K) K
	// Leq reports whether a ≤K b in the natural order
	// (a ≤K b ⇔ ∃c: a +K c = b).
	Leq(a, b K) bool
}

// IsZero reports whether k is the additive neutral element of s.
func IsZero[K comparable](s Semiring[K], k K) bool { return k == s.Zero() }

// Sum folds Plus over ks, returning s.Zero() for an empty slice.
func Sum[K comparable](s Semiring[K], ks ...K) K {
	acc := s.Zero()
	for _, k := range ks {
		acc = s.Plus(acc, k)
	}
	return acc
}

// Product folds Times over ks, returning s.One() for an empty slice.
func Product[K comparable](s Semiring[K], ks ...K) K {
	acc := s.One()
	for _, k := range ks {
		acc = s.Times(acc, k)
	}
	return acc
}

// Hom is a function between semiring carriers. A semiring homomorphism
// maps 0→0, 1→1 and commutes with Plus and Times (Def 4.2); semiring
// homomorphisms commute with RA+ queries over K-relations.
type Hom[K1, K2 comparable] func(K1) K2

// ---------------------------------------------------------------------------
// ℕ — multiset semantics.

// Natural is the semiring (ℕ, +, ·, 0, 1) of natural numbers, carried on
// int64. It corresponds to multiset (bag) semantics: annotations are tuple
// multiplicities. Natural is an m-semiring; its monus is truncating
// subtraction, which gives EXCEPT ALL semantics.
type Natural struct{}

// N is the shared Natural instance.
var N Natural

func (Natural) Zero() int64            { return 0 }
func (Natural) One() int64             { return 1 }
func (Natural) Plus(a, b int64) int64  { return a + b }
func (Natural) Times(a, b int64) int64 { return a * b }
func (Natural) Name() string           { return "N" }

// Monus returns max(0, a-b), the truncating minus of ℕ.
func (Natural) Monus(a, b int64) int64 {
	if a <= b {
		return 0
	}
	return a - b
}

// Leq is the usual order on ℕ, which coincides with ℕ's natural
// semiring order.
func (Natural) Leq(a, b int64) bool { return a <= b }

// ---------------------------------------------------------------------------
// 𝔹 — set semantics.

// Boolean is the semiring (𝔹, ∨, ∧, false, true); it corresponds to set
// semantics: a tuple is annotated true iff it is in the relation. Boolean
// is an m-semiring with a −𝔹 b = a ∧ ¬b.
type Boolean struct{}

// B is the shared Boolean instance.
var B Boolean

func (Boolean) Zero() bool           { return false }
func (Boolean) One() bool            { return true }
func (Boolean) Plus(a, b bool) bool  { return a || b }
func (Boolean) Times(a, b bool) bool { return a && b }
func (Boolean) Name() string         { return "B" }

// Monus returns a ∧ ¬b, set difference on annotations.
func (Boolean) Monus(a, b bool) bool { return a && !b }

// Leq is boolean implication a → b, the natural order of 𝔹.
func (Boolean) Leq(a, b bool) bool { return !a || b }

// ---------------------------------------------------------------------------
// Lineage — which-provenance.

// LineageValue is an element of the lineage semiring: either the special
// bottom element (IsZero) or a set of base-tuple identifiers encoded
// canonically (sorted, "|"-separated). The canonical string encoding keeps
// the carrier comparable so it can be used as a map key and satisfy
// Semiring's type constraint.
type LineageValue struct {
	bottom bool
	ids    string
}

// Lineage is the which-provenance semiring (P(X) ∪ {⊥}, ∪*, ∪*, ⊥, ∅):
// both addition and multiplication union the contributing base-tuple sets,
// with ⊥ as the annihilating zero. It demonstrates the framework on a
// provenance semiring that is neither ℕ nor 𝔹.
type Lineage struct{}

// L is the shared Lineage instance.
var L Lineage

// LineageOf returns the lineage annotation for the given base tuple ids.
func LineageOf(ids ...string) LineageValue {
	set := map[string]struct{}{}
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return lineageFromSet(set)
}

func lineageFromSet(set map[string]struct{}) LineageValue {
	sorted := make([]string, 0, len(set))
	for id := range set {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	return LineageValue{ids: strings.Join(sorted, "|")}
}

// IDs returns the base-tuple identifiers in the lineage, nil for ⊥ or ∅.
func (v LineageValue) IDs() []string {
	if v.bottom || v.ids == "" {
		return nil
	}
	return strings.Split(v.ids, "|")
}

// String renders the lineage value for debugging.
func (v LineageValue) String() string {
	if v.bottom {
		return "⊥"
	}
	return "{" + v.ids + "}"
}

func (Lineage) Zero() LineageValue { return LineageValue{bottom: true} }
func (Lineage) One() LineageValue  { return LineageValue{} }
func (Lineage) Name() string       { return "Lin" }

// Plus unions lineages; ⊥ is neutral.
func (Lineage) Plus(a, b LineageValue) LineageValue {
	if a.bottom {
		return b
	}
	if b.bottom {
		return a
	}
	return unionLineage(a, b)
}

// Times unions lineages; ⊥ annihilates.
func (Lineage) Times(a, b LineageValue) LineageValue {
	if a.bottom || b.bottom {
		return LineageValue{bottom: true}
	}
	return unionLineage(a, b)
}

func unionLineage(a, b LineageValue) LineageValue {
	set := map[string]struct{}{}
	for _, id := range a.IDs() {
		set[id] = struct{}{}
	}
	for _, id := range b.IDs() {
		set[id] = struct{}{}
	}
	return lineageFromSet(set)
}

// ---------------------------------------------------------------------------
// Tropical — min-cost semantics.

// TropicalInf is the additive zero of the Tropical semiring (+∞).
const TropicalInf int64 = math.MaxInt64

// Tropical is the min-plus semiring (ℕ ∪ {∞}, min, +, ∞, 0), carried on
// int64 with TropicalInf as ∞. Annotations are the minimal cost of
// deriving a tuple. Included to exercise non-idempotent-addition-free
// semirings beyond ℕ; it is not an m-semiring here.
type Tropical struct{}

// T is the shared Tropical instance.
var T Tropical

func (Tropical) Zero() int64 { return TropicalInf }
func (Tropical) One() int64  { return 0 }
func (Tropical) Name() string {
	return "Trop"
}

// Plus is min.
func (Tropical) Plus(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Times is saturating addition with ∞ annihilating.
func (Tropical) Times(a, b int64) int64 {
	if a == TropicalInf || b == TropicalInf {
		return TropicalInf
	}
	return a + b
}

// ---------------------------------------------------------------------------
// Homomorphisms used in the paper and tests.

// NToB maps ℕ to 𝔹: positive multiplicities to true. It is the
// "duplicate elimination" homomorphism of Example 4.1.
func NToB(n int64) bool { return n > 0 }

// BToN maps 𝔹 to ℕ: true to multiplicity 1. It is a homomorphism for
// Times but NOT for Plus (true+true=true but 1+1=2); exported for tests
// that verify the law checker rejects it.
func BToN(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
