package rewrite

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/obs"
)

// This file is the planner entry point: the phased replacement for the
// rule-only rewriter. PlanQuery runs four explicit phases —
//
//	1. logical rewrite   — the REWR reduction (rewrite.go), preceded by
//	                       the algebraic select pushdown when enabled
//	2. pushdown          — moves the time window τ_T below the REWR
//	                       operators where the temporal algebra allows
//	                       (pushdown.go documents the per-rule legality
//	                       conditions)
//	3. statistics        — per-table interval statistics (engine/stats.go),
//	                       computed lazily and cached on the tables; the
//	                       planner consumes them through engine.DB's
//	                       EstimateRows
//	4. physical          — stats-driven choices: hash-join build side and
//	                       pre-sizing, zone-map scan pruning, adaptive
//	                       worker count (physical.go)
//
// Every phase beyond the logical rewrite is gated by a PlannerKnobs
// flag, so each optimization is independently ablatable and the
// all-knobs-off plan is byte-identical to the rule-only rewriter's
// output.

// PlannerKnobs enables the cost-aware planner phases individually —
// the ablation switches of the `snapbench -exp opt` study. The zero
// value disables them all.
type PlannerKnobs struct {
	// Pushdown moves the time window (Options.Window) below the REWR
	// operators toward the scans, and applies the algebraic selection
	// pushdown (algebra.Optimize) before the rewrite — the plan-level
	// and query-level halves of the same phase.
	Pushdown bool
	// Prune permits the zone-map check on windowed scans: a stored table
	// whose endpoint envelope is disjoint from the window is skipped
	// outright, and a begin-sorted scan stops at the first row that
	// cannot overlap it — before the parallel executor's morsel split.
	Prune bool
	// PreSize pre-sizes hash-join build tables from the estimated
	// build-side cardinality, removing incremental map growth during the
	// build drain.
	PreSize bool
	// AdaptiveWorkers narrows Options.Parallelism when the estimated
	// result cardinality doesn't justify the requested worker count.
	AdaptiveWorkers bool
}

// AllKnobs returns PlannerKnobs with every phase enabled — the
// all-on configuration of the ablation study.
func AllKnobs() PlannerKnobs {
	return PlannerKnobs{Pushdown: true, Prune: true, PreSize: true, AdaptiveWorkers: true}
}

// Decisions records what the planner chose and why: the worker-count
// override (0 = keep Options.Parallelism) and one human-readable note
// per physical decision, printed by `snapq -explain` so ablation runs
// are diagnosable.
type Decisions struct {
	// Workers is the adaptive worker count; 0 means no override.
	Workers int
	// Notes explains each decision, e.g. "build=left (est 1200 < 50000)".
	Notes []string
}

func (d *Decisions) note(format string, args ...any) {
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// PlanQuery reduces a snapshot query to a physical plan through the
// planner's phases and returns the plan together with the record of
// physical decisions taken. cat must resolve the data schemas of the
// base relations referenced by q; statistics-driven phases additionally
// need cat to be an *engine.DB (otherwise they are skipped — there are
// no stored rows to measure).
func PlanQuery(q algebra.Query, cat algebra.Catalog, opt Options) (engine.Plan, *Decisions, error) {
	if _, err := algebra.OutSchema(q, cat); err != nil {
		return nil, nil, err
	}
	obs.Default.QueriesRun.Add(1)
	dec := &Decisions{}

	// Phase 1: logical rewrite. The algebraic select pushdown runs first
	// when enabled (legacy Options.Pushdown or the planner's knob): its
	// rules are bag-algebra identities, so the rewritten plan computes
	// the same unique encoding.
	if opt.Pushdown || opt.Planner.Pushdown {
		oq, err := algebra.Optimize(q, cat)
		if err != nil {
			return nil, nil, err
		}
		q = oq
	}
	rw := newRewriter(cat, opt)
	p, err := rw.rewr(q)
	if err != nil {
		return nil, nil, err
	}
	if opt.Mode == ModeOptimized && !opt.SkipFinalCoalesce {
		p = rw.coalesceOp(p)
	}

	// Phase 2: window placement. Without the pushdown knob the window
	// clips once at the root — the semantics baseline; with it, the
	// pushdown phase moves it toward the scans.
	if opt.Window.Valid() {
		if opt.Planner.Pushdown {
			p = rw.pushWindow(p, opt.Window, dec)
		} else {
			p = engine.WindowP{T: opt.Window, In: p}
		}
	}

	// Phases 3+4: statistics (lazily computed and cached on the stored
	// tables) feed the physical pass. Gated on any knob being set so the
	// knobs-off plan stays byte-identical to the rule-only rewriter's.
	if opt.Planner != (PlannerKnobs{}) && rw.db != nil {
		p = rw.applyPhysical(p, dec)
		rw.adaptiveWorkers(p, dec)
	}
	return p, dec, nil
}
