// Resource-governor tests at the rewrite layer: each limit (row count,
// memory budget, deadline) must terminate the query with its typed
// error through the error-carrying iterator protocol, on both the
// sequential and the parallel executor.
package rewrite_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/krel"
	"snapk/internal/rewrite"
)

// drainGoverned pulls the stream per-row to end-of-stream, returning
// the row count and terminal error.
func drainGoverned(t *testing.T, db *engine.DB, q algebra.Query, opt rewrite.Options) (int64, error) {
	t.Helper()
	it, err := rewrite.Stream(context.Background(), db, q, opt)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for {
		if _, ok := it.Next(); !ok {
			return n, engine.IterErr(it)
		}
		n++
	}
}

// The row limit is exact under per-row drive: the governor counts at
// the root, so exactly RowLimit rows come out before ErrRowLimit —
// sequential and parallel alike.
func TestRowLimitExactPerRow(t *testing.T) {
	db := analyzeLeakDB()
	q := algebra.Rel{Name: "big"}
	for _, par := range []int{0, 4} {
		n, err := drainGoverned(t, db, q, rewrite.Options{
			Mode:        rewrite.ModeOptimized,
			Parallelism: par,
			BatchSize:   -1,
			Limits:      engine.Limits{RowLimit: 7},
		})
		if !errors.Is(err, engine.ErrRowLimit) {
			t.Fatalf("par=%d: err = %v, want ErrRowLimit", par, err)
		}
		if n != 7 {
			t.Fatalf("par=%d: %d rows delivered before the limit, want exactly 7", par, n)
		}
	}
}

// Under batch drive the limit still terminates the query with the typed
// error; delivery stops within one batch of the limit.
func TestRowLimitBatchDrive(t *testing.T) {
	db := analyzeLeakDB()
	q := algebra.Rel{Name: "big"}
	for _, par := range []int{0, 4} {
		n, err := drainGoverned(t, db, q, rewrite.Options{
			Mode:        rewrite.ModeOptimized,
			Parallelism: par,
			Limits:      engine.Limits{RowLimit: 100},
		})
		if !errors.Is(err, engine.ErrRowLimit) {
			t.Fatalf("par=%d: err = %v, want ErrRowLimit", par, err)
		}
		if n > 100 {
			t.Fatalf("par=%d: %d rows delivered past the limit", par, n)
		}
	}
}

// A one-byte memory budget must trip on the streaming sweep's tracked
// state (the max_state accounting) with ErrMemBudget — at build time or
// mid-stream, but never as a clean complete result.
func TestMemBudgetTripsStreamingSweep(t *testing.T) {
	db := analyzeLeakDB()
	q := algebra.Agg{
		GroupBy: []string{"g"},
		Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:      algebra.Rel{Name: "big"},
	}
	for _, par := range []int{0, 4} {
		_, err := drainGoverned(t, db, q, rewrite.Options{
			Mode:        rewrite.ModeOptimized,
			Sweep:       rewrite.SweepStreaming,
			Parallelism: par,
			Limits:      engine.Limits{MemBudget: 1},
		})
		if !errors.Is(err, engine.ErrMemBudget) {
			t.Fatalf("par=%d: err = %v, want ErrMemBudget", par, err)
		}
	}
}

// An already-expired deadline surfaces as context.DeadlineExceeded —
// either refusing to build or ending the stream — on both executors.
func TestDeadlineSurfaces(t *testing.T) {
	db := analyzeLeakDB()
	q := algebra.Rel{Name: "big"}
	for _, par := range []int{0, 4} {
		n, err := drainGoverned(t, db, q, rewrite.Options{
			Mode:        rewrite.ModeOptimized,
			Parallelism: par,
			Limits:      engine.Limits{Timeout: time.Nanosecond},
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("par=%d: err = %v (%d rows), want DeadlineExceeded", par, err, n)
		}
	}
}
