// Package rewrite implements REWR (Fig 4 of Dignös et al., PVLDB 2019):
// the reduction of a snapshot-semantics query over ℕᵀ-relations to a
// non-temporal multiset plan over the PERIODENC encoding, executed by
// package engine.
//
// Two plan modes reproduce the §9 optimization study:
//
//   - ModeOptimized (the paper's middleware): coalesce is applied exactly
//     once, as the final operator — justified by Lemma 6.1, which lets
//     C_K be pulled out of +KP, ·KP and the monus; aggregation and
//     difference use pre-aggregation intertwined with the split.
//   - ModeNaive (the strawman of §9's "preliminary experiments"):
//     coalesce after every rewritten operator, and split materialized
//     before aggregation without pre-aggregation.
package rewrite

import (
	"context"
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/tuple"
)

// Mode selects the coalesce placement / split strategy.
type Mode int

const (
	// ModeOptimized applies a single final coalesce and pre-aggregation.
	ModeOptimized Mode = iota
	// ModeNaive coalesces after every operator and materializes splits.
	ModeNaive
)

// Options configures the rewriting.
type Options struct {
	Mode Mode
	// CoalesceImpl selects the physical coalescing implementation.
	CoalesceImpl engine.CoalesceImpl
	// SkipFinalCoalesce omits the outermost coalesce; the result is then
	// snapshot-equivalent but not the unique encoding. Used only by
	// benchmarks that want to isolate operator cost.
	SkipFinalCoalesce bool
	// Pushdown applies the algebraic selection-pushdown optimizer before
	// rewriting. Because pushdown rules are bag-algebra identities and
	// REWR is snapshot-reducible, the optimized plan computes the same
	// unique encoding.
	Pushdown bool
	// Materialize executes the plan on the node-at-a-time materializing
	// executor (engine.DB.Exec) instead of the default streaming iterator
	// engine (engine.DB.ExecStream). Kept as the ablation baseline for
	// the pipelining study; results are multiset-identical.
	Materialize bool
	// Parallelism is the number of worker goroutines per exchange when
	// the plan runs on the parallel execution subsystem
	// (internal/engine/parallel). Values <= 1 select the sequential
	// streaming engine. Ignored when Materialize is set. Results are
	// multiset-identical at every worker count.
	Parallelism int
}

// Rewrite reduces a snapshot query to a physical plan over the period
// encoding (the commuting diagram of Eq. 1). cat must resolve the data
// schemas of the base relations referenced by q.
func Rewrite(q algebra.Query, cat algebra.Catalog, opt Options) (engine.Plan, error) {
	if _, err := algebra.OutSchema(q, cat); err != nil {
		return nil, err
	}
	if opt.Pushdown {
		oq, err := algebra.Optimize(q, cat)
		if err != nil {
			return nil, err
		}
		q = oq
	}
	p, err := rewr(q, cat, opt)
	if err != nil {
		return nil, err
	}
	if opt.Mode == ModeOptimized && !opt.SkipFinalCoalesce {
		p = engine.CoalesceP{Impl: opt.CoalesceImpl, In: p}
	}
	return p, nil
}

// maybeCoalesce wraps p in a coalesce operator in naive mode, mirroring
// the per-operator C(...) of the unoptimized Fig 4 rules.
func maybeCoalesce(p engine.Plan, opt Options) engine.Plan {
	if opt.Mode == ModeNaive {
		return engine.CoalesceP{Impl: opt.CoalesceImpl, In: p}
	}
	return p
}

func rewr(q algebra.Query, cat algebra.Catalog, opt Options) (engine.Plan, error) {
	switch n := q.(type) {
	case algebra.Rel:
		// REWR(R) = R: snapshot queries run directly over natively stored
		// period relations, no preprocessing.
		return engine.ScanP{Name: n.Name}, nil
	case algebra.Select:
		in, err := rewr(n.In, cat, opt)
		if err != nil {
			return nil, err
		}
		return maybeCoalesce(engine.FilterP{Pred: n.Pred, In: in}, opt), nil
	case algebra.Project:
		in, err := rewr(n.In, cat, opt)
		if err != nil {
			return nil, err
		}
		return maybeCoalesce(engine.ProjectP{Exprs: n.Exprs, In: in}, opt), nil
	case algebra.Join:
		l, err := rewr(n.L, cat, opt)
		if err != nil {
			return nil, err
		}
		r, err := rewr(n.R, cat, opt)
		if err != nil {
			return nil, err
		}
		return maybeCoalesce(engine.JoinP{L: l, R: r, Pred: n.Pred}, opt), nil
	case algebra.Union:
		l, err := rewr(n.L, cat, opt)
		if err != nil {
			return nil, err
		}
		r, err := rewr(n.R, cat, opt)
		if err != nil {
			return nil, err
		}
		return maybeCoalesce(engine.UnionP{L: l, R: r}, opt), nil
	case algebra.Diff:
		l, err := rewr(n.L, cat, opt)
		if err != nil {
			return nil, err
		}
		r, err := rewr(n.R, cat, opt)
		if err != nil {
			return nil, err
		}
		return maybeCoalesce(engine.DiffP{L: l, R: r}, opt), nil
	case algebra.Agg:
		in, err := rewr(n.In, cat, opt)
		if err != nil {
			return nil, err
		}
		p := engine.AggP{
			GroupBy: n.GroupBy,
			Aggs:    n.Aggs,
			PreAgg:  opt.Mode == ModeOptimized,
			In:      in,
		}
		return maybeCoalesce(p, opt), nil
	default:
		return nil, fmt.Errorf("rewrite: unknown query node %T", q)
	}
}

// Run is the one-call middleware entry point: rewrite q and execute it on
// db, returning the coalesced period-encoded result. By default the plan
// runs on the streaming iterator engine, so Filter/Project/Union/join
// pipelines never materialize intermediates; Options.Materialize selects
// the operator-at-a-time executor instead and Options.Parallelism > 1
// the parallel exchange executor.
func Run(db *engine.DB, q algebra.Query, opt Options) (*engine.Table, error) {
	if opt.Materialize {
		p, err := Rewrite(q, db, opt)
		if err != nil {
			return nil, err
		}
		return db.Exec(p)
	}
	it, err := Stream(context.Background(), db, q, opt)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	return engine.Materialize(it), nil
}

// Stream rewrites q and returns a pull-based row stream over the
// period-encoded result, without materializing it: the streaming cursor
// entry point behind snapk.DB.QueryRows. With Options.Parallelism > 1
// the plan runs on the parallel exchange executor; either way ctx
// cancellation tears the pipeline (and any fragment goroutines) down.
// The caller must Close the returned iterator.
func Stream(ctx context.Context, db *engine.DB, q algebra.Query, opt Options) (engine.RowIter, error) {
	p, err := Rewrite(q, db, opt)
	if err != nil {
		return nil, err
	}
	// The parallel executor also serves Parallelism <= 1: it degenerates
	// to the sequential streaming engine wrapped with ctx cancellation.
	return parallel.Exec(ctx, db, p, parallel.Options{Workers: max(opt.Parallelism, 1)})
}

// OutSchema returns the data schema of the result of q on db, mirroring
// algebra.OutSchema.
func OutSchema(db *engine.DB, q algebra.Query) (tuple.Schema, error) {
	return algebra.OutSchema(q, db)
}
