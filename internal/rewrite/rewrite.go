// Package rewrite implements REWR (Fig 4 of Dignös et al., PVLDB 2019):
// the reduction of a snapshot-semantics query over ℕᵀ-relations to a
// non-temporal multiset plan over the PERIODENC encoding, executed by
// package engine.
//
// Two plan modes reproduce the §9 optimization study:
//
//   - ModeOptimized (the paper's middleware): coalesce is applied exactly
//     once, as the final operator — justified by Lemma 6.1, which lets
//     C_K be pulled out of +KP, ·KP and the monus; aggregation and
//     difference use pre-aggregation intertwined with the split.
//   - ModeNaive (the strawman of §9's "preliminary experiments"):
//     coalesce after every rewritten operator, and split materialized
//     before aggregation without pre-aggregation.
package rewrite

import (
	"context"
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/engine/parallel"
	"snapk/internal/interval"
	"snapk/internal/obs"
	"snapk/internal/tuple"
)

// Mode selects the coalesce placement / split strategy.
type Mode int

const (
	// ModeOptimized applies a single final coalesce and pre-aggregation.
	ModeOptimized Mode = iota
	// ModeNaive coalesces after every operator and materializes splits.
	ModeNaive
)

// SweepMode selects the physical form of the sweep operators (coalesce
// and the pre-aggregated split).
type SweepMode int

const (
	// SweepAuto (the default) picks the streaming sweep whenever the
	// input's interval-endpoint order is already guaranteed — a
	// begin-sorted stored table under order-preserving operators — and
	// otherwise keeps the materializing sweep, which sorts internally
	// anyway.
	SweepAuto SweepMode = iota
	// SweepStreaming always uses the streaming sweeps, inserting an
	// explicit endpoint sort enforcer (engine.SortP) when the input
	// order is not guaranteed.
	SweepStreaming
	// SweepBlocking always uses the materializing sweeps — the ablation
	// baseline of the streaming-sweep study.
	SweepBlocking
)

// Options configures the rewriting.
type Options struct {
	Mode Mode
	// CoalesceImpl selects the physical coalescing implementation.
	CoalesceImpl engine.CoalesceImpl
	// Sweep selects streaming vs materializing sweep operators; see
	// SweepMode. Streaming aggregation only applies to the
	// pre-aggregated split of ModeOptimized.
	Sweep SweepMode
	// SkipFinalCoalesce omits the outermost coalesce; the result is then
	// snapshot-equivalent but not the unique encoding. Used only by
	// benchmarks that want to isolate operator cost.
	SkipFinalCoalesce bool
	// Pushdown applies the algebraic selection-pushdown optimizer before
	// rewriting. Because pushdown rules are bag-algebra identities and
	// REWR is snapshot-reducible, the optimized plan computes the same
	// unique encoding.
	Pushdown bool
	// Window restricts the query to the time window [Begin, End): the
	// timeslice τ_T, applied with clip semantics (row validity intervals
	// are intersected with the window; rows not overlapping it are
	// dropped). The zero value — an invalid interval — means no
	// restriction. Without Planner.Pushdown the window is applied once at
	// the plan root; with it the pushdown phase moves it toward the scans
	// under the legality rules documented in pushdown.go.
	Window interval.Interval
	// Planner enables the phased cost-aware planner's knobs (pushdown,
	// zone-map pruning, hash pre-sizing, adaptive worker count), each
	// independently ablatable. The zero value disables every phase beyond
	// the logical rewrite, leaving plans byte-identical to the rule-only
	// rewriter's output. See PlannerKnobs.
	Planner PlannerKnobs
	// Materialize executes the plan on the node-at-a-time materializing
	// executor (engine.DB.Exec) instead of the default streaming iterator
	// engine (engine.DB.ExecStream). Kept as the ablation baseline for
	// the pipelining study; results are multiset-identical.
	Materialize bool
	// Parallelism is the number of worker goroutines per exchange when
	// the plan runs on the parallel execution subsystem
	// (internal/engine/parallel). Values <= 1 select the sequential
	// streaming engine. Ignored when Materialize is set. Results are
	// multiset-identical at every worker count.
	Parallelism int
	// BatchSize is the row capacity of the batch-at-a-time iterator hop
	// (engine.BatchIter): converted operators amortize the virtual
	// Next-call tax over BatchSize rows, and parallel exchanges hand
	// their transport batches through wholesale. Zero — the default —
	// ties the batch size to the exchange morsel size; a negative value
	// disables the batch protocol entirely (the per-row ablation,
	// restoring classic Volcano pull). Results are multiset-identical at
	// every setting.
	BatchSize int
	// Collect, when non-nil, enables EXPLAIN ANALYZE: Stream attaches the
	// executed plan's per-operator/per-fragment statistics tree under the
	// collector (one "result" node whose row count is exactly what the
	// cursor observes, with the operator tree beneath it). Nil — the
	// default — compiles every instrumentation hook to an identity no-op,
	// so the hot path is unchanged. Ignored by the materializing executor,
	// which has no iterators to instrument.
	Collect *engine.Collector
	// Limits configures the per-query resource governor: wall-clock
	// deadline, emitted-row limit and tracked-state memory budget. The
	// zero value (the default) disables governing entirely. A tripped
	// limit ends the stream and surfaces the governor's typed error
	// (engine.ErrRowLimit, engine.ErrMemBudget,
	// context.DeadlineExceeded) through the iterator's Err. Ignored by
	// the materializing executor.
	Limits engine.Limits
	// Inject, when non-nil, wraps the iterator built at each operator
	// and exchange boundary — the chaos fault-injection hook
	// (internal/chaos). Production queries leave it nil. Ignored by the
	// materializing executor.
	Inject engine.IterWrapper
}

// Rewrite reduces a snapshot query to a physical plan over the period
// encoding (the commuting diagram of Eq. 1). cat must resolve the data
// schemas of the base relations referenced by q. It is PlanQuery with
// the planner's decision record discarded — the entry point for callers
// that only need the plan.
func Rewrite(q algebra.Query, cat algebra.Catalog, opt Options) (engine.Plan, error) {
	p, _, err := PlanQuery(q, cat, opt)
	return p, err
}

// rewriter carries the per-Rewrite state: the options and memoized
// per-table begin-sortedness — the order probe scans stored rows, and
// naive mode asks once per rewritten operator, so one Rewrite call must
// not rescan a table per sweep node.
type rewriter struct {
	opt Options
	db  *engine.DB // nil when the catalog is not an engine database
	ord map[string]bool
}

func newRewriter(cat algebra.Catalog, opt Options) *rewriter {
	db, _ := cat.(*engine.DB)
	return &rewriter{opt: opt, db: db, ord: make(map[string]bool)}
}

// beginOrdered reports whether the plan's output order is guaranteed to
// be begin-sorted. Order information needs stored-table access, so only
// engine databases (the usual catalog) can report it.
func (rw *rewriter) beginOrdered(p engine.Plan) bool {
	if rw.db == nil {
		return false
	}
	return engine.BeginOrderedWith(p, func(name string) bool {
		s, ok := rw.ord[name]
		if !ok {
			s = rw.db.ScanBeginSorted(name)
			rw.ord[name] = s
		}
		return s
	})
}

// sweepInput decides the physical form of a sweep operator over input p
// under opt.Sweep: it reports whether the sweep streams, and wraps p in
// the endpoint sort enforcer when streaming is forced without a
// guaranteed input order. The decision is independent of
// opt.Parallelism: the parallel executor's order-preserving exchanges
// (ordered repartition + ordered merge) carry the begin order into
// every partition, so streaming sweeps and parallelism compose — each
// worker runs the streaming sweep over its begin-sorted partition.
func (rw *rewriter) sweepInput(p engine.Plan) (engine.Plan, bool) {
	switch rw.opt.Sweep {
	case SweepBlocking:
		obs.Default.CountSweep(false, false)
		return p, false
	case SweepStreaming:
		enforced := !rw.beginOrdered(p)
		if enforced {
			p = engine.SortP{In: p}
		}
		obs.Default.CountSweep(true, enforced)
		return p, true
	default: // SweepAuto: stream exactly when the order comes for free
		stream := rw.beginOrdered(p)
		obs.Default.CountSweep(stream, false)
		return p, stream
	}
}

// sweepInput2 is the two-input form of sweepInput, for the streaming
// merge-based difference: it reports whether the sweep streams and
// wraps EACH child in the endpoint sort enforcer when streaming is
// forced without a guaranteed order. Under SweepAuto the difference
// streams only when both children already carry the order — a single
// sorted side would make the merge sweep pay an enforcer sort the
// blocking sweep avoids.
func (rw *rewriter) sweepInput2(l, r engine.Plan) (engine.Plan, engine.Plan, bool) {
	switch rw.opt.Sweep {
	case SweepBlocking:
		obs.Default.CountSweep(false, false)
		return l, r, false
	case SweepStreaming:
		enforced := false
		if !rw.beginOrdered(l) {
			l = engine.SortP{In: l}
			enforced = true
		}
		if !rw.beginOrdered(r) {
			r = engine.SortP{In: r}
			enforced = true
		}
		obs.Default.CountSweep(true, enforced)
		return l, r, true
	default: // SweepAuto: stream exactly when the order comes for free
		stream := rw.beginOrdered(l) && rw.beginOrdered(r)
		obs.Default.CountSweep(stream, false)
		return l, r, stream
	}
}

// coalesceOp wraps p in a coalesce operator in the physical form chosen
// by opt.Sweep.
func (rw *rewriter) coalesceOp(p engine.Plan) engine.Plan {
	in, stream := rw.sweepInput(p)
	return engine.CoalesceP{Impl: rw.opt.CoalesceImpl, In: in, Streaming: stream}
}

// maybeCoalesce wraps p in a coalesce operator in naive mode, mirroring
// the per-operator C(...) of the unoptimized Fig 4 rules.
func (rw *rewriter) maybeCoalesce(p engine.Plan) engine.Plan {
	if rw.opt.Mode == ModeNaive {
		return rw.coalesceOp(p)
	}
	return p
}

func (rw *rewriter) rewr(q algebra.Query) (engine.Plan, error) {
	switch n := q.(type) {
	case algebra.Rel:
		// REWR(R) = R: snapshot queries run directly over natively stored
		// period relations, no preprocessing.
		return engine.ScanP{Name: n.Name}, nil
	case algebra.Select:
		in, err := rw.rewr(n.In)
		if err != nil {
			return nil, err
		}
		return rw.maybeCoalesce(engine.FilterP{Pred: n.Pred, In: in}), nil
	case algebra.Project:
		in, err := rw.rewr(n.In)
		if err != nil {
			return nil, err
		}
		return rw.maybeCoalesce(engine.ProjectP{Exprs: n.Exprs, In: in}), nil
	case algebra.Join:
		l, err := rw.rewr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewr(n.R)
		if err != nil {
			return nil, err
		}
		return rw.maybeCoalesce(engine.JoinP{L: l, R: r, Pred: n.Pred}), nil
	case algebra.Union:
		l, err := rw.rewr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewr(n.R)
		if err != nil {
			return nil, err
		}
		return rw.maybeCoalesce(engine.UnionP{L: l, R: r}), nil
	case algebra.Diff:
		l, err := rw.rewr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewr(n.R)
		if err != nil {
			return nil, err
		}
		l, r, stream := rw.sweepInput2(l, r)
		return rw.maybeCoalesce(engine.DiffP{L: l, R: r, Streaming: stream}), nil
	case algebra.Agg:
		in, err := rw.rewr(n.In)
		if err != nil {
			return nil, err
		}
		preAgg := rw.opt.Mode == ModeOptimized
		stream := false
		if preAgg {
			// Only the pre-aggregated split has a streaming form; the
			// naive materialized split is blocking by construction.
			in, stream = rw.sweepInput(in)
		}
		p := engine.AggP{
			GroupBy:   n.GroupBy,
			Aggs:      n.Aggs,
			PreAgg:    preAgg,
			Streaming: stream,
			In:        in,
		}
		return rw.maybeCoalesce(p), nil
	default:
		return nil, fmt.Errorf("rewrite: unknown query node %T", q)
	}
}

// Run is the one-call middleware entry point: rewrite q and execute it on
// db, returning the coalesced period-encoded result. By default the plan
// runs on the streaming iterator engine, so Filter/Project/Union/join
// pipelines never materialize intermediates; Options.Materialize selects
// the operator-at-a-time executor instead and Options.Parallelism > 1
// the parallel exchange executor.
func Run(db *engine.DB, q algebra.Query, opt Options) (*engine.Table, error) {
	if opt.Materialize {
		p, err := Rewrite(q, db, opt)
		if err != nil {
			return nil, err
		}
		return db.Exec(p)
	}
	it, err := Stream(context.Background(), db, q, opt)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	t, err := engine.MaterializeErr(it)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Stream rewrites q and returns a pull-based row stream over the
// period-encoded result, without materializing it: the streaming cursor
// entry point behind snapk.DB.QueryRows. With Options.Parallelism > 1
// the plan runs on the parallel exchange executor; either way ctx
// cancellation tears the pipeline (and any fragment goroutines) down.
// The returned iterator carries the error-carrying protocol: a consumer
// that drains it to end-of-stream must check engine.IterErr before
// trusting the result (the snapdebug build asserts exactly this at the
// root). The caller must Close the returned iterator.
func Stream(ctx context.Context, db *engine.DB, q algebra.Query, opt Options) (engine.RowIter, error) {
	p, dec, err := PlanQuery(q, db, opt)
	if err != nil {
		return nil, err
	}
	// When collecting, the whole executed tree hangs under one "result"
	// node: its row count is exactly what the root cursor observes.
	var st *engine.OpStats
	if opt.Collect != nil {
		st = opt.Collect.Root.Child("result", "")
	}
	// The adaptive-workers decision only ever narrows the requested
	// parallelism: small estimated results don't pay worker startup and
	// exchange fan-in for rows that aren't there.
	workers := max(opt.Parallelism, 1)
	if dec.Workers > 0 {
		workers = min(workers, dec.Workers)
	}
	// The parallel executor also serves Parallelism <= 1: it degenerates
	// to the sequential streaming engine wrapped with ctx cancellation.
	it, err := parallel.Exec(ctx, db, p, parallel.Options{
		Workers:   workers,
		BatchSize: opt.BatchSize,
		Stats:     st,
		Gov:       engine.NewGovernor(opt.Limits),
		Inject:    opt.Inject,
	})
	if err != nil {
		return nil, err
	}
	return engine.CheckErrChecked("rewrite stream root", it), nil
}

// OutSchema returns the data schema of the result of q on db, mirroring
// algebra.OutSchema.
func OutSchema(db *engine.DB, q algebra.Query) (tuple.Schema, error) {
	return algebra.OutSchema(q, db)
}
