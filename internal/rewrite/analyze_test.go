// EXPLAIN ANALYZE tests at the rewrite layer: the acceptance criterion
// that analyzed row counts exactly match what the cursor observed,
// across the qgen equivalence grid, and goroutine hygiene when an
// analyzed parallel pipeline is closed early.
package rewrite_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/tuple"
)

// checkStatsSane asserts the per-node counter invariants that hold for
// any drained ObsIter: per-row pulls cost one Next call per yielded row,
// batch pulls cost one call per delivered batch (never more calls than
// rows+batches combined would explain), and every node is labeled.
func checkStatsSane(t *testing.T, st *engine.OpStats, q algebra.Query) {
	t.Helper()
	if st.Label == "" {
		t.Fatalf("unlabeled stats node (query %s)", q)
	}
	if st.Batches() > 0 {
		// Batch-amortized node: each pull call delivers a whole batch, so
		// nexts tracks batches (plus per-row pulls from mixed drivers and
		// the exhausting call), not rows. Exchange nodes count batches
		// from the producer side without an ObsIter pull counter, so only
		// nodes that saw pulls are held to it.
		if st.Nexts() > 0 && st.Nexts() < st.Batches() {
			t.Fatalf("node %s: nexts=%d < batches=%d (query %s)", st.Label, st.Nexts(), st.Batches(), q)
		}
	} else if st.Nexts() < st.Rows() {
		t.Fatalf("node %s: nexts=%d < rows=%d (query %s)", st.Label, st.Nexts(), st.Rows(), q)
	}
	for _, c := range st.Children() {
		checkStatsSane(t, c, q)
	}
}

// TestAnalyzeRowCountsMatchCursor pins the EXPLAIN ANALYZE acceptance
// criterion over the qgen grid (executor × sweep × parallelism ×
// sortedness): the root operator's measured row count must equal the
// number of rows the cursor actually pulled, exactly, for every
// configuration — the stats tree observes the same stream the client
// does.
func TestAnalyzeRowCountsMatchCursor(t *testing.T) {
	g := qgen.New(733)
	var opts []rewrite.Options
	for _, par := range []int{0, 2, 4} {
		for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
			opts = append(opts, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: par})
		}
	}
	for i := 0; i < 25; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		for _, sorted := range []bool{false, true} {
			s := spec
			if sorted {
				s = spec.SortedByBegin()
			}
			edb := s.ToEngineDB()
			for _, opt := range opts {
				opt.Collect = engine.NewCollector()
				it, err := rewrite.Stream(context.Background(), edb, q, opt)
				if err != nil {
					t.Fatalf("stream: %v (%s)", err, q)
				}
				var drained int64
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					drained++
				}
				if err := engine.IterErr(it); err != nil {
					t.Fatalf("stream error: %v (%s)", err, q)
				}
				it.Close()
				root := opt.Collect.RootOp()
				if root == nil {
					t.Fatalf("no stats collected (opt %+v, query %s)", opt, q)
				}
				if root.Rows() != drained {
					t.Fatalf("iteration %d, sorted %v, opt %+v: analyze root rows=%d, cursor observed %d\nquery: %s\n%s",
						i, sorted, opt, root.Rows(), drained, q, opt.Collect.Render())
				}
				checkStatsSane(t, root, q)
			}
		}
	}
}

// analyzeLeakDB builds a table large enough that a parallel pipeline is
// still in flight when the cursor closes early.
func analyzeLeakDB() *engine.DB {
	db := engine.NewDB(dom)
	tb := db.CreateTable("big", tuple.NewSchema("g", "v"))
	for i := 0; i < 20000; i++ {
		b := int64(i % 20)
		tb.Append(tuple.Tuple{tuple.Int(int64(i % 7)), tuple.Int(int64(i))}, interval.New(b, b+2), 1)
	}
	return db
}

// waitForGoroutines polls until the goroutine count drops back to at
// most base, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// Attaching a collector must not change pipeline teardown: closing an
// analyzed parallel query right after the first row (the early
// Rows.Close path) must reap every fragment and exchange goroutine, for
// both the hash-partitioned and the order-preserving exchanges.
func TestAnalyzeEarlyCloseReapsFragments(t *testing.T) {
	db := analyzeLeakDB()
	q := algebra.Agg{
		GroupBy: []string{"g"},
		Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:      algebra.Rel{Name: "big"},
	}
	base := runtime.NumGoroutine()
	for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
		col := engine.NewCollector()
		it, err := rewrite.Stream(context.Background(), db, q,
			rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: 4, Collect: col})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := it.Next(); !ok {
			t.Fatal("empty pipeline")
		}
		it.Close()
		it.Close() // idempotent
		if col.RootOp() == nil || col.RootOp().Rows() != 1 {
			t.Fatalf("sweep %v: analyzed row count after early close = %v, want 1", sw, col.RootOp().Rows())
		}
		waitForGoroutines(t, base)
	}
}
