package rewrite_test

// Tests for the phased planner: the windowed differential grid (every
// executor × sweep × parallelism × sortedness × pushdown configuration
// must equal the clip-at-root oracle), the pushdown plan shapes, the
// knobs-off identity, and the recorded physical decisions.

import (
	"reflect"
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
)

// TestWindowGridEquivalence is the windowed extension of the Theorem 8.1
// grid: for random databases/queries and several windows, running with
// Options.Window set must equal clipping the unwindowed logical result —
// τ_T applied at the root is the semantics; every pushdown/physical
// configuration must reproduce it exactly. The grid is
// executor × sweep × parallelism × sortedness × planner knobs.
func TestWindowGridEquivalence(t *testing.T) {
	g := qgen.New(509)
	// qgen's domain is [0, 16): a middle slice, the whole domain, a point
	// window and one reaching past the domain edge.
	windows := []interval.Interval{
		interval.New(3, 11),
		interval.New(0, 16),
		interval.New(5, 6),
		interval.New(12, 40),
	}
	var opts []rewrite.Options
	for _, par := range []int{0, 2, 4} {
		for _, knobs := range []rewrite.PlannerKnobs{{}, rewrite.AllKnobs()} {
			opts = append(opts, rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: par, Planner: knobs})
		}
	}
	opts = append(opts,
		rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepStreaming, Planner: rewrite.AllKnobs()},
		rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: rewrite.SweepBlocking, Planner: rewrite.AllKnobs()},
		rewrite.Options{Mode: rewrite.ModeOptimized, Materialize: true, Planner: rewrite.AllKnobs()},
		rewrite.Options{Mode: rewrite.ModeOptimized, Planner: rewrite.PlannerKnobs{Pushdown: true}},
		rewrite.Options{Mode: rewrite.ModeOptimized, Planner: rewrite.PlannerKnobs{Prune: true}, Parallelism: 2},
	)
	for i := 0; i < 30; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		pdb := spec.ToPeriodDB()
		wantRel, err := pdb.Eval(q)
		if err != nil {
			t.Fatalf("period eval: %v (%s)", err, q)
		}
		for _, T := range windows {
			// The oracle: encode the logical result and clip it at the root.
			want := engine.ClipWindow(engine.FromPeriodRelation(wantRel), T).ToPeriodRelation(pdb.Algebra())
			for _, sorted := range []bool{false, true} {
				s := spec
				if sorted {
					s = spec.SortedByBegin()
				}
				edb := s.ToEngineDB()
				for _, opt := range opts {
					opt.Window = T
					got, err := rewrite.Run(edb, q, opt)
					if err != nil {
						t.Fatalf("windowed run: %v (%s)", err, q)
					}
					if !got.ToPeriodRelation(pdb.Algebra()).Equal(want) {
						t.Fatalf("iteration %d, window %s, sorted %v, opt %+v: windowed result disagrees with clip-at-root oracle\nquery: %s\ngot:  %v\nwant: %v",
							i, T, sorted, opt, q, got.ToPeriodRelation(pdb.Algebra()), want)
					}
				}
			}
		}
	}
}

// planFor runs PlanQuery and returns the plan, failing the test on error.
func planFor(t *testing.T, db *engine.DB, q algebra.Query, opt rewrite.Options) (engine.Plan, *rewrite.Decisions) {
	t.Helper()
	p, dec, err := rewrite.PlanQuery(q, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p, dec
}

// countWindows walks a plan counting WindowP nodes.
func countWindows(p engine.Plan) int {
	switch n := p.(type) {
	case engine.WindowP:
		return 1 + countWindows(n.In)
	case engine.FilterP:
		return countWindows(n.In)
	case engine.ProjectP:
		return countWindows(n.In)
	case engine.SortP:
		return countWindows(n.In)
	case engine.CoalesceP:
		return countWindows(n.In)
	case engine.AggP:
		return countWindows(n.In)
	case engine.JoinP:
		return countWindows(n.L) + countWindows(n.R)
	case engine.UnionP:
		return countWindows(n.L) + countWindows(n.R)
	case engine.DiffP:
		return countWindows(n.L) + countWindows(n.R)
	default:
		return 0
	}
}

// TestWindowPushdownPlanShape pins where the pushdown phase places the
// window for each legality rule's happy path.
func TestWindowPushdownPlanShape(t *testing.T) {
	db := exampleDB()
	T := interval.New(4, 12)
	on := rewrite.Options{Mode: rewrite.ModeOptimized, Window: T, Planner: rewrite.PlannerKnobs{Pushdown: true}}
	off := rewrite.Options{Mode: rewrite.ModeOptimized, Window: T}

	// Without the knob, the window clips once at the root.
	p, _ := planFor(t, db, algebra.Rel{Name: "works"}, off)
	w, ok := p.(engine.WindowP)
	if !ok {
		t.Fatalf("knob off: plan root is %T, want WindowP: %s", p, p)
	}
	if w.T != T {
		t.Fatalf("root window is %s, want %s", w.T, T)
	}

	// With it, the window passes through the final coalesce to the scan.
	p, _ = planFor(t, db, algebra.Rel{Name: "works"}, on)
	co, ok := p.(engine.CoalesceP)
	if !ok {
		t.Fatalf("plan root is %T, want CoalesceP above the pushed window: %s", p, p)
	}
	if w, ok := co.In.(engine.WindowP); !ok {
		t.Fatalf("coalesce input is %T, want the pushed WindowP: %s", co.In, p)
	} else if _, ok := w.In.(engine.ScanP); !ok || w.T != T {
		t.Fatalf("window must land directly above the scan with T=%s: %s", T, p)
	}

	// Data-only filters let the window through (Qonduty's selection reads
	// only `skill`); the global aggregate keeps a window above AND pushes
	// a copy below — gap rows span the whole domain.
	p, _ = planFor(t, db, qOnduty(), on)
	if got := countWindows(p); got != 2 {
		t.Fatalf("global-agg plan has %d windows, want above+below = 2:\n%s", got, p)
	}
	co, ok = p.(engine.CoalesceP)
	if !ok {
		t.Fatalf("plan root is %T, want CoalesceP: %s", p, p)
	}
	above, ok := co.In.(engine.WindowP)
	if !ok {
		t.Fatalf("global aggregate lacks the window above it: %s", p)
	}
	agg, ok := above.In.(engine.AggP)
	if !ok || len(agg.GroupBy) != 0 {
		t.Fatalf("node under the upper window is %T, want the global AggP: %s", above.In, p)
	}

	// Joins clone the window into both children; with a difference of two
	// projections (Qskillreq) the window distributes to every scan.
	p, _ = planFor(t, db, qSkillreq(), on)
	if got := countWindows(p); got != 2 {
		t.Fatalf("diff-of-projections plan has %d windows, want one per scan = 2:\n%s", got, p)
	}
	join := algebra.Join{
		L:    algebra.Rel{Name: "works"},
		R:    algebra.Rel{Name: "assign"},
		Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
	}
	p, _ = planFor(t, db, join, on)
	if got := countWindows(p); got != 2 {
		t.Fatalf("join plan has %d windows, want one per child = 2:\n%s", got, p)
	}
}

// TestPlannerKnobsOffIdentity: with the zero PlannerKnobs and no window,
// PlanQuery must produce exactly the rule-only rewriter's plan — no
// window nodes, no build-side pins, no hints, no worker override.
func TestPlannerKnobsOffIdentity(t *testing.T) {
	db := exampleDB()
	join := algebra.Join{
		L:    algebra.Rel{Name: "works"},
		R:    algebra.Rel{Name: "assign"},
		Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
	}
	for _, q := range []algebra.Query{qOnduty(), qSkillreq(), join} {
		opt := rewrite.Options{Mode: rewrite.ModeOptimized, Parallelism: 4}
		base, err := rewrite.Rewrite(q, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		p, dec := planFor(t, db, q, opt)
		if !reflect.DeepEqual(p, base) {
			t.Fatalf("knobs-off plan differs from the rule-only rewrite:\n%s\nvs\n%s", p, base)
		}
		if countWindows(p) != 0 {
			t.Fatalf("no window requested but the plan has one:\n%s", p)
		}
		if dec.Workers != 0 || len(dec.Notes) != 0 {
			t.Fatalf("knobs-off planner recorded decisions: %+v", dec)
		}
	}
	// And the physical defaults really are the zero values.
	p, _ := planFor(t, db, join, rewrite.Options{Mode: rewrite.ModeOptimized})
	co := p.(engine.CoalesceP)
	jp := co.In.(engine.JoinP)
	if jp.Build != engine.BuildAuto || jp.BuildHint != 0 {
		t.Fatalf("knobs-off join carries physical annotations: %+v", jp)
	}
}

// TestPlannerDecisions pins the recorded physical choices on a windowed
// equi join: pruned scans, a pinned build side with a pre-sizing hint,
// and the adaptive worker narrowing — each with its explanatory note.
func TestPlannerDecisions(t *testing.T) {
	db := exampleDB()
	join := algebra.Join{
		L:    algebra.Rel{Name: "works"},
		R:    algebra.Rel{Name: "assign"},
		Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
	}
	opt := rewrite.Options{
		Mode:        rewrite.ModeOptimized,
		Window:      interval.New(4, 12),
		Planner:     rewrite.AllKnobs(),
		Parallelism: 4,
	}
	p, dec := planFor(t, db, join, opt)

	// assign (3 rows) is the smaller input: build=right, pre-sized.
	var jp engine.JoinP
	found := false
	var walk func(engine.Plan)
	walk = func(n engine.Plan) {
		switch v := n.(type) {
		case engine.CoalesceP:
			walk(v.In)
		case engine.WindowP:
			walk(v.In)
		case engine.JoinP:
			jp, found = v, true
		}
	}
	walk(p)
	if !found {
		t.Fatalf("no join in plan:\n%s", p)
	}
	if jp.Build != engine.BuildRightSide {
		t.Fatalf("build side = %d, want BuildRightSide (assign is smaller): %+v", jp.Build, jp)
	}
	if jp.BuildHint <= 0 {
		t.Fatalf("PreSize must set a positive build hint, got %d", jp.BuildHint)
	}

	// A handful of rows at Parallelism 4: the adaptive phase narrows to 1.
	if dec.Workers != 1 {
		t.Fatalf("adaptive workers = %d, want 1 for a tiny estimate", dec.Workers)
	}
	notes := strings.Join(dec.Notes, "\n")
	for _, want := range []string{"prune=works", "prune=assign", "build=right (est ", "presize=", "workers=1 (est "} {
		if !strings.Contains(notes, want) {
			t.Fatalf("decision notes lack %q:\n%s", want, notes)
		}
	}

	// The annotated plan still computes the right result.
	got, err := rewrite.Run(db, join, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := rewrite.Run(db, join, rewrite.Options{Mode: rewrite.ModeOptimized, Window: opt.Window})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualAsPeriodRelations(got, plain, alg) {
		t.Fatal("physical annotations changed the join result")
	}
}

// TestAdaptiveWorkersRespectsRequest: the adaptive phase only narrows —
// a large estimate keeps the requested width, and without the knob no
// override is recorded.
func TestAdaptiveWorkersRespectsRequest(t *testing.T) {
	db := exampleDB()
	q := algebra.Rel{Name: "works"}
	_, dec := planFor(t, db, q, rewrite.Options{
		Mode: rewrite.ModeOptimized, Parallelism: 4,
		Planner: rewrite.PlannerKnobs{AdaptiveWorkers: true},
	})
	if dec.Workers != 1 {
		t.Fatalf("4-row query at par 4 must narrow to 1 worker, got %d", dec.Workers)
	}
	_, dec = planFor(t, db, q, rewrite.Options{
		Mode: rewrite.ModeOptimized, Parallelism: 4,
		Planner: rewrite.PlannerKnobs{Pushdown: true},
	})
	if dec.Workers != 0 {
		t.Fatalf("without the knob no worker override may be recorded, got %d", dec.Workers)
	}
	// Sequential requests are never touched.
	_, dec = planFor(t, db, q, rewrite.Options{
		Mode:    rewrite.ModeOptimized,
		Planner: rewrite.AllKnobs(),
	})
	if dec.Workers != 0 {
		t.Fatalf("sequential run must not get a worker override, got %d", dec.Workers)
	}
}

// FuzzWindowPushdown is the pushdown legality fuzz: for a generated
// database/query and an arbitrary window, the pushed plan must equal the
// clip-at-root baseline row-for-row. The seed corpus covers each
// legality rule through qgen's operator mix plus edge-shaped windows.
func FuzzWindowPushdown(f *testing.F) {
	f.Add(int64(1), int64(3), int64(11))   // middle slice
	f.Add(int64(2), int64(0), int64(16))   // whole domain
	f.Add(int64(3), int64(5), int64(6))    // point window
	f.Add(int64(4), int64(-8), int64(2))   // straddles the left edge
	f.Add(int64(5), int64(12), int64(40))  // straddles the right edge
	f.Add(int64(6), int64(20), int64(30))  // fully outside the domain
	f.Add(int64(7), int64(9), int64(9))    // empty (invalid) window
	f.Add(int64(131), int64(7), int64(13)) // the Theorem 8.1 grid seed
	f.Fuzz(func(t *testing.T, seed, begin, end int64) {
		g := qgen.New(seed)
		spec := g.GenDB()
		q := g.GenQuery()
		edb := spec.ToEngineDB()
		T := interval.Interval{Begin: begin, End: end}
		base := rewrite.Options{Mode: rewrite.ModeOptimized, Window: T}
		pushed := base
		pushed.Planner = rewrite.PlannerKnobs{Pushdown: true}
		want, err := rewrite.Run(edb, q, base)
		if err != nil {
			t.Skip() // invalid generated query: nothing to compare
		}
		got, err := rewrite.Run(edb, q, pushed)
		if err != nil {
			t.Fatalf("pushdown run failed where baseline succeeded: %v (%s)", err, q)
		}
		a, b := want.Clone(), got.Clone()
		a.Sort()
		b.Sort()
		if a.Len() != b.Len() {
			t.Fatalf("pushdown changed the result size for %s under %s: %d vs %d", q, T, a.Len(), b.Len())
		}
		for i := range a.Rows {
			if a.Rows[i].Key() != b.Rows[i].Key() {
				t.Fatalf("pushdown changed row %d for %s under %s", i, q, T)
			}
		}
	})
}
