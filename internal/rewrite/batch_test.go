// Batch-vs-per-row differential over the qgen grid: the batch-at-a-time
// hop is a pure execution-strategy change, so driving the same plan
// through NextBatch (at several capacities, including the degenerate
// size 1) must produce exactly the per-row ablation's row multiset for
// every executor × sweep × parallelism × sortedness configuration.
package rewrite_test

import (
	"context"
	"sort"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
)

// drainKeys streams q under opt and returns the result rows as a sorted
// multiset of row strings. With batchSize > 0 the root is required to be
// batch-capable and is driven through NextBatch with that capacity;
// batchSize < 0 selects the per-row ablation and drives through Next.
func drainKeys(t *testing.T, db *engine.DB, q algebra.Query, opt rewrite.Options, batchSize int) []string {
	t.Helper()
	opt.BatchSize = batchSize
	it, err := rewrite.Stream(context.Background(), db, q, opt)
	if err != nil {
		t.Fatalf("stream: %v (%s)", err, q)
	}
	defer it.Close()
	var keys []string
	if batchSize > 0 {
		bi, ok := it.(engine.BatchIter)
		if !ok {
			t.Fatalf("BatchSize=%d root is not batch-capable (%T, opt %+v, query %s)", batchSize, it, opt, q)
		}
		b := engine.NewRowBatch(batchSize)
		for bi.NextBatch(b) {
			// No capacity assertion: exchange consumers may adopt a whole
			// transport batch, legally exceeding the requested capacity.
			for _, row := range b.Rows {
				keys = append(keys, row.String())
			}
		}
	} else {
		if _, ok := it.(engine.BatchIter); ok && batchSize < 0 {
			t.Fatalf("BatchSize=%d (per-row ablation) must hide batch capability, got %T (%s)", batchSize, it, q)
		}
		for {
			row, ok := it.Next()
			if !ok {
				break
			}
			keys = append(keys, row.String())
		}
	}
	if err := engine.IterErr(it); err != nil {
		t.Fatalf("stream error: %v (opt %+v, query %s)", err, opt, q)
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchPerRowDifferential runs every generated (database, query)
// pair over the physical grid, once per-row (BatchSize -1) and once per
// batch capacity {1, 7, 256}, and requires identical result multisets.
func TestBatchPerRowDifferential(t *testing.T) {
	g := qgen.New(911)
	var opts []rewrite.Options
	for _, par := range []int{0, 2, 4} {
		for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
			opts = append(opts, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: par})
		}
	}
	for i := 0; i < 15; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		for _, sorted := range []bool{false, true} {
			s := spec
			if sorted {
				s = spec.SortedByBegin()
			}
			edb := s.ToEngineDB()
			for _, opt := range opts {
				want := drainKeys(t, edb, q, opt, -1)
				for _, bs := range []int{1, 7, 256} {
					got := drainKeys(t, edb, q, opt, bs)
					if !sameKeys(want, got) {
						t.Fatalf("iteration %d, sorted %v, opt %+v, batch %d: batch drive diverges from per-row (%d vs %d rows)\nquery: %s",
							i, sorted, opt, bs, len(got), len(want), q)
					}
				}
			}
		}
	}
}
