package rewrite_test

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/period"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)
var alg = telement.NewMAlgebra[int64](semiring.N, dom)

func str(s string) tuple.Value { return tuple.String_(s) }

func exampleDB() *engine.DB {
	db := engine.NewDB(dom)
	works := db.CreateTable("works", tuple.NewSchema("name", "skill"))
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	works.Append(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	assign := db.CreateTable("assign", tuple.NewSchema("mach", "skill"))
	assign.Append(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	assign.Append(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	assign.Append(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return db
}

func qOnduty() algebra.Query {
	return algebra.Agg{
		Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:   algebra.Select{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: algebra.Rel{Name: "works"}},
	}
}

func qSkillreq() algebra.Query {
	return algebra.Diff{
		L: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill"),
	}
}

// TestExample81QondutyRewritten reproduces Example 8.1: the rewritten
// Qonduty over the period encoding produces exactly Figure 1b, including
// the gap rows.
func TestExample81QondutyRewritten(t *testing.T) {
	db := exampleDB()
	for _, mode := range []rewrite.Mode{rewrite.ModeOptimized, rewrite.ModeNaive} {
		got, err := rewrite.Run(db, qOnduty(), rewrite.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		want := engine.NewTable(tuple.NewSchema("cnt"))
		want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(0, 3), 1)
		want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(3, 8), 1)
		want.Append(tuple.Tuple{tuple.Int(2)}, interval.New(8, 10), 1)
		want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(10, 16), 1)
		want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(16, 18), 1)
		want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(18, 20), 1)
		want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(20, 24), 1)
		if !engine.EqualAsPeriodRelations(got, want, alg) {
			t.Fatalf("mode %d: Qonduty =\n%s\nwant\n%s", mode, got, want)
		}
		// The Figure 1b table is the unique coalesced encoding; check the
		// row set matches exactly, not just up to equivalence.
		if got.Len() != want.Len() {
			t.Fatalf("mode %d: %d rows, want %d", mode, got.Len(), want.Len())
		}
	}
}

// TestFigure1cSkillreqRewritten reproduces Figure 1c through REWR,
// demonstrating the absence of the BD bug.
func TestFigure1cSkillreqRewritten(t *testing.T) {
	db := exampleDB()
	got, err := rewrite.Run(db, qSkillreq(), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := engine.NewTable(tuple.NewSchema("skill"))
	want.Append(tuple.Tuple{str("SP")}, interval.New(6, 8), 1)
	want.Append(tuple.Tuple{str("SP")}, interval.New(10, 12), 1)
	want.Append(tuple.Tuple{str("NS")}, interval.New(3, 8), 1)
	if !engine.EqualAsPeriodRelations(got, want, alg) {
		t.Fatalf("Qskillreq =\n%s\nwant\n%s", got, want)
	}
}

// TestTheorem81CommutingDiagram is the implementation-layer half of the
// Figure 2 diagram: for random databases and queries, executing REWR(Q)
// over PERIODENC(R) and decoding equals evaluating Q in the logical model
// — in both plan modes, with both coalesce implementations.
func TestTheorem81CommutingDiagram(t *testing.T) {
	g := qgen.New(131)
	// The full physical grid: every executor (sequential streaming,
	// parallel ×2/×4, operator-at-a-time materializing) × every sweep
	// mode (auto, forced streaming behind the sort enforcer or the
	// order-preserving exchange, blocking ablation) must close the same
	// diagram — Sweep and Parallelism compose freely. The loop below
	// additionally runs each (database, query) pair over unsorted AND
	// begin-sorted stored tables, and each sweep × parallelism cell with
	// the cost-aware planner knobs off AND all on, so the grid is
	// executor × sweep × parallelism × sortedness × planner.
	var opts []rewrite.Options
	for _, par := range []int{0, 2, 4} {
		for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
			for _, knobs := range []rewrite.PlannerKnobs{{}, rewrite.AllKnobs()} {
				opts = append(opts, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: par, Planner: knobs})
			}
		}
	}
	opts = append(opts,
		rewrite.Options{Mode: rewrite.ModeOptimized, CoalesceImpl: engine.CoalesceAnalytic},
		rewrite.Options{Mode: rewrite.ModeOptimized, Materialize: true},
		rewrite.Options{Mode: rewrite.ModeNaive, CoalesceImpl: engine.CoalesceNative},
		rewrite.Options{Mode: rewrite.ModeNaive, Sweep: rewrite.SweepStreaming},
		rewrite.Options{Mode: rewrite.ModeNaive, Sweep: rewrite.SweepStreaming, Parallelism: 4},
	)
	for i := 0; i < 100; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		pdb := spec.ToPeriodDB()
		wantRel, err := pdb.Eval(q)
		if err != nil {
			t.Fatalf("period eval: %v (%s)", err, q)
		}
		for _, sorted := range []bool{false, true} {
			s := spec
			if sorted {
				s = spec.SortedByBegin()
			}
			edb := s.ToEngineDB()
			for _, opt := range opts {
				got, err := rewrite.Run(edb, q, opt)
				if err != nil {
					t.Fatalf("rewrite run: %v (%s)", err, q)
				}
				gotRel := got.ToPeriodRelation(pdb.Algebra())
				if !gotRel.Equal(wantRel) {
					t.Fatalf("iteration %d, sorted %v, opt %+v: implementation disagrees with logical model\nquery: %s\ngot:  %v\nwant: %v",
						i, sorted, opt, q, gotRel, wantRel)
				}
			}
		}
	}
}

// TestDiffGridEquivalence is the difference-focused half of the
// equivalence grid: every generated query has a difference at the root,
// so each iteration exercises the DiffP physical forms — blocking,
// streaming behind sort enforcers, auto-streaming over begin-sorted
// stored tables, and the parallel pairwise-partitioned variants — over
// executor × sweep × parallelism × sortedness, against the logical
// model.
func TestDiffGridEquivalence(t *testing.T) {
	g := qgen.New(421)
	var opts []rewrite.Options
	for _, par := range []int{0, 2, 4} {
		for _, sw := range []rewrite.SweepMode{rewrite.SweepAuto, rewrite.SweepStreaming, rewrite.SweepBlocking} {
			for _, knobs := range []rewrite.PlannerKnobs{{}, rewrite.AllKnobs()} {
				opts = append(opts, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, Parallelism: par, Planner: knobs})
			}
		}
	}
	opts = append(opts,
		rewrite.Options{Mode: rewrite.ModeOptimized, Materialize: true},
		rewrite.Options{Mode: rewrite.ModeNaive, Sweep: rewrite.SweepStreaming},
		rewrite.Options{Mode: rewrite.ModeNaive, Sweep: rewrite.SweepStreaming, Parallelism: 4},
	)
	for i := 0; i < 60; i++ {
		spec := g.GenDB()
		q := g.GenDiffQuery()
		pdb := spec.ToPeriodDB()
		wantRel, err := pdb.Eval(q)
		if err != nil {
			t.Fatalf("period eval: %v (%s)", err, q)
		}
		for _, sorted := range []bool{false, true} {
			s := spec
			if sorted {
				s = spec.SortedByBegin()
			}
			edb := s.ToEngineDB()
			for _, opt := range opts {
				got, err := rewrite.Run(edb, q, opt)
				if err != nil {
					t.Fatalf("rewrite run: %v (%s)", err, q)
				}
				gotRel := got.ToPeriodRelation(pdb.Algebra())
				if !gotRel.Equal(wantRel) {
					t.Fatalf("iteration %d, sorted %v, opt %+v: difference disagrees with logical model\nquery: %s\ngot:  %v\nwant: %v",
						i, sorted, opt, q, gotRel, wantRel)
				}
			}
		}
	}
}

// TestDiffSweepPlanning pins the planner's physical choice for the
// difference: SweepStreaming forces the streaming merge sweep with a
// sort enforcer on each unordered child; SweepAuto streams exactly when
// BOTH children carry the order for free; SweepBlocking never streams.
func TestDiffSweepPlanning(t *testing.T) {
	db := engine.NewDB(dom)
	sortedT := db.CreateTable("st", tuple.NewSchema("a"))
	sortedT.Append(tuple.Tuple{tuple.Int(1)}, interval.New(1, 5), 1)
	sortedT.Append(tuple.Tuple{tuple.Int(2)}, interval.New(3, 9), 1)
	unsortedT := db.CreateTable("ut", tuple.NewSchema("a"))
	unsortedT.Append(tuple.Tuple{tuple.Int(1)}, interval.New(6, 8), 1)
	unsortedT.Append(tuple.Tuple{tuple.Int(2)}, interval.New(2, 4), 1)
	if !db.ScanBeginSorted("st") || db.ScanBeginSorted("ut") {
		t.Fatal("fixture sortedness is wrong")
	}
	q := func(l, r string) algebra.Query {
		return algebra.Diff{L: algebra.Rel{Name: l}, R: algebra.Rel{Name: r}}
	}
	diffOf := func(sw rewrite.SweepMode, l, r string) engine.DiffP {
		t.Helper()
		p, err := rewrite.Rewrite(q(l, r), db, rewrite.Options{Mode: rewrite.ModeOptimized, Sweep: sw, SkipFinalCoalesce: true})
		if err != nil {
			t.Fatal(err)
		}
		dp, ok := p.(engine.DiffP)
		if !ok {
			t.Fatalf("plan root is %T, want DiffP: %s", p, p)
		}
		return dp
	}

	// Forced streaming over unsorted children: enforcers on BOTH inputs.
	dp := diffOf(rewrite.SweepStreaming, "ut", "ut")
	if !dp.Streaming {
		t.Fatalf("SweepStreaming must set DiffP.Streaming: %s", dp)
	}
	if _, ok := dp.L.(engine.SortP); !ok {
		t.Fatalf("left child of forced streaming diff lacks the sort enforcer: %s", dp)
	}
	if _, ok := dp.R.(engine.SortP); !ok {
		t.Fatalf("right child of forced streaming diff lacks the sort enforcer: %s", dp)
	}
	// Forced streaming over sorted children: no enforcer needed.
	dp = diffOf(rewrite.SweepStreaming, "st", "st")
	if !dp.Streaming {
		t.Fatalf("SweepStreaming must set DiffP.Streaming: %s", dp)
	}
	if _, ok := dp.L.(engine.ScanP); !ok {
		t.Fatalf("sorted child must not be wrapped in an enforcer: %s", dp)
	}
	// Auto: streams only when both children are ordered.
	if dp = diffOf(rewrite.SweepAuto, "st", "st"); !dp.Streaming {
		t.Fatalf("SweepAuto over two sorted scans must stream: %s", dp)
	}
	for _, pair := range [][2]string{{"st", "ut"}, {"ut", "st"}, {"ut", "ut"}} {
		if dp = diffOf(rewrite.SweepAuto, pair[0], pair[1]); dp.Streaming {
			t.Fatalf("SweepAuto with unsorted child %v must not stream: %s", pair, dp)
		}
	}
	// Blocking ablation: never streams, never sorts.
	dp = diffOf(rewrite.SweepBlocking, "st", "st")
	if dp.Streaming {
		t.Fatalf("SweepBlocking must not stream: %s", dp)
	}
}

// TestUniqueEncodingOfResults: in optimized mode the final coalesce makes
// the result the unique encoding — the exact PERIODENC image of the
// logical result.
func TestUniqueEncodingOfResults(t *testing.T) {
	g := qgen.New(7)
	for i := 0; i < 50; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		edb := spec.ToEngineDB()
		got, err := rewrite.Run(edb, q, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !engine.IsCoalesced(got, engine.CoalesceNative) {
			t.Fatalf("result of %s is not coalesced:\n%s", q, got)
		}
		// Canonical: identical to PERIODENC of the decoded relation.
		pdb := spec.ToPeriodDB()
		canon := engine.FromPeriodRelation(got.ToPeriodRelation(pdb.Algebra()))
		a, b := got.Clone(), canon
		a.Sort()
		b.Sort()
		if a.Len() != b.Len() {
			t.Fatalf("result row multiset differs from canonical encoding for %s", q)
		}
		for j := range a.Rows {
			if a.Rows[j].Key() != b.Rows[j].Key() {
				t.Fatalf("result row %d differs from canonical encoding for %s", j, q)
			}
		}
	}
}

// TestCoalescePlacement checks the §9 optimization structurally: the
// optimized plan contains exactly one coalesce, the naive plan one per
// rewritten operator.
func TestCoalescePlacement(t *testing.T) {
	db := exampleDB()
	q := qOnduty()
	opt, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.CountCoalesce(opt); got != 1 {
		t.Fatalf("optimized plan has %d coalesce operators, want 1:\n%s", got, opt)
	}
	naive, err := rewrite.Rewrite(q, db, rewrite.Options{Mode: rewrite.ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	// Qonduty = Agg(Select(Rel)): two rewritten operators ⇒ two coalesces.
	if got := engine.CountCoalesce(naive); got != 2 {
		t.Fatalf("naive plan has %d coalesce operators, want 2:\n%s", got, naive)
	}
	skip, err := rewrite.Rewrite(q, db, rewrite.Options{SkipFinalCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.CountCoalesce(skip); got != 0 {
		t.Fatalf("skip-final plan has %d coalesce operators, want 0", got)
	}
}

func TestRewriteErrors(t *testing.T) {
	db := exampleDB()
	if _, err := rewrite.Rewrite(algebra.Rel{Name: "nope"}, db, rewrite.Options{}); err == nil {
		t.Fatal("unknown relation must error")
	}
	bad := algebra.Select{Pred: algebra.Col("zzz"), In: algebra.Rel{Name: "works"}}
	if _, err := rewrite.Rewrite(bad, db, rewrite.Options{}); err == nil {
		t.Fatal("bad predicate must error")
	}
	if _, err := rewrite.Run(db, bad, rewrite.Options{}); err == nil {
		t.Fatal("Run must propagate errors")
	}
}

func TestOutSchema(t *testing.T) {
	db := exampleDB()
	s, err := rewrite.OutSchema(db, qOnduty())
	if err != nil || !s.Equal(tuple.NewSchema("cnt")) {
		t.Fatalf("OutSchema = %v, %v", s, err)
	}
}

// TestMixedQueryAllOperators runs one query exercising every operator
// through the middleware and cross-checks against the logical model.
func TestMixedQueryAllOperators(t *testing.T) {
	db := exampleDB()
	// Number of machines per skill that lack a worker of that skill.
	q := algebra.Agg{
		GroupBy: []string{"skill"},
		Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "missing"}},
		In:      qSkillreq(),
	}
	got, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pdb := period.NewDB[int64](semiring.N, dom)
	loadPeriod(pdb, db, "works")
	loadPeriod(pdb, db, "assign")
	wantRel, err := pdb.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToPeriodRelation(alg).Equal(wantRel) {
		t.Fatalf("mixed query mismatch:\n%v\nwant %v", got.ToPeriodRelation(alg), wantRel)
	}
}

func loadPeriod(pdb *period.DB[int64], edb *engine.DB, name string) {
	t, err := edb.Table(name)
	if err != nil {
		panic(err)
	}
	pdb.AddRelation(name, t.ToPeriodRelation(pdb.Algebra()))
}

// TestPushdownEquivalence: the selection-pushdown optimizer must preserve
// results exactly — same unique encoding — on random databases/queries.
func TestPushdownEquivalence(t *testing.T) {
	g := qgen.New(977)
	for i := 0; i < 80; i++ {
		spec := g.GenDB()
		q := g.GenQuery()
		edb := spec.ToEngineDB()
		plain, err := rewrite.Run(edb, q, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pushed, err := rewrite.Run(edb, q, rewrite.Options{Pushdown: true})
		if err != nil {
			t.Fatalf("pushdown run: %v (%s)", err, q)
		}
		a, b := plain.Clone(), pushed.Clone()
		a.Sort()
		b.Sort()
		if a.Len() != b.Len() {
			t.Fatalf("iteration %d: pushdown changed result size for %s: %d vs %d", i, q, a.Len(), b.Len())
		}
		for j := range a.Rows {
			if a.Rows[j].Key() != b.Rows[j].Key() {
				t.Fatalf("iteration %d: pushdown changed result rows for %s", i, q)
			}
		}
	}
}

// TestPushdownConstantFalseOverGlobalAgg: the soundness guard — a FALSE
// selection above a global aggregation must NOT be pushed below it.
func TestPushdownConstantFalseOverGlobalAgg(t *testing.T) {
	db := exampleDB()
	q := algebra.Select{
		Pred: algebra.BoolC(false),
		In: algebra.Agg{
			Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
			In:   algebra.Rel{Name: "works"},
		},
	}
	plain, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := rewrite.Run(db, q, rewrite.Options{Pushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 0 || pushed.Len() != 0 {
		t.Fatalf("FALSE selection must empty the result: plain %d, pushed %d", plain.Len(), pushed.Len())
	}
}

// TestPushdownReducesIntermediates: on a selective join query the
// optimizer pushes the filter below the join.
func TestPushdownReducesIntermediates(t *testing.T) {
	db := exampleDB()
	q := algebra.Select{
		Pred: algebra.Eq(algebra.Col("name"), algebra.StrC("Ann")),
		In: algebra.Join{
			L:    algebra.Rel{Name: "works"},
			R:    algebra.Rel{Name: "assign"},
			Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
		},
	}
	opt, err := algebra.Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if algebra.CountSelectsBelowJoins(opt) != 1 {
		t.Fatalf("selection not pushed: %s", opt)
	}
	plain, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := rewrite.Run(db, q, rewrite.Options{Pushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.EqualAsPeriodRelations(plain, pushed, alg) {
		t.Fatal("pushdown changed semantics")
	}
}
