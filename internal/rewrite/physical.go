package rewrite

import (
	"snapk/internal/engine"
)

// This file is the planner's physical pass: the stats-driven choices
// made after the plan shape is fixed. It runs only when at least one
// PlannerKnobs flag is set and the catalog is an engine database (the
// statistics live on stored tables), so the knobs-off plan is
// byte-identical to the rule-only rewriter's output.
//
// Decisions made here:
//
//   - Hash-join build side: pinned from the cardinality estimates (the
//     smaller input builds). The join tree's shape — and with it the
//     output column order — is fixed by the query, so join ordering
//     manifests as build/probe orientation rather than tree rotation.
//   - Hash-table pre-sizing (PreSize): the build-side estimate becomes
//     the map's initial capacity.
//   - Zone-map pruning (Prune): windows sitting directly over a stored
//     scan are marked prunable, letting the executors skip or cut the
//     scan by the table's endpoint envelope.
//
// Worker-count adaptation (AdaptiveWorkers) is decided here too but
// recorded on Decisions — it configures the executor, not the plan.

// estResultRowsPerWorker is the estimated-cardinality step at which the
// adaptive phase grants one more worker: below it a query's rows don't
// amortize worker startup and exchange fan-in.
const estResultRowsPerWorker = 25000

// applyPhysical walks the plan bottom-up, pinning the stats-driven
// physical choices and recording each into dec.
func (rw *rewriter) applyPhysical(p engine.Plan, dec *Decisions) engine.Plan {
	switch n := p.(type) {
	case engine.ScanP:
		return n
	case engine.FilterP:
		n.In = rw.applyPhysical(n.In, dec)
		return n
	case engine.ProjectP:
		n.In = rw.applyPhysical(n.In, dec)
		return n
	case engine.JoinP:
		n.L = rw.applyPhysical(n.L, dec)
		n.R = rw.applyPhysical(n.R, dec)
		rw.planJoin(&n, dec)
		return n
	case engine.UnionP:
		n.L = rw.applyPhysical(n.L, dec)
		n.R = rw.applyPhysical(n.R, dec)
		return n
	case engine.DiffP:
		n.L = rw.applyPhysical(n.L, dec)
		n.R = rw.applyPhysical(n.R, dec)
		return n
	case engine.AggP:
		n.In = rw.applyPhysical(n.In, dec)
		return n
	case engine.CoalesceP:
		n.In = rw.applyPhysical(n.In, dec)
		return n
	case engine.SortP:
		n.In = rw.applyPhysical(n.In, dec)
		return n
	case engine.WindowP:
		n.In = rw.applyPhysical(n.In, dec)
		if scan, ok := n.In.(engine.ScanP); ok && rw.opt.Planner.Prune {
			n.Prune = true
			dec.note("prune=%s (zone-map, window %s)", scan.Name, n.T)
		}
		return n
	default:
		return p
	}
}

// planJoin pins the hash-join build side (and, under PreSize, the build
// table's capacity hint) from the cardinality estimates. Joins without
// an equality conjunct run as the overlap sweep and take no physical
// annotations; unknown estimates leave the executor's own fallback
// (BuildAuto) in place.
func (rw *rewriter) planJoin(n *engine.JoinP, dec *Decisions) {
	if !rw.joinHasEquiKey(*n) {
		return
	}
	lEst, rEst := rw.db.EstimateRows(n.L), rw.db.EstimateRows(n.R)
	if lEst < 0 || rEst < 0 {
		return
	}
	var buildEst int64
	if lEst < rEst {
		n.Build = engine.BuildLeftSide
		buildEst = lEst
		dec.note("build=left (est %d < %d)", lEst, rEst)
	} else {
		n.Build = engine.BuildRightSide
		buildEst = rEst
		dec.note("build=right (est %d ≤ %d)", rEst, lEst)
	}
	if rw.opt.Planner.PreSize && buildEst > 0 {
		n.BuildHint = buildEst
		dec.note("presize=%d (build-side est)", buildEst)
	}
}

// joinHasEquiKey mirrors the executors' strategy probe: whether the
// join predicate has an equality conjunct usable as a hash key. Schema
// errors report false — the physical pass never fails on a plan the
// executor would reject with a better error.
func (rw *rewriter) joinHasEquiKey(n engine.JoinP) bool {
	lData, lErr := rw.db.PlanDataSchema(n.L)
	rData, rErr := rw.db.PlanDataSchema(n.R)
	if lErr != nil || rErr != nil {
		return false
	}
	prep, err := engine.PrepareJoin(lData, rData, n.Pred)
	return err == nil && prep.HasEquiKey()
}

// adaptiveWorkers narrows the requested parallelism when the estimated
// result cardinality doesn't justify it: one worker per
// estResultRowsPerWorker estimated rows, never more than requested. An
// unknown estimate keeps the requested width.
func (rw *rewriter) adaptiveWorkers(p engine.Plan, dec *Decisions) {
	if !rw.opt.Planner.AdaptiveWorkers || rw.opt.Parallelism <= 1 {
		return
	}
	est := rw.db.EstimateRows(p)
	if est < 0 {
		return
	}
	w := int(est/estResultRowsPerWorker) + 1
	if w < rw.opt.Parallelism {
		dec.Workers = w
		dec.note("workers=%d (est %d rows)", w, est)
	}
}
