package rewrite

import (
	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
)

// This file is the planner's pushdown phase for the time window τ_T
// (engine.WindowP): starting from the plan root, the window is moved
// below every REWR operator the temporal algebra allows, so clipping
// happens at (or near) the scans and every operator above processes
// only the rows that can contribute to the windowed result.
//
// # Legality conditions, per rule
//
// τ_T clips each row's validity interval to T and drops rows not
// overlapping T. The rules below state when τ_T commutes with an
// operator; each is exercised by the planner tests and the pushdown
// fuzz corpus (differential check against the clip-at-root oracle).
//
//   - Scan: terminal — the window lands directly above the scan, where
//     the Prune knob can apply the zone-map check.
//   - Filter: τ_T ∘ σ_p = σ_p ∘ τ_T iff p reads no period attribute
//     (_begin/_end): clipping changes only the period attributes, and
//     dropped rows fail the overlap test on both sides. A predicate
//     reading a period attribute would see pre-clip values, so the
//     window stays above it (the blocking conjunct is recorded in the
//     decisions). Unknown expression forms conservatively block.
//   - Project: same condition on the projection expressions; the
//     Π_{A, Abegin, Aend} pattern carries periods through unchanged, so
//     data-only expressions commute with clipping.
//   - Join: τ_T(L ⋈ R) = τ_T(L) ⋈ τ_T(R). The temporal join emits the
//     intersection a∩b of the matched intervals, and interval
//     intersection is associative/commutative: (a∩b)∩T = (a∩T)∩(b∩T),
//     with the pair surviving on one side iff it survives on the other.
//     The window is CLONED into both children.
//   - Union: τ_T distributes over UNION ALL trivially (per-row).
//   - Diff: τ_T(L − R) ≡ τ_T(L) − τ_T(R). At every snapshot t ∈ T the
//     ℕ-monus is computed from the same row multiplicities (clipping
//     never changes which rows are live at t ∈ T), and snapshots
//     outside T are dropped on both sides. The two sides may produce
//     different period encodings of that same temporal relation — the
//     difference splits intervals at its inputs' endpoints — which is
//     why REWR's final coalesce (or the snapshot-equivalence contract
//     of SkipFinalCoalesce) is what the rule relies on.
//   - Agg, grouped: like Diff — group membership at each t ∈ T is
//     unchanged by clipping, so the window pushes through plainly.
//   - Agg, global (empty GROUP BY): the aggregate emits rows over the
//     WHOLE time domain, including zero-count gap rows where no input
//     is live. Pushing only below would therefore grow the output
//     (gap rows across the domain instead of clipped to T). The legal
//     form keeps a window ABOVE and pushes a copy below:
//     τ_T(Agg(In)) = τ_T(Agg(τ_T(In))).
//   - Coalesce: exact commute on encodings. Coalesced segments of one
//     data tuple are disjoint and non-adjacent; intersecting each with
//     T only shrinks or drops them, so the clipped output is again the
//     unique coalesced encoding — of the clipped relation.
//   - Sort: pushes below; clipping maps begin to max(begin, T.Begin),
//     which is monotone, so it preserves (and never establishes) the
//     endpoint order while shrinking the enforcer's input. Streaming
//     flags chosen by the logical rewrite stay valid for the same
//     reason.
//   - Window: two windows merge by interval intersection; an empty
//     intersection leaves a zero-interval window (clips everything).

// periodCol reports whether name is one of the period attributes.
func periodCol(name string) bool {
	return name == engine.BeginCol || name == engine.EndCol
}

// dataOnly reports whether e references no period attribute — the
// Filter/Project legality condition. Unknown expression forms report
// false (conservative: an expression the analysis cannot see through
// must block the push).
func dataOnly(e algebra.Expr) bool {
	return algebra.ColsSatisfy(e, func(c string) bool { return !periodCol(c) })
}

// blockingConjunct returns the first conjunct of e that prevents the
// window push — for the decision notes.
func blockingConjunct(e algebra.Expr) algebra.Expr {
	for _, c := range algebra.Conjuncts(e) {
		if !dataOnly(c) {
			return c
		}
	}
	return e
}

// pushWindow moves τ_T from above p as far toward the scans as the
// legality rules above allow, returning the rewritten plan.
func (rw *rewriter) pushWindow(p engine.Plan, T interval.Interval, dec *Decisions) engine.Plan {
	switch n := p.(type) {
	case engine.ScanP:
		return engine.WindowP{T: T, In: n}
	case engine.FilterP:
		if !dataOnly(n.Pred) {
			dec.note("window stays above filter: conjunct %s reads period attributes", blockingConjunct(n.Pred))
			return engine.WindowP{T: T, In: n}
		}
		n.In = rw.pushWindow(n.In, T, dec)
		return n
	case engine.ProjectP:
		for _, ne := range n.Exprs {
			if !dataOnly(ne.E) {
				dec.note("window stays above project: expression %s reads period attributes", ne.E)
				return engine.WindowP{T: T, In: n}
			}
		}
		n.In = rw.pushWindow(n.In, T, dec)
		return n
	case engine.JoinP:
		n.L = rw.pushWindow(n.L, T, dec)
		n.R = rw.pushWindow(n.R, T, dec)
		return n
	case engine.UnionP:
		n.L = rw.pushWindow(n.L, T, dec)
		n.R = rw.pushWindow(n.R, T, dec)
		return n
	case engine.DiffP:
		n.L = rw.pushWindow(n.L, T, dec)
		n.R = rw.pushWindow(n.R, T, dec)
		return n
	case engine.AggP:
		if len(n.GroupBy) == 0 {
			// Global aggregate: keep a window above (the gap rows span the
			// whole domain) and push a copy below.
			n.In = rw.pushWindow(n.In, T, dec)
			return engine.WindowP{T: T, In: n}
		}
		n.In = rw.pushWindow(n.In, T, dec)
		return n
	case engine.CoalesceP:
		n.In = rw.pushWindow(n.In, T, dec)
		return n
	case engine.SortP:
		n.In = rw.pushWindow(n.In, T, dec)
		return n
	case engine.WindowP:
		merged, ok := n.T.Intersect(T)
		if !ok {
			// Disjoint windows: nothing survives. The zero interval is the
			// clip-everything window.
			return engine.WindowP{In: n.In}
		}
		return rw.pushWindow(n.In, merged, dec)
	default:
		// Unknown node: conservative — clip above it.
		return engine.WindowP{T: T, In: p}
	}
}
