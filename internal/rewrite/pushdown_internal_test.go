package rewrite

// Internal tests for the pushdown phase's BLOCKING paths: predicates and
// projections that read the period attributes cannot legally commute
// with the clip, so the window must stay above them. These plans cannot
// be produced from the public algebra surface (queries address only data
// columns), so the test builds the engine plans directly.

import (
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
)

func pushdownFixture() (*rewriter, *engine.DB) {
	db := engine.NewDB(interval.NewDomain(0, 100))
	rw := newRewriter(db, Options{Mode: ModeOptimized, Planner: PlannerKnobs{Pushdown: true}})
	return rw, db
}

func TestPushWindowBlockedByPeriodFilter(t *testing.T) {
	rw, _ := pushdownFixture()
	T := interval.New(10, 20)
	// A predicate over _begin sees pre-clip values: the window must stay
	// above the filter, with the blocking conjunct recorded.
	p := engine.FilterP{
		Pred: algebra.And(
			algebra.Eq(algebra.Col("k"), algebra.IntC(1)),
			algebra.Lt(algebra.Col(engine.BeginCol), algebra.IntC(15)),
		),
		In: engine.ScanP{Name: "t"},
	}
	dec := &Decisions{}
	got := rw.pushWindow(p, T, dec)
	w, ok := got.(engine.WindowP)
	if !ok {
		t.Fatalf("window must stay above the period filter, got %T: %s", got, got)
	}
	if _, ok := w.In.(engine.FilterP); !ok || w.T != T {
		t.Fatalf("blocked push must leave Window[T](Filter(...)), got %s", got)
	}
	notes := strings.Join(dec.Notes, "\n")
	if !strings.Contains(notes, "window stays above filter") || !strings.Contains(notes, engine.BeginCol) {
		t.Fatalf("blocking note must name the offending conjunct:\n%s", notes)
	}
	// The same filter over data columns only lets the window through.
	dataP := engine.FilterP{
		Pred: algebra.Eq(algebra.Col("k"), algebra.IntC(1)),
		In:   engine.ScanP{Name: "t"},
	}
	got = rw.pushWindow(dataP, T, &Decisions{})
	f, ok := got.(engine.FilterP)
	if !ok {
		t.Fatalf("data-only filter must stay on top, got %T", got)
	}
	if _, ok := f.In.(engine.WindowP); !ok {
		t.Fatalf("window must pass through the data-only filter: %s", got)
	}
}

func TestPushWindowBlockedByPeriodProjection(t *testing.T) {
	rw, _ := pushdownFixture()
	T := interval.New(10, 20)
	// A projection computing from _end would see pre-clip endpoints.
	p := engine.ProjectP{
		Exprs: []algebra.NamedExpr{
			{Name: "dur", E: algebra.Sub(algebra.Col(engine.EndCol), algebra.Col(engine.BeginCol))},
		},
		In: engine.ScanP{Name: "t"},
	}
	dec := &Decisions{}
	got := rw.pushWindow(p, T, dec)
	if _, ok := got.(engine.WindowP); !ok {
		t.Fatalf("window must stay above the period projection, got %T: %s", got, got)
	}
	if notes := strings.Join(dec.Notes, "\n"); !strings.Contains(notes, "window stays above project") {
		t.Fatalf("blocking note missing:\n%s", notes)
	}
}

// Nested windows merge by interval intersection; disjoint windows leave
// the clip-everything zero window.
func TestPushWindowMerge(t *testing.T) {
	rw, _ := pushdownFixture()
	inner := engine.WindowP{T: interval.New(5, 15), In: engine.ScanP{Name: "t"}}

	got := rw.pushWindow(inner, interval.New(10, 30), &Decisions{})
	w, ok := got.(engine.WindowP)
	if !ok || w.T != interval.New(10, 15) {
		t.Fatalf("overlapping windows must merge to the intersection [10, 15): %s", got)
	}
	got = rw.pushWindow(inner, interval.New(20, 30), &Decisions{})
	w, ok = got.(engine.WindowP)
	if !ok || w.T.Valid() {
		t.Fatalf("disjoint windows must leave the zero (clip-everything) window: %s", got)
	}
}
