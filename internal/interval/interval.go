// Package interval provides the time domain and half-open time intervals
// used throughout the library.
//
// Time points are int64 values drawn from a finite, totally ordered domain
// 𝕋 = [Min, Max). An interval I = [Begin, End) with Begin < End represents
// the contiguous set of time points {T | Begin <= T < End}. This mirrors
// Section 5.1 of "Snapshot Semantics for Temporal Multiset Relations"
// (Dignös et al., PVLDB 2019).
package interval

import (
	"fmt"
	"sort"
)

// Time is a point in the time domain.
type Time = int64

// Domain is a finite, totally ordered time domain [Min, Max).
// Min is the smallest time point (Tmin); Max is the exclusive maximum
// (Tmax); every interval handled under this domain must be contained in
// [Min, Max).
type Domain struct {
	Min Time
	Max Time
}

// NewDomain returns the domain [min, max). It panics if min >= max, since
// an empty time domain admits no temporal database at all.
func NewDomain(min, max Time) Domain {
	if min >= max {
		panic(fmt.Sprintf("interval: invalid domain [%d, %d)", min, max))
	}
	return Domain{Min: min, Max: max}
}

// Contains reports whether t lies in the domain.
func (d Domain) Contains(t Time) bool { return d.Min <= t && t < d.Max }

// ContainsInterval reports whether iv is fully contained in the domain.
func (d Domain) ContainsInterval(iv Interval) bool {
	return d.Min <= iv.Begin && iv.End <= d.Max
}

// All returns the interval covering the whole domain.
func (d Domain) All() Interval { return Interval{Begin: d.Min, End: d.Max} }

// Size returns the number of time points in the domain.
func (d Domain) Size() int64 { return d.Max - d.Min }

// String renders the domain as [Min, Max).
func (d Domain) String() string { return fmt.Sprintf("[%d, %d)", d.Min, d.Max) }

// Interval is a half-open interval [Begin, End) of time points.
// The zero value is the empty (invalid) interval.
type Interval struct {
	Begin Time
	End   Time
}

// New returns the interval [begin, end). It panics if begin >= end;
// callers that may construct empty intervals should use TryNew.
func New(begin, end Time) Interval {
	if begin >= end {
		panic(fmt.Sprintf("interval: invalid interval [%d, %d)", begin, end))
	}
	return Interval{Begin: begin, End: end}
}

// TryNew returns the interval [begin, end) and true, or the zero Interval
// and false if begin >= end.
func TryNew(begin, end Time) (Interval, bool) {
	if begin >= end {
		return Interval{}, false
	}
	return Interval{Begin: begin, End: end}, true
}

// Point returns the singleton interval [t, t+1).
func Point(t Time) Interval { return Interval{Begin: t, End: t + 1} }

// Valid reports whether the interval is non-empty (Begin < End).
func (iv Interval) Valid() bool { return iv.Begin < iv.End }

// Len returns the number of time points covered by the interval.
func (iv Interval) Len() int64 {
	if !iv.Valid() {
		return 0
	}
	return iv.End - iv.Begin
}

// Contains reports whether time point t lies in the interval.
func (iv Interval) Contains(t Time) bool { return iv.Begin <= t && t < iv.End }

// ContainsInterval reports whether other ⊆ iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Begin <= other.Begin && other.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one time point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Begin < other.End && other.Begin < iv.End
}

// Adjacent reports whether the two intervals touch without overlapping,
// i.e. one ends exactly where the other begins (relation adj of §5.1).
func (iv Interval) Adjacent(other Interval) bool {
	return iv.End == other.Begin || other.End == iv.Begin
}

// Intersect returns the interval covering exactly the time points common
// to both inputs, and false if they do not overlap.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	b := max(iv.Begin, other.Begin)
	e := min(iv.End, other.End)
	if b >= e {
		return Interval{}, false
	}
	return Interval{Begin: b, End: e}, true
}

// Union returns the interval covering the union of the two inputs. Per the
// paper's convention, the union is defined only if the inputs overlap or
// are adjacent; otherwise Union returns false.
func (iv Interval) Union(other Interval) (Interval, bool) {
	if !iv.Overlaps(other) && !iv.Adjacent(other) {
		return Interval{}, false
	}
	return Interval{Begin: min(iv.Begin, other.Begin), End: max(iv.End, other.End)}, true
}

// String renders the interval as [Begin, End).
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d)", iv.Begin, iv.End) }

// Less orders intervals by Begin, then End. It defines the canonical order
// used for normalized temporal elements.
func (iv Interval) Less(other Interval) bool {
	if iv.Begin != other.Begin {
		return iv.Begin < other.Begin
	}
	return iv.End < other.End
}

// Sort sorts intervals in canonical (Begin, End) order.
func Sort(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Less(ivs[j]) })
}

// Endpoints collects the distinct begin/end points of the given intervals
// in ascending order. It is the EP helper underlying the split operator
// (Def 8.3).
func Endpoints(ivs []Interval) []Time {
	if len(ivs) == 0 {
		return nil
	}
	pts := make([]Time, 0, 2*len(ivs))
	for _, iv := range ivs {
		pts = append(pts, iv.Begin, iv.End)
	}
	return DedupTimes(pts)
}

// DedupTimes sorts ts ascending and removes duplicates in place.
func DedupTimes(ts []Time) []Time {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Segments slices the interval iv at the given ascending cut points,
// returning maximal sub-intervals of iv whose interiors contain no cut
// point. Cut points outside iv are ignored. This is the elementary-segment
// computation shared by split (Def 8.3) and the temporal-element sweeps.
func (iv Interval) Segments(cuts []Time) []Interval {
	if !iv.Valid() {
		return nil
	}
	segs := make([]Interval, 0, 4)
	cur := iv.Begin
	for _, c := range cuts {
		if c <= cur {
			continue
		}
		if c >= iv.End {
			break
		}
		segs = append(segs, Interval{Begin: cur, End: c})
		cur = c
	}
	segs = append(segs, Interval{Begin: cur, End: iv.End})
	return segs
}
