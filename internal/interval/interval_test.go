package interval

import (
	"testing"
	"testing/quick"
)

func TestNewDomainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(5,5) did not panic")
		}
	}()
	NewDomain(5, 5)
}

func TestDomainContains(t *testing.T) {
	d := NewDomain(0, 24)
	cases := []struct {
		t    Time
		want bool
	}{{0, true}, {23, true}, {24, false}, {-1, false}, {12, true}}
	for _, c := range cases {
		if got := d.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDomainContainsInterval(t *testing.T) {
	d := NewDomain(0, 24)
	if !d.ContainsInterval(New(0, 24)) {
		t.Error("domain should contain its own All() interval")
	}
	if d.ContainsInterval(Interval{Begin: -1, End: 3}) {
		t.Error("domain should not contain [-1,3)")
	}
	if d.ContainsInterval(Interval{Begin: 20, End: 25}) {
		t.Error("domain should not contain [20,25)")
	}
}

func TestDomainAllAndSize(t *testing.T) {
	d := NewDomain(3, 10)
	if got := d.All(); got != New(3, 10) {
		t.Errorf("All() = %v", got)
	}
	if got := d.Size(); got != 7 {
		t.Errorf("Size() = %d, want 7", got)
	}
	if got := d.String(); got != "[3, 10)" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(8,3) did not panic")
		}
	}()
	New(8, 3)
}

func TestTryNew(t *testing.T) {
	if _, ok := TryNew(5, 5); ok {
		t.Error("TryNew(5,5) should fail")
	}
	iv, ok := TryNew(1, 4)
	if !ok || iv != New(1, 4) {
		t.Errorf("TryNew(1,4) = %v, %v", iv, ok)
	}
}

func TestPoint(t *testing.T) {
	p := Point(7)
	if p.Begin != 7 || p.End != 8 || p.Len() != 1 {
		t.Errorf("Point(7) = %v", p)
	}
}

func TestValidAndLen(t *testing.T) {
	if (Interval{}).Valid() {
		t.Error("zero interval must be invalid")
	}
	if got := (Interval{Begin: 4, End: 2}).Len(); got != 0 {
		t.Errorf("invalid interval Len = %d, want 0", got)
	}
	if got := New(3, 10).Len(); got != 7 {
		t.Errorf("Len = %d, want 7", got)
	}
}

func TestContains(t *testing.T) {
	iv := New(3, 10)
	for _, c := range []struct {
		t    Time
		want bool
	}{{2, false}, {3, true}, {9, true}, {10, false}} {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	iv := New(3, 10)
	if !iv.ContainsInterval(New(3, 10)) || !iv.ContainsInterval(New(4, 9)) {
		t.Error("expected containment")
	}
	if iv.ContainsInterval(New(2, 5)) || iv.ContainsInterval(New(8, 11)) {
		t.Error("unexpected containment")
	}
}

func TestOverlapsAndAdjacent(t *testing.T) {
	a := New(3, 10)
	cases := []struct {
		b        Interval
		overlaps bool
		adjacent bool
	}{
		{New(10, 12), false, true},
		{New(1, 3), false, true},
		{New(9, 12), true, false},
		{New(1, 4), true, false},
		{New(11, 12), false, false},
		{New(3, 10), true, false},
		{New(5, 6), true, false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.overlaps)
		}
		if got := a.Adjacent(c.b); got != c.adjacent {
			t.Errorf("%v.Adjacent(%v) = %v, want %v", a, c.b, got, c.adjacent)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := New(3, 10)
	if got, ok := a.Intersect(New(8, 16)); !ok || got != New(8, 10) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(New(10, 16)); ok {
		t.Error("adjacent intervals must not intersect")
	}
	if got, ok := a.Intersect(a); !ok || got != a {
		t.Errorf("self-intersection = %v, %v", got, ok)
	}
}

func TestUnion(t *testing.T) {
	a := New(3, 10)
	if got, ok := a.Union(New(10, 16)); !ok || got != New(3, 16) {
		t.Errorf("union of adjacent = %v, %v", got, ok)
	}
	if got, ok := a.Union(New(5, 16)); !ok || got != New(3, 16) {
		t.Errorf("union of overlapping = %v, %v", got, ok)
	}
	if _, ok := a.Union(New(12, 16)); ok {
		t.Error("union of disjoint non-adjacent intervals must be undefined")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 10).String(); got != "[3, 10)" {
		t.Errorf("String = %q", got)
	}
}

func TestLessAndSort(t *testing.T) {
	ivs := []Interval{New(5, 9), New(3, 10), New(3, 4)}
	Sort(ivs)
	want := []Interval{New(3, 4), New(3, 10), New(5, 9)}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("Sort = %v, want %v", ivs, want)
		}
	}
}

func TestEndpoints(t *testing.T) {
	got := Endpoints([]Interval{New(3, 10), New(8, 16), New(3, 12)})
	want := []Time{3, 10, 8, 16, 12}
	want = DedupTimes(want)
	if len(got) != len(want) {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Endpoints = %v, want %v", got, want)
		}
	}
	if Endpoints(nil) != nil {
		t.Error("Endpoints(nil) should be nil")
	}
}

func TestDedupTimes(t *testing.T) {
	got := DedupTimes([]Time{5, 1, 5, 3, 1})
	want := []Time{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("DedupTimes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DedupTimes = %v, want %v", got, want)
		}
	}
}

func TestSegments(t *testing.T) {
	iv := New(3, 16)
	segs := iv.Segments([]Time{0, 3, 8, 10, 16, 20})
	want := []Interval{New(3, 8), New(8, 10), New(10, 16)}
	if len(segs) != len(want) {
		t.Fatalf("Segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
	// No cuts inside: interval returned whole.
	segs = iv.Segments([]Time{0, 20})
	if len(segs) != 1 || segs[0] != iv {
		t.Fatalf("Segments no-cut = %v", segs)
	}
	if (Interval{}).Segments([]Time{1}) != nil {
		t.Error("Segments of invalid interval should be nil")
	}
}

// Property: segments of an interval partition it exactly.
func TestSegmentsPartitionProperty(t *testing.T) {
	f := func(begin int16, lenRaw uint8, cutsRaw []int16) bool {
		length := int64(lenRaw%40) + 1
		iv := New(Time(begin), Time(begin)+length)
		cuts := make([]Time, 0, len(cutsRaw))
		for _, c := range cutsRaw {
			cuts = append(cuts, Time(c))
		}
		cuts = DedupTimes(cuts)
		segs := iv.Segments(cuts)
		// Segments must tile iv: first begins at iv.Begin, each is adjacent
		// to the next, last ends at iv.End, all valid.
		if len(segs) == 0 || segs[0].Begin != iv.Begin || segs[len(segs)-1].End != iv.End {
			return false
		}
		for i, s := range segs {
			if !s.Valid() {
				return false
			}
			if i > 0 && segs[i-1].End != s.Begin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is commutative and contained in both inputs.
func TestIntersectProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a, okA := TryNew(Time(min(a1, a2)), Time(max(a1, a2))+1)
		b, okB := TryNew(Time(min(b1, b2)), Time(max(b1, b2))+1)
		if !okA || !okB {
			return true
		}
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 || (ok1 && i1 != i2) {
			return false
		}
		if ok1 && (!a.ContainsInterval(i1) || !b.ContainsInterval(i1)) {
			return false
		}
		// ok1 must agree with Overlaps.
		return ok1 == a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
