package lint

import (
	"go/ast"
	"go/types"
)

// isClosable reports whether t's method set (including the pointer
// method set for addressable values) contains both Close and Next —
// the structural signature of the engine's RowIter and of snapk.Rows.
// Matching structurally rather than by named type keeps the check
// working for every wrapper iterator without importing the engine.
func isClosable(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethods(t, "Close", "Next") ||
		hasMethods(types.NewPointer(t), "Close", "Next")
}

func hasMethods(t types.Type, names ...string) bool {
	ms := types.NewMethodSet(t)
	found := 0
	for _, name := range names {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				found++
				break
			}
		}
	}
	return found == len(names)
}

// isNamedFrom reports whether t (after unaliasing) is the named type
// pkgSuffix.name, with the defining package matched by import-path
// suffix so fixtures under synthetic paths resolve the same way as the
// real tree.
func isNamedFrom(t types.Type, pkgSuffix, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || hasPathSuffix(path, pkgSuffix)
}

// hasPathSuffix reports whether path ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix)+1 &&
		path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

// isTupleType reports whether t is tuple.Tuple.
func isTupleType(t types.Type) bool {
	return isNamedFrom(t, "internal/tuple", "Tuple") || isNamedFrom(t, "tuple", "Tuple")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// typeOf returns the static type of e in the pass's package, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// funcBodies yields every function declaration body in the package.
func (p *Pass) funcBodies(fn func(decl *ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
