package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxSelect reports goroutines in the parallel executor that are not
// cancellation-aware. Every `go func` launched by an exchange must
// observe its context — receive from ctx.Done() or poll ctx.Err() — or
// a consumer that stops early (LIMIT, error, Close) strands the
// producer on a blocked channel send forever; PR 2's leak tests exist
// because this happened. A goroutine body is also accepted when it
// calls a same-package function that is itself cancellation-aware
// (startMerge's producers keep their select inside drainInto).
//
// Goroutines whose lifetime is bounded by construction (e.g. a closer
// that only waits on a WaitGroup whose members are all
// cancellation-aware) are whitelisted with
//
//	//lint:leakcheck <why this goroutine cannot outlive the query>
var CtxSelect = &Analyzer{
	Name: "ctxselect",
	Doc:  "goroutines in internal/engine/parallel must observe ctx.Done()/ctx.Err() or carry //lint:leakcheck",
	Run:  runCtxSelect,
}

func runCtxSelect(p *Pass) {
	if !strings.HasSuffix(p.Pkg.Path, "internal/engine/parallel") {
		return
	}

	// awareness of every package-level function and method, so one
	// level of same-package call indirection resolves.
	aware := make(map[types.Object]bool)
	p.funcBodies(func(decl *ast.FuncDecl) {
		if obj := p.Pkg.Info.Defs[decl.Name]; obj != nil {
			aware[obj] = p.bodyObservesCtx(decl.Body)
		}
	})

	p.funcBodies(func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.goStmtAware(g, aware) {
				return true
			}
			p.Reportf(g.Pos(),
				"goroutine does not observe ctx.Done()/ctx.Err() and may leak when the consumer stops early — make it cancellation-aware or whitelist it with //lint:leakcheck <reason>")
			return true
		})
	})
}

// goStmtAware reports whether the spawned function observes the
// context, directly or through one same-package call.
func (p *Pass) goStmtAware(g *ast.GoStmt, aware map[types.Object]bool) bool {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		if p.bodyObservesCtx(fun.Body) {
			return true
		}
		// One level of indirection: the literal calls an aware
		// same-package function or method.
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			var callee types.Object
			switch f := call.Fun.(type) {
			case *ast.Ident:
				callee = p.Pkg.Info.Uses[f]
			case *ast.SelectorExpr:
				callee = p.Pkg.Info.Uses[f.Sel]
			}
			if callee != nil && aware[callee] {
				found = true
			}
			return !found
		})
		return found
	case *ast.Ident:
		return aware[p.Pkg.Info.Uses[fun]]
	case *ast.SelectorExpr:
		return aware[p.Pkg.Info.Uses[fun.Sel]]
	}
	return false
}

// bodyObservesCtx reports whether body contains a receive from
// <-ctx.Done() or a call of ctx.Err() on a context.Context value.
func (p *Pass) bodyObservesCtx(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if isContextType(p.typeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}
