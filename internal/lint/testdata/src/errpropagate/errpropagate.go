// Package fixture exercises the errpropagate analyzer: a loop that
// drains an iterator-shaped local must consult its stream error (Err
// method, engine.IterErr, or a hand-off), and Materialize — which
// documents that it discards the error — is flagged unconditionally.
package fixture

type Row []int

type Table struct{ Rows []Row }

type RowIter interface {
	Next() (Row, bool)
	Err() error
	Close()
}

type Batch struct{ Rows []Row }

type BatchIter interface {
	RowIter
	NextBatch(*Batch) bool
}

func open() RowIter { return nil }

func openBatch() BatchIter { return nil }

func Materialize(it RowIter) *Table { panic("fixture") }

func MaterializeErr(it RowIter) (*Table, error) { panic("fixture") }

func IterErr(it RowIter) error {
	if e, ok := it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func drainsAndDrops() int {
	it := open()
	defer it.Close()
	n := 0
	for { // want "stream error is never consulted"
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func drainsBatchAndDrops(b *Batch) int {
	it := openBatch()
	defer it.Close()
	n := 0
	for it.NextBatch(b) { // want "stream error is never consulted"
		n += len(b.Rows)
	}
	return n
}

func drainsAndChecksErr() (int, error) {
	it := open()
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	return n, it.Err()
}

func drainsAndChecksIterErr() (int, error) {
	it := open()
	defer it.Close()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	return n, IterErr(it)
}

func checkStream(it RowIter) error { return it.Err() }

func drainsAndHandsOff() error {
	it := open()
	defer it.Close()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	return checkStream(it)
}

// selfIter pins the receiver exemption: a batch method looping over its
// own Next is self-delegation, not a dropped error.
type selfIter struct{ in RowIter }

func (it *selfIter) Next() (Row, bool) { return it.in.Next() }
func (it *selfIter) Err() error        { return it.in.Err() }
func (it *selfIter) Close()            { it.in.Close() }

func (it *selfIter) NextBatch(b *Batch) bool {
	b.Rows = b.Rows[:0]
	for len(b.Rows) < 64 {
		row, ok := it.Next()
		if !ok {
			break
		}
		b.Rows = append(b.Rows, row)
	}
	return len(b.Rows) > 0
}

func materializes() *Table {
	it := open()
	defer it.Close()
	return Materialize(it) // want "Materialize discards the stream's terminal error"
}

func materializesErr() (*Table, error) {
	it := open()
	defer it.Close()
	return MaterializeErr(it)
}

func suppressedDrain() int {
	it := open()
	defer it.Close()
	n := 0
	//lint:ignore errpropagate fixture: peeking a bounded prefix, truncation is the point
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	return n
}

func suppressedMaterialize() *Table {
	it := open()
	defer it.Close()
	//lint:ignore errpropagate fixture: infallible in-memory source
	return Materialize(it)
}
