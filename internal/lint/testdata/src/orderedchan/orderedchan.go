// Package fixture exercises the orderedchan analyzer: no channel
// construction inside a function that builds an ordered merge
// (an orderedMergeIter composite literal) — bounded buffers deadlock
// the merge under partition skew; the idiom is an unbounded queue.
package fixture

type row []int

type orderedMergeIter struct {
	srcs []chan row
}

type queue struct {
	rows []row
}

func bad(n int) *orderedMergeIter {
	it := &orderedMergeIter{}
	for i := 0; i < n; i++ {
		ch := make(chan row, 4) // want "deadlocks under partition skew"
		it.srcs = append(it.srcs, ch)
	}
	return it
}

func badUnbuffered() *orderedMergeIter {
	ch := make(chan row) // want "deadlocks under partition skew"
	_ = ch
	return &orderedMergeIter{}
}

func goodQueue(n int) (*orderedMergeIter, []*queue) {
	qs := make([]*queue, n)
	for i := range qs {
		qs[i] = &queue{}
	}
	return &orderedMergeIter{}, qs
}

func unrelated(n int) chan row {
	// A channel outside any ordered-merge construction is clean.
	return make(chan row, n)
}

func suppressed() *orderedMergeIter {
	//lint:ignore orderedchan fixture: a dedicated consumer always drains this channel before waiting
	ch := make(chan row, 1)
	_ = ch
	return &orderedMergeIter{}
}
