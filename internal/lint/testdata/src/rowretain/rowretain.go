// Package fixture exercises the rowretain analyzer: tuples obtained
// from Next() must be Cloned before being retained in struct fields,
// maps, slices, composite literals or channels.
package fixture

import "snapk/internal/tuple"

type iter interface {
	Next() (tuple.Tuple, bool)
}

type sink struct {
	rows  []tuple.Tuple
	last  tuple.Tuple
	byKey map[string]tuple.Tuple
}

func (s *sink) retains(it iter) {
	for {
		row, ok := it.Next()
		if !ok {
			return
		}
		s.last = row                 // want "stored without Clone"
		s.rows = append(s.rows, row) // want "appended without Clone"
		s.byKey["k"] = row           // want "stored without Clone"
	}
}

func (s *sink) clones(it iter) {
	for {
		row, ok := it.Next()
		if !ok {
			return
		}
		s.last = row.Clone()
		s.rows = append(s.rows, row.Clone())
	}
}

func (s *sink) subslice(it iter) {
	row, ok := it.Next()
	if !ok {
		return
	}
	data := row[:1]
	s.rows = append(s.rows, data) // want "appended without Clone"
}

func (s *sink) literal(it iter) []tuple.Tuple {
	row, _ := it.Next()
	return []tuple.Tuple{row} // want "composite literal"
}

func (s *sink) send(it iter, ch chan tuple.Tuple) {
	row, _ := it.Next()
	ch <- row // want "sent on a channel"
}

func (s *sink) reads(it iter) tuple.Value {
	// Reading and projecting without retention is clean.
	row, ok := it.Next()
	if !ok {
		return tuple.Null
	}
	return row[0]
}

func (s *sink) suppressed(it iter) {
	row, _ := it.Next()
	//lint:ignore rowretain fixture: this producer materializes and never reuses buffers
	s.last = row
}
