// Package fixture exercises the rowretain analyzer: tuples obtained
// from Next() must be Cloned before being retained in struct fields,
// maps, slices, composite literals or channels.
package fixture

import (
	"snapk/internal/engine"
	"snapk/internal/tuple"
)

type iter interface {
	Next() (tuple.Tuple, bool)
}

type sink struct {
	rows  []tuple.Tuple
	last  tuple.Tuple
	byKey map[string]tuple.Tuple
}

func (s *sink) retains(it iter) {
	for {
		row, ok := it.Next()
		if !ok {
			return
		}
		s.last = row                 // want "stored without Clone"
		s.rows = append(s.rows, row) // want "appended without Clone"
		s.byKey["k"] = row           // want "stored without Clone"
	}
}

func (s *sink) clones(it iter) {
	for {
		row, ok := it.Next()
		if !ok {
			return
		}
		s.last = row.Clone()
		s.rows = append(s.rows, row.Clone())
	}
}

func (s *sink) subslice(it iter) {
	row, ok := it.Next()
	if !ok {
		return
	}
	data := row[:1]
	s.rows = append(s.rows, data) // want "appended without Clone"
}

func (s *sink) literal(it iter) []tuple.Tuple {
	row, _ := it.Next()
	return []tuple.Tuple{row} // want "composite literal"
}

func (s *sink) send(it iter, ch chan tuple.Tuple) {
	row, _ := it.Next()
	ch <- row // want "sent on a channel"
}

func (s *sink) reads(it iter) tuple.Value {
	// Reading and projecting without retention is clean.
	row, ok := it.Next()
	if !ok {
		return tuple.Null
	}
	return row[0]
}

func (s *sink) suppressed(it iter) {
	row, _ := it.Next()
	//lint:ignore rowretain fixture: this producer materializes and never reuses buffers
	s.last = row
}

// --- batch protocol -------------------------------------------------

type batchIter interface {
	NextBatch(*engine.RowBatch) bool
}

// cursor mimics the engine's in-operator batch cursors: a lowercase
// next() hands out exactly the same producer-owned rows as Next().
type cursor struct{ it iter }

func (c *cursor) next() (tuple.Tuple, bool) { return c.it.Next() }

type batchSink struct {
	saved   []tuple.Tuple
	batches [][]tuple.Tuple
	rows    []tuple.Tuple
	last    tuple.Tuple
}

func (s *batchSink) retainsSlice(it batchIter, b *engine.RowBatch) {
	for it.NextBatch(b) {
		s.saved = b.Rows                      // want "batch row slice is stored"
		s.batches = append(s.batches, b.Rows) // want "batch row slice is appended"
		rows := b.Rows
		s.batches = append(s.batches, rows[:1]) // want "batch row slice is appended"
	}
}

func (s *batchSink) copiesOut(it batchIter, b *engine.RowBatch) {
	for it.NextBatch(b) {
		// The sanctioned hand-off idiom: rows are copied out of the
		// batch slice before the producer reuses it.
		s.rows = append(s.rows, b.Rows...)
	}
}

func (s *batchSink) retainsRows(it batchIter, b *engine.RowBatch) {
	for it.NextBatch(b) {
		for _, row := range b.Rows {
			s.rows = append(s.rows, row) // want "appended without Clone"
		}
		row := b.Rows[0]
		s.last = row // want "stored without Clone"
	}
}

func (s *batchSink) retainsLowercase(c *cursor) {
	row, _ := c.next()
	s.last = row // want "stored without Clone"
}

func (s *batchSink) literalAndSend(it batchIter, b *engine.RowBatch, ch chan []tuple.Tuple) {
	it.NextBatch(b)
	_ = [][]tuple.Tuple{b.Rows} // want "composite literal"
	ch <- b.Rows                // want "sent on a channel"
}

func (s *batchSink) suppressedSlice(it batchIter, b *engine.RowBatch) {
	it.NextBatch(b)
	//lint:ignore rowretain fixture: this producer allocates a fresh slice per batch
	s.saved = b.Rows
}
