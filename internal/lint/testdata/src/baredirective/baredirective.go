// Package fixture holds suppression directives without justifications;
// the driver must report them instead of honoring them.
package fixture

func bare() {
	//lint:ignore keyalloc
	_ = 0
	//lint:leakcheck
	_ = 1
}
