// Package fixture exercises the iterclose analyzer: obtaining a
// RowIter-shaped value (method set has Next and Close) creates a close
// obligation that is discharged by calling Close, returning the
// iterator, or handing it off.
package fixture

type Row []int

type RowIter interface {
	Next() (Row, bool)
	Close()
}

func open() RowIter { return nil }

func sink(it RowIter) { it.Close() }

func leaks() bool {
	it := open() // want "never closed"
	_, ok := it.Next()
	return ok
}

func leaksBoth() (bool, bool) {
	a := open() // want "never closed"
	b := open() // want "never closed"
	_, okA := a.Next()
	_, okB := b.Next()
	return okA, okB
}

func closes() bool {
	it := open()
	defer it.Close()
	_, ok := it.Next()
	return ok
}

func closesOnOnePath(drain bool) {
	it := open()
	if drain {
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
	it.Close()
}

func returnsIt() RowIter {
	it := open()
	return it
}

func handsOff() {
	it := open()
	sink(it)
}

func storesIt() *struct{ it RowIter } {
	it := open()
	return &struct{ it RowIter }{it: it}
}

func suppressed() bool {
	//lint:ignore iterclose fixture: the pipeline is process-lifetime and torn down at exit
	it := open()
	_, ok := it.Next()
	return ok
}
