// Package parallel exercises the ctxselect analyzer: goroutines in the
// parallel executor must observe ctx.Done()/ctx.Err(), directly or via
// one same-package call, or carry a //lint:leakcheck justification.
// The fixture is loaded under a package path ending in
// internal/engine/parallel, the analyzer's scope.
package parallel

import "context"

type exec struct {
	ctx context.Context
	ch  chan int
}

func (e *exec) leaky() {
	go func() { // want "does not observe ctx.Done"
		e.ch <- 1
	}()
}

func (e *exec) selects() {
	go func() {
		select {
		case e.ch <- 1:
		case <-e.ctx.Done():
		}
	}()
}

func (e *exec) polls() {
	go func() {
		for e.ctx.Err() == nil {
			e.ch <- 1
		}
	}()
}

func (e *exec) drain() {
	for {
		select {
		case e.ch <- 1:
		case <-e.ctx.Done():
			return
		}
	}
}

func (e *exec) indirectMethod() {
	go e.drain()
}

func (e *exec) indirectLiteral() {
	go func() {
		e.drain()
	}()
}

func (e *exec) whitelisted(done chan struct{}) {
	//lint:leakcheck fixture: lifetime bounded by the done channel closed in a defer
	go func() {
		<-done
	}()
}
