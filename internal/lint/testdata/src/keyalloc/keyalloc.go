// Package engine exercises the keyalloc analyzer: no per-row
// Tuple.Key() calls or string-concatenated map keys inside loops —
// hot paths reuse an AppendKey scratch buffer. The fixture is loaded
// under a package path containing internal/engine, the analyzer's
// scope.
package engine

import "snapk/internal/tuple"

func keyInLoop(rows []tuple.Tuple) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		m[r.Key()]++ // want "Tuple.Key"
	}
	return m
}

func keyScratch(rows []tuple.Tuple) map[string]int {
	m := make(map[string]int)
	var scratch []byte
	for _, r := range rows {
		scratch = r.AppendKey(scratch[:0], nil)
		m[string(scratch)]++
	}
	return m
}

func concatKey(rows [][2]string) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		m[r[0]+"|"+r[1]]++ // want "string-concatenated map key"
	}
	return m
}

func keyOutsideLoop(r tuple.Tuple) string {
	// A one-shot key outside any loop is clean.
	return r.Key()
}

func suppressed(rows []tuple.Tuple) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		//lint:ignore keyalloc fixture: cold validation path, runs once per query
		m[r.Key()]++
	}
	return m
}
