// Package lint implements snaplint, the repo-specific static-analysis
// suite that mechanically enforces the streaming engine's iterator
// conventions — invariants the compiler cannot see but whose violation
// has caused real bugs (row aliasing, goroutine leaks, ordered-exchange
// deadlocks; see the "Invariants & linting" section of the README).
//
// Each check is an independent Analyzer over one type-checked package,
// mirroring the x/tools/go/analysis shape (Name/Doc/Run over a Pass) so
// a later migration to that framework is mechanical. Findings are
// suppressed with
//
//	//lint:ignore <analyzer> <justification>
//
// on the flagged line or the line immediately above it, or — for the
// ctxselect goroutine-leak check only — with
//
//	//lint:leakcheck <justification>
//
// on or above the `go` statement. The justification is mandatory: a
// bare directive does not suppress anything and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full snaplint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{IterClose, ErrPropagate, RowRetain, CtxSelect, OrderedChan, KeyAlloc}
}

// Pass carries one analyzer's view of one package and collects its
// diagnostics.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	name  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: where, which analyzer, and what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzers runs every analyzer over every package, applies the
// suppression directives, and returns the surviving diagnostics in a
// deterministic file/line order. Malformed directives (no
// justification) are reported as findings of the "lint" pseudo-analyzer
// rather than honored.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Fset: pkg.Fset, Pkg: pkg, name: a.Name, diags: &raw})
		}
		dirs := collectDirectives(pkg)
		for _, d := range raw {
			if !dirs.suppresses(d) {
				diags = append(diags, d)
			}
		}
		diags = append(diags, dirs.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// directive is one parsed //lint: comment.
type directive struct {
	analyzer string // the analyzer it silences ("ctxselect" for leakcheck)
	reason   string
}

// directiveSet indexes well-formed directives by file and line.
type directiveSet struct {
	byLine    map[string]map[int][]directive
	malformed []Diagnostic
}

// collectDirectives parses every //lint:ignore and //lint:leakcheck
// comment in the package. Directives without a justification are
// collected as malformed instead of being indexed.
func collectDirectives(pkg *Package) *directiveSet {
	ds := &directiveSet{byLine: make(map[string]map[int][]directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var d directive
				var bad string
				switch {
				case strings.HasPrefix(text, "lint:ignore"):
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
					if len(fields) < 2 {
						bad = "//lint:ignore needs an analyzer name and a justification: //lint:ignore <analyzer> <why this is safe>"
						break
					}
					d = directive{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
				case strings.HasPrefix(text, "lint:leakcheck"):
					reason := strings.TrimSpace(strings.TrimPrefix(text, "lint:leakcheck"))
					if reason == "" {
						bad = "//lint:leakcheck needs a justification: //lint:leakcheck <why this goroutine cannot leak>"
						break
					}
					d = directive{analyzer: "ctxselect", reason: reason}
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if bad != "" {
					ds.malformed = append(ds.malformed, Diagnostic{Pos: pos, Analyzer: "lint", Message: bad})
					continue
				}
				lines := ds.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					ds.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return ds
}

// suppresses reports whether a directive for the diagnostic's analyzer
// sits on the flagged line or the line immediately above it.
func (ds *directiveSet) suppresses(d Diagnostic) bool {
	lines := ds.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// walkStack traverses root in depth-first order, calling fn with each
// node and the stack of its ancestors (outermost first, parent last).
// Returning false skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
