package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// needs: where a package lives, which (build-constraint-filtered,
// non-test) files make it up, and what it imports.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
}

// Package is one fully type-checked package under analysis: its parsed
// files plus the go/types objects and expression types the analyzers
// query.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages for analysis. It is driven
// entirely by the local toolchain — package metadata comes from
// `go list -json`, sources are parsed with go/parser and type-checked
// with go/types, and stdlib dependencies are imported from compiler
// export data — so it needs no network access and no modules beyond
// the repository itself. Loader implements types.Importer for the
// repository's own packages, which is also what lets the fixture tests
// type-check testdata files against real repo packages.
type Loader struct {
	Fset *token.FileSet

	listed map[string]*listedPackage
	deps   map[string]*types.Package // type-checked dependencies, by import path
	std    types.Importer            // export-data importer for the standard library
}

// NewLoader returns an empty loader sharing one FileSet across every
// package it checks.
func NewLoader() *Loader {
	return &Loader{
		Fset:   token.NewFileSet(),
		listed: make(map[string]*listedPackage),
		deps:   make(map[string]*types.Package),
		std:    importer.Default(),
	}
}

// Load resolves the package patterns (as `go list` understands them,
// e.g. ./... from the module root or snapk/...), type-checks every
// matched package, and returns them ready for analysis. Matched
// packages get full type information; their dependencies are checked
// only as deeply as importing them requires.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	pkgs := make([]*Package, 0, len(roots))
	for _, path := range roots {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// list runs `go list -json -deps` over the patterns, records every
// listed package (dependencies included) for later import resolution,
// and returns the import paths matched by the patterns themselves in a
// stable order.
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	out, err := runGo(args)
	if err != nil {
		return nil, err
	}
	deps := make(map[string]bool)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		l.listed[p.ImportPath] = &p
		deps[p.ImportPath] = true
	}
	// A second, dependency-free listing separates the packages the
	// patterns matched (the analysis roots) from their dependencies.
	out, err = runGo(append([]string{"list"}, patterns...))
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" && deps[line] {
			roots = append(roots, line)
		}
	}
	sort.Strings(roots)
	return roots, nil
}

// runGo executes the go tool and returns its stdout, folding stderr
// into the error on failure.
func runGo(args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}

// check type-checks the listed package at path with full type
// information.
func (l *Loader) check(path string) (*Package, error) {
	lp, ok := l.listed[path]
	if !ok {
		if err := l.ensureListed(path); err != nil {
			return nil, err
		}
		lp = l.listed[path]
	}
	files := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		files = append(files, filepath.Join(lp.Dir, f))
	}
	return l.CheckFiles(path, files)
}

// CheckFiles parses and type-checks the given files as one package
// under the given import path, resolving imports through the loader.
// It is the entry point the fixture tests use to check testdata sources
// (which `go list` deliberately ignores) against real repo packages.
func (l *Loader) CheckFiles(path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer: standard-library packages come from
// compiler export data, repository packages are type-checked from
// source (without retaining analysis-grade type info) and cached.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		if err := l.ensureListed(path); err != nil {
			return nil, err
		}
		lp = l.listed[path]
	}
	if lp.Standard {
		pkg, err := l.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("lint: importing %s: %v", path, err)
		}
		l.deps[path] = pkg
		return pkg, nil
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking dependency %s: %v", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// ensureListed fetches go list metadata for a package the initial
// pattern expansion did not cover (e.g. a repo package imported only by
// a test fixture).
func (l *Loader) ensureListed(path string) error {
	out, err := runGo([]string{"list", "-json", "-deps", path})
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if _, ok := l.listed[p.ImportPath]; !ok {
			l.listed[p.ImportPath] = &p
		}
	}
	if _, ok := l.listed[path]; !ok {
		return fmt.Errorf("lint: package %s not found", path)
	}
	return nil
}
