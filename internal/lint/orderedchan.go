package lint

import (
	"go/ast"
	"go/types"
)

// OrderedChan reports channel construction inside functions that build
// an ordered merge (an orderedMergeIter). Order-preserving exchanges
// must pull from per-producer queues in heap order, so a producer can
// run arbitrarily far ahead of the merge cursor when partition sizes
// are skewed; routing that stream through a bounded channel deadlocks
// the whole exchange (the PR 4 class — producer blocked on a full
// buffer the merge will not drain until another producer advances).
// The established idiom is the unbounded batchQueue. A channel in an
// ordered-merge path needs
//
//	//lint:ignore orderedchan <why this channel cannot block the merge>
//
// arguing a drain guarantee (e.g. a dedicated consumer that always
// empties the channel it waits on).
var OrderedChan = &Analyzer{
	Name: "orderedchan",
	Doc:  "no make(chan …) feeding an ordered merge/repartition — bounded buffers deadlock under skew",
	Run:  runOrderedChan,
}

func runOrderedChan(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl) {
		if !buildsOrderedMerge(p, decl.Body) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" {
				return true
			}
			if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); !isBuiltin {
				return true
			}
			if _, ok := call.Args[0].(*ast.ChanType); !ok {
				return true
			}
			p.Reportf(call.Pos(),
				"channel transport inside an ordered-merge construction deadlocks under partition skew — use an unbounded batchQueue")
			return true
		})
	})
}

// buildsOrderedMerge reports whether the function constructs an
// ordered-merge iterator (an orderedMergeIter composite literal).
func buildsOrderedMerge(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := p.typeOf(lit)
		if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Name() == "orderedMergeIter" {
			found = true
		}
		return !found
	})
	return found
}
