package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KeyAlloc reports per-row key allocation in engine hot loops:
// Tuple.Key() calls and string-concatenated map keys inside for/range
// bodies. Key() allocates a fresh string per row; on the paths the PR 4
// benchmarks profiled (hash partitioning, grouping) the established
// idiom is AppendKey into a reusable scratch buffer, which hashes the
// same canonical encoding with zero steady-state allocation. The check
// is scoped to internal/engine packages — key building in the abstract
// model layers is not performance-relevant.
var KeyAlloc = &Analyzer{
	Name: "keyalloc",
	Doc:  "engine loops must build row keys with AppendKey scratch buffers, not Tuple.Key()/string concat",
	Run:  runKeyAlloc,
}

func runKeyAlloc(p *Pass) {
	if !strings.Contains(p.Pkg.Path, "internal/engine") {
		return
	}
	p.funcBodies(func(decl *ast.FuncDecl) {
		walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
			if !inLoop(stack) {
				return true
			}
			switch e := n.(type) {
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Key" || len(e.Args) != 0 {
					return true
				}
				if isTupleType(p.typeOf(sel.X)) {
					p.Reportf(e.Pos(),
						"Tuple.Key() allocates a string per row — in loops, reuse a scratch buffer with AppendKey (key = row.AppendKey(key[:0], idx))")
				}
			case *ast.IndexExpr:
				if bin, ok := e.Index.(*ast.BinaryExpr); ok && bin.Op == token.ADD && isStringExpr(p, bin) {
					p.Reportf(e.Index.Pos(),
						"string-concatenated map key allocates per row — in loops, build keys with AppendKey into a scratch buffer")
				}
			}
			return true
		})
	})
}

// inLoop reports whether any enclosing node is a for/range statement.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
