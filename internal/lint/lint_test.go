package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches `// want "substring"` expectations; a line may carry
// several.
var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// TestAnalyzerFixtures runs each analyzer over its testdata fixture and
// compares the diagnostics against the fixture's `// want "…"` line
// comments: every finding must be expected, every expectation must be
// found, and suppressed lines must stay silent. Package paths are
// chosen so the path-scoped analyzers (ctxselect, keyalloc) see their
// scope.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
		pkgPath  string
	}{
		{IterClose, "iterclose", "fixture/iterclose"},
		{ErrPropagate, "errpropagate", "fixture/errpropagate"},
		{RowRetain, "rowretain", "fixture/rowretain"},
		{CtxSelect, "ctxselect", "fixture/internal/engine/parallel"},
		{OrderedChan, "orderedchan", "fixture/orderedchan"},
		{KeyAlloc, "keyalloc", "fixture/internal/engine"},
	}
	ld := NewLoader()
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			files, err := filepath.Glob(filepath.Join("testdata", "src", tc.dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no fixture files for %s: %v", tc.dir, err)
			}
			pkg, err := ld.CheckFiles(tc.pkgPath, files)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, files)
			got := RunAnalyzers([]*Package{pkg}, []*Analyzer{tc.analyzer})

			matched := make(map[string]bool)
			for _, d := range got {
				key, ok := matchWant(wants, d)
				if !ok {
					t.Errorf("unexpected diagnostic %v", d)
					continue
				}
				matched[key] = true
			}
			for key, substr := range wants {
				if !matched[key] {
					t.Errorf("missing diagnostic at %s (want message containing %q)", key, substr)
				}
			}
		})
	}
}

// collectWants returns want expectations keyed "file:line#i".
func collectWants(t *testing.T, files []string) map[string]string {
	t.Helper()
	wants := make(map[string]string)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for j, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants[fmt.Sprintf("%s:%d#%d", name, i+1, j)] = m[1]
			}
		}
	}
	return wants
}

// matchWant finds an unclaimed expectation on the diagnostic's line
// whose substring occurs in its message.
func matchWant(wants map[string]string, d Diagnostic) (string, bool) {
	for j := 0; ; j++ {
		key := fmt.Sprintf("%s:%d#%d", d.Pos.Filename, d.Pos.Line, j)
		substr, ok := wants[key]
		if !ok {
			return "", false
		}
		if strings.Contains(d.Message, substr) {
			return key, true
		}
	}
}

// TestBareDirectivesReported pins that a suppression comment without a
// justification does not suppress and is itself a finding.
func TestBareDirectivesReported(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "baredirective", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files: %v", err)
	}
	pkg, err := NewLoader().CheckFiles("fixture/baredirective", files)
	if err != nil {
		t.Fatal(err)
	}
	got := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(got) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %d: %v", len(got), got)
	}
	for _, d := range got {
		if d.Analyzer != "lint" || !strings.Contains(d.Message, "justification") {
			t.Errorf("unexpected diagnostic %v", d)
		}
	}
}
