package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RowRetain reports producer-owned row state that is retained past its
// validity window without an explicit copy. Two classes are covered:
//
//   - Tuples obtained from an iterator's Next()/next() that are
//     retained — stored into a struct field, map, slice element,
//     appended, placed in a composite literal, or sent on a channel —
//     without an explicit Clone. Rows yielded by Next are owned by the
//     producer and may alias its internal buffers; retaining one across
//     Next calls is exactly the silent-corruption class PR 1 fixed.
//
//   - The row SLICE of an engine.RowBatch (b.Rows, or any sub-slice of
//     it) that is retained the same way. A batch's row slice is valid
//     only until the producer's next NextBatch call, which may reuse or
//     replace it — the batch-boundary aliasing class. Copying the rows
//     out (append(dst, b.Rows...)) is the sanctioned idiom and is not
//     flagged; retaining the slice itself is.
//
// Retention is safe only when the producer is known never to reuse the
// backing array (e.g. materialized tables), which is what the
// suppression justification must argue:
//
//	//lint:ignore rowretain <why the producer never reuses the retained memory>
var RowRetain = &Analyzer{
	Name: "rowretain",
	Doc:  "rows from Next()/NextBatch must be Cloned (tuples) or copied out (batch row slices) before being retained",
	Run:  runRowRetain,
}

// isRowBatchType reports whether t is engine.RowBatch or *engine.RowBatch.
func isRowBatchType(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedFrom(t, "internal/engine", "RowBatch") || isNamedFrom(t, "engine", "RowBatch")
}

// isTupleSliceType reports whether t's underlying type is a slice of
// tuple.Tuple (covers unnamed []tuple.Tuple and named transport types).
func isTupleSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isTupleType(s.Elem())
}

// isRowPull reports whether call pulls a producer-owned row: a method
// named Next (the RowIter protocol) or next (the engine's in-operator
// batch cursors, which hand out exactly the same producer-owned rows).
func isRowPull(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && (sel.Sel.Name == "Next" || sel.Sel.Name == "next")
}

func runRowRetain(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl) {
		// taintedRow holds variables bound to a row that came out of a
		// Next()/next() call or a batch's row slice, including
		// sub-slices of one (data := row[:n] still aliases the
		// producer's buffer). taintedSlice holds variables aliasing a
		// RowBatch's row slice, which the producer reuses on NextBatch.
		taintedRow := make(map[types.Object]bool)
		taintedSlice := make(map[types.Object]bool)

		// isBatchRows reports whether e denotes (a sub-slice of) the row
		// slice of a RowBatch: b.Rows, b.Rows[i:j], or a variable
		// already tainted as one.
		var isBatchRows func(e ast.Expr) bool
		isBatchRows = func(e ast.Expr) bool {
			switch x := e.(type) {
			case *ast.Ident:
				obj := p.objOf(x)
				return obj != nil && taintedSlice[obj]
			case *ast.SelectorExpr:
				return x.Sel.Name == "Rows" && isRowBatchType(p.typeOf(x.X))
			case *ast.SliceExpr:
				return isBatchRows(x.X)
			case *ast.ParenExpr:
				return isBatchRows(x.X)
			}
			return false
		}

		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := p.objOf(id)
					if obj == nil {
						continue
					}
					rhs := s.Rhs[0]
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					}
					switch {
					case isTupleType(obj.Type()):
						switch r := rhs.(type) {
						case *ast.CallExpr:
							if isRowPull(r) {
								taintedRow[obj] = true
							}
						case *ast.SliceExpr:
							if base, ok := r.X.(*ast.Ident); ok && taintedRow[p.objOf(base)] {
								taintedRow[obj] = true
							}
						case *ast.IndexExpr:
							// row := b.Rows[i] — a row read out of a live
							// batch is a producer-owned row like any other.
							if isBatchRows(r.X) {
								taintedRow[obj] = true
							}
						}
					case isTupleSliceType(obj.Type()):
						if isBatchRows(rhs) {
							taintedSlice[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				// for _, row := range b.Rows { ... } taints the value
				// variable exactly like row := b.Rows[i].
				if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" && isBatchRows(s.X) {
					if obj := p.objOf(id); obj != nil && isTupleType(obj.Type()) {
						taintedRow[obj] = true
					}
				}
			}
			return true
		})
		isTaintedIdent := func(e ast.Expr) (*ast.Ident, bool) {
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil, false
			}
			if obj := p.Pkg.Info.Uses[id]; obj != nil && taintedRow[obj] {
				return id, true
			}
			return nil, false
		}

		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if len(s.Lhs) != len(s.Rhs) {
						break
					}
					switch l := lhs.(type) {
					case *ast.SelectorExpr:
						// Assigning INTO a batch's Rows field is the
						// producer side of the protocol (refill or
						// transport adoption), not retention.
						if l.Sel.Name == "Rows" && isRowBatchType(p.typeOf(l.X)) {
							continue
						}
					case *ast.IndexExpr:
					default:
						continue
					}
					if id, ok := isTaintedIdent(s.Rhs[i]); ok {
						p.Reportf(id.Pos(),
							"tuple %s obtained from Next() is stored without Clone — the producer may reuse its backing array", id.Name)
					}
					if isBatchRows(s.Rhs[i]) {
						p.Reportf(s.Rhs[i].Pos(),
							"batch row slice is stored without copying — it is only valid until the next NextBatch")
					}
				}
			case *ast.CallExpr:
				if fn, ok := s.Fun.(*ast.Ident); ok && fn.Name == "append" {
					if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); isBuiltin {
						for j, arg := range s.Args[1:] {
							if id, ok := isTaintedIdent(arg); ok {
								p.Reportf(id.Pos(),
									"tuple %s obtained from Next() is appended without Clone — the producer may reuse its backing array", id.Name)
							}
							// append(dst, b.Rows...) copies the rows out —
							// the sanctioned hand-off idiom. Appending the
							// slice itself as one element retains it.
							spread := s.Ellipsis != token.NoPos && j == len(s.Args)-2
							if !spread && isBatchRows(arg) {
								p.Reportf(arg.Pos(),
									"batch row slice is appended without copying — it is only valid until the next NextBatch")
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					if id, ok := isTaintedIdent(elt); ok {
						p.Reportf(id.Pos(),
							"tuple %s obtained from Next() is placed in a composite literal without Clone", id.Name)
					}
					if isBatchRows(elt) {
						p.Reportf(elt.Pos(),
							"batch row slice is placed in a composite literal without copying — it is only valid until the next NextBatch")
					}
				}
			case *ast.SendStmt:
				if id, ok := isTaintedIdent(s.Value); ok {
					p.Reportf(id.Pos(),
						"tuple %s obtained from Next() is sent on a channel without Clone", id.Name)
				}
				if isBatchRows(s.Value) {
					p.Reportf(s.Value.Pos(),
						"batch row slice is sent on a channel without copying — it is only valid until the next NextBatch")
				}
			}
			return true
		})
	})
}
