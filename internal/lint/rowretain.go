package lint

import (
	"go/ast"
	"go/types"
)

// RowRetain reports tuples obtained from an iterator's Next() that are
// retained — stored into a struct field, map, slice element, appended,
// placed in a composite literal, or sent on a channel — without an
// explicit Clone. Rows yielded by Next are owned by the producer and
// may alias its internal buffers; retaining one across Next calls is
// exactly the silent-corruption class PR 1 fixed. Retention is safe
// only when the producer is known never to reuse the backing array
// (e.g. materialized tables), which is what the suppression
// justification must argue:
//
//	//lint:ignore rowretain <why the producer never mutates yielded rows>
var RowRetain = &Analyzer{
	Name: "rowretain",
	Doc:  "tuples from Next() must be Cloned before being stored in fields, maps, slices or channels",
	Run:  runRowRetain,
}

func runRowRetain(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl) {
		// tainted holds variables bound to a row that came out of a
		// Next() call, including sub-slices of one (data := row[:n]
		// still aliases the producer's buffer).
		tainted := make(map[types.Object]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.objOf(id)
				if obj == nil || !isTupleType(obj.Type()) {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				switch r := rhs.(type) {
				case *ast.CallExpr:
					if sel, ok := r.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Next" {
						tainted[obj] = true
					}
				case *ast.SliceExpr:
					if base, ok := r.X.(*ast.Ident); ok && tainted[p.objOf(base)] {
						tainted[obj] = true
					}
				}
			}
			return true
		})
		if len(tainted) == 0 {
			return
		}

		isTaintedIdent := func(e ast.Expr) (*ast.Ident, bool) {
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil, false
			}
			if obj := p.Pkg.Info.Uses[id]; obj != nil && tainted[obj] {
				return id, true
			}
			return nil, false
		}

		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if len(s.Lhs) != len(s.Rhs) {
						break
					}
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
					default:
						continue
					}
					if id, ok := isTaintedIdent(s.Rhs[i]); ok {
						p.Reportf(id.Pos(),
							"tuple %s obtained from Next() is stored without Clone — the producer may reuse its backing array", id.Name)
					}
				}
			case *ast.CallExpr:
				if fn, ok := s.Fun.(*ast.Ident); ok && fn.Name == "append" {
					if _, isBuiltin := p.Pkg.Info.Uses[fn].(*types.Builtin); isBuiltin {
						for _, arg := range s.Args[1:] {
							if id, ok := isTaintedIdent(arg); ok {
								p.Reportf(id.Pos(),
									"tuple %s obtained from Next() is appended without Clone — the producer may reuse its backing array", id.Name)
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					if id, ok := isTaintedIdent(elt); ok {
						p.Reportf(id.Pos(),
							"tuple %s obtained from Next() is placed in a composite literal without Clone", id.Name)
					}
				}
			case *ast.SendStmt:
				if id, ok := isTaintedIdent(s.Value); ok {
					p.Reportf(id.Pos(),
						"tuple %s obtained from Next() is sent on a channel without Clone", id.Name)
				}
			}
			return true
		})
	})
}
