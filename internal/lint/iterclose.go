package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IterClose reports row iterators that are obtained but neither closed
// nor handed off. A function that calls something returning a
// RowIter-shaped value (method set has Next and Close — engine.RowIter
// implementations and *snapk.Rows alike) owns it and must discharge the
// obligation by calling Close on it, returning it, or passing it to
// another function/struct that takes ownership. An iterator that is
// only ever Next()ed leaks its pipeline — under the parallel executor
// that means leaked fragment goroutines, not just memory.
//
// The hand-off rule is deliberately conservative: any use other than a
// method call or a reassignment (argument position, return value,
// composite literal, channel send) counts as an ownership transfer, so
// the analyzer never second-guesses constructor chains like
// newFilterIter(in) that document "closing the result closes in".
var IterClose = &Analyzer{
	Name: "iterclose",
	Doc:  "row iterators obtained from a call must be closed, returned, or handed off",
	Run:  runIterClose,
}

func runIterClose(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl) {
		type obligation struct {
			pos  token.Pos
			name string
			typ  types.Type
		}
		obtained := make(map[types.Object]obligation)
		discharged := make(map[types.Object]bool)

		// Pass 1: every `x := f(...)` (or `x, err := f(...)`) whose
		// bound variable is RowIter-shaped creates a close obligation.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if _, ok := rhs.(*ast.CallExpr); !ok {
					continue
				}
				obj := p.objOf(id)
				if obj == nil || !isClosable(obj.Type()) {
					continue
				}
				if _, seen := obtained[obj]; !seen {
					obtained[obj] = obligation{pos: id.Pos(), name: id.Name, typ: obj.Type()}
				}
			}
			return true
		})
		if len(obtained) == 0 {
			return
		}

		// Pass 2: classify every later use of the obligated variables.
		walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, ok := obtained[obj]; !ok {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			parent := stack[len(stack)-1]
			switch pn := parent.(type) {
			case *ast.SelectorExpr:
				if pn.X != id {
					return true
				}
				if call, ok := callOf(stack[:len(stack)-1]); ok && call.Fun == pn {
					if pn.Sel.Name == "Close" {
						discharged[obj] = true
					}
					// Other method calls (Next, Schema) neither close
					// nor transfer ownership.
					return true
				}
				// Method value (e.g. t.Cleanup(it.Close)) escapes.
				discharged[obj] = true
			case *ast.AssignStmt:
				for _, lhs := range pn.Lhs {
					if lhs == ast.Expr(id) {
						return true // reassignment, not a consuming use
					}
				}
				discharged[obj] = true // appears on an RHS: aliased away
			default:
				// Argument, return, composite literal, send, comparison…
				// — ownership is assumed to transfer.
				discharged[obj] = true
			}
			return true
		})

		for obj, ob := range obtained {
			if !discharged[obj] {
				p.Reportf(ob.pos,
					"%s (%s) is obtained here but never closed, returned, or handed off — call Close on every path",
					ob.name, types.TypeString(ob.typ, types.RelativeTo(p.Pkg.Types)))
			}
		}
	})
}

// callOf returns the nearest enclosing CallExpr, if the stack's top is
// one.
func callOf(stack []ast.Node) (*ast.CallExpr, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return call, ok
}
