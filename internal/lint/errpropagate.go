package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrPropagate reports drains that drop the stream's terminal error.
// Under the error-carrying iterator protocol an iterator that returns
// EOS may have been truncated by a propagated failure (a canceled
// context, a tripped governor limit, an exchange producer error); the
// only way to distinguish a truncated stream from a complete one is to
// consult Err after the drain. Two shapes violate that:
//
//   - a loop that pulls an iterator-typed local (Next or NextBatch) in
//     a function that never consults that iterator's error — by calling
//     its Err method, passing it to engine.IterErr/MaterializeErr, or
//     handing it off to something that can;
//   - any call to Materialize, which documents that it discards the
//     stream error — MaterializeErr is the drain for every site where a
//     truncated result must not pass for a complete one.
//
// Like iterclose, the check tracks local variables and parameters only:
// struct-field drains inside iterator implementations delegate through
// their own Err method, which the snapdebug CheckErrChecked assertion
// exercises at run time.
var ErrPropagate = &Analyzer{
	Name: "errpropagate",
	Doc:  "a drain to end-of-stream must consult the iterator's Err; Materialize discards it",
	Run:  runErrPropagate,
}

func runErrPropagate(p *Pass) {
	p.funcBodies(func(decl *ast.FuncDecl) {
		// Shape 2: Materialize calls on iterator-shaped arguments.
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "Materialize" || len(call.Args) != 1 {
				return true
			}
			if isClosable(p.typeOf(call.Args[0])) {
				p.Reportf(call.Pos(),
					"Materialize discards the stream's terminal error — use MaterializeErr and propagate it, or suppress with a justification")
			}
			return true
		})

		// Shape 1, pass 1: every loop pulling an iterator-typed local
		// creates an err obligation on that variable. The method receiver
		// is exempt: a NextBatch that loops over its own Next is
		// self-delegation — the stream error stays on the same object, and
		// consulting it is the caller's obligation, not the method's.
		var recv types.Object
		if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			recv = p.Pkg.Info.Defs[decl.Recv.List[0].Names[0]]
		}
		type drain struct {
			pos  token.Pos
			name string
		}
		drained := make(map[types.Object]drain)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			var loop ast.Node
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loop = n
			default:
				return true
			}
			ast.Inspect(loop, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Next" && sel.Sel.Name != "NextBatch") {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.objOf(id)
				if obj == nil || obj == recv || !isClosable(obj.Type()) {
					return true
				}
				if _, seen := drained[obj]; !seen {
					drained[obj] = drain{pos: loop.Pos(), name: id.Name}
				}
				return true
			})
			return true
		})
		if len(drained) == 0 {
			return
		}

		// Shape 1, pass 2: classify every use of the obligated variables.
		// An Err method call discharges; so does any use that hands the
		// iterator to other code (argument — engine.IterErr(it) and helper
		// calls alike — return value, composite literal, aliasing), since
		// responsibility for the stream error travels with the iterator.
		// Other method calls (Next, Close, Schema) discharge nothing.
		checked := make(map[types.Object]bool)
		walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, ok := drained[obj]; !ok || len(stack) == 0 {
				return true
			}
			switch pn := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				if pn.X != ast.Expr(id) {
					return true
				}
				if call, ok := callOf(stack[:len(stack)-1]); ok && call.Fun == pn {
					if pn.Sel.Name == "Err" {
						checked[obj] = true
					}
					return true
				}
				checked[obj] = true // method value escapes
			case *ast.AssignStmt:
				for _, lhs := range pn.Lhs {
					if lhs == ast.Expr(id) {
						return true // reassignment, not a consuming use
					}
				}
				checked[obj] = true // appears on an RHS: aliased away
			default:
				checked[obj] = true
			}
			return true
		})

		for obj, d := range drained {
			if !checked[obj] {
				p.Reportf(d.pos,
					"%s is drained here but its stream error is never consulted — a truncated stream would pass for complete; check %s.Err() or engine.IterErr(%s) after the loop",
					d.name, d.name, d.name)
			}
		}
	})
}

// calleeName returns the called function's bare name (for both f(...)
// and pkg.f(...) / recv.f(...) shapes), or "".
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
