package sqlfe

import (
	"fmt"
	"strconv"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/tuple"
)

// Deparse renders a parsed statement back into the middleware's SQL
// dialect. The output is a normal form — fully parenthesized
// expressions, canonical keyword casing, comma joins before JOIN
// clauses — chosen so that Parse(Deparse(st)) always succeeds and
// deparses to the same string again (the fixed-point property the
// FuzzParse harness enforces).
func Deparse(st *Statement) string {
	var b strings.Builder
	if st.Snapshot {
		b.WriteString("SEQ VT (")
		deparseSet(&b, st.Query)
		b.WriteString(")")
	} else {
		deparseSet(&b, st.Query)
	}
	return b.String()
}

func deparseSet(b *strings.Builder, se setExpr) {
	switch n := se.(type) {
	case setOp:
		deparseSet(b, n.l)
		if n.op == "UNION" {
			b.WriteString(" UNION ALL ")
		} else {
			b.WriteString(" EXCEPT ALL ")
		}
		// The parser is left-associative; a set operation on the right
		// only re-parses into the same shape when parenthesized.
		if _, nested := n.r.(setOp); nested {
			b.WriteString("(")
			deparseSet(b, n.r)
			b.WriteString(")")
		} else {
			deparseSet(b, n.r)
		}
	case *selectStmt:
		deparseSelect(b, n)
	}
}

func deparseSelect(b *strings.Builder, st *selectStmt) {
	b.WriteString("SELECT ")
	if st.star {
		b.WriteString("*")
	}
	for i, item := range st.items {
		if i > 0 {
			b.WriteString(", ")
		}
		deparseItem(b, item)
	}
	b.WriteString(" FROM ")
	for i, fi := range st.from {
		if i > 0 {
			b.WriteString(", ")
		}
		deparseFromItem(b, fi)
	}
	for _, jc := range st.joins {
		b.WriteString(" JOIN ")
		deparseFromItem(b, jc.item)
		b.WriteString(" ON ")
		b.WriteString(DeparseExpr(jc.on))
	}
	if st.where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(DeparseExpr(st.where))
	}
	if len(st.groupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(st.groupBy, ", "))
	}
}

func deparseItem(b *strings.Builder, item selectItem) {
	if item.agg != nil {
		if item.agg.star {
			b.WriteString("count(*)")
		} else {
			fmt.Fprintf(b, "%s(%s)", strings.TrimSuffix(item.agg.fn.String(), "(*)"), DeparseExpr(item.agg.arg))
		}
	} else {
		b.WriteString(DeparseExpr(item.expr))
	}
	if item.as != "" {
		b.WriteString(" AS ")
		b.WriteString(item.as)
	}
}

func deparseFromItem(b *strings.Builder, fi fromItem) {
	if fi.sub != nil {
		b.WriteString("(")
		deparseSet(b, fi.sub.Query)
		b.WriteString(") AS ")
		b.WriteString(fi.alias)
		return
	}
	b.WriteString(fi.table)
	if fi.alias != "" {
		b.WriteString(" AS ")
		b.WriteString(fi.alias)
	}
	if fi.periodBegin != "" || fi.periodEnd != "" {
		fmt.Fprintf(b, " WITH PERIOD (%s, %s)", fi.periodBegin, fi.periodEnd)
	}
}

// DeparseExpr renders a scalar expression in re-parseable SQL: binary
// operations fully parenthesized, string literals with doubled quotes,
// floats in fixed-point notation (the lexer accepts no exponents).
func DeparseExpr(e algebra.Expr) string {
	switch ex := e.(type) {
	case algebra.ColRef:
		return ex.Name
	case algebra.Const:
		return deparseConst(ex.Val)
	case algebra.BinOp:
		return fmt.Sprintf("(%s %s %s)", DeparseExpr(ex.L), binOpSQL(ex.Op), DeparseExpr(ex.R))
	case algebra.Not:
		return fmt.Sprintf("NOT (%s)", DeparseExpr(ex.E))
	case algebra.IsNullExpr:
		return fmt.Sprintf("(%s IS NULL)", DeparseExpr(ex.E))
	default:
		return e.String()
	}
}

func binOpSQL(op algebra.BinOpKind) string {
	switch op {
	case algebra.OpEq:
		return "="
	case algebra.OpNe:
		return "<>"
	case algebra.OpLt:
		return "<"
	case algebra.OpLe:
		return "<="
	case algebra.OpGt:
		return ">"
	case algebra.OpGe:
		return ">="
	case algebra.OpAnd:
		return "AND"
	case algebra.OpOr:
		return "OR"
	case algebra.OpAdd:
		return "+"
	case algebra.OpSub:
		return "-"
	case algebra.OpMul:
		return "*"
	default:
		return "/"
	}
}

func deparseConst(v tuple.Value) string {
	switch v.Kind() {
	case tuple.KindString:
		return "'" + strings.ReplaceAll(v.String(), "'", "''") + "'"
	case tuple.KindFloat:
		// Fixed-point, no exponent (the lexer accepts none). Force a
		// decimal point: a whole float rendered bare would re-parse on
		// the integer path, where values beyond int64 overflow.
		s := strconv.FormatFloat(v.AsFloat(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case tuple.KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	case tuple.KindNull:
		return "NULL"
	default:
		return v.String()
	}
}
