package sqlfe

import (
	"fmt"
	"strings"

	"snapk/internal/algebra"
)

// Translate turns a parsed statement into an algebra query, resolving
// names against the catalog. The resulting tree is what REWR consumes.
func Translate(st *Statement, cat algebra.Catalog) (algebra.Query, error) {
	q, err := translateSet(st.Query, cat)
	if err != nil {
		return nil, err
	}
	// Validate the full tree once so callers get errors at translation
	// time rather than at execution time.
	if _, err := algebra.OutSchema(q, cat); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseAndTranslate is the one-call frontend entry point.
func ParseAndTranslate(sql string, cat algebra.Catalog) (algebra.Query, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Translate(st, cat)
}

func translateSet(se setExpr, cat algebra.Catalog) (algebra.Query, error) {
	switch n := se.(type) {
	case setOp:
		l, err := translateSet(n.l, cat)
		if err != nil {
			return nil, err
		}
		r, err := translateSet(n.r, cat)
		if err != nil {
			return nil, err
		}
		if n.op == "UNION" {
			return algebra.Union{L: l, R: r}, nil
		}
		return algebra.Diff{L: l, R: r}, nil
	case *selectStmt:
		return translateSelect(n, cat)
	default:
		return nil, fmt.Errorf("sqlfe: unknown set expression %T", se)
	}
}

func translateSelect(st *selectStmt, cat algebra.Catalog) (algebra.Query, error) {
	q, err := translateFrom(st, cat)
	if err != nil {
		return nil, err
	}
	if st.where != nil {
		q = algebra.Select{Pred: st.where, In: q}
	}
	if st.star {
		return q, nil
	}
	hasAgg := false
	for _, item := range st.items {
		if item.agg != nil {
			hasAgg = true
			break
		}
	}
	if hasAgg || len(st.groupBy) > 0 {
		return translateAggregate(st, q, cat)
	}
	return translateProjection(st, q)
}

// translateFrom builds the join tree of the FROM clause, renaming columns
// of aliased items to alias.column.
func translateFrom(st *selectStmt, cat algebra.Catalog) (algebra.Query, error) {
	build := func(fi fromItem) (algebra.Query, error) {
		var base algebra.Query
		if fi.sub != nil {
			sub, err := translateSet(fi.sub.Query, cat)
			if err != nil {
				return nil, err
			}
			base = sub
		} else {
			base = algebra.Rel{Name: fi.table}
		}
		if fi.alias == "" {
			return base, nil
		}
		schema, err := algebra.OutSchema(base, cat)
		if err != nil {
			return nil, err
		}
		exprs := make([]algebra.NamedExpr, schema.Arity())
		for i, c := range schema.Cols {
			exprs[i] = algebra.NamedExpr{Name: fi.alias + "." + c, E: algebra.Col(c)}
		}
		return algebra.Project{Exprs: exprs, In: base}, nil
	}
	q, err := build(st.from[0])
	if err != nil {
		return nil, err
	}
	for _, fi := range st.from[1:] {
		r, err := build(fi)
		if err != nil {
			return nil, err
		}
		// Comma joins: the cross product; the WHERE clause carries the
		// join conditions, as in the paper's workload queries.
		q = algebra.Join{L: q, R: r, Pred: algebra.BoolC(true)}
	}
	for _, jc := range st.joins {
		r, err := build(jc.item)
		if err != nil {
			return nil, err
		}
		q = algebra.Join{L: q, R: r, Pred: jc.on}
	}
	return q, nil
}

// outputName picks the output column name of a select item: the AS alias,
// the last path segment of a plain column reference, or a synthesized
// name for computed expressions.
func outputName(item selectItem, pos int) string {
	if item.as != "" {
		return item.as
	}
	if item.agg != nil {
		return strings.TrimSuffix(item.agg.fn.String(), "(*)")
	}
	if c, ok := item.expr.(algebra.ColRef); ok {
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			return c.Name[i+1:]
		}
		return c.Name
	}
	return fmt.Sprintf("col%d", pos+1)
}

func translateProjection(st *selectStmt, in algebra.Query) (algebra.Query, error) {
	exprs := make([]algebra.NamedExpr, len(st.items))
	seen := map[string]bool{}
	for i, item := range st.items {
		name := outputName(item, i)
		if seen[name] {
			return nil, fmt.Errorf("sqlfe: duplicate output column %q; disambiguate with AS", name)
		}
		seen[name] = true
		exprs[i] = algebra.NamedExpr{Name: name, E: item.expr}
	}
	return algebra.Project{Exprs: exprs, In: in}, nil
}

func translateAggregate(st *selectStmt, in algebra.Query, cat algebra.Catalog) (algebra.Query, error) {
	schema, err := algebra.OutSchema(in, cat)
	if err != nil {
		return nil, err
	}
	groupSet := map[string]bool{}
	for _, g := range st.groupBy {
		if schema.Index(g) < 0 {
			return nil, fmt.Errorf("sqlfe: unknown GROUP BY column %q", g)
		}
		groupSet[g] = true
	}
	// Pre-project computed aggregate arguments into synthetic columns so
	// the Agg node only ever aggregates plain columns.
	var pre []algebra.NamedExpr
	for _, g := range st.groupBy {
		pre = append(pre, algebra.NamedExpr{Name: g, E: algebra.Col(g)})
	}
	var aggSpecs []algebra.AggSpec
	type outCol struct {
		name string // output name
		from string // column in the Agg output
	}
	var outs []outCol
	seen := map[string]bool{}
	synth := 0
	for i, item := range st.items {
		name := outputName(item, i)
		if seen[name] {
			return nil, fmt.Errorf("sqlfe: duplicate output column %q; disambiguate with AS", name)
		}
		seen[name] = true
		if item.agg == nil {
			c, ok := item.expr.(algebra.ColRef)
			if !ok || !groupSet[c.Name] {
				return nil, fmt.Errorf("sqlfe: non-aggregate select item %q must be a GROUP BY column", name)
			}
			outs = append(outs, outCol{name: name, from: c.Name})
			continue
		}
		spec := algebra.AggSpec{Fn: item.agg.fn, As: fmt.Sprintf("_agg%d", len(aggSpecs))}
		if !item.agg.star {
			if c, ok := item.agg.arg.(algebra.ColRef); ok && schema.Index(c.Name) >= 0 {
				spec.Arg = c.Name
				pre = append(pre, algebra.NamedExpr{Name: c.Name, E: item.agg.arg})
			} else {
				col := fmt.Sprintf("_aggarg%d", synth)
				synth++
				pre = append(pre, algebra.NamedExpr{Name: col, E: item.agg.arg})
				spec.Arg = col
			}
		}
		aggSpecs = append(aggSpecs, spec)
		outs = append(outs, outCol{name: name, from: spec.As})
	}
	// Deduplicate the pre-projection columns (a column may be both
	// grouped on and aggregated over).
	dedup := pre[:0]
	preSeen := map[string]bool{}
	for _, ne := range pre {
		if preSeen[ne.Name] {
			continue
		}
		preSeen[ne.Name] = true
		dedup = append(dedup, ne)
	}
	var agg algebra.Query = algebra.Agg{
		GroupBy: st.groupBy,
		Aggs:    aggSpecs,
		In:      algebra.Project{Exprs: dedup, In: in},
	}
	// Final projection: select order and display names.
	finals := make([]algebra.NamedExpr, len(outs))
	for i, oc := range outs {
		finals[i] = algebra.NamedExpr{Name: oc.name, E: algebra.Col(oc.from)}
	}
	return algebra.Project{Exprs: finals, In: agg}, nil
}
