package sqlfe

import (
	"fmt"
	"strconv"
	"strings"

	"snapk/internal/algebra"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// Statement is a parsed snapshot query: a set-operation tree of SELECT
// blocks. Snapshot reports whether the query was wrapped in SEQ VT (...);
// unwrapped queries are also interpreted under snapshot semantics, since
// the middleware's registered tables are period relations.
type Statement struct {
	Query    setExpr
	Snapshot bool
}

// setExpr is a set-operation tree over SELECT blocks.
type setExpr interface{ setNode() }

// setOp combines two subqueries with UNION ALL or EXCEPT ALL.
type setOp struct {
	op   string // "UNION" or "EXCEPT"
	l, r setExpr
}

// selectStmt is one SELECT ... FROM ... [WHERE ...] [GROUP BY ...] block.
type selectStmt struct {
	items   []selectItem
	star    bool
	from    []fromItem
	joins   []joinClause
	where   algebra.Expr
	groupBy []string
}

type selectItem struct {
	expr algebra.Expr // nil when agg is set
	agg  *aggItem
	as   string
}

type aggItem struct {
	fn   krel.AggFunc
	star bool
	arg  algebra.Expr
}

type fromItem struct {
	table string
	sub   *Statement // non-nil for derived tables
	alias string
	// periodBegin/periodEnd record the WITH PERIOD (b, e) declaration of
	// the middleware dialect; the engine stores periods natively, so the
	// names are accepted for compatibility and recorded, not remapped.
	periodBegin, periodEnd string
}

type joinClause struct {
	item fromItem
	on   algebra.Expr
}

func (setOp) setNode()       {}
func (*selectStmt) setNode() {}

// Parse parses one snapshot SQL statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlfe: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (*Statement, error) {
	if p.accept(tokKeyword, "SEQ") {
		if _, err := p.expect(tokKeyword, "VT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		q, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &Statement{Query: q, Snapshot: true}, nil
	}
	q, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	return &Statement{Query: q, Snapshot: false}, nil
}

func (p *parser) parseSetExpr() (setExpr, error) {
	l, err := p.parseSelectOrParen()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokKeyword, "UNION"):
			op = "UNION"
		case p.at(tokKeyword, "EXCEPT"):
			op = "EXCEPT"
		default:
			return l, nil
		}
		p.next()
		if _, err := p.expect(tokKeyword, "ALL"); err != nil {
			return nil, fmt.Errorf("%v (snapshot bag semantics requires UNION ALL / EXCEPT ALL)", err)
		}
		r, err := p.parseSelectOrParen()
		if err != nil {
			return nil, err
		}
		l = setOp{op: op, l: l, r: r}
	}
}

func (p *parser) parseSelectOrParen() (setExpr, error) {
	if p.accept(tokSymbol, "(") {
		q, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*selectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &selectStmt{}
	if p.accept(tokSymbol, "*") {
		st.star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			st.items = append(st.items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	st.from = append(st.from, first)
	for {
		if p.accept(tokSymbol, ",") {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			st.from = append(st.from, fi)
			continue
		}
		if p.accept(tokKeyword, "JOIN") {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.joins = append(st.joins, joinClause{item: fi, on: on})
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseQualifiedName()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, name)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if fn, ok := aggKeyword(p.cur()); ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		p.next() // agg keyword
		p.next() // (
		item := selectItem{agg: &aggItem{fn: fn}}
		if p.accept(tokSymbol, "*") {
			if fn != krel.Count {
				return selectItem{}, p.errf("* argument is only valid for count")
			}
			item.agg.fn = krel.CountStar
			item.agg.star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return selectItem{}, err
			}
			item.agg.arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return selectItem{}, err
		}
		item.as = p.parseOptionalAlias()
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{expr: e, as: p.parseOptionalAlias()}, nil
}

func aggKeyword(t token) (krel.AggFunc, bool) {
	if t.kind != tokKeyword {
		return 0, false
	}
	switch t.text {
	case "COUNT":
		return krel.Count, true
	case "SUM":
		return krel.Sum, true
	case "AVG":
		return krel.Avg, true
	case "MIN":
		return krel.Min, true
	case "MAX":
		return krel.Max, true
	}
	return 0, false
}

func (p *parser) parseOptionalAlias() string {
	if p.accept(tokKeyword, "AS") {
		if p.at(tokIdent, "") {
			return p.next().text
		}
		return ""
	}
	if p.at(tokIdent, "") {
		return p.next().text
	}
	return ""
}

func (p *parser) parseFromItem() (fromItem, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseSetExpr()
		if err != nil {
			return fromItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return fromItem{}, err
		}
		p.accept(tokKeyword, "AS")
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return fromItem{}, p.errf("derived table requires an alias")
		}
		return fromItem{sub: &Statement{Query: sub}, alias: alias.text}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return fromItem{}, err
	}
	fi := fromItem{table: name.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return fromItem{}, err
		}
		fi.alias = a.text
	} else if p.at(tokIdent, "") {
		fi.alias = p.next().text
	}
	if p.accept(tokKeyword, "WITH") {
		if _, err := p.expect(tokKeyword, "PERIOD"); err != nil {
			return fromItem{}, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return fromItem{}, err
		}
		b, err := p.expect(tokIdent, "")
		if err != nil {
			return fromItem{}, err
		}
		if _, err := p.expect(tokSymbol, ","); err != nil {
			return fromItem{}, err
		}
		e, err := p.expect(tokIdent, "")
		if err != nil {
			return fromItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return fromItem{}, err
		}
		fi.periodBegin, fi.periodEnd = b.text, e.text
	}
	return fi, nil
}

func (p *parser) parseQualifiedName() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.text
	for p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		name += "." + t2.text
	}
	return name, nil
}

// Expression parsing: precedence OR < AND < NOT < comparison < additive
// < multiplicative < unary.

func (p *parser) parseExpr() (algebra.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (algebra.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = algebra.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (algebra.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = algebra.And(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (algebra.Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return algebra.Not{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (algebra.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		var e algebra.Expr = algebra.IsNullExpr{E: l}
		if neg {
			e = algebra.Not{E: e}
		}
		return e, nil
	}
	if p.cur().kind == tokOp {
		switch p.cur().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.next().text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			switch op {
			case "=":
				return algebra.Eq(l, r), nil
			case "<>":
				return algebra.Ne(l, r), nil
			case "<":
				return algebra.Lt(l, r), nil
			case "<=":
				return algebra.Le(l, r), nil
			case ">":
				return algebra.Gt(l, r), nil
			default:
				return algebra.Ge(l, r), nil
			}
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (algebra.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = algebra.Add(l, r)
		} else {
			l = algebra.Sub(l, r)
		}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (algebra.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tokSymbol && p.cur().text == "*") ||
		(p.cur().kind == tokOp && p.cur().text == "/") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			l = algebra.Mul(l, r)
		} else {
			l = algebra.Div(l, r)
		}
	}
	return l, nil
}

func (p *parser) parseUnary() (algebra.Expr, error) {
	if p.cur().kind == tokOp && p.cur().text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return algebra.Sub(algebra.IntC(0), e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (algebra.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return algebra.FloatC(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return algebra.IntC(n), nil
	case t.kind == tokString:
		p.next()
		return algebra.Const{Val: tuple.String_(t.text)}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return algebra.BoolC(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return algebra.BoolC(false), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return algebra.NullC(), nil
	case t.kind == tokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		return algebra.Col(name), nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}
