package sqlfe_test

import (
	"strings"
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/rewrite"
	"snapk/internal/semiring"
	"snapk/internal/sqlfe"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)
var alg = telement.NewMAlgebra[int64](semiring.N, dom)

func str(s string) tuple.Value { return tuple.String_(s) }

func exampleDB() *engine.DB {
	db := engine.NewDB(dom)
	works := db.CreateTable("works", tuple.NewSchema("name", "skill"))
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	works.Append(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	assign := db.CreateTable("assign", tuple.NewSchema("mach", "skill"))
	assign.Append(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	assign.Append(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	assign.Append(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return db
}

func run(t *testing.T, db *engine.DB, sql string) *engine.Table {
	t.Helper()
	q, err := sqlfe.ParseAndTranslate(sql, db)
	if err != nil {
		t.Fatalf("translate %q: %v", sql, err)
	}
	res, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res
}

// TestQondutySQL runs Example 1.1 through the full middleware stack:
// SQL → algebra → REWR → engine, checking Figure 1b.
func TestQondutySQL(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`)
	want := engine.NewTable(tuple.NewSchema("cnt"))
	want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(0, 3), 1)
	want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(3, 8), 1)
	want.Append(tuple.Tuple{tuple.Int(2)}, interval.New(8, 10), 1)
	want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(10, 16), 1)
	want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(16, 18), 1)
	want.Append(tuple.Tuple{tuple.Int(1)}, interval.New(18, 20), 1)
	want.Append(tuple.Tuple{tuple.Int(0)}, interval.New(20, 24), 1)
	if !engine.EqualAsPeriodRelations(got, want, alg) {
		t.Fatalf("Qonduty =\n%s\nwant\n%s", got, want)
	}
}

// TestQskillreqSQL runs Example 1.2 (EXCEPT ALL) end to end.
func TestQskillreqSQL(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (
		SELECT skill FROM assign
		EXCEPT ALL
		SELECT skill FROM works
	)`)
	want := engine.NewTable(tuple.NewSchema("skill"))
	want.Append(tuple.Tuple{str("SP")}, interval.New(6, 8), 1)
	want.Append(tuple.Tuple{str("SP")}, interval.New(10, 12), 1)
	want.Append(tuple.Tuple{str("NS")}, interval.New(3, 8), 1)
	if !engine.EqualAsPeriodRelations(got, want, alg) {
		t.Fatalf("Qskillreq =\n%s\nwant\n%s", got, want)
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (
		SELECT w.name AS name, a.mach AS mach
		FROM works w JOIN assign a ON w.skill = a.skill
	)`)
	rel := got.ToPeriodRelation(alg)
	ann := rel.Annotation(tuple.Tuple{str("Ann"), str("M1")})
	if ann.IsZero() {
		t.Fatalf("Ann/M1 missing: %v", rel)
	}
	if got.DataSchema().Arity() != 2 {
		t.Fatalf("schema = %v", got.Schema)
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	db := exampleDB()
	viaJoin := run(t, db, `SEQ VT (SELECT w.name AS n FROM works w JOIN assign a ON w.skill = a.skill)`)
	viaComma := run(t, db, `SEQ VT (SELECT w.name AS n FROM works w, assign a WHERE w.skill = a.skill)`)
	if !engine.EqualAsPeriodRelations(viaJoin, viaComma, alg) {
		t.Fatal("comma join with WHERE must equal explicit JOIN")
	}
}

func TestGroupBy(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)`)
	rel := got.ToPeriodRelation(alg)
	// (SP, 2) during [8, 10).
	ann := rel.Annotation(tuple.Tuple{str("SP"), tuple.Int(2)})
	if !ann.Equal(alg.Singleton(interval.New(8, 10), 1)) {
		t.Fatalf("(SP,2) = %v", ann)
	}
}

func TestAggregateOverExpression(t *testing.T) {
	db := engine.NewDB(dom)
	tb := db.CreateTable("t", tuple.NewSchema("price", "discount"))
	tb.Append(tuple.Tuple{tuple.Int(100), tuple.Float(0.1)}, interval.New(0, 10), 1)
	tb.Append(tuple.Tuple{tuple.Int(200), tuple.Float(0.5)}, interval.New(5, 15), 1)
	got := run(t, db, `SEQ VT (SELECT sum(price * (1 - discount)) AS revenue FROM t)`)
	rel := got.ToPeriodRelation(alg)
	// [5,10): 100*0.9 + 200*0.5 = 190.
	ann := rel.Annotation(tuple.Tuple{tuple.Float(190)})
	if !ann.Equal(alg.Singleton(interval.New(5, 10), 1)) {
		t.Fatalf("revenue 190 = %v\nfull: %v", ann, rel)
	}
	// Gap rows before 0? Domain [0,24): sum is NULL on [15,24).
	annNull := rel.Annotation(tuple.Tuple{tuple.Null})
	if !annNull.Equal(alg.Singleton(interval.New(15, 24), 1)) {
		t.Fatalf("NULL revenue = %v", annNull)
	}
}

func TestSelectStar(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (SELECT * FROM works)`)
	if got.DataSchema().Arity() != 2 || got.Len() != 4 {
		t.Fatalf("SELECT * = %d rows, schema %v", got.Len(), got.Schema)
	}
}

func TestDerivedTable(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (
		SELECT s.skill AS skill, count(*) AS cnt
		FROM (SELECT skill FROM works WHERE name <> 'Joe') AS s
		GROUP BY s.skill
	)`)
	rel := got.ToPeriodRelation(alg)
	if rel.Annotation(tuple.Tuple{str("SP"), tuple.Int(2)}).IsZero() {
		t.Fatalf("derived-table aggregation wrong: %v", rel)
	}
}

func TestWithPeriodClause(t *testing.T) {
	db := exampleDB()
	// The dialect accepts the period-attribute declaration of §9.
	got := run(t, db, `SEQ VT (SELECT name FROM works WITH PERIOD (p_from, p_to) WHERE skill = 'SP')`)
	if got.Len() == 0 {
		t.Fatal("WITH PERIOD query returned nothing")
	}
}

func TestUnionAllSQL(t *testing.T) {
	db := exampleDB()
	got := run(t, db, `SEQ VT (SELECT skill FROM works UNION ALL SELECT skill FROM assign)`)
	rel := got.ToPeriodRelation(alg)
	// At time 8: SP ×2 from works, SP ×2 from assign.
	ann := rel.Annotation(tuple.Tuple{str("SP")})
	if alg.Timeslice(ann, 8) != 4 {
		t.Fatalf("SP at 8 = %d, want 4", alg.Timeslice(ann, 8))
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	db := engine.NewDB(dom)
	tb := db.CreateTable("t", tuple.NewSchema("a", "b"))
	tb.Append(tuple.Tuple{tuple.Int(6), tuple.Int(2)}, interval.New(0, 5), 1)
	tb.Append(tuple.Tuple{tuple.Int(1), tuple.Int(9)}, interval.New(0, 5), 1)
	got := run(t, db, `SEQ VT (SELECT a + b * 2 AS v FROM t WHERE a >= 2 AND NOT (b > 5) OR a < 0)`)
	rel := got.ToPeriodRelation(alg)
	if rel.Annotation(tuple.Tuple{tuple.Int(10)}).IsZero() {
		t.Fatalf("expected 6+2*2=10: %v", rel)
	}
	if rel.Len() != 1 {
		t.Fatalf("unexpected rows: %v", rel)
	}
}

func TestIsNull(t *testing.T) {
	db := engine.NewDB(dom)
	tb := db.CreateTable("t", tuple.NewSchema("a"))
	tb.Append(tuple.Tuple{tuple.Null}, interval.New(0, 5), 1)
	tb.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
	if got := run(t, db, `SEQ VT (SELECT a FROM t WHERE a IS NULL)`); got.Len() != 1 {
		t.Fatalf("IS NULL returned %d rows", got.Len())
	}
	if got := run(t, db, `SEQ VT (SELECT a FROM t WHERE a IS NOT NULL)`); got.Len() != 1 {
		t.Fatalf("IS NOT NULL returned %d rows", got.Len())
	}
}

func TestStringEscapes(t *testing.T) {
	db := engine.NewDB(dom)
	tb := db.CreateTable("t", tuple.NewSchema("s"))
	tb.Append(tuple.Tuple{str("it's")}, interval.New(0, 5), 1)
	if got := run(t, db, `SEQ VT (SELECT s FROM t WHERE s = 'it''s')`); got.Len() != 1 {
		t.Fatal("escaped quote literal broken")
	}
}

func TestNegativeNumbersAndFloats(t *testing.T) {
	db := engine.NewDB(dom)
	tb := db.CreateTable("t", tuple.NewSchema("a"))
	tb.Append(tuple.Tuple{tuple.Int(-3)}, interval.New(0, 5), 1)
	if got := run(t, db, `SEQ VT (SELECT a FROM t WHERE a = -3)`); got.Len() != 1 {
		t.Fatal("negative literal broken")
	}
	if got := run(t, db, `SEQ VT (SELECT a FROM t WHERE a < -2.5)`); got.Len() != 1 {
		t.Fatal("float literal broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t trailing nonsense ,`,
		`SEQ (SELECT a FROM t)`,
		`SEQ VT SELECT a FROM t`,
		`SELECT a FROM t UNION SELECT a FROM t`,   // requires ALL
		`SELECT a FROM t EXCEPT SELECT a FROM t`,  // requires ALL
		`SELECT 'unterminated FROM t`,             // bad string
		`SELECT sum(*) FROM t`,                    // * only for count
		`SELECT a FROM (SELECT a FROM t)`,         // derived table needs alias
		`SELECT a FROM t WITH (p, q)`,             // WITH requires PERIOD
		`SELECT @ FROM t`,                         // bad char
		`SELECT a, a FROM t`,                      // duplicate output
		`SELECT count(*) AS c, 1 + 1 AS c FROM t`, // duplicate output
	}
	for _, sql := range bad {
		if _, err := sqlfe.Parse(sql); err == nil {
			// Some of these only fail at translation.
			db := engine.NewDB(dom)
			db.CreateTable("t", tuple.NewSchema("a"))
			if _, terr := sqlfe.ParseAndTranslate(sql, db); terr == nil {
				t.Errorf("no error for %q", sql)
			}
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	db := engine.NewDB(dom)
	db.CreateTable("t", tuple.NewSchema("a", "b"))
	bad := []string{
		`SELECT zzz FROM t`,
		`SELECT a FROM nope`,
		`SELECT a, count(*) AS c FROM t`,              // a not grouped
		`SELECT a, count(*) AS c FROM t GROUP BY zzz`, // unknown group col
		`SELECT a + 1, count(*) AS c FROM t GROUP BY a`,
	}
	for _, sql := range bad {
		if _, err := sqlfe.ParseAndTranslate(sql, db); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestStatementWithoutSeqVT(t *testing.T) {
	st, err := sqlfe.Parse(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot {
		t.Error("plain SELECT should not be marked Snapshot")
	}
	st2, err := sqlfe.Parse(`SEQ VT (SELECT a FROM t)`)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Snapshot {
		t.Error("SEQ VT block must be marked Snapshot")
	}
}

func TestGroupByDistinctStyle(t *testing.T) {
	// GROUP BY without aggregates acts as snapshot-temporal DISTINCT.
	db := exampleDB()
	got := run(t, db, `SEQ VT (SELECT skill FROM works GROUP BY skill)`)
	rel := got.ToPeriodRelation(alg)
	ann := rel.Annotation(tuple.Tuple{str("SP")})
	if alg.Timeslice(ann, 8) != 1 {
		t.Fatalf("DISTINCT-style group by: SP at 8 = %d, want 1", alg.Timeslice(ann, 8))
	}
}

func TestQueryStringRendering(t *testing.T) {
	db := exampleDB()
	q, err := sqlfe.ParseAndTranslate(`SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')`, db)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "works") || !strings.Contains(s, "count(*)") {
		t.Errorf("query rendering = %q", s)
	}
	_ = algebra.BaseRelations(q)
}
