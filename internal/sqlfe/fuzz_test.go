package sqlfe_test

import (
	"testing"

	"snapk/internal/sqlfe"
	"snapk/internal/tuple"
)

// fuzzCatalog resolves the two-table schema the fuzz harness translates
// against; unknown relations error (never panic), which is part of what
// the fuzzer checks.
type fuzzCatalog struct{}

func (fuzzCatalog) RelationSchema(name string) (tuple.Schema, error) {
	switch name {
	case "r", "s":
		return tuple.NewSchema("a", "b"), nil
	default:
		return tuple.Schema{}, errUnknown(name)
	}
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown relation " + string(e) }

// seedStatements is the fuzz corpus: one statement per grammar
// production, so coverage starts at the full surface.
var seedStatements = []string{
	"SELECT * FROM r",
	"SELECT a, b FROM r WHERE a = 1",
	"SEQ VT (SELECT count(*) AS cnt FROM r)",
	"SELECT a AS x, b + 1 AS y FROM r WHERE NOT (a IS NULL) AND b <> 2",
	"SELECT r1.a, s1.b FROM r AS r1 JOIN s AS s1 ON r1.a = s1.a",
	"SELECT a FROM r UNION ALL SELECT a FROM s",
	"SELECT a FROM r EXCEPT ALL (SELECT a FROM s UNION ALL SELECT b FROM r)",
	"SELECT sum(b) AS t, a FROM r GROUP BY a",
	"SELECT min(a * 2) AS m FROM (SELECT a, b FROM s WHERE b >= 0.5) AS sub",
	"SELECT a FROM r WITH PERIOD (vb, ve) WHERE a < 3 OR b > 1",
	"SELECT 'it''s' AS q, TRUE AS t, NULL AS n FROM r",
	"SELECT a / 2 - 1 AS h FROM r, s",
	// Regression: a float constant beyond int64 must deparse with a
	// decimal point, or the re-parse overflows on the integer path.
	"SELECT a FROM r WHERE b > 99999999999999999999.5",
	"SELECT a FROM r WHERE b > 5.0",
}

// FuzzParse drives the SQL frontend with arbitrary input: the parser
// must never panic, any statement it accepts must deparse to SQL that
// re-parses, the deparse of the re-parse must be identical (fixed
// point), and translation against a catalog must never panic either.
func FuzzParse(f *testing.F) {
	for _, s := range seedStatements {
		f.Add(s)
	}
	f.Add("SELECT")
	f.Add("((((")
	f.Add("SELECT * FROM r WHERE 'unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		st, err := sqlfe.Parse(input) // must not panic
		if err != nil {
			return
		}
		sql := sqlfe.Deparse(st)
		st2, err := sqlfe.Parse(sql)
		if err != nil {
			t.Fatalf("deparse of accepted input does not re-parse\ninput:   %q\ndeparse: %q\nerror:   %v", input, sql, err)
		}
		if sql2 := sqlfe.Deparse(st2); sql2 != sql {
			t.Fatalf("deparse is not a fixed point\ninput: %q\nfirst:  %q\nsecond: %q", input, sql, sql2)
		}
		// Translation may reject the statement (unknown tables/columns)
		// but must never panic; when both translations succeed they must
		// produce the same algebra tree.
		q1, err1 := sqlfe.Translate(st, fuzzCatalog{})
		q2, err2 := sqlfe.Translate(st2, fuzzCatalog{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("translation of original and round-tripped statement disagree\ninput: %q\nerr1: %v\nerr2: %v", input, err1, err2)
		}
		if err1 == nil && q1.String() != q2.String() {
			t.Fatalf("round trip changed the translated query\ninput: %q\nq1: %s\nq2: %s", input, q1, q2)
		}
	})
}

// TestDeparseRoundTrip pins the fixed-point property on the seed corpus
// so it is enforced by the ordinary test suite, not only under -fuzz.
func TestDeparseRoundTrip(t *testing.T) {
	for _, s := range seedStatements {
		st, err := sqlfe.Parse(s)
		if err != nil {
			t.Fatalf("seed %q does not parse: %v", s, err)
		}
		sql := sqlfe.Deparse(st)
		st2, err := sqlfe.Parse(sql)
		if err != nil {
			t.Fatalf("deparse of %q = %q does not re-parse: %v", s, sql, err)
		}
		if sql2 := sqlfe.Deparse(st2); sql2 != sql {
			t.Fatalf("deparse of %q is not a fixed point: %q then %q", s, sql, sql2)
		}
	}
}

// TestDeparseTranslatesSame: for seed statements that translate, the
// round-tripped statement must translate to the identical algebra tree.
func TestDeparseTranslatesSame(t *testing.T) {
	for _, s := range seedStatements {
		st, err := sqlfe.Parse(s)
		if err != nil {
			t.Fatalf("seed %q does not parse: %v", s, err)
		}
		q1, err := sqlfe.Translate(st, fuzzCatalog{})
		if err != nil {
			continue // seeds may reference columns the catalog lacks
		}
		st2, err := sqlfe.Parse(sqlfe.Deparse(st))
		if err != nil {
			t.Fatalf("deparse of %q does not re-parse: %v", s, err)
		}
		q2, err := sqlfe.Translate(st2, fuzzCatalog{})
		if err != nil {
			t.Fatalf("round trip of %q no longer translates: %v", s, err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("round trip of %q changed the query:\n%s\n%s", s, q1, q2)
		}
	}
}
