// Package sqlfe is the SQL frontend of the middleware: it parses the
// snapshot-semantics SQL dialect of Section 9 — standard SELECT queries,
// optionally wrapped in a SEQ VT (...) block, with UNION ALL / EXCEPT ALL
// set operations and the aggregation functions of RA_agg — and translates
// statements into algebra.Query trees that the rewriter reduces to plans
// over period relations.
package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . *
	tokOp     // = <> < <= > >= + - /
)

// token is one lexical token with its position for error reporting.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"IS": true, "JOIN": true, "ON": true, "UNION": true, "EXCEPT": true,
	"ALL": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "TRUE": true, "FALSE": true, "SEQ": true, "VT": true,
	"WITH": true, "PERIOD": true,
}

// lex tokenizes the input, returning an error with position on invalid
// characters or unterminated strings.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlfe: unterminated string literal at position %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=' || c == '+' || c == '-' || c == '/':
			toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
			i++
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokOp, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		default:
			return nil, fmt.Errorf("sqlfe: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
