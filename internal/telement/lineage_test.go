package telement

import (
	"testing"

	"snapk/internal/interval"
	"snapk/internal/semiring"
)

// TestLineagePeriodSemiring exercises Kᵀ over the which-provenance
// semiring: annotations become interval-indexed supporting-tuple sets.
func TestLineagePeriodSemiring(t *testing.T) {
	a := NewAlgebra[semiring.LineageValue](semiring.L, dom)
	w1 := a.Singleton(interval.New(3, 10), semiring.LineageOf("w1"))
	w2 := a.Singleton(interval.New(8, 16), semiring.LineageOf("w2"))

	// Projection (+): during the overlap both inputs support the tuple.
	sum := a.Plus(w1, w2)
	if got := a.Timeslice(sum, 9); got != semiring.LineageOf("w1", "w2") {
		t.Fatalf("τ_9 = %v", got)
	}
	if got := a.Timeslice(sum, 4); got != semiring.LineageOf("w1") {
		t.Fatalf("τ_4 = %v", got)
	}
	if got := a.Timeslice(sum, 20); got != semiring.L.Zero() {
		t.Fatalf("τ_20 = %v", got)
	}
	// Join (·): provenance of joint derivations, only on the overlap.
	prod := a.Times(w1, w2)
	if prod.NumSegs() != 1 || prod.Segs()[0].Iv != interval.New(8, 10) {
		t.Fatalf("product = %v", prod)
	}
	if prod.Segs()[0].Val != semiring.LineageOf("w1", "w2") {
		t.Fatalf("product lineage = %v", prod.Segs()[0].Val)
	}
	// Coalescing merges intervals with identical provenance.
	z := a.Coalesce([]Seg[semiring.LineageValue]{
		{Iv: interval.New(0, 5), Val: semiring.LineageOf("x")},
		{Iv: interval.New(5, 9), Val: semiring.LineageOf("x")},
		{Iv: interval.New(9, 12), Val: semiring.LineageOf("y")},
	})
	if z.NumSegs() != 2 {
		t.Fatalf("coalesce = %v", z)
	}
	// The bottom element ⊥ (absent) never appears as a stored segment.
	zero := a.Coalesce([]Seg[semiring.LineageValue]{
		{Iv: interval.New(0, 5), Val: semiring.L.Zero()},
	})
	if !zero.IsZero() {
		t.Fatalf("⊥ segments must vanish: %v", zero)
	}
}
