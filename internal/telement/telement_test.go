package telement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snapk/internal/interval"
	"snapk/internal/semiring"
)

var dom = interval.NewDomain(0, 24)

func nAlg() MAlgebra[int64] { return NewMAlgebra[int64](semiring.N, dom) }
func bAlg() MAlgebra[bool]  { return NewMAlgebra[bool](semiring.B, dom) }

func seg(b, e interval.Time, v int64) Seg[int64] {
	return Seg[int64]{Iv: interval.New(b, e), Val: v}
}

// randomElement builds a random normalized temporal ℕ-element.
func randomElement(r *rand.Rand, a MAlgebra[int64]) Element[int64] {
	n := r.Intn(5)
	pairs := make([]Seg[int64], 0, n)
	for i := 0; i < n; i++ {
		b := dom.Min + int64(r.Intn(int(dom.Size()-1)))
		e := b + 1 + int64(r.Intn(int(dom.Max-b)))
		pairs = append(pairs, seg(b, e, int64(r.Intn(4))))
	}
	return a.Coalesce(pairs)
}

func TestExample51And52CoalesceUniqueness(t *testing.T) {
	a := nAlg()
	// T1 = {[03,09) ↦ 3, [18,20) ↦ 2} and the snapshot-equivalent T2, T3
	// from Example 5.2 must all coalesce to the same normal form.
	t1 := a.Coalesce([]Seg[int64]{seg(3, 9, 3), seg(18, 20, 2)})
	t2 := a.Coalesce([]Seg[int64]{seg(3, 9, 1), seg(3, 6, 2), seg(6, 9, 2), seg(18, 20, 2)})
	t3 := a.Coalesce([]Seg[int64]{seg(3, 5, 3), seg(5, 9, 3), seg(18, 20, 2)})
	if !t1.Equal(t2) || !t1.Equal(t3) {
		t.Fatalf("equivalent elements have different normal forms:\n%v\n%v\n%v", t1, t2, t3)
	}
	if t1.NumSegs() != 2 {
		t.Fatalf("normal form = %v, want 2 segments", t1)
	}
}

func TestExample53NCoalesce(t *testing.T) {
	a := nAlg()
	// T30k = {[3,10) ↦ 1, [3,13) ↦ 1}; C_N = {[3,10) ↦ 2, [10,13) ↦ 1}.
	got := a.Coalesce([]Seg[int64]{seg(3, 10, 1), seg(3, 13, 1)})
	want := a.Coalesce([]Seg[int64]{seg(3, 10, 2), seg(10, 13, 1)})
	if !got.Equal(want) {
		t.Fatalf("C_N = %v, want %v", got, want)
	}
}

func TestExample53BCoalesce(t *testing.T) {
	b := bAlg()
	// Same relation under 𝔹: C_B({[3,10)↦true, [3,13)↦true}) = {[3,13)↦true}.
	got := b.Coalesce([]Seg[bool]{
		{Iv: interval.New(3, 10), Val: true},
		{Iv: interval.New(3, 13), Val: true},
	})
	if got.NumSegs() != 1 || got.Segs()[0].Iv != interval.New(3, 13) {
		t.Fatalf("C_B = %v, want {[3,13) -> true}", got)
	}
}

func TestTimesliceOverlapSemantics(t *testing.T) {
	a := nAlg()
	// §5.1: annotation at T is the sum over intervals containing T.
	e := a.Coalesce([]Seg[int64]{seg(0, 5, 2), seg(4, 5, 1)})
	if got := a.Timeslice(e, 4); got != 3 {
		t.Fatalf("τ_4 = %d, want 3", got)
	}
	if got := a.Timeslice(e, 3); got != 2 {
		t.Fatalf("τ_3 = %d, want 2", got)
	}
	if got := a.Timeslice(e, 5); got != 0 {
		t.Fatalf("τ_5 = %d, want 0", got)
	}
}

func TestLemma51Idempotence(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := randomElement(r, a)
		again := a.Coalesce(e.Segs())
		if !e.Equal(again) {
			t.Fatalf("C_K not idempotent: %v vs %v", e, again)
		}
	}
}

func TestLemma51UniquenessAndEquivalencePreservation(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		// Build raw pairs, coalesce, and verify per-timepoint equivalence.
		n := r.Intn(6)
		pairs := make([]Seg[int64], 0, n)
		for j := 0; j < n; j++ {
			b := int64(r.Intn(23))
			e := b + 1 + int64(r.Intn(int(24-b-1))+1)
			if e > 24 {
				e = 24
			}
			pairs = append(pairs, seg(b, e, int64(r.Intn(3))))
		}
		e := a.Coalesce(pairs)
		for tp := dom.Min; tp < dom.Max; tp++ {
			want := int64(0)
			for _, p := range pairs {
				if p.Iv.Contains(tp) {
					want += p.Val
				}
			}
			if got := a.Timeslice(e, tp); got != want {
				t.Fatalf("τ_%d = %d, want %d (pairs %v, coalesced %v)", tp, got, want, pairs, e)
			}
		}
	}
}

func TestNormalFormInvariants(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		e := randomElement(r, a)
		segs := e.Segs()
		for j, s := range segs {
			if !s.Iv.Valid() || s.Val == 0 {
				t.Fatalf("invalid segment %v in %v", s, e)
			}
			if j > 0 {
				prev := segs[j-1]
				if prev.Iv.End > s.Iv.Begin {
					t.Fatalf("overlapping segments in %v", e)
				}
				if prev.Iv.End == s.Iv.Begin && prev.Val == s.Val {
					t.Fatalf("unmerged adjacent equal segments in %v", e)
				}
			}
		}
	}
}

func TestExample61ProjectionSum(t *testing.T) {
	a := nAlg()
	// T1 + T2 from Example 6.1.
	t1 := a.Coalesce([]Seg[int64]{seg(3, 10, 1), seg(18, 20, 1)})
	t2 := a.Coalesce([]Seg[int64]{seg(8, 16, 1)})
	got := a.Plus(t1, t2)
	want := a.Coalesce([]Seg[int64]{seg(3, 8, 1), seg(8, 10, 2), seg(10, 16, 1), seg(18, 20, 1)})
	if !got.Equal(want) {
		t.Fatalf("T1 + T2 = %v, want %v", got, want)
	}
}

func TestSection71MonusExample(t *testing.T) {
	a := nAlg()
	// Qskillreq annotation computation for result tuple (SP) from §7.1.
	lhs := a.Plus(
		a.Singleton(interval.New(3, 12), 1),
		a.Singleton(interval.New(6, 14), 1),
	)
	rhs := a.PlusAll(
		a.Singleton(interval.New(3, 10), 1),
		a.Singleton(interval.New(8, 16), 1),
		a.Singleton(interval.New(18, 20), 1),
	)
	wantLHS := a.Coalesce([]Seg[int64]{seg(3, 6, 1), seg(6, 12, 2), seg(12, 14, 1)})
	if !lhs.Equal(wantLHS) {
		t.Fatalf("lhs = %v, want %v", lhs, wantLHS)
	}
	wantRHS := a.Coalesce([]Seg[int64]{seg(3, 8, 1), seg(8, 10, 2), seg(10, 16, 1), seg(18, 20, 1)})
	if !rhs.Equal(wantRHS) {
		t.Fatalf("rhs = %v, want %v", rhs, wantRHS)
	}
	got := a.Monus(lhs, rhs)
	want := a.Coalesce([]Seg[int64]{seg(6, 8, 1), seg(10, 12, 1)})
	if !got.Equal(want) {
		t.Fatalf("monus = %v, want %v", got, want)
	}
}

func TestZeroOneSingleton(t *testing.T) {
	a := nAlg()
	if !a.Zero().IsZero() {
		t.Error("Zero not zero")
	}
	one := a.One()
	if one.NumSegs() != 1 || one.Segs()[0].Iv != dom.All() || one.Segs()[0].Val != 1 {
		t.Errorf("One = %v", one)
	}
	if !a.Singleton(interval.Interval{}, 5).IsZero() {
		t.Error("Singleton of invalid interval should be Zero")
	}
	if !a.Singleton(interval.New(1, 2), 0).IsZero() {
		t.Error("Singleton of 0K should be Zero")
	}
	if got := a.Zero().String(); got != "{}" {
		t.Errorf("Zero String = %q", got)
	}
	if got := a.Singleton(interval.New(3, 10), 2).String(); got != "{[3, 10) -> 2}" {
		t.Errorf("String = %q", got)
	}
}

func TestChangepoints(t *testing.T) {
	a := nAlg()
	// Example 5.3: C_N(T30k) over domain [0,24) has changepoints 0 (Tmin),
	// 3, 10, and 13.
	e := a.Coalesce([]Seg[int64]{seg(3, 10, 1), seg(3, 13, 1)})
	got := a.Changepoints(e)
	want := []interval.Time{0, 3, 10, 13}
	if len(got) != len(want) {
		t.Fatalf("CP = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CP = %v, want %v", got, want)
		}
	}
	// A segment ending at Tmax contributes no changepoint at Tmax.
	e2 := a.Singleton(interval.New(20, 24), 1)
	got2 := a.Changepoints(e2)
	want2 := []interval.Time{0, 20}
	if len(got2) != len(want2) || got2[0] != 0 || got2[1] != 20 {
		t.Fatalf("CP = %v, want %v", got2, want2)
	}
}

// TestPeriodSemiringLaws checks the semiring axioms of ℕᵀ (Thm 6.2) on
// randomly generated normalized elements.
func TestPeriodSemiringLaws(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(17))
	sample := make([]Element[int64], 0, 8)
	sample = append(sample, a.Zero(), a.One())
	for i := 0; i < 6; i++ {
		sample = append(sample, randomElement(r, a))
	}
	for _, x := range sample {
		if !a.Plus(x, a.Zero()).Equal(x) {
			t.Fatalf("x + 0 != x for %v", x)
		}
		if !a.Times(x, a.One()).Equal(x) {
			t.Fatalf("x · 1 != x for %v: %v", x, a.Times(x, a.One()))
		}
		if !a.Times(x, a.Zero()).IsZero() {
			t.Fatalf("x · 0 != 0 for %v", x)
		}
		for _, y := range sample {
			if !a.Plus(x, y).Equal(a.Plus(y, x)) {
				t.Fatalf("+ not commutative: %v, %v", x, y)
			}
			if !a.Times(x, y).Equal(a.Times(y, x)) {
				t.Fatalf("· not commutative: %v, %v", x, y)
			}
			for _, z := range sample {
				if !a.Plus(a.Plus(x, y), z).Equal(a.Plus(x, a.Plus(y, z))) {
					t.Fatalf("+ not associative")
				}
				if !a.Times(a.Times(x, y), z).Equal(a.Times(x, a.Times(y, z))) {
					t.Fatalf("· not associative")
				}
				lhs := a.Times(x, a.Plus(y, z))
				rhs := a.Plus(a.Times(x, y), a.Times(x, z))
				if !lhs.Equal(rhs) {
					t.Fatalf("distributivity fails: x=%v y=%v z=%v: %v vs %v", x, y, z, lhs, rhs)
				}
			}
		}
	}
}

// TestTimesliceHomomorphism checks Thm 6.3/7.2: τ_T is an (m-)semiring
// homomorphism Kᵀ → K, pointwise for every T.
func TestTimesliceHomomorphism(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		x, y := randomElement(r, a), randomElement(r, a)
		sum, prod, diff := a.Plus(x, y), a.Times(x, y), a.Monus(x, y)
		for tp := dom.Min; tp < dom.Max; tp++ {
			xv, yv := a.Timeslice(x, tp), a.Timeslice(y, tp)
			if got := a.Timeslice(sum, tp); got != xv+yv {
				t.Fatalf("τ(x+y) = %d, want %d at %d", got, xv+yv, tp)
			}
			if got := a.Timeslice(prod, tp); got != xv*yv {
				t.Fatalf("τ(x·y) = %d, want %d at %d", got, xv*yv, tp)
			}
			want := semiring.N.Monus(xv, yv)
			if got := a.Timeslice(diff, tp); got != want {
				t.Fatalf("τ(x−y) = %d, want %d at %d (x=%v y=%v)", got, want, tp, x, y)
			}
		}
	}
	// Zero/one preservation.
	if a.Timeslice(a.Zero(), 5) != 0 || a.Timeslice(a.One(), 5) != 1 {
		t.Fatal("τ does not preserve 0/1")
	}
}

// TestLemma61PushCoalesce verifies C(x +KP y) = C(C(x) +KP y) on random
// inputs by checking that coalescing raw pairs equals coalescing after
// normalizing one side first.
func TestLemma61PushCoalesce(t *testing.T) {
	a := nAlg()
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		raw1 := make([]Seg[int64], r.Intn(4))
		raw2 := make([]Seg[int64], r.Intn(4))
		for j := range raw1 {
			b := int64(r.Intn(20))
			raw1[j] = seg(b, b+1+int64(r.Intn(4)), int64(r.Intn(3)))
		}
		for j := range raw2 {
			b := int64(r.Intn(20))
			raw2[j] = seg(b, b+1+int64(r.Intn(4)), int64(r.Intn(3)))
		}
		direct := a.Coalesce(append(append([]Seg[int64]{}, raw1...), raw2...))
		viaNorm := a.Plus(a.Coalesce(raw1), a.Coalesce(raw2))
		if !direct.Equal(viaNorm) {
			t.Fatalf("Lemma 6.1 violated:\nraw1=%v raw2=%v\ndirect=%v viaNorm=%v", raw1, raw2, direct, viaNorm)
		}
	}
}

func TestMonusLeq(t *testing.T) {
	a := nAlg()
	x := a.Coalesce([]Seg[int64]{seg(3, 10, 2)})
	y := a.Coalesce([]Seg[int64]{seg(3, 10, 2), seg(12, 14, 1)})
	if !a.Leq(x, y) {
		t.Error("x should be ≤ y")
	}
	if a.Leq(y, x) {
		t.Error("y should not be ≤ x")
	}
	if !a.Monus(x, y).IsZero() {
		t.Error("x − y should be 0 when x ≤ y")
	}
	// Natural-order characterization: x ≤ y ⇒ y = x + (y − x).
	if !a.Plus(x, a.Monus(y, x)).Equal(y) {
		t.Error("y != x + (y − x)")
	}
}

func TestBooleanCoalesceMatchesClassicCoalescing(t *testing.T) {
	b := bAlg()
	// Overlapping + adjacent true intervals merge into one maximal interval.
	e := b.Coalesce([]Seg[bool]{
		{Iv: interval.New(1, 5), Val: true},
		{Iv: interval.New(4, 8), Val: true},
		{Iv: interval.New(8, 12), Val: true},
		{Iv: interval.New(15, 17), Val: true},
	})
	if e.NumSegs() != 2 {
		t.Fatalf("B-coalesce = %v, want 2 maximal intervals", e)
	}
	if e.Segs()[0].Iv != interval.New(1, 12) || e.Segs()[1].Iv != interval.New(15, 17) {
		t.Fatalf("B-coalesce = %v", e)
	}
}

// Property: Plus/Times/Monus results are always in normal form.
func TestOperationsPreserveNormalForm(t *testing.T) {
	a := nAlg()
	checkNF := func(e Element[int64]) bool {
		segs := e.Segs()
		for j, s := range segs {
			if !s.Iv.Valid() || s.Val == 0 {
				return false
			}
			if j > 0 && (segs[j-1].Iv.End > s.Iv.Begin ||
				(segs[j-1].Iv.End == s.Iv.Begin && segs[j-1].Val == s.Val)) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randomElement(r, a), randomElement(r, a)
		return checkNF(a.Plus(x, y)) && checkNF(a.Times(x, y)) && checkNF(a.Monus(x, y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
