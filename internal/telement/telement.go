// Package telement implements temporal K-elements (Section 5 of Dignös et
// al., PVLDB 2019): functions from intervals to semiring values that record
// how a tuple's annotation changes over time, together with the
// K-coalescing normal form (Def 5.2/5.3) and the period-semiring
// operations +Kᵀ, ·Kᵀ, −Kᵀ, 0Kᵀ, 1Kᵀ (Def 6.1, Thm 7.1).
//
// A normalized temporal K-element is kept as a sorted slice of segments:
// pairwise disjoint intervals, none annotated 0K, and adjacent intervals
// carrying different values — exactly the image of the C_K operator. All
// semiring operations are computed interval-wise with endpoint sweeps
// rather than per time point, which is what makes the logical model
// practical (cf. the discussion after Thm 7.1).
package telement

import (
	"fmt"
	"sort"
	"strings"

	"snapk/internal/interval"
	"snapk/internal/semiring"
)

// Seg is one interval-annotation pair of a temporal K-element.
type Seg[K comparable] struct {
	Iv  interval.Interval
	Val K
}

// Element is a temporal K-element in K-coalesced normal form. The zero
// value is the temporal zero 0Kᵀ (every interval mapped to 0K).
// Elements must only be combined under the Algebra that produced them.
type Element[K comparable] struct {
	segs []Seg[K]
}

// Segs returns the normalized segments. Callers must not modify the
// returned slice.
func (e Element[K]) Segs() []Seg[K] { return e.segs }

// IsZero reports whether the element maps every interval to 0K.
func (e Element[K]) IsZero() bool { return len(e.segs) == 0 }

// NumSegs returns the number of maximal constant intervals.
func (e Element[K]) NumSegs() int { return len(e.segs) }

// Equal reports segment-wise equality. On normalized elements this
// coincides with snapshot-equivalence (Lemma 5.1, uniqueness).
func (e Element[K]) Equal(other Element[K]) bool {
	if len(e.segs) != len(other.segs) {
		return false
	}
	for i := range e.segs {
		if e.segs[i] != other.segs[i] {
			return false
		}
	}
	return true
}

// String renders the element like {[3, 10) -> 1, [18, 20) -> 1}.
func (e Element[K]) String() string {
	if e.IsZero() {
		return "{}"
	}
	parts := make([]string, len(e.segs))
	for i, s := range e.segs {
		parts[i] = fmt.Sprintf("%s -> %v", s.Iv, s.Val)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Algebra bundles a base semiring K with a time domain 𝕋 and provides the
// temporal-element operations of the period semiring Kᵀ. The domain is
// needed because 1Kᵀ maps [Tmin, Tmax) to 1K and because annotation
// changepoints are defined relative to Tmin/Tmax (Def 5.2).
type Algebra[K comparable] struct {
	K   semiring.Semiring[K]
	Dom interval.Domain
}

// NewAlgebra returns the temporal-element algebra for semiring k over dom.
func NewAlgebra[K comparable](k semiring.Semiring[K], dom interval.Domain) Algebra[K] {
	return Algebra[K]{K: k, Dom: dom}
}

// Zero returns 0Kᵀ.
func (a Algebra[K]) Zero() Element[K] { return Element[K]{} }

// One returns 1Kᵀ: [Tmin, Tmax) ↦ 1K.
func (a Algebra[K]) One() Element[K] {
	return Element[K]{segs: []Seg[K]{{Iv: a.Dom.All(), Val: a.K.One()}}}
}

// Singleton returns the coalesced element {iv ↦ k}; it is Zero if k = 0K.
func (a Algebra[K]) Singleton(iv interval.Interval, k K) Element[K] {
	if !iv.Valid() || k == a.K.Zero() {
		return Element[K]{}
	}
	return Element[K]{segs: []Seg[K]{{Iv: iv, Val: k}}}
}

// Coalesce applies C_K (Def 5.3) to an arbitrary — possibly overlapping,
// unsorted, zero-containing — set of interval-annotation pairs, summing
// overlapping annotations pointwise and producing maximal constant
// intervals. This is the generalized coalescing of Section 5.2; for
// K = 𝔹 it coincides with classic set-semantics coalescing.
func (a Algebra[K]) Coalesce(pairs []Seg[K]) Element[K] {
	zero := a.K.Zero()
	live := make([]Seg[K], 0, len(pairs))
	for _, p := range pairs {
		if p.Iv.Valid() && p.Val != zero {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return Element[K]{}
	}
	// Sort by begin so the active window can be advanced monotonically.
	sort.Slice(live, func(i, j int) bool { return live[i].Iv.Less(live[j].Iv) })

	// Elementary segments lie between consecutive endpoints.
	pts := make([]interval.Time, 0, 2*len(live))
	for _, p := range live {
		pts = append(pts, p.Iv.Begin, p.Iv.End)
	}
	pts = interval.DedupTimes(pts)

	segs := make([]Seg[K], 0, len(pts))
	lo := 0 // first pair whose interval may still cover the current segment
	for i := 0; i+1 < len(pts); i++ {
		seg := interval.Interval{Begin: pts[i], End: pts[i+1]}
		for lo < len(live) && live[lo].Iv.End <= seg.Begin {
			lo++
		}
		sum := zero
		for j := lo; j < len(live) && live[j].Iv.Begin <= seg.Begin; j++ {
			if live[j].Iv.Contains(seg.Begin) {
				sum = a.K.Plus(sum, live[j].Val)
			}
		}
		if sum == zero {
			continue
		}
		segs = appendMerged(segs, Seg[K]{Iv: seg, Val: sum})
	}
	return Element[K]{segs: segs}
}

// appendMerged appends s to segs, merging it into the previous segment if
// they are adjacent and carry the same value (the maximality condition of
// CPI, Def 5.2).
func appendMerged[K comparable](segs []Seg[K], s Seg[K]) []Seg[K] {
	if n := len(segs); n > 0 && segs[n-1].Iv.End == s.Iv.Begin && segs[n-1].Val == s.Val {
		segs[n-1].Iv.End = s.Iv.End
		return segs
	}
	return append(segs, s)
}

// Timeslice returns τ_T(e), the annotation valid at time t (Section 5.1).
// On a normalized element at most one segment contains t.
func (a Algebra[K]) Timeslice(e Element[K], t interval.Time) K {
	i := sort.Search(len(e.segs), func(i int) bool { return e.segs[i].Iv.End > t })
	if i < len(e.segs) && e.segs[i].Iv.Contains(t) {
		return e.segs[i].Val
	}
	return a.K.Zero()
}

// SnapshotEquivalent reports whether x ~ y, i.e. τ_T(x) = τ_T(y) for all
// T ∈ 𝕋. On normalized elements this is structural equality (Lemma 5.1),
// which is how it is implemented.
func (a Algebra[K]) SnapshotEquivalent(x, y Element[K]) bool { return x.Equal(y) }

// Changepoints returns CP(e) restricted to the domain: Tmin plus every
// time point where the annotation differs from its predecessor (Def 5.2).
func (a Algebra[K]) Changepoints(e Element[K]) []interval.Time {
	cps := []interval.Time{a.Dom.Min}
	for _, s := range e.segs {
		if s.Iv.Begin > a.Dom.Min {
			cps = append(cps, s.Iv.Begin)
		}
		if s.Iv.End < a.Dom.Max {
			cps = append(cps, s.Iv.End)
		}
	}
	return interval.DedupTimes(cps)
}

// Plus returns x +Kᵀ y = C_K(x +KP y) (Def 6.1), computed by a merge
// sweep over the union of both elements' endpoints.
func (a Algebra[K]) Plus(x, y Element[K]) Element[K] {
	if x.IsZero() {
		return y
	}
	if y.IsZero() {
		return x
	}
	pairs := make([]Seg[K], 0, len(x.segs)+len(y.segs))
	pairs = append(pairs, x.segs...)
	pairs = append(pairs, y.segs...)
	return a.Coalesce(pairs)
}

// PlusAll sums all elements under +Kᵀ in a single sweep.
func (a Algebra[K]) PlusAll(es ...Element[K]) Element[K] {
	total := 0
	for _, e := range es {
		total += len(e.segs)
	}
	pairs := make([]Seg[K], 0, total)
	for _, e := range es {
		pairs = append(pairs, e.segs...)
	}
	return a.Coalesce(pairs)
}

// Times returns x ·Kᵀ y = C_K(x ·KP y) (Def 6.1). Because normalized
// inputs are pairwise disjoint, every time point is covered by at most one
// segment per side, so the pointwise product is obtained by intersecting
// segments with a two-pointer sweep.
func (a Algebra[K]) Times(x, y Element[K]) Element[K] {
	if x.IsZero() || y.IsZero() {
		return Element[K]{}
	}
	zero := a.K.Zero()
	segs := make([]Seg[K], 0, len(x.segs)+len(y.segs))
	i, j := 0, 0
	for i < len(x.segs) && j < len(y.segs) {
		xs, ys := x.segs[i], y.segs[j]
		if iv, ok := xs.Iv.Intersect(ys.Iv); ok {
			if v := a.K.Times(xs.Val, ys.Val); v != zero {
				segs = appendMerged(segs, Seg[K]{Iv: iv, Val: v})
			}
		}
		if xs.Iv.End <= ys.Iv.End {
			i++
		} else {
			j++
		}
	}
	return Element[K]{segs: segs}
}

// MAlgebra is an Algebra whose base semiring has a well-defined monus, so
// the period semiring Kᵀ is an m-semiring too (Thm 7.1).
type MAlgebra[K comparable] struct {
	Algebra[K]
	MK semiring.MSemiring[K]
}

// NewMAlgebra returns the m-semiring temporal-element algebra for k.
func NewMAlgebra[K comparable](k semiring.MSemiring[K], dom interval.Domain) MAlgebra[K] {
	return MAlgebra[K]{Algebra: Algebra[K]{K: k, Dom: dom}, MK: k}
}

// Monus returns x −Kᵀ y = C_K(x −KP y) (Thm 7.1). Instead of singleton
// intervals it aligns both inputs on the union of their endpoints, where
// the pointwise monus is constant per aligned segment — the efficient
// normalization described after Thm 7.1.
func (m MAlgebra[K]) Monus(x, y Element[K]) Element[K] {
	if x.IsZero() {
		return Element[K]{}
	}
	zero := m.K.Zero()
	pts := make([]interval.Time, 0, 2*(len(x.segs)+len(y.segs)))
	for _, s := range x.segs {
		pts = append(pts, s.Iv.Begin, s.Iv.End)
	}
	for _, s := range y.segs {
		pts = append(pts, s.Iv.Begin, s.Iv.End)
	}
	pts = interval.DedupTimes(pts)

	segs := make([]Seg[K], 0, len(x.segs))
	xi, yi := 0, 0
	for i := 0; i+1 < len(pts); i++ {
		seg := interval.Interval{Begin: pts[i], End: pts[i+1]}
		for xi < len(x.segs) && x.segs[xi].Iv.End <= seg.Begin {
			xi++
		}
		for yi < len(y.segs) && y.segs[yi].Iv.End <= seg.Begin {
			yi++
		}
		xv, yv := zero, zero
		if xi < len(x.segs) && x.segs[xi].Iv.Contains(seg.Begin) {
			xv = x.segs[xi].Val
		}
		if yi < len(y.segs) && y.segs[yi].Iv.Contains(seg.Begin) {
			yv = y.segs[yi].Val
		}
		if v := m.MK.Monus(xv, yv); v != zero {
			segs = appendMerged(segs, Seg[K]{Iv: seg, Val: v})
		}
	}
	return Element[K]{segs: segs}
}

// Leq reports x ≤Kᵀ y in the natural order of Kᵀ, which holds iff
// τ_T(x) ≤K τ_T(y) for every T (see the proof sketch of Thm 7.1). It is
// decided on the aligned segments rather than per time point.
func (m MAlgebra[K]) Leq(x, y Element[K]) bool {
	// x ≤ y  ⇔  x − y = 0 would be wrong in general m-semirings, but
	// pointwise it is exactly: ∀T τ(x) ≤K τ(y). Align and compare.
	pts := make([]interval.Time, 0, 2*(len(x.segs)+len(y.segs)))
	for _, s := range x.segs {
		pts = append(pts, s.Iv.Begin, s.Iv.End)
	}
	for _, s := range y.segs {
		pts = append(pts, s.Iv.Begin, s.Iv.End)
	}
	pts = interval.DedupTimes(pts)
	for i := 0; i+1 < len(pts); i++ {
		t := pts[i]
		if !m.MK.Leq(m.Timeslice(x, t), m.Timeslice(y, t)) {
			return false
		}
	}
	return true
}
