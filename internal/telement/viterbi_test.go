package telement

import (
	"testing"

	"snapk/internal/interval"
	"snapk/internal/semiring"
)

// TestViterbiPeriodSemiring exercises the Kᵀ construction on the
// probability semiring: annotations become interval-indexed confidence
// histories, the §11 "probabilistic + temporal" combination.
func TestViterbiPeriodSemiring(t *testing.T) {
	a := NewAlgebra[float64](semiring.V, dom)
	// A sensor reading trusted at 0.9 during [0,10) and re-observed at
	// 0.6 during [5, 15): the most likely support during the overlap is
	// max(0.9, 0.6) = 0.9.
	x := a.Singleton(interval.New(0, 10), 0.9)
	y := a.Singleton(interval.New(5, 15), 0.6)
	sum := a.Plus(x, y)
	if got := a.Timeslice(sum, 7); got != 0.9 {
		t.Fatalf("τ_7 = %v, want 0.9", got)
	}
	if got := a.Timeslice(sum, 12); got != 0.6 {
		t.Fatalf("τ_12 = %v, want 0.6", got)
	}
	// A join multiplies confidences on the overlap only.
	prod := a.Times(x, y)
	if prod.NumSegs() != 1 || prod.Segs()[0].Iv != interval.New(5, 10) {
		t.Fatalf("product = %v", prod)
	}
	if got := prod.Segs()[0].Val; got != 0.9*0.6 {
		t.Fatalf("joint confidence = %v", got)
	}
	// Coalescing merges adjacent equal confidences.
	z := a.Coalesce([]Seg[float64]{
		{Iv: interval.New(0, 5), Val: 0.5},
		{Iv: interval.New(5, 9), Val: 0.5},
	})
	if z.NumSegs() != 1 || z.Segs()[0].Iv != interval.New(0, 9) {
		t.Fatalf("coalesce = %v", z)
	}
}
