package csvio

import (
	"strings"
	"testing"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

const worksCSV = `name,skill,begin,end
Ann,SP,3,10
Joe,NS,8,16
Sam,SP,8,16
Ann,SP,18,20
`

func TestReadTable(t *testing.T) {
	tbl, err := ReadTable(strings.NewReader(worksCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if !tbl.DataSchema().Equal(tuple.NewSchema("name", "skill")) {
		t.Fatalf("schema = %v", tbl.DataSchema())
	}
	if got := tbl.Interval(tbl.Rows[0]); got != interval.New(3, 10) {
		t.Fatalf("interval = %v", got)
	}
	if tbl.Rows[0][0].AsString() != "Ann" {
		t.Fatalf("row = %v", tbl.Rows[0])
	}
}

func TestValueInference(t *testing.T) {
	csv := "a,b,c,d,e,begin,end\n42,1.5,true,hello,,0,5\n"
	tbl, err := ReadTable(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if row[0].AsInt() != 42 {
		t.Error("int inference")
	}
	if row[1].AsFloat() != 1.5 {
		t.Error("float inference")
	}
	if !row[2].AsBool() {
		t.Error("bool inference")
	}
	if row[3].AsString() != "hello" {
		t.Error("string inference")
	}
	if !row[4].IsNull() {
		t.Error("null inference")
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",                         // no header
		"a,begin\n",                // too few columns
		"a,begin,end\n1,2\n",       // short record
		"a,begin,end\n1,x,5\n",     // bad begin
		"a,begin,end\n1,0,x\n",     // bad end
		"a,begin,end\n1,5,5\n",     // empty period
		"a,a,begin,end\n1,2,0,5\n", // duplicate column
	}
	for i, s := range bad {
		if _, err := ReadTable(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestRoundtrip(t *testing.T) {
	tbl, err := ReadTable(strings.NewReader(worksCSV))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reading back: %v\n%s", err, b.String())
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("roundtrip lost rows: %d vs %d", back.Len(), tbl.Len())
	}
	a, c := tbl.Clone(), back.Clone()
	a.Sort()
	c.Sort()
	for i := range a.Rows {
		if a.Rows[i].Key() != c.Rows[i].Key() {
			t.Fatalf("row %d differs after roundtrip", i)
		}
	}
}

func TestWriteNulls(t *testing.T) {
	tbl := engine.NewTable(tuple.NewSchema("x"))
	tbl.Append(tuple.Tuple{tuple.Null}, interval.New(0, 5), 1)
	var b strings.Builder
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ",0,5") {
		t.Fatalf("output = %q", b.String())
	}
}
