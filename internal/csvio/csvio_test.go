package csvio

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

const worksCSV = `name,skill,begin,end
Ann,SP,3,10
Joe,NS,8,16
Sam,SP,8,16
Ann,SP,18,20
`

func TestReadTable(t *testing.T) {
	tbl, err := ReadTable(strings.NewReader(worksCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if !tbl.DataSchema().Equal(tuple.NewSchema("name", "skill")) {
		t.Fatalf("schema = %v", tbl.DataSchema())
	}
	if got := tbl.Interval(tbl.Rows[0]); got != interval.New(3, 10) {
		t.Fatalf("interval = %v", got)
	}
	if tbl.Rows[0][0].AsString() != "Ann" {
		t.Fatalf("row = %v", tbl.Rows[0])
	}
}

func TestValueInference(t *testing.T) {
	csv := "a,b,c,d,e,begin,end\n42,1.5,true,hello,,0,5\n"
	tbl, err := ReadTable(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if row[0].AsInt() != 42 {
		t.Error("int inference")
	}
	if row[1].AsFloat() != 1.5 {
		t.Error("float inference")
	}
	if !row[2].AsBool() {
		t.Error("bool inference")
	}
	if row[3].AsString() != "hello" {
		t.Error("string inference")
	}
	if !row[4].IsNull() {
		t.Error("null inference")
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",                         // no header
		"a,begin\n",                // too few columns
		"a,begin,end\n1,2\n",       // short record
		"a,begin,end\n1,x,5\n",     // bad begin
		"a,begin,end\n1,0,x\n",     // bad end
		"a,begin,end\n1,5,5\n",     // empty period
		"a,a,begin,end\n1,2,0,5\n", // duplicate column
	}
	for i, s := range bad {
		if _, err := ReadTable(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestRoundtrip(t *testing.T) {
	tbl, err := ReadTable(strings.NewReader(worksCSV))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reading back: %v\n%s", err, b.String())
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("roundtrip lost rows: %d vs %d", back.Len(), tbl.Len())
	}
	a, c := tbl.Clone(), back.Clone()
	a.Sort()
	c.Sort()
	for i := range a.Rows {
		if a.Rows[i].Key() != c.Rows[i].Key() {
			t.Fatalf("row %d differs after roundtrip", i)
		}
	}
}

// roundtrip writes tbl and reads it back, failing the test on any
// error.
func roundtrip(t *testing.T, tbl *engine.Table) *engine.Table {
	t.Helper()
	var b strings.Builder
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reading back: %v\n%s", err, b.String())
	}
	return back
}

// TestRoundtripTypeStability pins the Write → Read contract over every
// value kind: strings stay strings byte for byte (including strings
// that look like numbers, booleans, NULL or quoted text), NULL stays
// distinct from the empty string, and numerics come back tuple.Equal
// (integral floats alias to ints, the one documented aliasing).
func TestRoundtripTypeStability(t *testing.T) {
	trickyStrings := []string{
		"plain", "42", "-7", "007", "1.5", "-0.25", "1e3", "0x1p-2",
		"true", "false", "NaN", "Inf", "-Inf", "+Inf", "Infinity", "nan",
		"'", "''", "'wrapped'", "a'b", "'leading", "trailing'",
		"with,comma", `with"dquote`, "multi\nline", " spaced ", "NULL",
	}
	tbl := engine.NewTable(tuple.NewSchema("v"))
	iv := interval.New(0, 5)
	tbl.Append(tuple.Tuple{tuple.Null}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Int(42)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Int(-9)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Float(1.5)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Float(-2.25e-3)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Float(1e21)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Bool(true)}, iv, 1)
	tbl.Append(tuple.Tuple{tuple.Bool(false)}, iv, 1)
	for _, s := range trickyStrings {
		tbl.Append(tuple.Tuple{tuple.String_(s)}, iv, 1)
	}
	back := roundtrip(t, tbl)
	if back.Len() != tbl.Len() {
		t.Fatalf("roundtrip changed row count: %d vs %d", back.Len(), tbl.Len())
	}
	a, b := tbl.Clone(), back.Clone()
	a.Sort()
	b.Sort()
	for i := range a.Rows {
		want, got := a.Rows[i][0], b.Rows[i][0]
		if !tuple.Equal(want, got) {
			t.Fatalf("row %d: %v (%s) came back as %v (%s)", i, want, want.Kind(), got, got.Kind())
		}
		// Strings must also be KIND-stable: "42" must stay TEXT, ""
		// must stay TEXT, NULL must stay NULL.
		if want.Kind() == tuple.KindString && got.Kind() != tuple.KindString {
			t.Fatalf("row %d: string %q came back as %s %v", i, want.AsString(), got.Kind(), got)
		}
		if want.IsNull() != got.IsNull() {
			t.Fatalf("row %d: NULLness flipped: %v vs %v", i, want, got)
		}
	}
}

// TestRoundtripEmptyStringVsNull: the empty string and NULL are
// different values and must survive a round trip as such.
func TestRoundtripEmptyStringVsNull(t *testing.T) {
	tbl := engine.NewTable(tuple.NewSchema("v"))
	tbl.Append(tuple.Tuple{tuple.String_("")}, interval.New(0, 5), 1)
	tbl.Append(tuple.Tuple{tuple.Null}, interval.New(10, 15), 1)
	back := roundtrip(t, tbl)
	byBegin := map[int64]tuple.Value{}
	for _, row := range back.Rows {
		byBegin[back.Interval(row).Begin] = row[0]
	}
	if v := byBegin[0]; v.Kind() != tuple.KindString || v.AsString() != "" {
		t.Fatalf("empty string came back as %s %v", v.Kind(), v)
	}
	if v := byBegin[10]; !v.IsNull() {
		t.Fatalf("NULL came back as %s %v", v.Kind(), v)
	}
}

// TestRoundtripRandomized is the property test: random tables over all
// value kinds (with adversarially numeric-looking strings) must
// round-trip to tuple.Equal values with stable string kinds.
func TestRoundtripRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	randString := func() string {
		alphabets := []string{"ab'", "0123456789.", "truefalse", ",\"\n eIN"}
		a := alphabets[r.Intn(len(alphabets))]
		n := r.Intn(6)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(a[r.Intn(len(a))])
		}
		return b.String()
	}
	randValue := func() tuple.Value {
		switch r.Intn(5) {
		case 0:
			return tuple.Null
		case 1:
			return tuple.Int(int64(r.Intn(2000) - 1000))
		case 2:
			return tuple.Float(float64(r.Intn(2000)-1000) / 16)
		case 3:
			return tuple.Bool(r.Intn(2) == 0)
		default:
			return tuple.String_(randString())
		}
	}
	for iter := 0; iter < 200; iter++ {
		tbl := engine.NewTable(tuple.NewSchema("a", "b"))
		rows := r.Intn(8)
		for i := 0; i < rows; i++ {
			begin := int64(r.Intn(50))
			tbl.Append(tuple.Tuple{randValue(), randValue()}, interval.New(begin, begin+1+int64(r.Intn(20))), 1)
		}
		back := roundtrip(t, tbl)
		if back.Len() != tbl.Len() {
			t.Fatalf("iter %d: row count %d vs %d", iter, back.Len(), tbl.Len())
		}
		a, b := tbl.Clone(), back.Clone()
		a.Sort()
		b.Sort()
		for i := range a.Rows {
			for c := 0; c < 2; c++ {
				want, got := a.Rows[i][c], b.Rows[i][c]
				if !tuple.Equal(want, got) || (want.Kind() == tuple.KindString) != (got.Kind() == tuple.KindString) {
					t.Fatalf("iter %d row %d col %d: %v (%s) came back as %v (%s)\ninput:\n%s",
						iter, i, c, want, want.Kind(), got, got.Kind(), tbl)
				}
			}
		}
	}
}

// TestWriteRejectsNonFiniteFloats: NaN and ±Inf cells poison ordering
// and grouping, so writing them must fail loudly instead of producing a
// file that reads back differently.
func TestWriteRejectsNonFiniteFloats(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		tbl := engine.NewTable(tuple.NewSchema("x"))
		tbl.Append(tuple.Tuple{tuple.Float(f)}, interval.New(0, 5), 1)
		if err := WriteTable(&strings.Builder{}, tbl); err == nil {
			t.Errorf("WriteTable accepted non-finite %v", f)
		}
	}
}

// TestReadRejectsNonFiniteFloats: "NaN"/"Inf" cells must come back as
// text, never as non-finite DOUBLE values.
func TestReadRejectsNonFiniteFloats(t *testing.T) {
	tbl, err := ReadTable(strings.NewReader("a,begin,end\nNaN,0,5\nInf,0,5\n-Inf,0,5\n1e999,0,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[0].Kind() == tuple.KindFloat {
			t.Fatalf("non-finite literal inferred as DOUBLE: %v", row[0])
		}
	}
}

// TestReadErrorLineNumbers: every error path of ReadTable must report
// the same line number for the same offending record (regression for
// the parse-error path being off by one from the field-count path).
func TestReadErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"parse-error", "a,begin,end\nok,0,5\n\"bare\" quote,0,5\n"},
		{"field-count", "a,begin,end\nok,0,5\nonly-two,0\n"},
		{"bad-begin", "a,begin,end\nok,0,5\nx,zz,5\n"},
		{"bad-end", "a,begin,end\nok,0,5\nx,0,zz\n"},
		{"empty-period", "a,begin,end\nok,0,5\nx,5,5\n"},
	}
	for _, c := range cases {
		_, err := ReadTable(strings.NewReader(c.csv))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		// The offending record is the 2nd data row = physical line 3.
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error %q does not name line 3", c.name, err)
		}
	}
}

func TestWriteNulls(t *testing.T) {
	tbl := engine.NewTable(tuple.NewSchema("x"))
	tbl.Append(tuple.Tuple{tuple.Null}, interval.New(0, 5), 1)
	var b strings.Builder
	if err := WriteTable(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ",0,5") {
		t.Fatalf("output = %q", b.String())
	}
}
