// Package csvio reads and writes period relations as CSV files, the
// interchange format of the snapq CLI. The expected layout is a header
// row naming the data columns followed by the two period columns
// (by convention "begin" and "end" — the last two columns are always
// interpreted as the period), then one row per fact:
//
//	name,skill,begin,end
//	Ann,SP,3,10
//	Joe,NS,8,16
//
// # Cell typing, quoting and NULL
//
// Values are inferred per cell: integers, then finite floats, then
// booleans, with the empty string as NULL and anything else as text.
// Non-finite numerics ("NaN", "Inf", …) are NOT parsed as floats — NaN
// breaks comparison-based ordering and group keys — and read back as
// text.
//
// A text cell whose content would re-infer as another kind (an empty
// string, "42", "1.5", "true", "NaN", …) is written wrapped in single
// quotes; on read, a cell that starts and ends with a single quote has
// exactly one quote pair stripped and is taken verbatim as text. This
// makes Write → Read lossless for every value kind: the string "42"
// stays TEXT instead of becoming BIGINT, and the empty STRING stays
// distinct from NULL (which is written as the bare empty cell). Integral
// DOUBLE cells are the one tolerated aliasing: 42.0 is written "42" and
// reads back as BIGINT 42, which compares, groups and hashes identically
// (tuple.Equal / tuple.Key treat them as the same value). WriteTable
// rejects non-finite DOUBLE values outright.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// ReadTable parses a period relation from CSV.
func ReadTable(r io.Reader) (*engine.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("csvio: need at least one data column plus begin/end, got %d columns", len(header))
	}
	dataCols := header[:len(header)-2]
	schema, err := safeSchema(dataCols)
	if err != nil {
		return nil, err
	}
	t := engine.NewTable(schema)
	// line counts the record being read, starting after the header:
	// incremented BEFORE the read so the parse-error path and the
	// field-count/period paths report the same number for the same row.
	line := 1
	for {
		line++
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		begin, err := strconv.ParseInt(rec[len(rec)-2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad begin %q", line, rec[len(rec)-2])
		}
		end, err := strconv.ParseInt(rec[len(rec)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad end %q", line, rec[len(rec)-1])
		}
		iv, ok := interval.TryNew(begin, end)
		if !ok {
			return nil, fmt.Errorf("csvio: line %d: empty period [%d, %d)", line, begin, end)
		}
		row := make(tuple.Tuple, len(dataCols))
		for i := range dataCols {
			row[i] = inferValue(rec[i])
		}
		t.Append(row, iv, 1)
	}
	return t, nil
}

func safeSchema(cols []string) (s tuple.Schema, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("csvio: %v", r)
		}
	}()
	return tuple.NewSchema(cols...), nil
}

// inferValue guesses the kind of a CSV cell. A single-quote-wrapped
// cell is explicit text (one quote pair stripped) — the escape
// WriteTable emits for text that would otherwise re-infer as another
// kind. Non-finite floats are refused: a NaN value would poison
// tuple.Compare ordering and group keys, so "NaN"/"Inf" read as text.
func inferValue(s string) tuple.Value {
	if s == "" {
		return tuple.Null
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return tuple.String_(s[1 : len(s)-1])
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return tuple.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return tuple.Float(f)
	}
	if s == "true" || s == "false" {
		return tuple.Bool(s == "true")
	}
	return tuple.String_(s)
}

// encodeValue renders one data cell so that inferValue reads the same
// value back: text that would re-infer as another kind (or lose a
// surrounding quote pair) is wrapped in single quotes, NULL is the
// empty cell, and non-finite floats are rejected.
func encodeValue(v tuple.Value) (string, error) {
	if v.IsNull() {
		return "", nil
	}
	if v.Kind() == tuple.KindFloat {
		if f := v.AsFloat(); math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("csvio: non-finite DOUBLE %v is not representable", f)
		}
	}
	s := v.String()
	if v.Kind() == tuple.KindString {
		if iv := inferValue(s); iv.Kind() != tuple.KindString || iv.AsString() != s {
			return "'" + s + "'", nil
		}
	}
	return s, nil
}

// WriteTable renders a period relation as CSV in canonical row order.
// Cells are encoded so a ReadTable round trip reproduces the same
// values (see the package comment); a non-finite DOUBLE cell aborts
// with an error.
func WriteTable(w io.Writer, t *engine.Table) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.DataSchema().Cols...), "begin", "end")
	if err := cw.Write(header); err != nil {
		return err
	}
	c := t.Clone()
	c.Sort()
	n := t.DataArity()
	for _, row := range c.Rows {
		rec := make([]string, 0, len(row))
		for i := 0; i < n; i++ {
			cell, err := encodeValue(row[i])
			if err != nil {
				return err
			}
			rec = append(rec, cell)
		}
		iv := t.Interval(row)
		rec = append(rec, strconv.FormatInt(iv.Begin, 10), strconv.FormatInt(iv.End, 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
