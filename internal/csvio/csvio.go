// Package csvio reads and writes period relations as CSV files, the
// interchange format of the snapq CLI. The expected layout is a header
// row naming the data columns followed by the two period columns
// (by convention "begin" and "end" — the last two columns are always
// interpreted as the period), then one row per fact:
//
//	name,skill,begin,end
//	Ann,SP,3,10
//	Joe,NS,8,16
//
// Values are inferred per cell: integers, then floats, then booleans,
// with the empty string as NULL and anything else as text.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// ReadTable parses a period relation from CSV.
func ReadTable(r io.Reader) (*engine.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("csvio: need at least one data column plus begin/end, got %d columns", len(header))
	}
	dataCols := header[:len(header)-2]
	schema, err := safeSchema(dataCols)
	if err != nil {
		return nil, err
	}
	t := engine.NewTable(schema)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		begin, err := strconv.ParseInt(rec[len(rec)-2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad begin %q", line, rec[len(rec)-2])
		}
		end, err := strconv.ParseInt(rec[len(rec)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad end %q", line, rec[len(rec)-1])
		}
		iv, ok := interval.TryNew(begin, end)
		if !ok {
			return nil, fmt.Errorf("csvio: line %d: empty period [%d, %d)", line, begin, end)
		}
		row := make(tuple.Tuple, len(dataCols))
		for i := range dataCols {
			row[i] = inferValue(rec[i])
		}
		t.Append(row, iv, 1)
	}
	return t, nil
}

func safeSchema(cols []string) (s tuple.Schema, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("csvio: %v", r)
		}
	}()
	return tuple.NewSchema(cols...), nil
}

// inferValue guesses the kind of a CSV cell.
func inferValue(s string) tuple.Value {
	if s == "" {
		return tuple.Null
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return tuple.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return tuple.Float(f)
	}
	if s == "true" || s == "false" {
		return tuple.Bool(s == "true")
	}
	return tuple.String_(s)
}

// WriteTable renders a period relation as CSV in canonical row order.
func WriteTable(w io.Writer, t *engine.Table) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.DataSchema().Cols...), "begin", "end")
	if err := cw.Write(header); err != nil {
		return err
	}
	c := t.Clone()
	c.Sort()
	n := t.DataArity()
	for _, row := range c.Rows {
		rec := make([]string, 0, len(row))
		for i := 0; i < n; i++ {
			if row[i].IsNull() {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, row[i].String())
		}
		iv := t.Interval(row)
		rec = append(rec, strconv.FormatInt(iv.Begin, 10), strconv.FormatInt(iv.End, 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
