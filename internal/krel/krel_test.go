package krel

import (
	"strings"
	"testing"

	"snapk/internal/semiring"
	"snapk/internal/tuple"
)

func str(s string) tuple.Value { return tuple.String_(s) }

func newWorks() *Relation[int64] {
	r := New[int64](semiring.N, tuple.NewSchema("name", "skill"))
	r.Add(tuple.Tuple{str("Pete"), str("SP")}, 1)
	r.Add(tuple.Tuple{str("Bob"), str("SP")}, 1)
	r.Add(tuple.Tuple{str("Alice"), str("NS")}, 1)
	return r
}

func newAssign() *Relation[int64] {
	r := New[int64](semiring.N, tuple.NewSchema("mach", "skill"))
	r.Add(tuple.Tuple{str("M1"), str("SP")}, 4)
	r.Add(tuple.Tuple{str("M2"), str("NS")}, 5)
	return r
}

func TestAddSetAnnotation(t *testing.T) {
	r := New[int64](semiring.N, tuple.NewSchema("a"))
	tup := tuple.Tuple{tuple.Int(1)}
	if got := r.Annotation(tup); got != 0 {
		t.Errorf("missing tuple annotation = %d", got)
	}
	r.Add(tup, 2)
	r.Add(tup, 3)
	if got := r.Annotation(tup); got != 5 {
		t.Errorf("annotation = %d, want 5", got)
	}
	r.Add(tup, 0) // no-op
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	r.Set(tup, 0)
	if r.Len() != 0 {
		t.Error("Set(0) must remove the tuple")
	}
}

func TestExample41JoinAndProjection(t *testing.T) {
	works, assign := newWorks(), newAssign()
	out := works.Schema().Concat(assign.Schema(), "r.")
	joined := Join(works, assign, out, func(t tuple.Tuple) bool {
		return tuple.Equal(t[1], t[3]) // skill = skill
	})
	proj := Project(joined, tuple.NewSchema("mach"), func(t tuple.Tuple) tuple.Tuple {
		return tuple.Tuple{t[2]}
	})
	// Example 4.1: M1 ↦ 1·4 + 1·4 = 8, M2 ↦ 5·1 = 5.
	if got := proj.Annotation(tuple.Tuple{str("M1")}); got != 8 {
		t.Errorf("M1 annotation = %d, want 8", got)
	}
	if got := proj.Annotation(tuple.Tuple{str("M2")}); got != 5 {
		t.Errorf("M2 annotation = %d, want 5", got)
	}
	// Homomorphism to 𝔹 gives the set-semantics result.
	setRes := Hom[int64, bool](proj, semiring.B, semiring.NToB)
	if got := setRes.Annotation(tuple.Tuple{str("M1")}); !got {
		t.Error("M1 should be true under set semantics")
	}
}

func TestSelect(t *testing.T) {
	works := newWorks()
	sp := Select(works, func(t tuple.Tuple) bool { return t[1].AsString() == "SP" })
	if sp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sp.Len())
	}
	if sp.Annotation(tuple.Tuple{str("Alice"), str("NS")}) != 0 {
		t.Error("NS tuple must be filtered out")
	}
}

func TestUnionSumsAnnotations(t *testing.T) {
	a := New[int64](semiring.N, tuple.NewSchema("x"))
	b := New[int64](semiring.N, tuple.NewSchema("x"))
	a.Add(tuple.Tuple{tuple.Int(1)}, 2)
	b.Add(tuple.Tuple{tuple.Int(1)}, 3)
	b.Add(tuple.Tuple{tuple.Int(2)}, 1)
	u := Union(a, b)
	if got := u.Annotation(tuple.Tuple{tuple.Int(1)}); got != 5 {
		t.Errorf("annotation = %d, want 5", got)
	}
	if u.Len() != 2 {
		t.Errorf("Len = %d, want 2", u.Len())
	}
}

func TestDiffIsBagDifference(t *testing.T) {
	a := New[int64](semiring.N, tuple.NewSchema("x"))
	b := New[int64](semiring.N, tuple.NewSchema("x"))
	a.Add(tuple.Tuple{tuple.Int(1)}, 3)
	a.Add(tuple.Tuple{tuple.Int(2)}, 1)
	b.Add(tuple.Tuple{tuple.Int(1)}, 1)
	b.Add(tuple.Tuple{tuple.Int(2)}, 5)
	d := Diff[int64](semiring.N, a, b)
	if got := d.Annotation(tuple.Tuple{tuple.Int(1)}); got != 2 {
		t.Errorf("3 EXCEPT ALL 1 = %d, want 2", got)
	}
	if got := d.Annotation(tuple.Tuple{tuple.Int(2)}); got != 0 {
		t.Errorf("1 EXCEPT ALL 5 = %d, want 0", got)
	}
	// Contrast with the BD bug: NOT EXISTS semantics would drop tuple 1
	// entirely; bag difference keeps multiplicity 2.
}

func TestSetDifference(t *testing.T) {
	a := New[bool](semiring.B, tuple.NewSchema("x"))
	b := New[bool](semiring.B, tuple.NewSchema("x"))
	a.Add(tuple.Tuple{tuple.Int(1)}, true)
	a.Add(tuple.Tuple{tuple.Int(2)}, true)
	b.Add(tuple.Tuple{tuple.Int(2)}, true)
	d := Diff[bool](semiring.B, a, b)
	if !d.Annotation(tuple.Tuple{tuple.Int(1)}) || d.Annotation(tuple.Tuple{tuple.Int(2)}) {
		t.Error("set difference wrong")
	}
}

func TestEqualAndString(t *testing.T) {
	a, b := newWorks(), newWorks()
	if !a.Equal(b) {
		t.Error("identical relations not Equal")
	}
	b.Add(tuple.Tuple{str("Pete"), str("SP")}, 1)
	if a.Equal(b) {
		t.Error("different annotations considered Equal")
	}
	if a.Equal(newAssign()) {
		t.Error("different schemas considered Equal")
	}
	s := a.String()
	if !strings.Contains(s, "Pete") || !strings.Contains(s, "N(name, skill)") {
		t.Errorf("String = %q", s)
	}
}

func TestEntriesDeterministic(t *testing.T) {
	a := newWorks()
	e1, e2 := a.Entries(), a.Entries()
	for i := range e1 {
		if e1[i].Tuple.Key() != e2[i].Tuple.Key() {
			t.Fatal("Entries order not deterministic")
		}
	}
	if len(e1) != 3 {
		t.Fatalf("len = %d", len(e1))
	}
}

func TestAggregateCountStarRespectsMultiplicity(t *testing.T) {
	r := New[int64](semiring.N, tuple.NewSchema("skill"))
	r.Add(tuple.Tuple{str("SP")}, 2)
	r.Add(tuple.Tuple{str("NS")}, 1)
	got := Aggregate(r, tuple.NewSchema("cnt"), nil, CountStar, -1)
	if got.Len() != 1 {
		t.Fatalf("Len = %d", got.Len())
	}
	if ann := got.Annotation(tuple.Tuple{tuple.Int(3)}); ann != 1 {
		t.Fatalf("count(*) should be 3 with annotation 1: %v", got)
	}
}

func TestAggregateEmptyInputProducesRow(t *testing.T) {
	r := New[int64](semiring.N, tuple.NewSchema("x"))
	cnt := Aggregate(r, tuple.NewSchema("cnt"), nil, CountStar, -1)
	if cnt.Annotation(tuple.Tuple{tuple.Int(0)}) != 1 {
		t.Fatalf("count(*) over empty input must be 0: %v", cnt)
	}
	sum := Aggregate(r, tuple.NewSchema("s"), nil, Sum, 0)
	if sum.Annotation(tuple.Tuple{tuple.Null}) != 1 {
		t.Fatalf("sum over empty input must be NULL: %v", sum)
	}
	// With grouping, empty input produces no rows (SQL semantics).
	grouped := Aggregate(r, tuple.NewSchema("x", "cnt"), []int{0}, CountStar, -1)
	if grouped.Len() != 0 {
		t.Fatalf("grouped aggregation over empty input = %v", grouped)
	}
}

func TestAggregateGrouped(t *testing.T) {
	r := New[int64](semiring.N, tuple.NewSchema("dept", "sal"))
	r.Add(tuple.Tuple{str("d1"), tuple.Int(100)}, 2)
	r.Add(tuple.Tuple{str("d1"), tuple.Int(50)}, 1)
	r.Add(tuple.Tuple{str("d2"), tuple.Int(80)}, 1)
	avg := Aggregate(r, tuple.NewSchema("dept", "avg"), []int{0}, Avg, 1)
	if got := avg.Annotation(tuple.Tuple{str("d1"), tuple.Float(QuantizeFloat(250.0 / 3.0))}); got != 1 {
		t.Fatalf("avg(d1) missing: %v", avg)
	}
	if got := avg.Annotation(tuple.Tuple{str("d2"), tuple.Float(80)}); got != 1 {
		t.Fatalf("avg(d2) missing: %v", avg)
	}
	sum := Aggregate(r, tuple.NewSchema("dept", "sum"), []int{0}, Sum, 1)
	if got := sum.Annotation(tuple.Tuple{str("d1"), tuple.Int(250)}); got != 1 {
		t.Fatalf("sum(d1) missing: %v", sum)
	}
	mn := Aggregate(r, tuple.NewSchema("dept", "min"), []int{0}, Min, 1)
	if got := mn.Annotation(tuple.Tuple{str("d1"), tuple.Int(50)}); got != 1 {
		t.Fatalf("min(d1) missing: %v", mn)
	}
	mx := Aggregate(r, tuple.NewSchema("dept", "max"), []int{0}, Max, 1)
	if got := mx.Annotation(tuple.Tuple{str("d1"), tuple.Int(100)}); got != 1 {
		t.Fatalf("max(d1) missing: %v", mx)
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	r := New[int64](semiring.N, tuple.NewSchema("v"))
	r.Add(tuple.Tuple{tuple.Null}, 3)
	r.Add(tuple.Tuple{tuple.Int(10)}, 2)
	cnt := Aggregate(r, tuple.NewSchema("c"), nil, Count, 0)
	if cnt.Annotation(tuple.Tuple{tuple.Int(2)}) != 1 {
		t.Fatalf("count(v) should skip NULLs: %v", cnt)
	}
	cstar := Aggregate(r, tuple.NewSchema("c"), nil, CountStar, 0)
	if cstar.Annotation(tuple.Tuple{tuple.Int(5)}) != 1 {
		t.Fatalf("count(*) should count NULL rows: %v", cstar)
	}
	sum := Aggregate(r, tuple.NewSchema("s"), nil, Sum, 0)
	if sum.Annotation(tuple.Tuple{tuple.Int(20)}) != 1 {
		t.Fatalf("sum should skip NULLs: %v", sum)
	}
}

func TestAggStateFloat(t *testing.T) {
	st := NewAggState(Sum)
	st.AddValue(tuple.Int(1), 1)
	st.AddValue(tuple.Float(2.5), 2)
	if got := st.Result(); got.AsFloat() != 6.0 {
		t.Errorf("mixed sum = %v, want 6", got)
	}
	st2 := NewAggState(Avg)
	st2.AddValue(tuple.Int(3), 1)
	st2.AddValue(tuple.Int(5), 1)
	if got := st2.Result(); got.AsFloat() != 4.0 {
		t.Errorf("avg = %v", got)
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{
		CountStar: "count(*)", Count: "count", Sum: "sum", Avg: "avg", Min: "min", Max: "max",
	}
	for f, want := range names {
		if got := f.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(f), got, want)
		}
	}
}

// Homomorphisms commute with queries (Prop 3.5 of Green et al.): check on
// a join+projection for NToB.
func TestHomCommutesWithQueries(t *testing.T) {
	works, assign := newWorks(), newAssign()
	out := works.Schema().Concat(assign.Schema(), "r.")
	cond := func(t tuple.Tuple) bool { return tuple.Equal(t[1], t[3]) }
	projFn := func(t tuple.Tuple) tuple.Tuple { return tuple.Tuple{t[2]} }
	projSchema := tuple.NewSchema("mach")

	inN := Project(Join(works, assign, out, cond), projSchema, projFn)
	viaHom := Hom[int64, bool](inN, semiring.B, semiring.NToB)

	worksB := Hom[int64, bool](works, semiring.B, semiring.NToB)
	assignB := Hom[int64, bool](assign, semiring.B, semiring.NToB)
	inB := Project(Join(worksB, assignB, out, cond), projSchema, projFn)

	if !viaHom.Equal(inB) {
		t.Fatalf("h(Q(R)) != Q(h(R)):\n%v\n%v", viaHom, inB)
	}
}
