// Package krel implements K-relations (Green et al., PODS 2007): relations
// whose tuples are annotated with elements of a commutative semiring K,
// with the positive relational algebra of Def 4.1, monus-based difference
// (Section 7.1) and multiset aggregation. K-relations over ℕ are bags,
// over 𝔹 sets; this package is the per-snapshot query engine used by the
// abstract model oracle in package snapshot.
package krel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"snapk/internal/semiring"
	"snapk/internal/tuple"
)

// Entry is one (tuple, annotation) pair of a K-relation.
type Entry[K comparable] struct {
	Tuple tuple.Tuple
	Ann   K
}

// Relation is a finite-support K-relation: a total map from tuples to K
// where all but finitely many tuples are annotated 0K. Tuples annotated
// 0K are not stored.
type Relation[K comparable] struct {
	sr     semiring.Semiring[K]
	schema tuple.Schema
	ann    map[string]Entry[K]
}

// New returns an empty K-relation with the given schema.
func New[K comparable](sr semiring.Semiring[K], schema tuple.Schema) *Relation[K] {
	return &Relation[K]{sr: sr, schema: schema, ann: make(map[string]Entry[K])}
}

// Semiring returns the annotation semiring.
func (r *Relation[K]) Semiring() semiring.Semiring[K] { return r.sr }

// Schema returns the relation schema.
func (r *Relation[K]) Schema() tuple.Schema { return r.schema }

// Len returns the number of distinct tuples with non-zero annotation.
func (r *Relation[K]) Len() int { return len(r.ann) }

// Annotation returns R(t); tuples not in the support map to 0K.
func (r *Relation[K]) Annotation(t tuple.Tuple) K {
	if e, ok := r.ann[t.Key()]; ok {
		return e.Ann
	}
	return r.sr.Zero()
}

// Set overwrites the annotation of t, removing it when k = 0K.
func (r *Relation[K]) Set(t tuple.Tuple, k K) {
	key := t.Key()
	if k == r.sr.Zero() {
		delete(r.ann, key)
		return
	}
	r.ann[key] = Entry[K]{Tuple: t, Ann: k}
}

// Add merges k into the annotation of t with +K. This implements the
// summation over equal tuples in projection and union.
func (r *Relation[K]) Add(t tuple.Tuple, k K) {
	if k == r.sr.Zero() {
		return
	}
	key := t.Key()
	if e, ok := r.ann[key]; ok {
		r.Set(t, r.sr.Plus(e.Ann, k))
		return
	}
	r.ann[key] = Entry[K]{Tuple: t, Ann: k}
}

// Entries returns the support as a deterministic, key-sorted slice.
func (r *Relation[K]) Entries() []Entry[K] {
	keys := make([]string, 0, len(r.ann))
	for k := range r.ann {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry[K], len(keys))
	for i, k := range keys {
		out[i] = r.ann[k]
	}
	return out
}

// Equal reports whether both relations have the same schema and annotate
// every tuple identically.
func (r *Relation[K]) Equal(other *Relation[K]) bool {
	if !r.schema.Equal(other.schema) || len(r.ann) != len(other.ann) {
		return false
	}
	for key, e := range r.ann {
		oe, ok := other.ann[key]
		if !ok || oe.Ann != e.Ann {
			return false
		}
	}
	return true
}

// String renders the relation, one "tuple -> annotation" line per tuple.
func (r *Relation[K]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v {\n", r.sr.Name(), r.schema)
	for _, e := range r.Entries() {
		fmt.Fprintf(&b, "  %v -> %v\n", e.Tuple, e.Ann)
	}
	b.WriteString("}")
	return b.String()
}

// ---------------------------------------------------------------------------
// RA+ (Def 4.1).

// Select returns σ_θ(R): each tuple keeps its annotation if it satisfies
// the predicate (θ(t) = 1K) and is dropped otherwise (θ(t) = 0K).
func Select[K comparable](r *Relation[K], pred func(tuple.Tuple) bool) *Relation[K] {
	out := New(r.sr, r.schema)
	for _, e := range r.ann {
		if pred(e.Tuple) {
			out.Set(e.Tuple, e.Ann)
		}
	}
	return out
}

// Project returns Π_A(R) under schema out: annotations of input tuples
// mapping to the same output tuple are summed with +K.
func Project[K comparable](r *Relation[K], out tuple.Schema, proj func(tuple.Tuple) tuple.Tuple) *Relation[K] {
	res := New(r.sr, out)
	for _, e := range r.ann {
		res.Add(proj(e.Tuple), e.Ann)
	}
	return res
}

// Join returns R ⋈_θ S under schema out: for every pair of input tuples
// satisfying the condition over the concatenated tuple, the output tuple
// is annotated with the ·K-product of the input annotations.
func Join[K comparable](r, s *Relation[K], out tuple.Schema, cond func(tuple.Tuple) bool) *Relation[K] {
	res := New(r.sr, out)
	for _, re := range r.ann {
		for _, se := range s.ann {
			t := tuple.Concat(re.Tuple, se.Tuple)
			if cond(t) {
				res.Add(t, r.sr.Times(re.Ann, se.Ann))
			}
		}
	}
	return res
}

// Union returns R ∪ S (union-compatible inputs): annotations of equal
// tuples are summed with +K, i.e. UNION ALL for ℕ.
func Union[K comparable](r, s *Relation[K]) *Relation[K] {
	res := New(r.sr, r.schema)
	for _, e := range r.ann {
		res.Add(e.Tuple, e.Ann)
	}
	for _, e := range s.ann {
		res.Add(e.Tuple, e.Ann)
	}
	return res
}

// Diff returns R − S using the monus of the m-semiring (Section 7.1):
// EXCEPT ALL for ℕ, set difference for 𝔹.
func Diff[K comparable](sr semiring.MSemiring[K], r, s *Relation[K]) *Relation[K] {
	res := New(r.sr, r.schema)
	for _, e := range r.ann {
		res.Set(e.Tuple, sr.Monus(e.Ann, s.Annotation(e.Tuple)))
	}
	return res
}

// Hom applies a semiring homomorphism h: K1 → K2 to every annotation,
// producing a K2-relation. Since homomorphisms commute with RA+ queries,
// Hom(Q(R)) = Q(Hom(R)) for RA+ queries Q.
func Hom[K1, K2 comparable](r *Relation[K1], target semiring.Semiring[K2], h semiring.Hom[K1, K2]) *Relation[K2] {
	out := New(target, r.schema)
	for _, e := range r.ann {
		out.Set(e.Tuple, h(e.Ann))
	}
	return out
}

// ---------------------------------------------------------------------------
// Aggregation over ℕ-relations (multisets).

// AggFunc identifies an SQL aggregation function.
type AggFunc int

// The supported aggregation functions.
const (
	CountStar AggFunc = iota
	Count             // count(A): non-null values of A
	Sum
	Avg
	Min
	Max
)

// String returns the SQL name of the aggregation function.
func (f AggFunc) String() string {
	switch f {
	case CountStar:
		return "count(*)"
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggState accumulates one aggregation function over a multiset of values,
// where each value arrives with a multiplicity (its ℕ-annotation). The
// zero value is an empty accumulator.
type AggState struct {
	fn       AggFunc
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max tuple.Value
	seen     bool
}

// NewAggState returns an accumulator for fn.
func NewAggState(fn AggFunc) *AggState { return &AggState{fn: fn} }

// AddValue folds value v with multiplicity mult into the accumulator.
// For CountStar pass any value (it is ignored); NULLs are skipped for all
// other functions, as in SQL.
func (a *AggState) AddValue(v tuple.Value, mult int64) {
	if mult <= 0 {
		return
	}
	if a.fn == CountStar {
		a.count += mult
		return
	}
	if v.IsNull() {
		return
	}
	a.count += mult
	switch a.fn {
	case Sum, Avg:
		if v.Kind() == tuple.KindFloat {
			a.isFloat = true
		}
		if a.isFloat {
			a.sumF += v.AsFloat() * float64(mult)
		} else {
			a.sumI += v.AsInt() * mult
		}
	case Min:
		if !a.seen || tuple.Compare(v, a.min) < 0 {
			a.min = v
		}
	case Max:
		if !a.seen || tuple.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

// QuantizeFloat rounds a float aggregate result onto a 1e-6 grid. Both
// aggregation implementations (the hash-based AggState and the engine's
// incremental sweep) quantize identically, so results are comparable as
// values despite the differing floating-point summation orders.
func QuantizeFloat(f float64) float64 { return math.Round(f*1e6) / 1e6 }

// Result returns the aggregate value. Empty inputs yield 0 for counts and
// NULL for the other functions, matching SQL semantics — which is what
// snapshot-reducible aggregation must produce inside gaps.
func (a *AggState) Result() tuple.Value {
	switch a.fn {
	case CountStar, Count:
		return tuple.Int(a.count)
	case Sum:
		if !a.seen {
			return tuple.Null
		}
		if a.isFloat {
			return tuple.Float(QuantizeFloat(a.sumF + float64(a.sumI)))
		}
		return tuple.Int(a.sumI)
	case Avg:
		if !a.seen {
			return tuple.Null
		}
		return tuple.Float(QuantizeFloat((a.sumF + float64(a.sumI)) / float64(a.count)))
	case Min:
		if !a.seen {
			return tuple.Null
		}
		return a.min
	case Max:
		if !a.seen {
			return tuple.Null
		}
		return a.max
	default:
		panic("krel: unknown aggregation function")
	}
}

// Aggregate computes Gγ_f(A)(R) over an ℕ-relation: the input is grouped
// on the columns groupIdx, f is evaluated over column argIdx (ignored for
// CountStar) with tuple multiplicities taken from the annotations, and
// every result tuple is annotated 1 (Def 7.1 restricted to one snapshot).
// With an empty groupIdx a single result row is always produced, even on
// empty input — the behaviour whose temporal lifting avoids the AG bug.
func Aggregate(r *Relation[int64], out tuple.Schema, groupIdx []int, fn AggFunc, argIdx int) *Relation[int64] {
	res := New[int64](semiring.N, out)
	groups := make(map[string]*AggState)
	groupTuples := make(map[string]tuple.Tuple)
	for _, e := range r.ann {
		g := e.Tuple.Project(groupIdx)
		key := g.Key()
		st, ok := groups[key]
		if !ok {
			st = NewAggState(fn)
			groups[key] = st
			groupTuples[key] = g
		}
		var arg tuple.Value
		if fn != CountStar {
			arg = e.Tuple[argIdx]
		}
		st.AddValue(arg, e.Ann)
	}
	if len(groupIdx) == 0 && len(groups) == 0 {
		// Aggregation without grouping over an empty input still yields a row.
		groups[""] = NewAggState(fn)
		groupTuples[""] = tuple.Tuple{}
	}
	for key, st := range groups {
		res.Add(append(groupTuples[key].Clone(), st.Result()), 1)
	}
	return res
}
