// Package obs is the process-wide observability registry: cheap,
// always-on counters aggregated across every query the process runs —
// queries rewritten, rows emitted through cursors, and the planner's
// sweep-mode choices (streaming / enforced / blocking). Unlike the
// per-query engine.Collector, which must be attached explicitly, the
// registry is updated unconditionally; its counters are plain atomics
// updated at per-query (not per-row) granularity, so the cost is
// unmeasurable. Surfaced by `snapq -explain` / `snapq -analyze`.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Registry holds the process-wide counters. The zero value is ready to
// use; most callers share Default.
type Registry struct {
	// QueriesRun counts snapshot queries rewritten to plans.
	QueriesRun atomic.Int64
	// RowsEmitted counts rows delivered through result cursors, flushed
	// in batches at cursor end (never one atomic per row).
	RowsEmitted atomic.Int64
	// SweepStreaming / SweepEnforced / SweepBlocking count the planner's
	// per-sweep-operator physical choices: streaming over naturally
	// ordered input, streaming behind an inserted sort enforcer, and the
	// materializing sweep.
	SweepStreaming atomic.Int64
	SweepEnforced  atomic.Int64
	SweepBlocking  atomic.Int64
}

// Default is the process-wide registry instance.
var Default = &Registry{}

// CountSweep records one sweep-mode decision: streaming reports whether
// the sweep streams, enforced whether the order came from an inserted
// sort enforcer.
func (r *Registry) CountSweep(streaming, enforced bool) {
	switch {
	case !streaming:
		r.SweepBlocking.Add(1)
	case enforced:
		r.SweepEnforced.Add(1)
	default:
		r.SweepStreaming.Add(1)
	}
}

// Snapshot is a consistent-enough point-in-time copy of the counters
// (each counter is read atomically; the set is not a transaction).
type Snapshot struct {
	QueriesRun     int64
	RowsEmitted    int64
	SweepStreaming int64
	SweepEnforced  int64
	SweepBlocking  int64
}

// Snapshot copies the current counter values.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{
		QueriesRun:     r.QueriesRun.Load(),
		RowsEmitted:    r.RowsEmitted.Load(),
		SweepStreaming: r.SweepStreaming.Load(),
		SweepEnforced:  r.SweepEnforced.Load(),
		SweepBlocking:  r.SweepBlocking.Load(),
	}
}

// String renders the snapshot as the one-line summary the CLIs print.
func (s Snapshot) String() string {
	return fmt.Sprintf("queries=%d rows_emitted=%d sweeps{streaming=%d enforced=%d blocking=%d}",
		s.QueriesRun, s.RowsEmitted, s.SweepStreaming, s.SweepEnforced, s.SweepBlocking)
}
