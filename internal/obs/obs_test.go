package obs_test

import (
	"testing"

	"snapk/internal/obs"
)

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := &obs.Registry{}
	r.QueriesRun.Add(2)
	r.RowsEmitted.Add(5)
	r.CountSweep(true, false)
	r.CountSweep(true, true)
	r.CountSweep(false, false)
	r.CountSweep(false, true) // blocking regardless of the enforced flag
	s := r.Snapshot()
	if s.QueriesRun != 2 || s.RowsEmitted != 5 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.SweepStreaming != 1 || s.SweepEnforced != 1 || s.SweepBlocking != 2 {
		t.Fatalf("sweep counters %+v", s)
	}
	want := "queries=2 rows_emitted=5 sweeps{streaming=1 enforced=1 blocking=2}"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
