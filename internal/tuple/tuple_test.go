package tuple

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null broken")
	}
	if Int(7).AsInt() != 7 || Int(7).Kind() != KindInt {
		t.Error("Int broken")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float broken")
	}
	if String_("x").AsString() != "x" {
		t.Error("String_ broken")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool broken")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("int→float widening broken")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null.AsInt() },
		func() { String_("x").AsFloat() },
		func() { Int(1).AsString() },
		func() { Int(1).AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"}, {Int(-4), "-4"}, {Float(1.5), "1.5"},
		{String_("hi"), "hi"}, {Bool(true), "true"}, {Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "BIGINT" || KindNull.String() != "NULL" ||
		KindFloat.String() != "DOUBLE" || KindString.String() != "TEXT" || KindBool.String() != "BOOLEAN" {
		t.Error("Kind.String broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown Kind.String broken")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Null, Int(0), -1},
		{Null, Null, 0},
		{Int(0), Null, 1},
		{String_("a"), String_("b"), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(Int(2), Float(2.0)) {
		t.Error("2 should equal 2.0")
	}
	if Equal(Int(2), String_("2")) {
		t.Error("2 should not equal '2'")
	}
}

func TestTupleKeyEqualConsistency(t *testing.T) {
	a := Tuple{Int(2), String_("x"), Null}
	b := Tuple{Float(2.0), String_("x"), Null}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal tuples: %q vs %q", a.Key(), b.Key())
	}
	c := Tuple{Int(2), String_("y"), Null}
	if a.Key() == c.Key() {
		t.Error("keys equal for different tuples")
	}
	// String length prefix prevents ambiguity between adjacent strings.
	d := Tuple{String_("ab"), String_("c")}
	e := Tuple{String_("a"), String_("bc")}
	if d.Key() == e.Key() {
		t.Error("string keys ambiguous")
	}
}

func TestTupleCloneProjectConcat(t *testing.T) {
	a := Tuple{Int(1), Int(2), Int(3)}
	cl := a.Clone()
	cl[0] = Int(9)
	if a[0].AsInt() != 1 {
		t.Error("Clone aliases original")
	}
	p := a.Project([]int{2, 0})
	if len(p) != 2 || p[0].AsInt() != 3 || p[1].AsInt() != 1 {
		t.Errorf("Project = %v", p)
	}
	c := Concat(Tuple{Int(1)}, Tuple{Int(2)})
	if len(c) != 2 || c[1].AsInt() != 2 {
		t.Errorf("Concat = %v", c)
	}
	if a.String() != "(1, 2, 3)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("name", "skill", "period")
	if s.Arity() != 3 {
		t.Error("Arity broken")
	}
	if s.Index("skill") != 1 || s.Index("absent") != -1 {
		t.Error("Index broken")
	}
	if s.MustIndex("period") != 2 {
		t.Error("MustIndex broken")
	}
	idx := s.Indexes("period", "name")
	if idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Indexes = %v", idx)
	}
	if !s.Equal(NewSchema("name", "skill", "period")) || s.Equal(NewSchema("name")) {
		t.Error("Equal broken")
	}
	if s.String() != "(name, skill, period)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate column")
		}
	}()
	NewSchema("a", "a")
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown column")
		}
	}()
	NewSchema("a").MustIndex("b")
}

func TestSchemaConcatRenamesCollisions(t *testing.T) {
	l := NewSchema("id", "name")
	r := NewSchema("id", "dept")
	got := l.Concat(r, "r.")
	want := []string{"id", "name", "r.id", "dept"}
	for i := range want {
		if got.Cols[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", got.Cols, want)
		}
	}
}

// Property: Key agrees with field-wise Equal on integer tuples.
func TestKeyEqualProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		ta := make(Tuple, len(a))
		tb := make(Tuple, len(b))
		for i, v := range a {
			ta[i] = Int(int64(v))
		}
		for i, v := range b {
			tb[i] = Int(int64(v))
		}
		eq := len(a) == len(b)
		if eq {
			for i := range a {
				if a[i] != b[i] {
					eq = false
					break
				}
			}
		}
		return (ta.Key() == tb.Key()) == eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
