// Package tuple provides the typed values, tuples and relation schemas
// shared by every model layer (abstract, logical and implementation) of
// the snapshot-semantics framework.
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds. Null is its own kind, mirroring SQL's untyped NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero value is SQL NULL.
// Value is comparable, so tuples of values can be compared and hashed
// field-wise.
type Value struct {
	kind Kind
	i    int64 // ints and bools (0/1)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the fmt.Stringer method on Value.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it panics on non-integers so type
// errors surface at the point of misuse rather than as corrupt data.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("tuple: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the value as float64, converting integers.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("tuple: AsFloat on %s value", v.kind))
	}
}

// AsString returns the string payload; it panics on non-strings.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("tuple: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics on non-booleans.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("tuple: AsBool on %s value", v.kind))
	}
	return v.i != 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders values: NULL sorts first; numeric kinds compare
// numerically across int/float; strings and bools compare within kind.
// Cross-kind non-numeric comparisons order by kind. It returns -1, 0, 1.
func Compare(a, b Value) int {
	an, bn := a.kind == KindInt || a.kind == KindFloat, b.kind == KindInt || b.kind == KindFloat
	switch {
	case a.kind == KindNull || b.kind == KindNull:
		return cmpInt(int64(boolToInt(a.kind != KindNull)), int64(boolToInt(b.kind != KindNull)))
	case an && bn:
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case a.kind != b.kind:
		return cmpInt(int64(a.kind), int64(b.kind))
	case a.kind == KindString:
		return strings.Compare(a.s, b.s)
	default: // bools
		return cmpInt(a.i, b.i)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Equal reports SQL-style equality used for grouping and joins: values are
// equal if Compare returns 0. Note that unlike SQL three-valued logic,
// NULLs group together (as in GROUP BY).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Tuple is an ordered list of values, one per schema column.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key returns a compact string key that is equal for exactly the tuples
// that are field-wise equal (under Equal). It is used to hash tuples in
// maps for K-relations, grouping and joins. Integers and floats that
// represent the same number produce the same key.
func (t Tuple) Key() string {
	return string(t.AppendKey(make([]byte, 0, len(t)*8), nil))
}

// AppendKey appends the canonical key encoding (see Key) of the columns
// at idx — all columns when idx is nil — to b and returns the extended
// slice. It is the allocation-free core of Key, for hot paths that hash
// many rows with a reusable scratch buffer (e.g. the parallel
// hash-partition exchange).
func (t Tuple) AppendKey(b []byte, idx []int) []byte {
	appendVal := func(v Value) {
		switch v.kind {
		case KindNull:
			b = append(b, 'n')
		case KindInt:
			b = append(b, 'i')
			b = strconv.AppendInt(b, v.i, 10)
		case KindFloat:
			// Encode integral floats like ints so Equal ⇒ same Key.
			if f := v.f; f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
				b = append(b, 'i')
				b = strconv.AppendInt(b, int64(f), 10)
			} else {
				b = append(b, 'f')
				b = strconv.AppendFloat(b, v.f, 'g', -1, 64)
			}
		case KindString:
			b = append(b, 's')
			b = strconv.AppendInt(b, int64(len(v.s)), 10)
			b = append(b, ':')
			b = append(b, v.s...)
		case KindBool:
			b = append(b, 'b', byte('0'+v.i))
		}
		b = append(b, ';')
	}
	if idx == nil {
		for _, v := range t {
			appendVal(v)
		}
	} else {
		for _, j := range idx {
			appendVal(t[j])
		}
	}
	return b
}

// Project returns the sub-tuple at the given column indexes.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation of two tuples.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Schema names the columns of a relation.
type Schema struct {
	Cols []string
}

// NewSchema returns a schema with the given column names. It panics on
// duplicate names, which always indicate a query-construction bug.
func NewSchema(cols ...string) Schema {
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		if _, dup := seen[c]; dup {
			panic(fmt.Sprintf("tuple: duplicate column %q", c))
		}
		seen[c] = struct{}{}
	}
	return Schema{Cols: cols}
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// Index returns the position of column name, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// MustIndex returns the position of column name and panics if absent.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("tuple: unknown column %q in schema %v", name, s.Cols))
	}
	return i
}

// Indexes maps column names to positions, panicking on unknown names.
func (s Schema) Indexes(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.MustIndex(n)
	}
	return out
}

// Equal reports whether both schemas have the same columns in order.
func (s Schema) Equal(other Schema) bool {
	if len(s.Cols) != len(other.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != other.Cols[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation of two schemas, renaming collisions on
// the right side with the given prefix (e.g. "r.").
func (s Schema) Concat(other Schema, rightPrefix string) Schema {
	cols := make([]string, 0, len(s.Cols)+len(other.Cols))
	cols = append(cols, s.Cols...)
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		seen[c] = struct{}{}
	}
	for _, c := range other.Cols {
		name := c
		if _, dup := seen[name]; dup {
			name = rightPrefix + c
		}
		seen[name] = struct{}{}
		cols = append(cols, name)
	}
	return Schema{Cols: cols}
}

// String renders the schema as (a, b, c).
func (s Schema) String() string { return "(" + strings.Join(s.Cols, ", ") + ")" }
