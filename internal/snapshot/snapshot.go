// Package snapshot implements the paper's abstract model (Section 4):
// snapshot K-relations, i.e. functions from time points to K-relations,
// and snapshot semantics — a query is evaluated independently over the
// K-relation at every time point (Def 4.4), which makes
// snapshot-reducibility hold by construction.
//
// The abstract model materializes one K-relation per time point, so it is
// deliberately verbose and slow; it serves as the executable correctness
// oracle against which the logical model (package period) and the
// implementation (packages rewrite + engine) are verified.
package snapshot

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/semiring"
	"snapk/internal/tuple"
)

// Relation is a snapshot K-relation R : 𝕋 → K-relations (Def 4.3),
// materialized densely over its domain.
type Relation[K comparable] struct {
	sr     semiring.MSemiring[K]
	dom    interval.Domain
	schema tuple.Schema
	snaps  []*krel.Relation[K] // index T - dom.Min
}

// NewRelation returns an empty snapshot K-relation (every snapshot is the
// empty K-relation).
func NewRelation[K comparable](sr semiring.MSemiring[K], dom interval.Domain, schema tuple.Schema) *Relation[K] {
	snaps := make([]*krel.Relation[K], dom.Size())
	for i := range snaps {
		snaps[i] = krel.New[K](sr, schema)
	}
	return &Relation[K]{sr: sr, dom: dom, schema: schema, snaps: snaps}
}

// Schema returns the relation schema.
func (r *Relation[K]) Schema() tuple.Schema { return r.schema }

// Domain returns the time domain.
func (r *Relation[K]) Domain() interval.Domain { return r.dom }

// Timeslice returns τ_T(R), the snapshot at time t.
func (r *Relation[K]) Timeslice(t interval.Time) *krel.Relation[K] {
	if !r.dom.Contains(t) {
		panic(fmt.Sprintf("snapshot: time %d outside domain %s", t, r.dom))
	}
	return r.snaps[t-r.dom.Min]
}

// AddAt merges annotation k into tuple tup at time t.
func (r *Relation[K]) AddAt(t interval.Time, tup tuple.Tuple, k K) {
	r.Timeslice(t).Add(tup, k)
}

// AddPeriod merges annotation k into tuple tup at every time point of iv.
// It is the convenience bridge from interval-timestamped input data.
func (r *Relation[K]) AddPeriod(iv interval.Interval, tup tuple.Tuple, k K) {
	for t := iv.Begin; t < iv.End; t++ {
		r.AddAt(t, tup, k)
	}
}

// Equal reports whether both relations have identical snapshots at every
// time point (snapshot-equivalence on materialized relations).
func (r *Relation[K]) Equal(other *Relation[K]) bool {
	if r.dom != other.dom || !r.schema.Equal(other.schema) {
		return false
	}
	for i := range r.snaps {
		if !r.snaps[i].Equal(other.snaps[i]) {
			return false
		}
	}
	return true
}

// DB is a snapshot K-database: a named collection of snapshot K-relations
// over a common domain and semiring.
type DB[K comparable] struct {
	sr   semiring.MSemiring[K]
	dom  interval.Domain
	rels map[string]*Relation[K]
}

// NewDB returns an empty snapshot K-database.
func NewDB[K comparable](sr semiring.MSemiring[K], dom interval.Domain) *DB[K] {
	return &DB[K]{sr: sr, dom: dom, rels: make(map[string]*Relation[K])}
}

// Domain returns the database's time domain.
func (db *DB[K]) Domain() interval.Domain { return db.dom }

// CreateRelation registers an empty snapshot relation under name.
func (db *DB[K]) CreateRelation(name string, schema tuple.Schema) *Relation[K] {
	r := NewRelation(db.sr, db.dom, schema)
	db.rels[name] = r
	return r
}

// Relation returns the snapshot relation registered under name.
func (db *DB[K]) Relation(name string) (*Relation[K], error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("snapshot: unknown relation %q", name)
	}
	return r, nil
}

// RelationSchema implements algebra.Catalog.
func (db *DB[K]) RelationSchema(name string) (tuple.Schema, error) {
	r, err := db.Relation(name)
	if err != nil {
		return tuple.Schema{}, err
	}
	return r.schema, nil
}

// Eval evaluates q under snapshot semantics (Def 4.4): the result's
// snapshot at every T is q evaluated over the database's snapshots at T.
func (db *DB[K]) Eval(q algebra.Query) (*Relation[K], error) {
	outSchema, err := algebra.OutSchema(q, db)
	if err != nil {
		return nil, err
	}
	out := NewRelation(db.sr, db.dom, outSchema)
	for t := db.dom.Min; t < db.dom.Max; t++ {
		snap, err := db.evalAt(q, t)
		if err != nil {
			return nil, err
		}
		out.snaps[t-db.dom.Min] = snap
	}
	return out, nil
}

// evalAt evaluates q over the snapshots at time t with plain K-relation
// semantics.
func (db *DB[K]) evalAt(q algebra.Query, t interval.Time) (*krel.Relation[K], error) {
	switch n := q.(type) {
	case algebra.Rel:
		r, err := db.Relation(n.Name)
		if err != nil {
			return nil, err
		}
		return r.Timeslice(t), nil
	case algebra.Select:
		in, err := db.evalAt(n.In, t)
		if err != nil {
			return nil, err
		}
		pred, err := algebra.Compile(n.Pred, in.Schema())
		if err != nil {
			return nil, err
		}
		return krel.Select(in, func(tp tuple.Tuple) bool { return algebra.Truthy(pred(tp)) }), nil
	case algebra.Project:
		in, err := db.evalAt(n.In, t)
		if err != nil {
			return nil, err
		}
		return projectKRel(in, n)
	case algebra.Join:
		l, err := db.evalAt(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := db.evalAt(n.R, t)
		if err != nil {
			return nil, err
		}
		out := l.Schema().Concat(r.Schema(), "r.")
		pred, err := algebra.Compile(n.Pred, out)
		if err != nil {
			return nil, err
		}
		return krel.Join(l, r, out, func(tp tuple.Tuple) bool { return algebra.Truthy(pred(tp)) }), nil
	case algebra.Union:
		l, err := db.evalAt(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := db.evalAt(n.R, t)
		if err != nil {
			return nil, err
		}
		return krel.Union(l, r), nil
	case algebra.Diff:
		l, err := db.evalAt(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := db.evalAt(n.R, t)
		if err != nil {
			return nil, err
		}
		return krel.Diff(db.sr, l, r), nil
	case algebra.Agg:
		in, err := db.evalAt(n.In, t)
		if err != nil {
			return nil, err
		}
		return aggregateKRel(in, n)
	default:
		return nil, fmt.Errorf("snapshot: unknown query node %T", q)
	}
}

func projectKRel[K comparable](in *krel.Relation[K], n algebra.Project) (*krel.Relation[K], error) {
	cols := make([]string, len(n.Exprs))
	fns := make([]algebra.Compiled, len(n.Exprs))
	for i, ne := range n.Exprs {
		c, err := algebra.Compile(ne.E, in.Schema())
		if err != nil {
			return nil, err
		}
		cols[i] = ne.Name
		fns[i] = c
	}
	out := tuple.NewSchema(cols...)
	return krel.Project(in, out, func(tp tuple.Tuple) tuple.Tuple {
		res := make(tuple.Tuple, len(fns))
		for i, f := range fns {
			res[i] = f(tp)
		}
		return res
	}), nil
}

// aggregateKRel evaluates an Agg node over one snapshot. Aggregation is
// only defined for the ℕ semiring (Section 7.2); other semirings yield
// an error.
func aggregateKRel[K comparable](in *krel.Relation[K], n algebra.Agg) (*krel.Relation[K], error) {
	nIn, ok := any(in).(*krel.Relation[int64])
	if !ok {
		return nil, fmt.Errorf("snapshot: aggregation requires the ℕ semiring, have %s", in.Semiring().Name())
	}
	res, err := AggregateN(nIn, n)
	if err != nil {
		return nil, err
	}
	return any(res).(*krel.Relation[K]), nil
}

// AggregateN evaluates an Agg node over a non-temporal ℕ-relation,
// supporting several aggregation functions per grouping. It is shared
// with the logical-model evaluator and the baselines.
func AggregateN(in *krel.Relation[int64], n algebra.Agg) (*krel.Relation[int64], error) {
	schema := in.Schema()
	groupIdx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		idx := schema.Index(g)
		if idx < 0 {
			return nil, fmt.Errorf("snapshot: unknown group-by column %q", g)
		}
		groupIdx[i] = idx
	}
	cols := append([]string{}, n.GroupBy...)
	argIdx := make([]int, len(n.Aggs))
	for i, a := range n.Aggs {
		cols = append(cols, a.As)
		if a.Fn == krel.CountStar {
			argIdx[i] = -1
			continue
		}
		idx := schema.Index(a.Arg)
		if idx < 0 {
			return nil, fmt.Errorf("snapshot: unknown aggregation column %q", a.Arg)
		}
		argIdx[i] = idx
	}
	out := krel.New[int64](semiring.N, tuple.NewSchema(cols...))

	type groupAcc struct {
		group  tuple.Tuple
		states []*krel.AggState
	}
	groups := make(map[string]*groupAcc)
	for _, e := range in.Entries() {
		g := e.Tuple.Project(groupIdx)
		key := g.Key()
		acc, ok := groups[key]
		if !ok {
			acc = &groupAcc{group: g, states: make([]*krel.AggState, len(n.Aggs))}
			for i, a := range n.Aggs {
				acc.states[i] = krel.NewAggState(a.Fn)
			}
			groups[key] = acc
		}
		for i := range n.Aggs {
			var arg tuple.Value
			if argIdx[i] >= 0 {
				arg = e.Tuple[argIdx[i]]
			}
			acc.states[i].AddValue(arg, e.Ann)
		}
	}
	if len(n.GroupBy) == 0 && len(groups) == 0 {
		acc := &groupAcc{group: tuple.Tuple{}, states: make([]*krel.AggState, len(n.Aggs))}
		for i, a := range n.Aggs {
			acc.states[i] = krel.NewAggState(a.Fn)
		}
		groups[""] = acc
	}
	for _, acc := range groups {
		row := acc.group.Clone()
		for _, st := range acc.states {
			row = append(row, st.Result())
		}
		out.Add(row, 1)
	}
	return out, nil
}
