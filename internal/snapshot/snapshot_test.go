package snapshot

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/semiring"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)

func str(s string) tuple.Value { return tuple.String_(s) }

// runningExample builds the works/assign database of Figure 1.
func runningExample() *DB[int64] {
	db := NewDB[int64](semiring.N, dom)
	works := db.CreateRelation("works", tuple.NewSchema("name", "skill"))
	works.AddPeriod(interval.New(3, 10), tuple.Tuple{str("Ann"), str("SP")}, 1)
	works.AddPeriod(interval.New(8, 16), tuple.Tuple{str("Joe"), str("NS")}, 1)
	works.AddPeriod(interval.New(8, 16), tuple.Tuple{str("Sam"), str("SP")}, 1)
	works.AddPeriod(interval.New(18, 20), tuple.Tuple{str("Ann"), str("SP")}, 1)
	assign := db.CreateRelation("assign", tuple.NewSchema("mach", "skill"))
	assign.AddPeriod(interval.New(3, 12), tuple.Tuple{str("M1"), str("SP")}, 1)
	assign.AddPeriod(interval.New(6, 14), tuple.Tuple{str("M2"), str("SP")}, 1)
	assign.AddPeriod(interval.New(3, 16), tuple.Tuple{str("M3"), str("NS")}, 1)
	return db
}

// qOnduty is SELECT count(*) AS cnt FROM works WHERE skill = 'SP'.
func qOnduty() algebra.Query {
	return algebra.Agg{
		Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:   algebra.Select{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: algebra.Rel{Name: "works"}},
	}
}

// qSkillreq is SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works.
func qSkillreq() algebra.Query {
	return algebra.Diff{
		L: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill"),
	}
}

// TestFigure1bSnapshotAggregation checks the Qonduty result of Figure 1b,
// including the gap rows (cnt = 0) that AG-buggy systems omit.
func TestFigure1bSnapshotAggregation(t *testing.T) {
	db := runningExample()
	res, err := db.Eval(qOnduty())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1b: cnt per period.
	expected := []struct {
		iv  interval.Interval
		cnt int64
	}{
		{interval.New(0, 3), 0},
		{interval.New(3, 8), 1},
		{interval.New(8, 10), 2},
		{interval.New(10, 16), 1},
		{interval.New(16, 18), 0},
		{interval.New(18, 20), 1},
		{interval.New(20, 24), 0},
	}
	for _, e := range expected {
		for tp := e.iv.Begin; tp < e.iv.End; tp++ {
			snap := res.Timeslice(tp)
			if snap.Len() != 1 {
				t.Fatalf("snapshot at %d has %d tuples: %v", tp, snap.Len(), snap)
			}
			if got := snap.Annotation(tuple.Tuple{tuple.Int(e.cnt)}); got != 1 {
				t.Fatalf("at %d: want cnt=%d annotated 1, got %v", tp, e.cnt, snap)
			}
		}
	}
}

// TestFigure1cSnapshotBagDifference checks the Qskillreq result of
// Figure 1c, including the SP rows that BD-buggy systems drop.
func TestFigure1cSnapshotBagDifference(t *testing.T) {
	db := runningExample()
	res, err := db.Eval(qSkillreq())
	if err != nil {
		t.Fatal(err)
	}
	sp, ns := tuple.Tuple{str("SP")}, tuple.Tuple{str("NS")}
	wantSP := map[interval.Time]int64{6: 1, 7: 1, 10: 1, 11: 1}
	wantNS := map[interval.Time]int64{3: 1, 4: 1, 5: 1, 6: 1, 7: 1}
	for tp := dom.Min; tp < dom.Max; tp++ {
		snap := res.Timeslice(tp)
		if got := snap.Annotation(sp); got != wantSP[tp] {
			t.Errorf("SP at %d = %d, want %d", tp, got, wantSP[tp])
		}
		if got := snap.Annotation(ns); got != wantNS[tp] {
			t.Errorf("NS at %d = %d, want %d", tp, got, wantNS[tp])
		}
	}
}

// TestSnapshotReducibility checks Def 4.4 directly: τ_T(Q(D)) = Q(τ_T(D))
// for a join query, by comparing against evalAt on materialized snapshots.
func TestSnapshotReducibility(t *testing.T) {
	db := runningExample()
	q := algebra.Join{
		L:    algebra.Rel{Name: "works"},
		R:    algebra.Rel{Name: "assign"},
		Pred: algebra.Eq(algebra.Col("skill"), algebra.Col("r.skill")),
	}
	res, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	for tp := dom.Min; tp < dom.Max; tp++ {
		direct, err := db.evalAt(q, tp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Timeslice(tp).Equal(direct) {
			t.Fatalf("snapshot-reducibility violated at %d", tp)
		}
	}
}

func TestAddAtOutsideDomainPanics(t *testing.T) {
	db := runningExample()
	r, _ := db.Relation("works")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-domain time")
		}
	}()
	r.AddAt(99, tuple.Tuple{str("X"), str("SP")}, 1)
}

func TestRelationEqual(t *testing.T) {
	a, b := runningExample(), runningExample()
	ra, _ := a.Relation("works")
	rb, _ := b.Relation("works")
	if !ra.Equal(rb) {
		t.Error("identical snapshot relations not Equal")
	}
	rb.AddAt(5, tuple.Tuple{str("Zoe"), str("SP")}, 1)
	if ra.Equal(rb) {
		t.Error("different snapshot relations Equal")
	}
	other := NewRelation[int64](semiring.N, dom, tuple.NewSchema("x"))
	if ra.Equal(other) {
		t.Error("different schemas Equal")
	}
}

func TestUnknownRelation(t *testing.T) {
	db := runningExample()
	if _, err := db.Relation("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := db.Eval(algebra.Rel{Name: "nope"}); err == nil {
		t.Fatal("expected Eval error")
	}
	if _, err := db.RelationSchema("works"); err != nil {
		t.Fatal(err)
	}
}

func TestEvalProjectUnionSelect(t *testing.T) {
	db := runningExample()
	q := algebra.Union{
		L: algebra.ProjectCols(algebra.Select{
			Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")),
			In:   algebra.Rel{Name: "works"},
		}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
	}
	res, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	// At T=8: works SP gives 2 (Ann, Sam), assign gives SP:2 (M1,M2), NS:1.
	snap := res.Timeslice(8)
	if got := snap.Annotation(tuple.Tuple{str("SP")}); got != 4 {
		t.Errorf("SP at 8 = %d, want 4", got)
	}
	if got := snap.Annotation(tuple.Tuple{str("NS")}); got != 1 {
		t.Errorf("NS at 8 = %d, want 1", got)
	}
}

func TestEvalGroupedAggregation(t *testing.T) {
	db := runningExample()
	q := algebra.Agg{
		GroupBy: []string{"skill"},
		Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:      algebra.Rel{Name: "works"},
	}
	res, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Timeslice(8)
	if got := snap.Annotation(tuple.Tuple{str("SP"), tuple.Int(2)}); got != 1 {
		t.Errorf("SP count at 8 missing: %v", snap)
	}
	if got := snap.Annotation(tuple.Tuple{str("NS"), tuple.Int(1)}); got != 1 {
		t.Errorf("NS count at 8 missing: %v", snap)
	}
	// At T=0 nothing works: grouped aggregation yields no rows.
	if got := res.Timeslice(0).Len(); got != 0 {
		t.Errorf("grouped agg at 0 has %d rows, want 0", got)
	}
}

func TestAggregationRequiresNaturalSemiring(t *testing.T) {
	db := NewDB[bool](semiring.B, dom)
	db.CreateRelation("r", tuple.NewSchema("x"))
	q := algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: algebra.Rel{Name: "r"}}
	if _, err := db.Eval(q); err == nil {
		t.Fatal("aggregation over 𝔹 must error")
	}
}

func TestSetSemanticsEvaluation(t *testing.T) {
	db := NewDB[bool](semiring.B, dom)
	r := db.CreateRelation("r", tuple.NewSchema("x"))
	r.AddPeriod(interval.New(0, 10), tuple.Tuple{tuple.Int(1)}, true)
	r.AddPeriod(interval.New(5, 15), tuple.Tuple{tuple.Int(1)}, true) // duplicate: absorbed
	s := db.CreateRelation("s", tuple.NewSchema("x"))
	s.AddPeriod(interval.New(8, 20), tuple.Tuple{tuple.Int(1)}, true)
	res, err := db.Eval(algebra.Diff{L: algebra.Rel{Name: "r"}, R: algebra.Rel{Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	one := tuple.Tuple{tuple.Int(1)}
	for tp := dom.Min; tp < dom.Max; tp++ {
		want := tp < 8 // in r until 15, in s from 8
		if got := res.Timeslice(tp).Annotation(one); got != want {
			t.Errorf("at %d: %v, want %v", tp, got, want)
		}
	}
}

func TestAggregateNErrors(t *testing.T) {
	in := krel.New[int64](semiring.N, tuple.NewSchema("a"))
	if _, err := AggregateN(in, algebra.Agg{GroupBy: []string{"z"}, Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}}); err == nil {
		t.Fatal("unknown group col must error")
	}
	if _, err := AggregateN(in, algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.Sum, Arg: "z", As: "s"}}}); err == nil {
		t.Fatal("unknown agg col must error")
	}
}

func TestMultiAggregate(t *testing.T) {
	in := krel.New[int64](semiring.N, tuple.NewSchema("g", "v"))
	in.Add(tuple.Tuple{str("a"), tuple.Int(10)}, 2)
	in.Add(tuple.Tuple{str("a"), tuple.Int(4)}, 1)
	res, err := AggregateN(in, algebra.Agg{
		GroupBy: []string{"g"},
		Aggs: []algebra.AggSpec{
			{Fn: krel.CountStar, As: "cnt"},
			{Fn: krel.Sum, Arg: "v", As: "total"},
			{Fn: krel.Max, Arg: "v", As: "mx"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := tuple.Tuple{str("a"), tuple.Int(3), tuple.Int(24), tuple.Int(10)}
	if got := res.Annotation(want); got != 1 {
		t.Fatalf("multi-agg result missing %v: %v", want, res)
	}
}
