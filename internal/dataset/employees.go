// Package dataset generates the deterministic synthetic datasets used by
// the experiment harness, substituting for the exact datasets of the
// paper's evaluation (§10.1):
//
//   - Employees: a scaled stand-in for the MySQL Employees dataset with
//     the same six period tables, key structure and temporal overlap
//     characteristics.
//   - TPCBiH: a valid-time TPC-H-shaped database standing in for TPC-BiH
//     (Kaufmann et al.), with the columns needed by the nine benchmark
//     queries.
//   - CoalesceInput: selectivity-controlled salary tables for the Figure 5
//     coalescing experiment.
//
// All generators are deterministic for a given scale, so golden result
// counts (Table 2) are reproducible.
package dataset

import (
	"fmt"
	"math/rand"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// EmployeesDomain is the time domain of the Employees dataset: days
// 0..999 (the original dataset spans 1985–2002; we keep the same
// many-changes-per-entity shape on a compact integer domain).
var EmployeesDomain = interval.NewDomain(0, 1000)

// EmployeesConfig scales the Employees generator.
type EmployeesConfig struct {
	// NumEmployees is the number of employees (the original has 300k;
	// the default harness uses a few thousand).
	NumEmployees int
	// NumDepartments is the number of departments (original: 9).
	NumDepartments int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultEmployees is the configuration used by tests and the quick
// harness mode.
var DefaultEmployees = EmployeesConfig{NumEmployees: 2000, NumDepartments: 9, Seed: 42}

// Employees generates the six period tables of the Employees dataset into
// a fresh engine database: employees, departments, titles, salaries,
// dept_emp and dept_manager.
func Employees(cfg EmployeesConfig) *engine.DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	dom := EmployeesDomain
	db := engine.NewDB(dom)

	departments := db.CreateTable("departments", tuple.NewSchema("dept_no", "dept_name"))
	for d := 0; d < cfg.NumDepartments; d++ {
		departments.Append(tuple.Tuple{
			tuple.Int(int64(d)), tuple.String_(fmt.Sprintf("Department-%02d", d)),
		}, dom.All(), 1)
	}

	employees := db.CreateTable("employees", tuple.NewSchema("emp_no", "name"))
	titles := db.CreateTable("titles", tuple.NewSchema("emp_no", "title"))
	salaries := db.CreateTable("salaries", tuple.NewSchema("emp_no", "salary"))
	deptEmp := db.CreateTable("dept_emp", tuple.NewSchema("emp_no", "dept_no"))
	deptManager := db.CreateTable("dept_manager", tuple.NewSchema("emp_no", "dept_no"))

	titleNames := []string{"Engineer", "Senior Engineer", "Staff", "Senior Staff", "Technique Leader", "Assistant Engineer"}

	for e := 0; e < cfg.NumEmployees; e++ {
		empNo := tuple.Int(int64(e))
		hire := dom.Min + int64(r.Intn(int(dom.Size())-100))
		leave := hire + 50 + int64(r.Intn(int(dom.Max-hire-49)))
		if leave > dom.Max {
			leave = dom.Max
		}
		tenure := interval.New(hire, leave)
		employees.Append(tuple.Tuple{empNo, tuple.String_(fmt.Sprintf("Emp-%06d", e))}, tenure, 1)

		// Salary history: consecutive raises, like the original dataset's
		// yearly salary rows.
		// Salaries are multiples of $1000 so that value collisions across
		// employees occur, as in the original dataset — this is what makes
		// diff-2 exercise true bag difference (multiplicities > 1).
		sal := int64(38000 + 1000*r.Intn(30))
		for t := hire; t < leave; {
			end := t + 100 + int64(r.Intn(200))
			if end > leave {
				end = leave
			}
			salaries.Append(tuple.Tuple{empNo, tuple.Int(sal)}, interval.New(t, end), 1)
			sal += int64(1000 * r.Intn(6))
			t = end
		}

		// Title history: one or two periods.
		tIdx := r.Intn(len(titleNames))
		if r.Intn(3) == 0 && leave-hire > 200 {
			mid := hire + (leave-hire)/2
			titles.Append(tuple.Tuple{empNo, tuple.String_(titleNames[tIdx])}, interval.New(hire, mid), 1)
			titles.Append(tuple.Tuple{empNo, tuple.String_(titleNames[(tIdx+1)%len(titleNames)])}, interval.New(mid, leave), 1)
		} else {
			titles.Append(tuple.Tuple{empNo, tuple.String_(titleNames[tIdx])}, tenure, 1)
		}

		// Department assignment: one or two departments over the tenure.
		d := r.Intn(cfg.NumDepartments)
		if r.Intn(4) == 0 && leave-hire > 200 {
			mid := hire + (leave-hire)/2
			deptEmp.Append(tuple.Tuple{empNo, tuple.Int(int64(d))}, interval.New(hire, mid), 1)
			deptEmp.Append(tuple.Tuple{empNo, tuple.Int(int64((d + 1) % cfg.NumDepartments))}, interval.New(mid, leave), 1)
		} else {
			deptEmp.Append(tuple.Tuple{empNo, tuple.Int(int64(d))}, tenure, 1)
		}

		// Roughly three managers per department over time: the first
		// employees of each department serve terms.
		if e < cfg.NumDepartments*3 {
			deptManager.Append(tuple.Tuple{empNo, tuple.Int(int64(e % cfg.NumDepartments))}, tenure, 1)
		}
	}
	return db
}

// CoalesceInput generates the Figure 5 experiment input: a salary-style
// period table with n rows in which consecutive periods of the same
// employee often carry the same salary, so multiset coalescing has real
// work to do (both merging and multiplicity counting).
func CoalesceInput(n int, seed int64) *engine.DB {
	r := rand.New(rand.NewSource(seed))
	dom := EmployeesDomain
	db := engine.NewDB(dom)
	t := db.CreateTable("sal", tuple.NewSchema("emp_no", "salary"))
	rows := 0
	for emp := 0; rows < n; emp++ {
		sal := int64(40000 + r.Intn(10)*1000)
		start := dom.Min + int64(r.Intn(200))
		for start < dom.Max-1 && rows < n {
			end := start + 20 + int64(r.Intn(150))
			if end > dom.Max {
				end = dom.Max
			}
			t.Append(tuple.Tuple{tuple.Int(int64(emp)), tuple.Int(sal)}, interval.New(start, end), 1)
			rows++
			// Half the time the salary stays the same across adjacent
			// periods — those must merge under coalescing.
			if r.Intn(2) == 0 {
				sal += 1000
			}
			// Sometimes periods overlap — multiplicity > 1 regions.
			if r.Intn(4) == 0 {
				start = end - 10
			} else {
				start = end
			}
		}
	}
	return db
}
