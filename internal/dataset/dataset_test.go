package dataset

import (
	"testing"

	"snapk/internal/engine"
)

func TestEmployeesDeterministic(t *testing.T) {
	cfg := EmployeesConfig{NumEmployees: 100, NumDepartments: 5, Seed: 1}
	a, b := Employees(cfg), Employees(cfg)
	for _, name := range []string{"employees", "departments", "titles", "salaries", "dept_emp", "dept_manager"} {
		ta, err := a.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if ta.Len() != tb.Len() {
			t.Fatalf("%s not deterministic: %d vs %d", name, ta.Len(), tb.Len())
		}
		for i := range ta.Rows {
			if ta.Rows[i].Key() != tb.Rows[i].Key() {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestEmployeesShape(t *testing.T) {
	cfg := EmployeesConfig{NumEmployees: 200, NumDepartments: 9, Seed: 42}
	db := Employees(cfg)
	counts := TableRowCounts(db, []string{"employees", "departments", "titles", "salaries", "dept_emp", "dept_manager"})
	if counts["employees"] != 200 {
		t.Errorf("employees = %d", counts["employees"])
	}
	if counts["departments"] != 9 {
		t.Errorf("departments = %d", counts["departments"])
	}
	if counts["salaries"] <= counts["employees"] {
		t.Errorf("salaries (%d) should exceed employees (%d): multiple salary periods each",
			counts["salaries"], counts["employees"])
	}
	if counts["dept_manager"] != 27 {
		t.Errorf("dept_manager = %d, want 27 (3 per department)", counts["dept_manager"])
	}
	// All rows within the domain.
	sal, _ := db.Table("salaries")
	for _, row := range sal.Rows {
		iv := sal.Interval(row)
		if !EmployeesDomain.ContainsInterval(iv) {
			t.Fatalf("salary period %v outside domain", iv)
		}
	}
}

func TestTPCBiHShape(t *testing.T) {
	db := TPCBiH(TPCBiHConfig{ScaleFactor: 0.1, Seed: 7})
	names := []string{"region", "nation", "customer", "supplier", "part", "partsupp", "orders", "lineitem"}
	counts := TableRowCounts(db, names)
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("reference tables wrong: %v", counts)
	}
	if counts["lineitem"] <= counts["orders"] {
		t.Errorf("lineitem (%d) should exceed orders (%d)", counts["lineitem"], counts["orders"])
	}
	// Scale factor grows the data.
	bigger := TPCBiH(TPCBiHConfig{ScaleFactor: 0.3, Seed: 7})
	bCounts := TableRowCounts(bigger, names)
	if bCounts["orders"] <= counts["orders"] {
		t.Errorf("scale factor did not grow orders: %d vs %d", bCounts["orders"], counts["orders"])
	}
	if counts["missing"] != 0 {
		// TableRowCounts returns -1 for unknown tables.
		if got := TableRowCounts(db, []string{"missing"})["missing"]; got != -1 {
			t.Errorf("missing table count = %d", got)
		}
	}
	// Line items valid within their domain.
	li, _ := db.Table("lineitem")
	for _, row := range li.Rows {
		if !TPCBiHDomain.ContainsInterval(li.Interval(row)) {
			t.Fatal("lineitem period outside domain")
		}
	}
}

func TestCoalesceInputProperties(t *testing.T) {
	db := CoalesceInput(500, 3)
	tb, err := db.Table("sal")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 500 {
		t.Fatalf("rows = %d, want 500", tb.Len())
	}
	// The input must NOT already be coalesced — otherwise Figure 5
	// measures nothing.
	if engine.IsCoalesced(tb, engine.CoalesceNative) {
		t.Fatal("coalescing input is already coalesced")
	}
	// Coalescing must shrink or restructure it.
	c := engine.Coalesce(tb, engine.CoalesceNative)
	if c.Len() == 0 {
		t.Fatal("coalesced output empty")
	}
}

func TestConfigStrings(t *testing.T) {
	if DefaultEmployees.String() == "" || DefaultTPCBiH.String() == "" {
		t.Error("config Strings empty")
	}
}
