package dataset

import (
	"fmt"
	"math/rand"

	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/tuple"
)

// TPCBiHDomain is the valid-time domain of the TPC-BiH stand-in.
var TPCBiHDomain = interval.NewDomain(0, 2000)

// TPCBiHConfig scales the TPC-BiH generator. ScaleFactor 1.0 roughly
// corresponds to 6k orders / 24k lineitems in this scaled-down stand-in;
// the paper's SF1 is ~1.5M orders (we reproduce shapes, not sizes).
type TPCBiHConfig struct {
	ScaleFactor float64
	Seed        int64
}

// DefaultTPCBiH is the configuration used by tests and the quick harness.
var DefaultTPCBiH = TPCBiHConfig{ScaleFactor: 0.5, Seed: 7}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	partTypes   = []string{"ECONOMY ANODIZED STEEL", "STANDARD BRUSHED COPPER", "PROMO BURNISHED NICKEL", "SMALL PLATED BRASS", "MEDIUM POLISHED TIN"}
	partCats    = []string{"PROMO", "STANDARD", "ECONOMY", "SMALL", "MEDIUM"}
	containers  = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX"}
	brands      = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#55"}
	shipModes   = []string{"MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB"}
	returnFlags = []string{"A", "N", "R"}
	lineStati   = []string{"O", "F"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
)

// TPCBiH generates the valid-time TPC-H-shaped database: region, nation,
// customer, supplier, part, partsupp, orders and lineitem period tables.
// Every row carries a validity period within TPCBiHDomain; reference data
// (region, nation) is valid over the whole domain, as in TPC-BiH's valid
// time dimension.
func TPCBiH(cfg TPCBiHConfig) *engine.DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	dom := TPCBiHDomain
	db := engine.NewDB(dom)
	sf := cfg.ScaleFactor
	if sf <= 0 {
		sf = 0.1
	}
	nCust := max(10, int(300*sf))
	nSupp := max(5, int(20*sf))
	nPart := max(10, int(400*sf))
	nOrders := max(20, int(6000*sf))

	region := db.CreateTable("region", tuple.NewSchema("r_regionkey", "r_name"))
	for i, name := range regionNames {
		region.Append(tuple.Tuple{tuple.Int(int64(i)), tuple.String_(name)}, dom.All(), 1)
	}
	nation := db.CreateTable("nation", tuple.NewSchema("n_nationkey", "n_name", "n_regionkey"))
	for i, name := range nationNames {
		nation.Append(tuple.Tuple{
			tuple.Int(int64(i)), tuple.String_(name), tuple.Int(int64(i % len(regionNames))),
		}, dom.All(), 1)
	}

	randPeriod := func(minLen int64) interval.Interval {
		b := dom.Min + int64(r.Intn(int(dom.Size()-minLen)))
		e := b + minLen + int64(r.Intn(int(dom.Max-b-minLen)+1))
		if e > dom.Max {
			e = dom.Max
		}
		return interval.New(b, e)
	}

	customer := db.CreateTable("customer", tuple.NewSchema("c_custkey", "c_nationkey"))
	for c := 0; c < nCust; c++ {
		customer.Append(tuple.Tuple{
			tuple.Int(int64(c)), tuple.Int(int64(r.Intn(len(nationNames)))),
		}, randPeriod(500), 1)
	}
	supplier := db.CreateTable("supplier", tuple.NewSchema("s_suppkey", "s_nationkey"))
	for s := 0; s < nSupp; s++ {
		supplier.Append(tuple.Tuple{
			tuple.Int(int64(s)), tuple.Int(int64(r.Intn(len(nationNames)))),
		}, randPeriod(800), 1)
	}
	part := db.CreateTable("part", tuple.NewSchema("p_partkey", "p_type", "p_category", "p_brand", "p_size", "p_container"))
	for p := 0; p < nPart; p++ {
		ti := r.Intn(len(partTypes))
		part.Append(tuple.Tuple{
			tuple.Int(int64(p)),
			tuple.String_(partTypes[ti]),
			tuple.String_(partCats[ti]),
			tuple.String_(brands[r.Intn(len(brands))]),
			tuple.Int(int64(1 + r.Intn(50))),
			tuple.String_(containers[r.Intn(len(containers))]),
		}, randPeriod(700), 1)
	}
	partsupp := db.CreateTable("partsupp", tuple.NewSchema("ps_partkey", "ps_suppkey", "ps_supplycost"))
	for p := 0; p < nPart; p++ {
		for k := 0; k < 2; k++ {
			partsupp.Append(tuple.Tuple{
				tuple.Int(int64(p)),
				tuple.Int(int64((p + k) % nSupp)),
				tuple.Float(float64(10 + r.Intn(900))),
			}, randPeriod(600), 1)
		}
	}
	orders := db.CreateTable("orders", tuple.NewSchema("o_orderkey", "o_custkey", "o_orderpriority"))
	lineitem := db.CreateTable("lineitem", tuple.NewSchema(
		"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice",
		"l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipmode", "l_shipinstruct"))
	for o := 0; o < nOrders; o++ {
		op := randPeriod(30)
		orders.Append(tuple.Tuple{
			tuple.Int(int64(o)), tuple.Int(int64(r.Intn(nCust))),
			tuple.String_(priorities[r.Intn(len(priorities))]),
		}, op, 1)
		nLines := 1 + r.Intn(6)
		for l := 0; l < nLines; l++ {
			// Line items live within their order's period.
			lb := op.Begin + int64(r.Intn(int(op.End-op.Begin)))
			le := lb + 1 + int64(r.Intn(int(op.End-lb)))
			lineitem.Append(tuple.Tuple{
				tuple.Int(int64(o)),
				tuple.Int(int64(r.Intn(nPart))),
				tuple.Int(int64(r.Intn(nSupp))),
				tuple.Int(int64(1 + r.Intn(50))),
				tuple.Float(float64(1000 + r.Intn(90000))),
				tuple.Float(float64(r.Intn(11)) / 100.0),
				tuple.Float(float64(r.Intn(9)) / 100.0),
				tuple.String_(returnFlags[r.Intn(len(returnFlags))]),
				tuple.String_(lineStati[r.Intn(len(lineStati))]),
				tuple.String_(shipModes[r.Intn(len(shipModes))]),
				tuple.String_(instructs[r.Intn(len(instructs))]),
			}, interval.New(lb, le), 1)
		}
	}
	return db
}

// TableRowCounts reports the row count of every table in db, for the
// dataset summaries printed by the harness.
func TableRowCounts(db *engine.DB, names []string) map[string]int {
	out := make(map[string]int, len(names))
	for _, n := range names {
		t, err := db.Table(n)
		if err != nil {
			out[n] = -1
			continue
		}
		out[n] = t.Len()
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String summarizes a config for harness output.
func (c TPCBiHConfig) String() string {
	return fmt.Sprintf("TPC-BiH(sf=%.2g, seed=%d)", c.ScaleFactor, c.Seed)
}

// String summarizes a config for harness output.
func (c EmployeesConfig) String() string {
	return fmt.Sprintf("Employees(n=%d, depts=%d, seed=%d)", c.NumEmployees, c.NumDepartments, c.Seed)
}
