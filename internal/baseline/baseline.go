// Package baseline implements the two classes of pre-existing
// interval-based approaches to snapshot semantics that the paper compares
// against (Table 1 and Table 3), with their documented bugs:
//
//   - IntervalPreservation: ATSQL-style interval preservation (Böhlen et
//     al. 2000) as also offered natively by the commercial system "DBX" in
//     the paper's experiments. Snapshot-reducible for RA+ over multisets,
//     but: aggregation produces no rows over gaps (the AG bug), bag
//     difference is evaluated like NOT EXISTS (the BD bug), and results
//     are never coalesced, so the interval encoding of a result is not
//     unique.
//
//   - Alignment: the timestamp-adjustment / temporal-alignment approach of
//     the Postgres kernel extension ("PG-Nat", Dignös et al. 2012/2016).
//     Operators first align (split) their inputs against each other, then
//     apply conventional non-temporal operators on the fragments. It
//     exhibits the AG bug, implements difference with set semantics only,
//     materializes aligned fragments (the overhead visible in Table 3),
//     and does not produce a unique encoding.
//
// Both evaluators consume the same algebra.Query trees and engine tables
// as the paper-faithful middleware (package rewrite), which makes the
// Table 1 bug demonstrations and the Table 3 runtime comparisons direct.
package baseline

import (
	"fmt"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/tuple"
)

// Approach selects which legacy semantics to emulate.
type Approach int

const (
	// IntervalPreservation is the ATSQL/DBX-style approach.
	IntervalPreservation Approach = iota
	// Alignment is the PG-Nat-style timestamp-adjustment approach.
	Alignment
)

// String returns the display name used in experiment output.
func (a Approach) String() string {
	switch a {
	case IntervalPreservation:
		return "interval-preservation"
	case Alignment:
		return "alignment"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Eval evaluates q over db under the selected legacy approach. The result
// is a period-encoded table; by design it reproduces the approach's bugs
// (AG, BD/set difference) and non-unique encodings.
func Eval(db *engine.DB, q algebra.Query, ap Approach) (*engine.Table, error) {
	e := evaluator{db: db, ap: ap}
	return e.eval(q)
}

type evaluator struct {
	db *engine.DB
	ap Approach
}

func (e evaluator) eval(q algebra.Query) (*engine.Table, error) {
	switch n := q.(type) {
	case algebra.Rel:
		return e.db.Table(n.Name)
	case algebra.Select:
		in, err := e.eval(n.In)
		if err != nil {
			return nil, err
		}
		return engine.Filter(in, n.Pred)
	case algebra.Project:
		in, err := e.eval(n.In)
		if err != nil {
			return nil, err
		}
		return engine.Project(in, n.Exprs)
	case algebra.Join:
		l, err := e.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(n.R)
		if err != nil {
			return nil, err
		}
		if e.ap == Alignment {
			return alignmentJoin(l, r, n.Pred)
		}
		return engine.TemporalJoin(l, r, n.Pred)
	case algebra.Union:
		l, err := e.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(n.R)
		if err != nil {
			return nil, err
		}
		return engine.UnionAll(l, r)
	case algebra.Diff:
		l, err := e.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(n.R)
		if err != nil {
			return nil, err
		}
		if e.ap == Alignment {
			return setDiff(l, r)
		}
		return notExistsDiff(l, r)
	case algebra.Agg:
		in, err := e.eval(n.In)
		if err != nil {
			return nil, err
		}
		return buggyAggregate(in, n, e.ap)
	default:
		return nil, fmt.Errorf("baseline: unknown query node %T", q)
	}
}

// alignmentJoin reproduces the PG-Nat join strategy: each input is first
// aligned (split) against the join partners from the other input, the
// fragments are materialized, and only then are they joined. The result
// is snapshot-equivalent to the temporal join but costs an extra
// materialization pass per input — the overhead the paper measures — and
// fragments the output intervals (non-unique encoding).
func alignmentJoin(l, r *engine.Table, pred algebra.Expr) (*engine.Table, error) {
	lData, rData := l.DataSchema(), r.DataSchema()
	joined := lData.Concat(rData, "r.")
	lKeys, rKeys, _ := equiJoinColumns(pred, joined, lData.Arity())
	lAligned := alignAgainst(l, r, lKeys, rKeys)
	rAligned := alignAgainst(r, l, rKeys, lKeys)
	return engine.TemporalJoin(lAligned, rAligned, pred)
}

// equiJoinColumns extracts the column index pairs of equality conjuncts
// (left side, right side) from a join predicate.
func equiJoinColumns(pred algebra.Expr, joined tuple.Schema, lArity int) (lIdx, rIdx []int, residual bool) {
	var walk func(e algebra.Expr)
	walk = func(e algebra.Expr) {
		b, ok := e.(algebra.BinOp)
		if !ok {
			residual = true
			return
		}
		switch b.Op {
		case algebra.OpAnd:
			walk(b.L)
			walk(b.R)
		case algebra.OpEq:
			lc, lok := b.L.(algebra.ColRef)
			rc, rok := b.R.(algebra.ColRef)
			if lok && rok {
				li, ri := joined.Index(lc.Name), joined.Index(rc.Name)
				if li >= 0 && ri >= 0 && li < lArity && ri >= lArity {
					lIdx = append(lIdx, li)
					rIdx = append(rIdx, ri-lArity)
					return
				}
				if li >= 0 && ri >= 0 && ri < lArity && li >= lArity {
					lIdx = append(lIdx, ri)
					rIdx = append(rIdx, li-lArity)
					return
				}
			}
			residual = true
		default:
			residual = true
		}
	}
	walk(pred)
	return lIdx, rIdx, residual
}

// alignAgainst splits every row of t at the interval end points of the
// rows of other that share its join-key values.
func alignAgainst(t, other *engine.Table, tKeys, oKeys []int) *engine.Table {
	eps := make(map[string][]interval.Time)
	for _, row := range other.Rows {
		key := row.Project(oKeys).Key()
		iv := other.Interval(row)
		eps[key] = append(eps[key], iv.Begin, iv.End)
	}
	for k, ts := range eps {
		eps[k] = interval.DedupTimes(ts)
	}
	out := &engine.Table{Schema: t.Schema}
	n := t.DataArity()
	for _, row := range t.Rows {
		key := row.Project(tKeys).Key()
		for _, seg := range t.Interval(row).Segments(eps[key]) {
			nr := row[:n].Clone()
			nr = append(nr, tuple.Int(seg.Begin), tuple.Int(seg.End))
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// notExistsDiff evaluates EXCEPT ALL the way most systems do — as a NOT
// EXISTS anti-join (the BD bug): a left row is removed at every time
// point where an equal right tuple exists at all, regardless of
// multiplicities on either side.
func notExistsDiff(l, r *engine.Table) (*engine.Table, error) {
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("baseline: difference-incompatible arities")
	}
	n := l.DataArity()
	coverage := make(map[string][]interval.Interval)
	for _, row := range r.Rows {
		key := tuple.Tuple(row[:n]).Key()
		coverage[key] = append(coverage[key], r.Interval(row))
	}
	out := &engine.Table{Schema: l.Schema}
	for _, row := range l.Rows {
		key := tuple.Tuple(row[:n]).Key()
		for _, frag := range subtractIntervals(l.Interval(row), coverage[key]) {
			nr := tuple.Tuple(row[:n]).Clone()
			nr = append(nr, tuple.Int(frag.Begin), tuple.Int(frag.End))
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// setDiff evaluates difference with set semantics (PG-Nat): duplicates on
// the left collapse to one, and a tuple survives at a time point iff no
// equal right tuple exists there.
func setDiff(l, r *engine.Table) (*engine.Table, error) {
	ne, err := notExistsDiff(l, r)
	if err != nil {
		return nil, err
	}
	// Collapse multiplicities: keep one row per (tuple, fragment) after
	// merging value-equivalent coverage.
	n := ne.DataArity()
	type acc struct {
		data tuple.Tuple
		ivs  []interval.Interval
	}
	byTuple := make(map[string]*acc)
	for _, row := range ne.Rows {
		key := tuple.Tuple(row[:n]).Key()
		a, ok := byTuple[key]
		if !ok {
			a = &acc{data: row[:n]}
			byTuple[key] = a
		}
		a.ivs = append(a.ivs, ne.Interval(row))
	}
	out := &engine.Table{Schema: l.Schema}
	for _, a := range byTuple {
		for _, iv := range mergeIntervals(a.ivs) {
			nr := a.data.Clone()
			nr = append(nr, tuple.Int(iv.Begin), tuple.Int(iv.End))
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// subtractIntervals returns the fragments of iv not covered by any
// interval in cover.
func subtractIntervals(iv interval.Interval, cover []interval.Interval) []interval.Interval {
	frags := []interval.Interval{iv}
	for _, c := range cover {
		var next []interval.Interval
		for _, f := range frags {
			if !f.Overlaps(c) {
				next = append(next, f)
				continue
			}
			if f.Begin < c.Begin {
				next = append(next, interval.New(f.Begin, c.Begin))
			}
			if c.End < f.End {
				next = append(next, interval.New(c.End, f.End))
			}
		}
		frags = next
	}
	return frags
}

// mergeIntervals merges overlapping or adjacent intervals into maximal
// ones.
func mergeIntervals(ivs []interval.Interval) []interval.Interval {
	if len(ivs) == 0 {
		return nil
	}
	interval.Sort(ivs)
	out := []interval.Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if u, ok := last.Union(iv); ok {
			*last = u
			continue
		}
		out = append(out, iv)
	}
	return out
}

// buggyAggregate reproduces how native implementations evaluate snapshot
// aggregation: a split on the grouping attributes followed by a standard
// aggregation — with NO neutral row unioned in, so time periods where the
// aggregation input is empty produce no result rows (the AG bug).
func buggyAggregate(in *engine.Table, n algebra.Agg, ap Approach) (*engine.Table, error) {
	data := in.DataSchema()
	groupIdx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		idx := data.Index(g)
		if idx < 0 {
			return nil, fmt.Errorf("baseline: unknown group-by column %q", g)
		}
		groupIdx[i] = idx
	}
	argIdx := make([]int, len(n.Aggs))
	outCols := append([]string{}, n.GroupBy...)
	for i, a := range n.Aggs {
		argIdx[i] = -1
		if a.Fn != krel.CountStar {
			idx := data.Index(a.Arg)
			if idx < 0 {
				return nil, fmt.Errorf("baseline: unknown aggregation column %q", a.Arg)
			}
			argIdx[i] = idx
		}
		outCols = append(outCols, a.As)
	}
	// Materialized split, then hash aggregation — the plan shape of the
	// native systems (no pre-aggregation).
	split := engine.Split(in, in, groupIdx)
	type acc struct {
		group  tuple.Tuple
		seg    interval.Interval
		states []*krel.AggState
	}
	groups := make(map[string]*acc)
	for _, row := range split.Rows {
		g := row.Project(groupIdx)
		iv := split.Interval(row)
		key := g.Key() + "@" + tuple.Tuple{tuple.Int(iv.Begin), tuple.Int(iv.End)}.Key()
		a, ok := groups[key]
		if !ok {
			a = &acc{group: g, seg: iv, states: make([]*krel.AggState, len(n.Aggs))}
			for i, sp := range n.Aggs {
				a.states[i] = krel.NewAggState(sp.Fn)
			}
			groups[key] = a
		}
		for i := range n.Aggs {
			var arg tuple.Value
			if argIdx[i] >= 0 {
				arg = row[argIdx[i]]
			}
			a.states[i].AddValue(arg, 1)
		}
	}
	// A literal, not engine.NewTable: rows are written directly below
	// (in nondeterministic map order), so the table must start with
	// UNKNOWN metadata, not NewTable's known-sorted empty state.
	out := &engine.Table{Schema: engine.PeriodSchema(tuple.NewSchema(outCols...))}
	for _, a := range groups {
		row := a.group.Clone()
		for _, st := range a.states {
			row = append(row, st.Result())
		}
		row = append(row, tuple.Int(a.seg.Begin), tuple.Int(a.seg.End))
		out.Rows = append(out.Rows, row)
	}
	_ = ap
	return out, nil
}
