package baseline_test

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/baseline"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/qgen"
	"snapk/internal/rewrite"
	"snapk/internal/semiring"
	"snapk/internal/telement"
	"snapk/internal/tuple"
)

var dom = interval.NewDomain(0, 24)
var alg = telement.NewMAlgebra[int64](semiring.N, dom)

func str(s string) tuple.Value { return tuple.String_(s) }

func exampleDB() *engine.DB {
	db := engine.NewDB(dom)
	works := db.CreateTable("works", tuple.NewSchema("name", "skill"))
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(3, 10), 1)
	works.Append(tuple.Tuple{str("Joe"), str("NS")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Sam"), str("SP")}, interval.New(8, 16), 1)
	works.Append(tuple.Tuple{str("Ann"), str("SP")}, interval.New(18, 20), 1)
	assign := db.CreateTable("assign", tuple.NewSchema("mach", "skill"))
	assign.Append(tuple.Tuple{str("M1"), str("SP")}, interval.New(3, 12), 1)
	assign.Append(tuple.Tuple{str("M2"), str("SP")}, interval.New(6, 14), 1)
	assign.Append(tuple.Tuple{str("M3"), str("NS")}, interval.New(3, 16), 1)
	return db
}

func qOnduty() algebra.Query {
	return algebra.Agg{
		Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:   algebra.Select{Pred: algebra.Eq(algebra.Col("skill"), algebra.StrC("SP")), In: algebra.Rel{Name: "works"}},
	}
}

func qSkillreq() algebra.Query {
	return algebra.Diff{
		L: algebra.ProjectCols(algebra.Rel{Name: "assign"}, "skill"),
		R: algebra.ProjectCols(algebra.Rel{Name: "works"}, "skill"),
	}
}

// TestAGBug demonstrates the aggregation gap bug of Table 1/Figure 1b:
// both legacy approaches omit the count-0 rows during gaps that the
// paper-faithful middleware produces.
func TestAGBug(t *testing.T) {
	db := exampleDB()
	correct, err := rewrite.Run(db, qOnduty(), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	correctRel := correct.ToPeriodRelation(alg)
	zero := tuple.Tuple{tuple.Int(0)}
	if correctRel.Annotation(zero).IsZero() {
		t.Fatal("middleware must report gap rows")
	}
	for _, ap := range []baseline.Approach{baseline.IntervalPreservation, baseline.Alignment} {
		got, err := baseline.Eval(db, qOnduty(), ap)
		if err != nil {
			t.Fatal(err)
		}
		rel := got.ToPeriodRelation(alg)
		if !rel.Annotation(zero).IsZero() {
			t.Errorf("%v unexpectedly reports gap rows (AG bug should be present)", ap)
		}
		// Non-gap counts still agree with the correct result.
		for _, cnt := range []int64{1, 2} {
			want := correctRel.Annotation(tuple.Tuple{tuple.Int(cnt)})
			gotAnn := rel.Annotation(tuple.Tuple{tuple.Int(cnt)})
			if !gotAnn.Equal(want) {
				t.Errorf("%v: cnt=%d annotation = %v, want %v", ap, cnt, gotAnn, want)
			}
		}
	}
}

// TestBDBug demonstrates the bag difference bug of Table 1/Figure 1c: the
// interval-preservation approach treats EXCEPT ALL as NOT EXISTS and
// drops the SP rows entirely; the alignment approach applies set
// difference with the same visible effect on this query.
func TestBDBug(t *testing.T) {
	db := exampleDB()
	sp := tuple.Tuple{str("SP")}
	ns := tuple.Tuple{str("NS")}
	for _, ap := range []baseline.Approach{baseline.IntervalPreservation, baseline.Alignment} {
		got, err := baseline.Eval(db, qSkillreq(), ap)
		if err != nil {
			t.Fatal(err)
		}
		rel := got.ToPeriodRelation(alg)
		if !rel.Annotation(sp).IsZero() {
			t.Errorf("%v returned SP rows; the BD bug should drop them: %v", ap, rel.Annotation(sp))
		}
		// NS is only in assign from [3,16) and in works from [8,16):
		// NOT EXISTS / set difference still yields [3,8).
		want := alg.Singleton(interval.New(3, 8), 1)
		if gotNS := rel.Annotation(ns); !gotNS.Equal(want) {
			t.Errorf("%v: NS = %v, want %v", ap, gotNS, want)
		}
	}
}

// TestBDBugMultiplicities: where multiplicities differ (2 on the left, 1
// on the right), correct bag difference leaves 1 while NOT EXISTS leaves
// 0 — the precise failure of Example 1.2.
func TestBDBugMultiplicities(t *testing.T) {
	db := engine.NewDB(dom)
	l := db.CreateTable("l", tuple.NewSchema("x"))
	l.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 2)
	r := db.CreateTable("r", tuple.NewSchema("x"))
	r.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 1)
	q := algebra.Diff{L: algebra.Rel{Name: "l"}, R: algebra.Rel{Name: "r"}}

	correct, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	one := tuple.Tuple{tuple.Int(1)}
	if got := correct.ToPeriodRelation(alg).Annotation(one); !got.Equal(alg.Singleton(interval.New(0, 10), 1)) {
		t.Fatalf("middleware bag difference = %v, want multiplicity 1 on [0,10)", got)
	}
	buggy, err := baseline.Eval(db, q, baseline.IntervalPreservation)
	if err != nil {
		t.Fatal(err)
	}
	if got := buggy.ToPeriodRelation(alg).Annotation(one); !got.IsZero() {
		t.Fatalf("NOT EXISTS difference should drop the tuple, got %v", got)
	}
}

// TestSetDifferenceCollapsesDuplicates: the alignment approach applies
// set semantics, collapsing left multiplicities even where the right side
// is empty.
func TestSetDifferenceCollapsesDuplicates(t *testing.T) {
	db := engine.NewDB(dom)
	l := db.CreateTable("l", tuple.NewSchema("x"))
	l.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 3)
	db.CreateTable("r", tuple.NewSchema("x"))
	q := algebra.Diff{L: algebra.Rel{Name: "l"}, R: algebra.Rel{Name: "r"}}
	got, err := baseline.Eval(db, q, baseline.Alignment)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("set difference should collapse duplicates, got %d rows", got.Len())
	}
}

// TestNonUniqueEncoding demonstrates the "unique encoding" column of
// Table 1: equivalent inputs produce different row sets under the
// baselines but identical rows under the middleware.
func TestNonUniqueEncoding(t *testing.T) {
	// The same temporal relation written two ways.
	mk := func(split bool) *engine.DB {
		db := engine.NewDB(dom)
		tbl := db.CreateTable("t", tuple.NewSchema("x"))
		if split {
			tbl.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 5), 1)
			tbl.Append(tuple.Tuple{tuple.Int(1)}, interval.New(5, 10), 1)
		} else {
			tbl.Append(tuple.Tuple{tuple.Int(1)}, interval.New(0, 10), 1)
		}
		return db
	}
	q := algebra.Select{Pred: algebra.BoolC(true), In: algebra.Rel{Name: "t"}}
	baseRows := func(tb *engine.Table) []string {
		c := tb.Clone()
		c.Sort()
		keys := make([]string, len(c.Rows))
		for i, r := range c.Rows {
			keys[i] = r.Key()
		}
		return keys
	}
	bA, err := baseline.Eval(mk(false), q, baseline.IntervalPreservation)
	if err != nil {
		t.Fatal(err)
	}
	bB, err := baseline.Eval(mk(true), q, baseline.IntervalPreservation)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseRows(bA)) == len(baseRows(bB)) {
		t.Error("interval preservation should produce different encodings for equivalent inputs")
	}
	mA, err := rewrite.Run(mk(false), q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := rewrite.Run(mk(true), q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := baseRows(mA), baseRows(mB)
	if len(ra) != len(rb) {
		t.Fatal("middleware encodings differ in size")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("middleware must produce the unique encoding for equivalent inputs")
		}
	}
}

// TestBaselinesCorrectForPositiveAlgebra: for RA+ (no aggregation, no
// difference) both baselines are snapshot-reducible — they agree with the
// middleware up to snapshot equivalence (though not on the encoding).
func TestBaselinesCorrectForPositiveAlgebra(t *testing.T) {
	g := qgen.New(211)
	for i := 0; i < 60; i++ {
		spec := g.GenDB()
		q := g.GenPositiveQuery()
		edb := spec.ToEngineDB()
		want, err := rewrite.Run(edb, q, rewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		algSpec := telement.NewMAlgebra[int64](semiring.N, spec.Dom)
		for _, ap := range []baseline.Approach{baseline.IntervalPreservation, baseline.Alignment} {
			got, err := baseline.Eval(edb, q, ap)
			if err != nil {
				t.Fatalf("%v: %v (%s)", ap, err, q)
			}
			if !engine.EqualAsPeriodRelations(got, want, algSpec) {
				t.Fatalf("iteration %d: %v disagrees on RA+ query %s\ngot  %v\nwant %v",
					i, ap, q, got.ToPeriodRelation(algSpec), want.ToPeriodRelation(algSpec))
			}
		}
	}
}

func TestBaselineErrors(t *testing.T) {
	db := exampleDB()
	if _, err := baseline.Eval(db, algebra.Rel{Name: "nope"}, baseline.IntervalPreservation); err == nil {
		t.Fatal("unknown relation must error")
	}
	bad := algebra.Agg{GroupBy: []string{"zzz"}, Aggs: []algebra.AggSpec{{Fn: krel.CountStar, As: "c"}}, In: algebra.Rel{Name: "works"}}
	if _, err := baseline.Eval(db, bad, baseline.IntervalPreservation); err == nil {
		t.Fatal("bad group-by must error")
	}
	bad2 := algebra.Agg{Aggs: []algebra.AggSpec{{Fn: krel.Sum, Arg: "zzz", As: "s"}}, In: algebra.Rel{Name: "works"}}
	if _, err := baseline.Eval(db, bad2, baseline.Alignment); err == nil {
		t.Fatal("bad agg arg must error")
	}
}

func TestApproachString(t *testing.T) {
	if baseline.IntervalPreservation.String() != "interval-preservation" {
		t.Error("String broken")
	}
	if baseline.Alignment.String() != "alignment" {
		t.Error("String broken")
	}
}

// TestGroupedAggregationAgreesOnLiveGroups: away from gaps, the buggy
// aggregation agrees with the correct one (it is only the gaps that
// differ), which is what makes the bug easy to miss in practice.
func TestGroupedAggregationAgreesOnLiveGroups(t *testing.T) {
	db := exampleDB()
	q := algebra.Agg{
		GroupBy: []string{"skill"},
		Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
		In:      algebra.Rel{Name: "works"},
	}
	want, err := rewrite.Run(db, q, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range []baseline.Approach{baseline.IntervalPreservation, baseline.Alignment} {
		got, err := baseline.Eval(db, q, ap)
		if err != nil {
			t.Fatal(err)
		}
		// Grouped aggregation has no gaps on this data: results agree.
		if !engine.EqualAsPeriodRelations(got, want, alg) {
			t.Fatalf("%v grouped aggregation disagrees:\n%v\nvs\n%v",
				ap, got.ToPeriodRelation(alg), want.ToPeriodRelation(alg))
		}
	}
}
