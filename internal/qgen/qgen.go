// Package qgen generates random temporal databases and random RA_agg
// queries over them. It powers the cross-layer equivalence tests that
// mechanically verify the commuting diagram of Figure 2: the abstract
// model (package snapshot), the logical model (package period) and the
// rewritten implementation (packages rewrite + engine) must agree on
// every generated (database, query) pair.
package qgen

import (
	"math/rand"
	"sort"

	"snapk/internal/algebra"
	"snapk/internal/engine"
	"snapk/internal/interval"
	"snapk/internal/krel"
	"snapk/internal/period"
	"snapk/internal/semiring"
	"snapk/internal/snapshot"
	"snapk/internal/tuple"
)

// Fact is one interval-timestamped tuple with a multiplicity.
type Fact struct {
	Tuple tuple.Tuple
	Iv    interval.Interval
	Mult  int64
}

// Table is a generated period multiset table.
type Table struct {
	Name   string
	Schema tuple.Schema
	Facts  []Fact
}

// DBSpec is a generated temporal database in a model-neutral form; it can
// be loaded into any of the three model layers.
type DBSpec struct {
	Dom    interval.Domain
	Tables []Table
}

// Gen bundles a random source with generation parameters.
type Gen struct {
	R *rand.Rand
	// MaxDepth bounds the operator depth of generated queries.
	MaxDepth int
	// MaxFacts bounds facts per table.
	MaxFacts int
}

// New returns a generator with sensible defaults for unit tests.
func New(seed int64) *Gen {
	return &Gen{R: rand.New(rand.NewSource(seed)), MaxDepth: 4, MaxFacts: 12}
}

// twoColSchema is the fixed schema of generated tables: two integer
// columns. Keeping every subquery at this schema makes union/difference
// compatibility trivial while still exercising all operators.
var twoColSchema = tuple.NewSchema("a", "b")

// GenDB generates a database with two tables r and s over domain [0, 16).
func (g *Gen) GenDB() DBSpec {
	dom := interval.NewDomain(0, 16)
	spec := DBSpec{Dom: dom}
	for _, name := range []string{"r", "s"} {
		t := Table{Name: name, Schema: twoColSchema}
		n := g.R.Intn(g.MaxFacts + 1)
		for i := 0; i < n; i++ {
			begin := dom.Min + int64(g.R.Intn(int(dom.Size()-1)))
			end := begin + 1 + int64(g.R.Intn(int(dom.Max-begin)))
			t.Facts = append(t.Facts, Fact{
				Tuple: tuple.Tuple{g.genValue(), g.genValue()},
				Iv:    interval.New(begin, end),
				Mult:  1 + int64(g.R.Intn(2)),
			})
		}
		spec.Tables = append(spec.Tables, t)
	}
	return spec
}

// genValue produces a small integer or, occasionally, NULL — so the
// cross-layer tests also pin down SQL NULL semantics (three-valued
// predicates, NULL-excluding joins, NULL-skipping aggregates) across the
// oracle, the logical model and the engine.
func (g *Gen) genValue() tuple.Value {
	if g.R.Intn(8) == 0 {
		return tuple.Null
	}
	return tuple.Int(int64(g.R.Intn(4)))
}

// SortedByBegin returns a copy of the spec whose facts are ordered by
// ascending interval begin within each table. Loading the copy into the
// engine yields begin-sorted stored tables, which is what triggers the
// planner's automatic streaming-sweep selection — the deliberately
// pre-sorted half of the equivalence suite (the original spec is the
// unsorted half).
func (spec DBSpec) SortedByBegin() DBSpec {
	out := DBSpec{Dom: spec.Dom}
	for _, t := range spec.Tables {
		nt := Table{Name: t.Name, Schema: t.Schema, Facts: append([]Fact(nil), t.Facts...)}
		sort.SliceStable(nt.Facts, func(i, j int) bool { return nt.Facts[i].Iv.Begin < nt.Facts[j].Iv.Begin })
		out.Tables = append(out.Tables, nt)
	}
	return out
}

// ToSnapshotDB loads the spec into the abstract model.
func (spec DBSpec) ToSnapshotDB() *snapshot.DB[int64] {
	db := snapshot.NewDB[int64](semiring.N, spec.Dom)
	for _, t := range spec.Tables {
		r := db.CreateRelation(t.Name, t.Schema)
		for _, f := range t.Facts {
			r.AddPeriod(f.Iv, f.Tuple, f.Mult)
		}
	}
	return db
}

// ToPeriodDB loads the spec into the logical model.
func (spec DBSpec) ToPeriodDB() *period.DB[int64] {
	db := period.NewDB[int64](semiring.N, spec.Dom)
	for _, t := range spec.Tables {
		r := db.CreateRelation(t.Name, t.Schema)
		for _, f := range t.Facts {
			r.AddPeriod(f.Tuple, f.Iv, f.Mult)
		}
	}
	return db
}

// ToEngineDB loads the spec into the implementation layer as PERIODENC-
// encoded multiset tables.
func (spec DBSpec) ToEngineDB() *engine.DB {
	db := engine.NewDB(spec.Dom)
	for _, t := range spec.Tables {
		tbl := db.CreateTable(t.Name, t.Schema)
		for _, f := range t.Facts {
			tbl.Append(f.Tuple, f.Iv, f.Mult)
		}
	}
	return db
}

// GenQuery generates a random RA_agg query whose input tables are r and
// s. Positive subqueries all have schema (a, b); an aggregation, if any,
// appears at the root (mirroring the shape of the paper's workloads).
func (g *Gen) GenQuery() algebra.Query {
	q := g.genPositive(g.MaxDepth, true)
	switch g.R.Intn(4) {
	case 0:
		return algebra.Agg{
			GroupBy: []string{"a"},
			Aggs:    []algebra.AggSpec{{Fn: krel.CountStar, As: "cnt"}},
			In:      q,
		}
	case 1:
		fn := []krel.AggFunc{krel.Sum, krel.Min, krel.Max, krel.Avg, krel.Count}[g.R.Intn(5)]
		return algebra.Agg{
			Aggs: []algebra.AggSpec{{Fn: fn, Arg: "b", As: "v"}, {Fn: krel.CountStar, As: "cnt"}},
			In:   q,
		}
	default:
		return q
	}
}

// GenDiffQuery generates a random query with a difference at the root —
// the dedicated generator of the streaming-difference equivalence grid,
// which must exercise the DiffP physical forms on every iteration
// (GenQuery only reaches a difference by chance).
func (g *Gen) GenDiffQuery() algebra.Query {
	return algebra.Diff{
		L: g.genPositive(g.MaxDepth-1, true),
		R: g.genPositive(g.MaxDepth-1, true),
	}
}

// GenPositiveQuery generates a random RA+ query (no difference, no
// aggregation) — the fragment for which the legacy baselines are still
// snapshot-reducible (Table 1).
func (g *Gen) GenPositiveQuery() algebra.Query {
	return g.genPositive(g.MaxDepth, false)
}

// genPositive generates a query with output schema (a, b); with allowDiff
// it may contain difference (the full RA of Section 7.1).
func (g *Gen) genPositive(depth int, allowDiff bool) algebra.Query {
	if depth <= 0 {
		return g.baseRel()
	}
	switch g.R.Intn(7) {
	case 0:
		return g.baseRel()
	case 1:
		return algebra.Select{Pred: g.genPred(), In: g.genPositive(depth-1, allowDiff)}
	case 2:
		// Column permutation / computed projection, keeping schema (a, b).
		exprs := [][]algebra.NamedExpr{
			{{Name: "a", E: algebra.Col("b")}, {Name: "b", E: algebra.Col("a")}},
			{{Name: "a", E: algebra.Col("a")}, {Name: "b", E: algebra.Add(algebra.Col("b"), algebra.IntC(1))}},
			{{Name: "a", E: algebra.Col("a")}, {Name: "b", E: algebra.Col("a")}},
		}
		return algebra.Project{Exprs: exprs[g.R.Intn(len(exprs))], In: g.genPositive(depth-1, allowDiff)}
	case 3:
		// Equi-join on a, projecting back to (a, b).
		j := algebra.Join{
			L:    g.genPositive(depth-1, allowDiff),
			R:    g.genPositive(depth-1, allowDiff),
			Pred: algebra.Eq(algebra.Col("a"), algebra.Col("r.a")),
		}
		return algebra.Project{
			Exprs: []algebra.NamedExpr{
				{Name: "a", E: algebra.Col("a")},
				{Name: "b", E: algebra.Col("r.b")},
			},
			In: j,
		}
	case 4:
		return algebra.Union{L: g.genPositive(depth-1, allowDiff), R: g.genPositive(depth-1, allowDiff)}
	case 5:
		if allowDiff {
			return algebra.Diff{L: g.genPositive(depth-1, allowDiff), R: g.genPositive(depth-1, allowDiff)}
		}
		return algebra.Union{L: g.genPositive(depth-1, allowDiff), R: g.genPositive(depth-1, allowDiff)}
	default:
		return g.baseRel()
	}
}

func (g *Gen) baseRel() algebra.Query {
	if g.R.Intn(2) == 0 {
		return algebra.Rel{Name: "r"}
	}
	return algebra.Rel{Name: "s"}
}

func (g *Gen) genPred() algebra.Expr {
	col := []string{"a", "b"}[g.R.Intn(2)]
	val := algebra.IntC(int64(g.R.Intn(4)))
	switch g.R.Intn(4) {
	case 0:
		return algebra.Eq(algebra.Col(col), val)
	case 1:
		return algebra.Le(algebra.Col(col), val)
	case 2:
		return algebra.Gt(algebra.Col(col), val)
	default:
		return algebra.Ne(algebra.Col(col), val)
	}
}
