package qgen_test

import (
	"testing"

	"snapk/internal/algebra"
	"snapk/internal/qgen"
)

func TestGenDBShape(t *testing.T) {
	g := qgen.New(1)
	spec := g.GenDB()
	if len(spec.Tables) != 2 || spec.Tables[0].Name != "r" || spec.Tables[1].Name != "s" {
		t.Fatalf("tables = %v", spec.Tables)
	}
	for _, tbl := range spec.Tables {
		for _, f := range tbl.Facts {
			if !spec.Dom.ContainsInterval(f.Iv) {
				t.Fatalf("fact %v outside domain", f)
			}
			if f.Mult < 1 {
				t.Fatalf("fact multiplicity %d", f.Mult)
			}
			if len(f.Tuple) != 2 {
				t.Fatalf("fact arity %d", len(f.Tuple))
			}
		}
	}
}

// All three loaders must accept every generated spec.
func TestLoadersAgreeOnTableSizes(t *testing.T) {
	g := qgen.New(2)
	for i := 0; i < 10; i++ {
		spec := g.GenDB()
		sdb := spec.ToSnapshotDB()
		pdb := spec.ToPeriodDB()
		edb := spec.ToEngineDB()
		for _, tbl := range spec.Tables {
			if _, err := sdb.Relation(tbl.Name); err != nil {
				t.Fatal(err)
			}
			if _, err := pdb.Relation(tbl.Name); err != nil {
				t.Fatal(err)
			}
			et, err := edb.Table(tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			var want int
			for _, f := range tbl.Facts {
				want += int(f.Mult)
			}
			if et.Len() != want {
				t.Fatalf("%s: engine rows %d, want %d", tbl.Name, et.Len(), want)
			}
		}
	}
}

// SortedByBegin must produce begin-sorted engine tables while
// preserving the fact multiset of the original spec.
func TestSortedByBegin(t *testing.T) {
	g := qgen.New(17)
	for i := 0; i < 20; i++ {
		spec := g.GenDB()
		sorted := spec.SortedByBegin()
		sdb := sorted.ToEngineDB()
		udb := spec.ToEngineDB()
		for _, tbl := range spec.Tables {
			st, err := sdb.Table(tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !st.BeginSorted() {
				t.Fatalf("%s: sorted spec loads into an unsorted table", tbl.Name)
			}
			ut, err := udb.Table(tbl.Name)
			if err != nil {
				t.Fatal(err)
			}
			if st.Len() != ut.Len() {
				t.Fatalf("%s: sorted copy changed cardinality: %d != %d", tbl.Name, st.Len(), ut.Len())
			}
			a, b := st.Clone(), ut.Clone()
			a.Sort()
			b.Sort()
			for j := range a.Rows {
				if a.Rows[j].Key() != b.Rows[j].Key() {
					t.Fatalf("%s: sorted copy changed the row multiset", tbl.Name)
				}
			}
		}
	}
}

// Generated queries must always type-check against the generated schema.
func TestGeneratedQueriesTypeCheck(t *testing.T) {
	g := qgen.New(3)
	spec := g.GenDB()
	edb := spec.ToEngineDB()
	for i := 0; i < 200; i++ {
		q := g.GenQuery()
		if _, err := algebra.OutSchema(q, edb); err != nil {
			t.Fatalf("query %s does not type-check: %v", q, err)
		}
	}
	for i := 0; i < 100; i++ {
		q := g.GenPositiveQuery()
		if _, err := algebra.OutSchema(q, edb); err != nil {
			t.Fatalf("positive query %s does not type-check: %v", q, err)
		}
		// Positive queries must not contain Diff or Agg.
		algebra.Walk(q, func(n algebra.Query) {
			switch n.(type) {
			case algebra.Diff, algebra.Agg:
				t.Fatalf("positive query contains %T: %s", n, q)
			}
		})
	}
}
